// Package stmdiag is a production-run software failure diagnosis library
// built on the short-term memory of hardware, reproducing
//
//	Arulraj, Jin, Lu. "Leveraging the Short-Term Memory of Hardware to
//	Diagnose Production-Run Software Failures." ASPLOS 2014.
//
// The package exposes the full pipeline over a simulated machine:
//
//   - Assemble builds programs for the library's multicore VM, whose cores
//     carry a 16-entry Last Branch Record (LBR) and whose threads carry the
//     paper's proposed Last Cache-coherence Record (LCR) fed by per-core
//     MESI L1 caches.
//
//   - Program.Instrument applies the paper's LBRLOG/LCRLOG transformation:
//     record toggling around library calls, arming at entry, profiling at
//     failure-logging sites and in the segfault handler, and (optionally)
//     the success logging sites that power automatic diagnosis.
//
//   - Build.Run executes a workload and returns output, failures, cycle
//     counts and the captured LBR/LCR profiles.
//
//   - DiagnoseRuns ranks profile events by the harmonic mean of expected
//     prediction precision and recall (LBRA/LCRA) and returns the best
//     failure predictors.
//
//   - Benchmarks, SequentialRow, ConcurrentRow and RenderTable drive the 31
//     re-authored real-world failures of the paper's Table 4 and regenerate
//     every table of its evaluation section.
package stmdiag

import (
	"fmt"

	"stmdiag/internal/apps"
	"stmdiag/internal/artifact"
	"stmdiag/internal/core"
	"stmdiag/internal/faultinj"
	"stmdiag/internal/harness"
	"stmdiag/internal/isa"
	"stmdiag/internal/kernel"
	"stmdiag/internal/obs"
	"stmdiag/internal/pmu"
	"stmdiag/internal/trace"
	"stmdiag/internal/vm"
)

// Program is an assembled VM program.
type Program struct {
	p *isa.Program
}

// Assemble parses a program in the library's assembly dialect (see
// internal/isa for the grammar). Conditional branches annotated with
// ".branch" directives become diagnosable source-level branches.
func Assemble(name, source string) (*Program, error) {
	p, err := isa.Assemble(name, source)
	if err != nil {
		return nil, err
	}
	return &Program{p: p}, nil
}

// Disassemble renders the program with branch annotations.
func (p *Program) Disassemble() string { return p.p.Disasm() }

// Instructions returns the program length.
func (p *Program) Instructions() int { return len(p.p.Instrs) }

// InstrumentOptions select the log-enhancement configuration (paper §5.1).
type InstrumentOptions struct {
	// LBR arms branch recording; LCR arms coherence recording.
	LBR, LCR bool
	// Toggling disables recording around library-function calls so their
	// execution cannot pollute the short-term memory (paper §4.3).
	Toggling bool
	// Proactive inserts success logging sites for every failure-logging
	// site before deployment; ReactiveFailureLines instead pairs success
	// sites with already-observed failure locations (file:line of a
	// logging call or crashing instruction).
	Proactive            bool
	ReactiveFailureLines []SourceLine
}

// SourceLine names a modeled source position.
type SourceLine struct {
	// File and Line identify the position.
	File string
	Line int
}

// Build is an instrumented program ready to run.
type Build struct {
	prog *isa.Program
	inst *core.Instrumented
	opts InstrumentOptions
}

// Instrument applies the LBRLOG/LCRLOG source-to-source transformation.
func (p *Program) Instrument(o InstrumentOptions) (*Build, error) {
	co := core.Options{LBR: o.LBR, LCR: o.LCR, Toggling: o.Toggling}
	switch {
	case o.Proactive && len(o.ReactiveFailureLines) > 0:
		return nil, fmt.Errorf("stmdiag: choose proactive or reactive, not both")
	case o.Proactive:
		co.Scheme = core.SchemeProactive
	case len(o.ReactiveFailureLines) > 0:
		co.Scheme = core.SchemeReactive
		for _, sl := range o.ReactiveFailureLines {
			pc := -1
			for i := range p.p.Instrs {
				loc := p.p.Instrs[i].Loc
				if loc.File == sl.File && loc.Line == sl.Line {
					pc = i
					break
				}
			}
			if pc < 0 {
				return nil, fmt.Errorf("stmdiag: no instruction at %s:%d", sl.File, sl.Line)
			}
			co.FailurePCs = append(co.FailurePCs, pc)
		}
	}
	inst, err := core.EnhanceLogging(p.p, co)
	if err != nil {
		return nil, err
	}
	return &Build{prog: p.p, inst: inst, opts: o}, nil
}

// Disassemble renders the instrumented program, synthetic instrumentation
// marked.
func (b *Build) Disassemble() string { return b.inst.Prog.Disasm() }

// Instructions returns the instrumented program length.
func (b *Build) Instructions() int { return len(b.inst.Prog.Instrs) }

// RunConfig is one run's workload and machine configuration.
type RunConfig struct {
	// Seed drives the scheduler; different seeds explore different
	// interleavings.
	Seed int64
	// Globals and Arrays seed named program globals.
	Globals map[string]int64
	Arrays  map[string][]int64
	// Cores is the core count (default 4). StepLimit bounds the run.
	Cores     int
	StepLimit uint64
	// LCRSpaceSaving selects the paper's Conf1 event selection for the
	// LCR instead of the default space-consuming Conf2.
	LCRSpaceSaving bool
	// BTS additionally arms a per-core Branch Trace Store — the
	// whole-execution alternative of paper §2.1. The full trace appears in
	// RunResult.BranchTrace at 20-100%-class recording overhead.
	BTS bool
	// Obs is the optional telemetry sink for this run.
	Obs *obs.Sink
}

// BranchEvent is one LBR-derived event of a profile.
type BranchEvent struct {
	// Branch is the source-branch name ("" for plain jumps).
	Branch string
	// Outcome is "true" or "false" for source branches.
	Outcome string
	// File and Line locate the branch.
	File string
	Line int
}

// CoherenceEvent is one LCR-derived event of a profile.
type CoherenceEvent struct {
	// Access is "load" or "store"; State is the observed MESI state
	// ("I", "S", "E", "M"); Pollution marks driver-injected entries.
	Access, State string
	Pollution     bool
	// File and Line locate the access.
	File string
	Line int
}

// Profile is one LBR/LCR snapshot, newest-first.
type Profile struct {
	// Thread is the profiled thread; SuccessSite marks success-site
	// snapshots.
	Thread      int
	SuccessSite bool
	// Branches and Coherence are the decoded records, newest entry first.
	Branches  []BranchEvent
	Coherence []CoherenceEvent
}

// RunResult is one run's outcome.
type RunResult struct {
	// Failed reports any failure; FailureMsg describes the first one.
	Failed     bool
	FailureMsg string
	// Output is the program's printed output.
	Output []string
	// Steps and Cycles account the run's cost.
	Steps, Cycles uint64
	// Profiles are the captured LBR/LCR snapshots.
	Profiles []Profile
	// BranchTrace is the whole-execution branch trace, oldest first,
	// present only when RunConfig.BTS was set.
	BranchTrace []BranchEvent

	prog *isa.Program
	raw  *vm.Result
}

// Run executes the instrumented program.
func (b *Build) Run(rc RunConfig) (*RunResult, error) {
	opts := vm.Options{
		Seed:         rc.Seed,
		Globals:      rc.Globals,
		GlobalArrays: rc.Arrays,
		Cores:        rc.Cores,
		StepLimit:    rc.StepLimit,
		Driver:       kernel.Driver{},
		SegvIoctls:   b.inst.SegvIoctls,
		Obs:          rc.Obs,
	}
	if rc.LCRSpaceSaving {
		opts.LCRConfig = pmu.ConfSpaceSaving
	} else {
		opts.LCRConfig = pmu.ConfSpaceConsuming
	}
	opts.BTS = rc.BTS
	m, err := vm.New(b.inst.Prog, opts)
	if err != nil {
		return nil, err
	}
	res, err := m.Run()
	if err != nil {
		return nil, err
	}
	out := &RunResult{
		Failed: res.Failed(),
		Output: res.Output,
		Steps:  res.Steps,
		Cycles: res.Cycles,
		prog:   b.inst.Prog,
		raw:    res,
	}
	if f := res.FirstFailure(); f != nil {
		out.FailureMsg = f.Msg
		if out.FailureMsg == "" {
			out.FailureMsg = fmt.Sprintf("%s (code %d)", f.Kind, f.Code)
		}
	}
	for _, pr := range res.Profiles {
		out.Profiles = append(out.Profiles, decodeProfile(b.inst.Prog, pr))
	}
	if rc.BTS {
		for _, c := range m.Cores() {
			if c.BTS == nil {
				continue
			}
			fake := vm.Profile{Branches: c.BTS.Trace()}
			for _, e := range core.BranchEvents(b.inst.Prog, fake) {
				be := BranchEvent{File: e.File, Line: e.Line}
				if e.Kind == core.EventBranch {
					be.Branch, be.Outcome = e.Branch, e.Edge.String()
				}
				out.BranchTrace = append(out.BranchTrace, be)
			}
		}
	}
	return out, nil
}

// EncodeReport serializes a run's profiles into the privacy-preserving
// failure-report bundle an end user's machine would send back (JSON; code
// positions and coherence states only — no addresses, no values).
func EncodeReport(r *RunResult) ([]byte, error) {
	return trace.Encode(r.prog, r.raw)
}

// AuditReport verifies a serialized bundle against the privacy guarantee
// of paper §5.3: every numeric field must be a code position in this
// build, never a data-segment address or program value. It returns the
// violations found (empty for a clean bundle).
func (b *Build) AuditReport(data []byte) []string {
	return trace.Audit(b.inst.Prog, data)
}

// decodeProfile converts a raw profile to the public representation.
func decodeProfile(p *isa.Program, pr vm.Profile) Profile {
	prof := Profile{Thread: pr.Thread, SuccessSite: pr.Success}
	for _, e := range core.BranchEvents(p, pr) {
		be := BranchEvent{File: e.File, Line: e.Line}
		if e.Kind == core.EventBranch {
			be.Branch = e.Branch
			be.Outcome = e.Edge.String()
			if br := findBranch(p, e.Branch); br != nil {
				be.File, be.Line = br.Loc.File, br.Loc.Line
			}
		}
		prof.Branches = append(prof.Branches, be)
	}
	for _, e := range core.CoherenceEvents(p, pr) {
		prof.Coherence = append(prof.Coherence, CoherenceEvent{
			Access:    e.Access.String(),
			State:     e.State.String(),
			Pollution: e.Kind == core.EventPollution,
			File:      e.File,
			Line:      e.Line,
		})
	}
	return prof
}

func findBranch(p *isa.Program, name string) *isa.SourceBranch {
	for i := range p.Branches {
		if p.Branches[i].Name == name {
			return &p.Branches[i]
		}
	}
	return nil
}

// Predictor is one ranked failure predictor.
type Predictor struct {
	// Event describes the predictor ("branch X=true", "load:I@f.c:12").
	Event string
	// Score is the harmonic mean of Precision and Recall (paper §5.2).
	Score, Precision, Recall float64
	// InFailureRuns and InSuccessRuns count profile occurrences.
	InFailureRuns, InSuccessRuns int
}

// Report is a completed automatic diagnosis.
type Report struct {
	// Ranking lists predictors best-first.
	Ranking []Predictor
}

// Top returns the best failure predictor.
func (r *Report) Top() (Predictor, bool) {
	if len(r.Ranking) == 0 {
		return Predictor{}, false
	}
	return r.Ranking[0], true
}

// DiagnoseRuns applies the LBRA/LCRA statistical model to failing and
// succeeding runs. Failing runs contribute their failure-site profile,
// succeeding runs their success-site profile (or, for unconditional sites,
// the same-site snapshot). Set coherence=true to rank LCR events (LCRA)
// instead of LBR events (LBRA).
func DiagnoseRuns(failing, succeeding []*RunResult, coherence bool) (*Report, error) {
	return DiagnoseRunsWith(failing, succeeding, coherence, core.RankerCBI)
}

// DiagnoseRunsWith is DiagnoseRuns with a pluggable scoring formula
// (core.RankerCBI, core.RankerOchiai or core.RankerTarantula — the -ranker
// flag): identical event extraction and counting, different arithmetic.
func DiagnoseRunsWith(failing, succeeding []*RunResult, coherence bool, ranker core.Ranker) (*Report, error) {
	mode := core.ModeLBR
	if coherence {
		mode = core.ModeLCR
	}
	var fail, succ []core.ProfiledRun
	for _, r := range failing {
		if pr, ok := core.FailureRunProfile(r.raw); ok {
			fail = append(fail, core.ProfiledRun{Prog: r.prog, Profile: pr})
		}
	}
	for _, r := range succeeding {
		pr, ok := core.SuccessRunProfile(r.raw)
		if !ok {
			pr, ok = core.FailureRunProfile(r.raw)
		}
		if ok {
			succ = append(succ, core.ProfiledRun{Prog: r.prog, Profile: pr})
		}
	}
	rep, err := core.DiagnoseWith(mode, ranker, fail, succ)
	if err != nil {
		return nil, err
	}
	out := &Report{}
	for _, s := range rep.Ranking {
		out.Ranking = append(out.Ranking, Predictor{
			Event:         s.Event.String(),
			Score:         s.Score,
			Precision:     s.Precision,
			Recall:        s.Recall,
			InFailureRuns: s.InFail,
			InSuccessRuns: s.InSucc,
		})
	}
	return out, nil
}

// SiteDiagnosis is one failure location's diagnosis in a multi-failure
// deployment.
type SiteDiagnosis struct {
	// File and Line locate the failure site; Failures counts the failing
	// runs that reported there.
	File     string
	Line     int
	Failures int
	// Report is the site's own predictor ranking.
	Report *Report
}

// DiagnoseRunsBySite diagnoses each failure location independently (paper
// §5.3 "Multiple failures"): large software fails for several reasons at
// once, and every profile records where it was taken, so failures at
// different program locations never pollute each other's statistics.
// Reports come back in descending failure-count order.
func DiagnoseRunsBySite(failing, succeeding []*RunResult, coherence bool) ([]SiteDiagnosis, error) {
	mode := core.ModeLBR
	if coherence {
		mode = core.ModeLCR
	}
	var fail, succ []core.ProfiledRun
	for _, r := range failing {
		if pr, ok := core.FailureRunProfile(r.raw); ok {
			fail = append(fail, core.ProfiledRun{Prog: r.prog, Profile: pr})
		}
	}
	for _, r := range succeeding {
		pr, ok := core.SuccessRunProfile(r.raw)
		if !ok {
			pr, ok = core.FailureRunProfile(r.raw)
		}
		if ok {
			succ = append(succ, core.ProfiledRun{Prog: r.prog, Profile: pr})
		}
	}
	reports, err := core.DiagnoseBySite(mode, fail, succ)
	if err != nil {
		return nil, err
	}
	var out []SiteDiagnosis
	for _, sr := range reports {
		pub := &Report{}
		for _, sc := range sr.Report.Ranking {
			pub.Ranking = append(pub.Ranking, Predictor{
				Event:         sc.Event.String(),
				Score:         sc.Score,
				Precision:     sc.Precision,
				Recall:        sc.Recall,
				InFailureRuns: sc.InFail,
				InSuccessRuns: sc.InSucc,
			})
		}
		out = append(out, SiteDiagnosis{
			File:     sr.Site.File,
			Line:     sr.Site.Line,
			Failures: sr.Failures,
			Report:   pub,
		})
	}
	return out, nil
}

// BenchmarkInfo summarizes one of the 31 re-authored Table 4 benchmarks.
type BenchmarkInfo struct {
	// Name, Version and KLOC echo the paper's Table 4 metadata.
	Name, Version string
	KLOC          float64
	// RootCause and Symptom are the Table 4 classification strings.
	RootCause, Symptom string
	// Concurrent marks the 11 concurrency-bug benchmarks.
	Concurrent bool
}

// Benchmarks lists the re-authored benchmark suite.
func Benchmarks() []BenchmarkInfo {
	var out []BenchmarkInfo
	for _, a := range apps.All() {
		out = append(out, BenchmarkInfo{
			Name:       a.Name,
			Version:    a.Paper.Version,
			KLOC:       a.Paper.KLOC,
			RootCause:  a.Class.String(),
			Symptom:    a.Symptom.String(),
			Concurrent: a.Class.Concurrent(),
		})
	}
	return out
}

// ExperimentConfig sizes the benchmark experiments; the zero value uses the
// paper's settings (10+10 runs for LBRA/LCRA, 1000+1000 for CBI).
type ExperimentConfig struct {
	// FailRuns and SuccRuns are the LBRA/LCRA profile counts.
	FailRuns, SuccRuns int
	// CBIRuns is the per-class CBI run count; CBIRate its sampling rate.
	CBIRuns int
	CBIRate float64
	// OverheadRuns averages the overhead measurements.
	OverheadRuns int
	// Jobs is the trial-execution worker count: independent runs fan out
	// across up to Jobs goroutines. 0 selects runtime.NumCPU(); 1 forces
	// strictly sequential execution. Results are byte-identical for every
	// value.
	Jobs int
	// Seed offsets all seeds.
	Seed int64
	// LBRSize and LCRSize override the 16-entry record depths.
	LBRSize, LCRSize int
	// Obs is the optional telemetry sink (internal/obs). When set, every
	// VM run the experiment drives reports counters into its registry and
	// — if it carries a tracer — cycle-timestamped trace events.
	Obs *obs.Sink
	// Faults is the deterministic fault-injection spec (internal/faultinj;
	// parse one with faultinj.ParseSpec). The zero value injects nothing
	// and keeps the fault-free fast path.
	Faults faultinj.Spec
	// Ranker selects the diagnosis scoring formula (-ranker). The zero
	// value is the paper's CBI-style harmonic mean.
	Ranker core.Ranker
	// CorpusPerCell is Table 9's generated-program count per (bug class ×
	// propagation distance) cell; 0 selects the default (13, a 208-program
	// corpus).
	CorpusPerCell int
	// Executor overrides how portable trials execute (-executor): nil runs
	// them in-process; harness.NewSubprocExecutor fans them out over
	// isolated worker subprocesses. Results are byte-identical either way.
	Executor harness.Executor
	// Artifacts is the durable trial-result store (-resume): when set, every
	// committed trial persists as it completes and already-persisted trials
	// are loaded instead of re-executed, so a killed run resumes losslessly.
	Artifacts *artifact.Store
}

func (c ExperimentConfig) internal() harness.Config {
	return harness.Config{
		FailRuns:      c.FailRuns,
		SuccRuns:      c.SuccRuns,
		CBIRuns:       c.CBIRuns,
		CBIRate:       c.CBIRate,
		OverheadRuns:  c.OverheadRuns,
		Jobs:          c.Jobs,
		Seed:          c.Seed,
		LBRSize:       c.LBRSize,
		LCRSize:       c.LCRSize,
		Obs:           c.Obs,
		Faults:        c.Faults,
		Ranker:        c.Ranker,
		CorpusPerCell: c.CorpusPerCell,
		Executor:      c.Executor,
		Artifacts:     c.Artifacts,
	}
}

// SequentialResult is one paper Table 6 row: LBRLOG entry ranks, LBRA and
// CBI predictor ranks, patch distances, and run-time overheads (fractions;
// 0.01 is 1%). Rank 0 means missed; Related marks ranks that refer to a
// root-cause-related branch rather than the root-cause branch itself (the
// paper's * cases). Distances equal to PatchDistInfinite mean "different
// file".
type SequentialResult struct {
	Benchmark                              string
	RankToggling, RankNoToggling           int
	Related                                bool
	LBRARank, CBIRank                      int
	PatchDistFailureSite, PatchDistLBR     int
	OvLogToggling, OvLogNoToggling         float64
	OvLBRAReactive, OvLBRAProactive, OvCBI float64
}

// PatchDistInfinite is the patch distance reported when the patch touches
// a different file (the paper's "∞").
const PatchDistInfinite = 1<<31 - 1

// SequentialRow reproduces one paper Table 6 row (sequential benchmarks).
func SequentialRow(name string, cfg ExperimentConfig) (*SequentialResult, error) {
	a := apps.ByName(name)
	if a == nil || a.Class.Concurrent() {
		return nil, fmt.Errorf("stmdiag: %q is not a sequential benchmark", name)
	}
	row, err := harness.RunSequential(a, cfg.internal())
	if err != nil {
		return nil, err
	}
	return &SequentialResult{
		Benchmark:            a.Name,
		RankToggling:         row.RankTog,
		RankNoToggling:       row.RankNoTog,
		Related:              row.RelatedTog,
		LBRARank:             row.LBRARank,
		CBIRank:              row.CBIRank,
		PatchDistFailureSite: row.DistFailureSite,
		PatchDistLBR:         row.DistLBR,
		OvLogToggling:        row.OvLogTog,
		OvLogNoToggling:      row.OvLogNoTog,
		OvLBRAReactive:       row.OvReactive,
		OvLBRAProactive:      row.OvProactive,
		OvCBI:                row.OvCBI,
	}, nil
}

// ConcurrentResult is one paper Table 7 row: the LCRLOG entry rank of the
// failure-predicting event under the space-saving (Conf1) and
// space-consuming (Conf2) configurations, and LCRA's predictor rank.
// Rank 0 means the event was missed or does not exist in the failure
// thread — the paper's "-" rows.
type ConcurrentResult struct {
	Benchmark            string
	RankConf1, RankConf2 int
	LCRARank             int
	FailRate             float64
}

// ConcurrentRow reproduces one paper Table 7 row (concurrency benchmarks).
func ConcurrentRow(name string, cfg ExperimentConfig) (*ConcurrentResult, error) {
	a := apps.ByName(name)
	if a == nil || !a.Class.Concurrent() {
		return nil, fmt.Errorf("stmdiag: %q is not a concurrency benchmark", name)
	}
	row, err := harness.RunConcurrent(a, cfg.internal())
	if err != nil {
		return nil, err
	}
	return &ConcurrentResult{
		Benchmark: a.Name,
		RankConf1: row.RankConf1,
		RankConf2: row.RankConf2,
		LCRARank:  row.LCRARank,
		FailRate:  row.FailRate,
	}, nil
}

// NumTables is the highest table RenderTable accepts: the paper's Tables
// 1–7 plus the robustness table (8) this reproduction adds.
const NumTables = harness.NumTables

// RenderTable regenerates one of the tables (1–NumTables) as text: the
// paper's Tables 1–7, plus Table 8, the fault-injection robustness sweep.
func RenderTable(n int, cfg ExperimentConfig) (string, error) {
	return harness.RenderTable(n, cfg.internal())
}
