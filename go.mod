module stmdiag

go 1.22
