// Command trialworker is a dedicated subprocess-executor worker: it speaks
// the harness trial protocol (JSON lines on stdin/stdout, one request then
// one response) until stdin closes. Every harness binary already doubles as
// a worker via the STMDIAG_TRIAL_WORKER environment marker; this binary
// exists for -worker-bin deployments that want a minimal, argument-free
// worker image and for exercising the protocol by hand:
//
//	echo '{"stream":"s","index":0,"kind":"mean-cycles","params":{...}}' | trialworker
//
// Each response federates the worker's telemetry back to the coordinator:
// the trial's metric deltas, trace events (when the request asked for
// them) and flight-ring tail, stamped with a correlation context — the
// request's run ID and (stream, trial, attempt) plus this worker's ID from
// the STMDIAG_TRIAL_WORKER_ID environment (-1 when launched by hand). The
// coordinator folds the delta into its own sink in trial-commit order, so
// merged telemetry is byte-identical to an in-process run.
package main

import (
	"fmt"
	"os"

	"stmdiag/internal/harness"
)

func main() {
	// No environment marker required: being the worker is this binary's
	// only job.
	if err := harness.WorkerMain(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trialworker:", err)
		os.Exit(1)
	}
}
