// Command trialworker is a dedicated subprocess-executor worker: it speaks
// the harness trial protocol (JSON lines on stdin/stdout, one request then
// one response) until stdin closes. Every harness binary already doubles as
// a worker via the STMDIAG_TRIAL_WORKER environment marker; this binary
// exists for -worker-bin deployments that want a minimal, argument-free
// worker image and for exercising the protocol by hand:
//
//	echo '{"stream":"s","index":0,"kind":"mean-cycles","params":{...}}' | trialworker
package main

import (
	"fmt"
	"os"

	"stmdiag/internal/harness"
)

func main() {
	// No environment marker required: being the worker is this binary's
	// only job.
	if err := harness.WorkerMain(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trialworker:", err)
		os.Exit(1)
	}
}
