// Command report produces the privacy-preserving failure-report bundle an
// end user's machine would ship to developers (paper §5.3): it runs one
// benchmark's failure workload under LBRLOG/LCRLOG instrumentation, audits
// the resulting bundle, and writes the JSON to stdout.
//
// Usage:
//
//	report -app sort [-seed N] [-jobs N] [-faults spec]
//	       [-trace out.json] [-metrics] [-v] > bundle.json
//
// The seed search fans out across -jobs workers (default NumCPU) and always
// reports the first failing seed at or after -seed, independent of the
// worker count.
package main

import (
	"flag"
	"fmt"
	"os"

	"stmdiag/internal/apps"
	"stmdiag/internal/cliobs"
	"stmdiag/internal/core"
	"stmdiag/internal/harness"
	"stmdiag/internal/kernel"
	"stmdiag/internal/pmu"
	"stmdiag/internal/trace"
	"stmdiag/internal/vm"
)

func main() {
	cliobs.MaybeTrialWorker()
	app := flag.String("app", "", "benchmark to crash and report (see stmdiag -list)")
	seed := flag.Int64("seed", 0, "starting scheduler seed")
	jobs := flag.Int("jobs", 0, "seed-search workers (0 = NumCPU, 1 = sequential)")
	tf := cliobs.Register()
	flag.Parse()
	if err := tf.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := cliobs.CheckJobs(*jobs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	faults, err := tf.FaultSpec()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sink := tf.Sink()
	if err := tf.Start(sink, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	finish := func() {
		if err := tf.Finish(sink, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *app == "" {
		flag.Usage()
		os.Exit(2)
	}
	a := apps.ByName(*app)
	if a == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *app)
		os.Exit(1)
	}
	inst, err := core.EnhanceLogging(a.Program(), core.Options{LBR: true, LCR: true, Toggling: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The search scans seeds *seed, *seed+1, ... and keeps the first failing
	// run in seed order, whatever the worker count.
	type bundle struct {
		seed int64
		data []byte
	}
	pool := harness.NewPool(*jobs, sink).WithFaults(faults, *seed).WithRunID(harness.RunID(*seed, "cli"))
	b, idx, err := harness.First(pool, 400, a.Name+"/report",
		func(tc *harness.Trial) (bundle, bool, error) {
			sd := *seed + int64(tc.Index)
			opts := a.Fail.VMOptions(sd)
			opts.Driver = kernel.Driver{}
			opts.SegvIoctls = inst.SegvIoctls
			opts.LCRConfig = pmu.ConfSpaceConsuming
			opts.Obs = tc.Sink
			opts.Faults = tc.Faults
			res, err := vm.Run(inst.Prog, opts)
			if err != nil {
				return bundle{}, false, err
			}
			if !a.Fail.FailedRun(res) {
				return bundle{}, false, nil
			}
			data, err := trace.Encode(inst.Prog, res)
			if err != nil {
				return bundle{}, false, err
			}
			return bundle{seed: sd, data: data}, true, nil
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if idx < 0 {
		fmt.Fprintln(os.Stderr, "no failing run within 400 seeds")
		finish()
		os.Exit(1)
	}
	if v := trace.Audit(inst.Prog, b.data); len(v) > 0 {
		fmt.Fprintf(os.Stderr, "privacy audit failed: %v\n", v)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "failure at seed %d; bundle audited clean (%d bytes)\n", b.seed, len(b.data))
	os.Stdout.Write(b.data)
	fmt.Println()
	finish()
}
