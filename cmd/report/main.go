// Command report produces the privacy-preserving failure-report bundle an
// end user's machine would ship to developers (paper §5.3): it runs one
// benchmark's failure workload under LBRLOG/LCRLOG instrumentation, audits
// the resulting bundle, and writes the JSON to stdout.
//
// Usage:
//
//	report -app sort [-seed N] [-trace out.json] [-metrics] [-v] > bundle.json
package main

import (
	"flag"
	"fmt"
	"os"

	"stmdiag/internal/apps"
	"stmdiag/internal/cliobs"
	"stmdiag/internal/core"
	"stmdiag/internal/kernel"
	"stmdiag/internal/pmu"
	"stmdiag/internal/trace"
	"stmdiag/internal/vm"
)

func main() {
	app := flag.String("app", "", "benchmark to crash and report (see stmdiag -list)")
	seed := flag.Int64("seed", 0, "starting scheduler seed")
	tf := cliobs.Register()
	flag.Parse()
	sink := tf.Sink()
	finish := func() {
		if err := tf.Finish(sink, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *app == "" {
		flag.Usage()
		os.Exit(2)
	}
	a := apps.ByName(*app)
	if a == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *app)
		os.Exit(1)
	}
	inst, err := core.EnhanceLogging(a.Program(), core.Options{LBR: true, LCR: true, Toggling: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for s := *seed; s < *seed+400; s++ {
		opts := a.Fail.VMOptions(s)
		opts.Driver = kernel.Driver{}
		opts.SegvIoctls = inst.SegvIoctls
		opts.LCRConfig = pmu.ConfSpaceConsuming
		opts.Obs = sink
		res, err := vm.Run(inst.Prog, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !a.Fail.FailedRun(res) {
			continue
		}
		data, err := trace.Encode(inst.Prog, res)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if v := trace.Audit(inst.Prog, data); len(v) > 0 {
			fmt.Fprintf(os.Stderr, "privacy audit failed: %v\n", v)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "failure at seed %d; bundle audited clean (%d bytes)\n", s, len(data))
		os.Stdout.Write(data)
		fmt.Println()
		finish()
		return
	}
	fmt.Fprintln(os.Stderr, "no failing run within 400 seeds")
	finish()
	os.Exit(1)
}
