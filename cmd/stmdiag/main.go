// Command stmdiag runs one benchmark of the re-authored Table 4 suite
// through the paper's diagnosis pipeline and reports what the short-term
// memory of the hardware saw.
//
// Usage:
//
//	stmdiag -list
//	stmdiag -app sort [-failruns N] [-succruns N] [-seed N]
//	        [-jobs N] [-ranker name] [-executor inproc|subprocess] [-resume dir]
//	        [-faults spec] [-trace out.json] [-metrics] [-v]
//
// For a sequential benchmark it prints the Table 6 row (LBRLOG entry ranks
// with and without toggling, LBRA and CBI predictor ranks, patch distances,
// overheads); for a concurrency benchmark the Table 7 row (LCRLOG entry
// ranks under both configurations and LCRA's verdict).
package main

import (
	"flag"
	"fmt"
	"os"

	"stmdiag"
	"stmdiag/internal/cliobs"
	"stmdiag/internal/harness"
)

func main() {
	cliobs.MaybeTrialWorker()
	list := flag.Bool("list", false, "list the benchmark suite")
	all := flag.Bool("all", false, "diagnose every benchmark (summary lines)")
	app := flag.String("app", "", "benchmark to diagnose (see -list)")
	failRuns := flag.Int("failruns", 10, "failure runs for automatic diagnosis")
	succRuns := flag.Int("succruns", 10, "success runs for automatic diagnosis")
	cbiRuns := flag.Int("cbiruns", 400, "CBI baseline runs per class")
	seed := flag.Int64("seed", 0, "base seed")
	jobs := flag.Int("jobs", 0, "trial-execution workers (0 = NumCPU, 1 = sequential)")
	rf := cliobs.RegisterRanker()
	ef := cliobs.RegisterExec()
	tf := cliobs.Register()
	flag.Parse()
	if err := tf.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := rf.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := ef.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := cliobs.CheckJobs(*jobs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	faults, err := tf.FaultSpec()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *all && *app != "" {
		fmt.Fprintln(os.Stderr, "-all and -app are mutually exclusive")
		os.Exit(2)
	}
	if *list && (*all || *app != "") {
		fmt.Fprintln(os.Stderr, "-list takes no benchmark selection")
		os.Exit(2)
	}
	sink := tf.Sink()
	if err := tf.Start(sink, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if tf.ServeAddr != "" || tf.TracePath != "" {
		// The correlation ID stamped into every trial's federated telemetry.
		fmt.Fprintf(os.Stderr, "telemetry: run id %016x\n", harness.RunID(*seed, "config"))
	}
	defer func() {
		if err := tf.Finish(sink, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}()

	if *list {
		fmt.Printf("%-12s %-9s %8s  %-22s %s\n", "name", "version", "KLOC", "root cause", "symptom")
		for _, b := range stmdiag.Benchmarks() {
			fmt.Printf("%-12s %-9s %8.1f  %-22s %s\n", b.Name, b.Version, b.KLOC, b.RootCause, b.Symptom)
		}
		return
	}
	executor, store, err := ef.Build(sink, faults, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if executor != nil {
			executor.Close() //nolint:errcheck // best-effort teardown
		}
		if store != nil {
			store.Close() //nolint:errcheck
		}
	}()
	cfg := stmdiag.ExperimentConfig{
		FailRuns:  *failRuns,
		SuccRuns:  *succRuns,
		CBIRuns:   *cbiRuns,
		Jobs:      *jobs,
		Seed:      *seed,
		Obs:       sink,
		Faults:    faults,
		Ranker:    rf.Ranker(),
		Executor:  executor,
		Artifacts: store,
	}
	if *all {
		for _, b := range stmdiag.Benchmarks() {
			if b.Concurrent {
				row, err := stmdiag.ConcurrentRow(b.Name, cfg)
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", b.Name, err)
					os.Exit(1)
				}
				fmt.Printf("%-12s LCRLOG conf1=%s conf2=%s LCRA=%s\n",
					b.Name, rank(row.RankConf1), rank(row.RankConf2), rank(row.LCRARank))
			} else {
				row, err := stmdiag.SequentialRow(b.Name, cfg)
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", b.Name, err)
					os.Exit(1)
				}
				star := ""
				if row.Related {
					star = "*"
				}
				fmt.Printf("%-12s LBRLOG tog=%s%s notog=%s LBRA=%s CBI=%s\n",
					b.Name, rank(row.RankToggling), star, rank(row.RankNoToggling),
					rank(row.LBRARank), cbiRank(row.CBIRank))
			}
		}
		return
	}
	if *app == "" {
		flag.Usage()
		os.Exit(2)
	}
	var info *stmdiag.BenchmarkInfo
	for _, b := range stmdiag.Benchmarks() {
		if b.Name == *app {
			bb := b
			info = &bb
		}
	}
	if info == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; try -list\n", *app)
		os.Exit(1)
	}
	fmt.Printf("%s %s (%.1f KLOC): %s bug, symptom: %s\n\n",
		info.Name, info.Version, info.KLOC, info.RootCause, info.Symptom)

	if info.Concurrent {
		row, err := stmdiag.ConcurrentRow(*app, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("observed failure rate:              %.2f\n", row.FailRate)
		fmt.Printf("LCRLOG, space-saving config (Conf1): %s\n", rank(row.RankConf1))
		fmt.Printf("LCRLOG, space-consuming (Conf2):     %s\n", rank(row.RankConf2))
		fmt.Printf("LCRA best-predictor rank:            %s\n", rank(row.LCRARank))
		return
	}
	row, err := stmdiag.SequentialRow(*app, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	star := ""
	if row.Related {
		star = "* (related branch; root cause itself evicted)"
	}
	fmt.Printf("LBRLOG root-cause entry, toggling on:  %s%s\n", rank(row.RankToggling), star)
	fmt.Printf("LBRLOG root-cause entry, toggling off: %s\n", rank(row.RankNoToggling))
	fmt.Printf("LBRA predictor rank:                   %s\n", rank(row.LBRARank))
	fmt.Printf("CBI predictor rank:                    %s\n", cbiRank(row.CBIRank))
	fmt.Printf("patch distance from failure site:      %s lines\n", dist(row.PatchDistFailureSite))
	fmt.Printf("patch distance from LBR branches:      %s lines\n", dist(row.PatchDistLBR))
	fmt.Printf("overhead: LBRLOG %.2f%% (toggling) / %.2f%% (no toggling), LBRA %.2f%% (reactive) / %.2f%% (proactive), CBI %.2f%%\n",
		100*row.OvLogToggling, 100*row.OvLogNoToggling,
		100*row.OvLBRAReactive, 100*row.OvLBRAProactive, 100*row.OvCBI)
}

func rank(n int) string {
	if n <= 0 {
		return "missed"
	}
	return fmt.Sprintf("%d", n)
}

func cbiRank(n int) string {
	if n < 0 {
		return "N/A (C++)"
	}
	return rank(n)
}

func dist(d int) string {
	if d >= stmdiag.PatchDistInfinite {
		return "inf (different file)"
	}
	return fmt.Sprintf("%d", d)
}
