// Command experiments regenerates the tables of the paper's evaluation
// section (Tables 1–7) from the re-authored benchmark suite, plus the
// repo-added Table 8 robustness sweep over the fault injectors and
// Table 9, the generated-bug-corpus ranking bake-off.
//
// Usage:
//
//	experiments [-table N] [-failruns N] [-succruns N] [-cbiruns N] [-overhead N] [-seed N]
//	            [-jobs N] [-ranker name] [-corpus] [-corpus-n N]
//	            [-executor inproc|subprocess] [-resume dir] [-worker-bin bin]
//	            [-faults spec] [-trace out.json] [-metrics] [-v]
//
// Without -table it regenerates every table. The defaults follow the
// paper's experiment configuration (10 failure + 10 success runs for
// LBRA/LCRA, 1000+1000 runs for CBI at 1/100 sampling); lower -cbiruns for
// a faster, noisier pass. -jobs fans independent trials across worker
// goroutines (default NumCPU; 1 forces sequential execution) — stdout is
// byte-identical for every value. -ranker swaps the diagnosis scoring
// formula (cbi, ochiai, tarantula) for the diagnosis-driving tables;
// -corpus renders only Table 9 and -corpus-n resizes its per-cell program
// count. -executor subprocess isolates trial execution in worker
// subprocesses (crash containment); -resume persists each committed trial
// into a durable artifact store and skips already-committed trials when the
// same command is re-run after a kill — stdout stays byte-identical in
// every combination. After each table a one-line summary on stderr reports
// the rows computed, app runs driven, simulated cycles and wall time; it
// exits non-zero on any table-generation error.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stmdiag"
	"stmdiag/internal/cliobs"
	"stmdiag/internal/harness"
	"stmdiag/internal/obs"
)

func main() {
	cliobs.MaybeTrialWorker()
	table := flag.Int("table", 0, fmt.Sprintf("table number 1-%d; 0 regenerates all", stmdiag.NumTables))
	failRuns := flag.Int("failruns", 10, "failure runs per LBRA/LCRA diagnosis")
	succRuns := flag.Int("succruns", 10, "success runs per LBRA/LCRA diagnosis")
	cbiRuns := flag.Int("cbiruns", 1000, "CBI runs per class (paper default 1000)")
	overhead := flag.Int("overhead", 10, "runs averaged per overhead figure")
	seed := flag.Int64("seed", 0, "base seed")
	jobs := flag.Int("jobs", 0, "trial-execution workers (0 = NumCPU, 1 = sequential)")
	corpus := flag.Bool("corpus", false, "render only Table 9, the generated-bug-corpus ranking bake-off")
	corpusN := flag.Int("corpus-n", 0, "Table 9 programs per (bug class x distance) cell (0 = default 13)")
	rf := cliobs.RegisterRanker()
	ef := cliobs.RegisterExec()
	tf := cliobs.Register()
	flag.Parse()
	if err := tf.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := rf.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := ef.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := cliobs.CheckJobs(*jobs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *corpusN < 0 {
		fmt.Fprintf(os.Stderr, "-corpus-n must be >= 0 (0 = default), got %d\n", *corpusN)
		os.Exit(2)
	}
	if *corpus && *table != 0 {
		fmt.Fprintln(os.Stderr, "-corpus and -table are mutually exclusive")
		os.Exit(2)
	}
	faults, err := tf.FaultSpec()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *table < 0 || *table > stmdiag.NumTables {
		fmt.Fprintf(os.Stderr, "-table must be 0 (all) or 1..%d, got %d\n", stmdiag.NumTables, *table)
		os.Exit(2)
	}

	// The per-table summaries need the metrics registry even when the
	// telemetry flags are off.
	sink := tf.Sink()
	if sink == nil {
		sink = obs.NewSink()
	}
	// The telemetry server scrapes the same sink the sweep reports into,
	// so a multi-hour Table 1–8 run can be watched and profiled mid-run.
	if err := tf.Start(sink, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if tf.ServeAddr != "" || tf.TracePath != "" {
		// The correlation ID every trial's federated telemetry is stamped
		// with (harness.Config derives the same value): grep it out of
		// worker deltas, traces and fleet batches to tie them to this run.
		fmt.Fprintf(os.Stderr, "telemetry: run id %016x\n", harness.RunID(*seed, "config"))
	}
	executor, store, err := ef.Build(sink, faults, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if executor != nil {
			executor.Close() //nolint:errcheck // best-effort teardown
		}
		if store != nil {
			store.Close() //nolint:errcheck
		}
	}()
	cfg := stmdiag.ExperimentConfig{
		FailRuns:      *failRuns,
		SuccRuns:      *succRuns,
		CBIRuns:       *cbiRuns,
		OverheadRuns:  *overhead,
		Jobs:          *jobs,
		Seed:          *seed,
		Obs:           sink,
		Faults:        faults,
		Ranker:        rf.Ranker(),
		CorpusPerCell: *corpusN,
		Executor:      executor,
		Artifacts:     store,
	}
	tables := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	switch {
	case *corpus:
		tables = []int{9}
	case *table != 0:
		tables = []int{*table}
	}
	for _, n := range tables {
		before := sink.Metrics.Snapshot()
		start := time.Now()
		out, err := stmdiag.RenderTable(n, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "table %d: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Println(out)
		// The summary is a diagnostic (wall time varies run to run), so it
		// goes to stderr: stdout stays byte-identical across -jobs values.
		d := sink.Metrics.Snapshot().Delta(before)
		fmt.Fprintf(os.Stderr, "table %d: rows=%d runs=%d cycles=%d wall=%v\n\n",
			n, d.Counter("harness.rows"), d.Counter("vm.runs"),
			d.Counter("vm.cycles"), time.Since(start).Round(time.Millisecond))
	}
	if err := tf.Finish(sink, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
