// Command experiments regenerates the tables of the paper's evaluation
// section (Tables 1–7) from the re-authored benchmark suite.
//
// Usage:
//
//	experiments [-table N] [-failruns N] [-succruns N] [-cbiruns N] [-overhead N] [-seed N]
//
// Without -table it regenerates every table. The defaults follow the
// paper's experiment configuration (10 failure + 10 success runs for
// LBRA/LCRA, 1000+1000 runs for CBI at 1/100 sampling); lower -cbiruns for
// a faster, noisier pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stmdiag"
)

func main() {
	table := flag.Int("table", 0, "table number 1-7; 0 regenerates all")
	failRuns := flag.Int("failruns", 10, "failure runs per LBRA/LCRA diagnosis")
	succRuns := flag.Int("succruns", 10, "success runs per LBRA/LCRA diagnosis")
	cbiRuns := flag.Int("cbiruns", 1000, "CBI runs per class (paper default 1000)")
	overhead := flag.Int("overhead", 10, "runs averaged per overhead figure")
	seed := flag.Int64("seed", 0, "base seed")
	flag.Parse()

	cfg := stmdiag.ExperimentConfig{
		FailRuns:     *failRuns,
		SuccRuns:     *succRuns,
		CBIRuns:      *cbiRuns,
		OverheadRuns: *overhead,
		Seed:         *seed,
	}
	tables := []int{1, 2, 3, 4, 5, 6, 7}
	if *table != 0 {
		tables = []int{*table}
	}
	for _, n := range tables {
		start := time.Now()
		out, err := stmdiag.RenderTable(n, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "table %d: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("(table %d regenerated in %v)\n\n", n, time.Since(start).Round(time.Millisecond))
	}
}
