// Command lbrcov computes THeME-style branch coverage (paper §8 related
// work): it runs a benchmark or a synthetic program while draining the LBR
// every -period retired instructions, and reports the coverage recovered
// and the sampling cost — demonstrating why coverage needs whole-run
// profiling while failure diagnosis does not.
//
// Usage:
//
//	lbrcov -app sort [-period N] [-periods N,N,...] [-seed N] [-jobs N]
//	       [-faults spec] [-trace out.json] [-metrics] [-v]
//	lbrcov -synth [-funcs N] [-stmts N] [-period N]
//
// -periods sweeps several sampling periods in one invocation; the
// measurements fan out across -jobs workers (default NumCPU) and print in
// period order regardless of the worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"stmdiag/internal/apps"
	"stmdiag/internal/cliobs"
	"stmdiag/internal/harness"
	"stmdiag/internal/isa"
	"stmdiag/internal/synth"
	"stmdiag/internal/vm"
)

func main() {
	cliobs.MaybeTrialWorker()
	app := flag.String("app", "", "benchmark to cover (success workload)")
	useSynth := flag.Bool("synth", false, "cover a generated synthetic program instead")
	funcs := flag.Int("funcs", 12, "synthetic program functions")
	stmts := flag.Int("stmts", 40, "synthetic statements per function")
	period := flag.Int("period", 500, "steps between LBR drains")
	periodList := flag.String("periods", "", "comma-separated periods to sweep (overrides -period)")
	seed := flag.Int64("seed", 1, "seed")
	jobs := flag.Int("jobs", 0, "sweep workers (0 = NumCPU, 1 = sequential)")
	tf := cliobs.Register()
	flag.Parse()
	if err := tf.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := cliobs.CheckJobs(*jobs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	faults, err := tf.FaultSpec()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *useSynth && *app != "" {
		fmt.Fprintln(os.Stderr, "-synth and -app are mutually exclusive")
		os.Exit(2)
	}
	sink := tf.Sink()
	if err := tf.Start(sink, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var prog *isa.Program
	opts := vm.Options{Seed: *seed}
	switch {
	case *useSynth:
		prog = synth.MustGenerate("synth", synth.Config{
			Seed: *seed, Funcs: *funcs, StmtsPerFunc: *stmts,
		})
	case *app != "":
		a := apps.ByName(*app)
		if a == nil {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *app)
			os.Exit(1)
		}
		prog = a.Program()
		opts = a.Succeed.VMOptions(*seed)
	default:
		flag.Usage()
		os.Exit(2)
	}

	periods := []int{*period}
	if *periodList != "" {
		periods = periods[:0]
		for _, f := range strings.Split(*periodList, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "bad -periods entry %q\n", f)
				os.Exit(2)
			}
			periods = append(periods, n)
		}
	}

	opts.Obs = sink
	pool := harness.NewPool(*jobs, sink).WithFaults(faults, *seed).WithRunID(harness.RunID(*seed, "cli"))
	results, err := harness.CoverageSweep(prog, opts, periods, pool)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("program:           %s (%d instructions, %d source branches)\n",
		prog.Name, len(prog.Instrs), len(prog.Branches))
	for i, res := range results {
		fmt.Printf("sampling period:   every %d steps (%d drains)\n", periods[i], res.Samples)
		fmt.Printf("edges executed:    %d\n", res.ExecutedEdges)
		fmt.Printf("edges recovered:   %d (%.1f%% coverage)\n", res.CoveredEdges, 100*res.Coverage)
		fmt.Printf("sampling overhead: %.1f%%\n", 100*res.Overhead)
	}
	if err := tf.Finish(sink, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
