// Command fleetd is the cooperative-diagnosis fleet service and its
// simulated production clients: many deployed machines capture LBR/LCR
// profiles at negligible overhead, stream them to a central aggregator,
// and the aggregator ranks failure predictors exactly as the monolithic
// pipeline would — the paper's sampling-free answer to CBI's
// many-machines deployment model.
//
// Server:
//
//	fleetd -listen :8344 [-fleet-shards N] [-fleet-store dir] [-addr-file f]
//
// serves POST /fleet/ingest, GET /fleet/stats, GET /fleet/report, plus
// every live-telemetry endpoint of the -serve layer (/metrics, /trace,
// /flightrecorder, /profilez, /debug/pprof) on the same listener.
// -fleet-store persists every accepted submission to a write-ahead log in
// that directory before acknowledging it, and replays the log on startup:
// a killed and restarted fleetd serves the same /fleet/report bytes it
// would have without the crash.
//
// Client simulation:
//
//	fleetd -push http://host:8344 -app sort [-fleet-clients N]
//	       [-fleet-batch N] [-failruns N] [-succruns N] [-seed N] [-jobs N]
//
// captures the benchmark's diagnosis profiles with the deployed builds and
// fans them out over N concurrent simulated machines, each batching and
// gzip-POSTing with retry-with-backoff.
//
// Report fetch:
//
//	fleetd -report http://host:8344 [-app sort] [-k N]
//
// prints the server's ranking — byte-identical to the monolithic path's
// core.Report rendering for the same profile population.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"syscall"

	"stmdiag/internal/apps"
	"stmdiag/internal/cliobs"
	"stmdiag/internal/fleet"
	"stmdiag/internal/harness"
	"stmdiag/internal/obs"
	"stmdiag/internal/obshttp"
)

func main() {
	cliobs.MaybeTrialWorker()
	listen := flag.String("listen", "", "serve the fleet API on this `addr` (e.g. :8344; port 0 picks a free one)")
	addrFile := flag.String("addr-file", "", "write the bound listen address to this `file` (scripts poll it instead of parsing logs)")
	push := flag.String("push", "", "client mode: capture profiles and push them to this fleet server `URL`")
	report := flag.String("report", "", "fetch and print the diagnosis report from this fleet server `URL`")
	get := flag.String("get", "", "fetch this `URL` (any fleet/telemetry endpoint, e.g. .../metrics) and print the body")
	app := flag.String("app", "", "benchmark to capture (-push) or report on (-report)")
	topK := flag.Int("k", 10, "ranking depth requested by -report")
	failRuns := flag.Int("failruns", 10, "failure profiles captured per -push")
	succRuns := flag.Int("succruns", 10, "success profiles captured per -push")
	seed := flag.Int64("seed", 0, "base seed for -push capture")
	jobs := flag.Int("jobs", 0, "trial-execution workers for -push capture (0 = NumCPU)")
	fleetStore := flag.String("fleet-store", "", "persist the profile store to a write-ahead log in this `dir` and replay it on startup (-listen only)")
	ff := cliobs.RegisterFleet()
	ef := cliobs.RegisterExec()
	tf := cliobs.Register()
	flag.Parse()

	fail2 := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := tf.Validate(); err != nil {
		fail2(err)
	}
	if err := ff.Validate(); err != nil {
		fail2(err)
	}
	if err := ef.Validate(); err != nil {
		fail2(err)
	}
	if err := cliobs.CheckJobs(*jobs); err != nil {
		fail2(err)
	}
	if *fleetStore != "" && *listen == "" {
		fail2(fmt.Errorf("-fleet-store requires -listen"))
	}
	modes := 0
	for _, on := range []bool{*listen != "", *push != "", *report != "", *get != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "exactly one of -listen, -push, -report or -get is required")
		os.Exit(2)
	}
	for _, u := range []string{*push, *report, *get} {
		if u == "" {
			continue
		}
		if parsed, err := url.Parse(u); err != nil || parsed.Scheme == "" || parsed.Host == "" {
			fail2(fmt.Errorf("fleet server URL %q must be absolute (http://host:port)", u))
		}
	}

	var err error
	switch {
	case *listen != "":
		err = serve(*listen, *addrFile, *fleetStore, ff, tf)
	case *push != "":
		err = pushProfiles(*push, *app, harness.Config{
			FailRuns: *failRuns, SuccRuns: *succRuns, Seed: *seed, Jobs: *jobs,
		}, ff, ef, tf)
	case *get != "":
		err = fetchURL(*get)
	default:
		err = fetchReport(*report, *app, *topK)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// serve runs the aggregator until SIGINT/SIGTERM: the fleet routes layered
// over the full live-telemetry handler, one sink feeding both.
func serve(addr, addrFile, storeDir string, ff *cliobs.FleetFlags, tf *cliobs.Flags) error {
	sink := tf.Sink()
	if sink == nil {
		// A server always carries telemetry: ingest throughput and shard
		// contention are its primary observables.
		sink = obs.NewSink()
	}
	if sink.Trace == nil {
		// The federated trace (one lane per pushing client under the fleet
		// PID) is a serve-mode fixture: /trace and /tracez always have it.
		sink.Trace = obs.NewTracer()
	}
	var store *fleet.Store
	if storeDir != "" {
		var err error
		store, err = fleet.OpenPersistent(storeDir, fleet.StoreOptions{Shards: ff.Shards, Sink: sink})
		if err != nil {
			return err
		}
		defer store.Close() //nolint:errcheck // best-effort shutdown
		fmt.Fprintf(os.Stderr, "fleetd: replayed %d submissions from %s\n", store.Replayed(), storeDir)
	} else {
		store = fleet.NewStore(fleet.StoreOptions{Shards: ff.Shards, Sink: sink})
	}
	base := obshttp.New(sink)
	svc := fleet.NewService(store, base.Handler(), sink)

	srv := &http.Server{Handler: svc.Handler()}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("fleetd: listen %s: %w", addr, err)
	}
	defer lis.Close()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(lis.Addr().String()+"\n"), 0o644); err != nil {
			return fmt.Errorf("fleetd: write -addr-file: %w", err)
		}
	}
	fmt.Fprintf(os.Stderr, "fleetd: serving /fleet/{ingest,stats,report} + telemetry on http://%s (%d shards)\n",
		lis.Addr(), store.Shards())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case <-sig:
		fmt.Fprintln(os.Stderr, "fleetd: shutting down")
		return srv.Close()
	}
}

// pushProfiles is one capture-and-submit cycle: the deployed builds
// produce this benchmark's diagnosis profiles, which fan out over the
// simulated machine population.
func pushProfiles(baseURL, appName string, cfg harness.Config, ff *cliobs.FleetFlags, ef *cliobs.ExecFlags, tf *cliobs.Flags) error {
	if appName == "" {
		return fmt.Errorf("-push requires -app (e.g. -app sort)")
	}
	a := apps.ByName(appName)
	if a == nil {
		return fmt.Errorf("unknown benchmark %q", appName)
	}
	cfg.Obs = tf.Sink()
	executor, store, err := ef.Build(cfg.Obs, cfg.Faults, cfg.Seed)
	if err != nil {
		return err
	}
	defer func() {
		if executor != nil {
			executor.Close() //nolint:errcheck // best-effort teardown
		}
		if store != nil {
			store.Close() //nolint:errcheck
		}
	}()
	cfg.Executor, cfg.Artifacts = executor, store
	mode, fail, succ, err := harness.DiagnosisProfiles(a, cfg)
	if err != nil {
		return err
	}
	subs := fleet.SubmissionsFromRuns(a.Name, mode, true, fail)
	subs = append(subs, fleet.SubmissionsFromRuns(a.Name, mode, false, succ)...)
	if err := fleet.Simulate(baseURL, ff.Clients, subs, fleet.ClientOptions{
		BatchSize:  ff.Batch,
		MaxRetries: ff.Retries,
		Sink:       cfg.Obs,
		RunID:      harness.RunID(cfg.Seed, "fleet-push"),
	}); err != nil {
		return err
	}
	fmt.Printf("pushed %d profiles (%d fail, %d succ) for %s over %d clients to %s\n",
		len(subs), len(fail), len(succ), a.Name, ff.Clients, baseURL)
	return nil
}

// fetchURL prints any telemetry/fleet endpoint's body — the scripts' curl
// substitute (the repo takes no dependency on curl being installed).
func fetchURL(u string) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleetd: get %s: %s: %s", u, resp.Status, body)
	}
	os.Stdout.Write(body) //nolint:errcheck // best-effort to stdout
	return nil
}

// fetchReport prints the server-side ranking.
func fetchReport(baseURL, appName string, k int) error {
	if k < 1 {
		return fmt.Errorf("-k must be >= 1, got %d", k)
	}
	u := baseURL + "/fleet/report?k=" + fmt.Sprint(k)
	if appName != "" {
		u += "&app=" + url.QueryEscape(appName)
	}
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleetd: report: %s: %s", resp.Status, body)
	}
	os.Stdout.Write(body)
	return nil
}
