// Logenhance shows what the LBRLOG source-to-source transformation (paper
// §5.1, Figures 7 and 8) actually does to a program, and what toggling
// costs and buys.
//
// It instruments a small program two ways, diffs the instruction counts,
// shows the ioctl sequence around a library call and a failure-logging
// site, and then measures the toggling trade-off the paper's §7.1.3
// evaluates: without toggling the run is cheaper, but a chatty library
// call right before the failure floods the 16-entry LBR and evicts the
// root cause.
package main

import (
	"fmt"
	"log"
	"strings"

	"stmdiag"
)

const src = `
.file app.c
.str  msg "app: write failed"
.global mode
.func main
main:
    lea  r1, mode
    ld   r2, [r1+0]
.line 6
    call format           ; both paths format their output
.line 8
.branch root
    cmpi r2, 1
    jne  fine             ; sane configuration
.line 10
    call format           ; chatty library call on the failure path
.line 12
.branch guard
    cmpi r2, 0
    je   fine
    call error
fine:
    exit
.func format lib
format:
    jmp f1
f1: jmp f2
f2: jmp f3
f3: jmp f4
f4: jmp f5
f5: jmp f6
f6: jmp f7
f7: jmp f8
f8: jmp f9
f9: jmp f10
f10: jmp f11
f11: jmp f12
f12: jmp f13
f13: jmp f14
f14: jmp f15
f15: jmp f16
f16: ret
.func error log
error:
    print msg
    fail 1
    ret
`

func main() {
	prog, err := stmdiag.Assemble("app", src)
	if err != nil {
		log.Fatal(err)
	}
	plain := prog.Instructions()

	with, err := prog.Instrument(stmdiag.InstrumentOptions{LBR: true, Toggling: true})
	if err != nil {
		log.Fatal(err)
	}
	without, err := prog.Instrument(stmdiag.InstrumentOptions{LBR: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("original program: %d instructions\n", plain)
	fmt.Printf("with toggling:    %d instructions (+%d inserted)\n", with.Instructions(), with.Instructions()-plain)
	fmt.Printf("without toggling: %d instructions (+%d inserted)\n", without.Instructions(), without.Instructions()-plain)
	fmt.Println("\nThe transformation (paper §5.1):")
	fmt.Println("  1. wrap library calls with DISABLE/ENABLE toggling;")
	fmt.Println("  2. CLEAN + CONFIG + ENABLE at the entry of main (Figure 7);")
	fmt.Println("  3. DISABLE + PROFILE + ENABLE before each failure-logging call;")
	fmt.Println("  4. a segfault handler that profiles.")

	run := func(b *stmdiag.Build, mode int64) *stmdiag.RunResult {
		r, err := b.Run(stmdiag.RunConfig{Globals: map[string]int64{"mode": mode}})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	// Failure runs: where does the root-cause branch sit in the LBR?
	show := func(name string, r *stmdiag.RunResult) {
		prof := r.Profiles[len(r.Profiles)-1]
		pos := 0
		for i, b := range prof.Branches {
			if b.Branch == "root" {
				pos = i + 1
				break
			}
		}
		where := "EVICTED from the 16-entry LBR"
		if pos > 0 {
			where = fmt.Sprintf("LBR entry %d", pos)
		}
		fmt.Printf("  %-16s root-cause branch: %s (%d records captured)\n",
			name, where, len(prof.Branches))
	}
	fmt.Println("\nFailure run (mode=1), root-cause visibility:")
	show("with toggling:", run(with, 1))
	show("no toggling:", run(without, 1))

	// Success runs: what does toggling cost?
	cw := run(with, 0).Cycles
	cn := run(without, 0).Cycles
	fmt.Println("\nSuccess run (mode=0), cost:")
	fmt.Printf("  with toggling:    %d cycles\n", cw)
	fmt.Printf("  without toggling: %d cycles (%.1f%% cheaper)\n",
		cn, 100*float64(cw-cn)/float64(cw))

	fmt.Println("\nInstrumented entry of main (disassembly excerpt):")
	lines := strings.Split(with.Disassemble(), "\n")
	for i, l := range lines {
		if i > 12 {
			break
		}
		fmt.Println("  " + l)
	}
}
