// Mozillarace walks through the paper's motivating concurrency failure
// (paper §3.2, Figure 4): the Mozilla JavaScript engine's WWR atomicity
// violation on st->table.
//
// InitState stores the table (a1) and checks it (a2); FreeState's
// st->table = NULL occasionally lands in between, so the check reads an
// invalid cache line and the engine reports "out of memory" — a message 55
// call sites could have produced, with nothing in the logged variables
// hinting at the interleaving. The proposed Last Cache-coherence Record
// captures exactly that: the invalid load at a2, a few entries deep.
package main

import (
	"fmt"
	"log"

	"stmdiag"
)

func main() {
	row, err := stmdiag.ConcurrentRow("Mozilla-JS3", stmdiag.ExperimentConfig{
		FailRuns: 10, SuccRuns: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Mozilla-JS3 (Figure 4) — WWR atomicity violation on st->table")
	fmt.Printf("\nobserved failure rate across seeds: %.0f%% — the schedule decides\n\n", 100*row.FailRate)

	// Show one failing run's LCR the way LCRLOG hands it to the developer.
	info := benchmark("Mozilla-JS3")
	fmt.Printf("bug class %s, symptom %q\n\n", info.RootCause, info.Symptom)

	fmt.Println("LCRLOG at the failure site, one failing run (Conf2; newest first):")
	if err := showProfile(); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("Table 7 row (measured vs paper):")
	fmt.Printf("  Conf1 (invalid loads/stores + shared loads):    entry %d (paper 3)\n", row.RankConf1)
	fmt.Printf("  Conf2 (invalid loads/stores + exclusive loads): entry %d (paper 11)\n", row.RankConf2)
	fmt.Printf("  LCRA best failure predictor:                    rank %d (paper 1)\n", row.LCRARank)
}

// showProfile reruns the instrumented benchmark until it fails and prints
// the coherence record the driver profiled at the ReportOutOfMemory site.
func showProfile() error {
	// The benchmark's assembly ships with the library; rebuild it through
	// the public pipeline so the example stays self-contained.
	prog, err := stmdiag.Assemble("Mozilla-JS3-demo", mozillaSrc)
	if err != nil {
		return err
	}
	b, err := prog.Instrument(stmdiag.InstrumentOptions{LCR: true, Toggling: true})
	if err != nil {
		return err
	}
	for seed := int64(0); seed < 100; seed++ {
		res, err := b.Run(stmdiag.RunConfig{Seed: seed})
		if err != nil {
			return err
		}
		if !res.Failed || len(res.Profiles) == 0 {
			continue
		}
		prof := res.Profiles[len(res.Profiles)-1]
		for i, e := range prof.Coherence {
			where := fmt.Sprintf("%s:%d", e.File, e.Line)
			if e.Pollution {
				where = "(driver pollution)"
			}
			fmt.Printf("  %2d. %-5s observed %s  %s\n", i+1, e.Access, e.State, where)
		}
		return nil
	}
	return fmt.Errorf("no failing run in 100 seeds")
}

func benchmark(name string) stmdiag.BenchmarkInfo {
	for _, b := range stmdiag.Benchmarks() {
		if b.Name == name {
			return b
		}
	}
	return stmdiag.BenchmarkInfo{}
}

// mozillaSrc is the Figure 4 pattern: a1/a2 in InitState, a3 in FreeState.
const mozillaSrc = `
.file jsapi.c
.global st_table 8
.global shared_cfg 8
.global priv 8
.str msg "out of memory"

.func main
main:
    lea  r10, priv
    ld   r11, [r10+0]
    lea  r12, shared_cfg
    ld   r13, [r12+0]
    movi r1, 0
    spawn FreeState, r1
    call InitState
    join
    exit

.func InitState
InitState:
.line 10
    lea  r1, st_table
    movi r2, 1
    st   [r1+0], r2        ; a1: st->table = New(st)
    delay 60
.line 14
    ld   r3, [r1+0]        ; a2: if (!st->table)
    lea  r12, shared_cfg
    ld   r13, [r12+0]
    lea  r10, priv
    ld   r11, [r10+0]
    ld   r11, [r10+1]
    ld   r11, [r10+2]
    ld   r11, [r10+3]
    ld   r11, [r10+4]
    ld   r11, [r10+5]
    ld   r11, [r10+6]
    ld   r11, [r10+7]
.line 20
.branch check
    cmpi r3, 0
    jne  ok
    call ReportOutOfMemory
ok:
    ret

.func FreeState
FreeState:
    lea  r4, shared_cfg
    ld   r5, [r4+0]
    delay 40
.line 30
    lea  r6, st_table
    movi r7, 0
    st   [r6+0], r7        ; a3: st->table = NULL
    halt

.func ReportOutOfMemory log
ReportOutOfMemory:
    print msg
    fail 1
    ret
`
