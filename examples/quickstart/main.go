// Quickstart: diagnose a crashing program with the hardware's short-term
// memory, end to end.
//
// The program below has a sort-style bug: when the input exceeds a
// threshold, branch ROOT takes its buggy edge and nulls a pointer that is
// dereferenced a few branches later. We instrument it the LBRLOG way
// (paper §5.1), crash it, read the Last Branch Record captured by the
// segfault handler, and then let LBRA (paper §5.2) name the root cause
// automatically from ten failing and ten successful runs.
package main

import (
	"fmt"
	"log"

	"stmdiag"
)

const buggy = `
.file demo.c
.str  msg "demo: inconsistent state"
.global n
.func main
main:
    lea  r1, n
    ld   r2, [r1+0]
.line 5
.branch ROOT
    cmpi r2, 10
    jle  ok            ; sane input
    movi r3, 0         ; buggy edge: pointer lost
    jmp  cont
ok:
    lea  r3, n
cont:
.line 9
.branch USE
    cmpi r2, 0
    jge  use
use:
.line 11
    ld   r4, [r3+0]    ; crashes when ROOT went the buggy way
.line 12
.branch CHK
    cmpi r4, 1000
    jle  fine
    call error
fine:
    exit
.func error log
error:
    print msg
    fail 1
    ret
`

func main() {
	prog, err := stmdiag.Assemble("demo", buggy)
	if err != nil {
		log.Fatal(err)
	}

	// Deploy with log enhancement: arm the LBR at startup, profile at
	// failure-logging sites and in the segfault handler, toggle recording
	// around library calls.
	deployed, err := prog.Instrument(stmdiag.InstrumentOptions{LBR: true, Toggling: true})
	if err != nil {
		log.Fatal(err)
	}

	// A production failure: input 20 crashes.
	crash, err := deployed.Run(stmdiag.RunConfig{Globals: map[string]int64{"n": 20}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("production run failed: %s\n\n", crash.FailureMsg)
	fmt.Println("LBR at the failure site (newest first):")
	prof := crash.Profiles[len(crash.Profiles)-1]
	for i, b := range prof.Branches {
		name := "(unconditional jump)"
		if b.Branch != "" {
			name = fmt.Sprintf("branch %s = %s", b.Branch, b.Outcome)
		}
		fmt.Printf("  %2d. %-28s %s:%d\n", i+1, name, b.File, b.Line)
	}

	// The reactive scheme: redeploy with a success logging site paired
	// with the observed failure location, collect both run classes, and
	// compare (paper Figure 8, §5.2).
	reactive, err := prog.Instrument(stmdiag.InstrumentOptions{
		LBR: true, Toggling: true,
		ReactiveFailureLines: []stmdiag.SourceLine{{File: "demo.c", Line: 11}},
	})
	if err != nil {
		log.Fatal(err)
	}
	var failing, succeeding []*stmdiag.RunResult
	for seed := int64(0); seed < 10; seed++ {
		f, err := deployed.Run(stmdiag.RunConfig{Seed: seed, Globals: map[string]int64{"n": 20}})
		if err != nil {
			log.Fatal(err)
		}
		failing = append(failing, f)
		s, err := reactive.Run(stmdiag.RunConfig{Seed: seed, Globals: map[string]int64{"n": 5}})
		if err != nil {
			log.Fatal(err)
		}
		succeeding = append(succeeding, s)
	}
	report, err := stmdiag.DiagnoseRuns(failing, succeeding, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nLBRA ranking (best failure predictor first):")
	for i, p := range report.Ranking {
		if i == 5 {
			break
		}
		fmt.Printf("  %d. %-24s score=%.2f (precision %.2f, recall %.2f)\n",
			i+1, p.Event, p.Score, p.Precision, p.Recall)
	}
	if top, ok := report.Top(); ok {
		fmt.Printf("\nroot cause: %s\n", top.Event)
	}
}
