// Observe walks the paper's motivating sequential failure (§3.1, Figure 3
// — the Coreutils-7.2 sort crash) through the diagnosis pipeline with the
// internal/obs telemetry layer switched on, and writes a Chrome
// trace_event JSON file of everything the simulated hardware did.
//
// The trace is timestamped by the VM's deterministic cycle clock, so two
// runs with the same -seed produce byte-identical files. Load the output
// in chrome://tracing or https://ui.perfetto.dev: each simulated core is a
// process row, the diagnosis pipeline has its own row, and the failure
// runs show the trap instants that seed LBRLOG.
//
// With -serve the example also exposes the live half of the telemetry
// stack while it runs: an OpenMetrics /metrics endpoint, the Chrome trace
// as a /trace download, the flight recorder of recent pipeline events as
// /flightrecorder JSON, and the net/http/pprof profilers — the same
// endpoints every binary offers via its own -serve flag.
//
// Usage:
//
//	observe [-o observe-trace.json] [-seed N] [-serve :9090]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"stmdiag/internal/apps"
	"stmdiag/internal/core"
	"stmdiag/internal/isa"
	"stmdiag/internal/kernel"
	"stmdiag/internal/obs"
	"stmdiag/internal/obshttp"
	"stmdiag/internal/vm"
)

func main() {
	out := flag.String("o", "observe-trace.json", "trace output `file`")
	seed := flag.Int64("seed", 0, "base seed")
	serve := flag.String("serve", "", "serve live telemetry on this `addr` while the example runs")
	flag.Parse()

	// A private registry, tracer and flight recorder: the trace and the
	// metrics below cover exactly the runs this example drives.
	sink := &obs.Sink{
		Metrics: obs.NewRegistry(),
		Trace:   obs.NewTracer(),
		Flight:  obs.NewFlightRecorder(obs.DefaultFlightCap),
	}
	sink.Trace.SetProcessName(obs.PipelinePID, "pipeline")
	if *serve != "" {
		srv := obshttp.New(sink)
		if err := srv.Start(*serve); err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("live telemetry on http://%s — try /metrics, /flightrecorder\n\n", srv.Addr())
	}

	a := apps.ByName("sort")
	if a == nil {
		log.Fatal("benchmark sort not in suite")
	}
	fmt.Println("sort (Coreutils 7.2): merging sorted files into one of the inputs")
	fmt.Println("overflows files[]; the crash surfaces later, inside hash_lookup.")
	fmt.Println()

	// Deploy: LBRLOG instrumentation with library-call toggling (§4.1).
	inst, err := core.EnhanceLogging(a.Program(), core.Options{LBR: true, Toggling: true})
	if err != nil {
		log.Fatal(err)
	}

	run := func(w apps.Workload, s int64, b *core.Instrumented) *vm.Result {
		opts := w.VMOptions(s)
		opts.Driver = kernel.Driver{}
		opts.SegvIoctls = b.SegvIoctls
		opts.Obs = sink
		res, err := vm.Run(b.Prog, opts)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// Phase 1: failure runs on the deployed build. Each traps, and the
	// SIGSEGV handler snapshots the 16-entry LBR (LBRLOG).
	tr := sink.Trace
	phase := func(name string) {
		sink.RecordFlight(obs.FlightEvent{
			Cycle: sink.Cycles(), Trial: -1, Kind: obs.FlightPhase, Detail: name,
		})
	}
	phase("failure runs")
	tr.Begin("failure runs", "pipeline", tr.Base(), obs.PipelinePID, 0, nil)
	var failProfiles []core.ProfiledRun
	var firstProf vm.Profile
	for s := int64(0); len(failProfiles) < 10 && s < 400; s++ {
		res := run(a.Fail, *seed+s, inst)
		if !a.Fail.FailedRun(res) {
			continue
		}
		prof, ok := core.FailureRunProfile(res)
		if !ok {
			continue
		}
		if len(failProfiles) == 0 {
			firstProf = prof
		}
		failProfiles = append(failProfiles, core.ProfiledRun{Prog: inst.Prog, Profile: prof})
	}
	tr.End("failure runs", "pipeline", tr.Base(), obs.PipelinePID, 0)
	if len(failProfiles) < 10 {
		log.Fatalf("only %d/10 failure profiles", len(failProfiles))
	}
	fmt.Printf("captured %d failure-run LBR snapshots; in the first one the\n", len(failProfiles))
	fmt.Printf("root-cause branch %s is entry #%d (1 = latest taken branch)\n\n",
		a.RootBranch, branchRank(inst.Prog, firstProf, a.RootBranch))

	// Phase 2: reactive redeployment (§4.2) — same logging, but now the
	// driver also profiles runs that pass the failure site successfully.
	failPC := a.FaultPC()
	if failPC < 0 {
		log.Fatal("sort should be a crash benchmark")
	}
	reactive, err := core.EnhanceLogging(a.Program(), core.Options{LBR: true, Toggling: true,
		Scheme: core.SchemeReactive, FailurePCs: []int{failPC}})
	if err != nil {
		log.Fatal(err)
	}
	phase("success runs")
	tr.Begin("success runs", "pipeline", tr.Base(), obs.PipelinePID, 0, nil)
	var succProfiles []core.ProfiledRun
	for s := int64(0); len(succProfiles) < 10 && s < 400; s++ {
		res := run(a.Succeed, *seed+1000+s, reactive)
		if a.Succeed.FailedRun(res) {
			continue
		}
		prof, ok := core.SuccessRunProfile(res)
		if !ok {
			if prof, ok = core.FailureRunProfile(res); !ok {
				continue
			}
		}
		succProfiles = append(succProfiles, core.ProfiledRun{Prog: reactive.Prog, Profile: prof})
	}
	tr.End("success runs", "pipeline", tr.Base(), obs.PipelinePID, 0)
	if len(succProfiles) < 10 {
		log.Fatalf("only %d/10 success profiles", len(succProfiles))
	}

	// Phase 3: LBRA statistical debugging over the two profile sets.
	phase("LBRA")
	tr.Begin("LBRA", "pipeline", tr.Base(), obs.PipelinePID, 0, nil)
	report, err := core.Diagnose(core.ModeLBR, failProfiles, succProfiles)
	if err != nil {
		log.Fatal(err)
	}
	rank := report.RankOfBranchEdge(a.RootBranch, a.BuggyEdge)
	tr.End("LBRA", "pipeline", tr.Base(), obs.PipelinePID, 0)
	tr.Instant("verdict", "pipeline", tr.Base(), obs.PipelinePID, 0,
		map[string]any{"branch": a.RootBranch, "rank": rank})
	fmt.Printf("LBRA verdict over 10+10 runs: %s's buggy edge is predictor #%d (paper: 1)\n\n", a.RootBranch, rank)

	data, err := tr.ChromeJSON()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	snap := sink.Metrics.Snapshot()
	fmt.Printf("trace: %d events, %d bytes -> %s (cycle clock; same seed = same bytes)\n",
		tr.Len(), len(data), *out)
	fmt.Printf("telemetry: runs=%d cycles=%d traps=%d lbr pushes=%d evictions=%d\n",
		snap.Counter("vm.runs"), snap.Counter("vm.cycles"), snap.Counter("vm.traps"),
		snap.Counter("pmu.lbr.pushes"), snap.Counter("pmu.lbr.evictions"))

	// The pipeline's own short-term memory: the flight recorder holds the
	// recent phase transitions the same way the LBR holds recent branches.
	fmt.Println("flight recorder tail:")
	for _, ev := range sink.Flight.Tail(8) {
		fmt.Println("  " + ev.String())
	}
}

// branchRank is the 1-based LBR position (newest first) of the branch.
func branchRank(p *isa.Program, prof vm.Profile, branch string) int {
	for i, r := range prof.Branches {
		if r.From >= 0 && r.From < len(p.Instrs) {
			if id := p.Instrs[r.From].BranchID; id != isa.NoBranch && p.BranchName(id) == branch {
				return i + 1
			}
		}
	}
	return 0
}
