// Privacy shows the failure-report story of paper §5.3: what an end user's
// machine actually sends back to developers.
//
// The program handles a secret user value on the very path that crashes.
// A coredump would contain it. The LBR/LCR bundle — two code addresses per
// branch record, a code address and a MESI state per coherence record, no
// memory addresses, no values — cannot. The example crashes the program,
// encodes the report bundle, proves the secret is absent, audits the
// bundle, and contrasts it with the whole-execution BTS trace (which is
// equally value-free but costs an order of magnitude more to record).
package main

import (
	"fmt"
	"log"
	"strings"

	"stmdiag"
	"stmdiag/internal/obs"
)

const src = `
.file wallet.c
.global balance
.global ledger 8
.func main
main:
    lea  r1, balance
    ld   r2, [r1+0]        ; the user's account balance (sensitive!)
    lea  r3, ledger
    st   [r3+0], r2        ; written into the ledger buffer
.line 5
    movi r5, 0             ; reconcile earlier transactions first
txn:
.branch reconcile
    cmpi r5, 60
    jge  posted
    ld   r6, [r3+0]
    add  r6, r5
    addi r5, 1
    jmp  txn
posted:
.line 8
.branch overdraft
    cmpi r2, 0
    jge  ok
    movi r3, 0             ; buggy edge: ledger pointer dropped
ok:
.line 12
    ld   r4, [r3+0]        ; post the transaction — crashes when overdrawn
    exit
`

const secretBalance = -77345991

func main() {
	prog, err := stmdiag.Assemble("wallet", src)
	if err != nil {
		log.Fatal(err)
	}
	build, err := prog.Instrument(stmdiag.InstrumentOptions{LBR: true, LCR: true})
	if err != nil {
		log.Fatal(err)
	}
	res, err := build.Run(stmdiag.RunConfig{
		Globals: map[string]int64{"balance": secretBalance},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run failed: %s\n", res.FailureMsg)
	fmt.Printf("the secret balance (%d) flowed through registers and memory on that path\n\n", secretBalance)

	bundle, err := stmdiag.EncodeReport(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure-report bundle (%d bytes):\n", len(bundle))
	for i, line := range strings.Split(string(bundle), "\n") {
		if i >= 18 {
			fmt.Println("  ...")
			break
		}
		fmt.Println("  " + line)
	}

	leak := strings.Contains(string(bundle), fmt.Sprintf("%d", -secretBalance)) ||
		strings.Contains(string(bundle), fmt.Sprintf("%d", secretBalance))
	fmt.Printf("\nbundle contains the secret value: %v\n", leak)
	violations := build.AuditReport(bundle)
	fmt.Printf("privacy audit violations: %d\n", len(violations))
	snap := obs.Default().Snapshot()
	fmt.Printf("what the audit checked: %d bundle(s), %d fields verified as code-only; encoder redacted %d coherence addresses\n",
		snap.Counter("trace.audit.bundles"), snap.Counter("trace.audit.fields"),
		snap.Counter("trace.encode.redacted"))

	// The whole-execution contrast (paper §2.1): the BTS trace is larger
	// but still value-free; its cost is what rules it out.
	traced, err := build.Run(stmdiag.RunConfig{
		Globals: map[string]int64{"balance": secretBalance},
		BTS:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBTS whole-execution trace: %d records (LBR keeps 16); run cost %d vs %d cycles (+%.0f%%)\n",
		len(traced.BranchTrace), traced.Cycles, res.Cycles,
		100*float64(traced.Cycles-res.Cycles)/float64(res.Cycles))
}
