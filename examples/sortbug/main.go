// Sortbug walks through the paper's motivating sequential failure (paper
// §3.1, Figure 3): the Coreutils-7.2 sort crash.
//
// Merging already-sorted files into one of the inputs makes the wrong
// while-loop condition in avoid_trashing_input (branch sort_A) overflow
// files[], silently nulling the adjacent hash-table pointer; the crash
// surfaces later inside hash_lookup — a function with nine callers across
// six files, not even on the stack of the corrupting code. Core dumps and
// call stacks don't reach the root cause; the last few taken branches do.
//
// This example reproduces the sort row of paper Table 6 on the re-authored
// benchmark.
package main

import (
	"fmt"
	"log"

	"stmdiag"
)

func main() {
	cfg := stmdiag.ExperimentConfig{FailRuns: 10, SuccRuns: 10, CBIRuns: 400, OverheadRuns: 5}
	row, err := stmdiag.SequentialRow("sort", cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sort (Coreutils 7.2) — buffer overflow, segfault in a sibling function")
	fmt.Println()
	fmt.Println("What the developer gets from the crash alone: a fault inside")
	fmt.Println("hash_lookup, with avoid_trashing_input nowhere on the stack.")
	fmt.Println()
	fmt.Println("What the 16-entry LBR adds (paper Table 6, sort row):")
	fmt.Printf("  root-cause branch sort_A is the %d-th latest LBR entry (paper: 3)\n", row.RankToggling)
	fmt.Printf("  without library-call toggling it slips to entry %d (paper: 5)\n", row.RankNoToggling)
	fmt.Printf("  LBRA ranks sort_A's buggy edge #%d over 10+10 runs (paper: 1)\n", row.LBRARank)
	fmt.Printf("  CBI needs hundreds of failing runs; with 400+400 it ranks it #%d (paper: 1 at 1000)\n", row.CBIRank)
	fmt.Println()
	fmt.Println("Patch relevance (Figure 9a rewrites the while loop):")
	fmt.Printf("  failure site to patch: %s (different file — hash.c vs sort.c)\n", dist(row.PatchDistFailureSite))
	fmt.Printf("  captured LBR branches to patch: %s lines (paper: 4)\n", dist(row.PatchDistLBR))
	fmt.Println()
	fmt.Println("Run-time overhead on the success workload:")
	fmt.Printf("  LBRLOG w/ toggling  %5.2f%%   (paper 0.44%%)\n", 100*row.OvLogToggling)
	fmt.Printf("  LBRLOG w/o toggling %5.2f%%   (paper 0.19%%)\n", 100*row.OvLogNoToggling)
	fmt.Printf("  LBRA reactive       %5.2f%%   (paper 0.74%%)\n", 100*row.OvLBRAReactive)
	fmt.Printf("  LBRA proactive      %5.2f%%   (paper 4.16%%)\n", 100*row.OvLBRAProactive)
	fmt.Printf("  CBI sampling        %5.2f%%   (paper 43.45%%)\n", 100*row.OvCBI)
}

func dist(d int) string {
	if d >= stmdiag.PatchDistInfinite {
		return "inf"
	}
	return fmt.Sprintf("%d", d)
}
