package obshttp_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stmdiag/internal/obs"
	"stmdiag/internal/obshttp"
)

func healthSink() *obs.Sink {
	return &obs.Sink{
		Metrics: obs.NewRegistry(),
		Trace:   obs.NewTracer(),
		Flight:  obs.NewFlightRecorder(obs.DefaultFlightCap),
	}
}

// TestTracezSummarizesLanes pins the /tracez endpoint: a JSON digest of
// the live tracer, one entry per (pid, tid) lane.
func TestTracezSummarizesLanes(t *testing.T) {
	sink := healthSink()
	sink.Trace.SetProcessName(obs.PoolPID, "pool")
	sink.Trace.SetThreadName(obs.PoolPID, 0, "worker 0")
	sink.Trace.Complete("trial", "harness", 10, 5, obs.PoolPID, 0, nil)
	sink.Trace.Instant("commit", "harness", 16, obs.PoolPID, 0, nil)
	srv := httptest.NewServer(obshttp.New(sink).Handler())
	defer srv.Close()

	code, body, _ := get(t, srv.URL+"/tracez")
	if code != http.StatusOK {
		t.Fatalf("/tracez = %d: %s", code, body)
	}
	var sum obs.TraceSummary
	if err := json.Unmarshal([]byte(body), &sum); err != nil {
		t.Fatalf("/tracez is not JSON: %v\n%s", err, body)
	}
	if sum.Events != 2 || len(sum.Lanes) != 1 {
		t.Fatalf("summary = %+v, want 2 events in 1 lane", sum)
	}
	l := sum.Lanes[0]
	if l.PID != obs.PoolPID || l.Thread != "worker 0" || l.Spans != 1 || l.Instants != 1 {
		t.Errorf("lane = %+v", l)
	}
}

// TestTracezWithoutTracer pins the nil path: no tracer means an empty
// summary, not a panic or a 500.
func TestTracezWithoutTracer(t *testing.T) {
	srv := httptest.NewServer(obshttp.New(nil).Handler())
	defer srv.Close()
	code, body, _ := get(t, srv.URL+"/tracez")
	if code != http.StatusOK || !strings.Contains(body, `"lanes": []`) {
		t.Errorf("/tracez without tracer = %d: %s", code, body)
	}
}

// TestHealthzReportsWorkerHealth pins the executor health surface: once
// harness.executor.* instruments exist, /healthz reports spawn/respawn/
// live counts and the last crash reason from the flight ring.
func TestHealthzReportsWorkerHealth(t *testing.T) {
	sink := healthSink()
	srv := httptest.NewServer(obshttp.New(sink).Handler())
	defer srv.Close()

	// Unarmed: plain liveness only.
	if code, body, _ := get(t, srv.URL+"/healthz"); code != http.StatusOK || strings.Contains(body, "executor:") {
		t.Errorf("unarmed /healthz = %d: %s", code, body)
	}

	sink.Counter("harness.executor.spawns").Add(3)
	sink.Counter("harness.executor.respawns").Add(2)
	sink.Gauge("harness.executor.workers.live").Set(1)
	sink.RecordFlight(obs.FlightEvent{
		Trial: 4, Kind: obs.FlightExecutorCrash,
		Detail: "worker 1: exit status 2; stderr: boom",
	})
	code, body, _ := get(t, srv.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d: %s", code, body)
	}
	for _, want := range []string{
		"executor: spawns=3 respawns=2 live=1 failures=0",
		"last-crash: worker 1: exit status 2; stderr: boom",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/healthz lacks %q:\n%s", want, body)
		}
	}
}

// TestReadyzWorkerExhaustion pins the readiness verdict: an armed executor
// with zero live workers and failed trials means the process cannot make
// progress — 503, not a cosmetic "ready".
func TestReadyzWorkerExhaustion(t *testing.T) {
	sink := healthSink()
	srv := httptest.NewServer(obshttp.New(sink).Handler())
	defer srv.Close()

	sink.Counter("harness.executor.spawns").Add(2)
	sink.Gauge("harness.executor.workers.live").Set(2)
	if code, _, _ := get(t, srv.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("armed executor with no failures: /readyz = %d, want 200", code)
	}

	// Failures alone don't flip readiness while workers are still live.
	sink.Counter("harness.executor.failures").Inc()
	if code, _, _ := get(t, srv.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("failures with live workers: /readyz = %d, want 200", code)
	}

	// Live at 0 *and* failures: exhausted.
	sink.Gauge("harness.executor.workers.live").Set(0)
	code, body, _ := get(t, srv.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "lost all workers") {
		t.Errorf("exhausted executor: /readyz = %d: %s", code, body)
	}

	// A successful respawn recovers readiness.
	sink.Gauge("harness.executor.workers.live").Set(1)
	if code, _, _ := get(t, srv.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("recovered executor: /readyz = %d, want 200", code)
	}
}
