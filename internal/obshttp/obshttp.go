// Package obshttp is the live half of the observability layer (DESIGN §6):
// a pure-stdlib HTTP server exposing the telemetry a running sweep
// accumulates in an obs.Sink, so a multi-hour experiment can be scraped,
// traced and profiled mid-run instead of only inspected post-mortem.
//
// Endpoints:
//
//	/metrics         OpenMetrics text exposition of the sink's registry
//	/healthz         liveness (200 while the process serves) + worker health
//	/readyz          readiness (503 until/unless marked ready, or when the
//	                 subprocess executor has lost every worker)
//	/trace           Chrome trace_event JSON download of the live tracer
//	/tracez          JSON per-lane summary of the live tracer
//	/flightrecorder  JSON dump of the pipeline flight-recorder ring
//	/profilez        JSON cost-attribution report (internal/prof)
//	/debug/pprof/    the net/http/pprof profiling handlers
//
// /healthz and /readyz surface subprocess-executor worker health when the
// sink's registry carries harness.executor.* instruments: spawn/respawn
// counts, live workers, and the most recent worker-crash reason recovered
// from the flight-recorder ring.
//
// Every handler snapshots live structures through their lock-free or
// read-locked views; scraping never blocks the trial workers.
package obshttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"

	"stmdiag/internal/obs"
	"stmdiag/internal/prof"
)

// Server serves one sink's telemetry. Build with New, attach the Handler
// to a test server, or Start a real listener.
type Server struct {
	sink  *obs.Sink
	ready atomic.Bool

	ln   net.Listener
	http *http.Server
}

// New returns a server over the sink (which may be nil: endpoints then
// serve the process-wide registry and empty trace/flight dumps). The
// server starts ready.
func New(sink *obs.Sink) *Server {
	s := &Server{sink: sink}
	s.ready.Store(true)
	return s
}

// SetReady flips the /readyz verdict: a long sweep can mark itself
// not-ready while it tears down.
func (s *Server) SetReady(ok bool) { s.ready.Store(ok) }

// registry picks the registry /metrics exposes: the sink's, defaulting to
// the process-wide one so a bare -serve still exposes instrumentation-time
// counters.
func (s *Server) registry() *obs.Registry {
	if s.sink != nil && s.sink.Metrics != nil {
		return s.sink.Metrics
	}
	return obs.Default()
}

// readOnly guards a telemetry endpoint: every handler here only snapshots
// state, so anything but GET/HEAD is a caller bug (or a probe trying to
// write) and gets 405 with the allowed set announced.
func readOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "read-only telemetry endpoint", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// Handler returns the telemetry mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", readOnly(s.handleMetrics))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/trace", readOnly(s.handleTrace))
	mux.HandleFunc("/tracez", readOnly(s.handleTracez))
	mux.HandleFunc("/flightrecorder", readOnly(s.handleFlight))
	mux.HandleFunc("/profilez", readOnly(s.handleProfilez))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (host:port; port 0 picks a free one) and serves in
// a background goroutine until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obshttp: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.Handler()}
	go s.http.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "stmdiag telemetry")
	for _, ep := range []string{"/metrics", "/healthz", "/readyz", "/trace", "/tracez", "/flightrecorder", "/profilez", "/debug/pprof/"} {
		fmt.Fprintln(w, "  "+ep)
	}
}

// OpenMetricsContentType is the content type of the /metrics exposition.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	body := s.registry().Snapshot().OpenMetrics()
	w.Header().Set("Content-Type", OpenMetricsContentType)
	// Live telemetry: every scrape must reach the process, never a cache.
	w.Header().Set("Cache-Control", "no-store")
	fmt.Fprint(w, body)
}

// WorkerHealth is the subprocess-executor health view /healthz and /readyz
// derive from the sink: counters from the registry, the last crash reason
// from the flight-recorder ring (the most recent executor-crash event).
type WorkerHealth struct {
	// Armed reports whether a subprocess executor registered itself (any
	// spawn recorded); when false the other fields are meaningless.
	Armed bool
	// Spawns and Respawns count worker process starts (Respawns are the
	// subset replacing a crashed or timed-out worker).
	Spawns   uint64
	Respawns uint64
	// Live is the number of worker processes currently running.
	Live int64
	// Failures counts trials that exhausted the executor's retry budget.
	Failures uint64
	// LastCrash is the detail line of the most recent worker crash ("" if
	// none survives in the flight ring): worker ID, cause, stderr tail.
	LastCrash string
}

// workerHealth assembles the executor health view from the sink.
func (s *Server) workerHealth() WorkerHealth {
	snap := s.registry().Snapshot()
	h := WorkerHealth{
		Spawns:   snap.Counters["harness.executor.spawns"],
		Respawns: snap.Counters["harness.executor.respawns"],
		Live:     snap.Gauges["harness.executor.workers.live"],
		Failures: snap.Counters["harness.executor.failures"],
	}
	h.Armed = h.Spawns > 0
	if fr := s.sink.FlightRecorder(); fr != nil {
		for _, ev := range fr.Snapshot() {
			if ev.Kind == obs.FlightExecutorCrash {
				h.LastCrash = ev.Detail // keep scanning: ring is oldest-first
			}
		}
	}
	return h
}

func (h WorkerHealth) render(w http.ResponseWriter) {
	if !h.Armed {
		return
	}
	fmt.Fprintf(w, "executor: spawns=%d respawns=%d live=%d failures=%d\n",
		h.Spawns, h.Respawns, h.Live, h.Failures)
	if h.LastCrash != "" {
		// The stderr tail can span lines; indent so probes that read only
		// the first line still see the verdict.
		fmt.Fprintf(w, "last-crash: %s\n", strings.ReplaceAll(h.LastCrash, "\n", "\n  "))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
	s.workerHealth().render(w)
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
		return
	}
	// A subprocess executor with no live workers and at least one exhausted
	// trial cannot make progress: not ready until a respawn succeeds.
	if h := s.workerHealth(); h.Armed && h.Live == 0 && h.Failures > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready: executor lost all workers")
		h.render(w)
		return
	}
	fmt.Fprintln(w, "ready")
	s.workerHealth().render(w)
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	data, err := s.sink.Tracer().ChromeJSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="stmdiag-trace.json"`)
	w.Write(data)
}

// handleTracez serves the tracer's per-lane summary: event/span counts and
// time extents per (pid, tid) track — the quick "which lanes are live and
// how wide are they" view, where /trace is the full event download.
func (s *Server) handleTracez(w http.ResponseWriter, _ *http.Request) {
	sum := s.sink.Tracer().Summary()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(sum) //nolint:errcheck // best-effort over HTTP
}

// FlightDump is the /flightrecorder response shape.
type FlightDump struct {
	Cap      int               `json:"cap"`
	Recorded uint64            `json:"recorded"`
	Dropped  uint64            `json:"dropped"`
	Events   []obs.FlightEvent `json:"events"`
}

func (s *Server) handleFlight(w http.ResponseWriter, _ *http.Request) {
	fr := s.sink.FlightRecorder()
	dump := FlightDump{
		Cap:      fr.Cap(),
		Recorded: fr.Recorded(),
		Dropped:  fr.Dropped(),
		Events:   fr.Snapshot(),
	}
	if dump.Events == nil {
		dump.Events = []obs.FlightEvent{}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(dump) //nolint:errcheck // best-effort over HTTP
}

// handleProfilez serves the cost-attribution report parsed from the live
// registry. Its deterministic sections (opcodes, phases, apps, tables,
// allocs) are jobs-invariant once a run completes; the workers/pool section
// is wall clock (see internal/prof).
func (s *Server) handleProfilez(w http.ResponseWriter, _ *http.Request) {
	data, err := prof.FromSnapshot(s.registry().Snapshot()).JSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	w.Write(data)         //nolint:errcheck // best-effort over HTTP
	w.Write([]byte("\n")) //nolint:errcheck
}
