package obshttp_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"stmdiag"
	"stmdiag/internal/obs"
	"stmdiag/internal/obshttp"
)

// validateOpenMetrics is a minimal exposition-format parser: every line is
// a # TYPE / # HELP comment, a sample, or the trailing # EOF; samples
// belong to a declared family; histogram buckets are cumulative and end in
// an le="+Inf" bucket equal to the _count sample.
func validateOpenMetrics(t *testing.T, body string) {
	t.Helper()
	sample := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9]+)$`)
	typeLine := regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	families := map[string]string{}
	type histState struct {
		lastCum  int64
		infSeen  bool
		inf      int64
		count    int64
		hasCount bool
	}
	hists := map[string]*histState{}
	lines := strings.Split(body, "\n")
	if len(lines) < 2 || lines[len(lines)-1] != "" || lines[len(lines)-2] != "# EOF" {
		t.Fatalf("exposition does not end with # EOF + newline: %q", lines[max(0, len(lines)-3):])
	}
	for _, line := range lines[:len(lines)-2] {
		if line == "# EOF" {
			t.Fatalf("# EOF before end of body")
		}
		if m := typeLine.FindStringSubmatch(line); m != nil {
			if _, dup := families[m[1]]; dup {
				t.Errorf("family %q declared twice", m[1])
			}
			families[m[1]] = m[2]
			if m[2] == "histogram" {
				hists[m[1]] = &histState{}
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or other comment
		}
		m := sample.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		name, labels := m[1], m[2]
		val, _ := strconv.ParseInt(m[3], 10, 64)
		base := name
		for _, suffix := range []string{"_total", "_bucket", "_sum", "_count"} {
			if s, ok := strings.CutSuffix(name, suffix); ok && families[s] != "" {
				base = s
				break
			}
		}
		kind, ok := families[base]
		if !ok {
			t.Errorf("sample %q has no preceding # TYPE", line)
			continue
		}
		switch kind {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				t.Errorf("counter sample %q lacks _total", line)
			}
			if val < 0 {
				t.Errorf("negative counter %q", line)
			}
		case "histogram":
			h := hists[base]
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if !strings.Contains(labels, `le="`) {
					t.Errorf("bucket without le label: %q", line)
				}
				if strings.Contains(labels, `le="+Inf"`) {
					h.infSeen, h.inf = true, val
				} else {
					if val < h.lastCum {
						t.Errorf("non-cumulative buckets at %q (%d after %d)", line, val, h.lastCum)
					}
					h.lastCum = val
				}
			case strings.HasSuffix(name, "_count"):
				h.count, h.hasCount = val, true
			}
		}
	}
	for name, h := range hists {
		if !h.infSeen {
			t.Errorf("histogram %s has no +Inf bucket", name)
		}
		if h.hasCount && h.inf < h.count {
			t.Errorf("histogram %s: +Inf bucket %d < count %d", name, h.inf, h.count)
		}
	}
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func testSink() *obs.Sink {
	s := &obs.Sink{
		Metrics: obs.NewRegistry(),
		Trace:   obs.NewTracer(),
		Flight:  obs.NewFlightRecorder(16),
	}
	s.Counter("vm.runs").Add(3)
	s.Counter("harness.pool.worker0.trials").Add(2)
	s.Histogram("vm.run.cycles", obs.DefaultCycleBounds).Observe(500)
	s.Trace.Instant("x", "test", 1, 0, 0, nil)
	s.RecordFlight(obs.FlightEvent{Cycle: 9, Trial: 0, Kind: obs.FlightTrialStart, Detail: "t"})
	return s
}

func TestEndpoints(t *testing.T) {
	sink := testSink()
	srv := obshttp.New(sink)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body, hdr := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != obshttp.OpenMetricsContentType {
		t.Errorf("/metrics content type %q", ct)
	}
	if cc := hdr.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("/metrics Cache-Control %q, want no-store", cc)
	}
	validateOpenMetrics(t, body)
	if !strings.Contains(body, "vm_runs_total 3") {
		t.Errorf("/metrics missing vm_runs_total:\n%s", body)
	}

	code, body, _ = get(t, ts.URL+"/healthz")
	if code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	code, body, _ = get(t, ts.URL+"/readyz")
	if code != 200 || !strings.Contains(body, "ready") {
		t.Errorf("/readyz = %d %q", code, body)
	}
	srv.SetReady(false)
	if code, _, _ = get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz after SetReady(false) = %d, want 503", code)
	}
	srv.SetReady(true)

	code, body, _ = get(t, ts.URL+"/trace")
	if code != 200 {
		t.Fatalf("/trace status %d", code)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("/trace not valid trace_event JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Error("/trace has no events")
	}

	code, body, hdr = get(t, ts.URL+"/flightrecorder")
	if code != 200 {
		t.Fatalf("/flightrecorder status %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/flightrecorder content type %q, want application/json", ct)
	}
	if cc := hdr.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("/flightrecorder Cache-Control %q, want no-store", cc)
	}
	var dump obshttp.FlightDump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/flightrecorder not valid JSON: %v", err)
	}
	if dump.Cap != 16 || dump.Recorded != 1 || len(dump.Events) != 1 || dump.Events[0].Kind != obs.FlightTrialStart {
		t.Errorf("/flightrecorder dump = %+v", dump)
	}

	if code, _, _ = get(t, ts.URL+"/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, _, _ = get(t, ts.URL+"/nosuch"); code != 404 {
		t.Errorf("unknown path status %d, want 404", code)
	}
}

// TestProfilez: the cost-attribution endpoint serves the registry's prof.*
// state as JSON, uncached, and degrades to an empty report on a bare sink.
func TestProfilez(t *testing.T) {
	sink := &obs.Sink{Metrics: obs.NewRegistry(), Profiling: true}
	sink.Counter("vm.cycles").Add(100)
	sink.Counter("vm.steps").Add(40)
	sink.Counter("prof.op.add.count").Add(7)
	sink.Counter("prof.op.add.cycles").Add(60)
	sink.Counter("prof.phase.capture.spans").Add(1)
	ts := httptest.NewServer(obshttp.New(sink).Handler())
	defer ts.Close()

	code, body, hdr := get(t, ts.URL+"/profilez")
	if code != 200 {
		t.Fatalf("/profilez status %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/profilez content type %q, want application/json", ct)
	}
	if cc := hdr.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("/profilez Cache-Control %q, want no-store", cc)
	}
	var rep struct {
		TotalCycles uint64 `json:"total_cycles"`
		Opcodes     []struct {
			Name   string `json:"name"`
			Count  uint64 `json:"count"`
			Cycles uint64 `json:"cycles"`
		} `json:"opcodes"`
		Phases []struct {
			Name  string `json:"name"`
			Spans uint64 `json:"spans"`
		} `json:"phases"`
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/profilez not valid JSON: %v\n%s", err, body)
	}
	if rep.TotalCycles != 100 {
		t.Errorf("/profilez total_cycles = %d, want 100", rep.TotalCycles)
	}
	if len(rep.Opcodes) != 1 || rep.Opcodes[0].Name != "add" || rep.Opcodes[0].Cycles != 60 {
		t.Errorf("/profilez opcodes = %+v", rep.Opcodes)
	}
	if len(rep.Phases) != 1 || rep.Phases[0].Name != "capture" || rep.Phases[0].Spans != 1 {
		t.Errorf("/profilez phases = %+v", rep.Phases)
	}
}

func TestNilSinkEndpoints(t *testing.T) {
	ts := httptest.NewServer(obshttp.New(nil).Handler())
	defer ts.Close()
	code, body, _ := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics on nil sink: status %d", code)
	}
	validateOpenMetrics(t, body)
	code, body, _ = get(t, ts.URL+"/flightrecorder")
	if code != 200 || !strings.Contains(body, `"events": []`) {
		t.Errorf("/flightrecorder on nil sink = %d %q", code, body)
	}
	if code, _, _ = get(t, ts.URL+"/trace"); code != 200 {
		t.Errorf("/trace on nil sink: status %d", code)
	}
	code, body, _ = get(t, ts.URL+"/profilez")
	if code != 200 || !strings.Contains(body, `"total_cycles"`) {
		t.Errorf("/profilez on nil sink = %d %q", code, body)
	}
}

func TestStartServesRealListener(t *testing.T) {
	srv := obshttp.New(testSink())
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() == "" {
		t.Fatal("no bound address")
	}
	code, body, _ := get(t, "http://"+srv.Addr()+"/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	validateOpenMetrics(t, body)
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestMetricsScrapeMidRun is the tier-1 smoke for the acceptance criterion
// that a sweep launched with -serve answers /metrics mid-run with valid
// OpenMetrics text: it drives a real Table 6 row through the pipeline
// while a scraper hammers /metrics, /flightrecorder and /readyz, and every
// scraped exposition must parse.
func TestMetricsScrapeMidRun(t *testing.T) {
	sink := &obs.Sink{
		Metrics: obs.NewRegistry(),
		Flight:  obs.NewFlightRecorder(obs.DefaultFlightCap),
	}
	ts := httptest.NewServer(obshttp.New(sink).Handler())
	defer ts.Close()

	done := make(chan error, 1)
	go func() {
		_, err := stmdiag.SequentialRow("sort", stmdiag.ExperimentConfig{
			FailRuns: 3, SuccRuns: 3, CBIRuns: 20, OverheadRuns: 2,
			Jobs: 2, Obs: sink,
		})
		done <- err
	}()

	var scrapes int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("SequentialRow: %v", err)
				}
				return
			default:
			}
			code, body, _ := get(t, ts.URL+"/metrics")
			if code != 200 {
				t.Errorf("mid-run /metrics status %d", code)
				return
			}
			validateOpenMetrics(t, body)
			if code, _, _ := get(t, ts.URL+"/flightrecorder"); code != 200 {
				t.Errorf("mid-run /flightrecorder status %d", code)
				return
			}
			scrapes++
		}
	}()
	wg.Wait()

	if scrapes == 0 {
		t.Error("no mid-run scrapes completed")
	}
	// After the row, the registry holds real pipeline metrics and still
	// renders a parseable exposition that mentions the run counters.
	_, body, _ := get(t, ts.URL+"/metrics")
	validateOpenMetrics(t, body)
	for _, want := range []string{"vm_runs_total", "harness_pool_trials_total", "harness_rows_total"} {
		if !strings.Contains(body, want) {
			t.Errorf("final exposition missing %s", want)
		}
	}
	if sink.Flight.Recorded() == 0 {
		t.Error("pipeline flight recorder stayed empty across a full row")
	}
	t.Logf("completed %d mid-run scrapes", scrapes)
}

// TestReadOnlyEndpointsRejectWrites: the snapshot endpoints never mutate
// process state, so anything but GET/HEAD is rejected with 405 and the
// allowed set announced — a probe or misconfigured proxy cannot "write"
// telemetry. GET keeps working through the guard.
func TestReadOnlyEndpointsRejectWrites(t *testing.T) {
	srv := obshttp.New(obs.NewSink())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{"/metrics", "/trace", "/flightrecorder", "/profilez"} {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			req, err := http.NewRequest(method, ts.URL+path, strings.NewReader("x"))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", method, path, resp.StatusCode)
			}
			if got := resp.Header.Get("Allow"); got != "GET, HEAD" {
				t.Errorf("%s %s: Allow %q, want \"GET, HEAD\"", method, path, got)
			}
		}
		if code, _, _ := get(t, ts.URL+path); code != http.StatusOK {
			t.Errorf("GET %s through the guard: status %d", path, code)
		}
		resp, err := http.Head(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("HEAD %s: status %d", path, resp.StatusCode)
		}
	}
}
