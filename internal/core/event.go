package core

import (
	"fmt"

	"stmdiag/internal/cache"
	"stmdiag/internal/isa"
	"stmdiag/internal/vm"
)

// EventKind distinguishes the event classes the diagnosis ranks.
type EventKind uint8

// Event kinds.
const (
	// EventBranch is a source-branch outcome resolved from an LBR record
	// (a conditional jump or its synthetic fall-through jump).
	EventBranch EventKind = iota
	// EventJump is an LBR record of a plain unconditional jump that does
	// not embody a source-branch edge (e.g. a loop backedge).
	EventJump
	// EventCoherence is an LCR record: an access kind, the observed MESI
	// state, and the access's source location.
	EventCoherence
	// EventPollution is an LCR record injected by the driver's
	// enable/disable sequences.
	EventPollution
)

// Event is a profile event in source-stable terms: it is keyed by source
// branch names and source locations rather than raw PCs, so profiles taken
// from differently-instrumented builds of the same program (the reactive
// scheme redeploys an updated binary, §5.2) compare correctly.
type Event struct {
	// Kind classifies the event.
	Kind EventKind
	// Branch is the source-branch name for EventBranch.
	Branch string
	// Edge is the branch outcome for EventBranch.
	Edge isa.BranchEdge
	// File and Line locate EventJump and EventCoherence events.
	File string
	Line int
	// Access and State describe EventCoherence events.
	Access cache.AccessKind
	State  cache.State
}

// String renders the event the way reports print it.
func (e Event) String() string {
	switch e.Kind {
	case EventBranch:
		return fmt.Sprintf("branch %s=%s", e.Branch, e.Edge)
	case EventJump:
		return fmt.Sprintf("jmp@%s:%d", e.File, e.Line)
	case EventCoherence:
		return fmt.Sprintf("%s:%s@%s:%d", e.Access, e.State, e.File, e.Line)
	case EventPollution:
		return fmt.Sprintf("driver-pollution(%s:%s)", e.Access, e.State)
	}
	return "unknown-event"
}

// BranchEvents maps an LBR snapshot to events, newest-first, using the
// program the profile was collected from.
func BranchEvents(p *isa.Program, prof vm.Profile) []Event {
	out := make([]Event, 0, len(prof.Branches))
	for _, r := range prof.Branches {
		if r.From < 0 || r.From >= len(p.Instrs) {
			continue
		}
		in := &p.Instrs[r.From]
		if in.BranchID != isa.NoBranch {
			out = append(out, Event{
				Kind:   EventBranch,
				Branch: p.BranchName(in.BranchID),
				Edge:   in.Edge,
			})
			continue
		}
		out = append(out, Event{
			Kind: EventJump,
			File: in.Loc.File,
			Line: in.Loc.Line,
		})
	}
	return out
}

// CoherenceEvents maps an LCR snapshot to events, newest-first.
func CoherenceEvents(p *isa.Program, prof vm.Profile) []Event {
	out := make([]Event, 0, len(prof.Coherence))
	for _, r := range prof.Coherence {
		if r.PC < 0 || r.PC >= len(p.Instrs) {
			// Keep the access kind and state for display; all pollution
			// still shares one event identity per (kind, state).
			out = append(out, Event{Kind: EventPollution, Access: r.Kind, State: r.State})
			continue
		}
		loc := p.Instrs[r.PC].Loc
		out = append(out, Event{
			Kind:   EventCoherence,
			File:   loc.File,
			Line:   loc.Line,
			Access: r.Kind,
			State:  r.State,
		})
	}
	return out
}

// BranchLocs returns the source locations of the branches in an LBR
// snapshot, for patch-distance measurement (paper Table 6).
func BranchLocs(p *isa.Program, prof vm.Profile) []isa.SourceLoc {
	var locs []isa.SourceLoc
	for _, r := range prof.Branches {
		if r.From >= 0 && r.From < len(p.Instrs) {
			locs = append(locs, p.Instrs[r.From].Loc)
		}
	}
	return locs
}
