package core

import (
	"strings"
	"testing"

	"stmdiag/internal/cache"
	"stmdiag/internal/isa"
	"stmdiag/internal/obs"
	"stmdiag/internal/pmu"
	"stmdiag/internal/vm"
)

func TestModeAndSchemeStrings(t *testing.T) {
	if ModeLBR.String() != "LBRA" || ModeLCR.String() != "LCRA" {
		t.Error("Mode strings wrong")
	}
	if SchemeLogOnly.String() != "log-only" ||
		SchemeReactive.String() != "reactive" ||
		SchemeProactive.String() != "proactive" {
		t.Error("Scheme strings wrong")
	}
	if Scheme(9).String() == "" {
		t.Error("unknown scheme should render")
	}
}

func TestEventStrings(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Kind: EventBranch, Branch: "A", Edge: isa.EdgeTrue}, "branch A=true"},
		{Event{Kind: EventJump, File: "a.c", Line: 3}, "jmp@a.c:3"},
		{Event{Kind: EventCoherence, Access: cache.Load, State: cache.Invalid, File: "b.c", Line: 9}, "load:I@b.c:9"},
		{Event{Kind: EventPollution, Access: cache.Load, State: cache.Exclusive}, "driver-pollution(load:E)"},
	}
	for _, tc := range cases {
		if got := tc.e.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
	if got := (Event{Kind: EventKind(9)}).String(); got != "unknown-event" {
		t.Errorf("unknown event kind = %q", got)
	}
}

func TestCoherenceEventsMapping(t *testing.T) {
	p, err := isa.Assemble("t", `
.file x.c
.func main
main:
.line 4
    exit
`)
	if err != nil {
		t.Fatal(err)
	}
	prof := vm.Profile{Coherence: []pmu.CoherenceEvent{
		{PC: 0, Kind: cache.Store, State: cache.Shared},
		{PC: -1, Kind: cache.Load, State: cache.Exclusive},
		{PC: 99, Kind: cache.Load, State: cache.Invalid},
	}}
	evs := CoherenceEvents(p, prof)
	if len(evs) != 3 {
		t.Fatalf("events = %v", evs)
	}
	if evs[0].Kind != EventCoherence || evs[0].File != "x.c" || evs[0].Line != 4 {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if evs[1].Kind != EventPollution || evs[2].Kind != EventPollution {
		t.Errorf("out-of-range PCs not mapped to pollution: %v", evs[1:])
	}
}

func TestBranchLocs(t *testing.T) {
	p, err := isa.Assemble("t", `
.file x.c
.func main
main:
.line 7
.branch B
    cmpi r1, 0
    je   next
next:
    exit
`)
	if err != nil {
		t.Fatal(err)
	}
	prof := vm.Profile{Branches: []pmu.BranchRecord{
		{From: p.Labels["main"] + 1}, // the je
		{From: -5},                   // ignored
	}}
	locs := BranchLocs(p, prof)
	if len(locs) != 1 || locs[0].Line != 7 {
		t.Errorf("locs = %v", locs)
	}
}

func TestReportHelpers(t *testing.T) {
	fail := []ProfiledRun{{Prog: &isa.Program{}, Profile: vm.Profile{}}}
	rep, err := Diagnose(ModeLCR, fail, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Top(); ok {
		t.Error("empty ranking should have no top")
	}
	if rep.RankOfBranch("x") != 0 || rep.RankOfCoherence(func(Event) bool { return true }) != 0 {
		t.Error("ranks on empty ranking should be 0")
	}
	out := rep.Render(5)
	if !strings.Contains(out, "LCRA diagnosis over 1 failure + 0 success runs") {
		t.Errorf("Render = %q", out)
	}
}

func TestRenderTopK(t *testing.T) {
	prog, err := isa.Assemble("t", `
.func main
main:
.branch A
    cmpi r1, 0
    je   n1
n1:
.branch B
    cmpi r1, 1
    je   n2
n2:
    exit
`)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-build profiles: A=false in failures only, B=false in both.
	jccA, jccB := -1, -1
	for pc := range prog.Instrs {
		if prog.Instrs[pc].Op == isa.OpJe {
			if jccA < 0 {
				jccA = pc
			} else {
				jccB = pc
			}
		}
	}
	mk := func(pcs ...int) vm.Profile {
		var recs []pmu.BranchRecord
		for _, pc := range pcs {
			recs = append(recs, pmu.BranchRecord{From: pc, To: pc + 1, Class: isa.BranchCond})
		}
		return vm.Profile{Branches: recs}
	}
	fail := []ProfiledRun{{prog, mk(jccA, jccB)}, {prog, mk(jccA, jccB)}}
	succ := []ProfiledRun{{prog, mk(jccB)}, {prog, mk(jccB)}}
	rep, err := Diagnose(ModeLBR, fail, succ)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.RankOfBranchEdge("A", isa.EdgeFalse); got != 1 {
		t.Errorf("A=false rank %d\n%s", got, rep.Render(10))
	}
	if !strings.Contains(rep.Render(1), "branch A=false") {
		t.Error("Render(1) missing top event")
	}
	if strings.Count(rep.Render(1), "\n") > 2 {
		t.Error("Render(1) printed more than one entry")
	}
}

func TestRenderFlightTail(t *testing.T) {
	fail := []ProfiledRun{{Prog: &isa.Program{}, Profile: vm.Profile{}}}
	rep, err := Diagnose(ModeLBR, fail, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rep.Render(3), "flight recorder") {
		t.Error("Render mentions a flight tail before AttachFlight")
	}
	evs := []obs.FlightEvent{
		{Cycle: 100, Trial: 4, Kind: obs.FlightTrialStart},
		{Cycle: 120, Trial: 4, Kind: obs.FlightFault, Detail: "panic"},
		{Cycle: 121, Trial: 4, Attempt: 1, Kind: obs.FlightTrialDegraded, Detail: "panic: boom"},
	}
	rep.AttachFlight(evs)
	evs[0].Detail = "mutated" // AttachFlight must copy, not alias
	out := rep.Render(3)
	if !strings.Contains(out, "flight recorder of a degraded trial (3 events, oldest first):") {
		t.Fatalf("Render missing flight header:\n%s", out)
	}
	for _, want := range []string{"cycle 100", "trial 4.1", "panic: boom"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "mutated") {
		t.Error("AttachFlight aliased the caller's slice")
	}
}
