package core

import (
	"testing"

	"stmdiag/internal/isa"
	"stmdiag/internal/kernel"
	"stmdiag/internal/vm"
)

// twoBugs has two independent bugs failing at different logging sites:
// mode=1 takes branch BUGA's bad edge and fails at parser.c:20; mode=2
// takes BUGB's bad edge and fails at writer.c:40. Paper §5.3 claims the
// system separates such failures by site; this program proves it.
const twoBugs = `
.file parser.c
.str pmsg "parse error"
.str wmsg "write error"
.global mode

.func main
main:
    lea  r1, mode
    ld   r2, [r1+0]
.line 10
.branch BUGA
    cmpi r2, 1
    jne  pa_ok             ; mode 1: the parser bug fires
    movi r3, 1
    jmp  pa_join
pa_ok:
    movi r3, 0
pa_join:
.line 20
.branch pa_zguard
    cmpi r3, 0
    je   pa_done
    call error_parse
pa_done:
.file writer.c
.line 30
.branch BUGB
    cmpi r2, 2
    jne  wr_ok             ; mode 2: the writer bug fires
    movi r4, 1
    jmp  wr_join
wr_ok:
    movi r4, 0
wr_join:
.line 40
.branch wr_zguard
    cmpi r4, 0
    je   wr_done
    call error_write
wr_done:
    exit

.func error_parse log
error_parse:
    print pmsg
    fail 1
    ret

.func error_write log
error_write:
    print wmsg
    fail 2
    ret
`

func collectTwoBugs(t *testing.T, inst *Instrumented, mode int64, n int) []ProfiledRun {
	t.Helper()
	var out []ProfiledRun
	for seed := int64(0); len(out) < n && seed < 50; seed++ {
		res, err := vm.Run(inst.Prog, vm.Options{
			Seed:       seed,
			Driver:     kernel.Driver{},
			SegvIoctls: inst.SegvIoctls,
			Globals:    map[string]int64{"mode": mode},
		})
		if err != nil {
			t.Fatal(err)
		}
		if mode == 0 {
			if res.Failed() {
				continue
			}
			if pr, ok := SuccessRunProfile(res); ok {
				out = append(out, ProfiledRun{Prog: inst.Prog, Profile: pr})
			}
			continue
		}
		if !res.Failed() {
			continue
		}
		if pr, ok := FailureRunProfile(res); ok {
			out = append(out, ProfiledRun{Prog: inst.Prog, Profile: pr})
		}
	}
	if len(out) != n {
		t.Fatalf("collected %d/%d mode-%d profiles", len(out), n, mode)
	}
	return out
}

func TestMultipleFailuresDiagnosedPerSite(t *testing.T) {
	p, err := isa.Assemble("twobugs", twoBugs)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := EnhanceLogging(p, Options{LBR: true, Scheme: SchemeProactive})
	if err != nil {
		t.Fatal(err)
	}
	var fail []ProfiledRun
	fail = append(fail, collectTwoBugs(t, inst, 1, 6)...) // parser failures
	fail = append(fail, collectTwoBugs(t, inst, 2, 4)...) // writer failures
	succ := collectTwoBugs(t, inst, 0, 10)

	groups := GroupBySite(fail)
	if len(groups) != 2 {
		t.Fatalf("GroupBySite found %d sites, want 2: %v", len(groups), groups)
	}

	reports, err := DiagnoseBySite(ModeLBR, fail, succ)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("%d site reports", len(reports))
	}
	// Triage order: the parser site saw more failures.
	if reports[0].Site.File != "parser.c" || reports[0].Failures != 6 {
		t.Errorf("first report = %+v, want parser.c with 6 failures", reports[0])
	}
	if got := reports[0].Report.RankOfBranchEdge("BUGA", isa.EdgeTrue); got != 1 {
		t.Errorf("parser site: BUGA rank %d, want 1\n%s", got, reports[0].Report.Render(6))
	}
	if reports[1].Site.File != "writer.c" || reports[1].Failures != 4 {
		t.Errorf("second report = %+v, want writer.c with 4 failures", reports[1])
	}
	if got := reports[1].Report.RankOfBranchEdge("BUGB", isa.EdgeTrue); got != 1 {
		t.Errorf("writer site: BUGB rank %d, want 1\n%s", got, reports[1].Report.Render(6))
	}

	// The pooled diagnosis is strictly worse: neither root cause predicts
	// every failure, so neither can reach a perfect score.
	pooled, err := Diagnose(ModeLBR, fail, succ)
	if err != nil {
		t.Fatal(err)
	}
	if top, _ := pooled.Top(); top.Score >= 0.999 {
		t.Errorf("pooled top score %.3f; mixing sites should deny a perfect predictor", top.Score)
	}
}
