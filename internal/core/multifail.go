package core

import "sort"

// SiteKey identifies a failure location in source-stable terms, so
// profiles from different builds of the same program group together.
type SiteKey struct {
	// File and Line locate the profiling site.
	File string
	Line int
}

// siteKeyOf derives the key from a profile's site PC.
func siteKeyOf(r ProfiledRun) SiteKey {
	if r.Profile.Site >= 0 && r.Profile.Site < len(r.Prog.Instrs) {
		loc := r.Prog.Instrs[r.Profile.Site].Loc
		return SiteKey{File: loc.File, Line: loc.Line}
	}
	return SiteKey{}
}

// GroupBySite splits failure-run profiles by failure location. Large
// software fails for several reasons at once (paper §5.3 "Multiple
// failures"): because every profile records where it was taken, failures
// at different program locations are diagnosed independently instead of
// polluting each other's statistics.
func GroupBySite(fail []ProfiledRun) map[SiteKey][]ProfiledRun {
	groups := make(map[SiteKey][]ProfiledRun)
	for _, r := range fail {
		k := siteKeyOf(r)
		groups[k] = append(groups[k], r)
	}
	return groups
}

// SiteReport is the diagnosis of one failure location.
type SiteReport struct {
	// Site is the failure location.
	Site SiteKey
	// Failures is how many failure profiles the site collected.
	Failures int
	// Report is the per-site diagnosis.
	Report *Report
}

// DiagnoseBySite runs one diagnosis per failure location, sharing the
// success-run profiles across sites, and returns the reports ordered by
// descending failure count (the triage order a developer would use).
func DiagnoseBySite(mode Mode, fail, succ []ProfiledRun) ([]SiteReport, error) {
	var out []SiteReport
	for site, runs := range GroupBySite(fail) {
		rep, err := Diagnose(mode, runs, succ)
		if err != nil {
			return nil, err
		}
		out = append(out, SiteReport{Site: site, Failures: len(runs), Report: rep})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Failures != out[j].Failures {
			return out[i].Failures > out[j].Failures
		}
		if out[i].Site.File != out[j].Site.File {
			return out[i].Site.File < out[j].Site.File
		}
		return out[i].Site.Line < out[j].Site.Line
	})
	return out, nil
}
