package core

import (
	"testing"

	"stmdiag/internal/isa"
	"stmdiag/internal/kernel"
	"stmdiag/internal/pmu"
	"stmdiag/internal/vm"
)

// miniBug is a sort-style sequential bug: when the input exceeds a
// threshold, branch ROOT takes its buggy edge and nulls a pointer that is
// dereferenced a little later, crashing. The root-cause branch is a few
// recorded branches before the failure, as for most Table 6 bugs.
const miniBug = `
.file mini.c
.str  msg "error detected"
.global n
.func main
main:
.line 3
    lea  r1, n
    ld   r2, [r1+0]
.line 5
.branch ROOT
    cmpi r2, 10
    jle  ok            ; false edge: input is sane
    movi r3, 0         ; true edge: bug nulls the pointer
    jmp  cont
ok:
    lea  r3, n
cont:
.line 9
.branch USE
    cmpi r2, 0
    jge  use
use:
.line 11
    ld   r4, [r3+0]    ; segfaults when ROOT went the buggy way
.line 12
.branch CHK
    cmpi r4, 1000
    jle  fine
    call error
fine:
    exit

.func memcopy lib
memcopy:
    ret

.func error log
error:
.line 20
    print msg
    fail 1
    ret
`

func instrument(t *testing.T, src string, opts Options) *Instrumented {
	t.Helper()
	p := asmT(t, src)
	inst, err := EnhanceLogging(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func runInst(t *testing.T, inst *Instrumented, n int64, seed int64) *vm.Result {
	t.Helper()
	res, err := vm.Run(inst.Prog, vm.Options{
		Seed:       seed,
		Driver:     kernel.Driver{},
		SegvIoctls: inst.SegvIoctls,
		Globals:    map[string]int64{"n": n},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEnhanceLoggingArmsAndProfiles(t *testing.T) {
	inst := instrument(t, miniBug, Options{LBR: true, Toggling: true})
	if inst.FailureSites != 1 {
		t.Errorf("FailureSites = %d, want 1", inst.FailureSites)
	}
	// Failure run: n=20 nulls the pointer and segfaults; the segfault
	// handler must capture the LBR.
	res := runInst(t, inst, 20, 1)
	if !res.Failed() || res.FirstFailure().Kind != vm.FailCrash {
		t.Fatalf("failures = %v", res.Failures)
	}
	prof, ok := FailureRunProfile(res)
	if !ok {
		t.Fatal("no failure profile from segfault handler")
	}
	evs := BranchEvents(inst.Prog, prof)
	if len(evs) == 0 {
		t.Fatal("no branch events")
	}
	// The buggy edge of ROOT must be in the captured record.
	found := 0
	for i, e := range evs {
		if e.Kind == EventBranch && e.Branch == "ROOT" && e.Edge == isa.EdgeTrue {
			found = i + 1
		}
	}
	if found == 0 {
		t.Fatalf("ROOT=true not captured: %v", evs)
	}
	if found > 8 {
		t.Errorf("ROOT=true at entry %d; short propagation should keep it in the top 8", found)
	}
}

func TestLoggedFailureProfiledAtSite(t *testing.T) {
	inst := instrument(t, miniBug, Options{LBR: true})
	// n = 5: sane pointer, but the loaded value 5 <= 1000, so no error;
	// craft a logged failure instead with a negative... n = 5 passes all.
	res := runInst(t, inst, 5, 1)
	if res.Failed() {
		t.Fatalf("n=5 should succeed: %v", res.Failures)
	}
	if len(res.FailureProfiles()) != 0 {
		t.Errorf("success run produced failure profiles: %v", res.Profiles)
	}
}

func TestTogglingInsertsPairs(t *testing.T) {
	p := asmT(t, `
.func main
main:
    call libfn
    exit
.func libfn lib
libfn:
    ret
`)
	inst, err := EnhanceLogging(p, Options{LBR: true, Toggling: true})
	if err != nil {
		t.Fatal(err)
	}
	var seq []int64
	for _, in := range inst.Prog.Instrs {
		if in.Op == isa.OpIoctl {
			seq = append(seq, in.Imm)
		}
	}
	// Arm (clean, config, enable) + disable-before-call + enable-after.
	want := []int64{kernel.ReqCleanLBR, kernel.ReqConfigLBR, kernel.ReqEnableLBR,
		kernel.ReqDisableLBR, kernel.ReqEnableLBR}
	if len(seq) != len(want) {
		t.Fatalf("ioctl sequence = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("ioctl sequence = %v, want %v", seq, want)
		}
	}
}

func TestReactiveNeedsFailurePCs(t *testing.T) {
	p := asmT(t, miniBug)
	if _, err := EnhanceLogging(p, Options{LBR: true, Scheme: SchemeReactive}); err == nil {
		t.Error("reactive without failure PCs accepted")
	}
	if _, err := EnhanceLogging(p, Options{}); err == nil {
		t.Error("neither LBR nor LCR accepted")
	}
}

func TestProactiveInsertsSuccessSites(t *testing.T) {
	inst := instrument(t, miniBug, Options{LBR: true, Scheme: SchemeProactive})
	if inst.SuccessSites != 1 {
		t.Errorf("SuccessSites = %d, want 1 (the CHK guard)", inst.SuccessSites)
	}
	res := runInst(t, inst, 5, 1)
	if res.Failed() {
		t.Fatalf("failures: %v", res.Failures)
	}
	if _, ok := SuccessRunProfile(res); !ok {
		t.Error("proactive success run produced no success profile")
	}
}

// TestLBRAEndToEnd is the pipeline acceptance test: instrument, collect 10
// failure and 10 success profiles, diagnose, and require the buggy edge of
// the root-cause branch to be the top-ranked failure predictor — what
// paper §7.2 reports for all 20 sequential-bug failures.
func TestLBRAEndToEnd(t *testing.T) {
	// Failure runs come from the deployed LBRLOG build.
	logBuild := instrument(t, miniBug, Options{LBR: true, Toggling: true})
	var fail []ProfiledRun
	for seed := int64(0); len(fail) < 10 && seed < 40; seed++ {
		res := runInst(t, logBuild, 20, seed)
		if !res.Failed() {
			continue
		}
		if prof, ok := FailureRunProfile(res); ok {
			fail = append(fail, ProfiledRun{Prog: logBuild.Prog, Profile: prof})
		}
	}
	if len(fail) != 10 {
		t.Fatalf("collected %d failure profiles", len(fail))
	}

	// The reactive build adds a success site paired with the faulting
	// instruction (the ld at mini.c:11).
	p := asmT(t, miniBug)
	var faultPC int = -1
	for pc := range p.Instrs {
		if p.Instrs[pc].Op == isa.OpLd && p.Instrs[pc].Loc.Line == 11 {
			faultPC = pc
		}
	}
	if faultPC < 0 {
		t.Fatal("fault instruction not found")
	}
	reactive, err := EnhanceLogging(p, Options{LBR: true, Toggling: true,
		Scheme: SchemeReactive, FailurePCs: []int{faultPC}})
	if err != nil {
		t.Fatal(err)
	}
	if reactive.SuccessSites != 1 {
		t.Fatalf("SuccessSites = %d", reactive.SuccessSites)
	}
	var succ []ProfiledRun
	for seed := int64(0); len(succ) < 10 && seed < 40; seed++ {
		res := runInst(t, reactive, 5, seed)
		if res.Failed() {
			continue
		}
		if prof, ok := SuccessRunProfile(res); ok {
			succ = append(succ, ProfiledRun{Prog: reactive.Prog, Profile: prof})
		}
	}
	if len(succ) != 10 {
		t.Fatalf("collected %d success profiles", len(succ))
	}

	rep, err := Diagnose(ModeLBR, fail, succ)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.RankOfBranchEdge("ROOT", isa.EdgeTrue); got != 1 {
		t.Errorf("ROOT=true rank = %d, want 1\n%s", got, rep.Render(10))
	}
	top, ok := rep.Top()
	if !ok || top.Score != 1.0 {
		t.Errorf("top predictor %v, want perfect score", top)
	}
}

func TestDiagnoseNeedsFailures(t *testing.T) {
	if _, err := Diagnose(ModeLBR, nil, nil); err == nil {
		t.Error("empty diagnosis accepted")
	}
}

func TestOverheadOrdering(t *testing.T) {
	// Cycle accounting must reproduce the paper's cost ordering on a
	// success workload: base < LBRLOG w/o toggling < LBRLOG w/ toggling.
	p := asmT(t, miniBug)
	base, err := vm.Run(p, vm.Options{Globals: map[string]int64{"n": 5}})
	if err != nil {
		t.Fatal(err)
	}
	noTog := instrument(t, miniBug, Options{LBR: true})
	wTog := instrument(t, miniBug, Options{LBR: true, Toggling: true})
	rNoTog := runInst(t, noTog, 5, 1)
	rWTog := runInst(t, wTog, 5, 1)
	if !(base.Cycles < rNoTog.Cycles) {
		t.Errorf("base %d !< no-toggling %d", base.Cycles, rNoTog.Cycles)
	}
	if !(rNoTog.Cycles <= rWTog.Cycles) {
		t.Errorf("no-toggling %d !<= toggling %d", rNoTog.Cycles, rWTog.Cycles)
	}
}

func TestLCRInstrumentationArmsSpawnedThreads(t *testing.T) {
	src := `
.global g
.func main
main:
    movi r1, 7
    spawn worker, r1
    join
    exit
.func worker
worker:
    lea r2, g
    ld  r3, [r2+0]
    halt
`
	p := asmT(t, src)
	inst, err := EnhanceLogging(p, Options{LCR: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(inst.Prog, vm.Options{
		Driver:    kernel.Driver{},
		LCRConfig: pmu.ConfSpaceConsuming,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	worker := m.Threads()[1]
	if !worker.LCR.Enabled() {
		t.Error("spawned thread's LCR not armed")
	}
	if worker.LCR.Len() == 0 {
		t.Error("spawned thread's LCR recorded nothing")
	}
}
