package core

import (
	"fmt"
	"testing"

	"stmdiag/internal/apps"
	"stmdiag/internal/kernel"
	"stmdiag/internal/vm"
)

// rankerProfiles drives a handful of sort-app runs to real ProfiledRun
// inputs, so the ranker tests exercise the whole extraction path rather
// than synthetic events.
func rankerProfiles(t *testing.T) (fail, succ []ProfiledRun) {
	t.Helper()
	a := apps.ByName("sort")
	if a == nil {
		t.Fatal("sort app missing")
	}
	inst, err := EnhanceLogging(a.Program(), Options{LBR: true, Toggling: true})
	if err != nil {
		t.Fatal(err)
	}
	collect := func(w apps.Workload, wantFail bool, n int, base int64) []ProfiledRun {
		var out []ProfiledRun
		for seed := base; len(out) < n && seed < base+100; seed++ {
			opts := w.VMOptions(seed)
			opts.Driver = &kernel.Driver{}
			opts.SegvIoctls = inst.SegvIoctls
			res, err := vm.Run(inst.Prog, opts)
			if err != nil {
				t.Fatal(err)
			}
			if w.FailedRun(res) != wantFail {
				continue
			}
			if p, ok := FailureRunProfile(res); ok {
				out = append(out, ProfiledRun{Prog: inst.Prog, Profile: p})
			}
		}
		if len(out) < n {
			t.Fatalf("collected %d/%d profiles (wantFail=%v)", len(out), n, wantFail)
		}
		return out
	}
	// The success side reuses failing-run snapshots from disjoint seeds:
	// success runs carry no profile on a log-only build (that needs the
	// reactive scheme the harness drives), and the contracts under test —
	// scoring arithmetic over profile sets — depend only on the profiles,
	// not on their provenance.
	return collect(a.Fail, true, 3, 1), collect(a.Fail, true, 3, 200)
}

// TestDiagnoseWithCBIMatchesDiagnose: the default ranker is the existing
// harmonic-mean model, byte for byte — the guarantee that keeps tables 1-8
// golden while Table 9 adds alternatives beside them.
func TestDiagnoseWithCBIMatchesDiagnose(t *testing.T) {
	fail, succ := rankerProfiles(t)
	base, err := Diagnose(ModeLBR, fail, succ)
	if err != nil {
		t.Fatal(err)
	}
	withCBI, err := DiagnoseWith(ModeLBR, RankerCBI, fail, succ)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := withCBI.Render(10), base.Render(10); got != want {
		t.Fatalf("RankerCBI report differs from Diagnose:\n%s\nvs\n%s", got, want)
	}
}

// TestDiagnoseWithRankersShareEvents: every ranker ranks exactly the same
// event set with the same occurrence counters; only scores may differ.
func TestDiagnoseWithRankersShareEvents(t *testing.T) {
	fail, succ := rankerProfiles(t)
	var want map[Event][2]int
	for _, ranker := range Rankers() {
		rep, err := DiagnoseWith(ModeLBR, ranker, fail, succ)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[Event][2]int, len(rep.Ranking))
		for _, s := range rep.Ranking {
			got[s.Event] = [2]int{s.InFail, s.InSucc}
		}
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("%s ranked %d events, cbi ranked %d", ranker, len(got), len(want))
		}
		for e, counts := range want {
			if got[e] != counts {
				t.Fatalf("%s counts for %v = %v, want %v", ranker, e, got[e], counts)
			}
		}
	}
}

// TestParseRankerRoundTrip: every ranker's name parses back to it, and
// junk is rejected.
func TestParseRankerRoundTrip(t *testing.T) {
	for _, r := range Rankers() {
		got, err := ParseRanker(r.String())
		if err != nil || got != r {
			t.Fatalf("ParseRanker(%q) = %v, %v", r.String(), got, err)
		}
	}
	for _, bad := range []string{"", "CBI", "ochiai ", "jaccard"} {
		if _, err := ParseRanker(bad); err == nil {
			t.Fatalf("ParseRanker(%q) accepted", bad)
		}
	}
	if fmt.Sprint(Rankers()) != "[cbi ochiai tarantula]" {
		t.Fatalf("Rankers() = %v", Rankers())
	}
}

// TestDiagnoseWithNeedsFailures mirrors Diagnose's contract for every
// ranker.
func TestDiagnoseWithNeedsFailures(t *testing.T) {
	for _, r := range Rankers() {
		if _, err := DiagnoseWith(ModeLBR, r, nil, nil); err == nil {
			t.Fatalf("%s accepted an empty failure set", r)
		}
	}
}
