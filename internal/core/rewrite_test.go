package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stmdiag/internal/isa"
	"stmdiag/internal/vm"
)

const rewriteDemo = `
.global n
.func main
main:
    lea  r1, n
    ld   r2, [r1+0]
    movi r3, 0
loop:
.branch L
    cmpi r3, 5
    jge  done
    add  r2, r3
    addi r3, 1
    jmp  loop
done:
    out  r2
    call helper
    exit
.func helper
helper:
    addi r2, 1
    ret
`

func asmT(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := isa.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runOutput(t *testing.T, p *isa.Program, opts vm.Options) []string {
	t.Helper()
	res, err := vm.Run(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("failures: %v", res.Failures)
	}
	return res.Output
}

func TestRewriterPreservesSemantics(t *testing.T) {
	p := asmT(t, rewriteDemo)
	base := runOutput(t, p, vm.Options{Globals: map[string]int64{"n": 7}})

	r := NewRewriter(p)
	// Insert harmless nops at assorted positions, including jump targets
	// and function entries.
	for pc := 0; pc < len(p.Instrs); pc += 2 {
		if err := r.InsertBefore(pc, isa.Instr{Op: isa.OpNop}); err != nil {
			t.Fatal(err)
		}
	}
	q, pcMap, err := r.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Instrs) <= len(p.Instrs) {
		t.Fatal("nothing inserted")
	}
	got := runOutput(t, q, vm.Options{Globals: map[string]int64{"n": 7}})
	if len(got) != len(base) || got[0] != base[0] {
		t.Errorf("rewritten output %v, base %v", got, base)
	}
	// The PC map must point at the same instruction.
	for origPC, newPC := range pcMap {
		if p.Instrs[origPC].Op != q.Instrs[newPC].Op {
			t.Errorf("pcMap[%d]=%d maps %v to %v", origPC, newPC, p.Instrs[origPC].Op, q.Instrs[newPC].Op)
		}
	}
}

func TestRewriterRejectsControlInserts(t *testing.T) {
	p := asmT(t, rewriteDemo)
	r := NewRewriter(p)
	if err := r.InsertBefore(0, isa.Instr{Op: isa.OpJmp, Target: 0}); err == nil {
		t.Error("control-flow insert accepted")
	}
	if err := r.InsertBefore(-1, isa.Instr{Op: isa.OpNop}); err == nil {
		t.Error("negative position accepted")
	}
	if err := r.InsertBefore(len(p.Instrs), isa.Instr{Op: isa.OpNop}); err == nil {
		t.Error("past-end position accepted")
	}
}

func TestRewriterLabelPointsAtInsertedBlock(t *testing.T) {
	p := asmT(t, rewriteDemo)
	r := NewRewriter(p)
	entry := p.Entry
	if err := r.InsertBefore(entry, isa.Instr{Op: isa.OpIoctl, Imm: 1}, isa.Instr{Op: isa.OpIoctl, Imm: 2}); err != nil {
		t.Fatal(err)
	}
	q, _, err := r.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if q.Instrs[q.Entry].Op != isa.OpIoctl {
		t.Errorf("entry does not execute inserted code first: %v", q.Instrs[q.Entry])
	}
	if q.Instrs[q.Labels["main"]].Op != isa.OpIoctl {
		t.Error("label main does not point at inserted block")
	}
}

// Property: any pattern of nop insertions leaves program output unchanged.
func TestRewriterQuick(t *testing.T) {
	p, err := isa.Assemble("t", rewriteDemo)
	if err != nil {
		t.Fatal(err)
	}
	base, err := vm.Run(p, vm.Options{Globals: map[string]int64{"n": 3}})
	if err != nil || base.Failed() {
		t.Fatal(err)
	}
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRewriter(p)
		for i := 0; i < int(count%12)+1; i++ {
			pos := rng.Intn(len(p.Instrs))
			var err error
			if rng.Intn(2) == 0 {
				err = r.InsertBefore(pos, isa.Instr{Op: isa.OpNop})
			} else {
				err = r.InsertAfter(pos, isa.Instr{Op: isa.OpNop})
			}
			if err != nil {
				return false
			}
		}
		q, _, err := r.Apply()
		if err != nil {
			return false
		}
		res, err := vm.Run(q, vm.Options{Globals: map[string]int64{"n": 3}})
		if err != nil || res.Failed() {
			return false
		}
		if len(res.Output) != len(base.Output) {
			return false
		}
		for i := range res.Output {
			if res.Output[i] != base.Output[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
