package core

import (
	"fmt"
	"strings"

	"stmdiag/internal/isa"
	"stmdiag/internal/obs"
	"stmdiag/internal/spectrum"
	"stmdiag/internal/stats"
	"stmdiag/internal/vm"
)

// Mode selects which record the diagnosis consumes.
type Mode uint8

const (
	// ModeLBR diagnoses from branch records (LBRA, sequential bugs).
	ModeLBR Mode = iota
	// ModeLCR diagnoses from coherence records (LCRA, concurrency bugs).
	ModeLCR
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeLCR {
		return "LCRA"
	}
	return "LBRA"
}

// ProfiledRun pairs one run's selected profile with the program build it
// was collected from (reactive deployments profile success runs on an
// updated binary, so the builds can differ).
type ProfiledRun struct {
	// Prog is the program build that produced the profile.
	Prog *isa.Program
	// Profile is the selected LBR/LCR snapshot.
	Profile vm.Profile
}

// FailureRunProfile selects a failed run's failure-run profile: the last
// failure-site snapshot, i.e. the one taken at the moment the failure
// surfaced (paper §5.2: exactly one record per fail-stop failure).
func FailureRunProfile(res *vm.Result) (vm.Profile, bool) {
	profs := res.FailureProfiles()
	if len(profs) == 0 {
		return vm.Profile{}, false
	}
	return profs[len(profs)-1], true
}

// SuccessRunProfile selects a successful run's success-run profile: the
// last success-site snapshot, the one nearest to where a failure would
// have occurred.
func SuccessRunProfile(res *vm.Result) (vm.Profile, bool) {
	profs := res.SuccessProfiles()
	if len(profs) == 0 {
		return vm.Profile{}, false
	}
	return profs[len(profs)-1], true
}

// Report is a completed diagnosis.
type Report struct {
	// Mode is the record type diagnosed.
	Mode Mode
	// Ranking lists every event, best failure predictor first.
	Ranking []stats.Scored[Event]
	// FailureRuns and SuccessRuns count the profiles compared.
	FailureRuns, SuccessRuns int
	// Verdict grades the evidence behind the ranking: when capture faults
	// or pollution emptied most failure profiles it reports insufficient
	// evidence rather than letting a ranking over noise pass as a result.
	Verdict stats.Verdict
	// Flight is the flight-recorder tail of a degraded trial the harness
	// attached: the last events the trial's worker recorded before its
	// final panic, shipped with the report the way the paper ships the
	// LBR snapshot the segfault handler read (§3.2, §5.3). Empty when no
	// trial degraded or the run carried no recorder.
	Flight []obs.FlightEvent
}

// AttachFlight ships a degraded trial's flight-recorder tail with the
// report, so a rejected trial contributes its last-K events instead of
// just an error message.
func (r *Report) AttachFlight(evs []obs.FlightEvent) {
	r.Flight = append([]obs.FlightEvent(nil), evs...)
}

// Ranker selects the scoring arithmetic applied to the per-event spectrum
// counters. Every ranker consumes identical event extractions and counts
// (stats.Counts); they differ only in how a count vector becomes a score.
type Ranker uint8

const (
	// RankerCBI is the paper's model: the harmonic mean of prediction
	// precision and recall (stats.Rank). The zero value, so existing
	// callers and default flags keep the paper's arithmetic.
	RankerCBI Ranker = iota
	// RankerOchiai scores with the Ochiai SBFL formula.
	RankerOchiai
	// RankerTarantula scores with the Tarantula SBFL formula.
	RankerTarantula
)

// String names the ranker the way the -ranker flag spells it.
func (r Ranker) String() string {
	switch r {
	case RankerOchiai:
		return "ochiai"
	case RankerTarantula:
		return "tarantula"
	default:
		return "cbi"
	}
}

// Rankers lists every ranker in flag-name order; Table 9 iterates it.
func Rankers() []Ranker { return []Ranker{RankerCBI, RankerOchiai, RankerTarantula} }

// ParseRanker resolves a -ranker flag value.
func ParseRanker(s string) (Ranker, error) {
	for _, r := range Rankers() {
		if s == r.String() {
			return r, nil
		}
	}
	return RankerCBI, fmt.Errorf("core: unknown ranker %q (want cbi, ochiai, or tarantula)", s)
}

// rank scores the run set under the ranker's arithmetic.
func (r Ranker) rank(runs []stats.Run[Event]) []stats.Scored[Event] {
	switch r {
	case RankerOchiai:
		return spectrum.Rank(runs, spectrum.Ochiai)
	case RankerTarantula:
		return spectrum.Rank(runs, spectrum.Tarantula)
	default:
		return stats.Rank(runs)
	}
}

// Diagnose runs the LBRA/LCRA statistical comparison of paper §5.2 over
// failure-run and success-run profiles, with the paper's harmonic-mean
// (CBI-style) scoring.
func Diagnose(mode Mode, fail, succ []ProfiledRun) (*Report, error) {
	return DiagnoseWith(mode, RankerCBI, fail, succ)
}

// DiagnoseWith is Diagnose with a pluggable scoring formula: the same
// profiles, event extraction, counting, verdict, and tie-break order, with
// the ranker choosing the score arithmetic (the Table 9 bake-off axis).
func DiagnoseWith(mode Mode, ranker Ranker, fail, succ []ProfiledRun) (*Report, error) {
	if len(fail) == 0 {
		return nil, fmt.Errorf("core: diagnosis needs at least one failure-run profile")
	}
	runs := make([]stats.Run[Event], 0, len(fail)+len(succ))
	for _, r := range fail {
		runs = append(runs, stats.Run[Event]{Failed: true, Events: eventsOf(mode, r)})
	}
	for _, r := range succ {
		runs = append(runs, stats.Run[Event]{Failed: false, Events: eventsOf(mode, r)})
	}
	return &Report{
		Mode:        mode,
		Ranking:     ranker.rank(runs),
		FailureRuns: len(fail),
		SuccessRuns: len(succ),
		Verdict:     stats.Assess(runs),
	}, nil
}

// RunEvents extracts the mode's events from a profiled run — the same
// extraction Diagnose feeds the statistical model, exported so cooperative
// (fleet) submitters serialize exactly what the monolithic path would rank.
func RunEvents(mode Mode, r ProfiledRun) []Event { return eventsOf(mode, r) }

// eventsOf extracts the mode's events from a profiled run.
func eventsOf(mode Mode, r ProfiledRun) []Event {
	if mode == ModeLCR {
		return CoherenceEvents(r.Prog, r.Profile)
	}
	return BranchEvents(r.Prog, r.Profile)
}

// Top returns the best failure predictor, or a zero event if none.
func (r *Report) Top() (stats.Scored[Event], bool) {
	if len(r.Ranking) == 0 {
		return stats.Scored[Event]{}, false
	}
	return r.Ranking[0], true
}

// RankOfBranch returns the 1-based rank of the named source branch
// (either edge), or 0 if absent.
func (r *Report) RankOfBranch(name string) int {
	return stats.RankOf(r.Ranking, func(e Event) bool {
		return e.Kind == EventBranch && e.Branch == name
	})
}

// RankOfBranchEdge returns the 1-based rank of a specific branch outcome.
func (r *Report) RankOfBranchEdge(name string, edge isa.BranchEdge) int {
	return stats.RankOf(r.Ranking, func(e Event) bool {
		return e.Kind == EventBranch && e.Branch == name && e.Edge == edge
	})
}

// RankOfCoherence returns the 1-based rank of the first coherence event
// satisfying the predicate.
func (r *Report) RankOfCoherence(match func(Event) bool) int {
	return stats.RankOf(r.Ranking, func(e Event) bool {
		return e.Kind == EventCoherence && match(e)
	})
}

// Render formats the top-k ranking for humans.
func (r *Report) Render(k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s diagnosis over %d failure + %d success runs\n",
		r.Mode, r.FailureRuns, r.SuccessRuns)
	if r.Verdict != stats.VerdictConclusive {
		fmt.Fprintf(&b, "verdict: %s — most failure profiles were empty or lost\n", r.Verdict)
	}
	if len(r.Flight) > 0 {
		fmt.Fprintf(&b, "flight recorder of a degraded trial (%d events, oldest first):\n", len(r.Flight))
		for _, ev := range r.Flight {
			fmt.Fprintf(&b, "     %s\n", ev)
		}
	}
	for i, s := range r.Ranking {
		if i >= k {
			break
		}
		fmt.Fprintf(&b, "%3d. %s\n", i+1, s)
	}
	return b.String()
}
