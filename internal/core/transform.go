package core

import (
	"fmt"

	"stmdiag/internal/cfg"
	"stmdiag/internal/isa"
	"stmdiag/internal/kernel"
	"stmdiag/internal/obs"
)

// Scheme selects how success-run profiles are collected (paper §5.2).
type Scheme uint8

const (
	// SchemeLogOnly is plain LBRLOG/LCRLOG: failure-site profiling only,
	// no success sites.
	SchemeLogOnly Scheme = iota
	// SchemeReactive inserts success sites only for failure locations
	// already observed (the updated-binary scheme; needs Options.FailurePCs).
	SchemeReactive
	// SchemeProactive inserts success sites for every failure-logging site
	// before release. It cannot cover unexpected locations such as
	// segmentation faults.
	SchemeProactive
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeLogOnly:
		return "log-only"
	case SchemeReactive:
		return "reactive"
	case SchemeProactive:
		return "proactive"
	}
	return fmt.Sprintf("scheme(%d)", uint8(s))
}

// Options configure the transformer.
type Options struct {
	// LBR and LCR choose which facilities to arm and profile.
	LBR, LCR bool
	// Toggling wraps calls to library functions with disable/enable pairs
	// so library execution cannot pollute the records (paper §4.3). It
	// costs run time; §7.1.3 measures the trade-off.
	Toggling bool
	// Scheme picks the success-site strategy.
	Scheme Scheme
	// FailurePCs are original-program PCs where failures were observed
	// (log-call sites or faulting instructions); SchemeReactive pairs
	// success sites with them.
	FailurePCs []int
}

// Instrumented is the transformed program plus the run configuration it
// needs.
type Instrumented struct {
	// Prog is the rewritten program.
	Prog *isa.Program
	// SegvIoctls is the driver request sequence for the segmentation-fault
	// handler (vm.Options.SegvIoctls).
	SegvIoctls []int64
	// PCMap maps original PCs to the new PC of the same instruction.
	PCMap map[int]int
	// FailureSites and SuccessSites count the instrumented sites.
	FailureSites, SuccessSites int
}

// EnhanceLogging applies the LBRLOG/LCRLOG transformation of paper §5.1:
//
//  1. wrap library calls with record toggling (when Options.Toggling);
//  2. arm (clean, configure, enable) the records at the entry of main;
//  3. profile right before every call to a failure-logging function;
//  4. register a segmentation-fault handler that profiles.
//
// With SchemeReactive or SchemeProactive it additionally inserts the
// success logging sites of Figure 8.
func EnhanceLogging(p *isa.Program, opts Options) (*Instrumented, error) {
	if !opts.LBR && !opts.LCR {
		return nil, fmt.Errorf("core: nothing to instrument (neither LBR nor LCR selected)")
	}
	if opts.Scheme == SchemeReactive && len(opts.FailurePCs) == 0 {
		return nil, fmt.Errorf("core: reactive scheme needs observed failure PCs")
	}
	r := NewRewriter(p)
	inst := &Instrumented{}

	// Step 2: arm at the entry of main.
	var arm []isa.Instr
	if opts.LBR {
		arm = append(arm, ioctl(kernel.ReqCleanLBR), ioctl(kernel.ReqConfigLBR), ioctl(kernel.ReqEnableLBR))
	}
	if opts.LCR {
		arm = append(arm, ioctl(kernel.ReqCleanLCR), ioctl(kernel.ReqConfigLCR), ioctl(kernel.ReqEnableLCR))
	}
	if err := r.InsertBefore(p.Entry, arm...); err != nil {
		return nil, err
	}
	// Spawned threads arm their own LCR (per-thread record): instrument
	// every spawn target entry as well.
	armed := map[int]bool{p.Entry: true}
	for pc := range p.Instrs {
		in := &p.Instrs[pc]
		if in.Op == isa.OpSpawn && !armed[in.Target] {
			armed[in.Target] = true
			if err := r.InsertBefore(in.Target, arm...); err != nil {
				return nil, err
			}
		}
	}

	// Step 1: toggling around library calls.
	if opts.Toggling {
		for pc := range p.Instrs {
			in := &p.Instrs[pc]
			if in.Op != isa.OpCall {
				continue
			}
			f := p.FuncAt(in.Target)
			if f == nil || !f.Attr.Has(isa.AttrLibrary) {
				continue
			}
			if err := r.InsertBefore(pc, disableSeq(opts)...); err != nil {
				return nil, err
			}
			if err := r.InsertAfter(pc, enableSeq(opts)...); err != nil {
				return nil, err
			}
		}
	}

	// Step 3: profile before every failure-logging call.
	logSites := cfg.LogSites(p)
	for _, pc := range logSites {
		if err := r.InsertBefore(pc, profileSeq(opts, false)...); err != nil {
			return nil, err
		}
		inst.FailureSites++
	}

	// Success sites (Figure 8).
	switch opts.Scheme {
	case SchemeProactive:
		for _, pc := range logSites {
			n, err := insertSuccessSite(r, p, pc, opts)
			if err != nil {
				return nil, err
			}
			inst.SuccessSites += n
		}
	case SchemeReactive:
		for _, pc := range opts.FailurePCs {
			if pc < 0 || pc >= len(p.Instrs) {
				return nil, fmt.Errorf("core: failure PC %d out of range", pc)
			}
			n, err := insertSuccessSite(r, p, pc, opts)
			if err != nil {
				return nil, err
			}
			inst.SuccessSites += n
		}
	}

	prog, pcMap, err := r.Apply()
	if err != nil {
		return nil, err
	}
	inst.Prog = prog
	inst.PCMap = pcMap
	// Step 4: the segfault handler profiles whatever is armed.
	if opts.LBR {
		inst.SegvIoctls = append(inst.SegvIoctls, kernel.ReqDisableLBR, kernel.ReqProfileLBR)
	}
	if opts.LCR {
		inst.SegvIoctls = append(inst.SegvIoctls, kernel.ReqDisableLCR, kernel.ReqProfileLCR)
	}
	reg := obs.Default()
	reg.Counter("core.instrumented").Inc()
	reg.Counter("core.sites.failure").Add(uint64(inst.FailureSites))
	reg.Counter("core.sites.success").Add(uint64(inst.SuccessSites))
	return inst, nil
}

// insertSuccessSite places a success-profiling sequence for a failure
// location (paper Figure 8 and §5.2):
//
//   - for a failure-logging call, right before the conditional jump that
//     guards the basic block containing the call, so the profile is taken
//     whether or not the program then enters the failing block;
//   - for any other instruction i (one that can trigger a segmentation
//     fault), right after i.
//
// It returns how many sites were inserted (0 when no guard exists).
func insertSuccessSite(r *Rewriter, p *isa.Program, failPC int, opts Options) (int, error) {
	in := &p.Instrs[failPC]
	if in.Op == isa.OpCall {
		f := p.FuncAt(failPC)
		for pc := failPC - 1; pc >= 0 && f != nil && pc >= f.Entry; pc-- {
			if p.Instrs[pc].Op.IsCond() {
				if err := r.InsertBefore(pc, profileSeq(opts, true)...); err != nil {
					return 0, err
				}
				return 1, nil
			}
		}
		// No guard in the function: the call is unconditional; reaching it
		// is itself the failure, so there is no comparable success site.
		return 0, nil
	}
	if err := r.InsertAfter(failPC, profileSeq(opts, true)...); err != nil {
		return 0, err
	}
	return 1, nil
}

// ioctl builds a driver-request instruction.
func ioctl(req int64) isa.Instr {
	return isa.Instr{Op: isa.OpIoctl, Imm: req, BranchID: isa.NoBranch}
}

// disableSeq stops recording for the armed facilities.
func disableSeq(opts Options) []isa.Instr {
	var seq []isa.Instr
	if opts.LBR {
		seq = append(seq, ioctl(kernel.ReqDisableLBR))
	}
	if opts.LCR {
		seq = append(seq, ioctl(kernel.ReqDisableLCR))
	}
	return seq
}

// enableSeq resumes recording.
func enableSeq(opts Options) []isa.Instr {
	var seq []isa.Instr
	if opts.LBR {
		seq = append(seq, ioctl(kernel.ReqEnableLBR))
	}
	if opts.LCR {
		seq = append(seq, ioctl(kernel.ReqEnableLCR))
	}
	return seq
}

// profileSeq freezes, snapshots and re-arms the records at a logging site.
func profileSeq(opts Options, success bool) []isa.Instr {
	var seq []isa.Instr
	if opts.LBR {
		req := kernel.ReqProfileLBR
		if success {
			req = kernel.ReqProfileLBRSuccess
		}
		seq = append(seq, ioctl(kernel.ReqDisableLBR), ioctl(req), ioctl(kernel.ReqEnableLBR))
	}
	if opts.LCR {
		req := kernel.ReqProfileLCR
		if success {
			req = kernel.ReqProfileLCRSuccess
		}
		seq = append(seq, ioctl(kernel.ReqDisableLCR), ioctl(req), ioctl(kernel.ReqEnableLCR))
	}
	return seq
}
