// Package core implements the paper's contribution: using the hardware
// short-term memory for production-run failure diagnosis.
//
// It provides the two usage modes of paper §5:
//
//   - LBRLOG / LCRLOG (log enhancement): a program transformer that mirrors
//     the paper's source-to-source transformer, wrapping library calls with
//     record toggling, arming the LBR/LCR at the entry of main, profiling
//     right before every failure-logging call, and registering a
//     segmentation-fault handler that profiles on crashes.
//
//   - LBRA / LCRA (automatic diagnosis): success-site instrumentation
//     (reactive or proactive, Figure 8) plus the statistical comparison of
//     failure-run and success-run profiles that ranks the best
//     failure-predicting event (§5.2).
package core

import (
	"fmt"

	"stmdiag/internal/isa"
)

// Rewriter inserts instrumentation instructions into a resolved program,
// remapping every control-flow target, label and function boundary. Only
// non-control instructions (ioctl and friends) may be inserted; that keeps
// remapping exact and mirrors the fact that the paper's instrumentation
// adds no user-level branches (§4.3).
//
// InsertBefore attaches code to an instruction: control transfers targeting
// that instruction execute the inserted code first (so arming code at a
// function entry runs on every call). InsertAfter detaches code behind an
// instruction: control transfers targeting the *next* instruction skip it
// (so the re-enable half of a toggling pair runs only on the fall-through
// path of the call it wraps, never on jumps into the join point).
type Rewriter struct {
	prog   *isa.Program
	before map[int][]isa.Instr
	after  map[int][]isa.Instr
}

// NewRewriter prepares to rewrite a copy of p; p itself is not modified.
func NewRewriter(p *isa.Program) *Rewriter {
	return &Rewriter{
		prog:   p,
		before: make(map[int][]isa.Instr),
		after:  make(map[int][]isa.Instr),
	}
}

func (r *Rewriter) add(m map[int][]isa.Instr, pc int, ins []isa.Instr) error {
	if pc < 0 || pc >= len(r.prog.Instrs) {
		return fmt.Errorf("core: insert position %d out of range", pc)
	}
	for _, in := range ins {
		if in.Op.IsControl() {
			return fmt.Errorf("core: refusing to insert control instruction %v", in.Op)
		}
	}
	marked := make([]isa.Instr, len(ins))
	for i, in := range ins {
		in.Synthetic = true
		in.BranchID = isa.NoBranch
		if in.Loc.IsZero() {
			// Inherit the location of the instruction being instrumented,
			// so profile sites report meaningful source positions.
			in.Loc = r.prog.Instrs[pc].Loc
		}
		marked[i] = in
	}
	m[pc] = append(m[pc], marked...)
	return nil
}

// InsertBefore schedules instructions immediately before the original PC;
// labels and branch targets referring to pc will execute them.
func (r *Rewriter) InsertBefore(pc int, ins ...isa.Instr) error {
	return r.add(r.before, pc, ins)
}

// InsertAfter schedules instructions immediately after the original PC, on
// its fall-through path only.
func (r *Rewriter) InsertAfter(pc int, ins ...isa.Instr) error {
	return r.add(r.after, pc, ins)
}

// Apply produces the rewritten program and a map from original PCs to the
// new PC of the same instruction.
func (r *Rewriter) Apply() (*isa.Program, map[int]int, error) {
	p := r.prog
	n := len(p.Instrs)

	// Layout per original pc: [before[pc]...] [instr] [after[pc]...].
	// startOf[pc] = new index of before-block (what targets remap to);
	// instrAt[pc] = new index of the original instruction.
	startOf := make([]int, n+1)
	instrAt := make([]int, n)
	shift := 0
	for pc := 0; pc < n; pc++ {
		startOf[pc] = pc + shift
		shift += len(r.before[pc])
		instrAt[pc] = pc + shift
		shift += len(r.after[pc])
	}
	startOf[n] = n + shift

	out := p.Clone()
	out.Instrs = make([]isa.Instr, 0, n+shift)
	for pc := 0; pc < n; pc++ {
		out.Instrs = append(out.Instrs, r.before[pc]...)
		in := p.Instrs[pc]
		if in.Op.IsControl() || in.Op == isa.OpSpawn {
			if in.Target >= 0 && in.Target <= n {
				in.Target = startOf[in.Target]
			}
		}
		out.Instrs = append(out.Instrs, in)
		out.Instrs = append(out.Instrs, r.after[pc]...)
	}

	for name, pc := range out.Labels {
		out.Labels[name] = startOf[pc]
	}
	for i := range out.Funcs {
		out.Funcs[i].Entry = startOf[out.Funcs[i].Entry]
		out.Funcs[i].End = startOf[out.Funcs[i].End]
	}
	out.Entry = startOf[out.Entry]

	pcMap := make(map[int]int, n)
	for pc := 0; pc < n; pc++ {
		pcMap[pc] = instrAt[pc]
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: rewrite produced invalid program: %w", err)
	}
	return out, pcMap, nil
}
