package core

import (
	"strings"
	"testing"

	"stmdiag/internal/isa"
	"stmdiag/internal/pmu"
	"stmdiag/internal/stats"
	"stmdiag/internal/vm"
)

// TestDiagnoseVerdict pins the graceful-degradation contract: a diagnosis
// over mostly-empty failure profiles flags itself as insufficient evidence
// instead of presenting a ranking over noise, and Render surfaces that.
func TestDiagnoseVerdict(t *testing.T) {
	prog, err := isa.Assemble("t", `
.func main
main:
.branch A
    cmpi r1, 0
    je   n1
n1:
    exit
`)
	if err != nil {
		t.Fatal(err)
	}
	jcc := -1
	for pc := range prog.Instrs {
		if prog.Instrs[pc].Op == isa.OpJe {
			jcc = pc
		}
	}
	full := vm.Profile{Branches: []pmu.BranchRecord{{From: jcc, To: jcc + 1, Class: isa.BranchCond}}}
	empty := vm.Profile{}

	rep, err := Diagnose(ModeLBR, []ProfiledRun{{prog, full}, {prog, full}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != stats.VerdictConclusive {
		t.Errorf("full profiles: verdict = %v, want conclusive", rep.Verdict)
	}
	if strings.Contains(rep.Render(3), "insufficient") {
		t.Error("conclusive Render mentions insufficient evidence")
	}

	rep, err = Diagnose(ModeLBR, []ProfiledRun{{prog, full}, {prog, empty}, {prog, empty}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != stats.VerdictInsufficient {
		t.Errorf("mostly-empty profiles: verdict = %v, want insufficient", rep.Verdict)
	}
	if !strings.Contains(rep.Render(3), "insufficient evidence") {
		t.Errorf("Render missing the verdict:\n%s", rep.Render(3))
	}
}
