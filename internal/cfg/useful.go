package cfg

import (
	"sort"

	"stmdiag/internal/isa"
)

// Analyzer computes useful-branch ratios (paper Table 5).
type Analyzer struct {
	g *Graph
	// Window is the LBR depth the exploration fills (16 on Nehalem).
	Window int
	// MaxPaths caps the backward paths enumerated per logging site.
	MaxPaths int
}

// NewAnalyzer builds an analyzer with the paper's defaults: a 16-entry
// window and a 128-path cap per site.
func NewAnalyzer(p *isa.Program) *Analyzer {
	return &Analyzer{g: Build(p), Window: 16, MaxPaths: 128}
}

// SiteReport is the analysis result for one logging site.
type SiteReport struct {
	// Site is the logging-site PC.
	Site int
	// Paths is how many backward paths were explored.
	Paths int
	// Records is the total would-be LBR records over all paths.
	Records int
	// Useful is how many of those records are useful.
	Useful int
	// Ratio is the mean per-path useful ratio.
	Ratio float64
}

// AppReport aggregates over an application's logging sites.
type AppReport struct {
	// App is the program name.
	App string
	// LogSites is the number of logging sites analyzed.
	LogSites int
	// Ratio is the useful-branch ratio averaged across all logging sites
	// (paper Table 5's "Useful br. ratio").
	Ratio float64
	// Sites holds the per-site details, ordered by PC.
	Sites []SiteReport
}

// recordedEdge reports whether traversing CFG edge from->to would push an
// LBR record under the paper's filter configuration (taken conditional
// jumps and unconditional relative jumps; calls, returns and indirect
// transfers are filtered out).
func (a *Analyzer) recordedEdge(from, to int) bool {
	in := &a.g.prog.Instrs[from]
	switch in.Op {
	case isa.OpJmp:
		return true
	case isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle, isa.OpJg, isa.OpJge:
		return to == in.Target // only the taken edge records
	}
	return false
}

// usefulRecord reports whether the record produced by edge from->to is
// useful for a logging site with backward-reachability set reach: the
// record must carry source-branch outcome information (it embodies a
// source-branch edge) and the opposite outcome must also be able to reach
// the site — otherwise static control-flow analysis infers the outcome
// from the site alone.
func (a *Analyzer) usefulRecord(from int, reach map[int]bool) bool {
	in := &a.g.prog.Instrs[from]
	if in.BranchID == isa.NoBranch {
		// A plain unconditional jump: always taken, statically inferable.
		return false
	}
	// Locate the conditional jump of this source branch: either this very
	// instruction, or (for the synthetic fall-through jump) the
	// instruction before it.
	condPC := from
	if !in.Op.IsCond() {
		condPC = from - 1
	}
	if condPC < 0 || !a.g.prog.Instrs[condPC].Op.IsCond() {
		return false
	}
	cond := &a.g.prog.Instrs[condPC]
	takenReach := reach[cond.Target]
	fallReach := condPC+1 < len(a.g.prog.Instrs) && reach[condPC+1]
	return takenReach && fallReach
}

// SiteRatio analyzes one logging site: it explores backward paths until
// each contains Window records (or runs out of predecessors), classifies
// every record, and averages the per-path useful ratios.
func (a *Analyzer) SiteRatio(site int) SiteReport {
	reach := a.g.ReachableTo(site)
	rep := SiteReport{Site: site}
	var ratios []float64

	const maxDepth = 1024 // instructions per backward path; guards recursion
	type frame struct {
		pc      int
		depth   int
		records int
		useful  int
	}
	var dfs func(f frame)
	dfs = func(f frame) {
		if rep.Paths >= a.MaxPaths {
			return
		}
		if f.records >= a.Window || f.depth >= maxDepth {
			if f.records == 0 {
				return
			}
			rep.Paths++
			rep.Records += f.records
			rep.Useful += f.useful
			ratios = append(ratios, float64(f.useful)/float64(f.records))
			return
		}
		preds := a.g.PredsOf(f.pc)
		if len(preds) == 0 {
			// Reached the program entry (or an unmodeled edge) before the
			// window filled; the partial path still contributes.
			rep.Paths++
			if f.records > 0 {
				rep.Records += f.records
				rep.Useful += f.useful
				ratios = append(ratios, float64(f.useful)/float64(f.records))
			}
			return
		}
		for _, p := range preds {
			nf := frame{pc: p, depth: f.depth + 1, records: f.records, useful: f.useful}
			if a.recordedEdge(p, f.pc) {
				nf.records++
				if a.usefulRecord(p, reach) {
					nf.useful++
				}
			}
			dfs(nf)
			if rep.Paths >= a.MaxPaths {
				return
			}
		}
	}
	dfs(frame{pc: site})
	var sum float64
	for _, r := range ratios {
		sum += r
	}
	if len(ratios) > 0 {
		rep.Ratio = sum / float64(len(ratios))
	}
	return rep
}

// Analyze computes the application-level report over every logging site.
func (a *Analyzer) Analyze() AppReport {
	sites := LogSites(a.g.prog)
	rep := AppReport{App: a.g.prog.Name, LogSites: len(sites)}
	var sum float64
	n := 0
	for _, s := range sites {
		sr := a.SiteRatio(s)
		rep.Sites = append(rep.Sites, sr)
		if sr.Paths > 0 && sr.Records > 0 {
			sum += sr.Ratio
			n++
		}
	}
	if n > 0 {
		rep.Ratio = sum / float64(n)
	}
	sort.Slice(rep.Sites, func(i, j int) bool { return rep.Sites[i].Site < rep.Sites[j].Site })
	return rep
}
