package cfg

import (
	"testing"

	"stmdiag/internal/isa"
)

func asm(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := isa.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSuccessorsShapes(t *testing.T) {
	p := asm(t, `
.func main
main:
    movi r1, 0
    cmpi r1, 1
    je   a
    jmp  b
a:
    call f
b:
    exit
.func f
f:
    ret
`)
	g := Build(p)
	for pc := range p.Instrs {
		in := p.Instrs[pc]
		ss := g.Succs(pc)
		switch in.Op {
		case isa.OpJe:
			if len(ss) != 2 {
				t.Errorf("je succs = %v", ss)
			}
		case isa.OpJmp:
			if len(ss) != 1 || ss[0] != in.Target {
				t.Errorf("jmp succs = %v", ss)
			}
		case isa.OpExit, isa.OpRet:
			if len(ss) != 0 {
				t.Errorf("%v succs = %v, want none", in.Op, ss)
			}
		case isa.OpCall:
			if len(ss) != 1 || ss[0] != pc+1 {
				t.Errorf("call succs = %v, want step-over", ss)
			}
		}
	}
	// Function entry's preds must include the call site.
	f := p.FuncByName("f")
	preds := g.PredsOf(f.Entry)
	found := false
	for _, pr := range preds {
		if p.Instrs[pr].Op == isa.OpCall {
			found = true
		}
	}
	if !found {
		t.Errorf("entry preds %v missing call site", preds)
	}
}

func TestReachableTo(t *testing.T) {
	p := asm(t, `
.func main
main:
    cmpi r1, 0
    je   skip
    movi r2, 1     ; only on the fall-through path
skip:
    exit
.func dead
dead:
    ret
`)
	g := Build(p)
	exit := -1
	for pc := range p.Instrs {
		if p.Instrs[pc].Op == isa.OpExit {
			exit = pc
		}
	}
	reach := g.ReachableTo(exit)
	if !reach[p.Entry] {
		t.Error("entry cannot reach exit")
	}
	dead := p.FuncByName("dead")
	if reach[dead.Entry] {
		t.Error("uncalled function reaches exit")
	}
}

func TestLogSites(t *testing.T) {
	p := asm(t, `
.func main
main:
    call error
    call helper
    call error
    exit
.func helper
helper:
    ret
.func error log
error:
    fail 1
    ret
`)
	sites := LogSites(p)
	if len(sites) != 2 {
		t.Fatalf("LogSites = %v, want 2", sites)
	}
}

// branchyProgram has a diamond of data-dependent branches before the
// logging site: none of their outcomes is implied by reaching the site, so
// all conditional records are useful.
const branchyProgram = `
.func main
main:
    movi r1, 0
    movi r2, 1
.branch A
    cmpi r1, 5
    jge  a2
a2:
.branch B
    cmpi r2, 3
    jge  b2
b2:
.branch C
    cmpi r1, 9
    jge  c2
c2:
    call error
    exit
.func error log
error:
    fail 1
    ret
`

func TestUsefulBranchRatioAllUseful(t *testing.T) {
	p := asm(t, branchyProgram)
	a := NewAnalyzer(p)
	rep := a.Analyze()
	if rep.LogSites != 1 {
		t.Fatalf("LogSites = %d", rep.LogSites)
	}
	if rep.Ratio != 1.0 {
		t.Errorf("Ratio = %v, want 1.0 (every branch outcome is uncertain): %+v", rep.Ratio, rep.Sites)
	}
}

// gatedProgram logs only inside one edge of branch G: reaching the site
// implies G's outcome, so G's record is inferable (not useful).
const gatedProgram = `
.func main
main:
    movi r1, 0
.branch A
    cmpi r1, 5
    jge  a2
a2:
.branch G
    cmpi r1, 7
    jge  past
    call error     ; only reachable when G is false
past:
    exit
.func error log
error:
    fail 1
    ret
`

func TestGatedBranchNotUseful(t *testing.T) {
	p := asm(t, gatedProgram)
	a := NewAnalyzer(p)
	rep := a.Analyze()
	if rep.LogSites != 1 {
		t.Fatalf("LogSites = %d", rep.LogSites)
	}
	if rep.Ratio >= 1.0 || rep.Ratio <= 0 {
		t.Errorf("Ratio = %v, want in (0,1): G inferable, A useful; sites %+v", rep.Ratio, rep.Sites)
	}
}

// loopProgram: the backedge jmp is an unconditional record (not useful);
// the loop condition is useful only while the exit edge also reaches the
// site.
const loopProgram = `
.func main
main:
    movi r1, 0
loop:
.branch L
    cmpi r1, 4
    jge  done
    addi r1, 1
    jmp  loop
done:
    call error
    exit
.func error log
error:
    fail 1
    ret
`

func TestLoopTerminatesAndMixes(t *testing.T) {
	p := asm(t, loopProgram)
	a := NewAnalyzer(p)
	a.Window = 8
	a.MaxPaths = 32
	rep := a.Analyze()
	if len(rep.Sites) != 1 {
		t.Fatalf("sites = %v", rep.Sites)
	}
	s := rep.Sites[0]
	if s.Paths == 0 || s.Records == 0 {
		t.Fatalf("no paths explored: %+v", s)
	}
	// The loop-condition branch is useful (both edges reach the site via
	// iteration), the backedge jmp is not: ratio strictly between 0 and 1.
	if rep.Ratio <= 0 || rep.Ratio >= 1 {
		t.Errorf("Ratio = %v, want in (0,1): %+v", rep.Ratio, s)
	}
}

func TestInterproceduralBackwalk(t *testing.T) {
	// The logging site is inside a callee; backward exploration must leave
	// through the entry to the caller's branches.
	p := asm(t, `
.func main
main:
.branch A
    cmpi r1, 5
    jge  a2
a2:
    call logger
    exit
.func logger
logger:
    call error
    ret
.func error log
error:
    fail 1
    ret
`)
	a := NewAnalyzer(p)
	rep := a.Analyze()
	if len(rep.Sites) != 1 {
		t.Fatalf("sites = %d", len(rep.Sites))
	}
	if rep.Sites[0].Records == 0 {
		t.Fatal("backward walk never left the callee")
	}
	if rep.Ratio != 1.0 {
		t.Errorf("Ratio = %v, want 1.0 (branch A useful)", rep.Ratio)
	}
}

func TestMaxPathsCap(t *testing.T) {
	p := asm(t, branchyProgram)
	a := NewAnalyzer(p)
	a.MaxPaths = 2
	rep := a.SiteRatio(LogSites(p)[0])
	if rep.Paths > 2 {
		t.Errorf("Paths = %d exceeds cap", rep.Paths)
	}
}
