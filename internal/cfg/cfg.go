// Package cfg builds control-flow graphs over assembled programs and
// implements the static analysis behind paper Table 5: for each failure-
// logging site, explore backwards along all possible paths until each path
// contains enough branches to fill the LBR, and classify each would-be LBR
// record as useful (its taken-ness cannot be inferred from the fact that
// execution reached the logging site) or inferable.
//
// The paper implements this with an LLVM analyzer over the real programs;
// here the same question is answered over the VM programs' CFGs.
package cfg

import (
	"stmdiag/internal/isa"
)

// Graph is an instruction-granularity CFG with interprocedural edges from
// function entries back to their call sites (so backward exploration can
// leave a function the way execution entered it). Calls are otherwise
// stepped over: the analysis does not descend into callees, a conservative
// approximation the package documentation of the analyzer notes.
type Graph struct {
	prog  *isa.Program
	succs [][]int
	preds [][]int
	// entryPreds maps a function-entry PC to the call sites targeting it.
	entryPreds map[int][]int
}

// Build constructs the graph.
func Build(p *isa.Program) *Graph {
	g := &Graph{
		prog:       p,
		succs:      make([][]int, len(p.Instrs)),
		preds:      make([][]int, len(p.Instrs)),
		entryPreds: make(map[int][]int),
	}
	for pc := range p.Instrs {
		in := &p.Instrs[pc]
		var ss []int
		switch in.Op {
		case isa.OpJmp:
			ss = []int{in.Target}
		case isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle, isa.OpJg, isa.OpJge:
			ss = []int{in.Target, pc + 1}
		case isa.OpRet, isa.OpExit, isa.OpHalt, isa.OpJmpr, isa.OpCallr:
			// Returns and program exits end intraprocedural flow; indirect
			// transfers have statically unknown targets. A callr still
			// continues at pc+1 after the callee returns.
			if in.Op == isa.OpCallr {
				ss = []int{pc + 1}
			}
		case isa.OpCall:
			// Record the interprocedural edges: into the callee at the
			// call, and back from each of the callee's returns to the
			// continuation — so backward exploration sees the branches a
			// callee would leave in the LBR. The step-over edge remains
			// for callees without returns.
			ss = []int{pc + 1}
			g.entryPreds[in.Target] = append(g.entryPreds[in.Target], pc)
			if f := p.FuncAt(in.Target); f != nil && pc+1 < len(p.Instrs) {
				for rpc := f.Entry; rpc < f.End; rpc++ {
					if p.Instrs[rpc].Op == isa.OpRet {
						g.preds[pc+1] = append(g.preds[pc+1], rpc)
					}
				}
			}
		case isa.OpSpawn:
			ss = []int{pc + 1}
			g.entryPreds[in.Target] = append(g.entryPreds[in.Target], pc)
		default:
			ss = []int{pc + 1}
		}
		var valid []int
		for _, s := range ss {
			if s >= 0 && s < len(p.Instrs) {
				valid = append(valid, s)
			}
		}
		g.succs[pc] = valid
		for _, s := range valid {
			g.preds[s] = append(g.preds[s], pc)
		}
	}
	return g
}

// Prog returns the underlying program.
func (g *Graph) Prog() *isa.Program { return g.prog }

// Succs returns the intraprocedural successors of pc.
func (g *Graph) Succs(pc int) []int { return g.succs[pc] }

// PredsOf returns the predecessors of pc, including (for function entries)
// the call and spawn sites that transfer there.
func (g *Graph) PredsOf(pc int) []int {
	ps := g.preds[pc]
	if extra, ok := g.entryPreds[pc]; ok {
		out := make([]int, 0, len(ps)+len(extra))
		out = append(out, ps...)
		out = append(out, extra...)
		return out
	}
	return ps
}

// ReachableTo returns the set of PCs from which the target is reachable,
// following the same edges PredsOf exposes. The target itself is included.
func (g *Graph) ReachableTo(target int) map[int]bool {
	seen := map[int]bool{target: true}
	work := []int{target}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		for _, p := range g.PredsOf(pc) {
			if !seen[p] {
				seen[p] = true
				work = append(work, p)
			}
		}
	}
	return seen
}

// LogSites returns the PCs of every call to a failure-logging function —
// the "log points" of paper Tables 4 and 5.
func LogSites(p *isa.Program) []int {
	var sites []int
	for pc := range p.Instrs {
		in := &p.Instrs[pc]
		if in.Op != isa.OpCall {
			continue
		}
		if f := p.FuncAt(in.Target); f != nil && f.Attr.Has(isa.AttrFailureLog) {
			sites = append(sites, pc)
		}
	}
	return sites
}
