package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Snapshot in the OpenMetrics / Prometheus text
// exposition format, hand-rolled on the stdlib (DESIGN §6: the repo takes
// zero dependencies). The output is deterministic — families sorted by
// name, series sorted by label — so two snapshots of identical registries
// render byte-identically and the exposition can be golden-tested.
//
// The repo's dotted metric names ("harness.pool.trials") sanitize to
// Prometheus names ("harness_pool_trials"); per-worker instruments
// ("harness.pool.worker3.trials") fold into one labeled family
// (harness_pool_worker_trials{worker="3"}), which is how a Prometheus user
// expects to aggregate across workers.

// workerSeg matches one of the two name-segment conventions that encode a
// label: per-worker instruments minted by the harness pool.
var workerSeg = regexp.MustCompile(`^worker([0-9]+)$`)

// clientSeg matches the other: per-client instruments minted by the fleet
// ingest service ("fleet.ingest.client:machine-0.batches").
var clientSeg = regexp.MustCompile(`^client:(.+)$`)

// invalidMetricChar matches every byte OpenMetrics forbids in metric names.
var invalidMetricChar = regexp.MustCompile(`[^a-zA-Z0-9_:]`)

// sanitizeMetricName maps an internal dotted name onto a valid exposition
// metric name and extracts the worker and client labels if the name
// carries them.
func sanitizeMetricName(raw string) (name string, worker int, client string) {
	worker = -1
	segs := strings.Split(raw, ".")
	kept := segs[:0]
	for _, seg := range segs {
		if m := workerSeg.FindStringSubmatch(seg); m != nil && worker < 0 {
			if w, err := strconv.Atoi(m[1]); err == nil {
				worker = w
				kept = append(kept, "worker")
				continue
			}
		}
		if m := clientSeg.FindStringSubmatch(seg); m != nil && client == "" {
			client = m[1]
			kept = append(kept, "client")
			continue
		}
		kept = append(kept, seg)
	}
	name = invalidMetricChar.ReplaceAllString(strings.Join(kept, "_"), "_")
	if name == "" || (name[0] >= '0' && name[0] <= '9') {
		name = "_" + name
	}
	return name, worker, client
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// omSeries is one sample line's label set within a family.
type omSeries struct {
	raw    string // original metric name, for deterministic tie-breaks
	worker int    // -1 when unlabeled
	client string // "" when unlabeled
}

// labels renders the series' label block with extra pre-escaped pairs
// (the histogram writer passes le) appended after the worker/client labels.
func (s omSeries) labels(extra ...string) string {
	var pairs []string
	if s.worker >= 0 {
		pairs = append(pairs, fmt.Sprintf(`worker="%s"`, escapeLabelValue(strconv.Itoa(s.worker))))
	}
	if s.client != "" {
		pairs = append(pairs, fmt.Sprintf(`client="%s"`, escapeLabelValue(s.client)))
	}
	pairs = append(pairs, extra...)
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

// seriesLess orders series within a family: unlabeled first, then workers
// numerically, then clients lexically, then the raw name as a stable
// tie-break.
func seriesLess(a, b omSeries) bool {
	if a.worker != b.worker {
		return a.worker < b.worker
	}
	if a.client != b.client {
		return a.client < b.client
	}
	return a.raw < b.raw
}

// omFamily collects every series that sanitized onto one family name.
type omFamily struct {
	name   string
	series []omSeries
	vals   map[string]string            // raw name -> rendered value (counter/gauge)
	hists  map[string]HistogramSnapshot // raw name -> histogram (histogram families)
}

// groupFamilies buckets raw metric names into sanitized families. The
// taken set de-duplicates family names across instrument kinds: if a gauge
// family collides with an already-emitted counter family, it is suffixed
// so the exposition never declares one family name twice.
func groupFamilies(raws []string, taken map[string]bool, suffix string) []*omFamily {
	byName := map[string]*omFamily{}
	sort.Strings(raws)
	for _, raw := range raws {
		name, worker, client := sanitizeMetricName(raw)
		f := byName[name]
		if f == nil {
			f = &omFamily{name: name, vals: map[string]string{}, hists: map[string]HistogramSnapshot{}}
			byName[name] = f
		}
		f.series = append(f.series, omSeries{raw: raw, worker: worker, client: client})
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*omFamily, 0, len(names))
	for _, name := range names {
		f := byName[name]
		for taken[f.name] {
			f.name += suffix
		}
		taken[f.name] = true
		sort.Slice(f.series, func(i, j int) bool { return seriesLess(f.series[i], f.series[j]) })
		out = append(out, f)
	}
	return out
}

// OpenMetrics renders the snapshot in the OpenMetrics text exposition
// format (Prometheus-scrapeable): counters as <name>_total, gauges
// verbatim, histograms with cumulative le buckets plus _sum and _count,
// each family preceded by its # TYPE line, terminated by # EOF. Output is
// byte-deterministic for a given snapshot.
func (s Snapshot) OpenMetrics() string {
	var b strings.Builder
	taken := map[string]bool{}

	raws := make([]string, 0, len(s.Counters))
	for raw := range s.Counters {
		raws = append(raws, raw)
	}
	for _, f := range groupFamilies(raws, taken, "_counter") {
		fmt.Fprintf(&b, "# TYPE %s counter\n", f.name)
		for _, sr := range f.series {
			fmt.Fprintf(&b, "%s_total%s %d\n", f.name, sr.labels(), s.Counters[sr.raw])
		}
	}

	raws = raws[:0]
	for raw := range s.Gauges {
		raws = append(raws, raw)
	}
	for _, f := range groupFamilies(raws, taken, "_gauge") {
		fmt.Fprintf(&b, "# TYPE %s gauge\n", f.name)
		for _, sr := range f.series {
			fmt.Fprintf(&b, "%s%s %d\n", f.name, sr.labels(), s.Gauges[sr.raw])
		}
	}

	raws = raws[:0]
	for raw := range s.Histograms {
		raws = append(raws, raw)
	}
	for _, f := range groupFamilies(raws, taken, "_histogram") {
		fmt.Fprintf(&b, "# TYPE %s histogram\n", f.name)
		for _, sr := range f.series {
			h := s.Histograms[sr.raw]
			var cum uint64
			for i, bound := range h.Bounds {
				if i < len(h.Counts) {
					cum += h.Counts[i]
				}
				le := fmt.Sprintf(`le="%d"`, bound)
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, sr.labels(le), cum)
			}
			// The +Inf bucket is the total count, clamped so buckets stay
			// cumulative even if a live scrape tears the snapshot between
			// a bucket add and the count add.
			inf := h.Count
			if cum > inf {
				inf = cum
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, sr.labels(`le="+Inf"`), inf)
			fmt.Fprintf(&b, "%s_sum%s %d\n", f.name, sr.labels(), h.Sum)
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, sr.labels(), h.Count)
		}
	}

	b.WriteString("# EOF\n")
	return b.String()
}
