package obs

import (
	"math"
	"sync"
	"testing"
)

// Satellite coverage: Histogram edge cases — empty bounds, values at exact
// bucket boundaries, math.MaxUint64 observations, and snapshot-vs-writer
// consistency under the race detector (check.sh runs this package -race).

func TestHistogramEmptyBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", nil)
	h.Observe(0)
	h.Observe(12345)
	if h.Count() != 2 || h.Sum() != 12345 {
		t.Fatalf("Count=%d Sum=%d, want 2, 12345", h.Count(), h.Sum())
	}
	hs := r.Snapshot().Histograms["h"]
	if len(hs.Bounds) != 0 || len(hs.Counts) != 1 {
		t.Fatalf("snapshot shape Bounds=%v Counts=%v, want 0 bounds + 1 overflow", hs.Bounds, hs.Counts)
	}
	if hs.Counts[0] != 2 {
		t.Errorf("overflow bucket = %d, want 2", hs.Counts[0])
	}
}

func TestHistogramExactBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []uint64{10, 20})
	h.Observe(9)  // le=10
	h.Observe(10) // le=10: bucket i counts v <= Bounds[i]
	h.Observe(11) // le=20
	h.Observe(20) // le=20
	h.Observe(21) // overflow
	hs := r.Snapshot().Histograms["h"]
	want := []uint64{2, 2, 1}
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
	if hs.Count != 5 || hs.Sum != 9+10+11+20+21 {
		t.Errorf("Count=%d Sum=%d", hs.Count, hs.Sum)
	}
}

func TestHistogramMaxUint64(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []uint64{1 << 20, math.MaxUint64})
	h.Observe(math.MaxUint64)
	hs := r.Snapshot().Histograms["h"]
	// MaxUint64 equals the last bound, so it lands in that bucket, not
	// overflow, and the sum holds the full value.
	if hs.Counts[1] != 1 || hs.Counts[2] != 0 {
		t.Errorf("counts = %v, want MaxUint64 in le=MaxUint64 bucket", hs.Counts)
	}
	if hs.Sum != math.MaxUint64 || hs.Count != 1 {
		t.Errorf("Sum=%d Count=%d", hs.Sum, hs.Count)
	}
	// A second max observation wraps the uint64 sum — defined behavior,
	// and Count keeps the truth.
	h.Observe(math.MaxUint64)
	if h.Count() != 2 {
		t.Errorf("Count after wrap = %d, want 2", h.Count())
	}
	if h.Sum() != math.MaxUint64-1 { // 2*MaxUint64 mod 2^64
		t.Errorf("wrapped Sum = %d, want MaxUint64-1", h.Sum())
	}
}

func TestHistogramSnapshotUnderConcurrentWriters(t *testing.T) {
	const (
		writers = 4
		perW    = 2000
	)
	r := NewRegistry()
	h := r.Histogram("h", DefaultCycleBounds)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var scans sync.WaitGroup
	scans.Add(1)
	go func() {
		defer scans.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			hs := r.Snapshot().Histograms["h"]
			var bucketTotal uint64
			for _, c := range hs.Counts {
				bucketTotal += c
			}
			// Mid-write snapshots may tear between a bucket add and the
			// count add, but bucket totals can never exceed observations
			// started (each Observe bumps the bucket before n).
			if hs.Count > uint64(writers*perW) || bucketTotal > uint64(writers*perW) {
				t.Errorf("impossible snapshot: count=%d buckets=%d", hs.Count, bucketTotal)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(uint64(i * (w + 1)))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scans.Wait()
	hs := r.Snapshot().Histograms["h"]
	var bucketTotal uint64
	for _, c := range hs.Counts {
		bucketTotal += c
	}
	if hs.Count != writers*perW || bucketTotal != writers*perW {
		t.Errorf("final snapshot count=%d buckets=%d, want %d", hs.Count, bucketTotal, writers*perW)
	}
}
