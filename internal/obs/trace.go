package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Chrome trace_event phase codes used by the exporter.
const (
	PhaseComplete = 'X' // complete event: ts + dur
	PhaseInstant  = 'i' // instant event
	PhaseBegin    = 'B' // span begin
	PhaseEnd      = 'E' // span end
)

// Event is one trace record. TS and Dur are VM cycles (never wall-clock
// time); the exporter writes them into the trace_event "ts"/"dur" fields,
// which viewers interpret as microseconds — one simulated cycle renders as
// one microsecond.
// The json tags keep the exported field names on the executor wire (the
// fuzz corpus pins them) while omitting zero-valued fields, which pays off
// at one serialized delta per trial; ChromeJSON has its own tagged struct
// and is unaffected.
type Event struct {
	Name string         `json:"Name,omitempty"`
	Cat  string         `json:"Cat,omitempty"`
	Ph   byte           `json:"Ph,omitempty"`
	TS   uint64         `json:"TS,omitempty"`
	Dur  uint64         `json:"Dur,omitempty"`
	PID  int            `json:"PID,omitempty"` // track group: core ID, or a reserved pipeline PID
	TID  int            `json:"TID,omitempty"` // track: thread ID within the group
	Args map[string]any `json:"Args,omitempty"`
}

// DefaultTraceLimit bounds a Tracer's in-memory event list. Past the limit
// new events are counted as dropped instead of recorded, so tracing a long
// run degrades instead of exhausting memory.
const DefaultTraceLimit = 1 << 20

// Tracer accumulates events. All recording methods are safe on a nil
// receiver (no-ops) and safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	limit   int
	dropped uint64
	base    uint64 // cycle offset added to every recorded timestamp
	procs   map[int]string
	threads map[[2]int]string
}

// NewTracer returns an empty tracer with DefaultTraceLimit.
func NewTracer() *Tracer { return &Tracer{limit: DefaultTraceLimit} }

// SetLimit caps the number of retained events (<=0 means unlimited).
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// Advance shifts the tracer's clock base forward. The VM calls this at the
// end of every run so consecutive runs lay out end-to-end on one timeline;
// pipeline phases recorded between runs call it to give themselves width.
func (t *Tracer) Advance(cycles uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.base += cycles
	t.mu.Unlock()
}

// Base returns the current clock base.
func (t *Tracer) Base() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.base
}

// Emit records an event, offsetting its timestamp by the clock base.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.limit > 0 && len(t.events) >= t.limit {
		t.dropped++
		t.mu.Unlock()
		return
	}
	ev.TS += t.base
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Instant records a point event at cycle ts.
func (t *Tracer) Instant(name, cat string, ts uint64, pid, tid int, args map[string]any) {
	t.Emit(Event{Name: name, Cat: cat, Ph: PhaseInstant, TS: ts, PID: pid, TID: tid, Args: args})
}

// Complete records a span [ts, ts+dur).
func (t *Tracer) Complete(name, cat string, ts, dur uint64, pid, tid int, args map[string]any) {
	t.Emit(Event{Name: name, Cat: cat, Ph: PhaseComplete, TS: ts, Dur: dur, PID: pid, TID: tid, Args: args})
}

// Begin opens a span; close it with End at the same pid/tid.
func (t *Tracer) Begin(name, cat string, ts uint64, pid, tid int, args map[string]any) {
	t.Emit(Event{Name: name, Cat: cat, Ph: PhaseBegin, TS: ts, PID: pid, TID: tid, Args: args})
}

// End closes the innermost open span at pid/tid.
func (t *Tracer) End(name, cat string, ts uint64, pid, tid int) {
	t.Emit(Event{Name: name, Cat: cat, Ph: PhaseEnd, TS: ts, PID: pid, TID: tid})
}

// SetProcessName labels a pid's track group (e.g. "core 0", "pipeline").
func (t *Tracer) SetProcessName(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.procs == nil {
		t.procs = map[int]string{}
	}
	t.procs[pid] = name
	t.mu.Unlock()
}

// SetThreadName labels a (pid, tid) track.
func (t *Tracer) SetThreadName(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.threads == nil {
		t.threads = map[[2]int]string{}
	}
	t.threads[[2]int{pid, tid}] = name
	t.mu.Unlock()
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events the limit discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all events, metadata and the clock base.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = nil
	t.dropped = 0
	t.base = 0
	t.procs = nil
	t.threads = nil
	t.mu.Unlock()
}

// chromeEvent is the trace_event JSON shape. Field order is fixed by the
// struct, map args marshal with sorted keys: output is deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// ChromeJSON exports the trace in Chrome trace_event format
// ({"traceEvents":[...]}), loadable in chrome://tracing and Perfetto.
// Metadata (track names) is emitted first in sorted pid/tid order, then
// events in recording order; given identical event sequences the output is
// byte-identical.
func (t *Tracer) ChromeJSON() ([]byte, error) {
	if t == nil {
		return []byte(`{"traceEvents":[]}` + "\n"), nil
	}
	t.mu.Lock()
	events := append([]Event(nil), t.events...)
	procs := make(map[int]string, len(t.procs))
	for pid, name := range t.procs {
		procs[pid] = name
	}
	threads := make(map[[2]int]string, len(t.threads))
	for k, name := range t.threads {
		threads[k] = name
	}
	t.mu.Unlock()

	out := make([]chromeEvent, 0, len(events)+len(procs)+len(threads))
	pids := make([]int, 0, len(procs))
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": procs[pid]},
		})
	}
	tkeys := make([][2]int, 0, len(threads))
	for k := range threads {
		tkeys = append(tkeys, k)
	}
	sort.Slice(tkeys, func(i, j int) bool {
		if tkeys[i][0] != tkeys[j][0] {
			return tkeys[i][0] < tkeys[j][0]
		}
		return tkeys[i][1] < tkeys[j][1]
	})
	for _, k := range tkeys {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: k[0], TID: k[1],
			Args: map[string]any{"name": threads[k]},
		})
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name, Cat: ev.Cat, Ph: string(ev.Ph),
			TS: ev.TS, PID: ev.PID, TID: ev.TID, Args: ev.Args,
		}
		if ev.Ph == PhaseComplete {
			dur := ev.Dur
			ce.Dur = &dur
		}
		if ev.Ph == PhaseInstant {
			ce.S = "t" // thread-scoped instant
		}
		out = append(out, ce)
	}

	var buf bytes.Buffer
	buf.WriteString(`{"traceEvents":[`)
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	for i, ce := range out {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteByte('\n')
		if err := enc.Encode(ce); err != nil {
			return nil, err
		}
		buf.Truncate(buf.Len() - 1) // drop Encode's trailing newline
	}
	buf.WriteString("\n]}\n")
	return buf.Bytes(), nil
}

// Text renders up to max events (<=0 for all) as one line each, in
// recording order.
func (t *Tracer) Text(max int) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	events := append([]Event(nil), t.events...)
	dropped := t.dropped
	t.mu.Unlock()
	var b strings.Builder
	n := len(events)
	if max > 0 && n > max {
		n = max
	}
	for _, ev := range events[:n] {
		fmt.Fprintf(&b, "%10d c%d/t%d %c %-12s %s", ev.TS, ev.PID, ev.TID, ev.Ph, ev.Cat, ev.Name)
		if ev.Ph == PhaseComplete {
			fmt.Fprintf(&b, " dur=%d", ev.Dur)
		}
		if len(ev.Args) > 0 {
			keys := make([]string, 0, len(ev.Args))
			for k := range ev.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%v", k, ev.Args[k])
			}
		}
		b.WriteByte('\n')
	}
	if n < len(events) {
		fmt.Fprintf(&b, "... %d more events\n", len(events)-n)
	}
	if dropped > 0 {
		fmt.Fprintf(&b, "... %d events dropped at limit\n", dropped)
	}
	return b.String()
}
