package obs

import (
	"fmt"
	"sync/atomic"
)

// This file is the harness's own "short-term memory of hardware": a
// fixed-size lock-free ring of the most recent structured events, kept
// always-on and dumped at the moment of failure. It deliberately mirrors
// the paper's capture model (§3.2): the LBR records the last 16 branches
// with no runtime cost, and the SIGSEGV handler reads it *after* the crash
// — here, each pool worker's trial keeps a bounded ring of recent harness
// events (trial start/retry, fault injections, phase transitions, MSR
// glitches), and when a trial panics past its retry budget, the recover
// path reads the ring and attaches its tail to the TrialError, exactly the
// way the segfault handler snapshots the LBR.
//
// Two determinism rules keep ring contents byte-identical for every -jobs
// value (the same property pool.go gives metrics): per-trial rings are
// written only by the goroutine running the trial, stamped by the VM cycle
// clock, and the pipeline-level ring receives them only at commit time, in
// trial order — never in arrival order.

// Flight-event kinds recorded by the harness layers.
const (
	// FlightTrialStart marks the start of one trial attempt.
	FlightTrialStart = "trial-start"
	// FlightTrialRetry marks a recovered panic about to be retried.
	FlightTrialRetry = "trial-retry"
	// FlightTrialDegraded marks a trial that exhausted its retry budget.
	FlightTrialDegraded = "trial-degraded"
	// FlightTrialCommit marks a trial's telemetry committing, in trial
	// order, into the pipeline sink.
	FlightTrialCommit = "trial-commit"
	// FlightFault marks one injected capture-layer fault (including MSR
	// read/write glitches).
	FlightFault = "fault"
	// FlightPhase marks a pipeline phase transition (a table row starting).
	FlightPhase = "phase"
	// FlightExecutorCrash marks a subprocess worker dying (or timing out)
	// under the executor, with the tail of its captured stderr as detail.
	// Recorded only on real infrastructure failure, so it is exempt from
	// the ring's cross-jobs byte-identity rule.
	FlightExecutorCrash = "executor-crash"
)

// FlightEvent is one record in a flight recorder. Cycle is the VM cycle
// clock (the sink's "vm.cycles" counter) at record time — never wall clock
// — so rings replay identically for the same seed; Trial is -1 for
// pipeline-level events outside any trial.
type FlightEvent struct {
	Cycle   uint64 `json:"cycle"`
	Trial   int    `json:"trial"`
	Attempt int    `json:"attempt"`
	Kind    string `json:"kind"`
	Detail  string `json:"detail,omitempty"`
}

// String renders the event as one line.
func (e FlightEvent) String() string {
	who := "pipeline"
	if e.Trial >= 0 {
		who = fmt.Sprintf("trial %d.%d", e.Trial, e.Attempt)
	}
	s := fmt.Sprintf("cycle %d %s %s", e.Cycle, who, e.Kind)
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Default flight-recorder capacities: one ring per pool worker's running
// trial, one larger pipeline-level ring the per-trial rings merge into.
const (
	DefaultFlightCap      = 256
	DefaultTrialFlightCap = 64
)

// FlightRecorder is a fixed-size lock-free ring of recent FlightEvents.
// Writers pay one atomic add and one atomic pointer store; the ring keeps
// the last Cap() events and silently overwrites older ones. All methods
// are safe on a nil receiver and safe for concurrent use (the telemetry
// HTTP server snapshots live rings while workers record).
type FlightRecorder struct {
	slots []atomic.Pointer[FlightEvent]
	cur   atomic.Uint64 // total events ever recorded
}

// NewFlightRecorder returns a ring keeping the last n events (n <= 0
// selects DefaultFlightCap).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightCap
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[FlightEvent], n)}
}

// Record appends one event, overwriting the oldest once the ring is full;
// no-op on a nil receiver.
func (r *FlightRecorder) Record(ev FlightEvent) {
	if r == nil {
		return
	}
	i := r.cur.Add(1) - 1
	e := ev
	r.slots[i%uint64(len(r.slots))].Store(&e)
}

// Append records every event in order.
func (r *FlightRecorder) Append(evs []FlightEvent) {
	for _, ev := range evs {
		r.Record(ev)
	}
}

// Cap returns the ring capacity (0 for a nil receiver).
func (r *FlightRecorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Recorded returns how many events were ever recorded, including ones the
// ring has since overwritten.
func (r *FlightRecorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.cur.Load()
}

// Dropped returns how many events have been overwritten.
func (r *FlightRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	cur := r.cur.Load()
	if n := uint64(len(r.slots)); cur > n {
		return cur - n
	}
	return 0
}

// Snapshot returns the retained window, oldest first. With a single writer
// (a trial's goroutine, or the pool's commit scan) the window is exact;
// under concurrent writers each slot read is still atomic, so the dump is
// always well-formed even if the window edges race.
func (r *FlightRecorder) Snapshot() []FlightEvent {
	if r == nil {
		return nil
	}
	cur := r.cur.Load()
	n := uint64(len(r.slots))
	start := uint64(0)
	if cur > n {
		start = cur - n
	}
	out := make([]FlightEvent, 0, cur-start)
	for i := start; i < cur; i++ {
		if p := r.slots[i%n].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// Tail returns the newest k retained events, oldest first.
func (r *FlightRecorder) Tail(k int) []FlightEvent {
	evs := r.Snapshot()
	if k > 0 && len(evs) > k {
		evs = evs[len(evs)-k:]
	}
	return evs
}

// Reset clears the ring.
func (r *FlightRecorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.slots {
		r.slots[i].Store(nil)
	}
	r.cur.Store(0)
}
