package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// buildTrialTracer records the same event mix a trial produces: spans,
// instants, track names, and a clock advance per "run".
func buildTrialTracer(trial int) *Tracer {
	tr := NewTracer()
	tr.SetProcessName(0, "core 0")
	tr.SetThreadName(0, 1, "thread 1")
	tr.Complete("run", "vm", 0, 100, 0, 1, map[string]any{"trial": trial, "app": "x"})
	tr.Advance(101)
	tr.Instant("profile", "pmu", 5, 0, 1, map[string]any{"kind": "failure"})
	tr.Complete("run", "vm", 0, 80, 0, 1, nil)
	tr.Advance(81)
	return tr
}

func TestDeltaWireRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("vm.cycles").Add(181)
	reg.Histogram("lat", []uint64{10, 100}).Observe(42)
	snap := reg.Snapshot()
	d := Delta{
		Ctx:     Context{RunID: 0xabcd, Stream: "fail", Trial: 3, Attempt: 1, Worker: 2},
		Metrics: &snap,
		Trace:   buildTrialTracer(3).Delta(),
		Flight:  []FlightEvent{{Cycle: 7, Trial: 3, Attempt: 1, Kind: FlightTrialStart}},
	}
	b, err := EncodeDelta(d)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeDelta(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Ctx != d.Ctx {
		t.Fatalf("ctx round trip: got %+v want %+v", got.Ctx, d.Ctx)
	}
	if got.Metrics.Counter("vm.cycles") != 181 {
		t.Fatalf("metrics lost: %+v", got.Metrics)
	}
	if len(got.Flight) != 1 || got.Flight[0].Kind != FlightTrialStart {
		t.Fatalf("flight lost: %+v", got.Flight)
	}
	// Re-encoding the decoded delta must be byte-identical: the wire form
	// is its own normal form, so in-process and subprocess paths agree.
	b2, err := EncodeDelta(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("wire form not a fixed point:\n%s\nvs\n%s", b, b2)
	}
}

func TestDecodeDeltaRejectsVersions(t *testing.T) {
	b, _ := json.Marshal(Delta{V: DeltaVersion + 1})
	if _, err := DecodeDelta(b); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := DecodeDelta([]byte("{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// TestMergeDeltaMatchesLocalRecording is the heart of federation
// determinism: recording N trials into one tracer directly must produce
// the same Chrome trace bytes as recording each trial into its own tracer
// and merging the deltas in trial order — whether or not the deltas took
// a trip through the wire encoding.
func TestMergeDeltaMatchesLocalRecording(t *testing.T) {
	local := NewTracer()
	for trial := 0; trial < 3; trial++ {
		d := buildTrialTracer(trial).Delta()
		local.MergeDelta(d)
	}

	wire := NewTracer()
	for trial := 0; trial < 3; trial++ {
		b, err := EncodeDelta(Delta{Trace: buildTrialTracer(trial).Delta()})
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		d, err := DecodeDelta(b)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		wire.MergeDelta(d.Trace)
	}

	lj, err := local.ChromeJSON()
	if err != nil {
		t.Fatalf("local chrome: %v", err)
	}
	wj, err := wire.ChromeJSON()
	if err != nil {
		t.Fatalf("wire chrome: %v", err)
	}
	if !bytes.Equal(lj, wj) {
		t.Fatalf("in-process and wire merges diverge:\n%s\nvs\n%s", lj, wj)
	}
	if got, want := local.Base(), uint64(3*(101+81)); got != want {
		t.Fatalf("merged base = %d, want %d", got, want)
	}
}

func TestMergeDeltaRespectsLimit(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(1)
	tr.MergeDelta(buildTrialTracer(0).Delta())
	if tr.Len() != 1 {
		t.Fatalf("limit ignored: %d events", tr.Len())
	}
	if tr.Dropped() == 0 {
		t.Fatal("dropped not counted")
	}
}

func TestMergeRemoteFoldsAllHalves(t *testing.T) {
	sink := &Sink{
		Metrics: NewRegistry(),
		Trace:   NewTracer(),
		Flight:  NewFlightRecorder(8),
	}
	reg := NewRegistry()
	reg.Counter("vm.cycles").Add(50)
	reg.Gauge("g").Set(7)
	snap := reg.Snapshot()
	sink.MergeRemote(Delta{
		Metrics: &snap,
		Trace:   buildTrialTracer(0).Delta(),
		Flight:  []FlightEvent{{Cycle: 1, Trial: 0, Kind: FlightTrialCommit}},
	})
	if got := sink.Counter("vm.cycles").Value(); got != 50 {
		t.Fatalf("counter = %d", got)
	}
	if got := sink.Gauge("g").Value(); got != 7 {
		t.Fatalf("gauge = %d", got)
	}
	if sink.Trace.Len() != 3 {
		t.Fatalf("trace events = %d", sink.Trace.Len())
	}
	if evs := sink.Flight.Snapshot(); len(evs) != 1 || evs[0].Kind != FlightTrialCommit {
		t.Fatalf("flight = %+v", evs)
	}
	// All nil-safe.
	var nilSink *Sink
	nilSink.MergeRemote(Delta{Metrics: &snap})
	(&Sink{}).MergeRemote(Delta{Metrics: &snap, Trace: buildTrialTracer(1).Delta()})
}

func TestTracerSummary(t *testing.T) {
	tr := buildTrialTracer(0)
	tr.SetThreadName(98, 3, "worker 3") // registered but empty lane
	s := tr.Summary()
	if s.Events != 3 {
		t.Fatalf("events = %d", s.Events)
	}
	if len(s.Lanes) != 2 {
		t.Fatalf("lanes = %+v", s.Lanes)
	}
	l := s.Lanes[0]
	if l.PID != 0 || l.TID != 1 || l.Spans != 2 || l.Instants != 1 {
		t.Fatalf("lane 0 = %+v", l)
	}
	if l.SpanDur != 180 {
		t.Fatalf("span dur = %d", l.SpanDur)
	}
	if l.Process != "core 0" || l.Thread != "thread 1" {
		t.Fatalf("lane names = %+v", l)
	}
	if s.Lanes[1].PID != 98 || s.Lanes[1].Events != 0 || s.Lanes[1].Thread != "worker 3" {
		t.Fatalf("empty lane = %+v", s.Lanes[1])
	}
	// Deterministic JSON.
	a, _ := json.Marshal(s)
	b, _ := json.Marshal(tr.Summary())
	if !bytes.Equal(a, b) {
		t.Fatal("summary not deterministic")
	}
	var nilT *Tracer
	if ns := nilT.Summary(); ns.Events != 0 || len(ns.Lanes) != 0 {
		t.Fatalf("nil summary = %+v", ns)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("vm.cycles").Add(10)
	reg.Counter("harness.pool.committed").Add(4)
	reg.Counter("harness.pool.trials").Add(6)
	reg.Counter("harness.pool.worker0.trials").Add(3)
	reg.Counter("harness.executor.spawns").Add(2)
	reg.Counter("artifact.hits").Add(1)
	reg.Counter("fleet.client.batches").Add(1)
	reg.Gauge("harness.pool.queue.depth").Set(2)
	reg.Histogram("harness.pool.commit.stall_ns", []uint64{10}).Observe(5)
	det := reg.Snapshot().Deterministic()
	want := map[string]uint64{"vm.cycles": 10, "harness.pool.committed": 4}
	if len(det.Counters) != len(want) {
		t.Fatalf("counters = %+v", det.Counters)
	}
	for name, v := range want {
		if det.Counters[name] != v {
			t.Fatalf("counter %s = %d, want %d", name, det.Counters[name], v)
		}
	}
	if len(det.Gauges) != 0 || len(det.Histograms) != 0 {
		t.Fatalf("volatile instruments leaked: %+v %+v", det.Gauges, det.Histograms)
	}
	if !IsVolatile("harness.executor.workers.live") || IsVolatile("vm.runs") {
		t.Fatal("IsVolatile misclassifies")
	}
}

func TestContextString(t *testing.T) {
	c := Context{RunID: 0x1f, Stream: "fail", Trial: 2, Attempt: 1, Worker: 3, Client: "machine-0"}
	if got := c.String(); got != "run 1f fail trial 2.1 worker 3 client machine-0" {
		t.Fatalf("ctx string = %q", got)
	}
	c2 := Context{Stream: "succ", Worker: -1}
	if got := c2.String(); got != "run 0 succ trial 0.0" {
		t.Fatalf("ctx string = %q", got)
	}
}

// FuzzObsWireDecode hardens DecodeDelta against arbitrary bytes: it must
// never panic, and any accepted delta must survive a re-encode/re-decode
// round trip and merge into a sink without fault.
func FuzzObsWireDecode(f *testing.F) {
	seed := func(d Delta) {
		b, err := EncodeDelta(d)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(b)
	}
	reg := NewRegistry()
	reg.Counter("vm.cycles").Add(99)
	reg.Histogram("h", []uint64{1, 2}).Observe(2)
	snap := reg.Snapshot()
	seed(Delta{})
	seed(Delta{Ctx: Context{RunID: 1, Stream: "fail", Trial: 2, Attempt: 1, Worker: 0}, Metrics: &snap})
	seed(Delta{Trace: buildTrialTracer(1).Delta(), Flight: []FlightEvent{{Cycle: 3, Kind: FlightFault, Detail: "lbr-drop"}}})
	f.Add([]byte(`{"v":1}`))
	f.Add([]byte(`{"v":2}`))
	f.Add([]byte(`{"v":1,"trace":{"events":[{"Ph":888}]}}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := DecodeDelta(b)
		if err != nil {
			return
		}
		sink := &Sink{Metrics: NewRegistry(), Trace: NewTracer(), Flight: NewFlightRecorder(4)}
		sink.MergeRemote(d)
		b2, err := EncodeDelta(d)
		if err != nil {
			return // unrepresentable numbers (NaN args) may refuse to re-encode
		}
		if _, err := DecodeDelta(b2); err != nil {
			t.Fatalf("re-decode of own encoding failed: %v\n%s", err, b2)
		}
	})
}
