package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// This file federates telemetry across process boundaries. The paper's
// capture discipline is "read the short-term memory of the hardware after
// the fact, then aggregate across the fleet" (§3.2, §5): evidence recorded
// inside a dying process must outlive it and fold deterministically into
// the aggregate. Our executor subprocess workers and fleet clients have the
// same problem — every counter, trace span, prof sample and flight event
// recorded inside them dies with the process — so each remote scope
// serializes a Delta (its telemetry since the last drain, stamped with a
// correlation Context) and the coordinator folds deltas into its own Sink
// with MergeRemote, always in trial-commit order, never arrival order.
// That ordering rule is what extends the repo's -jobs/-executor
// byte-identity guarantees to remote telemetry.

// FleetPID is the reserved trace track group for fleet ingestion lanes:
// fleetd assigns each pushing client one track (tid) under this pid.
const FleetPID = 97

// DeltaVersion is the telemetry-delta wire version. DecodeDelta rejects
// other versions loudly (mixed-version worker pools must fail, not
// mis-merge), mirroring the fleet batch version gate.
const DeltaVersion = 1

// Context correlates one remote telemetry delta with the work that
// produced it: which run, which trial stream, which trial and attempt,
// which executor worker (-1 when not a subprocess worker), which fleet
// client (empty outside the fleet path). It labels volatile live telemetry
// only — deterministic outputs never incorporate it, since worker
// assignment is scheduling-dependent.
type Context struct {
	RunID   uint64 `json:"runID,omitempty"`
	Stream  string `json:"stream,omitempty"`
	Trial   int    `json:"trial"`
	Attempt int    `json:"attempt"`
	Worker  int    `json:"worker"`
	Client  string `json:"client,omitempty"`
}

// String renders the context as one compact correlation tag.
func (c Context) String() string {
	s := fmt.Sprintf("run %x %s trial %d.%d", c.RunID, c.Stream, c.Trial, c.Attempt)
	if c.Worker >= 0 {
		s += fmt.Sprintf(" worker %d", c.Worker)
	}
	if c.Client != "" {
		s += " client " + c.Client
	}
	return s
}

// TrackName names one trace track: a process row (TID < 0) or a thread row
// within it.
type TrackName struct {
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
	Name string `json:"name"`
}

// TraceDelta is the trace half of a Delta: the events a remote tracer
// recorded (timestamps relative to that tracer's own zero), the cycles its
// clock advanced, and the track names it registered. MergeDelta shifts the
// events onto the receiving tracer's clock, so remote spans lay out
// end-to-end exactly as if they had been recorded locally.
type TraceDelta struct {
	Events  []Event     `json:"events,omitempty"`
	Cycles  uint64      `json:"cycles,omitempty"`
	Procs   []TrackName `json:"procs,omitempty"`
	Threads []TrackName `json:"threads,omitempty"`
	Dropped uint64      `json:"dropped,omitempty"`
}

// Delta is one remote scope's serialized telemetry: everything it recorded
// since its sink was last drained, stamped with the correlation context.
// It is the unit that rides the executor wire protocol (one Delta per
// TrialResponse) and aggregates into the fleet TelemetrySummary.
type Delta struct {
	V       int           `json:"v"`
	Ctx     Context       `json:"ctx"`
	Metrics *Snapshot     `json:"metrics,omitempty"`
	Trace   TraceDelta    `json:"trace"`
	Flight  []FlightEvent `json:"flight,omitempty"`
}

// EncodeDelta serializes a delta for the wire, stamping the version.
func EncodeDelta(d Delta) ([]byte, error) {
	d.V = DeltaVersion
	return json.Marshal(d)
}

// DecodeDelta parses a wire delta, rejecting unknown versions.
func DecodeDelta(b []byte) (Delta, error) {
	var d Delta
	if err := json.Unmarshal(b, &d); err != nil {
		return Delta{}, fmt.Errorf("obs: decode delta: %w", err)
	}
	if d.V != DeltaVersion {
		return Delta{}, fmt.Errorf("obs: delta version %d, want %d", d.V, DeltaVersion)
	}
	return d, nil
}

// normalizeEvents passes events through one JSON round trip so both sides
// of the executor boundary see identical Args value types (encoding/json
// decodes every number into float64; an int recorded in-process would
// otherwise compare unequal to its wire twin and could render differently
// for values beyond 2^53). Called once when a delta is built, so the
// in-process and subprocess paths serialize byte-identically.
func normalizeEvents(evs []Event) []Event {
	if len(evs) == 0 {
		return evs
	}
	b, err := json.Marshal(evs)
	if err != nil {
		return evs
	}
	var out []Event
	if err := json.Unmarshal(b, &out); err != nil {
		return evs
	}
	return out
}

// Delta snapshots the tracer as a TraceDelta: events (Args-normalized for
// cross-process identity), the total clock advance, registered track
// names in sorted order, and the drop count. The caller is expected to own
// the tracer (per-trial tracers have a single writer); concurrent use is
// still safe.
func (t *Tracer) Delta() TraceDelta {
	if t == nil {
		return TraceDelta{}
	}
	t.mu.Lock()
	d := TraceDelta{
		Events:  normalizeEvents(append([]Event(nil), t.events...)),
		Cycles:  t.base,
		Dropped: t.dropped,
	}
	for pid, name := range t.procs {
		d.Procs = append(d.Procs, TrackName{PID: pid, TID: -1, Name: name})
	}
	for k, name := range t.threads {
		d.Threads = append(d.Threads, TrackName{PID: k[0], TID: k[1], Name: name})
	}
	t.mu.Unlock()
	sort.Slice(d.Procs, func(i, j int) bool { return d.Procs[i].PID < d.Procs[j].PID })
	sort.Slice(d.Threads, func(i, j int) bool {
		if d.Threads[i].PID != d.Threads[j].PID {
			return d.Threads[i].PID < d.Threads[j].PID
		}
		return d.Threads[i].TID < d.Threads[j].TID
	})
	return d
}

// MergeDelta folds a remote trace delta into the tracer: events shift onto
// this tracer's clock base and append in their recorded order, track names
// merge, and the base advances by the delta's cycle count — the same
// advance the remote tracer saw, so consecutive merged trials lay out
// end-to-end. The harness pool calls this at commit time, in trial order,
// which keeps the merged trace byte-identical for every -jobs value and
// for in-process vs. subprocess executors.
func (t *Tracer) MergeDelta(d TraceDelta) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for _, ev := range d.Events {
		if t.limit > 0 && len(t.events) >= t.limit {
			t.dropped++
			continue
		}
		ev.TS += t.base
		t.events = append(t.events, ev)
	}
	for _, p := range d.Procs {
		if t.procs == nil {
			t.procs = map[int]string{}
		}
		t.procs[p.PID] = p.Name
	}
	for _, th := range d.Threads {
		if t.threads == nil {
			t.threads = map[[2]int]string{}
		}
		t.threads[[2]int{th.PID, th.TID}] = th.Name
	}
	t.base += d.Cycles
	t.dropped += d.Dropped
	t.mu.Unlock()
}

// LaneSummary aggregates one (pid, tid) trace track.
type LaneSummary struct {
	PID      int    `json:"pid"`
	TID      int    `json:"tid"`
	Process  string `json:"process,omitempty"`
	Thread   string `json:"thread,omitempty"`
	Events   int    `json:"events"`
	Spans    int    `json:"spans"`
	Instants int    `json:"instants"`
	FirstTS  uint64 `json:"firstTS"`
	LastTS   uint64 `json:"lastTS"`
	SpanDur  uint64 `json:"spanDur"`
}

// TraceSummary is the machine-readable digest behind the /tracez endpoint:
// per-lane event counts and span time, without shipping the full event
// list. Lanes sort by (pid, tid); the digest is deterministic for a given
// tracer state.
type TraceSummary struct {
	Events  int           `json:"events"`
	Dropped uint64        `json:"dropped"`
	Base    uint64        `json:"base"`
	Lanes   []LaneSummary `json:"lanes"`
}

// Summary digests the tracer per lane.
func (t *Tracer) Summary() TraceSummary {
	if t == nil {
		return TraceSummary{Lanes: []LaneSummary{}}
	}
	t.mu.Lock()
	events := append([]Event(nil), t.events...)
	procs := make(map[int]string, len(t.procs))
	for pid, name := range t.procs {
		procs[pid] = name
	}
	threads := make(map[[2]int]string, len(t.threads))
	for k, name := range t.threads {
		threads[k] = name
	}
	s := TraceSummary{Events: len(events), Dropped: t.dropped, Base: t.base}
	t.mu.Unlock()

	lanes := map[[2]int]*LaneSummary{}
	for _, ev := range events {
		k := [2]int{ev.PID, ev.TID}
		l := lanes[k]
		if l == nil {
			l = &LaneSummary{PID: ev.PID, TID: ev.TID, FirstTS: ev.TS}
			lanes[k] = l
		}
		l.Events++
		switch ev.Ph {
		case PhaseComplete:
			l.Spans++
			l.SpanDur += ev.Dur
		case PhaseInstant:
			l.Instants++
		}
		if ev.TS < l.FirstTS {
			l.FirstTS = ev.TS
		}
		if end := ev.TS + ev.Dur; end > l.LastTS {
			l.LastTS = end
		}
	}
	// Named-but-empty lanes still appear, so /tracez shows every
	// registered worker/client lane even before it records.
	for k := range threads {
		if lanes[k] == nil {
			lanes[k] = &LaneSummary{PID: k[0], TID: k[1]}
		}
	}
	s.Lanes = make([]LaneSummary, 0, len(lanes))
	for k, l := range lanes {
		l.Process = procs[k[0]]
		l.Thread = threads[k]
		s.Lanes = append(s.Lanes, *l)
	}
	sort.Slice(s.Lanes, func(i, j int) bool {
		if s.Lanes[i].PID != s.Lanes[j].PID {
			return s.Lanes[i].PID < s.Lanes[j].PID
		}
		return s.Lanes[i].TID < s.Lanes[j].TID
	})
	return s
}

// MergeRemote folds one remote telemetry delta into the sink: counters and
// histogram buckets add, gauges take the remote value, trace events shift
// onto the local clock, flight events append to the local ring. Callers
// must invoke it in trial-commit order (the pool's commit scan, the fleet
// service's per-batch ingest) — MergeRemote itself imposes no ordering, it
// only guarantees that identical delta sequences produce identical sinks.
func (s *Sink) MergeRemote(d Delta) {
	if s == nil {
		return
	}
	if d.Metrics != nil {
		s.Metrics.Merge(*d.Metrics)
	}
	s.Trace.MergeDelta(d.Trace)
	s.Flight.Append(d.Flight)
}

// volatileFamilies lists metric-name prefixes that legitimately vary with
// worker count, executor choice, resume state or wall clock — scheduling
// facts, not simulation facts. Everything else merged through the
// trial-commit path is byte-identical across -jobs values and executors,
// and the check.sh federation gate holds the repo to that.
var volatileFamilies = []string{
	"harness.pool.worker",       // per-worker scheduling + wall-clock utilization
	"harness.pool.trials",       // started trials, includes speculative overshoot
	"harness.pool.discarded",    // speculative trials past the accept limit
	"harness.pool.queue.",       // live queue depth
	"harness.pool.commit.stall", // wall-clock commit stalls
	"harness.executor.",         // spawns/respawns/timeouts are infra facts
	"artifact.",                 // hit/miss mix depends on resume state
	"fleet.",                    // client/ingest traffic accounting
}

// IsVolatile reports whether a metric belongs to a family excluded from
// determinism comparisons.
func IsVolatile(name string) bool {
	for _, p := range volatileFamilies {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// Deterministic returns the snapshot minus volatile families: the subset
// that must be byte-identical across -jobs values and executor choices.
// The -metrics-format detjson flag and the check.sh federation gate
// compare exactly this view.
func (s Snapshot) Deterministic() Snapshot {
	out := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for name, v := range s.Counters {
		if !IsVolatile(name) {
			out.Counters[name] = v
		}
	}
	for name, v := range s.Gauges {
		if !IsVolatile(name) {
			out.Gauges[name] = v
		}
	}
	for name, h := range s.Histograms {
		if !IsVolatile(name) {
			out.Histograms[name] = h
		}
	}
	return out
}
