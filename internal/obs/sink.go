package obs

// PipelinePID is the reserved trace track group for pipeline-level events
// (table rows, diagnosis phases) — distinct from the per-core track groups,
// whose pids are core IDs starting at 0.
const PipelinePID = 99

// PoolPID is the reserved trace track group for the harness worker pool:
// fan-out spans land here, one track (tid) per worker.
const PoolPID = 98

// Sink bundles the telemetry destinations one simulation or pipeline run
// reports into. A nil *Sink disables everything: instrumented code guards
// with nil checks (or calls nil-safe methods) and pays no other cost.
type Sink struct {
	// Metrics receives counter/gauge/histogram updates. May be nil.
	Metrics *Registry
	// Trace receives events. Nil disables tracing (the common case:
	// metrics are cheap, per-branch trace events are not).
	Trace *Tracer
	// Verbosity raises event detail: 0 records coarse events only
	// (runs, profiles, traps, phases); >=1 adds per-branch and
	// per-coherence-event instants and ring push/evict events.
	Verbosity int
	// Flight is the flight recorder for this sink's scope: a bounded ring
	// of recent structured harness events, dumped when a trial fails (the
	// software mirror of reading the LBR in the segfault handler). Nil
	// disables recording.
	Flight *FlightRecorder
	// Profiling arms the cost-attribution layer (internal/prof): per-opcode
	// cycle attribution in the VM dispatch loop, snapshot-allocation
	// accounting in the PMU rings, phase rollups and worker-utilization
	// tracking in the harness. Off by default: the dispatch loop then pays
	// one nil check.
	Profiling bool
}

// NewSink returns a sink recording metrics into the process-wide Default
// registry, with tracing off.
func NewSink() *Sink { return &Sink{Metrics: Default()} }

// Counter resolves a named counter from the sink's registry; nil-safe.
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.Metrics.Counter(name)
}

// Gauge resolves a named gauge from the sink's registry; nil-safe.
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.Metrics.Gauge(name)
}

// Histogram resolves a named histogram from the sink's registry; nil-safe.
func (s *Sink) Histogram(name string, bounds []uint64) *Histogram {
	if s == nil {
		return nil
	}
	return s.Metrics.Histogram(name, bounds)
}

// Tracer returns the sink's tracer, or nil.
func (s *Sink) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.Trace
}

// FlightRecorder returns the sink's flight recorder, or nil.
func (s *Sink) FlightRecorder() *FlightRecorder {
	if s == nil {
		return nil
	}
	return s.Flight
}

// RecordFlight appends one event to the sink's flight recorder; nil-safe.
func (s *Sink) RecordFlight(ev FlightEvent) {
	if s != nil {
		s.Flight.Record(ev)
	}
}

// Cycles reads the sink registry's "vm.cycles" counter — the deterministic
// cycle clock flight events are stamped with (0 without a registry).
func (s *Sink) Cycles() uint64 { return s.Counter("vm.cycles").Value() }

// Profiled reports whether cost-attribution counters should be recorded.
func (s *Sink) Profiled() bool { return s != nil && s.Profiling }

// Tracing reports whether trace events should be recorded.
func (s *Sink) Tracing() bool { return s != nil && s.Trace != nil }

// Verbose reports whether fine-grained (per-branch, per-coherence-event)
// trace events should be recorded.
func (s *Sink) Verbose() bool { return s != nil && s.Trace != nil && s.Verbosity >= 1 }
