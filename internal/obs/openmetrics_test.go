package obs

import (
	"strings"
	"testing"
)

func TestOpenMetricsGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("harness.pool.trials").Add(7)
	r.Counter("vm.runs").Add(3)
	r.Gauge("vm.cores").Set(-2)
	h := r.Histogram("vm.run.cycles", []uint64{10, 100})
	h.Observe(5)
	h.Observe(10)
	h.Observe(50)
	h.Observe(1000)

	want := strings.Join([]string{
		"# TYPE harness_pool_trials counter",
		"harness_pool_trials_total 7",
		"# TYPE vm_runs counter",
		"vm_runs_total 3",
		"# TYPE vm_cores gauge",
		"vm_cores -2",
		"# TYPE vm_run_cycles histogram",
		`vm_run_cycles_bucket{le="10"} 2`,
		`vm_run_cycles_bucket{le="100"} 3`,
		`vm_run_cycles_bucket{le="+Inf"} 4`,
		"vm_run_cycles_sum 1065",
		"vm_run_cycles_count 4",
		"# EOF",
		"",
	}, "\n")
	if got := r.Snapshot().OpenMetrics(); got != want {
		t.Errorf("OpenMetrics exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestOpenMetricsDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		for _, n := range []string{"b.z", "a.y", "c.x", "a.a"} {
			r.Counter(n).Inc()
			r.Gauge(n + ".g").Set(1)
		}
		r.Histogram("h.two", []uint64{1}).Observe(1)
		r.Histogram("h.one", []uint64{1}).Observe(2)
		return r.Snapshot().OpenMetrics()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", a, b)
	}
	// Families must be sorted.
	ia, ib := strings.Index(a, "a_a_total"), strings.Index(a, "b_z_total")
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("counter families out of order:\n%s", a)
	}
}

func TestOpenMetricsWorkerLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("harness.pool.worker2.trials").Add(5)
	r.Counter("harness.pool.worker10.trials").Add(9)
	r.Counter("harness.pool.worker0.trials").Add(1)
	out := r.Snapshot().OpenMetrics()
	if n := strings.Count(out, "# TYPE harness_pool_worker_trials counter"); n != 1 {
		t.Fatalf("worker counters did not fold into one family (%d TYPE lines):\n%s", n, out)
	}
	// Series ordered numerically by worker, not lexically (2 before 10).
	i0 := strings.Index(out, `harness_pool_worker_trials_total{worker="0"} 1`)
	i2 := strings.Index(out, `harness_pool_worker_trials_total{worker="2"} 5`)
	i10 := strings.Index(out, `harness_pool_worker_trials_total{worker="10"} 9`)
	if i0 < 0 || i2 < 0 || i10 < 0 || !(i0 < i2 && i2 < i10) {
		t.Errorf("worker series missing or out of numeric order:\n%s", out)
	}
}

func TestOpenMetricsNameSanitization(t *testing.T) {
	for raw, want := range map[string]string{
		"a.b-c/d":                     "a_b_c_d",
		"faultinj.injected.msr-write": "faultinj_injected_msr_write",
		"0weird":                      "_0weird",
		"plain":                       "plain",
	} {
		got, worker, client := sanitizeMetricName(raw)
		if got != want || worker != -1 || client != "" {
			t.Errorf("sanitizeMetricName(%q) = %q, %d, %q; want %q, -1, \"\"", raw, got, worker, client, want)
		}
	}
	if got, worker, _ := sanitizeMetricName("harness.pool.worker3.trials"); got != "harness_pool_worker_trials" || worker != 3 {
		t.Errorf("worker extraction = %q, %d", got, worker)
	}
	if got, _, client := sanitizeMetricName("fleet.ingest.client:machine-0.batches"); got != "fleet_ingest_client_batches" || client != "machine-0" {
		t.Errorf("client extraction = %q, %q", got, client)
	}
}

func TestOpenMetricsClientLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("fleet.ingest.client:machine-1.batches").Add(3)
	r.Counter("fleet.ingest.client:machine-0.batches").Add(2)
	out := r.Snapshot().OpenMetrics()
	if n := strings.Count(out, "# TYPE fleet_ingest_client_batches counter"); n != 1 {
		t.Fatalf("client counters did not fold into one family (%d TYPE lines):\n%s", n, out)
	}
	i0 := strings.Index(out, `fleet_ingest_client_batches_total{client="machine-0"} 2`)
	i1 := strings.Index(out, `fleet_ingest_client_batches_total{client="machine-1"} 3`)
	if i0 < 0 || i1 < 0 || i0 > i1 {
		t.Errorf("client series missing or out of order:\n%s", out)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	if got := escapeLabelValue("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Errorf("escapeLabelValue = %q", got)
	}
}

func TestOpenMetricsEmptySnapshot(t *testing.T) {
	if got := NewRegistry().Snapshot().OpenMetrics(); got != "# EOF\n" {
		t.Errorf("empty snapshot renders %q, want only # EOF", got)
	}
}

func TestOpenMetricsEmptyBoundsHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("only.overflow", nil)
	h.Observe(3)
	h.Observe(9)
	out := r.Snapshot().OpenMetrics()
	for _, want := range []string{
		`only_overflow_bucket{le="+Inf"} 2`,
		"only_overflow_sum 12",
		"only_overflow_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
