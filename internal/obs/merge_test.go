package obs

import "testing"

func TestMergeCountersGaugesHistograms(t *testing.T) {
	parent := NewRegistry()
	parent.Counter("runs").Add(5)
	parent.Gauge("depth").Set(2)
	parent.Histogram("lat", []uint64{10, 100}).Observe(7)

	child := NewRegistry()
	child.Counter("runs").Add(3)
	child.Counter("fresh").Add(2)
	child.Gauge("depth").Set(9)
	h := child.Histogram("lat", []uint64{10, 100})
	h.Observe(50)
	h.Observe(500)

	parent.Merge(child.Snapshot())
	s := parent.Snapshot()
	if got := s.Counter("runs"); got != 8 {
		t.Errorf("merged counter runs = %d, want 5+3", got)
	}
	if got := s.Counter("fresh"); got != 2 {
		t.Errorf("counter created on demand = %d, want 2", got)
	}
	if got := s.Gauges["depth"]; got != 9 {
		t.Errorf("merged gauge = %d, want the snapshot's value 9", got)
	}
	hs := s.Histograms["lat"]
	if hs.Count != 3 || hs.Sum != 7+50+500 {
		t.Errorf("merged histogram count/sum = %d/%d, want 3/557", hs.Count, hs.Sum)
	}
	// Buckets: bounds {10,100} + overflow. 7 -> bucket 0, 50 -> 1, 500 -> 2.
	want := []uint64{1, 1, 1}
	for i, c := range hs.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
}

func TestMergeHistogramBoundsMismatch(t *testing.T) {
	parent := NewRegistry()
	parent.Histogram("lat", []uint64{10, 100}).Observe(5)

	child := NewRegistry()
	h := child.Histogram("lat", []uint64{50})
	h.Observe(1)
	h.Observe(99)

	parent.Merge(child.Snapshot())
	hs := parent.Snapshot().Histograms["lat"]
	if hs.Count != 3 || hs.Sum != 105 {
		t.Errorf("mismatch merge lost observations: count/sum = %d/%d, want 3/105", hs.Count, hs.Sum)
	}
	// The fallback folds the child's observations into the overflow bucket
	// so the parent's bucket layout survives.
	if len(hs.Counts) != 3 {
		t.Fatalf("parent bucket layout changed: %v", hs.Counts)
	}
	if hs.Counts[0] != 1 || hs.Counts[2] != 2 {
		t.Errorf("buckets = %v, want child observations in overflow", hs.Counts)
	}
}

func TestMergeIntoNilRegistry(t *testing.T) {
	child := NewRegistry()
	child.Counter("x").Inc()
	var r *Registry
	r.Merge(child.Snapshot()) // must not panic
}
