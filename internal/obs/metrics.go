// Package obs is the zero-dependency observability layer of the system
// (DESIGN §6: pure stdlib). It has two halves:
//
//   - Metrics: a Registry of named counters, gauges and fixed-bucket
//     histograms with a lock-free hot path (atomic adds), snapshot/reset,
//     and deterministic text and JSON rendering. The process-wide registry
//     (Default) collects instrumentation-time facts (sites instrumented,
//     predicates sampled, audit coverage); per-run registries hang off a
//     Sink threaded through vm.Options.
//
//   - Tracing: a Tracer of structured events (branch retired, coherence
//     event, ring push/evict, profile capture, diagnosis phase) timestamped
//     by the VM cycle clock — never wall clock — so traces are bit-identical
//     across runs of the same seed, with an exporter to Chrome trace_event
//     JSON (chrome://tracing, Perfetto) and a compact text dump.
//
// Every mutating method is nil-safe on its receiver: a nil *Counter,
// *Gauge, *Histogram, *Tracer or *Sink turns the call into a no-op, so
// instrumented hot paths compile to a nil-check when telemetry is off.
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry. All methods are safe on a nil receiver.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n; no-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one; no-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. All methods are safe on a nil
// receiver.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value; no-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta; no-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 for a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram of uint64 observations. Bucket i
// counts observations v <= Bounds[i]; one implicit overflow bucket counts
// the rest. Observations are lock-free atomic adds.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1, last is overflow
	sum    atomic.Uint64
	n      atomic.Uint64
}

// DefaultCycleBounds is a power-of-four bucket ladder suited to run cycle
// and step counts (64 .. ~16M).
var DefaultCycleBounds = []uint64{
	64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10,
	256 << 10, 1 << 20, 4 << 20, 16 << 20,
}

// Observe records one value; no-op on a nil receiver.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry holds named instruments. Lookup (Counter/Gauge/Histogram) is a
// read-locked map access and is meant for setup paths; hot paths cache the
// returned pointer and pay only an atomic add per event.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Instrumentation that has no
// Sink in reach (the LBRLOG transformer, CBI observers, the bundle audit)
// counts here.
func Default() *Registry { return defaultRegistry }

// Counter returns (creating if needed) the named counter. nil-safe: a nil
// registry returns a nil counter, whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with the given
// ascending upper bounds; nil-safe. Bounds of an existing histogram are
// kept (first registration wins).
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		b := make([]uint64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered instrument in place. Cached instrument
// pointers stay valid — only their values reset.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.sum.Store(0)
		h.n.Store(0)
	}
}

// Merge folds a snapshot into the registry: counters add, gauges take the
// snapshot's value, histogram bucket counts add (instruments are created on
// demand, histograms with the snapshot's bounds). The harness worker pool
// uses this to commit per-trial registries into the run's registry in trial
// order, so merged totals are independent of worker count and scheduling.
func (r *Registry) Merge(s Snapshot) {
	if r == nil {
		return
	}
	for name, v := range s.Counters {
		r.Counter(name).Add(v)
	}
	for name, v := range s.Gauges {
		r.Gauge(name).Set(v)
	}
	for name, hs := range s.Histograms {
		h := r.Histogram(name, hs.Bounds)
		if len(h.counts) != len(hs.Counts) {
			// Bounds mismatch with an existing histogram: fold everything
			// into totals so no observation is silently lost.
			h.sum.Add(hs.Sum)
			h.n.Add(hs.Count)
			if len(h.counts) > 0 {
				h.counts[len(h.counts)-1].Add(hs.Count)
			}
			continue
		}
		for i, c := range hs.Counts {
			h.counts[i].Add(c)
		}
		h.sum.Add(hs.Sum)
		h.n.Add(hs.Count)
	}
}

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra overflow
	// bucket at the end.
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	// Count and Sum aggregate all observations.
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
}

// Snapshot is a frozen view of a registry. Maps marshal with sorted keys,
// so JSON() and Text() are deterministic.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.v.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.v.Load()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]uint64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Count:  h.n.Load(),
			Sum:    h.sum.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// Counter returns a counter's snapshotted value (0 if absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Delta returns s minus prev, per instrument: counters and histogram
// counts subtract (clamped at 0), gauges keep their current value.
// Instruments absent from prev pass through unchanged.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	sub := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	for name, v := range s.Counters {
		out.Counters[name] = sub(v, prev.Counters[name])
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		p, ok := prev.Histograms[name]
		d := HistogramSnapshot{
			Bounds: append([]uint64(nil), h.Bounds...),
			Counts: make([]uint64, len(h.Counts)),
			Count:  h.Count,
			Sum:    h.Sum,
		}
		if ok && len(p.Counts) == len(h.Counts) {
			d.Count = sub(h.Count, p.Count)
			d.Sum = sub(h.Sum, p.Sum)
			for i := range h.Counts {
				d.Counts[i] = sub(h.Counts[i], p.Counts[i])
			}
		} else {
			copy(d.Counts, h.Counts)
		}
		out.Histograms[name] = d
	}
	return out
}

// Text renders the snapshot as sorted "name value" lines. Zero-valued
// instruments are skipped so deltas stay readable.
func (s Snapshot) Text() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if v := s.Counters[name]; v != 0 {
			fmt.Fprintf(&b, "%-40s %d\n", name, v)
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if v := s.Gauges[name]; v != 0 {
			fmt.Fprintf(&b, "%-40s %d\n", name, v)
		}
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-40s count=%d sum=%d", name, h.Count, h.Sum)
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			if i < len(h.Bounds) {
				fmt.Fprintf(&b, " le%d=%d", h.Bounds[i], c)
			} else {
				fmt.Fprintf(&b, " inf=%d", c)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the snapshot as deterministic (sorted-key) JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
