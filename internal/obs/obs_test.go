package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Set(5)
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %d", g.Value())
	}
	var h *Histogram
	h.Observe(7)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil histogram recorded")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatalf("nil registry returned non-nil instrument")
	}
	r.Reset()
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatalf("nil registry snapshot non-empty")
	}
	var tr *Tracer
	tr.Instant("x", "c", 1, 0, 0, nil)
	tr.Advance(10)
	if tr.Len() != 0 || tr.Base() != 0 {
		t.Fatalf("nil tracer recorded")
	}
	var s *Sink
	s.Counter("x").Inc()
	if s.Tracing() || s.Verbose() || s.Tracer() != nil {
		t.Fatalf("nil sink active")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("a")
	if a != r.Counter("a") {
		t.Fatalf("Counter not idempotent")
	}
	a.Add(2)
	a.Inc()
	if a.Value() != 3 {
		t.Fatalf("counter = %d, want 3", a.Value())
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
	h := r.Histogram("h", []uint64{10, 100})
	if h != r.Histogram("h", []uint64{999}) {
		t.Fatalf("Histogram not idempotent")
	}
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	if h.Count() != 3 || h.Sum() != 555 {
		t.Fatalf("hist count=%d sum=%d", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	hs := snap.Histograms["h"]
	want := []uint64{1, 1, 1}
	for i, c := range hs.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
}

func TestResetPreservesPointers(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []uint64{1})
	c.Add(9)
	h.Observe(2)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("reset did not zero values")
	}
	// The cached pointer must still feed the registry.
	c.Inc()
	if r.Snapshot().Counter("c") != 1 {
		t.Fatalf("cached pointer detached after Reset")
	}
}

func TestSnapshotDeltaAndRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("vm.steps")
	h := r.Histogram("vm.run.cycles", []uint64{100})
	c.Add(10)
	h.Observe(50)
	before := r.Snapshot()
	c.Add(5)
	h.Observe(200)
	after := r.Snapshot()
	d := after.Delta(before)
	if d.Counter("vm.steps") != 5 {
		t.Fatalf("delta counter = %d, want 5", d.Counter("vm.steps"))
	}
	dh := d.Histograms["vm.run.cycles"]
	if dh.Count != 1 || dh.Sum != 200 || dh.Counts[0] != 0 || dh.Counts[1] != 1 {
		t.Fatalf("delta histogram = %+v", dh)
	}
	txt := d.Text()
	if !bytes.Contains([]byte(txt), []byte("vm.steps")) {
		t.Fatalf("Text missing counter: %q", txt)
	}
	j1, err := after.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := after.JSON()
	if !bytes.Equal(j1, j2) {
		t.Fatalf("snapshot JSON not deterministic")
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("hist", []uint64{10})
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(uint64(j % 20))
				tr.Instant("e", "t", uint64(j), i, 0, nil)
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
	if tr.Len() != 8000 {
		t.Fatalf("tracer len = %d, want 8000", tr.Len())
	}
}

func TestTracerLimit(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(3)
	for i := 0; i < 5; i++ {
		tr.Instant("e", "t", uint64(i), 0, 0, nil)
	}
	if tr.Len() != 3 || tr.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
}

func TestTracerAdvanceOffsetsTimestamps(t *testing.T) {
	tr := NewTracer()
	tr.Instant("a", "t", 5, 0, 0, nil)
	tr.Advance(100)
	tr.Instant("b", "t", 5, 0, 0, nil)
	out, err := tr.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			TS   uint64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 || doc.TraceEvents[0].TS != 5 || doc.TraceEvents[1].TS != 105 {
		t.Fatalf("events = %+v", doc.TraceEvents)
	}
}

func TestChromeJSONShapeAndDeterminism(t *testing.T) {
	build := func() *Tracer {
		tr := NewTracer()
		tr.SetProcessName(0, "core 0")
		tr.SetProcessName(99, "pipeline")
		tr.SetThreadName(0, 1, "t1")
		tr.Complete("quantum", "sched", 0, 40, 0, 1, map[string]any{"steps": 7, "app": "sort"})
		tr.Instant("branch", "vm", 12, 0, 1, map[string]any{"from": 3, "to": 9})
		tr.Begin("diagnose", "phase", 40, 99, 0, nil)
		tr.End("diagnose", "phase", 90, 99, 0)
		return tr
	}
	j1, err := build().ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := build().ChromeJSON()
	if !bytes.Equal(j1, j2) {
		t.Fatalf("ChromeJSON not deterministic:\n%s\n---\n%s", j1, j2)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(j1, &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	// 2 process_name + 1 thread_name + 4 events
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("event count = %d, want 7", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event missing %q: %v", field, ev)
			}
		}
	}
	// Complete events carry dur.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			found = true
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event missing dur: %v", ev)
			}
		}
	}
	if !found {
		t.Fatalf("no complete event exported")
	}
}

func TestTracerText(t *testing.T) {
	tr := NewTracer()
	tr.Instant("branch", "vm", 7, 1, 2, map[string]any{"to": 4})
	tr.Complete("quantum", "sched", 0, 9, 0, 0, nil)
	txt := tr.Text(0)
	if !bytes.Contains([]byte(txt), []byte("branch")) || !bytes.Contains([]byte(txt), []byte("dur=9")) {
		t.Fatalf("text dump missing content:\n%s", txt)
	}
	if head := tr.Text(1); bytes.Contains([]byte(head), []byte("dur=9")) {
		t.Fatalf("Text(1) should truncate:\n%s", head)
	}
}

func TestSinkHelpers(t *testing.T) {
	s := &Sink{Metrics: NewRegistry(), Trace: NewTracer(), Verbosity: 1}
	s.Counter("x").Inc()
	if s.Metrics.Snapshot().Counter("x") != 1 {
		t.Fatalf("sink counter did not land in registry")
	}
	if !s.Tracing() || !s.Verbose() {
		t.Fatalf("sink tracing flags wrong")
	}
	s.Verbosity = 0
	if s.Verbose() {
		t.Fatalf("Verbose at verbosity 0")
	}
	d := NewSink()
	if d.Metrics != Default() || d.Trace != nil {
		t.Fatalf("NewSink defaults wrong")
	}
}
