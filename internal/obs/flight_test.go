package obs

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderBasics(t *testing.T) {
	r := NewFlightRecorder(8)
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", r.Cap())
	}
	for i := 0; i < 5; i++ {
		r.Record(FlightEvent{Cycle: uint64(i), Trial: i, Kind: FlightTrialStart})
	}
	evs := r.Snapshot()
	if len(evs) != 5 {
		t.Fatalf("Snapshot len = %d, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Trial != i {
			t.Errorf("event %d has trial %d: order not oldest-first", i, ev.Trial)
		}
	}
	if r.Recorded() != 5 || r.Dropped() != 0 {
		t.Errorf("Recorded=%d Dropped=%d, want 5, 0", r.Recorded(), r.Dropped())
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(FlightEvent{Trial: i})
	}
	evs := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(evs))
	}
	for i, want := range []int{6, 7, 8, 9} {
		if evs[i].Trial != want {
			t.Errorf("evs[%d].Trial = %d, want %d", i, evs[i].Trial, want)
		}
	}
	if r.Recorded() != 10 || r.Dropped() != 6 {
		t.Errorf("Recorded=%d Dropped=%d, want 10, 6", r.Recorded(), r.Dropped())
	}
}

func TestFlightRecorderTail(t *testing.T) {
	r := NewFlightRecorder(8)
	for i := 0; i < 6; i++ {
		r.Record(FlightEvent{Trial: i})
	}
	tail := r.Tail(2)
	if len(tail) != 2 || tail[0].Trial != 4 || tail[1].Trial != 5 {
		t.Fatalf("Tail(2) = %v, want trials 4,5", tail)
	}
	if got := r.Tail(0); len(got) != 6 {
		t.Errorf("Tail(0) len = %d, want all 6", len(got))
	}
}

func TestFlightRecorderNilSafety(t *testing.T) {
	var r *FlightRecorder
	r.Record(FlightEvent{})
	r.Append([]FlightEvent{{}})
	r.Reset()
	if r.Snapshot() != nil || r.Tail(3) != nil || r.Cap() != 0 || r.Recorded() != 0 || r.Dropped() != 0 {
		t.Error("nil recorder must be inert")
	}
	var s *Sink
	s.RecordFlight(FlightEvent{})
	if s.FlightRecorder() != nil {
		t.Error("nil sink must have nil recorder")
	}
	(&Sink{}).RecordFlight(FlightEvent{}) // recorder-less sink: no-op
}

func TestFlightRecorderReset(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		r.Record(FlightEvent{Trial: i})
	}
	r.Reset()
	if r.Recorded() != 0 || len(r.Snapshot()) != 0 {
		t.Errorf("after Reset: Recorded=%d Snapshot=%v", r.Recorded(), r.Snapshot())
	}
}

func TestFlightRecorderMergeDeterminism(t *testing.T) {
	// The pool's commit path replays per-trial rings into a pipeline ring
	// in trial order; the result must not depend on how per-trial rings
	// were built, only on their contents.
	build := func() *FlightRecorder {
		pipe := NewFlightRecorder(16)
		for trial := 0; trial < 3; trial++ {
			tr := NewFlightRecorder(4)
			for a := 0; a < 2; a++ {
				tr.Record(FlightEvent{Cycle: uint64(10*trial + a), Trial: trial, Attempt: a, Kind: FlightTrialStart})
			}
			pipe.Append(tr.Snapshot())
		}
		return pipe
	}
	a, b := build().Snapshot(), build().Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("merged rings differ:\n%v\n%v", a, b)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	// Live scrapes read the ring while workers record: every concurrent
	// Snapshot must be well-formed (no torn events), which the race
	// detector plus the per-slot atomics guarantee.
	r := NewFlightRecorder(32)
	var writers, scraper sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				r.Record(FlightEvent{Cycle: uint64(i), Trial: w, Kind: FlightTrialStart})
			}
		}(w)
	}
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ev := range r.Snapshot() {
				if ev.Kind != FlightTrialStart {
					t.Errorf("torn event: %+v", ev)
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	scraper.Wait()
	if r.Recorded() != 2000 {
		t.Errorf("Recorded = %d, want 2000", r.Recorded())
	}
}

func TestFlightEventString(t *testing.T) {
	ev := FlightEvent{Cycle: 42, Trial: 3, Attempt: 1, Kind: FlightFault, Detail: "msr-write"}
	s := ev.String()
	for _, want := range []string{"cycle 42", "trial 3.1", "fault", "msr-write"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	pipe := FlightEvent{Cycle: 7, Trial: -1, Kind: FlightPhase, Detail: "sequential:sort"}
	if !strings.Contains(pipe.String(), "pipeline") {
		t.Errorf("pipeline event renders as %q", pipe.String())
	}
	_ = fmt.Sprintf("%v", ev)
}
