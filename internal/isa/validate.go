package isa

import (
	"errors"
	"fmt"
)

// Validate checks structural invariants of a resolved program: every
// control-transfer target is a valid PC, registers are in range, string and
// branch references resolve, and function ranges tile without overlap.
// Instrumentation passes call it after rewriting.
func (p *Program) Validate() error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if p.Entry < 0 || p.Entry >= len(p.Instrs) {
		bad("entry PC %d out of range [0,%d)", p.Entry, len(p.Instrs))
	}
	for pc := range p.Instrs {
		in := &p.Instrs[pc]
		if !in.Op.Valid() {
			bad("instr %d: invalid opcode %d", pc, uint8(in.Op))
			continue
		}
		if !in.Rd.Valid() || !in.Rs.Valid() {
			bad("instr %d (%s): register out of range", pc, in.Op)
		}
		switch opTable[in.Op].shape {
		case shapeLabel, shapeSpawn:
			if in.Target < 0 || in.Target >= len(p.Instrs) {
				bad("instr %d (%s): target %d out of range", pc, in.Op, in.Target)
			}
		case shapeStr:
			if in.Imm < 0 || in.Imm >= int64(len(p.Strings)) {
				bad("instr %d (print): string index %d out of range", pc, in.Imm)
			}
		}
		if in.BranchID != NoBranch && (in.BranchID < 0 || in.BranchID >= len(p.Branches)) {
			bad("instr %d: branch id %d out of range", pc, in.BranchID)
		}
	}
	for name, pc := range p.Labels {
		if pc < 0 || pc > len(p.Instrs) {
			bad("label %q: PC %d out of range", name, pc)
		}
	}
	for i := range p.Funcs {
		f := &p.Funcs[i]
		if f.Entry < 0 || f.End < f.Entry || f.End > len(p.Instrs) {
			bad("func %q: bad range [%d,%d)", f.Name, f.Entry, f.End)
		}
		if i > 0 && f.Entry < p.Funcs[i-1].End {
			bad("func %q overlaps %q", f.Name, p.Funcs[i-1].Name)
		}
	}
	prevEnd := int64(GlobalBase)
	for i := range p.Globals {
		g := &p.Globals[i]
		if g.Size <= 0 {
			bad("global %q: non-positive size", g.Name)
		}
		if g.Addr < prevEnd {
			bad("global %q overlaps previous", g.Name)
		}
		prevEnd = g.Addr + g.Size
	}
	if prevEnd-GlobalBase != p.GlobalWords {
		bad("GlobalWords %d != size of globals %d", p.GlobalWords, prevEnd-GlobalBase)
	}
	return errors.Join(errs...)
}
