package isa

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses and resolves a program written in the stmdiag assembly
// dialect. The dialect is line-oriented:
//
//	; comment to end of line
//	.file sort.c            set the modeled source file
//	.func merge [attrs]     start a function (attrs: lib, log, kernel)
//	.line 12                set the modeled source line
//	.branch A [true|false]  annotate the next conditional jump as source
//	                        branch "A"; the given edge (default false) is
//	                        the outcome when the jump is TAKEN. A synthetic
//	                        fall-through jmp for the opposite edge is
//	                        inserted automatically (paper Figure 2).
//	.entry main             set the entry label (default "main")
//	.global buf 16          reserve a 16-word zeroed global
//	.str msg "text"         define a string-table entry
//	label:                  define a label (may prefix an instruction)
//	movi r1, 42             instructions; see the Op documentation
//
// Numbers may be decimal, negative, or 0x-prefixed hex. Memory operands are
// written [rN], [rN+off] or [rN-off].
func Assemble(name, src string) (*Program, error) {
	a := &asm{
		prog: &Program{
			Name:   name,
			Entry:  -1,
			Labels: make(map[string]int),
		},
		entryLabel: "main",
		curFunc:    -1,
		pendBranch: NoBranch,
		branchIdx:  make(map[string]int),
		strIdx:     make(map[string]int),
		nextAddr:   GlobalBase,
	}
	for i, line := range strings.Split(src, "\n") {
		a.line(i+1, line)
	}
	a.finish()
	if len(a.errs) > 0 {
		return nil, fmt.Errorf("assemble %s: %w", name, errors.Join(a.errs...))
	}
	return a.prog, nil
}

// MustAssemble is Assemble for sources known at build time (the benchmark
// suite); it panics on error.
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

type asm struct {
	prog       *Program
	errs       []error
	entryLabel string

	loc        SourceLoc // current .file/.line/.func state
	curFunc    int       // index into prog.Funcs, -1 when outside
	pendBranch int       // branch ID awaiting its conditional jump, or NoBranch
	pendEdge   BranchEdge
	pendLine   int // source line of the pending .branch directive
	branchIdx  map[string]int
	strIdx     map[string]int
	nextAddr   int64
}

func (a *asm) errorf(lineno int, format string, args ...any) {
	a.errs = append(a.errs, fmt.Errorf("line %d: "+format, append([]any{lineno}, args...)...))
}

func (a *asm) line(lineno int, raw string) {
	text := stripComment(raw)
	text = strings.TrimSpace(text)
	if text == "" {
		return
	}
	if strings.HasPrefix(text, ".") {
		a.directive(lineno, text)
		return
	}
	// Leading labels, possibly followed by an instruction.
	for {
		idx := strings.IndexByte(text, ':')
		if idx < 0 {
			break
		}
		label := strings.TrimSpace(text[:idx])
		if !isIdent(label) {
			break
		}
		if _, dup := a.prog.Labels[label]; dup {
			a.errorf(lineno, "duplicate label %q", label)
		}
		a.prog.Labels[label] = len(a.prog.Instrs)
		text = strings.TrimSpace(text[idx+1:])
		if text == "" {
			return
		}
	}
	a.instr(lineno, text)
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case ';':
			if !inStr {
				return s[:i]
			}
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (a *asm) directive(lineno int, text string) {
	fields := strings.Fields(text)
	switch fields[0] {
	case ".file":
		if len(fields) != 2 {
			a.errorf(lineno, ".file wants 1 argument")
			return
		}
		a.loc.File = fields[1]
	case ".line":
		if len(fields) != 2 {
			a.errorf(lineno, ".line wants 1 argument")
			return
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			a.errorf(lineno, ".line: %v", err)
			return
		}
		a.loc.Line = n
	case ".entry":
		if len(fields) != 2 {
			a.errorf(lineno, ".entry wants 1 argument")
			return
		}
		a.entryLabel = fields[1]
	case ".func":
		if len(fields) < 2 {
			a.errorf(lineno, ".func wants a name")
			return
		}
		a.closeFunc()
		f := Function{Name: fields[1], Entry: len(a.prog.Instrs), End: -1}
		for _, attr := range fields[2:] {
			switch attr {
			case "lib":
				f.Attr |= AttrLibrary
			case "log":
				f.Attr |= AttrFailureLog
			case "kernel":
				f.Attr |= AttrKernel
			default:
				a.errorf(lineno, ".func: unknown attribute %q", attr)
			}
		}
		a.prog.Funcs = append(a.prog.Funcs, f)
		a.curFunc = len(a.prog.Funcs) - 1
		a.loc.Func = f.Name
	case ".branch":
		if len(fields) < 2 || len(fields) > 3 {
			a.errorf(lineno, ".branch wants a name and optional edge")
			return
		}
		name := fields[1]
		if _, dup := a.branchIdx[name]; dup {
			a.errorf(lineno, "duplicate branch %q", name)
			return
		}
		edge := EdgeFalse
		if len(fields) == 3 {
			switch fields[2] {
			case "true":
				edge = EdgeTrue
			case "false":
				edge = EdgeFalse
			default:
				a.errorf(lineno, ".branch: edge must be true or false")
				return
			}
		}
		if a.pendLine != 0 {
			a.errorf(lineno, ".branch %q: previous .branch not yet consumed by a conditional jump", name)
			return
		}
		id := len(a.prog.Branches)
		a.prog.Branches = append(a.prog.Branches, SourceBranch{Name: name, Loc: a.loc})
		a.branchIdx[name] = id
		a.pendBranch = id
		a.pendEdge = edge
		a.pendLine = lineno
	case ".global":
		if len(fields) < 2 || len(fields) > 3 {
			a.errorf(lineno, ".global wants a name and optional size")
			return
		}
		size := int64(1)
		if len(fields) == 3 {
			n, err := strconv.ParseInt(fields[2], 0, 64)
			if err != nil || n <= 0 {
				a.errorf(lineno, ".global: bad size %q", fields[2])
				return
			}
			size = n
		}
		if a.prog.GlobalByName(fields[1]) != nil {
			a.errorf(lineno, "duplicate global %q", fields[1])
			return
		}
		a.prog.Globals = append(a.prog.Globals, Global{Name: fields[1], Addr: a.nextAddr, Size: size})
		a.nextAddr += size
	case ".str":
		rest := strings.TrimSpace(strings.TrimPrefix(text, ".str"))
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			a.errorf(lineno, ".str wants a name and a quoted string")
			return
		}
		strName := rest[:sp]
		quoted := strings.TrimSpace(rest[sp+1:])
		val, err := strconv.Unquote(quoted)
		if err != nil {
			a.errorf(lineno, ".str %s: %v", strName, err)
			return
		}
		if _, dup := a.strIdx[strName]; dup {
			a.errorf(lineno, "duplicate string %q", strName)
			return
		}
		a.prog.Strings = append(a.prog.Strings, val)
		a.strIdx[strName] = len(a.prog.Strings) - 1
	default:
		a.errorf(lineno, "unknown directive %s", fields[0])
	}
}

func (a *asm) closeFunc() {
	if a.curFunc >= 0 {
		a.prog.Funcs[a.curFunc].End = len(a.prog.Instrs)
	}
	a.curFunc = -1
}

func (a *asm) emit(in Instr) {
	a.prog.Instrs = append(a.prog.Instrs, in)
}

func (a *asm) instr(lineno int, text string) {
	mnemonic, rest, _ := strings.Cut(text, " ")
	op, ok := OpByName(mnemonic)
	if !ok {
		a.errorf(lineno, "unknown instruction %q", mnemonic)
		return
	}
	in := Instr{Op: op, Loc: a.loc, BranchID: NoBranch}
	args := splitArgs(rest)
	info := opTable[op]
	bad := func() {
		a.errorf(lineno, "%s: bad operands %q", mnemonic, strings.TrimSpace(rest))
	}
	switch info.shape {
	case shapeNone:
		if len(args) != 0 {
			bad()
			return
		}
	case shapeRegImm:
		if len(args) != 2 {
			bad()
			return
		}
		rd, ok1 := parseReg(args[0])
		imm, ok2 := parseImm(args[1])
		if !ok1 || !ok2 {
			bad()
			return
		}
		in.Rd, in.Imm = rd, imm
	case shapeRegReg:
		if len(args) != 2 {
			bad()
			return
		}
		rd, ok1 := parseReg(args[0])
		rs, ok2 := parseReg(args[1])
		if !ok1 || !ok2 {
			bad()
			return
		}
		in.Rd, in.Rs = rd, rs
	case shapeRegSym:
		if len(args) != 2 {
			bad()
			return
		}
		rd, ok1 := parseReg(args[0])
		if !ok1 || !isIdent(args[1]) {
			bad()
			return
		}
		in.Rd, in.Sym = rd, args[1]
	case shapeLoad:
		if len(args) != 2 {
			bad()
			return
		}
		rd, ok1 := parseReg(args[0])
		rs, off, ok2 := parseMem(args[1])
		if !ok1 || !ok2 {
			bad()
			return
		}
		in.Rd, in.Rs, in.Imm = rd, rs, off
	case shapeStore:
		if len(args) != 2 {
			bad()
			return
		}
		rd, off, ok1 := parseMem(args[0])
		rs, ok2 := parseReg(args[1])
		if !ok1 || !ok2 {
			bad()
			return
		}
		in.Rd, in.Rs, in.Imm = rd, rs, off
	case shapeLabel:
		if len(args) != 1 || !isIdent(args[0]) {
			bad()
			return
		}
		in.Sym = args[0]
		in.Target = -1
	case shapeReg:
		if len(args) != 1 {
			bad()
			return
		}
		rd, ok1 := parseReg(args[0])
		if !ok1 {
			bad()
			return
		}
		in.Rd = rd
	case shapeImm:
		if len(args) != 1 {
			bad()
			return
		}
		imm, ok1 := parseImm(args[0])
		if !ok1 {
			bad()
			return
		}
		in.Imm = imm
	case shapeStr:
		if len(args) != 1 || !isIdent(args[0]) {
			bad()
			return
		}
		in.Sym = args[0]
	case shapeSpawn:
		if len(args) < 1 || len(args) > 2 || !isIdent(args[0]) {
			bad()
			return
		}
		in.Sym = args[0]
		in.Target = -1
		if len(args) == 2 {
			rs, ok1 := parseReg(args[1])
			if !ok1 {
				bad()
				return
			}
			in.Rs = rs
		}
	}

	if op.IsCond() && a.pendLine != 0 {
		in.BranchID = a.pendBranch
		in.Edge = a.pendEdge
		a.emit(in)
		// Figure 2: insert the harmless unconditional jump along the
		// fall-through edge so the opposite outcome is also recorded.
		a.emit(Instr{
			Op:        OpJmp,
			Target:    len(a.prog.Instrs) + 1,
			Loc:       a.loc,
			BranchID:  a.pendBranch,
			Edge:      a.pendEdge.Opposite(),
			Synthetic: true,
		})
		a.pendBranch = NoBranch
		a.pendLine = 0
		return
	}
	a.emit(in)
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func parseReg(s string) (Reg, bool) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, false
	}
	return Reg(n), true
}

func parseImm(s string) (int64, bool) {
	n, err := strconv.ParseInt(s, 0, 64)
	return n, err == nil
}

// parseMem parses [rN], [rN+off], [rN-off].
func parseMem(s string) (Reg, int64, bool) {
	if len(s) < 3 || s[0] != '[' || s[len(s)-1] != ']' {
		return 0, 0, false
	}
	body := s[1 : len(s)-1]
	sign := int64(1)
	regPart, offPart := body, ""
	if i := strings.IndexAny(body, "+-"); i > 0 {
		regPart, offPart = body[:i], body[i+1:]
		if body[i] == '-' {
			sign = -1
		}
	}
	r, ok := parseReg(strings.TrimSpace(regPart))
	if !ok {
		return 0, 0, false
	}
	off := int64(0)
	if offPart != "" {
		n, err := strconv.ParseInt(strings.TrimSpace(offPart), 0, 64)
		if err != nil {
			return 0, 0, false
		}
		off = n
	}
	return r, sign * off, true
}

// finish closes the last function, resolves symbols, and validates.
func (a *asm) finish() {
	a.closeFunc()
	if a.pendLine != 0 {
		a.errs = append(a.errs, fmt.Errorf("line %d: .branch never consumed by a conditional jump", a.pendLine))
	}
	p := a.prog
	p.GlobalWords = a.nextAddr - GlobalBase
	// Auto-define a label at each function entry if the author did not.
	for i := range p.Funcs {
		if _, ok := p.Labels[p.Funcs[i].Name]; !ok {
			p.Labels[p.Funcs[i].Name] = p.Funcs[i].Entry
		}
	}
	if pc, ok := p.Labels[a.entryLabel]; ok {
		p.Entry = pc
	} else {
		a.errs = append(a.errs, fmt.Errorf("entry label %q not defined", a.entryLabel))
	}
	// Resolve operands.
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch opTable[in.Op].shape {
		case shapeLabel, shapeSpawn:
			if in.Target >= 0 { // synthetic fall-through jump, pre-resolved
				continue
			}
			pc, ok := p.Labels[in.Sym]
			if !ok {
				a.errs = append(a.errs, fmt.Errorf("instr %d (%s): undefined label %q", i, in.Op, in.Sym))
				continue
			}
			in.Target = pc
		case shapeRegSym:
			g := p.GlobalByName(in.Sym)
			if g == nil {
				a.errs = append(a.errs, fmt.Errorf("instr %d (lea): undefined global %q", i, in.Sym))
				continue
			}
			in.Imm = g.Addr
		case shapeStr:
			idx, ok := a.strIdx[in.Sym]
			if !ok {
				a.errs = append(a.errs, fmt.Errorf("instr %d (print): undefined string %q", i, in.Sym))
				continue
			}
			in.Imm = int64(idx)
		}
	}
	if len(a.errs) == 0 {
		if err := p.Validate(); err != nil {
			a.errs = append(a.errs, err)
		}
	}
}
