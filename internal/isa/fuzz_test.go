package isa

import "testing"

// FuzzAssemble feeds arbitrary text to the assembler: it must return a
// valid program or an error, never panic, and anything it accepts must
// pass validation.
func FuzzAssemble(f *testing.F) {
	f.Add(demoSrc)
	f.Add(".func main\nmain:\n exit\n")
	f.Add(".func main\nmain:\n.branch A\n cmpi r1, 0\n je main\n")
	f.Add(".global g 8\n.str s \"x\"\n.func main\nmain:\n print s\n exit\n")
	f.Add(".func main\nmain:\n movi r1, 0x7fffffffffffffff\n exit\n")
	f.Add(".entry other\n.func other\nother:\n halt\n")
	f.Add("garbage ::: [r1+")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz", src)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("accepted program fails validation: %v\nsource:\n%s", verr, src)
		}
	})
}
