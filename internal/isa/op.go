// Package isa defines the instruction set of the stmdiag virtual machine,
// the in-memory program representation, and a two-pass assembler.
//
// The VM is the substrate that replaces the paper's real x86 binaries: the
// benchmark applications from Table 4 of the paper are re-authored in this
// instruction set, and the machine in internal/vm executes them while the
// hardware short-term-memory facilities in internal/pmu observe retired
// branches and data-cache accesses.
//
// Branches follow the lowering described in Figure 2 of the paper: a
// source-level conditional branch becomes one conditional jump (taken when
// the source condition evaluates one way) plus one unconditional relative
// jump inserted along the fall-through edge, so that whichever way the
// source branch goes, some taken machine branch is recorded by the LBR.
package isa

import "fmt"

// Op is a VM opcode.
type Op uint8

// The instruction set. Operand conventions are documented per opcode; Rd is
// the first register operand, Rs the second, Imm the immediate, and Target
// the resolved instruction index for control transfers.
const (
	// OpNop does nothing.
	OpNop Op = iota

	// OpMovi sets Rd to Imm.
	OpMovi
	// OpMov copies Rs into Rd.
	OpMov
	// OpLea sets Rd to the address of the global named by Sym (resolved
	// into Imm at assembly time).
	OpLea

	// OpLd loads Rd from memory at address Rs+Imm (a data-cache access).
	OpLd
	// OpSt stores Rs to memory at address Rd+Imm (a data-cache access).
	OpSt

	// Binary register arithmetic: Rd <- Rd op Rs.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr

	// Immediate arithmetic: Rd <- Rd op Imm.
	OpAddi
	OpSubi
	OpMuli
	OpAndi

	// OpCmp compares Rd with Rs and sets the flags.
	OpCmp
	// OpCmpi compares Rd with Imm and sets the flags.
	OpCmpi

	// OpJmp is an unconditional relative jump to Target.
	OpJmp
	// Conditional jumps to Target, based on the flags.
	OpJe
	OpJne
	OpJl
	OpJle
	OpJg
	OpJge
	// OpJmpr is an unconditional indirect jump to the address in Rd.
	OpJmpr

	// OpCall is a direct call to Target; OpCallr calls the address in Rd.
	OpCall
	OpCallr
	// OpRet returns to the caller.
	OpRet

	// OpPush pushes Rd; OpPop pops into Rd.
	OpPush
	OpPop

	// OpLock acquires the mutex whose handle is the value in Rd, blocking
	// the thread until it is free. A non-positive handle is a null-mutex
	// dereference and faults, modeling pthread_mutex_lock(NULL) — the
	// crash of the paper's PBZIP2 read-too-late example (Figure 6).
	OpLock
	// OpUnlock releases the mutex whose handle is the value in Rd.
	OpUnlock

	// OpSpawn starts a new thread at Target with its r0 set to Rs.
	OpSpawn
	// OpJoin blocks until every thread spawned by this thread has exited.
	OpJoin
	// OpYield hints the scheduler to switch threads.
	OpYield

	// OpPrint appends string-table entry Imm to the program output.
	OpPrint
	// OpOut appends the decimal value of Rd to the program output.
	OpOut
	// OpFail records failure symptom Imm (used by failure-logging
	// functions such as the benchmarks' error()).
	OpFail
	// OpExit terminates the whole program.
	OpExit
	// OpHalt terminates the current thread.
	OpHalt

	// OpIoctl invokes the LBR/LCR kernel driver (internal/kernel) with
	// request code Imm. Inserted by the LBRLOG/LCRLOG transformer; programs
	// may also use it directly, mirroring Figure 7 of the paper.
	OpIoctl
	// OpDelay busy-waits for Imm cycles. Benchmarks use it to widen or
	// narrow interleaving windows around shared accesses.
	OpDelay

	opCount // sentinel
)

// NumOps is the number of defined opcodes. Cost-attribution tables
// (internal/prof) size their per-opcode arrays with it.
const NumOps = int(opCount)

// BranchClass categorizes taken control transfers the way the LBR filter
// configuration (paper Table 1) distinguishes them.
type BranchClass uint8

// Branch classes recognized by the LBR_SELECT filter masks.
const (
	// BranchNone marks instructions that are not control transfers.
	BranchNone BranchClass = iota
	// BranchCond is a taken conditional jump.
	BranchCond
	// BranchUncondRel is an unconditional relative jump (OpJmp),
	// including the fall-through-edge jumps inserted by the assembler.
	BranchUncondRel
	// BranchUncondInd is an unconditional indirect jump (OpJmpr).
	BranchUncondInd
	// BranchRelCall is a near relative call (OpCall).
	BranchRelCall
	// BranchIndCall is a near indirect call (OpCallr).
	BranchIndCall
	// BranchReturn is a near return (OpRet).
	BranchReturn
)

// opInfo carries per-opcode assembler and execution metadata.
type opInfo struct {
	name   string
	branch BranchClass
	// operand shape used by the assembler and disassembler
	shape operandShape
}

type operandShape uint8

const (
	shapeNone   operandShape = iota // op
	shapeRegImm                     // op rd, imm
	shapeRegReg                     // op rd, rs
	shapeRegSym                     // op rd, global
	shapeLoad                       // op rd, [rs+imm]
	shapeStore                      // op [rd+imm], rs
	shapeLabel                      // op label
	shapeReg                        // op rd
	shapeImm                        // op imm
	shapeStr                        // op strname
	shapeSpawn                      // op label [, rs]
)

var opTable = [opCount]opInfo{
	OpNop:    {"nop", BranchNone, shapeNone},
	OpMovi:   {"movi", BranchNone, shapeRegImm},
	OpMov:    {"mov", BranchNone, shapeRegReg},
	OpLea:    {"lea", BranchNone, shapeRegSym},
	OpLd:     {"ld", BranchNone, shapeLoad},
	OpSt:     {"st", BranchNone, shapeStore},
	OpAdd:    {"add", BranchNone, shapeRegReg},
	OpSub:    {"sub", BranchNone, shapeRegReg},
	OpMul:    {"mul", BranchNone, shapeRegReg},
	OpDiv:    {"div", BranchNone, shapeRegReg},
	OpMod:    {"mod", BranchNone, shapeRegReg},
	OpAnd:    {"and", BranchNone, shapeRegReg},
	OpOr:     {"or", BranchNone, shapeRegReg},
	OpXor:    {"xor", BranchNone, shapeRegReg},
	OpShl:    {"shl", BranchNone, shapeRegReg},
	OpShr:    {"shr", BranchNone, shapeRegReg},
	OpAddi:   {"addi", BranchNone, shapeRegImm},
	OpSubi:   {"subi", BranchNone, shapeRegImm},
	OpMuli:   {"muli", BranchNone, shapeRegImm},
	OpAndi:   {"andi", BranchNone, shapeRegImm},
	OpCmp:    {"cmp", BranchNone, shapeRegReg},
	OpCmpi:   {"cmpi", BranchNone, shapeRegImm},
	OpJmp:    {"jmp", BranchUncondRel, shapeLabel},
	OpJe:     {"je", BranchCond, shapeLabel},
	OpJne:    {"jne", BranchCond, shapeLabel},
	OpJl:     {"jl", BranchCond, shapeLabel},
	OpJle:    {"jle", BranchCond, shapeLabel},
	OpJg:     {"jg", BranchCond, shapeLabel},
	OpJge:    {"jge", BranchCond, shapeLabel},
	OpJmpr:   {"jmpr", BranchUncondInd, shapeReg},
	OpCall:   {"call", BranchRelCall, shapeLabel},
	OpCallr:  {"callr", BranchIndCall, shapeReg},
	OpRet:    {"ret", BranchReturn, shapeNone},
	OpPush:   {"push", BranchNone, shapeReg},
	OpPop:    {"pop", BranchNone, shapeReg},
	OpLock:   {"lock", BranchNone, shapeReg},
	OpUnlock: {"unlock", BranchNone, shapeReg},
	OpSpawn:  {"spawn", BranchNone, shapeSpawn},
	OpJoin:   {"join", BranchNone, shapeNone},
	OpYield:  {"yield", BranchNone, shapeNone},
	OpPrint:  {"print", BranchNone, shapeStr},
	OpOut:    {"out", BranchNone, shapeReg},
	OpFail:   {"fail", BranchNone, shapeImm},
	OpExit:   {"exit", BranchNone, shapeNone},
	OpHalt:   {"halt", BranchNone, shapeNone},
	OpIoctl:  {"ioctl", BranchNone, shapeImm},
	OpDelay:  {"delay", BranchNone, shapeImm},
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opTable) && opTable[o].name != "" {
		return opTable[o].name
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Branch reports the branch class the opcode belongs to. Conditional jumps
// are classified BranchCond whether or not they end up taken; the machine
// only records them in the LBR when taken.
func (o Op) Branch() BranchClass {
	if int(o) < len(opTable) {
		return opTable[o].branch
	}
	return BranchNone
}

// IsCond reports whether the opcode is a conditional jump.
func (o Op) IsCond() bool { return o.Branch() == BranchCond }

// IsControl reports whether the opcode can transfer control.
func (o Op) IsControl() bool { return o.Branch() != BranchNone }

// Valid reports whether the opcode is a defined instruction.
func (o Op) Valid() bool { return o < opCount && opTable[o].name != "" }

// String returns a short name for the branch class.
func (c BranchClass) String() string {
	switch c {
	case BranchNone:
		return "none"
	case BranchCond:
		return "cond"
	case BranchUncondRel:
		return "uncond-rel"
	case BranchUncondInd:
		return "uncond-ind"
	case BranchRelCall:
		return "rel-call"
	case BranchIndCall:
		return "ind-call"
	case BranchReturn:
		return "return"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// OpByName resolves an assembler mnemonic to its opcode.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, len(opTable))
	for op, info := range opTable {
		if info.name != "" {
			m[info.name] = Op(op)
		}
	}
	return m
}()
