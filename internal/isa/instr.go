package isa

import (
	"fmt"
	"strings"
)

// Memory layout constants, in word addresses. The region below GlobalBase
// is unmapped: dereferencing it (a null or corrupted pointer) raises a
// segmentation fault in the VM, the crash symptom several Table 4
// benchmarks exhibit.
const (
	// GlobalBase is the word address of the first global; the assembler
	// lays globals out from here.
	GlobalBase = 4096
	// StackBase is where the first thread's stack is placed; stacks grow
	// down and successive threads sit StackSpan words apart.
	StackBase = 1 << 22
	// StackSpan is the per-thread stack reservation in words.
	StackSpan = 1 << 14
)

// Reg identifies one of the 16 general-purpose registers r0..r15. By
// convention r0 carries a thread's start argument and r15 is the frame
// scratch register; the VM keeps the stack pointer separately.
type Reg uint8

// NumRegs is the size of the register file.
const NumRegs = 16

// String returns the assembler name of the register.
func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Valid reports whether the register index is within the register file.
func (r Reg) Valid() bool { return r < NumRegs }

// SourceLoc ties an instruction back to the modeled source program; the
// diagnosis layers report root causes in these terms, and patch distance
// (paper Table 6) is measured between SourceLocs.
type SourceLoc struct {
	// File is the modeled source file name, e.g. "sort.c".
	File string
	// Line is the modeled source line.
	Line int
	// Func is the enclosing function name.
	Func string
}

// IsZero reports whether the location carries no information.
func (l SourceLoc) IsZero() bool { return l.File == "" && l.Line == 0 && l.Func == "" }

// String formats the location as file:line (func).
func (l SourceLoc) String() string {
	if l.IsZero() {
		return "<unknown>"
	}
	return fmt.Sprintf("%s:%d (%s)", l.File, l.Line, l.Func)
}

// BranchEdge distinguishes the two outcomes of a source-level branch.
type BranchEdge uint8

const (
	// EdgeFalse is the source condition evaluating to false.
	EdgeFalse BranchEdge = iota
	// EdgeTrue is the source condition evaluating to true.
	EdgeTrue
)

// Opposite returns the other edge.
func (e BranchEdge) Opposite() BranchEdge {
	if e == EdgeFalse {
		return EdgeTrue
	}
	return EdgeFalse
}

// String returns "true" or "false".
func (e BranchEdge) String() string {
	if e == EdgeTrue {
		return "true"
	}
	return "false"
}

// NoBranch marks an instruction that does not embody a source-level branch
// edge.
const NoBranch = -1

// SourceBranch describes a source-level conditional branch. The assembler
// creates one per ".branch" directive; both machine jumps implementing the
// branch (the conditional jump and the inserted fall-through jump) refer to
// it by index.
type SourceBranch struct {
	// Name is the author-chosen identifier, e.g. "A" for the sort bug's
	// while condition in Figure 3 of the paper.
	Name string
	// Loc is where the branch lives in the modeled source.
	Loc SourceLoc
}

// String returns the branch name with its location.
func (b SourceBranch) String() string { return b.Name + " @ " + b.Loc.String() }

// FuncAttr carries the function attributes the diagnosis pipeline cares
// about.
type FuncAttr uint8

const (
	// AttrLibrary marks common library functions; the LBRLOG transformer
	// toggles LBR/LCR recording off around calls to them (paper §4.3).
	AttrLibrary FuncAttr = 1 << iota
	// AttrFailureLog marks application failure-logging functions such as
	// error() in coreutils or ap_log_error in Apache (paper §5.1).
	AttrFailureLog
	// AttrKernel marks code executing at ring 0; the LBR and LCR filters
	// can exclude its events.
	AttrKernel
)

// Has reports whether attr contains all bits of q.
func (a FuncAttr) Has(q FuncAttr) bool { return a&q == q }

// Function is a contiguous region of instructions with a name and
// attributes.
type Function struct {
	// Name is the function's label; calls target it.
	Name string
	// Entry and End delimit the instruction range [Entry, End).
	Entry, End int
	// Attr is the function's attribute set.
	Attr FuncAttr
}

// Instr is a single decoded instruction. Instructions are fixed-size; PCs
// are indices into Program.Instrs.
type Instr struct {
	// Op is the opcode.
	Op Op
	// Rd and Rs are the register operands (see opcode docs).
	Rd, Rs Reg
	// Imm is the immediate operand; for OpLd/OpSt it is the address
	// displacement, for OpLea the resolved global address, for OpPrint the
	// string-table index.
	Imm int64
	// Target is the resolved instruction index for control transfers and
	// OpSpawn.
	Target int
	// Sym preserves the label or symbol the operand was written with.
	Sym string
	// Loc is the instruction's modeled source location.
	Loc SourceLoc
	// BranchID indexes Program.Branches when the instruction embodies a
	// source-branch edge, else NoBranch.
	BranchID int
	// Edge is the source-branch outcome this jump represents; meaningful
	// only when BranchID != NoBranch. For a conditional jump it is the
	// outcome when the jump is taken; for the inserted fall-through jump it
	// is the opposite outcome.
	Edge BranchEdge
	// Synthetic marks instructions inserted by tooling (the assembler's
	// fall-through jumps and the LBRLOG/LCRLOG/CBI instrumentation).
	Synthetic bool
}

// String renders the instruction in assembler syntax.
func (in Instr) String() string {
	info := opTable[in.Op]
	switch info.shape {
	case shapeNone:
		return in.Op.String()
	case shapeRegImm:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case shapeRegReg:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rs)
	case shapeRegSym:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Sym)
	case shapeLoad:
		return fmt.Sprintf("%s %s, [%s%+d]", in.Op, in.Rd, in.Rs, in.Imm)
	case shapeStore:
		return fmt.Sprintf("%s [%s%+d], %s", in.Op, in.Rd, in.Imm, in.Rs)
	case shapeLabel:
		if in.Sym != "" {
			return fmt.Sprintf("%s %s", in.Op, in.Sym)
		}
		return fmt.Sprintf("%s @%d", in.Op, in.Target)
	case shapeReg:
		return fmt.Sprintf("%s %s", in.Op, in.Rd)
	case shapeImm:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	case shapeStr:
		if in.Sym != "" {
			return fmt.Sprintf("%s %s", in.Op, in.Sym)
		}
		return fmt.Sprintf("%s #%d", in.Op, in.Imm)
	case shapeSpawn:
		if in.Sym != "" {
			return fmt.Sprintf("%s %s, %s", in.Op, in.Sym, in.Rs)
		}
		return fmt.Sprintf("%s @%d, %s", in.Op, in.Target, in.Rs)
	}
	return in.Op.String()
}

// Global is a named region of zero-initialized words in the data segment.
type Global struct {
	// Name is the symbol programs reference with lea.
	Name string
	// Addr is the resolved word address.
	Addr int64
	// Size is the region length in words.
	Size int64
}

// Program is a fully assembled, resolved program.
type Program struct {
	// Name identifies the program (the benchmark name for apps).
	Name string
	// Instrs is the instruction memory; PC values index it.
	Instrs []Instr
	// Entry is the PC of the entry point (the ".entry" function's label).
	Entry int
	// Funcs lists functions in instruction order.
	Funcs []Function
	// Labels maps label names to PCs.
	Labels map[string]int
	// Globals lists the data-segment symbols in address order.
	Globals []Global
	// GlobalWords is the total data-segment size in words.
	GlobalWords int64
	// Strings is the string table indexed by OpPrint immediates.
	Strings []string
	// Branches is the source-branch table indexed by Instr.BranchID.
	Branches []SourceBranch
}

// FuncAt returns the function containing pc, or nil.
func (p *Program) FuncAt(pc int) *Function {
	for i := range p.Funcs {
		f := &p.Funcs[i]
		if pc >= f.Entry && pc < f.End {
			return f
		}
	}
	return nil
}

// FuncByName returns the named function, or nil.
func (p *Program) FuncByName(name string) *Function {
	for i := range p.Funcs {
		if p.Funcs[i].Name == name {
			return &p.Funcs[i]
		}
	}
	return nil
}

// GlobalByName returns the named global, or nil.
func (p *Program) GlobalByName(name string) *Global {
	for i := range p.Globals {
		if p.Globals[i].Name == name {
			return &p.Globals[i]
		}
	}
	return nil
}

// GlobalAt returns the global containing the word address, or nil.
func (p *Program) GlobalAt(addr int64) *Global {
	for i := range p.Globals {
		g := &p.Globals[i]
		if addr >= g.Addr && addr < g.Addr+g.Size {
			return g
		}
	}
	return nil
}

// BranchName returns the source-branch name for a branch ID, or "".
func (p *Program) BranchName(id int) string {
	if id < 0 || id >= len(p.Branches) {
		return ""
	}
	return p.Branches[id].Name
}

// StringIndex returns the index of s in the string table, adding it if
// absent. Instrumentation passes use it to attach messages.
func (p *Program) StringIndex(s string) int64 {
	for i, have := range p.Strings {
		if have == s {
			return int64(i)
		}
	}
	p.Strings = append(p.Strings, s)
	return int64(len(p.Strings) - 1)
}

// CountOp returns how many instructions use the opcode.
func (p *Program) CountOp(op Op) int {
	n := 0
	for i := range p.Instrs {
		if p.Instrs[i].Op == op {
			n++
		}
	}
	return n
}

// Stats summarizes a program for reporting (Table 4 analog).
type Stats struct {
	Instructions int
	Functions    int
	Branches     int // source-level branches
	CondJumps    int
	Calls        int
	LogSites     int // calls to failure-logging functions
}

// Stats computes summary statistics.
func (p *Program) Stats() Stats {
	s := Stats{
		Instructions: len(p.Instrs),
		Functions:    len(p.Funcs),
		Branches:     len(p.Branches),
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Op.Branch() {
		case BranchCond:
			s.CondJumps++
		case BranchRelCall, BranchIndCall:
			s.Calls++
			if f := p.FuncAt(in.Target); in.Op == OpCall && f != nil && f.Attr.Has(AttrFailureLog) {
				s.LogSites++
			}
		}
	}
	return s
}

// Clone returns a deep copy of the program; instrumentation passes mutate
// the copy and leave the original intact.
func (p *Program) Clone() *Program {
	q := &Program{
		Name:        p.Name,
		Instrs:      append([]Instr(nil), p.Instrs...),
		Entry:       p.Entry,
		Funcs:       append([]Function(nil), p.Funcs...),
		Labels:      make(map[string]int, len(p.Labels)),
		Globals:     append([]Global(nil), p.Globals...),
		GlobalWords: p.GlobalWords,
		Strings:     append([]string(nil), p.Strings...),
		Branches:    append([]SourceBranch(nil), p.Branches...),
	}
	for k, v := range p.Labels {
		q.Labels[k] = v
	}
	return q
}

// Disasm renders the whole program as annotated assembly, mainly for
// debugging and golden tests.
func (p *Program) Disasm() string {
	var b strings.Builder
	rev := make(map[int][]string)
	for name, pc := range p.Labels {
		rev[pc] = append(rev[pc], name)
	}
	for pc := range p.Instrs {
		for _, name := range rev[pc] {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		in := &p.Instrs[pc]
		fmt.Fprintf(&b, "%5d\t%s", pc, in.String())
		if in.BranchID != NoBranch {
			fmt.Fprintf(&b, "\t; branch %s edge=%s", p.BranchName(in.BranchID), in.Edge)
		}
		if in.Synthetic {
			b.WriteString("\t; synthetic")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
