package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSourceLocString(t *testing.T) {
	if got := (SourceLoc{}).String(); got != "<unknown>" {
		t.Errorf("zero loc = %q", got)
	}
	loc := SourceLoc{File: "a.c", Line: 7, Func: "f"}
	if got := loc.String(); got != "a.c:7 (f)" {
		t.Errorf("loc = %q", got)
	}
	if (SourceLoc{}).IsZero() != true || loc.IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestBranchEdgeHelpers(t *testing.T) {
	if EdgeFalse.Opposite() != EdgeTrue || EdgeTrue.Opposite() != EdgeFalse {
		t.Error("Opposite wrong")
	}
	if EdgeFalse.String() != "false" || EdgeTrue.String() != "true" {
		t.Error("String wrong")
	}
}

func TestSourceBranchString(t *testing.T) {
	b := SourceBranch{Name: "A", Loc: SourceLoc{File: "x.c", Line: 3, Func: "m"}}
	if got := b.String(); got != "A @ x.c:3 (m)" {
		t.Errorf("branch = %q", got)
	}
}

func TestBranchClassStrings(t *testing.T) {
	want := map[BranchClass]string{
		BranchNone:      "none",
		BranchCond:      "cond",
		BranchUncondRel: "uncond-rel",
		BranchUncondInd: "uncond-ind",
		BranchRelCall:   "rel-call",
		BranchIndCall:   "ind-call",
		BranchReturn:    "return",
	}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), w)
		}
	}
	if !OpCall.IsControl() || OpMovi.IsControl() {
		t.Error("IsControl wrong")
	}
}

func TestProgramHelpers(t *testing.T) {
	p := mustDemo(t)
	if g := p.GlobalAt(GlobalBase + 3); g == nil || g.Name != "buf" {
		t.Errorf("GlobalAt inside buf = %+v", g)
	}
	if g := p.GlobalAt(GlobalBase + 100); g != nil {
		t.Errorf("GlobalAt past end = %+v", g)
	}
	if p.BranchName(-1) != "" || p.BranchName(99) != "" {
		t.Error("BranchName out of range should be empty")
	}
	if p.CountOp(OpExit) != 1 {
		t.Errorf("CountOp(exit) = %d", p.CountOp(OpExit))
	}
	// StringIndex dedupes and appends.
	i1 := p.StringIndex("hi there")
	if i1 != 0 {
		t.Errorf("existing string index = %d", i1)
	}
	i2 := p.StringIndex("new message")
	if i2 != 1 || p.Strings[1] != "new message" {
		t.Errorf("appended index = %d, table %v", i2, p.Strings)
	}
	if p.FuncAt(-1) != nil || p.FuncAt(len(p.Instrs)+5) != nil {
		t.Error("FuncAt out of range should be nil")
	}
	if p.FuncByName("nonesuch") != nil {
		t.Error("FuncByName unknown should be nil")
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("bad", "zap r1\n")
}

// TestInstrStringRoundTrip: every non-control instruction's String() form
// reassembles to an equivalent instruction.
func TestInstrStringRoundTrip(t *testing.T) {
	cases := []Instr{
		{Op: OpNop},
		{Op: OpMovi, Rd: 3, Imm: -42},
		{Op: OpMov, Rd: 1, Rs: 2},
		{Op: OpLd, Rd: 4, Rs: 5, Imm: 8},
		{Op: OpSt, Rd: 6, Rs: 7, Imm: -3},
		{Op: OpAdd, Rd: 1, Rs: 2},
		{Op: OpShr, Rd: 9, Rs: 10},
		{Op: OpAddi, Rd: 2, Imm: 100},
		{Op: OpCmp, Rd: 3, Rs: 4},
		{Op: OpCmpi, Rd: 5, Imm: 0},
		{Op: OpPush, Rd: 11},
		{Op: OpPop, Rd: 12},
		{Op: OpLock, Rd: 13},
		{Op: OpUnlock, Rd: 14},
		{Op: OpOut, Rd: 15},
		{Op: OpFail, Imm: 9},
		{Op: OpIoctl, Imm: 3},
		{Op: OpDelay, Imm: 50},
		{Op: OpJoin},
		{Op: OpYield},
		{Op: OpExit},
		{Op: OpHalt},
		{Op: OpJmpr, Rd: 1},
		{Op: OpCallr, Rd: 2},
		{Op: OpRet},
	}
	for _, in := range cases {
		src := ".func main\nmain:\n " + in.String() + "\n exit\n"
		p, err := Assemble("rt", src)
		if err != nil {
			t.Errorf("%v: %v", in.String(), err)
			continue
		}
		got := p.Instrs[p.Labels["main"]]
		if got.Op != in.Op || got.Rd != in.Rd || got.Rs != in.Rs || got.Imm != in.Imm {
			t.Errorf("round trip %q -> %v", in.String(), got.String())
		}
	}
}

// TestAssembleNeverPanics: arbitrary text must produce a value or an
// error, never a panic.
func TestAssembleNeverPanics(t *testing.T) {
	tokens := []string{
		"movi", "r1", "r99", ",", "[", "]", "jmp", ".branch", ".func", ".line",
		".global", ".str", "\"x\"", ":", "main", "lock", "0x", "-", "9", ";c",
		"exit", "\n", " ", ".entry", "call", "st", "ld", "[r1+", "+2]",
	}
	f := func(picks []uint8) bool {
		var b strings.Builder
		for _, p := range picks {
			b.WriteString(tokens[int(p)%len(tokens)])
			if p%3 == 0 {
				b.WriteByte(' ')
			}
			if p%7 == 0 {
				b.WriteByte('\n')
			}
		}
		_, _ = Assemble("fuzz", b.String()) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *Program { return mustDemo(t).Clone() }

	p := fresh()
	p.Instrs[0].Op = Op(200)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "invalid opcode") {
		t.Errorf("bad opcode: %v", err)
	}

	p = fresh()
	p.Entry = -1
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "entry PC") {
		t.Errorf("bad entry: %v", err)
	}

	p = fresh()
	for i := range p.Instrs {
		if p.Instrs[i].Op == OpJmp {
			p.Instrs[i].Target = 10_000
			break
		}
	}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("bad target: %v", err)
	}

	p = fresh()
	p.Instrs[0].Rd = 99
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "register") {
		t.Errorf("bad register: %v", err)
	}

	p = fresh()
	p.Labels["ghost"] = 10_000
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "label") {
		t.Errorf("bad label: %v", err)
	}

	p = fresh()
	p.Funcs[0].End = p.Funcs[0].Entry - 1
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "bad range") {
		t.Errorf("bad func range: %v", err)
	}

	p = fresh()
	p.Globals[0].Size = 0
	if err := p.Validate(); err == nil {
		t.Error("zero-size global accepted")
	}

	p = fresh()
	p.GlobalWords += 5
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "GlobalWords") {
		t.Errorf("bad GlobalWords: %v", err)
	}

	p = fresh()
	for i := range p.Instrs {
		if p.Instrs[i].Op == OpPrint {
			p.Instrs[i].Imm = 99
			break
		}
	}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "string index") {
		t.Errorf("bad string index: %v", err)
	}

	p = fresh()
	p.Instrs[0].BranchID = 50
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "branch id") {
		t.Errorf("bad branch id: %v", err)
	}
}

func TestRegAndOpStrings(t *testing.T) {
	if Reg(5).String() != "r5" {
		t.Error("Reg.String wrong")
	}
	if Op(250).String() == "" || Op(250).Valid() {
		t.Error("invalid op handling wrong")
	}
	if Op(250).Branch() != BranchNone {
		t.Error("invalid op branch class wrong")
	}
	if BranchClass(99).String() == "" {
		t.Error("unknown class should still render")
	}
}
