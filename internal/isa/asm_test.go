package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

const demoSrc = `
; demo program exercising every directive
.file demo.c
.entry main
.global buf 8
.global n
.str hello "hi there"

.func main
.line 3
main:
    movi r1, 0
    lea  r2, buf
loop:
.line 5
.branch L
    cmpi r1, 8
    jge  done
    st   [r2+0], r1
    addi r2, 1
    addi r1, 1
    jmp  loop
done:
.line 9
    call helper
    print hello
    exit

.func helper lib
helper:
    movi r3, 7
    ret

.func error log
error:
    fail 2
    ret
`

func mustDemo(t *testing.T) *Program {
	t.Helper()
	p, err := Assemble("demo", demoSrc)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestAssembleBasics(t *testing.T) {
	p := mustDemo(t)
	if p.Name != "demo" {
		t.Errorf("Name = %q", p.Name)
	}
	if p.Entry != p.Labels["main"] {
		t.Errorf("Entry = %d, want label main = %d", p.Entry, p.Labels["main"])
	}
	if len(p.Funcs) != 3 {
		t.Fatalf("got %d funcs, want 3", len(p.Funcs))
	}
	if f := p.FuncByName("helper"); f == nil || !f.Attr.Has(AttrLibrary) {
		t.Errorf("helper not marked lib: %+v", f)
	}
	if f := p.FuncByName("error"); f == nil || !f.Attr.Has(AttrFailureLog) {
		t.Errorf("error not marked log: %+v", f)
	}
	if g := p.GlobalByName("buf"); g == nil || g.Size != 8 || g.Addr != GlobalBase {
		t.Errorf("buf global wrong: %+v", g)
	}
	if g := p.GlobalByName("n"); g == nil || g.Addr != GlobalBase+8 {
		t.Errorf("n global wrong: %+v", g)
	}
	if p.GlobalWords != 9 {
		t.Errorf("GlobalWords = %d, want 9", p.GlobalWords)
	}
	if len(p.Strings) != 1 || p.Strings[0] != "hi there" {
		t.Errorf("Strings = %q", p.Strings)
	}
}

func TestAssembleFallThroughLowering(t *testing.T) {
	p := mustDemo(t)
	// Find the annotated conditional jump.
	var condPC int = -1
	for pc := range p.Instrs {
		if p.Instrs[pc].Op == OpJge {
			condPC = pc
			break
		}
	}
	if condPC < 0 {
		t.Fatal("no jge found")
	}
	cond := p.Instrs[condPC]
	if cond.BranchID == NoBranch {
		t.Fatal("jge not annotated with source branch")
	}
	if got := p.BranchName(cond.BranchID); got != "L" {
		t.Errorf("branch name = %q, want L", got)
	}
	if cond.Edge != EdgeFalse {
		t.Errorf("cond jump edge = %v, want false (Figure 2 convention)", cond.Edge)
	}
	ft := p.Instrs[condPC+1]
	if ft.Op != OpJmp || !ft.Synthetic {
		t.Fatalf("instruction after annotated jcc = %v, want synthetic jmp", ft)
	}
	if ft.BranchID != cond.BranchID || ft.Edge != EdgeTrue {
		t.Errorf("fall-through jump edges wrong: %+v", ft)
	}
	if ft.Target != condPC+2 {
		t.Errorf("fall-through target = %d, want %d", ft.Target, condPC+2)
	}
}

func TestAssembleBranchEdgeOverride(t *testing.T) {
	src := `
.func main
main:
.branch B true
    cmpi r1, 0
    jne taken
taken:
    exit
`
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	var jcc *Instr
	for i := range p.Instrs {
		if p.Instrs[i].Op == OpJne {
			jcc = &p.Instrs[i]
		}
	}
	if jcc == nil || jcc.Edge != EdgeTrue {
		t.Fatalf("override edge not applied: %+v", jcc)
	}
}

func TestAssembleResolution(t *testing.T) {
	p := mustDemo(t)
	for pc := range p.Instrs {
		in := p.Instrs[pc]
		if in.Op == OpCall && p.FuncAt(in.Target) == nil {
			t.Errorf("call at %d targets no function", pc)
		}
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown op", ".func main\nmain:\n zap r1\n", "unknown instruction"},
		{"undefined label", ".func main\nmain:\n jmp nowhere\n", "undefined label"},
		{"undefined global", ".func main\nmain:\n lea r1, nothing\n exit\n", "undefined global"},
		{"undefined string", ".func main\nmain:\n print nope\n exit\n", "undefined string"},
		{"duplicate label", ".func main\nmain:\nmain:\n exit\n", "duplicate label"},
		{"duplicate branch", ".func main\nmain:\n.branch X\n cmpi r1, 0\n je main\n.branch X\n cmpi r1, 0\n je main\n", "duplicate branch"},
		{"dangling branch", ".func main\nmain:\n.branch Y\n exit\n", "never consumed"},
		{"bad register", ".func main\nmain:\n movi r16, 1\n exit\n", "bad operands"},
		{"missing entry", ".func helper\nhelper:\n ret\n", `entry label "main" not defined`},
		{"unconsumed branch before next", ".func main\nmain:\n.branch A\n.branch B\n exit\n", "not yet consumed"},
		{"bad func attr", ".func main wat\nmain:\n exit\n", "unknown attribute"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble("t", tc.src)
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
; full-line comment
.func main
main:   movi r1, 0x10   ; trailing comment
        exit
.str s "semi;colon inside"
`
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if p.Instrs[p.Labels["main"]].Imm != 16 {
		t.Errorf("hex immediate not parsed: %+v", p.Instrs[p.Labels["main"]])
	}
	if len(p.Strings) != 1 || p.Strings[0] != "semi;colon inside" {
		t.Errorf("string with semicolon mangled: %q", p.Strings)
	}
}

func TestLabelBeforeInstructionOnSameLine(t *testing.T) {
	src := ".func main\nstart: main: movi r1, 5\n exit\n"
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if p.Labels["start"] != p.Labels["main"] {
		t.Errorf("stacked labels differ: %v", p.Labels)
	}
}

func TestParseMem(t *testing.T) {
	cases := []struct {
		in  string
		reg Reg
		off int64
		ok  bool
	}{
		{"[r0]", 0, 0, true},
		{"[r3+4]", 3, 4, true},
		{"[r3-4]", 3, -4, true},
		{"[r15+0x10]", 15, 16, true},
		{"[r16]", 0, 0, false},
		{"r3+4", 0, 0, false},
		{"[+4]", 0, 0, false},
		{"[r3+x]", 0, 0, false},
	}
	for _, tc := range cases {
		r, off, ok := parseMem(tc.in)
		if ok != tc.ok || (ok && (r != tc.reg || off != tc.off)) {
			t.Errorf("parseMem(%q) = %v,%v,%v want %v,%v,%v", tc.in, r, off, ok, tc.reg, tc.off, tc.ok)
		}
	}
}

func TestStatsCountsLogSites(t *testing.T) {
	src := `
.func main
main:
    call error
    call error
    call helper
    exit
.func helper
helper:
    ret
.func error log
error:
    fail 1
    ret
`
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	s := p.Stats()
	if s.LogSites != 2 {
		t.Errorf("LogSites = %d, want 2", s.LogSites)
	}
	if s.Calls != 3 {
		t.Errorf("Calls = %d, want 3", s.Calls)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := mustDemo(t)
	q := p.Clone()
	q.Instrs[0].Op = OpHalt
	q.Labels["extra"] = 0
	q.Strings[0] = "changed"
	if p.Instrs[0].Op == OpHalt {
		t.Error("Clone shares Instrs")
	}
	if _, ok := p.Labels["extra"]; ok {
		t.Error("Clone shares Labels")
	}
	if p.Strings[0] == "changed" {
		t.Error("Clone shares Strings")
	}
}

func TestOpTableComplete(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		if opTable[op].name == "" {
			t.Errorf("opcode %d has no table entry", op)
		}
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v,%v", op.String(), got, ok)
		}
	}
}

// Property: stripComment never removes characters inside string literals and
// always removes everything after an unquoted semicolon.
func TestStripCommentQuick(t *testing.T) {
	f := func(prefix string, suffix string) bool {
		clean := strings.NewReplacer(";", "", "\"", "").Replace(prefix)
		line := clean + ";" + suffix
		return stripComment(line) == clean
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: parseImm accepts whatever strconv would and round-trips values.
func TestParseImmQuick(t *testing.T) {
	f := func(v int64) bool {
		got, ok := parseImm(Instr{Op: OpMovi, Imm: v}.String()[len("movi r0, "):])
		return ok && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every register r0..r15 round-trips through its String form.
func TestParseRegQuick(t *testing.T) {
	f := func(n uint8) bool {
		r := Reg(n % NumRegs)
		got, ok := parseReg(r.String())
		return ok && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisasmMentionsBranches(t *testing.T) {
	p := mustDemo(t)
	d := p.Disasm()
	if !strings.Contains(d, "branch L") {
		t.Errorf("Disasm missing branch annotation:\n%s", d)
	}
	if !strings.Contains(d, "main:") {
		t.Errorf("Disasm missing label:\n%s", d)
	}
}
