package pbi

import (
	"fmt"
	"testing"

	"stmdiag/internal/apps"
	"stmdiag/internal/cache"
	"stmdiag/internal/vm"
)

// sampleRun executes one run of an app's failure workload under PBI
// sampling and classifies it.
func sampleRun(t testing.TB, a *apps.App, period int, seed int64) (RunObs, bool) {
	m, err := vm.New(a.Program(), a.Fail.VMOptions(seed))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(period, seed+555)
	s.Attach(m)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	failed := a.Fail.FailedRun(res)
	return s.Finish(failed), failed
}

// collect gathers n runs of each class.
func collect(t testing.TB, a *apps.App, period, n int, base int64) []RunObs {
	var runs []RunObs
	nf, ns := 0, 0
	for seed := base; nf < n || ns < n; seed++ {
		if seed > base+4000 {
			t.Fatalf("could not collect %d+%d runs", n, n)
		}
		r, failed := sampleRun(t, a, period, seed)
		if failed && nf < n {
			runs = append(runs, r)
			nf++
		} else if !failed && ns < n {
			runs = append(runs, r)
			ns++
		}
	}
	return runs
}

func fpeMatch(a *apps.App) func(Pred) bool {
	return func(p Pred) bool {
		return p.File == a.FPE.File && p.Line == a.FPE.Line &&
			p.Kind == a.FPE.Kind && p.State == a.FPE.State
	}
}

// TestPBIDiagnosesWithManyRuns: with enough failing runs, sampling the
// coherence-event stream surfaces the same FPE that the LCR records — the
// paper's §7.3 "PBI can successfully diagnose" side.
func TestPBIDiagnosesWithManyRuns(t *testing.T) {
	a := apps.ByName("Mozilla-JS3")
	// Dense-ish sampling, many runs.
	runs := collect(t, a, 8, 150, 0)
	scores := Rank(runs)
	rank := RankOf(scores, fpeMatch(a))
	if rank < 1 || rank > 3 {
		top := ""
		for i, s := range scores {
			if i < 4 {
				top += fmt.Sprintf("\n  %d. %v", i+1, s)
			}
		}
		t.Fatalf("PBI rank of FPE = %d, want 1..3; top:%s", rank, top)
	}
}

// TestPBINeedsFarMoreRunsThanLCRA reproduces the latency gap: at 10+10
// runs (where LCRA already answers), PBI's sampled predicates usually
// cannot separate the FPE.
func TestPBINeedsFarMoreRunsThanLCRA(t *testing.T) {
	a := apps.ByName("Mozilla-JS3")
	runs := collect(t, a, 8, 10, 50_000)
	rank := RankOf(Rank(runs), fpeMatch(a))
	// The FPE event occurs once per failing run; at period 8 the sampler
	// hits it in only a fraction of runs, so with 10 runs the estimate is
	// unstable. Accept rank 1 occasionally but require the common case to
	// be a miss across three independent batches.
	misses := 0
	for _, base := range []int64{50_000, 60_000, 70_000} {
		runs = collect(t, a, 8, 10, base)
		if RankOf(Rank(runs), fpeMatch(a)) != 1 {
			misses++
		}
	}
	t.Logf("rank at first batch: %d; misses in 3 batches of 10: %d", rank, misses)
	if misses == 0 {
		t.Error("PBI matched LCRA's 10-run latency in every batch; sampling should not be that lucky")
	}
}

func TestSamplerPeriodControlsDensity(t *testing.T) {
	a := apps.ByName("MySQL2")
	dense, _ := sampleRun(t, a, 5, 3)
	sparse, _ := sampleRun(t, a, 500, 3)
	if len(dense.True) <= len(sparse.True) {
		t.Errorf("dense sampling saw %d preds, sparse %d", len(dense.True), len(sparse.True))
	}
}

func TestPredString(t *testing.T) {
	p := Pred{File: "a.c", Line: 7, Kind: cache.Load, State: cache.Invalid}
	if p.String() != "load:I@a.c:7" {
		t.Errorf("String = %q", p.String())
	}
}

func TestMinFailRunsToRankLadder(t *testing.T) {
	a := apps.ByName("Mozilla-JS3")
	failSeeds, succSeeds := []int64{}, []int64{}
	for seed := int64(0); len(failSeeds) < 400 || len(succSeeds) < 400; seed++ {
		m, err := vm.New(a.Program(), a.Fail.VMOptions(seed))
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if a.Fail.FailedRun(res) {
			failSeeds = append(failSeeds, seed)
		} else {
			succSeeds = append(succSeeds, seed)
		}
	}
	fi, si := 0, 0
	runner := func(failed bool, _ int64) (RunObs, error) {
		var seed int64
		if failed {
			seed = failSeeds[fi%len(failSeeds)]
			fi++
		} else {
			seed = succSeeds[si%len(succSeeds)]
			si++
		}
		r, got := sampleRun(t, a, 8, seed)
		if got != failed {
			t.Fatalf("seed class changed")
		}
		return r, nil
	}
	n, err := MinFailRunsToRank([]int{10, 50, 150, 400}, fpeMatch(a), runner)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("PBI needed %d failing runs (LCRA needs 10)", n)
	if n != 0 && n < 50 {
		t.Errorf("PBI converged at %d runs; expected 50+ (the latency gap)", n)
	}
}
