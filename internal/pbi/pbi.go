// Package pbi reimplements the PBI baseline (Arulraj, Chang, Jin, Lu,
// ASPLOS '13 — the paper's own predecessor and its Table 7 comparison
// point, §7.3): production-run concurrency-failure diagnosis via hardware
// performance counters.
//
// PBI configures the L1D coherence-event counters (paper Table 2) and uses
// interrupt-driven sampling: every sampling period, the interrupt handler
// attributes the counted event to the interrupted instruction, yielding
// (instruction, observed-state) predicates. Over many failing and
// successful runs, predicates that correlate with failure surface — the
// same failure-predicting events LCR records directly.
//
// The contrast the paper draws: PBI diagnoses all 11 concurrency failures
// but "needs the failures to occur hundreds to thousands of times", while
// LCRA reaches its verdict from 10, because the LCR deterministically
// holds the last events at the failure site instead of sampling the whole
// run.
package pbi

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"stmdiag/internal/cache"
	"stmdiag/internal/stats"
	"stmdiag/internal/vm"
)

// Site identifies a sampled instruction independent of the state it
// observed; it is the "predicate was observed" context of the CBI-family
// scoring model PBI inherits.
type Site struct {
	// File and Line locate the instruction; Kind the access type.
	File string
	Line int
	Kind cache.AccessKind
}

// DefaultPeriod is the sampling period in retired data accesses; PBI's
// hardware uses counter-overflow interrupts with similar effective rates.
const DefaultPeriod = 100

// Pred is a PBI predicate: an instruction observing a MESI state.
type Pred struct {
	// File and Line locate the instruction (source-stable identity).
	File string
	Line int
	// Kind and State describe the sampled access.
	Kind  cache.AccessKind
	State cache.State
}

// String renders the predicate like the LCR events it mirrors.
func (p Pred) String() string {
	return fmt.Sprintf("%s:%s@%s:%d", p.Kind, p.State, p.File, p.Line)
}

// RunObs is one run's sampled observations: which sites the interrupts
// landed on, and which (site, state) predicates were seen true.
type RunObs struct {
	// Failed classifies the run.
	Failed bool
	// Sites marks instructions sampled at least once (any state).
	Sites map[Site]bool
	// True marks predicates sampled with their state at least once.
	True map[Pred]bool
}

// Sampler attaches interrupt-style coherence-event sampling to a machine.
type Sampler struct {
	period int
	rng    *rand.Rand
	obs    RunObs
	count  int
}

// NewSampler builds a sampler; period 0 means DefaultPeriod.
func NewSampler(period int, seed int64) *Sampler {
	if period <= 0 {
		period = DefaultPeriod
	}
	return &Sampler{
		period: period,
		rng:    rand.New(rand.NewSource(seed)),
		obs: RunObs{
			Sites: make(map[Site]bool),
			True:  make(map[Pred]bool),
		},
	}
}

// Attach installs the sampling hook. Each retired data access advances the
// counter; when the (jittered) period elapses, the "interrupt" records the
// access's predicate. Real PBI randomizes the period to avoid lockstep
// bias; so does this.
func (s *Sampler) Attach(m *vm.Machine) {
	prog := m.Prog()
	// Random initial phase: without it, accesses earlier than one period
	// into the run could never be sampled.
	next := 1 + s.rng.Intn(s.period)
	m.SetCoherenceHook(func(mm *vm.Machine, t *vm.Thread, pc int, kind cache.AccessKind, st cache.State) {
		s.count++
		if s.count < next {
			return
		}
		s.count = 0
		next = s.period + s.rng.Intn(s.period/2+1)
		if pc < 0 || pc >= len(prog.Instrs) {
			return
		}
		loc := prog.Instrs[pc].Loc
		s.obs.Sites[Site{File: loc.File, Line: loc.Line, Kind: kind}] = true
		s.obs.True[Pred{File: loc.File, Line: loc.Line, Kind: kind, State: st}] = true
	})
}

// Finish labels and returns the run's observations.
func (s *Sampler) Finish(failed bool) RunObs {
	s.obs.Failed = failed
	return s.obs
}

// Score is one predicate's PBI statistics, the CBI-family model the PBI
// paper uses: Failure(P) over runs where P sampled true, Context(P) over
// runs where P's site was sampled at all, Increase their difference.
type Score struct {
	Pred                 Pred
	F, S, Fobs, Sobs     int
	Failure, Context     float64
	Increase, Importance float64
}

// Rank scores every sampled predicate, best first.
func Rank(runs []RunObs) []Score {
	totalFail := 0
	type cell struct{ f, s, fobs, sobs int }
	counts := map[Pred]*cell{}
	get := func(p Pred) *cell {
		c := counts[p]
		if c == nil {
			c = &cell{}
			counts[p] = c
		}
		return c
	}
	for _, r := range runs {
		if r.Failed {
			totalFail++
		}
		for p := range r.True {
			c := get(p)
			if r.Failed {
				c.f++
			} else {
				c.s++
			}
		}
	}
	// Site context: a predicate is "observed" when its site was sampled.
	for p, c := range counts {
		site := Site{File: p.File, Line: p.Line, Kind: p.Kind}
		for _, r := range runs {
			if !r.Sites[site] {
				continue
			}
			if r.Failed {
				c.fobs++
			} else {
				c.sobs++
			}
		}
	}
	out := make([]Score, 0, len(counts))
	for p, c := range counts {
		sc := Score{Pred: p, F: c.f, S: c.s, Fobs: c.fobs, Sobs: c.sobs}
		if c.f+c.s > 0 {
			sc.Failure = float64(c.f) / float64(c.f+c.s)
		}
		if c.fobs+c.sobs > 0 {
			sc.Context = float64(c.fobs) / float64(c.fobs+c.sobs)
		}
		sc.Increase = sc.Failure - sc.Context
		if sc.Increase > 0 && c.f > 0 && totalFail > 1 {
			logRecall := math.Log(float64(c.f)+1) / math.Log(float64(totalFail)+1)
			sc.Importance = stats.HarmonicMean(sc.Increase, logRecall)
		}
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Importance != b.Importance {
			return a.Importance > b.Importance
		}
		if a.Increase != b.Increase {
			return a.Increase > b.Increase
		}
		return a.Pred.String() < b.Pred.String()
	})
	return out
}

// RankOf returns the 1-based rank of the first predicate with positive
// importance matching the filter, or 0.
func RankOf(scores []Score, match func(Pred) bool) int {
	for i, s := range scores {
		if s.Importance <= 0 {
			break
		}
		if match(s.Pred) {
			return i + 1
		}
	}
	return 0
}

// MinFailRunsToRank searches for the smallest failure-run count (from the
// given ladder) at which the predicate tops the ranking; it returns 0 if
// none suffices. The runner callback produces one sampled run per
// (failed, seed) request.
func MinFailRunsToRank(ladder []int, match func(Pred) bool,
	runner func(failed bool, seed int64) (RunObs, error)) (int, error) {
	for _, n := range ladder {
		var runs []RunObs
		for i := 0; i < n; i++ {
			r, err := runner(true, int64(i))
			if err != nil {
				return 0, err
			}
			runs = append(runs, r)
			r, err = runner(false, int64(i)+math.MaxInt32)
			if err != nil {
				return 0, err
			}
			runs = append(runs, r)
		}
		scores := Rank(runs)
		// High confidence requires the predictor to be sampled true in
		// several failing runs, not once by luck (paper §5.3: "e needs to
		// occur in a couple of failure-run profiles").
		if rank := RankOf(scores, match); rank == 1 && scores[0].F >= 3 {
			return n, nil
		}
	}
	return 0, nil
}
