package kernel

import (
	"fmt"
	"testing"

	"stmdiag/internal/cache"
	"stmdiag/internal/isa"
	"stmdiag/internal/pmu"
	"stmdiag/internal/vm"
)

// figure7Src mirrors paper Figure 7: clean, configure, enable, run the
// workload, disable, profile, then call the failure-logging function.
var figure7Src = fmt.Sprintf(`
.func main
main:
    ioctl %d        ; DRIVER_CLEAN_LBR
    ioctl %d        ; DRIVER_CONFIG_LBR
    ioctl %d        ; DRIVER_ENABLE_LBR
    movi r1, 0
loop:
.branch L
    cmpi r1, 4
    jge  done
    addi r1, 1
    jmp  loop
done:
    ioctl %d        ; DRIVER_DISABLE_LBR
    ioctl %d        ; DRIVER_PROFILE_LBR
    call error
    exit
.func error log
error:
    fail 1
    ret
`, ReqCleanLBR, ReqConfigLBR, ReqEnableLBR, ReqDisableLBR, ReqProfileLBR)

func TestFigure7Flow(t *testing.T) {
	p, err := isa.Assemble("fig7", figure7Src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(p, vm.Options{Driver: Driver{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profiles) != 1 {
		t.Fatalf("profiles = %d, want 1", len(res.Profiles))
	}
	prof := res.Profiles[0]
	if prof.Success {
		t.Error("ReqProfileLBR produced a success profile")
	}
	if len(prof.Branches) == 0 {
		t.Fatal("profile has no branches")
	}
	// Newest entry must be the loop-exit jge (branch L false->exit edge
	// taken when r1 >= 4).
	top := prof.Branches[0]
	if in := p.Instrs[top.From]; in.Op != isa.OpJge {
		t.Errorf("top profile entry %v is %v, want the jge", top, in.Op)
	}
	// 4 iterations record 4 synthetic fall-through jmps + 4 backedge jmps,
	// then the final taken jge: 9 records.
	if len(prof.Branches) != 9 {
		t.Errorf("branch count = %d, want 9: %v", len(prof.Branches), prof.Branches)
	}
}

func TestProfileRestoresEnableState(t *testing.T) {
	src := fmt.Sprintf(`
.func main
main:
    ioctl %d
    ioctl %d
    ioctl %d   ; enable
    movi r1, 0
    cmpi r1, 0
    je   a
a:
    ioctl %d   ; profile while enabled
    cmpi r1, 1
    jne  b
b:
    ioctl %d   ; profile again; must include the jne
    exit
`, ReqCleanLBR, ReqConfigLBR, ReqEnableLBR, ReqProfileLBR, ReqProfileLBR)
	p, err := isa.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(p, vm.Options{Driver: Driver{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profiles) != 2 {
		t.Fatalf("profiles = %d", len(res.Profiles))
	}
	if len(res.Profiles[1].Branches) != len(res.Profiles[0].Branches)+1 {
		t.Errorf("recording did not continue after profile: %d then %d",
			len(res.Profiles[0].Branches), len(res.Profiles[1].Branches))
	}
}

func TestLCRPollutionModel(t *testing.T) {
	src := fmt.Sprintf(`
.global g
.func main
main:
    ioctl %d   ; clean LCR
    ioctl %d   ; config LCR
    ioctl %d   ; enable LCR (injects 2 exclusive loads)
    lea  r1, g
    ld   r2, [r1+0]   ; observes I -> recorded under Conf2
    ioctl %d   ; disable LCR (injects 2 exclusive + 1 shared load)
    ioctl %d   ; profile LCR
    exit
`, ReqCleanLCR, ReqConfigLCR, ReqEnableLCR, ReqDisableLCR, ReqProfileLCR)
	p, err := isa.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(p, vm.Options{Driver: Driver{}, LCRConfig: pmu.ConfSpaceConsuming})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profiles) != 1 {
		t.Fatalf("profiles = %d", len(res.Profiles))
	}
	evs := res.Profiles[0].Coherence
	// Under Conf2 (I loads, I stores, E loads): enable injects 2 E-loads,
	// the program load observes I, disable injects 2 E-loads (its S-load
	// is filtered). Newest-first: E, E, I, E, E.
	if len(evs) != 5 {
		t.Fatalf("events = %v, want 5", evs)
	}
	wantStates := []cache.State{cache.Exclusive, cache.Exclusive, cache.Invalid, cache.Exclusive, cache.Exclusive}
	for i, w := range wantStates {
		if evs[i].State != w {
			t.Errorf("event %d = %v, want state %v", i, evs[i], w)
		}
	}
	if evs[2].PC == PollutionPC {
		t.Error("the real program event was marked as pollution")
	}
	if evs[0].PC != PollutionPC || evs[4].PC != PollutionPC {
		t.Error("pollution entries missing PollutionPC marker")
	}
}

func TestLCRPollutionUnderConf1(t *testing.T) {
	src := fmt.Sprintf(`
.global g
.func main
main:
    ioctl %d
    ioctl %d
    ioctl %d
    lea  r1, g
    ld   r2, [r1+0]
    ioctl %d
    ioctl %d
    exit
`, ReqCleanLCR, ReqConfigLCR, ReqEnableLCR, ReqDisableLCR, ReqProfileLCR)
	p, err := isa.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(p, vm.Options{Driver: Driver{}, LCRConfig: pmu.ConfSpaceSaving})
	if err != nil {
		t.Fatal(err)
	}
	evs := res.Profiles[0].Coherence
	// Under Conf1 (I loads, I stores, S loads) the exclusive-load
	// pollution is filtered; only the disable's shared load remains.
	// Newest-first: S(pollution), I(program).
	if len(evs) != 2 {
		t.Fatalf("events = %v, want 2", evs)
	}
	if evs[0].State != cache.Shared || evs[0].PC != PollutionPC {
		t.Errorf("event 0 = %v, want shared pollution", evs[0])
	}
	if evs[1].State != cache.Invalid {
		t.Errorf("event 1 = %v, want the program's invalid load", evs[1])
	}
}

func TestSegvHandlerProfiles(t *testing.T) {
	src := fmt.Sprintf(`
.func main
main:
    ioctl %d
    ioctl %d
    ioctl %d
    movi r1, 0
    cmpi r1, 0
    je   boom
boom:
    ld   r2, [r1+0]   ; segfault at null
    exit
`, ReqCleanLBR, ReqConfigLBR, ReqEnableLBR)
	p, err := isa.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(p, vm.Options{
		Driver:     Driver{},
		SegvIoctls: []int64{ReqDisableLBR, ReqProfileLBR},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() || res.FirstFailure().Kind != vm.FailCrash {
		t.Fatalf("failures = %v", res.Failures)
	}
	if len(res.Profiles) != 1 {
		t.Fatalf("segv handler produced %d profiles, want 1", len(res.Profiles))
	}
	prof := res.Profiles[0]
	if len(prof.Branches) == 0 {
		t.Fatal("segv profile empty")
	}
	if in := p.Instrs[prof.Branches[0].From]; in.Op != isa.OpJe {
		t.Errorf("top branch %v, want the je before the fault", in.Op)
	}
	// The profile site must be the faulting instruction.
	if in := p.Instrs[prof.Site]; in.Op != isa.OpLd {
		t.Errorf("profile site = %v, want the faulting ld", in.Op)
	}
}

func TestUnknownIoctlErrors(t *testing.T) {
	p, err := isa.Assemble("t", ".func main\nmain:\n ioctl 999\n exit\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Run(p, vm.Options{Driver: Driver{}}); err == nil {
		t.Error("unknown ioctl request accepted")
	}
}
