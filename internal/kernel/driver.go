// Package kernel emulates the Linux kernel module of paper §4.3 and
// Figure 7: a /dev/lbrdriver device whose ioctl interface cleans,
// configures, enables, disables and profiles the LBR — extended, as the
// paper proposes, with the same interface for the LCR.
//
// The driver is "native" code: its own execution is not simulated
// instruction-by-instruction. For the LBR that is faithful — the paper's
// disabling code contains no user-level branches and kernel-level branches
// are filtered out, so the driver never pollutes the LBR. For the LCR the
// paper's simulator explicitly models the pollution its user-level entry
// sequences cause, and this driver injects the same dummy events: two
// user-level exclusive reads on enable, and two user-level exclusive reads
// plus one user-level shared read on disable (§4.3 "LCR simulation").
package kernel

import (
	"errors"
	"fmt"

	"stmdiag/internal/cache"
	"stmdiag/internal/faultinj"
	"stmdiag/internal/pmu"
	"stmdiag/internal/vm"
)

// Driver ioctl request codes. The LBR half mirrors paper Figure 7; the LCR
// half is the analogous interface for the proposed hardware.
const (
	// ReqCleanLBR resets the branch stack (DRIVER_CLEAN_LBR).
	ReqCleanLBR int64 = iota + 1
	// ReqConfigLBR writes the run's LBR_SELECT filter value
	// (DRIVER_CONFIG_LBR).
	ReqConfigLBR
	// ReqEnableLBR starts branch recording (DRIVER_ENABLE_LBR).
	ReqEnableLBR
	// ReqDisableLBR stops branch recording (DRIVER_DISABLE_LBR).
	ReqDisableLBR
	// ReqProfileLBR snapshots the branch stack into a failure-run profile
	// (DRIVER_PROFILE_LBR).
	ReqProfileLBR
	// ReqProfileLBRSuccess snapshots the branch stack into a success-run
	// profile (taken at the success logging sites of paper Figure 8).
	ReqProfileLBRSuccess

	// ReqCleanLCR resets the coherence record.
	ReqCleanLCR
	// ReqConfigLCR writes the run's LCR event-selection configuration.
	ReqConfigLCR
	// ReqEnableLCR starts coherence recording (and injects the enable
	// pollution).
	ReqEnableLCR
	// ReqDisableLCR injects the disable pollution, then stops recording.
	ReqDisableLCR
	// ReqProfileLCR snapshots the coherence record into a failure-run
	// profile.
	ReqProfileLCR
	// ReqProfileLCRSuccess snapshots the coherence record into a
	// success-run profile.
	ReqProfileLCRSuccess
)

// reqName names a request code for telemetry and debug output.
func reqName(req int64) string {
	switch req {
	case ReqCleanLBR:
		return "clean_lbr"
	case ReqConfigLBR:
		return "config_lbr"
	case ReqEnableLBR:
		return "enable_lbr"
	case ReqDisableLBR:
		return "disable_lbr"
	case ReqProfileLBR:
		return "profile_lbr"
	case ReqProfileLBRSuccess:
		return "profile_lbr_success"
	case ReqCleanLCR:
		return "clean_lcr"
	case ReqConfigLCR:
		return "config_lcr"
	case ReqEnableLCR:
		return "enable_lcr"
	case ReqDisableLCR:
		return "disable_lcr"
	case ReqProfileLCR:
		return "profile_lcr"
	case ReqProfileLCRSuccess:
		return "profile_lcr_success"
	}
	return fmt.Sprintf("req%d", req)
}

// Driver implements vm.Driver over the machine's PMU state.
type Driver struct{}

var _ vm.Driver = Driver{}

// Ioctl services one request on behalf of thread t.
func (Driver) Ioctl(m *vm.Machine, t *vm.Thread, req int64) error {
	if s := m.Obs(); s != nil {
		s.Counter("kernel.ioctl." + reqName(req)).Inc()
	}
	core := m.CoreOf(t)
	switch req {
	case ReqCleanLBR:
		core.LBR.Clear()
	case ReqConfigLBR:
		return writeMSR(m, core.LBR, pmu.MSRLBRSelect, m.Opts().LBRSelect)
	case ReqEnableLBR:
		return writeMSR(m, core.LBR, pmu.MSRDebugCtl, pmu.DebugCtlEnableLBR)
	case ReqDisableLBR:
		return writeMSR(m, core.LBR, pmu.MSRDebugCtl, pmu.DebugCtlDisableLBR)
	case ReqProfileLBR, ReqProfileLBRSuccess:
		// Always disable right before reading so the read itself cannot
		// pollute the stack (paper §4.3), restoring the previous state.
		wasOn := core.LBR.Enabled()
		if err := writeMSR(m, core.LBR, pmu.MSRDebugCtl, pmu.DebugCtlDisableLBR); err != nil {
			return err
		}
		m.AddCycles(vm.CostProfile)
		success := req == ReqProfileLBRSuccess
		if success && loseSuccessProfile(m) {
			// The sampled success-site snapshot was lost; the run proceeds.
		} else {
			m.AddProfile(vm.Profile{
				Site:     t.PC,
				Thread:   t.ID,
				Success:  success,
				Branches: snapshotLBR(m, core.LBR),
			})
		}
		if wasOn {
			return writeMSR(m, core.LBR, pmu.MSRDebugCtl, pmu.DebugCtlEnableLBR)
		}

	case ReqCleanLCR:
		t.LCR.Clear()
	case ReqConfigLCR:
		t.LCR.Configure(m.Opts().LCRConfig)
	case ReqEnableLCR:
		t.LCR.SetEnabled(true)
		injectEnablePollution(m, t)
	case ReqDisableLCR:
		injectDisablePollution(m, t)
		t.LCR.SetEnabled(false)
	case ReqProfileLCR, ReqProfileLCRSuccess:
		m.AddCycles(vm.CostProfile)
		success := req == ReqProfileLCRSuccess
		if success && loseSuccessProfile(m) {
			break
		}
		m.AddProfile(vm.Profile{
			Site:      t.PC,
			Thread:    t.ID,
			Success:   success,
			Coherence: snapshotLCR(m, t.LCR),
		})

	default:
		return fmt.Errorf("kernel: unknown ioctl request %d", req)
	}
	return nil
}

// writeMSR performs a configuration wrmsr with graceful degradation under
// injected glitches: a faultinj.ErrGlitch is retried once; a second glitch
// abandons the write and proceeds, mirroring how the paper's driver must
// not take the profiled application down with it. Recovered and degraded
// glitches are counted so traces show exactly where faults landed.
func writeMSR(m *vm.Machine, l *pmu.LBR, id uint32, val uint64) error {
	err := l.WriteMSR(id, val)
	if err == nil || !errors.Is(err, faultinj.ErrGlitch) {
		return err
	}
	if err = l.WriteMSR(id, val); err == nil {
		if s := m.Obs(); s != nil {
			s.Counter("faultinj.recovered.msr-write").Inc()
		}
		return nil
	}
	if errors.Is(err, faultinj.ErrGlitch) {
		if s := m.Obs(); s != nil {
			s.Counter("faultinj.degraded.msr-write").Inc()
		}
		return nil
	}
	return err
}

// loseSuccessProfile decides whether an injected succ-loss fault swallows
// this success-site snapshot (Figure 8's success-run attrition).
func loseSuccessProfile(m *vm.Machine) bool {
	if !m.Faults().Hit(faultinj.SuccLoss) {
		return false
	}
	if s := m.Obs(); s != nil {
		s.Counter("faultinj.degraded.succ-loss").Inc()
	}
	return true
}

// snapshotLBR reads the branch stack out, applying profile-read faults: a
// ring-trunc hit keeps only the newest entries (a partial read-out), and
// per-entry msr-read hits corrupt the endpoints the way a glitched rdmsr
// of BRANCH_i_FROM/TO_IP would. Latest() copies, so the stack itself is
// never altered.
func snapshotLBR(m *vm.Machine, l *pmu.LBR) []pmu.BranchRecord {
	recs := l.Latest()
	p := m.Faults()
	if p == nil {
		return recs
	}
	if len(recs) > 0 && p.Hit(faultinj.RingTrunc) {
		recs = recs[:p.TruncN(faultinj.RingTrunc, len(recs))]
	}
	for i := range recs {
		if p.Hit(faultinj.MSRRead) {
			recs[i].From = p.Corrupt(faultinj.MSRRead, recs[i].From)
			recs[i].To = p.Corrupt(faultinj.MSRRead, recs[i].To)
		}
	}
	return recs
}

// snapshotLCR reads the coherence record out under the same profile-read
// fault model as snapshotLBR.
func snapshotLCR(m *vm.Machine, l *pmu.LCR) []pmu.CoherenceEvent {
	recs := l.Latest()
	p := m.Faults()
	if p == nil {
		return recs
	}
	if len(recs) > 0 && p.Hit(faultinj.RingTrunc) {
		recs = recs[:p.TruncN(faultinj.RingTrunc, len(recs))]
	}
	for i := range recs {
		if p.Hit(faultinj.MSRRead) {
			recs[i].PC = p.Corrupt(faultinj.MSRRead, recs[i].PC)
		}
	}
	return recs
}

// PollutionPC is the PC recorded for the driver's dummy LCR events; it is
// outside any program so diagnosis can identify (and must tolerate) the
// pollution.
const PollutionPC = -1

// injectEnablePollution models the two user-level exclusive reads the
// enabling ioctl introduces (paper §4.3).
func injectEnablePollution(m *vm.Machine, t *vm.Thread) {
	for i := 0; i < 2; i++ {
		pollute(m, t, cache.Exclusive)
	}
}

// injectDisablePollution models the two user-level exclusive reads and one
// user-level shared read the disabling ioctl introduces before recording
// stops (paper §4.3).
func injectDisablePollution(m *vm.Machine, t *vm.Thread) {
	for i := 0; i < 2; i++ {
		pollute(m, t, cache.Exclusive)
	}
	pollute(m, t, cache.Shared)
}

// pollute offers one dummy event to the thread's LCR and counts it when it
// actually lands in the record.
func pollute(m *vm.Machine, t *vm.Thread, st cache.State) {
	recorded, _ := t.LCR.Record(pmu.CoherenceEvent{PC: PollutionPC, Kind: cache.Load, State: st})
	if recorded {
		if s := m.Obs(); s != nil {
			s.Counter("kernel.lcr.pollution").Inc()
		}
	}
}
