package vm

import (
	"strings"
	"testing"
	"testing/quick"

	"stmdiag/internal/isa"
)

func asm(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := isa.Assemble("test", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func run(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	res, err := Run(asm(t, src), opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestArithmeticAndOutput(t *testing.T) {
	res := run(t, `
.func main
main:
    movi r1, 6
    movi r2, 7
    mul  r1, r2
    out  r1
    movi r3, 100
    movi r4, 9
    mod  r3, r4
    out  r3
    exit
`, Options{})
	if res.Failed() {
		t.Fatalf("unexpected failure: %+v", res.Failures)
	}
	want := []string{"42", "1"}
	if len(res.Output) != 2 || res.Output[0] != want[0] || res.Output[1] != want[1] {
		t.Errorf("Output = %v, want %v", res.Output, want)
	}
	if res.Steps == 0 || res.Cycles < res.Steps {
		t.Errorf("Steps=%d Cycles=%d", res.Steps, res.Cycles)
	}
}

func TestLoopAndGlobals(t *testing.T) {
	res := run(t, `
.global sum
.func main
main:
    movi r1, 0      ; i
    movi r2, 0      ; sum
loop:
.branch L
    cmpi r1, 10
    jge  done
    add  r2, r1
    addi r1, 1
    jmp  loop
done:
    lea  r3, sum
    st   [r3+0], r2
    out  r2
    exit
`, Options{})
	if res.Failed() || len(res.Output) != 1 || res.Output[0] != "45" {
		t.Fatalf("Output = %v, failures = %v", res.Output, res.Failures)
	}
}

func TestDivisionByZeroCrashes(t *testing.T) {
	res := run(t, `
.func main
main:
    movi r1, 10
    movi r2, 0
    div  r1, r2
    exit
`, Options{})
	f := res.FirstFailure()
	if f == nil || f.Kind != FailCrash || !strings.Contains(f.Msg, "division by zero") {
		t.Fatalf("failure = %+v", f)
	}
}

func TestSegfaultOnNullLoad(t *testing.T) {
	res := run(t, `
.func main
main:
    movi r1, 0
    ld   r2, [r1+0]
    exit
`, Options{})
	f := res.FirstFailure()
	if f == nil || f.Kind != FailCrash || !strings.Contains(f.Msg, "segmentation fault") {
		t.Fatalf("failure = %+v", f)
	}
}

func TestFailLoggedContinues(t *testing.T) {
	res := run(t, `
.func main
main:
    call error
    out  r0
    exit
.func error log
error:
    fail 7
    ret
`, Options{})
	f := res.FirstFailure()
	if f == nil || f.Kind != FailLogged || f.Code != 7 {
		t.Fatalf("failure = %+v", f)
	}
	if len(res.Output) != 1 {
		t.Errorf("program did not continue after fail: output %v", res.Output)
	}
}

func TestCallRetStack(t *testing.T) {
	res := run(t, `
.func main
main:
    movi r1, 5
    call double
    out  r1
    call double
    out  r1
    exit
.func double
double:
    add r1, r1
    ret
`, Options{})
	if res.Failed() {
		t.Fatalf("failures: %v", res.Failures)
	}
	if len(res.Output) != 2 || res.Output[0] != "10" || res.Output[1] != "20" {
		t.Errorf("Output = %v", res.Output)
	}
}

func TestIndirectJumpAndCall(t *testing.T) {
	res := run(t, `
.func main
main:
    lea  r5, tab      ; not a real table, just proving lea+jmpr works
    movi r1, 0
    call viaReg
    out  r1
    exit
.global tab 4
.func viaReg
viaReg:
    addi r1, 3
    ret
`, Options{})
	if res.Failed() || res.Output[0] != "3" {
		t.Fatalf("Output = %v, failures = %v", res.Output, res.Failures)
	}
}

func TestBadIndirectJumpCrashes(t *testing.T) {
	res := run(t, `
.func main
main:
    movi r1, 99999
    jmpr r1
    exit
`, Options{})
	f := res.FirstFailure()
	if f == nil || f.Kind != FailCrash || !strings.Contains(f.Msg, "indirect jump") {
		t.Fatalf("failure = %+v", f)
	}
}

func TestWorkloadGlobals(t *testing.T) {
	res := run(t, `
.global n
.global arr 4
.func main
main:
    lea r1, n
    ld  r2, [r1+0]
    out r2
    lea r3, arr
    ld  r4, [r3+2]
    out r4
    exit
`, Options{
		Globals:      map[string]int64{"n": 11},
		GlobalArrays: map[string][]int64{"arr": {1, 2, 3, 4}},
	})
	if res.Failed() || res.Output[0] != "11" || res.Output[1] != "3" {
		t.Fatalf("Output = %v, failures = %v", res.Output, res.Failures)
	}
}

func TestWorkloadUnknownGlobalRejected(t *testing.T) {
	p := asm(t, ".func main\nmain:\n exit\n")
	if _, err := Run(p, Options{Globals: map[string]int64{"nope": 1}}); err == nil {
		t.Error("unknown workload global accepted")
	}
}

const threadSrc = `
.global shared
.global done
.func main
main:
    movi r1, 5
    spawn worker, r1
    spawn worker, r1
    join
    lea  r2, shared
    ld   r3, [r2+0]
    out  r3
    exit
.func worker
worker:
    movi r4, 0
    movi r5, 77
wloop:
.branch W
    cmpi r4, 10
    jge  wdone
    lock r5
    lea  r2, shared
    ld   r3, [r2+0]
    addi r3, 1
    st   [r2+0], r3
    unlock r5
    addi r4, 1
    jmp  wloop
wdone:
    halt
`

func TestThreadsMutexJoin(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		res, err := Run(asm(t, threadSrc), Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d failures: %v", seed, res.Failures)
		}
		if len(res.Output) != 1 || res.Output[0] != "20" {
			t.Errorf("seed %d: Output = %v, want [20] (mutex must serialize)", seed, res.Output)
		}
	}
}

func TestRaceWithoutMutexLosesUpdates(t *testing.T) {
	src := strings.ReplaceAll(threadSrc, "    lock r5\n", "    delay 3\n")
	src = strings.ReplaceAll(src, "    unlock r5\n", "")
	lost := false
	for seed := int64(0); seed < 30; seed++ {
		res, err := Run(asm(t, src), Options{Seed: seed, QuantumMin: 1, QuantumMax: 6})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Output) == 1 && res.Output[0] != "20" {
			lost = true
			break
		}
	}
	if !lost {
		t.Error("no seed lost an update; the scheduler cannot interleave finely enough for race benchmarks")
	}
}

func TestNullMutexCrashes(t *testing.T) {
	res := run(t, `
.func main
main:
    movi r1, 0
    lock r1
    exit
`, Options{})
	f := res.FirstFailure()
	if f == nil || f.Kind != FailCrash || !strings.Contains(f.Msg, "null/destroyed mutex") {
		t.Fatalf("failure = %+v", f)
	}
}

func TestDeadlockDetected(t *testing.T) {
	res := run(t, `
.func main
main:
    movi r1, 1
    lock r1
    lock r1
    exit
`, Options{})
	f := res.FirstFailure()
	if f == nil || f.Kind != FailHang || !strings.Contains(f.Msg, "deadlock") {
		t.Fatalf("failure = %+v", f)
	}
}

func TestStepLimitHang(t *testing.T) {
	res, err := Run(asm(t, `
.func main
main:
loop:
    jmp loop
`), Options{StepLimit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	f := res.FirstFailure()
	if f == nil || f.Kind != FailHang || !strings.Contains(f.Msg, "step limit") {
		t.Fatalf("failure = %+v", f)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	p := asm(t, threadSrc)
	a, err := Run(p, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || a.Cycles != b.Cycles {
		t.Errorf("same seed diverged: steps %d/%d cycles %d/%d", a.Steps, b.Steps, a.Cycles, b.Cycles)
	}
}

// Property: for any seed the mutex-protected counter program yields 20 —
// the scheduler can never break mutual exclusion.
func TestMutexExclusionQuick(t *testing.T) {
	p, err := isa.Assemble("t", threadSrc)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, qmin, qmax uint8) bool {
		res, err := Run(p, Options{
			Seed:       seed,
			QuantumMin: int(qmin%20) + 1,
			QuantumMax: int(qmin%20) + 1 + int(qmax%40),
		})
		if err != nil || res.Failed() {
			return false
		}
		return len(res.Output) == 1 && res.Output[0] == "20"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLBRRecordsBranchTrace(t *testing.T) {
	p := asm(t, `
.func main
main:
    movi r1, 0
loop:
.branch L
    cmpi r1, 3
    jge  done
    addi r1, 1
    jmp  loop
done:
    exit
`)
	m, err := New(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Enable LBR by hand (no driver in this test).
	core := m.Cores()[0]
	if err := core.LBR.WriteMSR(0x1c8, 0x179); err != nil {
		t.Fatal(err)
	}
	if err := core.LBR.WriteMSR(0x1d9, 0x801); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	recs := core.LBR.Latest()
	if len(recs) == 0 {
		t.Fatal("LBR empty after run")
	}
	// The most recent branch must be the loop-exit conditional (L false
	// edge... L taken when r1 >= 3, i.e. loop exit).
	top := recs[0]
	in := p.Instrs[top.From]
	if in.Op != isa.OpJge || in.BranchID == isa.NoBranch {
		t.Errorf("latest LBR entry = %v (instr %v), want the jge of branch L", top, in)
	}
	// Trace alternates jmp-loop / jge per iteration: 3 iterations = 3
	// backedges + synthetic fallthrough jumps + final jge.
	condCount := 0
	for _, r := range recs {
		if p.Instrs[r.From].Op.IsCond() {
			condCount++
		}
	}
	if condCount != 1 {
		// Only the final jge is TAKEN; earlier iterations fall through to
		// the synthetic jmp, which is recorded as uncond-rel.
		t.Errorf("got %d taken conditional records, want 1; trace %v", condCount, recs)
	}
}

func TestPerThreadLCRAndStackPollution(t *testing.T) {
	p := asm(t, `
.global g
.func main
main:
    lea r1, g
    ld  r2, [r1+0]    ; miss: observes I
    ld  r2, [r1+0]    ; hit: observes E
    call f
    exit
.func f
f:
    ret
`)
	m, err := New(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	main := m.Threads()[0]
	main.LCR.Configure(pmuConfAll())
	main.LCR.SetEnabled(true)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	evs := main.LCR.Latest()
	// Expect at least: load-I, load-E, push(return)-I store, pop-M load.
	if len(evs) < 4 {
		t.Fatalf("LCR has %d events: %v", len(evs), evs)
	}
}

func TestOutputLimitRespected(t *testing.T) {
	res := run(t, `
.func main
main:
    movi r1, 0
loop:
    cmpi r1, 100
    jge  done
    out  r1
    addi r1, 1
    jmp  loop
done:
    exit
`, Options{OutputLimit: 10})
	if len(res.Output) != 10 {
		t.Errorf("Output length = %d, want 10", len(res.Output))
	}
}
