package vm

import (
	"testing"

	"stmdiag/internal/isa"
	"stmdiag/internal/pmu"
)

const btsDemo = `
.func main
main:
    movi r1, 0
loop:
.branch L
    cmpi r1, 50
    jge  done
    addi r1, 1
    addi r2, 3
    addi r3, 5
    add  r2, r3
    sub  r3, r1
    xor  r2, r3
    addi r4, 7
    call helper
    jmp  loop
done:
    exit
.func helper
helper:
    ret
`

func TestBTSCapturesWholeTrace(t *testing.T) {
	p, err := isa.Assemble("t", btsDemo)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, Options{BTS: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	bts := m.Cores()[0].BTS
	if bts == nil {
		t.Fatal("BTS not armed")
	}
	// 50 iterations x (call + ret + backedge jmp + synthetic jmp) + exit
	// jge: far more than an LBR could hold — and unlike the LBR, calls and
	// returns are all there.
	if bts.Len() < 150 {
		t.Fatalf("BTS holds %d records, want the whole trace", bts.Len())
	}
	calls, rets := 0, 0
	for _, r := range bts.Trace() {
		switch r.Class {
		case isa.BranchRelCall:
			calls++
		case isa.BranchReturn:
			rets++
		}
	}
	if calls != 50 || rets != 50 {
		t.Errorf("calls/rets = %d/%d, want 50/50 (BTS has no class filters)", calls, rets)
	}
	// The whole-execution approach costs: same program without BTS must be
	// meaningfully cheaper.
	plain, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	overhead := float64(res.Cycles-plain.Cycles) / float64(plain.Cycles)
	if overhead < 0.20 || overhead > 1.0 {
		t.Errorf("BTS overhead = %.2f, want the paper's 20%%-100%% band", overhead)
	}
}

func TestBTSBufferFlush(t *testing.T) {
	b := pmu.NewBTS(8)
	b.SetEnabled(true)
	for i := 0; i < 20; i++ {
		b.Record(pmu.BranchRecord{From: i})
	}
	if b.Len() > 8 {
		t.Errorf("Len = %d exceeds limit", b.Len())
	}
	if b.Dropped() == 0 {
		t.Error("no records dropped despite overflow")
	}
	tr := b.Trace()
	if tr[len(tr)-1].From != 19 {
		t.Errorf("newest record lost: %+v", tr[len(tr)-1])
	}
	b.Clear()
	if b.Len() != 0 || b.Dropped() != 0 {
		t.Error("Clear incomplete")
	}
}

func TestBTSDisabledRecordsNothing(t *testing.T) {
	b := pmu.NewBTS(0)
	b.Record(pmu.BranchRecord{From: 1})
	if b.Len() != 0 {
		t.Error("disabled BTS recorded")
	}
}
