package vm

import (
	"testing"

	"stmdiag/internal/isa"
)

// smtSrc: main takes its root-cause branch, then a sibling thread runs a
// branchy helper on the other hardware context. With dedicated cores the
// root cause stays in main's LBR; with SMT sharing the sibling's branches
// flood the shared ring (paper §4.2.1: "This will shorten the execution
// history recorded for each thread").
const smtSrc = `
.func main
main:
    movi r1, 1
    spawn sibling, r1
.branch ROOT
    cmpi r1, 0
    jne  taken
taken:
    delay 400          ; the sibling spins on the shared core meanwhile
    join
    exit
.func sibling
sibling:
    movi r2, 0
sib_loop:
.branch SIB
    cmpi r2, 40
    jge  sib_done
    addi r2, 1
    jmp  sib_loop
sib_done:
    halt
`

func rootInLBR(t *testing.T, tpc int) bool {
	t.Helper()
	p, err := isa.Assemble("smt", smtSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, Options{Cores: 4, ThreadsPerCore: tpc, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Cores() {
		if err := c.LBR.WriteMSR(0x1c8, 0x179); err != nil {
			t.Fatal(err)
		}
		if err := c.LBR.WriteMSR(0x1d9, 0x801); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	main := m.Threads()[0]
	for _, r := range m.Cores()[main.Core].LBR.Latest() {
		if id := p.Instrs[r.From].BranchID; id != isa.NoBranch && p.BranchName(id) == "ROOT" {
			return true
		}
	}
	return false
}

func TestSMTSharingShortensHistory(t *testing.T) {
	if !rootInLBR(t, 1) {
		t.Error("dedicated core: root cause should survive in the LBR")
	}
	if rootInLBR(t, 2) {
		t.Error("SMT-shared LBR: the sibling's 80+ records should have evicted the root cause")
	}
}

func TestSMTPinning(t *testing.T) {
	p, err := isa.Assemble("t", `
.func main
main:
    movi r1, 0
    spawn w, r1
    spawn w, r1
    spawn w, r1
    join
    exit
.func w
w:
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, Options{Cores: 2, ThreadsPerCore: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	wantCores := []int{0, 0, 1, 1} // two hardware threads per core
	for i, th := range m.Threads() {
		if th.Core != wantCores[i] {
			t.Errorf("thread %d on core %d, want %d", i, th.Core, wantCores[i])
		}
	}
}
