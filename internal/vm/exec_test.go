package vm

import (
	"fmt"
	"testing"

	"stmdiag/internal/isa"
)

// TestALUSemantics drives every arithmetic/logic opcode through a tiny
// program and checks the printed result.
func TestALUSemantics(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{"add", "movi r1, 7\n movi r2, 5\n add r1, r2\n out r1", "12"},
		{"sub", "movi r1, 7\n movi r2, 5\n sub r1, r2\n out r1", "2"},
		{"mul", "movi r1, -3\n movi r2, 5\n mul r1, r2\n out r1", "-15"},
		{"div", "movi r1, 17\n movi r2, 5\n div r1, r2\n out r1", "3"},
		{"mod", "movi r1, 17\n movi r2, 5\n mod r1, r2\n out r1", "2"},
		{"and", "movi r1, 12\n movi r2, 10\n and r1, r2\n out r1", "8"},
		{"or", "movi r1, 12\n movi r2, 10\n or r1, r2\n out r1", "14"},
		{"xor", "movi r1, 12\n movi r2, 10\n xor r1, r2\n out r1", "6"},
		{"shl", "movi r1, 3\n movi r2, 4\n shl r1, r2\n out r1", "48"},
		{"shr", "movi r1, 48\n movi r2, 4\n shr r1, r2\n out r1", "3"},
		{"shr-unsigned", "movi r1, -1\n movi r2, 63\n shr r1, r2\n out r1", "1"},
		{"shl-mask", "movi r1, 1\n movi r2, 64\n shl r1, r2\n out r1", "1"},
		{"addi", "movi r1, 7\n addi r1, 5\n out r1", "12"},
		{"subi", "movi r1, 7\n subi r1, 5\n out r1", "2"},
		{"muli", "movi r1, 7\n muli r1, -5\n out r1", "-35"},
		{"andi", "movi r1, 13\n andi r1, 6\n out r1", "4"},
		{"mov", "movi r1, 9\n mov r2, r1\n out r2", "9"},
		{"push-pop", "movi r1, 41\n push r1\n movi r1, 0\n pop r2\n out r2", "41"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := ".func main\nmain:\n " + tc.body + "\n exit\n"
			p, err := isa.Assemble("t", src)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed() {
				t.Fatalf("failed: %v", res.Failures)
			}
			if len(res.Output) != 1 || res.Output[0] != tc.want {
				t.Errorf("output = %v, want %q", res.Output, tc.want)
			}
		})
	}
}

func TestConditionalSemantics(t *testing.T) {
	// For each (a, b, op) verify taken-ness against the comparison.
	ops := []struct {
		op   string
		test func(a, b int64) bool
	}{
		{"je", func(a, b int64) bool { return a == b }},
		{"jne", func(a, b int64) bool { return a != b }},
		{"jl", func(a, b int64) bool { return a < b }},
		{"jle", func(a, b int64) bool { return a <= b }},
		{"jg", func(a, b int64) bool { return a > b }},
		{"jge", func(a, b int64) bool { return a >= b }},
	}
	pairs := [][2]int64{{1, 2}, {2, 1}, {3, 3}, {-5, 5}, {0, 0}}
	for _, o := range ops {
		for _, pr := range pairs {
			src := fmt.Sprintf(`
.func main
main:
    movi r1, %d
    movi r2, %d
    cmp  r1, r2
    %s   yes
    out  r0      ; not taken: prints 0
    exit
yes:
    movi r3, 1
    out  r3      ; taken: prints 1
    exit
`, pr[0], pr[1], o.op)
			p, err := isa.Assemble("t", src)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := "0"
			if o.test(pr[0], pr[1]) {
				want = "1"
			}
			if res.Output[0] != want {
				t.Errorf("%s(%d,%d) printed %s, want %s", o.op, pr[0], pr[1], res.Output[0], want)
			}
		}
	}
}

func TestIndirectCallViaTable(t *testing.T) {
	// lea only resolves globals; function addresses reach registers by
	// patching the immediate (the harness has no address-of-label syntax),
	// then callr dispatches through the register.
	p := asm(t, `
.func main
main:
    movi r1, 0           ; patched below to f's PC
    callr r1
    out  r2
    exit
.func f
f:
    movi r2, 77
    ret
`)
	p.Instrs[p.Labels["main"]].Imm = int64(p.Labels["f"])
	r, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed() || r.Output[0] != "77" {
		t.Fatalf("callr dispatch: output %v failures %v", r.Output, r.Failures)
	}
}

func TestJmprDispatch(t *testing.T) {
	p := asm(t, `
.func main
main:
    movi r1, 0           ; patched to target's PC
    jmpr r1
    exit
target:
    movi r2, 5
    out  r2
    exit
`)
	p.Instrs[p.Labels["main"]].Imm = int64(p.Labels["target"])
	r, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed() || len(r.Output) != 1 || r.Output[0] != "5" {
		t.Fatalf("jmpr: output %v failures %v", r.Output, r.Failures)
	}
}

func TestStackOverflowSegfaults(t *testing.T) {
	// Infinite recursion exhausts the stack segment and faults.
	res := run(t, `
.func main
main:
    call main
`, Options{})
	f := res.FirstFailure()
	if f == nil || f.Kind != FailCrash {
		t.Fatalf("recursion produced %+v, want crash", f)
	}
}

func TestUnlockByNonOwnerIsNoop(t *testing.T) {
	res := run(t, `
.func main
main:
    movi r1, 5
    unlock r1      ; never locked: no-op
    lock r1
    unlock r1
    out r1
    exit
`, Options{})
	if res.Failed() || res.Output[0] != "5" {
		t.Fatalf("output %v failures %v", res.Output, res.Failures)
	}
}

func TestCoreAssignmentRoundRobin(t *testing.T) {
	p := asm(t, `
.func main
main:
    movi r1, 0
    spawn w, r1
    spawn w, r1
    spawn w, r1
    spawn w, r1
    join
    exit
.func w
w:
    halt
`)
	m, err := New(p, Options{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	ths := m.Threads()
	if len(ths) != 5 {
		t.Fatalf("%d threads", len(ths))
	}
	for _, th := range ths {
		if th.Core != th.ID%4 {
			t.Errorf("thread %d on core %d, want %d", th.ID, th.Core, th.ID%4)
		}
	}
}

func TestCacheStatsExposed(t *testing.T) {
	res := run(t, `
.global g 8
.func main
main:
    lea r1, g
    ld  r2, [r1+0]
    ld  r2, [r1+0]
    st  [r1+0], r2
    exit
`, Options{Cores: 2})
	if len(res.CacheStats) != 2 {
		t.Fatalf("CacheStats for %d cores", len(res.CacheStats))
	}
	s := res.CacheStats[0]
	if s.Loads < 2 || s.Stores < 1 {
		t.Errorf("stats = %+v", s)
	}
}
