package vm

import (
	"fmt"

	"stmdiag/internal/obs"
	"stmdiag/internal/prof"
)

// vmTelemetry caches one machine's telemetry handles. The zero value is
// fully detached: the instrs/preempts slices are nil and every counter is
// nil, so with no sink the hot path pays exactly one nil check.
type vmTelemetry struct {
	sink  *obs.Sink
	trace *obs.Tracer // nil unless the sink carries a tracer

	instrs   []*obs.Counter // instructions retired, per core
	preempts []*obs.Counter // scheduler preemptions, per core
	traps    *obs.Counter
	bts      *obs.Counter
	profFail *obs.Counter
	profSucc *obs.Counter
	runs     *obs.Counter
	cycles   *obs.Counter
	steps    *obs.Counter

	runCycles *obs.Histogram
	runSteps  *obs.Histogram

	// prof accumulates per-opcode dispatch costs when the sink arms
	// profiling; nil otherwise, so the dispatch loop pays one nil check.
	prof *prof.VMProf
}

// attachObs resolves the machine's counters ("vm.*") and wires the cache
// domain, per-core LBRs and (as they spawn) per-thread LCRs to the sink.
// Called once from New when Options.Obs is set.
func (m *Machine) attachObs(s *obs.Sink) {
	m.tel.sink = s
	m.tel.trace = s.Tracer()
	m.tel.instrs = make([]*obs.Counter, len(m.cores))
	m.tel.preempts = make([]*obs.Counter, len(m.cores))
	for i := range m.cores {
		m.tel.instrs[i] = s.Counter(fmt.Sprintf("vm.instrs.core%d", i))
		m.tel.preempts[i] = s.Counter(fmt.Sprintf("vm.preempts.core%d", i))
		m.cores[i].LBR.AttachObs(s)
		if m.tel.trace != nil {
			m.tel.trace.SetProcessName(i, fmt.Sprintf("core %d", i))
		}
	}
	m.tel.traps = s.Counter("vm.traps")
	m.tel.bts = s.Counter("vm.bts.records")
	m.tel.profFail = s.Counter("vm.profiles.failure")
	m.tel.profSucc = s.Counter("vm.profiles.success")
	m.tel.runs = s.Counter("vm.runs")
	m.tel.cycles = s.Counter("vm.cycles")
	m.tel.steps = s.Counter("vm.steps")
	m.tel.runCycles = s.Histogram("vm.run.cycles", obs.DefaultCycleBounds)
	m.tel.runSteps = s.Histogram("vm.run.steps", obs.DefaultCycleBounds)
	if s.Profiled() {
		m.tel.prof = prof.NewVMProf()
	}
	m.cache.AttachObs(s)
}

// stepProf dispatches one step, attributing its cycle-clock delta to the
// fetched opcode when profiling is armed. Attribution only reads the
// machine (PC, cycle counter), so the simulation itself is bit-identical
// with profiling on or off.
func (m *Machine) stepProf(t *Thread) (yield bool, err error) {
	if m.tel.prof == nil {
		return m.step(t)
	}
	slot := prof.InvalidSlot
	if t.PC >= 0 && t.PC < len(m.prog.Instrs) {
		slot = prof.Slot(m.prog.Instrs[t.PC].Op)
	}
	before := m.res.Cycles
	yield, err = m.step(t)
	m.tel.prof.Observe(slot, m.res.Cycles-before)
	return yield, err
}

// Obs returns the sink the machine reports into, or nil. Drivers use it to
// account their own events against the same registry and tracer.
func (m *Machine) Obs() *obs.Sink { return m.opts.Obs }

// Cycles returns the cycles accounted so far — the trace clock. Drivers
// timestamp their trace events with it.
func (m *Machine) Cycles() uint64 { return m.res.Cycles }

// traceQuantum records one scheduler quantum as a complete span on the
// thread's core track.
func (m *Machine) traceQuantum(t *Thread, startCycles uint64) {
	m.tel.trace.Complete(fmt.Sprintf("t%d", t.ID), "sched",
		startCycles, m.res.Cycles-startCycles, t.Core, t.ID, nil)
}

// finishRun folds the completed run into the registry and advances the
// trace clock past this run so consecutive runs lay out end-to-end.
func (m *Machine) finishRun() {
	if m.tel.sink == nil {
		return
	}
	m.tel.runs.Inc()
	m.tel.cycles.Add(m.res.Cycles)
	m.tel.steps.Add(m.res.Steps)
	m.tel.runCycles.Observe(m.res.Cycles)
	m.tel.runSteps.Observe(m.res.Steps)
	if m.tel.prof != nil {
		m.tel.prof.Flush(m.tel.sink)
	}
	if m.tel.trace != nil {
		m.tel.trace.Advance(m.res.Cycles + 1)
	}
}
