package vm

import (
	"errors"
	"fmt"

	"stmdiag/internal/cache"
	"stmdiag/internal/faultinj"
	"stmdiag/internal/isa"
	"stmdiag/internal/memory"
	"stmdiag/internal/pmu"
)

// step retires one instruction of thread t. It returns yield=true when the
// scheduler should pick again (blocking, yielding, thread exit).
func (m *Machine) step(t *Thread) (yield bool, err error) {
	if t.PC < 0 || t.PC >= len(m.prog.Instrs) {
		m.crash(t, t.PC, fmt.Sprintf("invalid PC %d", t.PC))
		return true, nil
	}
	in := &m.prog.Instrs[t.PC]
	pc := t.PC
	m.res.Steps++
	m.res.Cycles += CostInstr
	if m.tel.instrs != nil {
		m.tel.instrs[t.Core].Inc()
	}
	if m.hookStep != nil {
		m.hookStep(m, t, in)
	}
	next := pc + 1

	switch in.Op {
	case isa.OpNop:
	case isa.OpMovi:
		t.Regs[in.Rd] = in.Imm
	case isa.OpMov:
		t.Regs[in.Rd] = t.Regs[in.Rs]
	case isa.OpLea:
		t.Regs[in.Rd] = in.Imm
	case isa.OpLd:
		v, ok := m.load(t, t.Regs[in.Rs]+in.Imm, pc)
		if !ok {
			return true, nil
		}
		t.Regs[in.Rd] = v
	case isa.OpSt:
		if !m.store(t, t.Regs[in.Rd]+in.Imm, t.Regs[in.Rs], pc) {
			return true, nil
		}
	case isa.OpAdd:
		t.Regs[in.Rd] += t.Regs[in.Rs]
	case isa.OpSub:
		t.Regs[in.Rd] -= t.Regs[in.Rs]
	case isa.OpMul:
		t.Regs[in.Rd] *= t.Regs[in.Rs]
	case isa.OpDiv:
		if t.Regs[in.Rs] == 0 {
			m.crash(t, pc, "division by zero")
			return true, nil
		}
		t.Regs[in.Rd] /= t.Regs[in.Rs]
	case isa.OpMod:
		if t.Regs[in.Rs] == 0 {
			m.crash(t, pc, "division by zero")
			return true, nil
		}
		t.Regs[in.Rd] %= t.Regs[in.Rs]
	case isa.OpAnd:
		t.Regs[in.Rd] &= t.Regs[in.Rs]
	case isa.OpOr:
		t.Regs[in.Rd] |= t.Regs[in.Rs]
	case isa.OpXor:
		t.Regs[in.Rd] ^= t.Regs[in.Rs]
	case isa.OpShl:
		t.Regs[in.Rd] <<= uint64(t.Regs[in.Rs]) & 63
	case isa.OpShr:
		t.Regs[in.Rd] = int64(uint64(t.Regs[in.Rd]) >> (uint64(t.Regs[in.Rs]) & 63))
	case isa.OpAddi:
		t.Regs[in.Rd] += in.Imm
	case isa.OpSubi:
		t.Regs[in.Rd] -= in.Imm
	case isa.OpMuli:
		t.Regs[in.Rd] *= in.Imm
	case isa.OpAndi:
		t.Regs[in.Rd] &= in.Imm
	case isa.OpCmp:
		t.Flags = compare(t.Regs[in.Rd], t.Regs[in.Rs])
	case isa.OpCmpi:
		t.Flags = compare(t.Regs[in.Rd], in.Imm)

	case isa.OpJmp:
		m.branch(t, pc, in.Target, isa.BranchUncondRel)
		next = in.Target
	case isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle, isa.OpJg, isa.OpJge:
		if condHolds(in.Op, t.Flags) {
			m.branch(t, pc, in.Target, isa.BranchCond)
			next = in.Target
		}
	case isa.OpJmpr:
		target := int(t.Regs[in.Rd])
		if target < 0 || target >= len(m.prog.Instrs) {
			m.crash(t, pc, fmt.Sprintf("indirect jump to invalid PC %d", target))
			return true, nil
		}
		m.branch(t, pc, target, isa.BranchUncondInd)
		next = target
	case isa.OpCall:
		if !m.push(t, int64(pc+1), pc) {
			return true, nil
		}
		m.branch(t, pc, in.Target, isa.BranchRelCall)
		next = in.Target
	case isa.OpCallr:
		target := int(t.Regs[in.Rd])
		if target < 0 || target >= len(m.prog.Instrs) {
			m.crash(t, pc, fmt.Sprintf("indirect call to invalid PC %d", target))
			return true, nil
		}
		if !m.push(t, int64(pc+1), pc) {
			return true, nil
		}
		m.branch(t, pc, target, isa.BranchIndCall)
		next = target
	case isa.OpRet:
		v, ok := m.pop(t, pc)
		if !ok {
			return true, nil
		}
		target := int(v)
		if target < 0 || target >= len(m.prog.Instrs) {
			m.crash(t, pc, fmt.Sprintf("return to invalid PC %d", target))
			return true, nil
		}
		m.branch(t, pc, target, isa.BranchReturn)
		next = target

	case isa.OpPush:
		if !m.push(t, t.Regs[in.Rd], pc) {
			return true, nil
		}
	case isa.OpPop:
		v, ok := m.pop(t, pc)
		if !ok {
			return true, nil
		}
		t.Regs[in.Rd] = v

	case isa.OpLock:
		m.res.Cycles += CostLock
		handle := t.Regs[in.Rd]
		if handle <= 0 {
			m.crash(t, pc, fmt.Sprintf("lock of null/destroyed mutex (handle %d)", handle))
			return true, nil
		}
		mu := m.mutexes[handle]
		if mu == nil {
			mu = &mutexState{owner: -1}
			m.mutexes[handle] = mu
		}
		if mu.owner == -1 {
			mu.owner = t.ID
		} else {
			mu.waiters = append(mu.waiters, t.ID)
			t.State = ThreadBlocked
			t.waitLock = handle
			return true, nil // retry is handled at wakeup: owner handoff
		}
	case isa.OpUnlock:
		m.res.Cycles += CostUnlock
		handle := t.Regs[in.Rd]
		if mu := m.mutexes[handle]; mu != nil && mu.owner == t.ID {
			if len(mu.waiters) > 0 {
				nextOwner := mu.waiters[0]
				mu.waiters = mu.waiters[1:]
				mu.owner = nextOwner
				w := m.threads[nextOwner]
				w.State = ThreadRunnable
				w.waitLock = 0
				w.PC++ // the waiter's OpLock completes now
			} else {
				mu.owner = -1
			}
		}

	case isa.OpSpawn:
		m.res.Cycles += CostSpawn
		if _, err := m.spawnThread(in.Target, t.Regs[in.Rs], t.ID); err != nil {
			return true, fmt.Errorf("vm: spawn at PC %d: %w", pc, err)
		}
	case isa.OpJoin:
		m.res.Cycles += CostJoin
		if t.children > 0 {
			t.State = ThreadBlocked
			t.waitJoin = true
			return true, nil
		}
	case isa.OpYield:
		t.PC = next
		return true, nil

	case isa.OpPrint:
		m.res.Cycles += CostPrint
		m.emit(m.prog.Strings[in.Imm])
	case isa.OpOut:
		m.res.Cycles += CostPrint
		m.emit(fmt.Sprintf("%d", t.Regs[in.Rd]))
	case isa.OpFail:
		m.fail(FailureEvent{Kind: FailLogged, Code: in.Imm, PC: pc, Thread: t.ID})
	case isa.OpExit:
		m.exited = true
		t.PC = next
		return true, nil
	case isa.OpHalt:
		m.exitThread(t)
		return true, nil

	case isa.OpIoctl:
		m.res.Cycles += CostIoctl
		if m.opts.Driver != nil {
			if err := m.opts.Driver.Ioctl(m, t, in.Imm); err != nil {
				return true, fmt.Errorf("vm: ioctl %d at PC %d: %w", in.Imm, pc, err)
			}
		}
	case isa.OpDelay:
		// Busy-wait: the thread stalls at this instruction for Imm steps,
		// giving other threads real interleaving windows. Each stall step
		// costs one cycle; the step charged above accounts this one.
		if t.delay == 0 {
			t.delay = in.Imm
		}
		t.delay--
		if t.delay > 0 {
			return false, nil // stay on the delay instruction
		}

	default:
		return true, fmt.Errorf("vm: unimplemented opcode %v at PC %d", in.Op, pc)
	}

	t.PC = next
	return false, nil
}

// CondTaken reports whether a conditional jump opcode is taken under the
// given flags; instrumentation hooks (the CBI baseline) use it to observe
// branch outcomes the way compiled-in predicate counters would.
func CondTaken(op isa.Op, flags int) bool { return condHolds(op, flags) }

// compare returns the sign of a-b without overflow.
func compare(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// condHolds evaluates a conditional jump against the flags.
func condHolds(op isa.Op, flags int) bool {
	switch op {
	case isa.OpJe:
		return flags == 0
	case isa.OpJne:
		return flags != 0
	case isa.OpJl:
		return flags < 0
	case isa.OpJle:
		return flags <= 0
	case isa.OpJg:
		return flags > 0
	case isa.OpJge:
		return flags >= 0
	}
	return false
}

// branch records a retired taken branch in the thread's core LBR and, when
// armed, the core's BTS (which charges its memory-store cost).
func (m *Machine) branch(t *Thread, from, to int, class isa.BranchClass) {
	core := m.cores[t.Core]
	rec := pmu.BranchRecord{
		From:   from,
		To:     to,
		Class:  class,
		Kernel: m.KernelPC(from),
	}
	recorded, evicted := core.LBR.Record(rec)
	if m.tel.sink != nil && m.tel.sink.Verbose() {
		m.tel.trace.Instant("branch", "vm", m.res.Cycles, t.Core, t.ID,
			map[string]any{"from": from, "to": to, "class": class.String(),
				"lbr": recorded, "evicted": evicted})
	}
	if core.BTS != nil && core.BTS.Enabled() {
		m.res.Cycles += CostBTSRecord
		m.tel.bts.Inc()
		core.BTS.Record(rec)
	}
}

// load performs a data load through the cache; ok=false means the thread
// trapped.
func (m *Machine) load(t *Thread, addr int64, pc int) (int64, bool) {
	v, err := m.mem.Load(addr)
	if err != nil {
		m.segv(t, pc, err)
		return 0, false
	}
	m.observe(t, addr, cache.Load, pc)
	return v, true
}

// store performs a data store through the cache.
func (m *Machine) store(t *Thread, addr, val int64, pc int) bool {
	if err := m.mem.Store(addr, val); err != nil {
		m.segv(t, pc, err)
		return false
	}
	m.observe(t, addr, cache.Store, pc)
	return true
}

// observe routes a retired access through the cache system, the coherence
// counters and the thread's LCR.
func (m *Machine) observe(t *Thread, addr int64, kind cache.AccessKind, pc int) {
	st := m.cache.Access(t.Core, addr, kind)
	if st == cache.Invalid {
		m.res.Cycles += CostCacheMiss
	} else {
		m.res.Cycles += CostCacheHit
	}
	core := m.cores[t.Core]
	core.Counters.Observe(kind, st)
	recorded, evicted := t.LCR.Record(pmu.CoherenceEvent{PC: pc, Kind: kind, State: st, Kernel: m.KernelPC(pc)})
	if m.tel.sink != nil && m.tel.sink.Verbose() {
		m.tel.trace.Instant("coherence", "vm", m.res.Cycles, t.Core, t.ID,
			map[string]any{"pc": pc, "kind": kind.String(), "state": st.String(),
				"lcr": recorded, "evicted": evicted})
	}
	if m.hookCoher != nil {
		m.hookCoher(m, t, pc, kind, st)
	}
}

// push stores v on the thread's stack.
func (m *Machine) push(t *Thread, v int64, pc int) bool {
	t.SP--
	if !m.store(t, t.SP, v, pc) {
		t.SP++
		return false
	}
	return true
}

// pop loads the top of the thread's stack.
func (m *Machine) pop(t *Thread, pc int) (int64, bool) {
	v, ok := m.load(t, t.SP, pc)
	if !ok {
		return 0, false
	}
	t.SP++
	return v, true
}

// emit appends one output record, respecting the cap.
func (m *Machine) emit(s string) {
	if len(m.res.Output) < m.opts.OutputLimit {
		m.res.Output = append(m.res.Output, s)
	}
}

// crash handles a non-memory trap (null mutex, bad jump, div by zero).
func (m *Machine) crash(t *Thread, pc int, msg string) {
	m.runSegvHandler(t, pc)
	m.fail(FailureEvent{Kind: FailCrash, PC: pc, Thread: t.ID, Msg: msg})
	m.exited = true
}

// segv handles a memory fault: the registered handler profiles LBR/LCR,
// then the process dies, mirroring the paper's custom segmentation-fault
// signal handler (§5.1 step 4).
func (m *Machine) segv(t *Thread, pc int, err error) {
	var f *memory.Fault
	msg := err.Error()
	if errors.As(err, &f) {
		msg = fmt.Sprintf("segmentation fault at PC %d (addr %d, write=%v)", pc, f.Addr, f.Write)
	}
	m.runSegvHandler(t, pc)
	m.fail(FailureEvent{Kind: FailCrash, PC: pc, Thread: t.ID, Msg: msg})
	m.exited = true
}

// runSegvHandler executes the registered driver requests in the faulting
// thread's context. An injected segv-loss fault models the handler itself
// dying (the fragile link of paper §5.1 step 4): the run's profile is lost
// and diagnosis must cope with one fewer failure-run profile.
func (m *Machine) runSegvHandler(t *Thread, pc int) {
	if m.opts.Driver == nil {
		return
	}
	if m.opts.Faults.Hit(faultinj.SegvLoss) {
		if s := m.Obs(); s != nil {
			s.Counter("faultinj.degraded.segv-loss").Inc()
		}
		return
	}
	for _, req := range m.opts.SegvIoctls {
		m.res.Cycles += CostIoctl
		// The handler runs at the faulting PC so profiles carry the real
		// failure site.
		savedPC := t.PC
		t.PC = pc
		if err := m.opts.Driver.Ioctl(m, t, req); err != nil {
			t.PC = savedPC
			return
		}
		t.PC = savedPC
	}
}

// exitThread retires a thread and wakes a joining parent.
func (m *Machine) exitThread(t *Thread) {
	if t.State == ThreadExited {
		return
	}
	t.State = ThreadExited
	if t.parent >= 0 {
		p := m.threads[t.parent]
		p.children--
		if p.waitJoin && p.children == 0 {
			p.waitJoin = false
			p.State = ThreadRunnable
			p.PC++ // complete the OpJoin
		}
	}
}
