package vm

import (
	"testing"

	"stmdiag/internal/isa"
)

// FuzzRunProgram assembles arbitrary text and, when it assembles, runs it
// under a tight step limit: the machine must terminate with a result (clean
// exit, failure event, or hang), never panic and never return an internal
// error for a valid program without a driver.
func FuzzRunProgram(f *testing.F) {
	f.Add(".func main\nmain:\n exit\n", int64(1))
	f.Add(".func main\nmain:\nl:\n jmp l\n", int64(2))
	f.Add(".func main\nmain:\n movi r1, 0\n ld r2, [r1+0]\n exit\n", int64(3))
	f.Add(".global g 4\n.func main\nmain:\n movi r1, 1\n spawn w, r1\n join\n exit\n.func w\nw:\n halt\n", int64(4))
	f.Add(".func main\nmain:\n movi r1, 3\n lock r1\n lock r1\n exit\n", int64(5))
	f.Add(".func main\nmain:\n push r1\n pop r2\n callr r2\n exit\n", int64(6))
	f.Fuzz(func(t *testing.T, src string, seed int64) {
		p, err := isa.Assemble("fuzz", src)
		if err != nil {
			return
		}
		res, err := Run(p, Options{Seed: seed, StepLimit: 20_000})
		if err != nil {
			// Internal errors are reserved for driver/spawn plumbing; a
			// driverless program must never surface one... except spawn
			// exhaustion of the address space, which Map reports.
			t.Fatalf("vm error on valid program: %v\nsource:\n%s", err, src)
		}
		if res.Steps > 20_000+1 {
			t.Fatalf("step limit not enforced: %d", res.Steps)
		}
	})
}
