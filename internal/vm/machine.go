package vm

import (
	"fmt"
	"math/rand"

	"stmdiag/internal/cache"
	"stmdiag/internal/faultinj"
	"stmdiag/internal/isa"
	"stmdiag/internal/memory"
	"stmdiag/internal/obs"
	"stmdiag/internal/pmu"
)

// Driver services OpIoctl requests; internal/kernel provides the standard
// implementation mirroring the paper's /dev/lbrdriver kernel module.
type Driver interface {
	// Ioctl handles one request issued by thread t.
	Ioctl(m *Machine, t *Thread, req int64) error
}

// SchedSource supplies the scheduler's nondeterministic decisions. The
// default draws from the seeded RNG; record-and-replay systems
// (internal/replay, the paper's §8 comparison class) substitute a recorder
// or a log-driven replayer.
type SchedSource interface {
	// Pick chooses among the runnable thread IDs, returning an index into
	// the slice.
	Pick(runnable []int) int
	// Quantum returns the slice length in [min, max].
	Quantum(min, max int) int
}

// randSched is the default RNG-driven scheduler policy.
type randSched struct{ rng *rand.Rand }

func (r randSched) Pick(runnable []int) int { return r.rng.Intn(len(runnable)) }

func (r randSched) Quantum(min, max int) int {
	if max > min {
		return min + r.rng.Intn(max-min)
	}
	return min
}

// DefaultSched returns the seeded default scheduling policy. Wrappers that
// must observe (and log) exactly the decisions an unrecorded run would
// make — the record-and-replay recorder — build on it.
func DefaultSched(seed int64) SchedSource {
	return randSched{rng: rand.New(rand.NewSource(seed))}
}

// Options configure a run.
type Options struct {
	// Cores is the number of cores; 0 means 4, matching the paper's
	// 4-core Core i7 testbed.
	Cores int
	// ThreadsPerCore models SMT: hardware threads on one core share that
	// core's LBR, shortening the history each software thread effectively
	// gets (paper §4.2.1). 0 means 1 (no sharing).
	ThreadsPerCore int
	// Seed drives the scheduler and every other source of randomness.
	Seed int64
	// QuantumMin/QuantumMax bound the instructions a thread runs before a
	// preemption point; 0 means the defaults 20/120.
	QuantumMin, QuantumMax int
	// StepLimit aborts the run as a hang after this many retired
	// instructions; 0 means 4,000,000.
	StepLimit uint64
	// LBRSize and LCRSize set record depths; 0 means the paper defaults
	// (16 each).
	LBRSize, LCRSize int
	// LBRSelect is the LBR_SELECT filter value written by the driver's
	// CONFIG request; 0 means pmu.PaperLBRSelect.
	LBRSelect uint64
	// BTS arms a per-core Branch Trace Store alongside the LBR: every
	// retired taken branch is streamed to memory at CostBTSRecord cycles
	// each — the whole-execution approach of paper Figure 1 (§2.1).
	BTS bool
	// BTSLimit bounds the trace buffer; 0 means pmu.DefaultBTSLimit.
	BTSLimit int
	// LCRConfig is the event selection written by the driver's LCR CONFIG
	// request; the zero value records nothing until configured.
	LCRConfig pmu.LCRConfig
	// Driver services OpIoctl; nil makes OpIoctl a no-op (uninstrumented
	// programs never execute it).
	Driver Driver
	// Sched overrides the scheduler's decision source; nil uses the
	// seeded default.
	Sched SchedSource
	// SegvIoctls are driver requests executed, in order, in the
	// segmentation-fault handler on behalf of the faulting thread. The
	// LBRLOG transformer registers profile requests here (paper §5.1
	// step 4).
	SegvIoctls []int64
	// Globals seeds named globals with scalar values before the run (the
	// workload input).
	Globals map[string]int64
	// GlobalArrays seeds named globals with array contents.
	GlobalArrays map[string][]int64
	// OutputLimit caps captured output records; 0 means 10,000.
	OutputLimit int
	// Obs is the optional telemetry sink. When nil (the default) all
	// instrumentation compiles down to nil checks; when set, the machine
	// reports counters into its registry and — if it carries a tracer —
	// records cycle-timestamped trace events.
	Obs *obs.Sink
	// Faults is the trial's fault-injection plan. Nil (the default)
	// injects nothing; when set, the machine arms every capture layer —
	// per-core LBRs, per-thread LCRs, the driver's profile reads and the
	// segfault handler — with the same deterministic plan.
	Faults *faultinj.Plan
}

func (o Options) withDefaults() Options {
	if o.Cores == 0 {
		o.Cores = 4
	}
	if o.ThreadsPerCore == 0 {
		o.ThreadsPerCore = 1
	}
	if o.QuantumMin == 0 {
		o.QuantumMin = 20
	}
	if o.QuantumMax == 0 {
		o.QuantumMax = 120
	}
	if o.QuantumMax < o.QuantumMin {
		o.QuantumMax = o.QuantumMin
	}
	if o.StepLimit == 0 {
		o.StepLimit = 4_000_000
	}
	if o.LBRSize == 0 {
		o.LBRSize = pmu.DefaultLBRSize
	}
	if o.LCRSize == 0 {
		o.LCRSize = pmu.DefaultLCRSize
	}
	if o.LBRSelect == 0 {
		o.LBRSelect = pmu.PaperLBRSelect
	}
	if o.OutputLimit == 0 {
		o.OutputLimit = 10_000
	}
	return o
}

// ThreadState is a thread's scheduler state.
type ThreadState uint8

// Thread states.
const (
	ThreadRunnable ThreadState = iota
	ThreadBlocked
	ThreadExited
)

// Thread is one software thread.
type Thread struct {
	// ID is the thread index; thread 0 is main.
	ID int
	// Core is the core the thread is pinned to (ID mod cores).
	Core int
	// Regs is the register file.
	Regs [isa.NumRegs]int64
	// PC is the next instruction index.
	PC int
	// SP is the stack pointer (word address); the stack grows down.
	SP int64
	// Flags holds the last comparison result: -1, 0 or 1.
	Flags int
	// LCR is the thread's Last Cache-coherence Record. The paper's
	// simulator maintains LCR per thread (§4.3); so does the VM.
	LCR *pmu.LCR
	// State is the scheduler state.
	State ThreadState

	parent   int
	children int // live children, for OpJoin
	waitJoin bool
	waitLock int64 // mutex handle blocked on, 0 if none
	delay    int64 // remaining OpDelay stall steps
}

// Core is one hardware core: it owns the LBR (per-core on real hardware)
// and the coherence performance counters.
type Core struct {
	// ID is the core index.
	ID int
	// LBR is the core's branch record.
	LBR *pmu.LBR
	// BTS is the core's Branch Trace Store, nil unless Options.BTS.
	BTS *pmu.BTS
	// Counters is the core's coherence-event counter bank.
	Counters pmu.Counters
}

// FailureKind classifies how a run failed.
type FailureKind uint8

// Failure kinds observed by the machine. Wrong-output failures are detected
// by the harness comparing Result.Output against the expected output.
const (
	// FailLogged is a failure-logging function reporting an error (the
	// "error message" / "corrupted log" symptoms of paper Table 4).
	FailLogged FailureKind = iota
	// FailCrash is a hardware trap: segmentation fault, null mutex,
	// division by zero, bad jump target.
	FailCrash
	// FailHang is the step limit or a deadlock (the "hang" symptom).
	FailHang
)

// String names the failure kind.
func (k FailureKind) String() string {
	switch k {
	case FailLogged:
		return "logged-error"
	case FailCrash:
		return "crash"
	case FailHang:
		return "hang"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// FailureEvent is one observed failure.
type FailureEvent struct {
	// Kind classifies the failure.
	Kind FailureKind
	// Code is the OpFail immediate for FailLogged events.
	Code int64
	// PC is where the failure surfaced.
	PC int
	// Thread is the failure thread (paper §4.2.2: "the thread where the
	// failure first occurs").
	Thread int
	// Msg describes crash causes ("segmentation fault", "deadlock"...).
	Msg string
}

// Profile is one LBR/LCR snapshot taken by the driver at a logging site —
// a failure-run or success-run profile in the sense of paper §5.2.
type Profile struct {
	// Site is the PC of the profiling instruction (or the faulting
	// instruction for segfault-handler profiles).
	Site int
	// Thread is the profiled thread.
	Thread int
	// Success marks success-logging-site profiles; failure-site and
	// segfault profiles have it false.
	Success bool
	// Branches is the LBR content, newest-first.
	Branches []pmu.BranchRecord
	// Coherence is the LCR content, newest-first.
	Coherence []pmu.CoherenceEvent
}

// Result is the outcome of one run.
type Result struct {
	// Steps is retired instructions; Cycles is accounted machine cycles.
	Steps, Cycles uint64
	// Output is the captured program output.
	Output []string
	// Failures are the observed failure events, in order.
	Failures []FailureEvent
	// Profiles are the LBR/LCR snapshots the driver took.
	Profiles []Profile
	// CacheStats is per-core cache statistics.
	CacheStats []cache.Stats
}

// Failed reports whether any failure was observed.
func (r *Result) Failed() bool { return len(r.Failures) > 0 }

// FirstFailure returns the first failure event, or nil.
func (r *Result) FirstFailure() *FailureEvent {
	if len(r.Failures) == 0 {
		return nil
	}
	return &r.Failures[0]
}

// FailureProfiles returns the non-success profiles.
func (r *Result) FailureProfiles() []Profile {
	var out []Profile
	for _, p := range r.Profiles {
		if !p.Success {
			out = append(out, p)
		}
	}
	return out
}

// SuccessProfiles returns the success-site profiles.
func (r *Result) SuccessProfiles() []Profile {
	var out []Profile
	for _, p := range r.Profiles {
		if p.Success {
			out = append(out, p)
		}
	}
	return out
}

// mutexState tracks one mutex handle.
type mutexState struct {
	owner   int // thread ID, -1 free
	waiters []int
}

// Machine is a mid-run VM instance. Drivers receive it to reach the PMU
// state and deposit profiles.
type Machine struct {
	prog  *isa.Program
	opts  Options
	mem   *memory.Memory
	cache *cache.System
	cores []*Core

	threads []*Thread
	mutexes map[int64]*mutexState
	rng     *rand.Rand

	res       Result
	attrs     []isa.FuncAttr // per-PC function attributes
	exited    bool
	hookStep  func(m *Machine, t *Thread, in *isa.Instr)
	hookCoher func(m *Machine, t *Thread, pc int, kind cache.AccessKind, st cache.State)
	tel       vmTelemetry
}

// New builds a machine for the program. Most callers use Run.
func New(prog *isa.Program, opts Options) (*Machine, error) {
	opts = opts.withDefaults()
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("vm: invalid program: %w", err)
	}
	m := &Machine{
		prog:    prog,
		opts:    opts,
		mem:     memory.New(),
		mutexes: make(map[int64]*mutexState),
		rng:     rand.New(rand.NewSource(opts.Seed)),
	}
	if m.opts.Sched == nil {
		m.opts.Sched = randSched{rng: m.rng}
	}
	cs, err := cache.NewSystem(opts.Cores, cache.DefaultConfig)
	if err != nil {
		return nil, err
	}
	m.cache = cs
	for i := 0; i < opts.Cores; i++ {
		c := &Core{ID: i, LBR: pmu.NewLBR(opts.LBRSize)}
		c.LBR.SetFaults(opts.Faults)
		if opts.BTS {
			c.BTS = pmu.NewBTS(opts.BTSLimit)
			c.BTS.SetEnabled(true)
		}
		m.cores = append(m.cores, c)
	}
	// Data segment.
	if _, err := m.mem.Map("globals", isa.GlobalBase, prog.GlobalWords); err != nil {
		return nil, err
	}
	for name, v := range opts.Globals {
		g := prog.GlobalByName(name)
		if g == nil {
			return nil, fmt.Errorf("vm: workload global %q not in program", name)
		}
		if err := m.mem.Store(g.Addr, v); err != nil {
			return nil, err
		}
	}
	for name, vals := range opts.GlobalArrays {
		g := prog.GlobalByName(name)
		if g == nil {
			return nil, fmt.Errorf("vm: workload global %q not in program", name)
		}
		if int64(len(vals)) > g.Size {
			return nil, fmt.Errorf("vm: workload array %q longer than global (%d > %d)", name, len(vals), g.Size)
		}
		for i, v := range vals {
			if err := m.mem.Store(g.Addr+int64(i), v); err != nil {
				return nil, err
			}
		}
	}
	// Per-PC function attributes for O(1) ring-level checks.
	m.attrs = make([]isa.FuncAttr, len(prog.Instrs))
	for _, f := range prog.Funcs {
		for pc := f.Entry; pc < f.End && pc < len(m.attrs); pc++ {
			m.attrs[pc] = f.Attr
		}
	}
	if opts.Obs != nil {
		m.attachObs(opts.Obs)
	}
	if _, err := m.spawnThread(prog.Entry, 0, -1); err != nil {
		return nil, err
	}
	return m, nil
}

// Run executes the program to completion and returns the result.
func Run(prog *isa.Program, opts Options) (*Result, error) {
	m, err := New(prog, opts)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// Prog returns the program under execution.
func (m *Machine) Prog() *isa.Program { return m.prog }

// Opts returns the effective options.
func (m *Machine) Opts() Options { return m.opts }

// CoreOf returns the core a thread is pinned to.
func (m *Machine) CoreOf(t *Thread) *Core { return m.cores[t.Core] }

// Cores returns the machine's cores.
func (m *Machine) Cores() []*Core { return m.cores }

// Mem returns the machine memory (tests and the harness peek at globals).
func (m *Machine) Mem() *memory.Memory { return m.mem }

// Faults returns the trial's fault plan (nil when injection is off);
// drivers consult it at profile time.
func (m *Machine) Faults() *faultinj.Plan { return m.opts.Faults }

// AddProfile deposits a profile snapshot; drivers call it.
func (m *Machine) AddProfile(p Profile) {
	m.res.Profiles = append(m.res.Profiles, p)
	if m.tel.sink != nil {
		if p.Success {
			m.tel.profSucc.Inc()
		} else {
			m.tel.profFail.Inc()
		}
		if m.tel.trace != nil {
			core := m.threads[p.Thread].Core
			m.tel.trace.Instant("profile", "pmu", m.res.Cycles, core, p.Thread,
				map[string]any{"site": p.Site, "success": p.Success,
					"branches": len(p.Branches), "coherence": len(p.Coherence)})
		}
	}
}

// AddCycles charges extra cycles (drivers account their own costs).
func (m *Machine) AddCycles(n uint64) { m.res.Cycles += n }

// KernelPC reports whether the PC executes at ring 0.
func (m *Machine) KernelPC(pc int) bool {
	return pc >= 0 && pc < len(m.attrs) && m.attrs[pc].Has(isa.AttrKernel)
}

// SetStepHook installs a per-retired-instruction callback, used by the CBI
// instrumentation to observe branch outcomes under sampling.
func (m *Machine) SetStepHook(h func(m *Machine, t *Thread, in *isa.Instr)) {
	m.hookStep = h
}

// SetCoherenceHook installs a per-retired-data-access callback carrying
// the observed pre-access MESI state — the event stream hardware
// performance counters see. The PBI baseline samples it.
func (m *Machine) SetCoherenceHook(h func(m *Machine, t *Thread, pc int, kind cache.AccessKind, st cache.State)) {
	m.hookCoher = h
}

// spawnThread creates a thread at entry with r0=arg.
func (m *Machine) spawnThread(entry int, arg int64, parent int) (*Thread, error) {
	id := len(m.threads)
	base := int64(isa.StackBase) + int64(id)*int64(isa.StackSpan)
	if _, err := m.mem.Map(fmt.Sprintf("stack%d", id), base, isa.StackSpan); err != nil {
		return nil, err
	}
	t := &Thread{
		ID:     id,
		Core:   (id % (m.opts.Cores * m.opts.ThreadsPerCore)) / m.opts.ThreadsPerCore,
		PC:     entry,
		SP:     base + isa.StackSpan, // empty descending stack
		LCR:    pmu.NewLCR(m.opts.LCRSize),
		parent: parent,
	}
	t.LCR.SetFaults(m.opts.Faults)
	t.Regs[0] = arg
	if m.tel.sink != nil {
		t.LCR.AttachObs(m.tel.sink)
		if m.tel.trace != nil {
			m.tel.trace.SetThreadName(t.Core, t.ID, fmt.Sprintf("thread %d", t.ID))
		}
	}
	m.threads = append(m.threads, t)
	if parent >= 0 {
		m.threads[parent].children++
	}
	return t, nil
}

// Threads returns all threads (any state).
func (m *Machine) Threads() []*Thread { return m.threads }

// runnable returns the IDs of runnable threads.
func (m *Machine) runnable() []int {
	var ids []int
	for _, t := range m.threads {
		if t.State == ThreadRunnable {
			ids = append(ids, t.ID)
		}
	}
	return ids
}

// fail records a failure event.
func (m *Machine) fail(ev FailureEvent) {
	m.res.Failures = append(m.res.Failures, ev)
	m.tel.traps.Inc()
	if m.tel.trace != nil {
		m.tel.trace.Instant("failure", "vm", m.res.Cycles, m.threads[ev.Thread].Core, ev.Thread,
			map[string]any{"kind": ev.Kind.String(), "pc": ev.PC, "msg": ev.Msg})
	}
}

// Run drives the scheduler loop until exit, deadlock, or the step limit.
func (m *Machine) Run() (*Result, error) {
	for !m.exited {
		ids := m.runnable()
		if len(ids) == 0 {
			if m.liveThreads() == 0 {
				break // clean termination
			}
			// Deadlock: profile a stuck thread (the operator's SIGQUIT
			// analog) so the hang leaves a failure-run profile behind.
			for _, t := range m.threads {
				if t.State == ThreadBlocked {
					m.runSegvHandler(t, t.PC)
					m.fail(FailureEvent{Kind: FailHang, PC: t.PC, Thread: t.ID,
						Msg: "deadlock: all live threads blocked"})
					break
				}
			}
			break
		}
		t := m.threads[ids[m.opts.Sched.Pick(ids)]]
		quantum := m.opts.Sched.Quantum(m.opts.QuantumMin, m.opts.QuantumMax)
		quantumStart := m.res.Cycles
		for q := 0; q < quantum && t.State == ThreadRunnable && !m.exited; q++ {
			if m.res.Steps >= m.opts.StepLimit {
				// Hang: profile the spinning thread where it stands, the
				// way an operator interrupting the stuck process would.
				m.runSegvHandler(t, t.PC)
				m.fail(FailureEvent{Kind: FailHang, PC: t.PC, Thread: t.ID,
					Msg: fmt.Sprintf("hang: step limit %d exceeded", m.opts.StepLimit)})
				m.exited = true
				break
			}
			yield, err := m.stepProf(t)
			if err != nil {
				return nil, err
			}
			if yield {
				break
			}
		}
		if m.tel.sink != nil {
			if t.State == ThreadRunnable && !m.exited {
				m.tel.preempts[t.Core].Inc()
			}
			if m.tel.trace != nil {
				m.traceQuantum(t, quantumStart)
			}
		}
	}
	for i := range m.cores {
		m.res.CacheStats = append(m.res.CacheStats, m.cache.Stats(i))
	}
	m.finishRun()
	return &m.res, nil
}

// liveThreads counts threads not yet exited.
func (m *Machine) liveThreads() int {
	n := 0
	for _, t := range m.threads {
		if t.State != ThreadExited {
			n++
		}
	}
	return n
}
