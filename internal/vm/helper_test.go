package vm

import "stmdiag/internal/pmu"

// pmuConfAll records every user-level coherence event, for tests that want
// the raw access stream.
func pmuConfAll() pmu.LCRConfig {
	return pmu.LCRConfig{
		LoadMask:  pmu.UmaskInvalid | pmu.UmaskShared | pmu.UmaskExclusive | pmu.UmaskModified,
		StoreMask: pmu.UmaskInvalid | pmu.UmaskShared | pmu.UmaskExclusive | pmu.UmaskModified,
	}
}
