// Package vm executes assembled programs on a simulated multicore machine
// with per-core L1 data caches (internal/cache), per-core LBRs and
// per-thread LCRs (internal/pmu), a seeded preemptive scheduler, and a
// pluggable kernel driver servicing OpIoctl (internal/kernel).
//
// The machine replaces the paper's Intel Core i7 testbed. Run-time overhead
// experiments (paper Table 6) are reproduced by cycle accounting: every
// instruction, cache miss, driver call and profile operation has a
// documented cycle cost, so "overhead" is extra cycles of an instrumented
// run over the uninstrumented run on the same workload.
package vm

// Cycle costs. The absolute values are calibrated to keep the paper's
// relative cost ordering: reading LBR/LCR at a failure site is ~20µs-class
// (cheap, rare), toggling around library calls is two MSR writes (cheap but
// frequent), and CBI-style per-site sampling checks are cheap individually
// but execute at every instrumented branch.
const (
	// CostInstr is the base cost of every retired instruction.
	CostInstr = 1
	// CostCacheHit is the extra cost of an L1D hit.
	CostCacheHit = 2
	// CostCacheMiss is the extra cost of an L1D miss (bus transaction).
	CostCacheMiss = 20
	// CostIoctl is the user/kernel crossing of one driver request
	// (DRIVER_ENABLE_LBR and friends, paper Figure 7).
	CostIoctl = 60
	// CostProfile is the additional cost of DRIVER_PROFILE_LBR/LCR: the
	// driver reads the whole branch stack over rdmsr and copies it out.
	// The paper measures logging LBR at under 20µs (§5.3).
	CostProfile = 400
	// CostLock and CostUnlock are uncontended mutex operations.
	CostLock   = 12
	CostUnlock = 8
	// CostSpawn is thread creation; CostJoin is an uncontended join.
	CostSpawn = 150
	CostJoin  = 10
	// CostPrint is formatting and buffering one output record.
	CostPrint = 6
	// CostSampleCheck is the fast-path cost CBI instrumentation pays at
	// every instrumented site (countdown check); CostSampleSlow is the
	// slow path taken when a sample fires.
	CostSampleCheck = 4
	CostSampleSlow  = 40
	// CostBTSRecord is the memory store each Branch Trace Store record
	// costs; on branch-dense code this lands in the 20%-100% overhead
	// range the paper reports for BTS (§2.1).
	CostBTSRecord = 3
)
