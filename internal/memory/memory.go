// Package memory implements the VM's word-addressed shared memory as a set
// of mapped segments with access protection. Accesses outside any segment
// raise a Fault, which the machine surfaces as a segmentation fault — the
// crash symptom of several of the paper's Table 4 benchmarks (sort,
// Cppcheck, PBZIP2, tac, Squid2, Mozilla-JS1, MySQL1, PBZIP3).
//
// Addresses are in 64-bit words; the data cache translates them to byte
// addresses (one word = 8 bytes) when forming cache blocks.
package memory

import "fmt"

// Fault describes an invalid memory access.
type Fault struct {
	// Addr is the faulting word address.
	Addr int64
	// Write reports whether the access was a store.
	Write bool
}

// Error implements the error interface.
func (f *Fault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	return fmt.Sprintf("segmentation fault: invalid %s at word address %d", kind, f.Addr)
}

// Segment is a contiguous mapped region.
type Segment struct {
	// Name identifies the segment in diagnostics ("globals", "stack0"...).
	Name string
	// Base is the first mapped word address.
	Base int64
	// Words is the backing store; the segment spans [Base, Base+len).
	Words []int64
}

// Contains reports whether the word address falls inside the segment.
func (s *Segment) Contains(addr int64) bool {
	return addr >= s.Base && addr < s.Base+int64(len(s.Words))
}

// Memory is a collection of non-overlapping segments.
type Memory struct {
	segs []*Segment
}

// New returns an empty address space.
func New() *Memory { return &Memory{} }

// Map adds a zeroed segment of the given size. It returns an error if the
// new segment would overlap an existing one.
func (m *Memory) Map(name string, base, size int64) (*Segment, error) {
	if size < 0 {
		return nil, fmt.Errorf("memory: map %s: negative size %d", name, size)
	}
	for _, s := range m.segs {
		if base < s.Base+int64(len(s.Words)) && s.Base < base+size {
			return nil, fmt.Errorf("memory: map %s [%d,%d) overlaps %s [%d,%d)",
				name, base, base+size, s.Name, s.Base, s.Base+int64(len(s.Words)))
		}
	}
	seg := &Segment{Name: name, Base: base, Words: make([]int64, size)}
	m.segs = append(m.segs, seg)
	return seg, nil
}

// SegmentAt returns the segment containing addr, or nil.
func (m *Memory) SegmentAt(addr int64) *Segment {
	for _, s := range m.segs {
		if s.Contains(addr) {
			return s
		}
	}
	return nil
}

// Load reads the word at addr.
func (m *Memory) Load(addr int64) (int64, error) {
	s := m.SegmentAt(addr)
	if s == nil {
		return 0, &Fault{Addr: addr}
	}
	return s.Words[addr-s.Base], nil
}

// Store writes the word at addr.
func (m *Memory) Store(addr, val int64) error {
	s := m.SegmentAt(addr)
	if s == nil {
		return &Fault{Addr: addr, Write: true}
	}
	s.Words[addr-s.Base] = val
	return nil
}

// Segments returns the mapped segments (not a copy; callers must not
// mutate the slice).
func (m *Memory) Segments() []*Segment { return m.segs }
