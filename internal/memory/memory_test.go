package memory

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestMapAndAccess(t *testing.T) {
	m := New()
	if _, err := m.Map("globals", 4096, 16); err != nil {
		t.Fatalf("Map: %v", err)
	}
	if err := m.Store(4100, 42); err != nil {
		t.Fatalf("Store: %v", err)
	}
	v, err := m.Load(4100)
	if err != nil || v != 42 {
		t.Fatalf("Load = %d, %v", v, err)
	}
}

func TestNullPageFaults(t *testing.T) {
	m := New()
	if _, err := m.Map("globals", 4096, 16); err != nil {
		t.Fatal(err)
	}
	_, err := m.Load(0)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("Load(0) err = %v, want Fault", err)
	}
	if f.Write || f.Addr != 0 {
		t.Errorf("fault = %+v", f)
	}
	err = m.Store(3, 1)
	if !errors.As(err, &f) || !f.Write {
		t.Fatalf("Store(3) err = %v, want write Fault", err)
	}
	if !strings.Contains(err.Error(), "segmentation fault") {
		t.Errorf("fault message = %q", err)
	}
}

func TestOutOfSegmentFaults(t *testing.T) {
	m := New()
	if _, err := m.Map("g", 100, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Load(110); err == nil {
		t.Error("Load just past end should fault")
	}
	if _, err := m.Load(99); err == nil {
		t.Error("Load just before base should fault")
	}
	if _, err := m.Load(109); err != nil {
		t.Errorf("last word should be mapped: %v", err)
	}
}

func TestOverlapRejected(t *testing.T) {
	m := New()
	if _, err := m.Map("a", 100, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Map("b", 105, 10); err == nil {
		t.Error("overlapping map should fail")
	}
	if _, err := m.Map("c", 90, 10); err != nil {
		t.Errorf("adjacent map should succeed: %v", err)
	}
	if _, err := m.Map("d", 110, 0); err != nil {
		t.Errorf("empty map should succeed: %v", err)
	}
	if _, err := m.Map("e", 100, -1); err == nil {
		t.Error("negative size should fail")
	}
}

func TestSegmentAt(t *testing.T) {
	m := New()
	g, _ := m.Map("g", 100, 10)
	s, _ := m.Map("s", 1000, 10)
	if m.SegmentAt(105) != g {
		t.Error("SegmentAt(105) != g")
	}
	if m.SegmentAt(1000) != s {
		t.Error("SegmentAt(1000) != s")
	}
	if m.SegmentAt(500) != nil {
		t.Error("SegmentAt(500) should be nil")
	}
	if len(m.Segments()) != 2 {
		t.Errorf("Segments() = %d entries", len(m.Segments()))
	}
}

// Property: a store followed by a load of the same mapped address returns
// the stored value, independent of offset and value.
func TestStoreLoadQuick(t *testing.T) {
	m := New()
	const base, size = 4096, 1024
	if _, err := m.Map("g", base, size); err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, val int64) bool {
		addr := base + int64(off%size)
		if err := m.Store(addr, val); err != nil {
			return false
		}
		got, err := m.Load(addr)
		return err == nil && got == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: accesses outside every segment always fault and never mutate
// mapped state.
func TestFaultQuick(t *testing.T) {
	m := New()
	const base, size = 4096, 64
	seg, err := m.Map("g", base, size)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Store(base, 7); err != nil {
		t.Fatal(err)
	}
	f := func(raw int64) bool {
		addr := raw
		if addr >= base && addr < base+size {
			addr = base - 1 - (addr-base)%base // push it below the segment
		}
		if addr >= base && addr < base+size {
			return true // still inside; skip
		}
		if err := m.Store(addr, 99); err == nil {
			return false
		}
		if _, err := m.Load(addr); err == nil {
			return false
		}
		return seg.Words[0] == 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
