// Package cbi reimplements the sampling-based cooperative-bug-isolation
// baseline the paper compares against (CBI; Liblit et al., PLDI '03/'05).
//
// CBI instruments every source-level branch with a pair of predicates
// ("branch taken", "branch not taken"), evaluates them at randomly sampled
// executions (default 1 out of 100), and statistically ranks predicates by
// how strongly they correlate with failure over many runs. The paper's
// experiments use branch predicates only, 1/100 sampling, and 1000 success
// plus 1000 failure runs (§7.2); LBRA reaches its verdict from 10+10.
//
// The instrumentation attaches to the VM as a step hook and charges the
// fast-path/slow-path cycle costs every instrumented site pays, which is
// how the baseline's run-time overhead (Table 6's CBI column, avg ~15%)
// is reproduced.
package cbi

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"stmdiag/internal/isa"
	"stmdiag/internal/obs"
	"stmdiag/internal/stats"
	"stmdiag/internal/vm"
)

// DefaultRate is CBI's default sampling rate, 1/100.
const DefaultRate = 0.01

// Pred identifies one branch predicate: a source branch and an outcome.
type Pred struct {
	// Branch is the source-branch name.
	Branch string
	// Edge is the outcome the predicate asserts.
	Edge isa.BranchEdge
}

// String renders the predicate.
func (p Pred) String() string { return p.Branch + "=" + p.Edge.String() }

// MarshalText encodes the predicate as "branch=edgeNumber" so RunObs maps
// survive a JSON round trip (the harness serializes trial results across
// process boundaries and into the durable artifact store). The numeric edge
// keeps the encoding unambiguous and cheap to parse.
func (p Pred) MarshalText() ([]byte, error) {
	return []byte(p.Branch + "=" + strconv.Itoa(int(p.Edge))), nil
}

// UnmarshalText parses the MarshalText encoding. The edge is taken from the
// last '=' so branch names containing '=' round-trip too.
func (p *Pred) UnmarshalText(b []byte) error {
	i := strings.LastIndexByte(string(b), '=')
	if i < 0 {
		return fmt.Errorf("cbi: predicate %q missing '='", b)
	}
	n, err := strconv.Atoi(string(b[i+1:]))
	if err != nil {
		return fmt.Errorf("cbi: predicate %q edge: %v", b, err)
	}
	p.Branch = string(b[:i])
	p.Edge = isa.BranchEdge(n)
	return nil
}

// RunObs is one run's sampled observations.
type RunObs struct {
	// Failed reports whether the run failed.
	Failed bool
	// Observed marks predicates whose branch was sampled at least once.
	Observed map[Pred]bool
	// True marks predicates sampled with their asserted outcome at least
	// once.
	True map[Pred]bool
}

// Observer instruments a machine with sampled branch-predicate counters.
// Attach with Attach before vm.Machine.Run; read the run's observations
// with Finish.
type Observer struct {
	rate    float64
	rng     *rand.Rand
	obs     RunObs
	active  map[string]bool // nil = every branch instrumented
	sampled *obs.Counter    // slow-path samples fired, process-wide
}

// NewObserver builds an observer with the given sampling rate and seed.
// The seed must differ from the scheduler seed to avoid correlated
// sampling.
func NewObserver(rate float64, seed int64) *Observer {
	reg := obs.Default()
	reg.Counter("cbi.observers").Inc()
	return &Observer{
		rate: rate,
		rng:  rand.New(rand.NewSource(seed)),
		obs: RunObs{
			Observed: make(map[Pred]bool),
			True:     make(map[Pred]bool),
		},
		sampled: reg.Counter("cbi.predicates.sampled"),
	}
}

// Restrict limits instrumentation to the named branches — the adaptive
// strategy's lever (Arumuga Nainar & Liblit, ICSE '10, discussed in paper
// §8): uninstrumented sites cost nothing and observe nothing.
func (o *Observer) Restrict(active map[string]bool) { o.active = active }

// Attach installs the instrumentation hook on the machine.
func (o *Observer) Attach(m *vm.Machine) {
	prog := m.Prog()
	m.SetStepHook(func(m *vm.Machine, t *vm.Thread, in *isa.Instr) {
		if !in.Op.IsCond() || in.BranchID == isa.NoBranch {
			return
		}
		if o.active != nil && !o.active[prog.BranchName(in.BranchID)] {
			return
		}
		// Every instrumented site pays the fast-path check; a firing
		// sample pays the slow path.
		m.AddCycles(vm.CostSampleCheck)
		if o.rng.Float64() >= o.rate {
			return
		}
		m.AddCycles(vm.CostSampleSlow)
		o.sampled.Inc()
		name := prog.BranchName(in.BranchID)
		outcome := in.Edge
		if !vm.CondTaken(in.Op, t.Flags) {
			outcome = in.Edge.Opposite()
		}
		for _, e := range []isa.BranchEdge{isa.EdgeFalse, isa.EdgeTrue} {
			o.obs.Observed[Pred{name, e}] = true
		}
		o.obs.True[Pred{name, outcome}] = true
	})
}

// Finish returns the observations, labeling the run.
func (o *Observer) Finish(failed bool) RunObs {
	o.obs.Failed = failed
	return o.obs
}

// Score is one predicate's CBI statistics.
type Score struct {
	// Pred is the predicate.
	Pred Pred
	// F and S count failing/successful runs where the predicate was
	// sampled true; Fobs and Sobs count runs where it was observed at all.
	F, S, Fobs, Sobs int
	// Failure is F/(F+S); Context is Fobs/(Fobs+Sobs).
	Failure, Context float64
	// Increase is Failure - Context, CBI's core signal.
	Increase float64
	// Importance is the harmonic mean of Increase and a normalized
	// log-recall term, CBI's ranking metric.
	Importance float64
}

// Rank computes CBI scores over a set of runs, best predictor first.
func Rank(runs []RunObs) []Score {
	totalFail := 0
	for _, r := range runs {
		if r.Failed {
			totalFail++
		}
	}
	type cell struct{ f, s, fobs, sobs int }
	counts := make(map[Pred]*cell)
	get := func(p Pred) *cell {
		c := counts[p]
		if c == nil {
			c = &cell{}
			counts[p] = c
		}
		return c
	}
	for _, r := range runs {
		for p := range r.Observed {
			c := get(p)
			if r.Failed {
				c.fobs++
			} else {
				c.sobs++
			}
		}
		for p := range r.True {
			c := get(p)
			if r.Failed {
				c.f++
			} else {
				c.s++
			}
		}
	}
	out := make([]Score, 0, len(counts))
	for p, c := range counts {
		sc := Score{Pred: p, F: c.f, S: c.s, Fobs: c.fobs, Sobs: c.sobs}
		if c.f+c.s > 0 {
			sc.Failure = float64(c.f) / float64(c.f+c.s)
		}
		if c.fobs+c.sobs > 0 {
			sc.Context = float64(c.fobs) / float64(c.fobs+c.sobs)
		}
		sc.Increase = sc.Failure - sc.Context
		if sc.Increase > 0 && c.f > 0 && totalFail > 1 {
			logRecall := math.Log(float64(c.f)+1) / math.Log(float64(totalFail)+1)
			sc.Importance = stats.HarmonicMean(sc.Increase, logRecall)
		}
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Importance != b.Importance {
			return a.Importance > b.Importance
		}
		if a.Increase != b.Increase {
			return a.Increase > b.Increase
		}
		if a.F != b.F {
			return a.F > b.F
		}
		return a.Pred.String() < b.Pred.String()
	})
	return out
}

// RankOf returns the 1-based rank of the first predicate with a positive
// importance satisfying match, or 0 if none.
func RankOf(scores []Score, match func(Pred) bool) int {
	for i, s := range scores {
		if s.Importance <= 0 {
			break // past the useful predictors
		}
		if match(s.Pred) {
			return i + 1
		}
	}
	return 0
}
