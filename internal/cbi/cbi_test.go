package cbi

import (
	"testing"

	"stmdiag/internal/isa"
	"stmdiag/internal/vm"
)

// cbiDemo fails (logged) exactly when branch ROOT takes its true edge.
const cbiDemo = `
.global n
.str msg "boom"
.func main
main:
    lea  r1, n
    ld   r2, [r1+0]
    movi r5, 0
loop:
.branch ITER
    cmpi r5, 20
    jge  after
    addi r5, 1
    jmp  loop
after:
.branch ROOT
    cmpi r2, 10
    jle  fine
    call error
fine:
    exit
.func error log
error:
    print msg
    fail 1
    ret
`

func collect(t *testing.T, prog *isa.Program, n int64, runs int, rate float64, seedBase int64) []RunObs {
	t.Helper()
	var out []RunObs
	for i := 0; i < runs; i++ {
		m, err := vm.New(prog, vm.Options{Seed: seedBase + int64(i), Globals: map[string]int64{"n": n}})
		if err != nil {
			t.Fatal(err)
		}
		o := NewObserver(rate, seedBase+int64(i)+9999)
		o.Attach(m)
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, o.Finish(res.Failed()))
	}
	return out
}

func prog(t *testing.T) *isa.Program {
	t.Helper()
	p, err := isa.Assemble("cbidemo", cbiDemo)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCBIFindsPredictorWithManyRuns(t *testing.T) {
	p := prog(t)
	runs := collect(t, p, 20, 400, DefaultRate, 1) // failing input
	runs = append(runs, collect(t, p, 5, 400, DefaultRate, 50_000)...)
	scores := Rank(runs)
	pos := RankOf(scores, func(pr Pred) bool { return pr.Branch == "ROOT" && pr.Edge == isa.EdgeTrue })
	if pos != 1 {
		t.Errorf("ROOT=true rank = %d, want 1; top: %+v", pos, scores[0])
	}
}

func TestCBIMissesPredicateWithFewRuns(t *testing.T) {
	// With 1/100 sampling and a predicate evaluated once per run, a
	// handful of runs almost never observes the root cause — the paper's
	// diagnosis-latency argument (§5.3, §7.2).
	p := prog(t)
	runs := collect(t, p, 20, 10, DefaultRate, 1)
	runs = append(runs, collect(t, p, 5, 10, DefaultRate, 60_000)...)
	scores := Rank(runs)
	pos := RankOf(scores, func(pr Pred) bool { return pr.Branch == "ROOT" && pr.Edge == isa.EdgeTrue })
	if pos == 1 {
		// Not impossible, just very unlikely (~10% per run to observe).
		t.Logf("CBI got lucky with 10 runs (rank %d)", pos)
	}
}

func TestSamplingRateRespected(t *testing.T) {
	p := prog(t)
	dense := collect(t, p, 20, 30, 1.0, 7) // sample everything
	sparse := collect(t, p, 20, 30, 0.001, 7)
	denseObs, sparseObs := 0, 0
	for _, r := range dense {
		denseObs += len(r.Observed)
	}
	for _, r := range sparse {
		sparseObs += len(r.Observed)
	}
	if denseObs <= sparseObs {
		t.Errorf("dense sampling observed %d <= sparse %d", denseObs, sparseObs)
	}
	// Rate 1.0 must observe both predicates of every executed branch.
	if len(dense[0].Observed) != 4 { // ITER and ROOT, two edges each
		t.Errorf("full sampling observed %d predicates, want 4", len(dense[0].Observed))
	}
}

func TestCBIOverheadCharged(t *testing.T) {
	p := prog(t)
	base, err := vm.Run(p, vm.Options{Seed: 1, Globals: map[string]int64{"n": 5}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(p, vm.Options{Seed: 1, Globals: map[string]int64{"n": 5}})
	if err != nil {
		t.Fatal(err)
	}
	o := NewObserver(DefaultRate, 2)
	o.Attach(m)
	inst, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if inst.Cycles <= base.Cycles {
		t.Errorf("instrumented cycles %d <= base %d", inst.Cycles, base.Cycles)
	}
	overhead := float64(inst.Cycles-base.Cycles) / float64(base.Cycles)
	if overhead < 0.01 || overhead > 1.0 {
		t.Errorf("CBI overhead = %.3f, want a noticeable double-digit-percent cost", overhead)
	}
}

func TestRankDegenerate(t *testing.T) {
	if got := Rank(nil); len(got) != 0 {
		t.Errorf("Rank(nil) = %v", got)
	}
	// Observed-only predicates (never true) score zero importance.
	runs := []RunObs{{
		Failed:   true,
		Observed: map[Pred]bool{{"B", isa.EdgeTrue}: true},
		True:     map[Pred]bool{},
	}}
	scores := Rank(runs)
	if len(scores) != 1 || scores[0].Importance != 0 {
		t.Errorf("scores = %+v", scores)
	}
	if RankOf(scores, func(Pred) bool { return true }) != 0 {
		t.Error("zero-importance predicate ranked")
	}
}
