package synth

import (
	"testing"
	"testing/quick"

	"stmdiag/internal/cfg"
	"stmdiag/internal/vm"
)

func TestGenerateAssemblesAndRuns(t *testing.T) {
	p, err := Generate("synth", Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(p, vm.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("synthetic program failed: %v", res.Failures)
	}
	if res.Steps == 0 {
		t.Error("no instructions retired")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate("a", Config{Seed: 7})
	b := MustGenerate("b", Config{Seed: 7})
	if len(a.Instrs) != len(b.Instrs) {
		t.Fatalf("same seed, different sizes: %d vs %d", len(a.Instrs), len(b.Instrs))
	}
	for i := range a.Instrs {
		if a.Instrs[i].Op != b.Instrs[i].Op || a.Instrs[i].Imm != b.Instrs[i].Imm {
			t.Fatalf("instr %d differs", i)
		}
	}
	c := MustGenerate("c", Config{Seed: 8})
	if len(a.Instrs) == len(c.Instrs) && len(a.Branches) == len(c.Branches) {
		t.Log("seeds 7 and 8 generated suspiciously similar programs (not fatal)")
	}
}

func TestGenerateHasLogSites(t *testing.T) {
	p := MustGenerate("t", Config{Seed: 3, Funcs: 10, StmtsPerFunc: 30, LogEvery: 5})
	sites := cfg.LogSites(p)
	if len(sites) < 20 {
		t.Errorf("only %d log sites generated", len(sites))
	}
	if len(p.Branches) < 30 {
		t.Errorf("only %d source branches generated", len(p.Branches))
	}
}

func TestGeneratedUsefulRatioInPaperBand(t *testing.T) {
	// The paper's Table 5 reports useful-branch ratios between 0.74 and
	// 0.98 across 13 applications; generated programs should land in a
	// similar (broad) band, demonstrating that realistic CFGs make most
	// LBR records non-inferable.
	p := MustGenerate("t", Config{Seed: 11, Funcs: 6, StmtsPerFunc: 24})
	a := cfg.NewAnalyzer(p)
	a.MaxPaths = 64
	rep := a.Analyze()
	if rep.LogSites == 0 {
		t.Fatal("no log sites")
	}
	if rep.Ratio < 0.4 || rep.Ratio > 1.0 {
		t.Errorf("useful ratio = %.3f, want within (0.4, 1.0]", rep.Ratio)
	}
}

// Property: every seed yields a program that assembles, validates and
// terminates cleanly.
func TestGenerateQuick(t *testing.T) {
	f := func(seed int64) bool {
		p, err := Generate("q", Config{Seed: seed, Funcs: 4, StmtsPerFunc: 10})
		if err != nil {
			return false
		}
		res, err := vm.Run(p, vm.Options{Seed: seed})
		return err == nil && !res.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: parallel generated programs produce schedule-independent
// output — the VM's mutexes and MESI coherence never lose an update,
// whatever the seed or worker count.
func TestParallelSynthQuick(t *testing.T) {
	f := func(seed int64, workersRaw, incrRaw uint8) bool {
		cfg := Config{
			Seed:                seed,
			Funcs:               3,
			StmtsPerFunc:        6,
			Workers:             int(workersRaw%6) + 2,
			IncrementsPerWorker: int(incrRaw%15) + 5,
		}
		p, err := Generate("par", cfg)
		if err != nil {
			return false
		}
		want := cfg.ExpectedOutput()
		res, err := vm.Run(p, vm.Options{Seed: seed * 31})
		if err != nil || res.Failed() {
			return false
		}
		if len(res.Output) < len(want) {
			return false
		}
		tail := res.Output[len(res.Output)-len(want):]
		for i := range want {
			if tail[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestParallelSynthExpectedOutput(t *testing.T) {
	cfg := Config{Seed: 1, Workers: 6, IncrementsPerWorker: 10}
	want := cfg.ExpectedOutput()
	// 6 workers over 4 counters: counters 0,1 get two workers each.
	if len(want) != 4 || want[0] != "20" || want[1] != "20" || want[2] != "10" || want[3] != "10" {
		t.Fatalf("ExpectedOutput = %v", want)
	}
	if got := (Config{Seed: 1}).ExpectedOutput(); got != nil {
		t.Errorf("single-threaded expected output = %v, want nil", got)
	}
}

func TestParallelSynthStress(t *testing.T) {
	// One heavier configuration across several schedules.
	cfg := Config{Seed: 9, Funcs: 4, StmtsPerFunc: 10, Workers: 8, IncrementsPerWorker: 40}
	p := MustGenerate("stress", cfg)
	want := cfg.ExpectedOutput()
	for seed := int64(0); seed < 10; seed++ {
		res, err := vm.Run(p, vm.Options{Seed: seed, QuantumMin: 1, QuantumMax: 9})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() {
			t.Fatalf("seed %d: %v", seed, res.Failures)
		}
		tail := res.Output[len(res.Output)-len(want):]
		for i := range want {
			if tail[i] != want[i] {
				t.Fatalf("seed %d: output tail %v, want %v", seed, tail, want)
			}
		}
	}
}
