package synth

import (
	"fmt"
	"math/rand"

	"stmdiag/internal/cache"
	"stmdiag/internal/isa"
)

// BugClass names the fault a generated buggy program plants — the four
// root-cause families of the paper's Table 4 benchmarks, reduced to their
// mechanism so the grammar can instantiate hundreds of each.
type BugClass uint8

const (
	// BugAtomicity is a WWR atomicity violation: a racing thread
	// overwrites a shared value between the victim's write and re-check
	// (the Mozilla-JS3 shape). Concurrent; diagnosed from the LCR.
	BugAtomicity BugClass = iota
	// BugOrder is an order violation: a consumer reads a shared value
	// before the producer thread publishes it. Concurrent; LCR.
	BugOrder
	// BugOverflow is an integer overflow: an unchecked big-input path
	// squares the request size, wraps int64, and stores out of bounds.
	// Sequential crash; diagnosed from the LBR.
	BugOverflow
	// BugDangling is a dangling/stale pointer: an early-release path
	// poisons a pointer cell that a later use dereferences. Sequential
	// crash; LBR.
	BugDangling
)

// String names the class the way Table 9 rows spell it.
func (c BugClass) String() string {
	switch c {
	case BugAtomicity:
		return "atomicity"
	case BugOrder:
		return "order"
	case BugOverflow:
		return "overflow"
	default:
		return "dangling"
	}
}

// Concurrent reports whether the class plants a concurrency bug (diagnosed
// in LCR mode) rather than a sequential one (LBR mode).
func (c BugClass) Concurrent() bool { return c == BugAtomicity || c == BugOrder }

// BugClasses lists every class in Table 9 row order.
func BugClasses() []BugClass {
	return []BugClass{BugAtomicity, BugOrder, BugOverflow, BugDangling}
}

// BugConfig shapes one generated buggy program.
type BugConfig struct {
	// Seed drives generation; equal configs generate equal programs.
	Seed int64
	// Class selects the planted fault.
	Class BugClass
	// Distance is the propagation distance: the number of padding basic
	// blocks between the root-cause instruction and the observable
	// failure site. Each block costs exactly one LBR entry (its noise
	// branch) and, for concurrent classes, one LCR entry (an exclusive
	// re-read of thread-warm state), so distances beyond the record depth
	// evict the root cause — the knob Table 9 sweeps. Capped at
	// MaxDistance.
	Distance int
}

// MaxDistance bounds the propagation distance: padding beyond this adds no
// information (the 16-entry records have long since evicted the root) and
// the pad lines must fit the warm global.
const MaxDistance = 24

// bugLine* are the fixed source lines the grammar plants its landmarks at;
// the manifest and tests refer to them through the Manifest fields.
const (
	bugLineSetup = 33 // a1 store / publish prime / input load / pointer init
	bugLineRoot  = 36 // root branch (sequential classes)
	bugLineRacy  = 40 // racy access (concurrent classes)
	bugLinePads  = 44 // first pad block; pad i sits at bugLinePads+i
	bugLineFailA = 80 // crash site part 1 (pointer fetch / index apply)
	bugLineFailB = 81 // crash site part 2 (the faulting access)
	bugLineCheck = 88 // value check branch (concurrent classes)
	bugLineCall  = 89 // call to the failure-logging function
)

// Manifest records the planted fault's ground truth, the reference Table 9
// grades rankings against.
type Manifest struct {
	// Class and Distance echo the config.
	Class    BugClass
	Distance int
	// RootPCs are the root-cause instruction PCs in Prog: the conditional
	// jump of the root branch (sequential classes) or the racy load
	// (concurrent classes).
	RootPCs []int
	// RootBranch and BuggyEdge identify the root-cause branch event a
	// sequential diagnosis must rank first.
	RootBranch string
	BuggyEdge  isa.BranchEdge
	// RootLoc locates the racy access, and FPEKind/FPEState the
	// failure-predicting coherence event, for concurrent classes.
	RootLoc  isa.SourceLoc
	FPEKind  cache.AccessKind
	FPEState cache.State
	// FailPC is the observable failure site in Prog's (original,
	// uninstrumented) coordinates: the faulting instruction for crash
	// classes, the failure-log call for error-message classes. Reactive
	// redeployment pairs its success site from this PC.
	FailPC int
}

// BugProgram is one generated buggy program with its ground truth and
// workload variants.
type BugProgram struct {
	// Prog is the assembled program.
	Prog *isa.Program
	// Manifest is the planted fault's ground truth.
	Manifest Manifest
	// Fail are workload global assignments that expose the fault
	// (deterministically for sequential classes, whenever the race lands
	// for concurrent ones). Drivers cycle them across failure runs.
	Fail []map[string]int64
	// Succeed are workload variants that never fail: at least one clean
	// path and one benign infection (the root-cause edge taken, or the
	// race landing, without a visible failure) so the root predictor's
	// precision stays below the trivial 1.0.
	Succeed []map[string]int64
	// NoiseGlobal names the global whose low bits steer the pad-block
	// branches; drivers vary it per run so control flow differs across
	// runs of the same workload.
	NoiseGlobal string
	// Concurrent mirrors Manifest.Class.Concurrent for convenience.
	Concurrent bool
}

// GenerateBug plants cfg.Class into a generated program. The result always
// assembles; its Fail workloads reach the failure site through Distance
// padding blocks, and its Succeed workloads always terminate cleanly.
func GenerateBug(name string, cfg BugConfig) (*BugProgram, error) {
	if cfg.Distance < 0 {
		return nil, fmt.Errorf("synth: negative propagation distance %d", cfg.Distance)
	}
	switch cfg.Class {
	case BugAtomicity, BugOrder, BugOverflow, BugDangling:
	default:
		return nil, fmt.Errorf("synth: unknown bug class %d", cfg.Class)
	}
	if cfg.Distance > MaxDistance {
		cfg.Distance = MaxDistance
	}
	g := &gen{
		cfg: Config{Funcs: 1, StmtsPerFunc: 8, LogEvery: 5},
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	g.cfg.StmtsPerFunc += g.rng.Intn(8)
	b := &bugGen{gen: g, cfg: cfg}
	src := b.source()
	p, err := isa.Assemble(name, src)
	if err != nil {
		return nil, fmt.Errorf("synth: generated %s program does not assemble: %w", cfg.Class, err)
	}
	bp := &BugProgram{
		Prog:        p,
		NoiseGlobal: "noise",
		Concurrent:  cfg.Class.Concurrent(),
	}
	if err := b.manifest(bp); err != nil {
		return nil, err
	}
	return bp, nil
}

// MustGenerateBug is GenerateBug panicking on error, for benchmarks.
func MustGenerateBug(name string, cfg BugConfig) *BugProgram {
	bp, err := GenerateBug(name, cfg)
	if err != nil {
		panic(err)
	}
	return bp
}

// bugGen emits one buggy program around the correct-program generator's
// background machinery (gen.fn provides branch-and-log-site noise ahead of
// the bug region).
type bugGen struct {
	*gen
	cfg BugConfig
}

func (b *bugGen) source() string {
	file := fmt.Sprintf("bug_%s.c", b.cfg.Class)
	b.line(".file %s", file)
	b.line(".str msg %q", "synthetic log message")
	b.line(".str bugmsg %q", fmt.Sprintf("%s invariant violated", b.cfg.Class))
	b.line(".global state 16")
	b.line(".global noise 8")
	switch b.cfg.Class {
	case BugAtomicity:
		b.line(".global warm %d", MaxDistance)
		b.line(".global avshared 8")
		b.line(".global avremote 8")
	case BugOrder:
		b.line(".global warm %d", MaxDistance)
		b.line(".global ordshared 8")
	case BugOverflow:
		b.line(".global nval 8")
		b.line(".global arr 128")
	case BugDangling:
		b.line(".global dpmode 8")
		b.line(".global dpsent 8")
		b.line(".global dpbuf 8")
		b.line(".global dpcell 8")
	}

	b.line(".func main")
	b.line("main:")
	b.line(".line 20")
	b.line("    lea  r7, state")
	b.line("    lea  r8, noise")
	b.line("    ld   r9, [r8+0]          ; per-run pad-branch steering bits")
	if b.cfg.Class.Concurrent() {
		// Warm the pad lines so later consults observe E — the state
		// Conf2 records, the mechanism that pushes the root cause deeper
		// into the ring with every pad block.
		b.line("    lea  r14, warm")
		b.line("    ld   r15, [r14+0]")
		b.line("    ld   r15, [r14+8]")
		b.line("    ld   r15, [r14+16]")
	}
	b.line("    call f0")
	switch b.cfg.Class {
	case BugAtomicity:
		b.atomicity()
	case BugOrder:
		b.order()
	case BugOverflow:
		b.overflow()
	case BugDangling:
		b.dangling()
	}

	if b.cfg.Class.Concurrent() {
		b.line(".func errfn log")
		b.line("errfn:")
		b.line(".line 95")
		b.line("    print bugmsg")
		b.line("    fail 1")
		b.line("    ret")
	}

	b.fn(0) // background noise: branches, state traffic, guarded log calls

	b.line(".func report log")
	b.line("report:")
	b.line(".line 98")
	b.line("    print msg")
	b.line("    ret")
	return b.b.String()
}

// pads emits the propagation-distance padding: Distance basic blocks, each
// one noise-steered source branch (exactly one LBR entry whichever edge is
// taken — the taken conditional or its synthetic fall-through jump) plus,
// for concurrent classes, one exclusive re-read of a warm line (exactly
// one Conf2 LCR entry).
func (b *bugGen) pads() {
	for i := 0; i < b.cfg.Distance; i++ {
		skip := fmt.Sprintf("padskip_%d", i)
		b.line(".line %d", bugLinePads+i)
		b.line("    mov  r8, r9")
		b.line("    andi r8, %d", int64(1)<<uint(i%8))
		if b.cfg.Class.Concurrent() {
			b.line("    ld   r15, [r14+%d]", i)
		}
		b.line(".branch pad_%d", i)
		b.line("    cmpi r8, 0")
		b.line("    je   %s", skip)
		b.line("    addi r8, 1")
		b.line("%s:", skip)
	}
}

// atomicity emits the WWR shape: main writes the shared cell (a1), an
// intruder thread overwrites it mid-window (a3), and main's re-check (a2)
// reads a remotely-written — invalid — line. The failure is a logged error
// when the check sees the destroyed value; the root cause is a2's load.
func (b *bugGen) atomicity() {
	dm := 50 + b.rng.Intn(12)
	di := 30 + b.rng.Intn(8)
	b.line(".line %d", bugLineSetup)
	b.line("    lea  r11, avshared")
	b.line("    movi r12, 1")
	b.line("    st   [r11+0], r12        ; a1: publish the table")
	b.line("    movi r13, 0")
	b.line("    spawn intruder, r13")
	b.line("    delay %d                 ; fill work; the intruder races in", dm)
	b.line(".line %d", bugLineRacy)
	b.line("    ld   r13, [r11+0]        ; a2: racy re-check (invalid when raced)")
	b.pads()
	b.line(".line %d", bugLineCheck)
	b.line(".branch av_check")
	b.line("    cmpi r13, 1")
	b.line("    je   av_ok")
	b.line(".line %d", bugLineCall)
	b.line("    call errfn")
	b.line("av_ok:")
	b.line("    join")
	b.line("    exit")

	b.line(".func intruder")
	b.line("intruder:")
	b.line("    delay %d", di)
	b.line(".line 70")
	b.line("    lea  r1, avshared")
	b.line("    lea  r2, avremote")
	b.line("    ld   r3, [r2+0]")
	b.line("    st   [r1+0], r3          ; a3: remote overwrite (0 destroys, 1 is benign)")
	b.line("    halt")
}

// order emits the read-too-early shape: main primes the shared line, a
// producer thread publishes into it, and main's consume reads either the
// stale exclusive line (too early — the bug) or the invalidated published
// one. The root cause is the consuming load observing E.
func (b *bugGen) order() {
	dm := 40 + b.rng.Intn(10)
	dp := 26 + b.rng.Intn(8)
	b.line(".line %d", bugLineSetup)
	b.line("    lea  r11, ordshared")
	b.line("    ld   r13, [r11+0]        ; early consult primes the line (E afterwards)")
	b.line("    movi r12, 0")
	b.line("    spawn producer, r12")
	b.line("    delay %d                 ; consumer work; the producer publishes in here", dm)
	b.line(".line %d", bugLineRacy)
	b.line("    ld   r13, [r11+0]        ; consume: exclusive when read too early")
	b.pads()
	b.line(".line %d", bugLineCheck)
	b.line(".branch ord_check")
	b.line("    cmpi r13, 7")
	b.line("    je   ord_ok")
	b.line(".line %d", bugLineCall)
	b.line("    call errfn")
	b.line("ord_ok:")
	b.line("    join")
	b.line("    exit")

	b.line(".func producer")
	b.line("producer:")
	b.line("    delay %d", dp)
	b.line(".line 70")
	b.line("    lea  r1, ordshared")
	b.line("    movi r2, 7")
	b.line("    st   [r1+0], r2          ; publish")
	b.line("    halt")
}

// overflow emits the integer-overflow shape: requests of 8 and above take
// the unchecked big-table path that squares the request size; a huge
// request wraps int64 and the table store lands far out of bounds. The
// root cause is the size-check branch taking its true (big-path) edge.
func (b *bugGen) overflow() {
	b.line(".line %d", bugLineSetup)
	b.line("    lea  r11, nval")
	b.line("    ld   r12, [r11+0]        ; request size")
	b.line(".line %d", bugLineRoot)
	b.line(".branch ovf_guard true")
	b.line("    cmpi r12, 8")
	b.line("    jge  ovf_big             ; big requests: unchecked squared slot")
	b.line("    mov  r13, r12            ; small requests: slot = n")
	b.line("    jmp  ovf_join")
	b.line("ovf_big:")
	b.line("    mov  r13, r12")
	b.line("    mul  r13, r12            ; slot = n*n — wraps int64 for huge n")
	b.line("ovf_join:")
	b.pads()
	b.line(".line %d", bugLineFailA)
	b.line("    lea  r14, arr")
	b.line("    add  r14, r13")
	b.line(".line %d", bugLineFailB)
	b.line("    st   [r14+0], r12        ; arr[slot] = n — faults when wrapped")
	b.line("    exit")
}

// dangling emits the stale-pointer shape: lifecycle mode 1 releases the
// buffer early, overwriting the pointer cell with whatever the release
// left behind (a garbage sentinel in failing workloads, the buffer's own
// address — a benign realloc-in-place — in the infected success variant).
// The later use dereferences the cell. The root cause is the release
// branch taking its true edge.
func (b *bugGen) dangling() {
	b.line(".line %d", bugLineSetup)
	b.line("    lea  r10, dpcell")
	b.line("    lea  r13, dpbuf")
	b.line("    st   [r10+0], r13        ; cell = &buf")
	b.line("    lea  r12, dpmode")
	b.line("    ld   r12, [r12+0]")
	b.line(".line %d", bugLineRoot)
	b.line(".branch dp_free true")
	b.line("    cmpi r12, 1")
	b.line("    je   dp_dofree           ; mode 1: release the buffer early")
	b.line("    jmp  dp_keep")
	b.line("dp_dofree:")
	b.line("    lea  r13, dpsent")
	b.line("    ld   r13, [r13+0]")
	b.line("    st   [r10+0], r13        ; cell = stale value the release left")
	b.line("dp_keep:")
	b.pads()
	b.line(".line %d", bugLineFailA)
	b.line("    ld   r15, [r10+0]")
	b.line(".line %d", bugLineFailB)
	b.line("    ld   r15, [r15+0]        ; use: faults while the cell is stale")
	b.line("    exit")
}

// danglingSentinel is the garbage a failing release leaves in the pointer
// cell: far below GlobalBase, so dereferencing it always faults.
const danglingSentinel = -524289

// manifest locates the planted landmarks in the assembled program and
// fills the ground truth and workload variants.
func (b *bugGen) manifest(bp *BugProgram) error {
	p := bp.Prog
	m := &bp.Manifest
	m.Class = b.cfg.Class
	m.Distance = b.cfg.Distance
	file := fmt.Sprintf("bug_%s.c", b.cfg.Class)

	pcOf := func(line int, op isa.Op) (int, error) {
		for pc := range p.Instrs {
			in := &p.Instrs[pc]
			if !in.Synthetic && in.Op == op && in.Loc.File == file && in.Loc.Line == line {
				return pc, nil
			}
		}
		return 0, fmt.Errorf("synth: %s: no %s at %s:%d", b.cfg.Class, op, file, line)
	}
	branchCond := func(name string) (int, error) {
		for pc := range p.Instrs {
			in := &p.Instrs[pc]
			if in.BranchID != isa.NoBranch && !in.Synthetic && p.BranchName(in.BranchID) == name {
				return pc, nil
			}
		}
		return 0, fmt.Errorf("synth: %s: no conditional for branch %q", b.cfg.Class, name)
	}

	switch b.cfg.Class {
	case BugAtomicity, BugOrder:
		racy, err := pcOf(bugLineRacy, isa.OpLd)
		if err != nil {
			return err
		}
		failPC, err := pcOf(bugLineCall, isa.OpCall)
		if err != nil {
			return err
		}
		m.RootPCs = []int{racy}
		m.RootLoc = p.Instrs[racy].Loc
		m.FPEKind = cache.Load
		m.FailPC = failPC
		if b.cfg.Class == BugAtomicity {
			// A raced re-check reads a remotely-written line: invalid.
			m.FPEState = cache.Invalid
			bp.Fail = []map[string]int64{{"avremote": 0}}
			bp.Succeed = []map[string]int64{{"avremote": 1}}
		} else {
			// A too-early consume re-reads its own primed line: exclusive.
			m.FPEState = cache.Exclusive
			bp.Fail = []map[string]int64{{"ordshared": 0}}
			bp.Succeed = []map[string]int64{{"ordshared": 7}}
		}
	case BugOverflow:
		root, err := branchCond("ovf_guard")
		if err != nil {
			return err
		}
		failPC, err := pcOf(bugLineFailB, isa.OpSt)
		if err != nil {
			return err
		}
		m.RootPCs = []int{root}
		m.RootBranch = "ovf_guard"
		m.BuggyEdge = isa.EdgeTrue
		m.RootLoc = p.Instrs[root].Loc
		m.FailPC = failPC
		bp.Fail = []map[string]int64{{"nval": 3_100_000_000}}
		bp.Succeed = []map[string]int64{
			{"nval": 3}, // clean: the checked small path
			{"nval": 9}, // benign infection: big path, slot 81 in bounds
		}
	case BugDangling:
		root, err := branchCond("dp_free")
		if err != nil {
			return err
		}
		failPC, err := pcOf(bugLineFailB, isa.OpLd)
		if err != nil {
			return err
		}
		buf := p.GlobalByName("dpbuf")
		if buf == nil {
			return fmt.Errorf("synth: dangling: dpbuf global missing")
		}
		m.RootPCs = []int{root}
		m.RootBranch = "dp_free"
		m.BuggyEdge = isa.EdgeTrue
		m.RootLoc = p.Instrs[root].Loc
		m.FailPC = failPC
		bp.Fail = []map[string]int64{{"dpmode": 1, "dpsent": danglingSentinel}}
		bp.Succeed = []map[string]int64{
			{"dpmode": 0, "dpsent": danglingSentinel}, // clean: never released
			{"dpmode": 1, "dpsent": buf.Addr},         // benign: realloc in place
		}
	}
	return nil
}
