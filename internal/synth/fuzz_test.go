package synth

import (
	"testing"

	"stmdiag/internal/kernel"
	"stmdiag/internal/vm"
)

// FuzzSynthBug throws arbitrary (seed, class, distance) configurations at
// the bug generator and checks its whole-output contract: the program
// assembles, the manifest's root-cause PCs are real (non-synthetic)
// instructions at the recorded location, a failure workload executes
// without VM errors, and every success workload terminates cleanly — for
// any configuration, not just the corpus grid.
func FuzzSynthBug(f *testing.F) {
	f.Add(int64(7), uint8(0), uint8(2))
	f.Add(int64(1), uint8(1), uint8(0))
	f.Add(int64(42), uint8(2), uint8(14))
	f.Add(int64(99), uint8(3), uint8(24))
	f.Fuzz(func(t *testing.T, seed int64, classByte, distByte uint8) {
		cfg := BugConfig{
			Seed:     seed,
			Class:    BugClass(classByte % 4),
			Distance: int(distByte) % (MaxDistance + 1),
		}
		bp, err := GenerateBug("fuzz", cfg)
		if err != nil {
			t.Fatalf("config %+v rejected: %v", cfg, err)
		}
		m := bp.Manifest
		for _, pc := range m.RootPCs {
			if pc < 0 || pc >= len(bp.Prog.Instrs) {
				t.Fatalf("root PC %d out of range [0,%d)", pc, len(bp.Prog.Instrs))
			}
			in := bp.Prog.Instrs[pc]
			if in.Synthetic {
				t.Fatalf("root PC %d is synthetic", pc)
			}
			if in.Loc != m.RootLoc {
				t.Fatalf("root PC %d at %v, manifest says %v", pc, in.Loc, m.RootLoc)
			}
		}
		if m.FailPC < 0 || m.FailPC >= len(bp.Prog.Instrs) {
			t.Fatalf("failure PC %d out of range [0,%d)", m.FailPC, len(bp.Prog.Instrs))
		}
		run := func(variant map[string]int64, noise int64) *vm.Result {
			globals := make(map[string]int64, len(variant)+1)
			for k, v := range variant {
				globals[k] = v
			}
			globals[bp.NoiseGlobal] = noise
			res, err := vm.Run(bp.Prog, vm.Options{Seed: seed, Driver: kernel.Driver{}, Globals: globals})
			if err != nil {
				t.Fatalf("variant %v: %v", variant, err)
			}
			return res
		}
		res := run(bp.Fail[0], seed*37)
		if !bp.Concurrent && !res.Failed() {
			t.Fatalf("sequential %s failure workload did not fail", m.Class)
		}
		for _, variant := range bp.Succeed {
			if r := run(variant, seed*53); r.Failed() {
				t.Fatalf("success workload %v failed: %v", variant, r.Failures[0])
			}
		}
	})
}
