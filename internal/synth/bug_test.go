package synth

import (
	"fmt"
	"reflect"
	"testing"

	"stmdiag/internal/kernel"
	"stmdiag/internal/replay"
	"stmdiag/internal/vm"
)

// bugRun executes one workload variant of a generated buggy program.
func bugRun(t *testing.T, bp *BugProgram, variant map[string]int64, noise, seed int64) *vm.Result {
	t.Helper()
	globals := make(map[string]int64, len(variant)+1)
	for k, v := range variant {
		globals[k] = v
	}
	globals[bp.NoiseGlobal] = noise
	res, err := vm.Run(bp.Prog, vm.Options{Seed: seed, Driver: kernel.Driver{}, Globals: globals})
	if err != nil {
		t.Fatalf("%s: %v", bp.Manifest.Class, err)
	}
	return res
}

// TestGenerateBugDeterministic: the generator is a pure function of its
// config — same (seed, class, distance), same program and manifest. The
// corpus driver's jobs-invariance rests on this.
func TestGenerateBugDeterministic(t *testing.T) {
	for _, class := range BugClasses() {
		cfg := BugConfig{Seed: 11, Class: class, Distance: 9}
		a := MustGenerateBug("det", cfg)
		b := MustGenerateBug("det", cfg)
		if !reflect.DeepEqual(a.Manifest, b.Manifest) {
			t.Errorf("%s: manifests differ:\n%+v\n%+v", class, a.Manifest, b.Manifest)
		}
		if got, want := fmt.Sprint(a.Prog.Instrs), fmt.Sprint(b.Prog.Instrs); got != want {
			t.Errorf("%s: generated programs differ", class)
		}
	}
}

// TestGenerateBugRejectsBadConfig pins the config validation.
func TestGenerateBugRejectsBadConfig(t *testing.T) {
	if _, err := GenerateBug("bad", BugConfig{Class: BugOverflow, Distance: -1}); err == nil {
		t.Error("negative distance accepted")
	}
	if _, err := GenerateBug("bad", BugConfig{Class: BugClass(99)}); err == nil {
		t.Error("unknown class accepted")
	}
}

// TestBugWorkloads: across every class and the corpus distance range, the
// failure workloads actually fail (deterministically for the sequential
// classes, with usable probability for the races) and the success
// workloads never fail — the ground-truth split Table 9 builds on.
func TestBugWorkloads(t *testing.T) {
	const trials = 20
	for _, class := range BugClasses() {
		for _, d := range []int{0, 2, 14, MaxDistance} {
			bp := MustGenerateBug("wl", BugConfig{Seed: 5, Class: class, Distance: d})
			nf := 0
			for seed := int64(0); seed < trials; seed++ {
				if bugRun(t, bp, bp.Fail[seed%int64(len(bp.Fail))], seed*37, seed).Failed() {
					nf++
				}
			}
			minFail := trials // sequential classes fail on every run
			if bp.Concurrent {
				minFail = 1 // races are probabilistic, but must be plantable
			}
			if nf < minFail {
				t.Errorf("%s d=%d: fail workload failed %d/%d runs, want >= %d",
					class, d, nf, trials, minFail)
			}
			for seed := int64(0); seed < trials; seed++ {
				variant := bp.Succeed[seed%int64(len(bp.Succeed))]
				if res := bugRun(t, bp, variant, seed*53, seed); res.Failed() {
					t.Fatalf("%s d=%d: success workload %v failed: %v",
						class, d, variant, res.Failures[0])
				}
			}
		}
	}
}

// TestBugManifestResolves: every manifest field points at real generated
// code — root PCs are in-range, non-synthetic instructions matching the
// recorded source location, and the failure PC is a real instruction.
func TestBugManifestResolves(t *testing.T) {
	for _, class := range BugClasses() {
		for _, d := range []int{2, 8, 20} {
			bp := MustGenerateBug("man", BugConfig{Seed: 3, Class: class, Distance: d})
			m := bp.Manifest
			if m.Class != class || m.Distance != d {
				t.Fatalf("manifest coordinates %v/%d, want %v/%d", m.Class, m.Distance, class, d)
			}
			if len(m.RootPCs) == 0 {
				t.Fatalf("%s d=%d: no root PCs", class, d)
			}
			for _, pc := range m.RootPCs {
				if pc < 0 || pc >= len(bp.Prog.Instrs) {
					t.Fatalf("%s d=%d: root PC %d out of range", class, d, pc)
				}
				in := bp.Prog.Instrs[pc]
				if in.Synthetic {
					t.Errorf("%s d=%d: root PC %d is a synthetic instruction", class, d, pc)
				}
				if in.Loc != m.RootLoc {
					t.Errorf("%s d=%d: root PC %d at %v, manifest says %v", class, d, pc, in.Loc, m.RootLoc)
				}
			}
			if m.FailPC < 0 || m.FailPC >= len(bp.Prog.Instrs) {
				t.Fatalf("%s d=%d: failure PC %d out of range", class, d, m.FailPC)
			}
			if bp.Concurrent != class.Concurrent() {
				t.Errorf("%s: Concurrent = %v", class, bp.Concurrent)
			}
			if class.Concurrent() {
				if m.RootBranch != "" {
					t.Errorf("%s: concurrent manifest names a root branch %q", class, m.RootBranch)
				}
			} else {
				if m.RootBranch == "" {
					t.Errorf("%s: sequential manifest has no root branch", class)
				}
				if bp.Prog.GlobalByName("noise") == nil {
					t.Errorf("%s: noise global missing", class)
				}
			}
		}
	}
}

// TestBugSignatureRoundTrip: for one captured failure per bug class, the
// recorded schedule log replays to the same failure — the paper's
// "reproduction from the failure signature" loop (§6) applied to the
// generated corpus. The replayed run must fail at the identical PC with
// the identical failure kind.
func TestBugSignatureRoundTrip(t *testing.T) {
	for _, class := range BugClasses() {
		bp := MustGenerateBug("rt", BugConfig{Seed: 9, Class: class, Distance: 6})
		var rec *vm.Result
		var log *replay.Log
		for seed := int64(0); seed < 100 && rec == nil; seed++ {
			globals := make(map[string]int64, len(bp.Fail[0])+1)
			for k, v := range bp.Fail[0] {
				globals[k] = v
			}
			globals[bp.NoiseGlobal] = seed * 41
			res, l, err := replay.Record(bp.Prog, vm.Options{
				Seed: seed, Driver: kernel.Driver{}, Globals: globals,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed() {
				rec, log = res, l
			}
		}
		if rec == nil {
			t.Fatalf("%s: no failing run in 100 record attempts", class)
		}
		rep, err := replay.Replay(bp.Prog, log, vm.Options{Driver: kernel.Driver{}})
		if err != nil {
			t.Fatalf("%s: replay: %v", class, err)
		}
		if !rep.Failed() {
			t.Fatalf("%s: recorded failure did not reproduce", class)
		}
		got, want := rep.Failures[0], rec.Failures[0]
		if got.PC != want.PC || got.Kind != want.Kind {
			t.Errorf("%s: replayed failure %v@%d, recorded %v@%d",
				class, got.Kind, got.PC, want.Kind, want.PC)
		}
	}
}

// BenchmarkSynthBug measures bug-grammar generation throughput — the cost
// Table 9 pays per corpus program before any run starts. Configurations
// cycle over every class and the full distance range so the figure
// averages the grammar, not one shape.
func BenchmarkSynthBug(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MustGenerateBug("bench", BugConfig{
			Seed:     int64(i),
			Class:    BugClass(i % 4),
			Distance: (i * 7) % (MaxDistance + 1),
		})
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "programs/sec")
}
