// Package synth procedurally generates VM programs: correct ones at scale,
// and — via the bug grammar in bug.go — programs with a seeded fault of a
// chosen class and ground-truth manifest.
//
// The correct-program generator (Generate) serves the paper's Table 5
// scale dimension: its useful-branch-ratio analysis covers 6945 logging
// points across 13 real applications, and the re-authored benchmarks in
// internal/apps are necessarily small, so synth produces programs with
// hundreds of logging sites whose CFG statistics internal/cfg can analyze
// and whose execution stresses the instrumentation overhead accounting.
//
// The bug grammar (GenerateBug) plants one fault — an atomicity violation,
// order violation, integer overflow, or dangling/stale pointer — into an
// otherwise-correct generated program, with a configurable propagation
// distance (padding basic blocks between the root-cause instruction and
// the observable failure site) and a Manifest recording the ground-truth
// root-cause PCs. Table 9 (internal/harness) sweeps that corpus to compare
// ranking formulas against known root causes.
package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"stmdiag/internal/isa"
)

// Config shapes the generated program.
type Config struct {
	// Seed drives generation; equal seeds generate equal programs.
	Seed int64
	// Funcs is the number of worker functions (beyond main and the
	// logging function). 0 means 8.
	Funcs int
	// StmtsPerFunc is the statement budget per function. 0 means 20.
	StmtsPerFunc int
	// LogEvery makes roughly every n-th statement a failure-logging call.
	// 0 means 6.
	LogEvery int
	// Workers spawns that many threads, each performing mutex-protected
	// increments on a shared counter array interleaved with private
	// compute. The main thread joins and prints every counter, so a run's
	// output is schedule-independent exactly when the VM's mutexes and
	// cache coherence are correct — the property the stress tests check.
	Workers int
	// IncrementsPerWorker is each worker's protected-increment count
	// (default 20 when Workers > 0).
	IncrementsPerWorker int
}

func (c Config) withDefaults() Config {
	if c.Funcs == 0 {
		c.Funcs = 8
	}
	if c.StmtsPerFunc == 0 {
		c.StmtsPerFunc = 20
	}
	if c.LogEvery == 0 {
		c.LogEvery = 6
	}
	if c.Workers > 0 && c.IncrementsPerWorker == 0 {
		c.IncrementsPerWorker = 20
	}
	return c
}

// ExpectedOutput returns the tail of the output a correct run of the
// generated program must produce: the four shared counters printed after
// all workers join (log messages may precede them). It is empty for
// single-threaded configurations.
func (c Config) ExpectedOutput() []string {
	c = c.withDefaults()
	if c.Workers == 0 {
		return nil
	}
	out := make([]string, 4)
	perCounter := make([]int, 4)
	for w := 0; w < c.Workers; w++ {
		perCounter[w%4] += c.IncrementsPerWorker
	}
	for i, n := range perCounter {
		out[i] = itoa(n)
	}
	return out
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

// Generate produces a program. The program always terminates when run
// (loops are bounded counters, the call graph is acyclic) and never fails
// (its logging function prints but does not raise a failure), so it can be
// executed for overhead measurements as well as analyzed statically.
func Generate(name string, cfg Config) (*isa.Program, error) {
	cfg = cfg.withDefaults()
	g := &gen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	src := g.source()
	p, err := isa.Assemble(name, src)
	if err != nil {
		return nil, fmt.Errorf("synth: generated program does not assemble: %w", err)
	}
	return p, nil
}

// MustGenerate is Generate panicking on error, for benchmarks.
func MustGenerate(name string, cfg Config) *isa.Program {
	p, err := Generate(name, cfg)
	if err != nil {
		panic(err)
	}
	return p
}

type gen struct {
	cfg    Config
	rng    *rand.Rand
	b      strings.Builder
	labels int
	branch int
	stmts  int // statements since the last log call
}

func (g *gen) label(prefix string) string {
	g.labels++
	return fmt.Sprintf("%s_%d", prefix, g.labels)
}

func (g *gen) nextBranch() string {
	g.branch++
	return fmt.Sprintf("B%d", g.branch)
}

func (g *gen) line(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

func (g *gen) source() string {
	g.line(".file synth.c")
	g.line(".str msg %q", "synthetic log message")
	g.line(".global state 16")

	if g.cfg.Workers > 0 {
		g.line(".global counters 32")
	}
	g.line(".func main")
	g.line("main:")
	g.line("    lea r7, state")
	for w := 0; w < g.cfg.Workers; w++ {
		g.line("    movi r9, %d", w)
		g.line("    spawn worker, r9")
	}
	for i := 0; i < g.cfg.Funcs; i++ {
		g.line("    call f%d", i)
	}
	if g.cfg.Workers > 0 {
		g.line("    join")
		g.line("    lea r8, counters")
		for i := 0; i < 4; i++ {
			g.line("    ld r9, [r8+%d]", i*8)
			g.line("    out r9")
		}
	}
	g.line("    exit")
	if g.cfg.Workers > 0 {
		g.worker()
	}

	for i := 0; i < g.cfg.Funcs; i++ {
		g.fn(i)
	}

	g.line(".func report log")
	g.line("report:")
	g.line("    print msg")
	g.line("    ret")
	return g.b.String()
}

// worker emits the parallel section: each worker thread performs
// mutex-protected increments on its shared counter (one 64-byte block per
// counter, so the four counters bounce between caches independently) with
// private compute in between.
func (g *gen) worker() {
	g.line(".func worker")
	g.line("worker:")
	g.line("    mov  r1, r0")
	g.line("    andi r1, 3")
	g.line("    mov  r2, r1")
	g.line("    muli r2, 8")
	g.line("    lea  r3, counters")
	g.line("    add  r3, r2")
	g.line("    movi r4, 100")
	g.line("    add  r4, r1")
	g.line("    movi r5, 0")
	g.line("wkr_loop:")
	g.line(".branch wk_worker")
	g.line("    cmpi r5, %d", g.cfg.IncrementsPerWorker)
	g.line("    jge  wkr_done")
	g.line("    lock r4")
	g.line("    ld   r6, [r3+0]")
	g.line("    addi r6, 1")
	g.line("    st   [r3+0], r6")
	g.line("    unlock r4")
	g.line("    delay 3")
	g.line("    addi r5, 1")
	g.line("    jmp  wkr_loop")
	g.line("wkr_done:")
	g.line("    halt")
}

func (g *gen) fn(i int) {
	g.line(".func f%d", i)
	g.line(".line %d", 10*(i+1))
	g.line("f%d:", i)
	g.line("    movi r1, %d", g.rng.Intn(20))
	g.line("    movi r2, %d", g.rng.Intn(20))
	for s := 0; s < g.cfg.StmtsPerFunc; s++ {
		g.stmt(i)
	}
	g.line("    ret")
}

func (g *gen) stmt(fn int) {
	g.stmts++
	if g.stmts >= g.cfg.LogEvery {
		g.stmts = 0
		// A guarded logging call: the classic "if (bad) log(...)" shape of
		// paper Figure 8.
		skip := g.label("nolog")
		g.line(".branch %s", g.nextBranch())
		g.line("    cmpi r1, %d", g.rng.Intn(25))
		g.line("    jge %s", skip)
		g.line("    call report")
		g.line("%s:", skip)
		return
	}
	switch g.rng.Intn(5) {
	case 0: // arithmetic
		ops := []string{"addi", "subi", "muli"}
		g.line("    %s r%d, %d", ops[g.rng.Intn(len(ops))], 1+g.rng.Intn(3), 1+g.rng.Intn(9))
	case 1: // memory traffic on the shared state
		idx := g.rng.Intn(16)
		if g.rng.Intn(2) == 0 {
			g.line("    ld r4, [r7+%d]", idx)
		} else {
			g.line("    st [r7+%d], r2", idx)
		}
	case 2: // if/else diamond
		elseL, endL := g.label("else"), g.label("end")
		g.line(".branch %s", g.nextBranch())
		g.line("    cmpi r2, %d", g.rng.Intn(25))
		g.line("    jl %s", elseL)
		g.line("    addi r1, 1")
		g.line("    jmp %s", endL)
		g.line("%s:", elseL)
		g.line("    subi r1, 1")
		g.line("%s:", endL)
	case 3: // bounded loop
		top, done := g.label("loop"), g.label("done")
		n := 1 + g.rng.Intn(4)
		g.line("    movi r5, %d", n)
		g.line("%s:", top)
		g.line(".branch %s", g.nextBranch())
		g.line("    cmpi r5, 0")
		g.line("    jle %s", done)
		g.line("    subi r5, 1")
		g.line("    add  r2, r5")
		g.line("    jmp %s", top)
		g.line("%s:", done)
	case 4: // acyclic cross-function call
		if fn+1 < g.cfg.Funcs && g.rng.Intn(3) == 0 {
			g.line("    call f%d", fn+1+g.rng.Intn(g.cfg.Funcs-fn-1))
		} else {
			g.line("    addi r3, 1")
		}
	}
}
