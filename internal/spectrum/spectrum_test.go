package spectrum

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"stmdiag/internal/stats"
)

// runsFromSpec decodes a compact byte spec into a run set over small string
// events: each byte contributes one run whose failure bit is bit 7 and
// whose event set is the low 5 bits (event i present when bit i is set).
// Shared with the property tests so permutations of the same spec denote
// permutations of the same run multiset.
func runsFromSpec(spec []byte) []stats.Run[string] {
	runs := make([]stats.Run[string], 0, len(spec))
	for _, b := range spec {
		r := stats.Run[string]{Failed: b&0x80 != 0}
		for i := 0; i < 5; i++ {
			if b&(1<<i) != 0 {
				r.Events = append(r.Events, fmt.Sprintf("e%d", i))
			}
		}
		runs = append(runs, r)
	}
	return runs
}

func TestFormulaString(t *testing.T) {
	if Ochiai.String() != "ochiai" || Tarantula.String() != "tarantula" {
		t.Fatalf("formula names: %q %q", Ochiai, Tarantula)
	}
}

// TestScoreKnownValues pins both formulas to hand-computed points.
func TestScoreKnownValues(t *testing.T) {
	cases := []struct {
		f              Formula
		ef, ep, nf, np int
		want           float64
	}{
		{Ochiai, 4, 0, 4, 4, 1},            // perfect predictor
		{Ochiai, 2, 2, 4, 4, 0.5},          // 2/sqrt(4*4)
		{Ochiai, 0, 3, 4, 4, 0},            // never in a failing run
		{Ochiai, 1, 0, 4, 0, 0.5},          // 1/sqrt(4*1)
		{Tarantula, 4, 0, 4, 4, 1},         // fr=1, pr=0
		{Tarantula, 2, 2, 4, 4, 0.5},       // fr=0.5, pr=0.5
		{Tarantula, 0, 3, 4, 4, 0},         // fr=0
		{Tarantula, 2, 1, 4, 4, 2.0 / 3.0}, // 0.5/(0.5+0.25)
		{Tarantula, 1, 0, 4, 0, 1},         // no success runs: pr=0
	}
	for _, c := range cases {
		got := c.f.Score(c.ef, c.ep, c.nf, c.np)
		if diff := got - c.want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("%s.Score(%d,%d,%d,%d) = %v, want %v", c.f, c.ef, c.ep, c.nf, c.np, got, c.want)
		}
	}
}

// TestScoreBounded: both formulas stay in [0, 1] and return 0 for events
// absent from every failing run, for any consistent counter combination
// (an event cannot appear in more failing/successful runs than exist).
func TestScoreBounded(t *testing.T) {
	check := func(ef, ep, nfExtra, npExtra uint8) bool {
		f, p := int(ef%16), int(ep%16)
		nf, np := f+int(nfExtra%16), p+int(npExtra%16)
		for _, formula := range []Formula{Ochiai, Tarantula} {
			s := formula.Score(f, p, nf, np)
			if s < 0 || s > 1+1e-12 {
				return false
			}
			if f == 0 && s != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestScoreMonotoneInFailureCorrelation mirrors the stats order tests'
// monotonicity contract: with the other counters held fixed, more failing
// occurrences never lower a score and more successful occurrences never
// raise it.
func TestScoreMonotoneInFailureCorrelation(t *testing.T) {
	check := func(ef, ep, nf, np uint8) bool {
		f, p := int(ef%10), int(ep%10)
		tf, tp := int(nf%10)+f+1, int(np%10)+p+1
		for _, formula := range []Formula{Ochiai, Tarantula} {
			if f+1 <= tf && formula.Score(f+1, p, tf, tp) < formula.Score(f, p, tf, tp)-1e-12 {
				return false
			}
			if formula.Score(f, p+1, tf, tp+1) > formula.Score(f, p, tf, tp+1)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRankPermutationInvariant mirrors TestRankOrderIndependentMerge in
// internal/stats: the ranking must depend only on the run multiset, not on
// the order runs are visited in, because counts are plain sums.
func TestRankPermutationInvariant(t *testing.T) {
	check := func(spec []byte, seed int64) bool {
		if len(spec) > 24 {
			spec = spec[:24]
		}
		runs := runsFromSpec(spec)
		shuffled := append([]stats.Run[string](nil), runs...)
		rand.New(rand.NewSource(seed)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		for _, f := range []Formula{Ochiai, Tarantula} {
			a := fmt.Sprint(Rank(runs, f))
			b := fmt.Sprint(Rank(shuffled, f))
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRankSharesCountingWithStats: for any run set, the spectrum ranking
// covers exactly the events stats.Rank covers, with identical InFail/InSucc
// counters — the "same counts, different arithmetic" contract.
func TestRankSharesCountingWithStats(t *testing.T) {
	check := func(spec []byte) bool {
		if len(spec) > 24 {
			spec = spec[:24]
		}
		runs := runsFromSpec(spec)
		base := stats.Rank(runs)
		want := make(map[string][2]int, len(base))
		for _, s := range base {
			want[s.Event] = [2]int{s.InFail, s.InSucc}
		}
		for _, f := range []Formula{Ochiai, Tarantula} {
			ranked := Rank(runs, f)
			if len(ranked) != len(base) {
				return false
			}
			got := make(map[string][2]int, len(ranked))
			for _, s := range ranked {
				got[s.Event] = [2]int{s.InFail, s.InSucc}
			}
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRankTieBreakDeterministic mirrors TestSortScoredTieBreakTotalOrder:
// events with identical spectra tie on every numeric key, so the ranking
// must fall back to the formatted-event order and come out byte-identical
// from any visiting order.
func TestRankTieBreakDeterministic(t *testing.T) {
	// Four events, all present in exactly the failing run: identical
	// counters, so only the event name can order them.
	mk := func(events ...string) []stats.Run[string] {
		return []stats.Run[string]{
			{Failed: true, Events: events},
			{Failed: false, Events: nil},
		}
	}
	perms := [][]string{
		{"a", "b", "c", "d"},
		{"d", "c", "b", "a"},
		{"b", "d", "a", "c"},
		{"c", "a", "d", "b"},
	}
	for _, f := range []Formula{Ochiai, Tarantula} {
		var want string
		for i, p := range perms {
			got := fmt.Sprint(Rank(mk(p...), f))
			if i == 0 {
				want = got
				ranked := Rank(mk(p...), f)
				for j, s := range ranked {
					if s.Event != []string{"a", "b", "c", "d"}[j] {
						t.Fatalf("%s: tie-break order %v, want name order", f, ranked)
					}
				}
				continue
			}
			if got != want {
				t.Fatalf("%s: permutation %d ranked %s, want %s", f, i, got, want)
			}
		}
	}
}

// TestRankBestFirst: rankings are sorted under the shared stats.Less order.
func TestRankBestFirst(t *testing.T) {
	check := func(spec []byte) bool {
		if len(spec) > 24 {
			spec = spec[:24]
		}
		runs := runsFromSpec(spec)
		for _, f := range []Formula{Ochiai, Tarantula} {
			ranked := Rank(runs, f)
			for i := 1; i < len(ranked); i++ {
				if stats.Less(ranked[i], ranked[i-1]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSpectrumRank(b *testing.B) {
	// A corpus-scale ranking problem: 8 runs over 64 events with mixed
	// overlap, the shape Table 9 scores per generated program.
	spec := make([]byte, 0, 64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 64; i++ {
		spec = append(spec, byte(rng.Intn(256)))
	}
	runs := runsFromSpec(spec)
	b.Run("cbi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stats.Rank(runs)
		}
	})
	b.Run("ochiai", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Rank(runs, Ochiai)
		}
	})
	b.Run("tarantula", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Rank(runs, Tarantula)
		}
	})
}
