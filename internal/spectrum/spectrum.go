// Package spectrum implements spectrum-based fault localization (SBFL)
// scorers — Ochiai and Tarantula — over the same per-event pass/fail
// counters the LBRA/LCRA harmonic-mean model (internal/stats) consumes.
//
// SBFL is the classic software-only baseline for the paper's hardware-
// assisted diagnosis: instead of precision/recall over short hardware
// records, it scores each program entity by its statistical association
// with failing runs ("Program Spectra Analysis in Embedded Software",
// PAPERS.md). Reusing stats.Counts means the two families differ only in
// scoring arithmetic, never in event extraction or counting, so the
// Table 9 bake-off compares formulas, not plumbing.
package spectrum

import (
	"math"

	"stmdiag/internal/stats"
)

// Formula selects an SBFL scoring formula.
type Formula uint8

const (
	// Ochiai scores ef / sqrt(nf * (ef + ep)): the cosine similarity
	// between the event's occurrence vector and the failure vector.
	Ochiai Formula = iota
	// Tarantula scores (ef/nf) / (ef/nf + ep/np): the failing share of
	// the event's normalized occurrence rates.
	Tarantula
)

// String names the formula the way the -ranker flag spells it.
func (f Formula) String() string {
	if f == Tarantula {
		return "tarantula"
	}
	return "ochiai"
}

// Score computes the formula over one event's spectrum counters: inFail
// (ef) and inSucc (ep) count the failing/successful runs containing the
// event, failTotal (nf) and succTotal (np) the run totals. Both formulas
// return 0 when the event never appears in a failing run, and are bounded
// to [0, 1].
func (f Formula) Score(inFail, inSucc, failTotal, succTotal int) float64 {
	if inFail <= 0 {
		return 0
	}
	ef, ep := float64(inFail), float64(inSucc)
	switch f {
	case Tarantula:
		var fr, pr float64
		if failTotal > 0 {
			fr = ef / float64(failTotal)
		}
		if succTotal > 0 {
			pr = ep / float64(succTotal)
		}
		if fr+pr == 0 {
			return 0
		}
		return fr / (fr + pr)
	default: // Ochiai
		den := math.Sqrt(float64(failTotal) * (ef + ep))
		if den == 0 {
			return 0
		}
		return ef / den
	}
}

// ScoreCounts builds one event's stats.Scored under the formula from
// merged occurrence counters — the SBFL analogue of stats.ScoreCounts.
// Precision and recall keep their harmonic-model definitions (they feed
// the shared tie-break order and report rendering); only Score changes.
func ScoreCounts[E comparable](f Formula, e E, inFail, inSucc, failTotal, succTotal int) stats.Scored[E] {
	s := stats.ScoreCounts(e, inFail, inSucc, failTotal)
	s.Score = f.Score(inFail, inSucc, failTotal, succTotal)
	return s
}

// Rank scores every event appearing in any run under the formula and
// returns them best-first. Counting and the deterministic tie-break order
// (stats.Less via stats.SortScored) are shared with stats.Rank, so a
// formula swap can never change which events exist or how ties resolve.
func Rank[E comparable](runs []stats.Run[E], f Formula) []stats.Scored[E] {
	inFail, inSucc, failTotal, succTotal := stats.Counts(runs)
	events := make(map[E]bool, len(inFail)+len(inSucc))
	for e := range inFail {
		events[e] = true
	}
	for e := range inSucc {
		events[e] = true
	}
	out := make([]stats.Scored[E], 0, len(events))
	for e := range events {
		out = append(out, ScoreCounts(f, e, inFail[e], inSucc[e], failTotal, succTotal))
	}
	stats.SortScored(out)
	return out
}
