package replay

import (
	"strings"
	"testing"

	"stmdiag/internal/apps"
	"stmdiag/internal/trace"
	"stmdiag/internal/vm"
)

// findFailingSeed locates a seed where the Figure 4 race fires.
func findFailingSeed(t *testing.T) int64 {
	a := apps.ByName("Mozilla-JS3")
	for seed := int64(0); seed < 200; seed++ {
		res, err := vm.Run(a.Program(), a.Fail.VMOptions(seed))
		if err != nil {
			t.Fatal(err)
		}
		if a.Fail.FailedRun(res) {
			return seed
		}
	}
	t.Fatal("no failing seed")
	return 0
}

// TestReplayReproducesConcurrencyFailure is the capability record-and-
// replay buys (paper §8): a recorded racy failure replays exactly —
// same failure, same output, same instruction count.
func TestReplayReproducesConcurrencyFailure(t *testing.T) {
	a := apps.ByName("Mozilla-JS3")
	seed := findFailingSeed(t)

	rec, log, err := Record(a.Program(), a.Fail.VMOptions(seed))
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Failed() {
		t.Fatal("recorded run did not fail")
	}
	rep, err := Replay(a.Program(), log, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != rec.Steps {
		t.Errorf("replay steps %d != recorded %d", rep.Steps, rec.Steps)
	}
	if len(rep.Failures) != len(rec.Failures) ||
		rep.Failures[0].PC != rec.Failures[0].PC ||
		rep.Failures[0].Thread != rec.Failures[0].Thread {
		t.Errorf("replay failures %v != recorded %v", rep.Failures, rec.Failures)
	}
	if strings.Join(rep.Output, "|") != strings.Join(rec.Output, "|") {
		t.Errorf("replay output %v != recorded %v", rep.Output, rec.Output)
	}
}

func TestReplayDeterministicAcrossMany(t *testing.T) {
	a := apps.ByName("PBZIP3")
	for seed := int64(0); seed < 8; seed++ {
		rec, log, err := Record(a.Program(), a.Fail.VMOptions(seed))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Replay(a.Program(), log, vm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Steps != rec.Steps || rep.Failed() != rec.Failed() {
			t.Errorf("seed %d: replay diverged (%d/%d steps, failed %v/%v)",
				seed, rep.Steps, rec.Steps, rep.Failed(), rec.Failed())
		}
	}
}

// TestReplayLogLeaksInputs is the paper's privacy objection made
// executable: the replay log must carry the workload inputs, while the
// LBR/LCR bundle from the same failure carries none of them.
func TestReplayLogLeaksInputs(t *testing.T) {
	a := apps.ByName("sort")
	const secretFiles0 = 987123 // stand-in for user data in the input
	opts := a.Fail.VMOptions(1)
	opts.Globals = map[string]int64{}
	for k, v := range a.Fail.Globals {
		opts.Globals[k] = v
	}
	opts.Globals["files0"] = secretFiles0

	_, log, err := Record(a.Program(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !log.ContainsInput("files0", secretFiles0) {
		t.Error("replay log claims not to contain the input it must replay")
	}
	data, err := log.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "987123") {
		t.Error("serialized replay log does not carry the input value")
	}
	// The short-term-memory bundle from the same program carries nothing.
	res, err := vm.Run(a.Program(), opts)
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := trace.Encode(a.Program(), res)
	if err != nil {
		t.Fatal(err)
	}
	if trace.ContainsValue(bundle, secretFiles0) {
		t.Error("LBR/LCR bundle leaks the input value")
	}
}

// TestRecordingCostScalesWithRunLength is the paper's overhead objection:
// the log grows with the execution, unlike LBRLOG's constant-size rings.
func TestRecordingCostScalesWithRunLength(t *testing.T) {
	a := apps.ByName("sort")
	short := a.Succeed.VMOptions(1)
	short.Globals = map[string]int64{"nfiles": 0, "same": 1, "files0": 5, "worksize": 500}
	long := a.Succeed.VMOptions(1)
	long.Globals = map[string]int64{"nfiles": 0, "same": 1, "files0": 5, "worksize": 5000}

	_, shortLog, err := Record(a.Program(), short)
	if err != nil {
		t.Fatal(err)
	}
	_, longLog, err := Record(a.Program(), long)
	if err != nil {
		t.Fatal(err)
	}
	if longLog.Events() < 5*shortLog.Events() {
		t.Errorf("log did not scale with run length: %d vs %d events",
			shortLog.Events(), longLog.Events())
	}
	if longLog.RecordingCycles() == 0 {
		t.Error("no recording cost modeled")
	}
}

func TestReplayRejectsWrongProgram(t *testing.T) {
	a := apps.ByName("sort")
	_, log, err := Record(a.Program(), a.Fail.VMOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(apps.ByName("cp").Program(), log, vm.Options{}); err == nil {
		t.Error("replaying against the wrong program accepted")
	}
}

func TestReplayDetectsDivergence(t *testing.T) {
	a := apps.ByName("sort")
	_, log, err := Record(a.Program(), a.Fail.VMOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the log: the replay must surface the exhaustion rather than
	// silently improvising.
	log.Decisions = log.Decisions[:len(log.Decisions)/2]
	if _, err := Replay(a.Program(), log, vm.Options{}); err == nil {
		t.Error("truncated log replayed without error")
	}
}
