// Package replay implements record-and-replay over the VM — the paper's
// §8 comparison class (Triage, ODR, time-traveling VMs, Respec).
//
// Recording captures every nondeterministic input of a run: the workload
// values and each scheduling decision (which runnable thread, slice
// length). Replaying drives the scheduler from the log and reproduces the
// execution exactly — including a concurrency failure's interleaving,
// which is what makes the approach attractive for diagnosis.
//
// The paper's two objections are made measurable here:
//
//   - Privacy: the log necessarily contains the program's inputs (the
//     workload globals), unlike an LBR/LCR bundle — Log.ContainsInput.
//   - Cost: the log grows with execution length (one entry per scheduling
//     slice, more for finer-grained systems), and multiprocessor replay
//     needs every shared-memory ordering; EventCost models the recording
//     overhead class.
package replay

import (
	"encoding/json"
	"fmt"

	"stmdiag/internal/isa"
	"stmdiag/internal/vm"
)

// EventCost is the modeled recording cost per logged scheduling event, in
// VM cycles; used to compare against LBRLOG's fixed per-failure cost.
const EventCost = 25

// decision is one logged scheduler choice.
type decision struct {
	// Pick is the index chosen among the runnable set; Quantum the slice
	// length.
	Pick    int `json:"pick"`
	Quantum int `json:"quantum"`
}

// Log is a recorded run: everything needed to reproduce it.
type Log struct {
	// Program names the recorded build.
	Program string `json:"program"`
	// Seed is the recorded run's RNG seed (delay jitter etc.).
	Seed int64 `json:"seed"`
	// Globals and Arrays are the captured workload inputs — the privacy
	// liability of this approach.
	Globals map[string]int64   `json:"globals,omitempty"`
	Arrays  map[string][]int64 `json:"arrays,omitempty"`
	// Decisions is the scheduling trace.
	Decisions []decision `json:"decisions"`
}

// Events returns the number of logged scheduling events.
func (l *Log) Events() int { return len(l.Decisions) }

// RecordingCycles returns the modeled recording cost.
func (l *Log) RecordingCycles() uint64 { return uint64(len(l.Decisions)) * EventCost }

// Marshal serializes the log (what would be shipped for off-site replay).
func (l *Log) Marshal() ([]byte, error) { return json.Marshal(l) }

// ContainsInput reports whether the serialized log carries the given input
// value — it always does when the value was part of the workload, which is
// the privacy contrast with trace.Encode bundles.
func (l *Log) ContainsInput(name string, value int64) bool {
	if v, ok := l.Globals[name]; ok && v == value {
		return true
	}
	for _, arr := range l.Arrays {
		for _, v := range arr {
			if v == value {
				return true
			}
		}
	}
	return false
}

// recorder wraps the default policy and logs its decisions.
type recorder struct {
	inner vm.SchedSource
	log   *Log
}

func (r *recorder) Pick(runnable []int) int {
	p := r.inner.Pick(runnable)
	r.log.Decisions = append(r.log.Decisions, decision{Pick: p})
	return p
}

func (r *recorder) Quantum(min, max int) int {
	q := r.inner.Quantum(min, max)
	r.log.Decisions[len(r.log.Decisions)-1].Quantum = q
	return q
}

// replayer feeds logged decisions back to the scheduler.
type replayer struct {
	log *Log
	i   int
	err error
}

func (r *replayer) Pick(runnable []int) int {
	if r.i >= len(r.log.Decisions) {
		r.err = fmt.Errorf("replay: log exhausted after %d decisions", r.i)
		return 0
	}
	p := r.log.Decisions[r.i].Pick
	if p >= len(runnable) {
		// The runnable set diverged from the recording; pin to a valid
		// choice and surface the divergence.
		r.err = fmt.Errorf("replay: decision %d picks %d of %d runnable", r.i, p, len(runnable))
		p = 0
	}
	return p
}

func (r *replayer) Quantum(min, max int) int {
	if r.i >= len(r.log.Decisions) {
		return min // log exhausted; Pick already recorded the divergence
	}
	q := r.log.Decisions[r.i].Quantum
	r.i++
	return q
}

// Record executes the program while logging every nondeterministic input,
// returning the run result and the log that reproduces it.
func Record(p *isa.Program, opts vm.Options) (*vm.Result, *Log, error) {
	log := &Log{
		Program: p.Name,
		Seed:    opts.Seed,
		Globals: opts.Globals,
		Arrays:  opts.GlobalArrays,
	}
	// Wrap the default policy of a machine configured identically.
	opts.Sched = &recorder{inner: vm.DefaultSched(opts.Seed), log: log}
	res, err := vm.Run(p, opts)
	if err != nil {
		return nil, nil, err
	}
	return res, log, nil
}

// Replay re-executes a recorded run from its log.
func Replay(p *isa.Program, log *Log, opts vm.Options) (*vm.Result, error) {
	if p.Name != log.Program {
		return nil, fmt.Errorf("replay: log is for %q, not %q", log.Program, p.Name)
	}
	opts.Seed = log.Seed
	opts.Globals = log.Globals
	opts.GlobalArrays = log.Arrays
	r := &replayer{log: log}
	opts.Sched = r
	res, err := vm.Run(p, opts)
	if err != nil {
		return nil, err
	}
	if r.err != nil {
		return nil, r.err
	}
	return res, nil
}
