// Package trace serializes LBR/LCR profiles into the report bundle an end
// user's machine would send back to developers.
//
// The paper's privacy argument (§5.3) is that the short-term-memory
// approach "does not directly collect any variable values": an LBR record
// is two instruction addresses, an LCR record is an instruction address
// and a coherence state — memory addresses are deliberately not recorded
// (§4.2.1). This package makes that argument operational: the wire format
// can only carry code positions and states, and Audit verifies a bundle
// against the program's data segment so a report containing user data
// cannot be produced by accident.
package trace

import (
	"encoding/json"
	"fmt"
	"strings"

	"stmdiag/internal/isa"
	"stmdiag/internal/obs"
	"stmdiag/internal/vm"
)

// BranchRecord is one serialized LBR entry: code positions only.
type BranchRecord struct {
	// FromPC and ToPC are instruction indices.
	FromPC int `json:"from"`
	ToPC   int `json:"to"`
	// Branch and Edge name the source branch, when the record embodies
	// one.
	Branch string `json:"branch,omitempty"`
	Edge   string `json:"edge,omitempty"`
	// File and Line locate the branch in the modeled source.
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
}

// CoherenceRecord is one serialized LCR entry: an instruction position and
// a MESI state. There is no address field on purpose.
type CoherenceRecord struct {
	PC     int    `json:"pc"`
	Access string `json:"access"`
	State  string `json:"state"`
	File   string `json:"file,omitempty"`
	Line   int    `json:"line,omitempty"`
}

// Snapshot is one serialized profile.
type Snapshot struct {
	Site      int               `json:"site"`
	Thread    int               `json:"thread"`
	Success   bool              `json:"success,omitempty"`
	Branches  []BranchRecord    `json:"branches,omitempty"`
	Coherence []CoherenceRecord `json:"coherence,omitempty"`
}

// Bundle is a failure report: the program identity and the profiles,
// nothing else.
type Bundle struct {
	// Program names the build the profiles came from.
	Program string `json:"program"`
	// Failure describes the symptom ("segmentation fault at PC 14").
	Failure string `json:"failure,omitempty"`
	// Snapshots are the profiles.
	Snapshots []Snapshot `json:"snapshots"`
}

// Encode builds a bundle from a run's profiles and serializes it.
func Encode(p *isa.Program, res *vm.Result) ([]byte, error) {
	b := Bundle{Program: p.Name}
	if f := res.FirstFailure(); f != nil {
		if f.Msg != "" {
			b.Failure = fmt.Sprintf("%s: %s", f.Kind, f.Msg)
		} else {
			b.Failure = fmt.Sprintf("%s (code %d)", f.Kind, f.Code)
		}
	}
	for _, prof := range res.Profiles {
		s := Snapshot{Site: prof.Site, Thread: prof.Thread, Success: prof.Success}
		for _, r := range prof.Branches {
			br := BranchRecord{FromPC: r.From, ToPC: r.To}
			if r.From >= 0 && r.From < len(p.Instrs) {
				in := &p.Instrs[r.From]
				br.File, br.Line = in.Loc.File, in.Loc.Line
				if in.BranchID != isa.NoBranch {
					br.Branch = p.BranchName(in.BranchID)
					br.Edge = in.Edge.String()
				}
			}
			s.Branches = append(s.Branches, br)
		}
		for _, r := range prof.Coherence {
			cr := CoherenceRecord{PC: r.PC, Access: r.Kind.String(), State: r.State.String()}
			if r.PC >= 0 && r.PC < len(p.Instrs) {
				loc := p.Instrs[r.PC].Loc
				cr.File, cr.Line = loc.File, loc.Line
			}
			s.Coherence = append(s.Coherence, cr)
			// Each coherence record withholds its memory address: that is
			// one redaction the wire format performs (paper §4.2.1).
			obs.Default().Counter("trace.encode.redacted").Inc()
		}
		b.Snapshots = append(b.Snapshots, s)
	}
	return json.MarshalIndent(b, "", "  ")
}

// Decode parses a bundle.
func Decode(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &b, nil
}

// Audit checks a serialized bundle against the privacy guarantee: every
// numeric field must be a code position (a valid PC) or a record index —
// never a data-segment address or a program data value. It returns the
// violations found.
func Audit(p *isa.Program, data []byte) []string {
	reg := obs.Default()
	reg.Counter("trace.audit.bundles").Inc()
	fields := reg.Counter("trace.audit.fields")
	var bundle Bundle
	if err := json.Unmarshal(data, &bundle); err != nil {
		reg.Counter("trace.audit.violations").Inc()
		return []string{fmt.Sprintf("unparseable bundle: %v", err)}
	}
	var violations []string
	checkPC := func(what string, pc int) {
		fields.Inc()
		// kernel pollution entries use -1; everything else must be a PC.
		if pc >= -1 && pc <= len(p.Instrs) {
			return
		}
		if pc >= isa.GlobalBase {
			violations = append(violations, fmt.Sprintf("%s %d lies in the data segment", what, pc))
			return
		}
		violations = append(violations, fmt.Sprintf("%s %d is not a code position", what, pc))
	}
	for _, s := range bundle.Snapshots {
		checkPC("snapshot site", s.Site)
		for _, r := range s.Branches {
			checkPC("branch from", r.FromPC)
			checkPC("branch to", r.ToPC)
		}
		for _, r := range s.Coherence {
			checkPC("coherence pc", r.PC)
			fields.Inc()
			switch r.State {
			case "I", "S", "E", "M":
			default:
				violations = append(violations, fmt.Sprintf("coherence state %q is not a MESI state", r.State))
			}
		}
	}
	reg.Counter("trace.audit.violations").Add(uint64(len(violations)))
	return violations
}

// ContainsValue reports whether the serialized bundle leaks the given
// datum (as a decimal number or quoted string) anywhere — the check the
// privacy tests run with known-secret workloads.
func ContainsValue(data []byte, secret int64) bool {
	return strings.Contains(string(data), fmt.Sprintf(": %d", secret)) ||
		strings.Contains(string(data), fmt.Sprintf("\"%d\"", secret))
}
