package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"stmdiag/internal/core"
	"stmdiag/internal/isa"
	"stmdiag/internal/kernel"
	"stmdiag/internal/pmu"
	"stmdiag/internal/vm"
)

// secretDemo processes a "secret" user value (seeded by the workload) on
// the path to a crash: the classic privacy worry about coredumps.
const secretDemo = `
.file app.c
.global secret
.global key 8
.func main
main:
    lea  r1, secret
    ld   r2, [r1+0]        ; the user's secret value flows through r2
    lea  r3, key
    st   [r3+0], r2        ; and through memory
.line 8
.branch chk
    cmpi r2, 0
    jle  ok
    movi r4, 0
    jmp  boom
ok:
    lea  r4, key
boom:
.line 14
    ld   r5, [r4+0]        ; crashes when the secret was positive
    exit
`

const secret = 987654321544

func runInstrumented(t *testing.T) (*isa.Program, *vm.Result) {
	t.Helper()
	p, err := isa.Assemble("privacy", secretDemo)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := core.EnhanceLogging(p, core.Options{LBR: true, LCR: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(inst.Prog, vm.Options{
		Driver:     kernel.Driver{},
		SegvIoctls: inst.SegvIoctls,
		LCRConfig:  pmu.ConfSpaceConsuming,
		Globals:    map[string]int64{"secret": secret},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatal("demo did not crash")
	}
	return inst.Prog, res
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p, res := runInstrumented(t)
	data, err := Encode(p, res)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if b.Program != "privacy" {
		t.Errorf("Program = %q", b.Program)
	}
	if !strings.Contains(b.Failure, "segmentation fault") {
		t.Errorf("Failure = %q", b.Failure)
	}
	if len(b.Snapshots) != len(res.Profiles) {
		t.Fatalf("snapshots = %d, want %d", len(b.Snapshots), len(res.Profiles))
	}
	// The root-cause branch must be readable from the bundle.
	found := false
	for _, s := range b.Snapshots {
		for _, r := range s.Branches {
			if r.Branch == "chk" {
				found = true
				if r.File != "app.c" || r.Line != 8 {
					t.Errorf("chk located at %s:%d", r.File, r.Line)
				}
			}
		}
	}
	if !found {
		t.Error("root-cause branch missing from bundle")
	}
}

// TestBundleCarriesNoSecrets is the paper's §5.3 privacy claim made
// executable: the secret value flows through registers and memory on the
// failure path, and a coredump would contain it — the LBR/LCR bundle must
// not.
func TestBundleCarriesNoSecrets(t *testing.T) {
	p, res := runInstrumented(t)
	data, err := Encode(p, res)
	if err != nil {
		t.Fatal(err)
	}
	if ContainsValue(data, secret) {
		t.Fatalf("bundle leaks the secret:\n%s", data)
	}
	if violations := Audit(p, data); len(violations) != 0 {
		t.Fatalf("audit violations: %v", violations)
	}
}

func TestAuditFlagsTampering(t *testing.T) {
	p, res := runInstrumented(t)
	data, err := Encode(p, res)
	if err != nil {
		t.Fatal(err)
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	// A "bundle" smuggling a data-segment address and a raw value.
	b.Snapshots[0].Coherence = append(b.Snapshots[0].Coherence, CoherenceRecord{
		PC: int(isa.GlobalBase + 1), Access: "load", State: "I",
	})
	b.Snapshots[0].Branches = append(b.Snapshots[0].Branches, BranchRecord{
		FromPC: secret, ToPC: 0,
	})
	b.Snapshots[0].Coherence = append(b.Snapshots[0].Coherence, CoherenceRecord{
		PC: 1, Access: "load", State: "42",
	})
	tampered, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	violations := Audit(p, tampered)
	if len(violations) < 3 {
		t.Fatalf("audit found %d violations, want >= 3: %v", len(violations), violations)
	}
	joined := strings.Join(violations, "; ")
	if !strings.Contains(joined, "data segment") {
		t.Errorf("data-segment smuggling not flagged: %v", violations)
	}
	if !strings.Contains(joined, "not a MESI state") {
		t.Errorf("bad state not flagged: %v", violations)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("{")); err == nil {
		t.Error("garbage accepted")
	}
	if v := Audit(&isa.Program{}, []byte("not json")); len(v) == 0 {
		t.Error("unparseable bundle passed audit")
	}
}
