// Package source models the source-level artifacts the diagnosis pipeline
// reports against: bug patches and the patch-distance metric of paper
// Table 6, which compares how far the failure site and the LBR-captured
// branches are from the lines a developer actually changed.
package source

import (
	"fmt"
	"math"

	"stmdiag/internal/isa"
)

// Infinite is the patch distance between locations in different files,
// printed as the paper's "∞".
const Infinite = math.MaxInt32

// Patch is the fix for one benchmark bug: the set of modeled source lines
// it changes (paper Figure 9 shows two examples).
type Patch struct {
	// App names the benchmark the patch belongs to.
	App string
	// Lines are the changed lines.
	Lines []isa.SourceLoc
}

// Distance returns the patch distance of a location: the minimum line
// distance to any changed line in the same file, or Infinite if the patch
// touches no line in the location's file.
func (p Patch) Distance(loc isa.SourceLoc) int {
	best := Infinite
	for _, pl := range p.Lines {
		if pl.File != loc.File {
			continue
		}
		d := pl.Line - loc.Line
		if d < 0 {
			d = -d
		}
		if d < best {
			best = d
		}
	}
	return best
}

// MinDistance returns the smallest patch distance over a set of locations
// (e.g. every branch captured in an LBR snapshot), or Infinite for an empty
// set.
func (p Patch) MinDistance(locs []isa.SourceLoc) int {
	best := Infinite
	for _, loc := range locs {
		if d := p.Distance(loc); d < best {
			best = d
		}
	}
	return best
}

// FormatDistance renders a distance the way paper Table 6 does, with "inf"
// for different-file distances.
func FormatDistance(d int) string {
	if d >= Infinite {
		return "inf"
	}
	return fmt.Sprintf("%d", d)
}
