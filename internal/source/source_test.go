package source

import (
	"testing"

	"stmdiag/internal/isa"
)

func TestDistanceSameFile(t *testing.T) {
	p := Patch{App: "sort", Lines: []isa.SourceLoc{{File: "sort.c", Line: 100}}}
	cases := []struct {
		loc  isa.SourceLoc
		want int
	}{
		{isa.SourceLoc{File: "sort.c", Line: 100}, 0},
		{isa.SourceLoc{File: "sort.c", Line: 103}, 3},
		{isa.SourceLoc{File: "sort.c", Line: 96}, 4},
		{isa.SourceLoc{File: "hash.c", Line: 100}, Infinite},
	}
	for _, tc := range cases {
		if got := p.Distance(tc.loc); got != tc.want {
			t.Errorf("Distance(%v) = %d, want %d", tc.loc, got, tc.want)
		}
	}
}

func TestDistanceMultipleLines(t *testing.T) {
	p := Patch{Lines: []isa.SourceLoc{
		{File: "a.c", Line: 10},
		{File: "a.c", Line: 50},
		{File: "b.c", Line: 5},
	}}
	if got := p.Distance(isa.SourceLoc{File: "a.c", Line: 45}); got != 5 {
		t.Errorf("Distance = %d, want 5 (nearest of two lines)", got)
	}
	if got := p.Distance(isa.SourceLoc{File: "b.c", Line: 9}); got != 4 {
		t.Errorf("Distance = %d, want 4", got)
	}
}

func TestMinDistance(t *testing.T) {
	p := Patch{Lines: []isa.SourceLoc{{File: "a.c", Line: 10}}}
	locs := []isa.SourceLoc{
		{File: "b.c", Line: 10},
		{File: "a.c", Line: 14},
		{File: "a.c", Line: 11},
	}
	if got := p.MinDistance(locs); got != 1 {
		t.Errorf("MinDistance = %d, want 1", got)
	}
	if got := p.MinDistance(nil); got != Infinite {
		t.Errorf("MinDistance(nil) = %d, want Infinite", got)
	}
}

func TestFormatDistance(t *testing.T) {
	if got := FormatDistance(3); got != "3" {
		t.Errorf("FormatDistance(3) = %q", got)
	}
	if got := FormatDistance(Infinite); got != "inf" {
		t.Errorf("FormatDistance(Infinite) = %q", got)
	}
}
