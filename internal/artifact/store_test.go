package artifact

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"stmdiag/internal/faultinj"
	"stmdiag/internal/obs"
)

func testSink() *obs.Sink { return &obs.Sink{Metrics: obs.NewRegistry()} }

func mustSpec(t *testing.T, in string) faultinj.Spec {
	t.Helper()
	s, err := faultinj.ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sink := testSink()
	s, err := Open(dir, sink)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"value": 42}`)
	if err := s.Put("app/fail", 3, "key-a", payload); err != nil {
		t.Fatal(err)
	}
	// Duplicate puts are no-ops.
	if err := s.Put("app/fail", 3, "key-a", payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Load("key-a")
	if err != nil || !ok || string(got) != string(payload) {
		t.Fatalf("Load = %q, %v, %v", got, ok, err)
	}
	if _, ok, _ := s.Load("key-absent"); ok {
		t.Error("Load of absent key reported a hit")
	}
	s.Close()

	// Reopen: the manifest replays to the same index.
	s2, err := Open(dir, testSink())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("reopened Len = %d, want 1", s2.Len())
	}
	got, ok, err = s2.Load("key-a")
	if err != nil || !ok || string(got) != string(payload) {
		t.Fatalf("reopened Load = %q, %v, %v", got, ok, err)
	}
	snap := sink.Metrics.Snapshot()
	if snap.Counter("artifact.puts") != 1 {
		t.Errorf("puts = %d, want 1 (dup must not recount)", snap.Counter("artifact.puts"))
	}
}

// TestStoreCorruptBlobQuarantined flips a byte of a stored blob on disk:
// Load must return the typed *Error, quarantine the blob, forget the key,
// and a fresh Put must repair the store.
func TestStoreCorruptBlobQuarantined(t *testing.T) {
	sink := testSink()
	s, err := Open(t.TempDir(), sink)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	payload := []byte("precious trial result")
	if err := s.Put("st", 0, "k", payload); err != nil {
		t.Fatal(err)
	}
	path, ok := s.BlobPath("k")
	if !ok {
		t.Fatal("BlobPath miss")
	}
	data, _ := os.ReadFile(path)
	data[0] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, ok, err = s.Load("k")
	var ae *Error
	if ok || !errors.As(err, &ae) {
		t.Fatalf("Load of corrupt blob = ok=%v err=%v, want typed *Error", ok, err)
	}
	if ae.Reason != "checksum mismatch" {
		t.Errorf("Reason = %q, want checksum mismatch", ae.Reason)
	}
	ents, _ := os.ReadDir(s.QuarantineDir())
	if len(ents) != 1 {
		t.Errorf("quarantine holds %d files, want 1", len(ents))
	}
	// The key is forgotten: the caller re-executes and the fresh Put heals.
	if _, ok, err := s.Load("k"); ok || err != nil {
		t.Fatalf("post-quarantine Load = ok=%v err=%v, want clean miss", ok, err)
	}
	if err := s.Put("st", 0, "k", payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Load("k")
	if err != nil || !ok || string(got) != string(payload) {
		t.Fatalf("healed Load = %q, %v, %v", got, ok, err)
	}
	if q := sink.Metrics.Snapshot().Counter("artifact.quarantined"); q != 1 {
		t.Errorf("quarantined = %d, want 1", q)
	}
}

// TestStoreInjectedFaults drives each store-layer injector at rate 1 and
// checks the damage is detected exactly as advertised.
func TestStoreInjectedFaults(t *testing.T) {
	payload := []byte("0123456789abcdef0123456789abcdef")

	t.Run("artifact-corrupt", func(t *testing.T) {
		s, err := Open(t.TempDir(), testSink())
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		s.WithFaults(mustSpec(t, "artifact-corrupt=1"), 7)
		if err := s.Put("st", 0, "k", payload); err != nil {
			t.Fatal(err)
		}
		_, ok, err := s.Load("k")
		var ae *Error
		if ok || !errors.As(err, &ae) {
			t.Fatalf("corrupted blob loaded: ok=%v err=%v", ok, err)
		}
	})

	t.Run("artifact-torn-write", func(t *testing.T) {
		s, err := Open(t.TempDir(), testSink())
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		s.WithFaults(mustSpec(t, "artifact-torn-write=1"), 7)
		if err := s.Put("st", 0, "k", payload); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := s.Load("k"); ok && err == nil {
			// A torn write that kept every byte is impossible: TruncN caps
			// at len(payload) so at least the size check must fire... unless
			// the prefix happened to be the whole payload. TruncN's modulus
			// is len+1, so a full-length "tear" is possible; accept it only
			// if the bytes round-tripped intact.
			got, _, _ := s.Load("k")
			if string(got) != string(payload) {
				t.Error("torn blob loaded without error")
			}
		}
	})

	t.Run("journal-trunc", func(t *testing.T) {
		dir := t.TempDir()
		s, err := Open(dir, testSink())
		if err != nil {
			t.Fatal(err)
		}
		s.WithFaults(mustSpec(t, "journal-trunc=1"), 7)
		if err := s.Put("st", 0, "k", payload); err != nil {
			t.Fatal(err)
		}
		s.Close()
		// The torn manifest append must salvage on reopen; whether the
		// record survived depends on where the frame was cut, but the open
		// must never fail and never index a damaged record.
		sink := testSink()
		s2, err := Open(dir, sink)
		if err != nil {
			t.Fatalf("reopen after torn manifest append: %v", err)
		}
		defer s2.Close()
		if s2.Len() != 0 {
			// A cut inside the frame always drops the record.
			t.Errorf("torn manifest record still indexed (Len=%d)", s2.Len())
		}
		if sink.Metrics.Snapshot().Counter("artifact.salvaged_opens") != 1 {
			t.Error("salvage not reported on reopen")
		}
	})
}

// TestStoreManifestLaterWins: a re-executed trial's fresh manifest record
// must shadow the stale one on replay.
func TestStoreManifestLaterWins(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testSink())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("st", 0, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Simulate quarantine-then-reexecute: evict and put a new value.
	path, _ := s.BlobPath("k")
	os.WriteFile(path, []byte("xx"), 0o644)
	if _, _, err := s.Load("k"); err == nil {
		t.Fatal("corrupt blob loaded")
	}
	if err := s.Put("st", 0, "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir, testSink())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok, err := s2.Load("k")
	if err != nil || !ok || string(got) != "v2" {
		t.Fatalf("replayed Load = %q, %v, %v (later record must win)", got, ok, err)
	}
}

// TestStoreConcurrentAccess exercises parallel Load/Put under -race: the
// dispatch path loads concurrently while the commit path puts.
func TestStoreConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir(), testSink())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", i%8)
			if i%2 == 0 {
				if err := s.Put("st", i, key, []byte(key)); err != nil {
					t.Error(err)
				}
			} else {
				if _, ok, err := s.Load(key); ok && err == nil {
					if got, _, _ := s.Load(key); got != nil && string(got) != key {
						t.Errorf("Load(%s) = %q", key, got)
					}
				}
			}
		}(i)
	}
	wg.Wait()
}
