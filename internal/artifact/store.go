package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"stmdiag/internal/faultinj"
	"stmdiag/internal/obs"
)

// Store layout under one directory:
//
//	MANIFEST                journal of {key, sha, size} entries, append-only
//	blobs/<aa>/<sha256>     content-addressed payloads (aa = first hex byte)
//	quarantine/             blobs evicted after a checksum mismatch
//
// Keys are caller-chosen identity hashes (the harness hashes the trial's
// stream/index/kind/params/fault tuple); blob names are the payload's own
// SHA-256, so identical results dedupe and every load is self-verifying.
const (
	manifestName  = "MANIFEST"
	blobsDir      = "blobs"
	quarantineDir = "quarantine"
	tmpPrefix     = ".tmp-"
)

// Error is the typed artifact fault: a stored trial result that failed
// verification (or could not be read back). It rides the same degradation
// path as harness.TrialError — the caller quarantines, re-executes the
// trial, and only gives up through the insufficient-evidence verdict.
type Error struct {
	Key    string // store key of the damaged entry
	Path   string // file that failed verification ("" if missing)
	Reason string // human-readable cause ("checksum mismatch", "blob missing", ...)
	Err    error  // underlying error, if any
}

func (e *Error) Error() string {
	msg := fmt.Sprintf("artifact %s: %s", short(e.Key), e.Reason)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *Error) Unwrap() error { return e.Err }

// short abbreviates a hex key for messages.
func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// manifestEntry is one journal record: key → blob identity.
type manifestEntry struct {
	Key  string `json:"key"`
	SHA  string `json:"sha"`
	Size int64  `json:"size"`
}

// Store is a content-addressed, checksummed result store. Put is called
// from the pool's commit scan (one goroutine, trial order); Load may be
// called concurrently from trial dispatch, so the index is read-locked.
type Store struct {
	dir      string
	manifest *Journal
	sink     *obs.Sink

	faults    faultinj.Spec
	faultSeed int64

	mu    sync.RWMutex
	index map[string]manifestEntry

	puts, putBytes, hits, misses, quarantined, putErrors *obs.Counter
}

// Open opens (creating if needed) the store rooted at dir. The manifest is
// scanned and salvaged like any journal: a torn tail is quarantined and the
// log truncated, so a SIGKILL mid-append costs at most the final record.
// Entries later in the manifest win, so a re-executed trial's fresh record
// shadows a quarantined one. sink may be nil; counters land under
// "artifact.*".
func Open(dir string, sink *obs.Sink) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, blobsDir), filepath.Join(dir, quarantineDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("artifact: create store dir: %w", err)
		}
	}
	j, recs, rep, err := OpenJournal(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:      dir,
		manifest: j,
		sink:     sink,
		index:    make(map[string]manifestEntry, len(recs)),

		puts:        sink.Counter("artifact.puts"),
		putBytes:    sink.Counter("artifact.put_bytes"),
		hits:        sink.Counter("artifact.hits"),
		misses:      sink.Counter("artifact.misses"),
		quarantined: sink.Counter("artifact.quarantined"),
		putErrors:   sink.Counter("artifact.put_errors"),
	}
	dropped := 0
	for _, rec := range recs {
		var e manifestEntry
		if err := json.Unmarshal(rec, &e); err != nil || e.Key == "" || e.SHA == "" {
			dropped++
			continue
		}
		s.index[e.Key] = e
	}
	sink.Counter("artifact.scan_records").Add(uint64(len(recs)))
	if rep.Salvaged() {
		sink.Counter("artifact.salvaged_opens").Inc()
		sink.Counter("artifact.salvage_dropped_bytes").Add(uint64(rep.DroppedBytes))
	}
	if dropped > 0 {
		sink.Counter("artifact.manifest_rejects").Add(uint64(dropped))
	}
	return s, nil
}

// WithFaults arms the store-layer injectors (artifact-torn-write,
// artifact-corrupt, journal-trunc). Plans derive from (spec, seed, stream,
// trial) exactly like the capture layers, so injected store damage is
// byte-reproducible for any worker count.
func (s *Store) WithFaults(spec faultinj.Spec, seed int64) *Store {
	s.faults, s.faultSeed = spec, seed
	return s
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of loadable keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Put persists one trial result under key. stream and trial are the trial's
// identity coordinates, used only to derive the deterministic fault plan
// for the store layers. Duplicate keys are no-ops (the result is already
// durable). Put errors are counted, not fatal: losing durability must never
// fail the trial that produced the result.
func (s *Store) Put(stream string, trial int, key string, payload []byte) error {
	s.mu.RLock()
	_, dup := s.index[key]
	s.mu.RUnlock()
	if dup {
		return nil
	}
	plan := faultinj.NewPlan(s.faults, s.faultSeed, stream, trial, 0, s.sink)

	sum := sha256.Sum256(payload)
	sha := hex.EncodeToString(sum[:])
	body := payload
	if plan.Hit(faultinj.ArtifactCorrupt) && len(payload) > 0 {
		// Silent media corruption: the blob lands with a flipped byte but
		// the manifest records the true hash, so a later Load catches it.
		body = append([]byte(nil), payload...)
		body[plan.TruncN(faultinj.ArtifactCorrupt, len(body))] ^= 0xff
	}
	if plan.Hit(faultinj.ArtifactTorn) {
		// Torn write: only a prefix reaches the final name.
		body = body[:plan.TruncN(faultinj.ArtifactTorn, len(body)+1)]
	}
	if err := s.writeBlob(sha, body); err != nil {
		s.putErrors.Inc()
		return &Error{Key: key, Reason: "write blob", Err: err}
	}
	rec, err := json.Marshal(manifestEntry{Key: key, SHA: sha, Size: int64(len(payload))})
	if err != nil {
		s.putErrors.Inc()
		return &Error{Key: key, Reason: "encode manifest entry", Err: err}
	}
	keep := -1
	if plan.Hit(faultinj.JournalTrunc) {
		// Torn journal append: the frame is cut mid-record, exactly what a
		// SIGKILL during the write syscall leaves behind.
		keep = plan.TruncN(faultinj.JournalTrunc, len(rec)+frameHeader)
	}
	if err := s.manifest.appendPrefix(rec, keep); err != nil {
		s.putErrors.Inc()
		return &Error{Key: key, Reason: "append manifest", Err: err}
	}
	s.mu.Lock()
	s.index[key] = manifestEntry{Key: key, SHA: sha, Size: int64(len(payload))}
	s.mu.Unlock()
	s.puts.Inc()
	s.putBytes.Add(uint64(len(payload)))
	return nil
}

// writeBlob stores body under its content address via temp file + rename,
// so a concurrent or crashed writer can never expose a half-written blob
// under the final name (torn injected writes excepted — that is the point).
func (s *Store) writeBlob(sha string, body []byte) error {
	dir := filepath.Join(s.dir, blobsDir, sha[:2])
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	final := filepath.Join(dir, sha)
	if _, err := os.Stat(final); err == nil {
		return nil // content-addressed: already present
	}
	tmp, err := os.CreateTemp(dir, tmpPrefix)
	if err != nil {
		return err
	}
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), final)
}

// Load fetches the payload stored under key. Returns (payload, true, nil)
// on a verified hit, (nil, false, nil) on a miss, and (nil, false, *Error)
// when the stored artifact failed verification — in which case the damaged
// blob has already been quarantined and the key forgotten, so the caller
// re-executes the trial and the fresh Put repairs the store.
func (s *Store) Load(key string) ([]byte, bool, error) {
	s.mu.RLock()
	e, ok := s.index[key]
	s.mu.RUnlock()
	if !ok {
		s.misses.Inc()
		return nil, false, nil
	}
	path := filepath.Join(s.dir, blobsDir, e.SHA[:2], e.SHA)
	data, err := os.ReadFile(path)
	if err != nil {
		s.evict(key, "", e)
		return nil, false, &Error{Key: key, Path: path, Reason: "blob missing", Err: err}
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != e.SHA || int64(len(data)) != e.Size {
		s.evict(key, path, e)
		return nil, false, &Error{Key: key, Path: path, Reason: "checksum mismatch"}
	}
	s.hits.Inc()
	return data, true, nil
}

// evict quarantines a damaged blob (when path != "") and forgets its key.
// The manifest is not rewritten — the stale entry is shadowed by the fresh
// record the re-executed trial appends, and open-time replay keeps the
// last record per key.
func (s *Store) evict(key, path string, e manifestEntry) {
	if path != "" {
		os.Rename(path, filepath.Join(s.dir, quarantineDir, e.SHA))
	}
	s.mu.Lock()
	delete(s.index, key)
	s.mu.Unlock()
	s.quarantined.Inc()
}

// Close closes the manifest journal. Blobs need no teardown.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	return s.manifest.Close()
}

// ManifestPath returns the manifest journal's path (tests truncate it to
// simulate kills at exact record boundaries).
func (s *Store) ManifestPath() string { return filepath.Join(s.dir, manifestName) }

// QuarantineDir returns the quarantine directory path.
func (s *Store) QuarantineDir() string { return filepath.Join(s.dir, quarantineDir) }

// BlobPath returns where the payload for key is stored, for tests that
// damage blobs directly. ok is false on a miss.
func (s *Store) BlobPath(key string) (string, bool) {
	s.mu.RLock()
	e, ok := s.index[key]
	s.mu.RUnlock()
	if !ok {
		return "", false
	}
	return filepath.Join(s.dir, blobsDir, e.SHA[:2], e.SHA), true
}
