// Package artifact is the durability layer of the trial pipeline: a
// content-addressed, checksummed store for completed trial results (and any
// other append-only state, like the fleet store's write-ahead log). The
// paper's premise is salvaging diagnosis evidence from runs that die
// unexpectedly — §3.2 reads the LBR inside the segfault handler precisely
// because the crash must not destroy what the hardware already captured.
// This package applies the same philosophy one level up: every committed
// trial's profile and telemetry is persisted as it completes, so a killed
// experiment sweep resumes from its committed artifacts instead of losing
// them, and a corrupt or torn artifact is detected by checksum, quarantined
// and re-executed rather than poisoning the diagnosis.
//
// Two layers:
//
//   - Journal: a length+CRC framed append-only record log. Opening a
//     journal salvages a torn tail (a write cut short by SIGKILL or an
//     injected fault): the bytes after the last intact frame are moved to a
//     quarantine file and the log is truncated back to its good prefix.
//
//   - Store: a manifest journal plus content-addressed blob files
//     (blobs/<sha256>), keyed by the caller's trial-identity hash. Load
//     re-hashes the blob and quarantines any mismatch.
//
// Both layers are deterministic and fsync-free: crash-consistency comes
// from frame checksums and atomic renames, not from write barriers, so the
// commit path stays fast and a lost tail costs only re-execution.
package artifact

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Frame layout: magic (4) | payload length (4) | CRC-32 of payload (4) |
// payload. The magic guards against scanning garbage as a length field.
const (
	frameMagic  = 0x53544d4a // "STMJ"
	frameHeader = 12
	// maxFrame bounds one record; anything larger is treated as a torn or
	// corrupt header during the open scan.
	maxFrame = 1 << 28
)

// SalvageReport describes what opening a journal had to repair.
type SalvageReport struct {
	// Records is how many intact records the journal held.
	Records int
	// DroppedBytes is the size of the torn/corrupt tail that was removed
	// (0 for a clean journal).
	DroppedBytes int64
	// QuarantinePath is where the dropped tail bytes were saved ("" when
	// nothing was dropped).
	QuarantinePath string
}

// Salvaged reports whether the open had to drop a tail.
func (r SalvageReport) Salvaged() bool { return r.DroppedBytes > 0 }

// Journal is an append-only record log with per-record checksums. Appends
// are safe for concurrent use; the frame is assembled into one buffer and
// written with a single Write call so a crash can only tear the final
// frame, which the next open salvages.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJournal opens (creating if needed) the journal at path, returning the
// intact records and a salvage report. A torn or corrupt tail is moved to
// "<path>.quarantine" and the journal truncated back to its intact prefix,
// so a crashed writer never poisons the next reader.
func OpenJournal(path string) (*Journal, [][]byte, SalvageReport, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, SalvageReport{}, fmt.Errorf("artifact: open journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, SalvageReport{}, fmt.Errorf("artifact: read journal: %w", err)
	}
	recs, good := scanFrames(data)
	rep := SalvageReport{Records: len(recs), DroppedBytes: int64(len(data) - good)}
	if rep.DroppedBytes > 0 {
		qpath := path + ".quarantine"
		if werr := os.WriteFile(qpath, data[good:], 0o644); werr == nil {
			rep.QuarantinePath = qpath
		}
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, nil, rep, fmt.Errorf("artifact: truncate torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, rep, fmt.Errorf("artifact: seek journal: %w", err)
	}
	return &Journal{f: f, path: path}, recs, rep, nil
}

// scanFrames parses intact frames from data, returning the records and the
// byte offset of the first non-intact frame (== len(data) for a clean log).
func scanFrames(data []byte) (recs [][]byte, good int) {
	off := 0
	for {
		if len(data)-off < frameHeader {
			return recs, off
		}
		magic := binary.LittleEndian.Uint32(data[off:])
		n := binary.LittleEndian.Uint32(data[off+4:])
		sum := binary.LittleEndian.Uint32(data[off+8:])
		if magic != frameMagic || n > maxFrame {
			return recs, off
		}
		end := off + frameHeader + int(n)
		if end > len(data) {
			return recs, off
		}
		payload := data[off+frameHeader : end]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off
		}
		recs = append(recs, payload)
		off = end
	}
}

// frame assembles one record's on-disk bytes.
func frame(payload []byte) []byte {
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf, frameMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeader:], payload)
	return buf
}

// Append writes one record.
func (j *Journal) Append(payload []byte) error {
	return j.appendPrefix(payload, -1)
}

// appendPrefix writes a record, optionally truncated to keep bytes of its
// frame (keep >= 0) — the injected torn-write path. keep < 0 writes the
// whole frame.
func (j *Journal) appendPrefix(payload []byte, keep int) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("artifact: journal record of %d bytes exceeds frame limit", len(payload))
	}
	buf := frame(payload)
	if keep >= 0 && keep < len(buf) {
		buf = buf[:keep]
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("artifact: journal is closed")
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("artifact: append journal record: %w", err)
	}
	return nil
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// Close closes the underlying file; further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// TruncateJournal cuts a journal back to its first n intact records — the
// deterministic stand-in for a SIGKILL at a record boundary, used by the
// kill-resume equivalence tests. n past the end leaves the file unchanged.
func TruncateJournal(path string, n int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	off, kept := 0, 0
	for kept < n {
		if len(data)-off < frameHeader {
			break
		}
		fn := binary.LittleEndian.Uint32(data[off+4:])
		end := off + frameHeader + int(fn)
		if binary.LittleEndian.Uint32(data[off:]) != frameMagic || end > len(data) {
			break
		}
		off, kept = end, kept+1
	}
	return os.Truncate(path, int64(off))
}
