package artifact

import (
	"fmt"
	"testing"
)

// benchPayload is sized like a realistic stored TrialResponse (a JSON value
// plus a small metrics snapshot).
func benchPayload(i int) []byte {
	return []byte(fmt.Sprintf(`{"value":%d,"ok":true,"metrics":{"counters":{"harness.pool.trials":1,"vm.cycles":%d}}}`,
		i, i*7919))
}

// BenchmarkArtifactCommit measures the write path a run pays per committed
// trial: manifest append + CAS blob write, reported as trials/sec
// (scripts/bench.sh records it as artifact_commit_trials_per_sec).
func BenchmarkArtifactCommit(b *testing.B) {
	s, err := Open(b.TempDir(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put("bench", i, fmt.Sprintf("key-%d", i), benchPayload(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "trials/sec")
}

// BenchmarkArtifactResume measures the resume-scan overhead: one Open
// replays a populated manifest (1000 committed trials) into the index,
// reported as replayed records/sec (artifact_replay_recs_per_sec).
func BenchmarkArtifactResume(b *testing.B) {
	const recs = 1000
	dir := b.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < recs; i++ {
		if err := s.Put("bench", i, fmt.Sprintf("key-%d", i), benchPayload(i)); err != nil {
			b.Fatal(err)
		}
	}
	s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir, nil)
		if err != nil {
			b.Fatal(err)
		}
		if s.Len() != recs {
			b.Fatalf("replayed %d records, want %d", s.Len(), recs)
		}
		s.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(recs*b.N)/b.Elapsed().Seconds(), "replay-recs/sec")
}
