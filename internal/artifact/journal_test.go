package artifact

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openAll(t *testing.T, path string) (*Journal, [][]byte, SalvageReport) {
	t.Helper()
	j, recs, rep, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	return j, recs, rep
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, recs, rep := openAll(t, path)
	if len(recs) != 0 || rep.Salvaged() {
		t.Fatalf("fresh journal: recs=%d salvaged=%v", len(recs), rep.Salvaged())
	}
	want := [][]byte{[]byte("one"), {}, []byte("three"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got, rep2 := openAll(t, path)
	defer j2.Close()
	if rep2.Salvaged() {
		t.Errorf("clean journal reported salvage: %+v", rep2)
	}
	if len(got) != len(want) {
		t.Fatalf("reopened %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestJournalSalvagesTornTail cuts the final frame at every possible byte
// boundary: each open must recover exactly the intact prefix, quarantine
// the tail, and leave a journal that appends cleanly afterwards.
func TestJournalSalvagesTornTail(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "full")
	j, _, _ := openAll(t, base)
	for i := 0; i < 3; i++ {
		if err := j.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	full, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	frameLen := len(full) / 3

	for cut := 1; cut < frameLen; cut++ {
		path := filepath.Join(dir, fmt.Sprintf("torn-%d", cut))
		if err := os.WriteFile(path, full[:2*frameLen+cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, recs, rep := openAll(t, path)
		if len(recs) != 2 {
			t.Fatalf("cut=%d: salvaged %d records, want 2", cut, len(recs))
		}
		if !rep.Salvaged() || rep.DroppedBytes != int64(cut) {
			t.Errorf("cut=%d: salvage report %+v, want %d dropped bytes", cut, rep, cut)
		}
		if q, err := os.ReadFile(rep.QuarantinePath); err != nil || len(q) != cut {
			t.Errorf("cut=%d: quarantine file: %v (%d bytes)", cut, err, len(q))
		}
		// The salvaged journal must keep working.
		if err := j2.Append([]byte("after")); err != nil {
			t.Fatal(err)
		}
		j2.Close()
		_, recs2, rep2 := openAll(t, path)
		if len(recs2) != 3 || rep2.Salvaged() {
			t.Errorf("cut=%d: post-salvage reopen recs=%d salvaged=%v", cut, len(recs2), rep2.Salvaged())
		}
	}
}

// TestJournalRejectsCorruptFrame flips one payload byte: the CRC must stop
// the scan at the corrupt frame.
func TestJournalRejectsCorruptFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, _, _ := openAll(t, path)
	j.Append([]byte("good"))
	j.Append([]byte("soon-corrupt"))
	j.Close()
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	os.WriteFile(path, data, 0o644)

	j2, recs, rep := openAll(t, path)
	defer j2.Close()
	if len(recs) != 1 || string(recs[0]) != "good" {
		t.Errorf("recs = %q, want [good]", recs)
	}
	if !rep.Salvaged() {
		t.Error("corrupt frame did not trigger salvage")
	}
}

func TestJournalConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, _, _ := openAll(t, path)
	const writers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := j.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	j.Close()
	_, recs, rep := openAll(t, path)
	if len(recs) != writers*each || rep.Salvaged() {
		t.Errorf("concurrent appends: %d records (want %d), salvaged=%v",
			len(recs), writers*each, rep.Salvaged())
	}
}

func TestTruncateJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, _, _ := openAll(t, path)
	for i := 0; i < 5; i++ {
		j.Append([]byte{byte(i)})
	}
	j.Close()
	for _, n := range []int{7, 5, 3, 0} {
		if err := TruncateJournal(path, n); err != nil {
			t.Fatal(err)
		}
		_, recs, rep := openAll(t, path)
		want := n
		if want > 5 {
			want = 5
		}
		if len(recs) != want || rep.Salvaged() {
			t.Errorf("truncate to %d: %d records, salvaged=%v", n, len(recs), rep.Salvaged())
		}
	}
}
