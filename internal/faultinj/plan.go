package faultinj

import "stmdiag/internal/obs"

// Plan is one trial attempt's fault schedule: an independent splitmix64
// stream per layer, advanced once per injection decision. A Plan is derived
// purely from (spec, base seed, stream label, trial, attempt), so the
// faults a trial sees never depend on worker count or scheduling — the same
// property the harness's TrialSeed gives workload RNG. A nil *Plan injects
// nothing; every method is safe on a nil receiver.
//
// A Plan is confined to its trial's goroutine, like the trial's VM and RNG.
type Plan struct {
	spec  Spec
	state [NumLayers]uint64
	sink  *obs.Sink
	tel   [NumLayers]*obs.Counter // lazily resolved so clean layers stay out of metrics
	total *obs.Counter

	trial, attempt int // derivation coordinates, stamped onto flight events
}

// NewPlan derives the fault schedule for one trial attempt. It returns nil
// when the spec is disabled, so clean runs carry no plan and pay only a nil
// check at each injection point. Injected faults are counted on sink as
// "faultinj.injected.<layer>" and "faultinj.injected" (total).
func NewPlan(spec Spec, base int64, stream string, trial, attempt int, sink *obs.Sink) *Plan {
	if !spec.Enabled() {
		return nil
	}
	p := &Plan{spec: spec, sink: sink, trial: trial, attempt: attempt}
	for l := range p.state {
		p.state[l] = planState(base, spec.Seed, stream, trial, attempt, Layer(l))
	}
	return p
}

// planState hashes the derivation tuple into one layer's initial PRNG
// state, mirroring harness.TrialSeed's FNV-1a + splitmix64 construction so
// fault streams decorrelate from each other and from workload seeds.
func planState(base, salt int64, stream string, trial, attempt int, l Layer) uint64 {
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(stream); i++ {
		h ^= uint64(stream[i])
		h *= fnvPrime
	}
	h ^= uint64(base) * 0x9e3779b97f4a7c15
	h ^= uint64(salt) * 0xd6e8feb86659fd93
	h ^= uint64(trial) * 0xbf58476d1ce4e5b9
	h ^= uint64(attempt+1) * 0x94d049bb133111eb
	h ^= (uint64(l) + 1) * 0xff51afd7ed558ccd
	return mix64(h)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// next advances one layer's stream and returns a fresh 64-bit value.
func (p *Plan) next(l Layer) uint64 {
	// splitmix64: add the Weyl constant, finalize.
	p.state[l] += 0x9e3779b97f4a7c15
	return mix64(p.state[l])
}

// Hit decides whether layer l injects a fault at this point, advancing the
// layer's stream, and counts the injection. Nil-safe: a nil plan never hits.
func (p *Plan) Hit(l Layer) bool {
	if p == nil || p.spec.Rates[l] <= 0 {
		return false
	}
	// 53-bit mantissa → uniform float in [0, 1).
	u := float64(p.next(l)>>11) * (1.0 / (1 << 53))
	if u >= p.spec.Rates[l] {
		return false
	}
	if p.tel[l] == nil {
		p.tel[l] = p.sink.Counter("faultinj.injected." + l.String())
		if p.total == nil {
			p.total = p.sink.Counter("faultinj.injected")
		}
	}
	p.tel[l].Inc()
	p.total.Inc()
	// Injections (including MSR read/write glitches) land in the trial's
	// flight recorder, stamped by the cycle clock: if the trial later
	// degrades, its TrialError tail shows exactly which faults preceded
	// the crash.
	p.sink.RecordFlight(obs.FlightEvent{
		Cycle: p.sink.Cycles(), Trial: p.trial, Attempt: p.attempt,
		Kind: obs.FlightFault, Detail: l.String(),
	})
	return true
}

// Corrupt deterministically flips low bits of v using layer l's stream.
// The result stays non-negative so corrupted PCs decode as out-of-range
// (and get skipped or reclassified) rather than crashing decoders.
func (p *Plan) Corrupt(l Layer, v int) int {
	if p == nil {
		return v
	}
	flipped := v ^ int(p.next(l)&0xffff)
	if flipped < 0 {
		flipped = -flipped
	}
	return flipped
}

// TruncN picks how many newest entries of an n-entry snapshot survive a
// ring-truncation fault: a value in [0, n-1] drawn from layer l's stream.
func (p *Plan) TruncN(l Layer, n int) int {
	if p == nil || n <= 0 {
		return n
	}
	return int(p.next(l) % uint64(n))
}

// Spec returns the spec the plan was derived from (zero for a nil plan).
func (p *Plan) Spec() Spec {
	if p == nil {
		return Spec{}
	}
	return p.spec
}

// InjectedPanic is the value an injected trial panic carries, so the
// harness's recover path can distinguish scheduled faults from real bugs in
// telemetry while handling both identically.
type InjectedPanic struct {
	Trial   int
	Attempt int
}

func (ip InjectedPanic) String() string {
	return "faultinj: injected trial panic"
}
