// Package faultinj is a deterministic fault-injection engine for the
// capture→diagnosis pipeline. The paper's premise is that LBR/LCR profiles
// are noisy, tiny and polluted (ring pollution, kernel-branch filtering,
// toggling around libraries, §4.2) yet statistical diagnosis still
// converges; this package makes that claim testable by injecting the fault
// classes a production deployment would actually see — record loss,
// duplication and corruption, ring truncation, MSR glitches, lost
// segfault-handler and success-site profiles, and whole-trial crashes —
// at seed-derived, byte-reproducible points.
//
// Determinism is the load-bearing property: a fault plan is derived from
// (spec seed, base seed, stream label, trial index, attempt, layer) exactly
// like the harness derives trial seeds, so a fixed -faults spec produces
// identical faults — and identical downstream output — for every -jobs
// value and across repeated runs.
package faultinj

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Layer identifies one injection point in the capture path.
type Layer uint8

// Injection layers, ordered roughly from hardware to harness. The comment
// names the paper-§4.2 pollution source each one generalizes.
const (
	// LBRDrop silently discards a branch record offered to the LBR
	// (recording gaps, the toggling-loss class of §4.3).
	LBRDrop Layer = iota
	// LBRDup records an offered branch twice, evicting an extra entry
	// (ring pollution by repeated entries).
	LBRDup
	// LBRCorrupt flips bits in a branch record's From/To before recording
	// (bit-level record corruption).
	LBRCorrupt
	// LCRDrop silently discards a coherence record offered to the LCR.
	LCRDrop
	// LCRDup records an offered coherence event twice.
	LCRDup
	// LCRCorrupt flips bits in a coherence record's PC before recording.
	LCRCorrupt
	// RingTrunc drops the oldest entries of a profile snapshot (partial
	// ring read-out, the short-history pollution of §4.2.1).
	RingTrunc
	// MSRRead corrupts a value read back from a branch-stack MSR during
	// profiling (rdmsr glitch).
	MSRRead
	// MSRWrite makes a configuration wrmsr fail (wrmsr glitch); consumers
	// retry and then degrade.
	MSRWrite
	// SegvLoss loses the segfault-handler profile of a crashing run (the
	// handler itself died, §5.1 step 4's fragile link).
	SegvLoss
	// SuccLoss loses a success-site profile (sampled success logging,
	// Figure 8's success-run attrition).
	SuccLoss
	// TrialPanic crashes the whole trial at the harness layer (a worker
	// panic in a production diagnosis fleet).
	TrialPanic

	// The store layers inject below the harness, into the durable artifact
	// path (internal/artifact): the faults a diagnosis pipeline's own
	// persistent state sees — torn writes, silent media corruption, and
	// truncated journal appends. They fire when an artifact store commits a
	// trial result, never during capture, so they test the resume path's
	// detect-quarantine-re-execute claim with the same deterministic
	// machinery as the capture layers.

	// ArtifactTorn cuts a blob write short (a crash mid-write leaving a
	// partial file behind the rename barrier).
	ArtifactTorn
	// ArtifactCorrupt flips a byte of a stored blob (bit rot / silent media
	// corruption caught by the content hash on load).
	ArtifactCorrupt
	// JournalTrunc tears a manifest-journal append mid-frame (the classic
	// torn tail that the open-time salvage scan must repair).
	JournalTrunc

	// NumLayers counts the injection layers.
	NumLayers = int(JournalTrunc) + 1
)

var layerNames = [NumLayers]string{
	"lbr-drop", "lbr-dup", "lbr-corrupt",
	"lcr-drop", "lcr-dup", "lcr-corrupt",
	"ring-trunc", "msr-read", "msr-write",
	"segv-loss", "succ-loss", "panic",
	"artifact-torn-write", "artifact-corrupt", "journal-trunc",
}

// String returns the spec-grammar name of the layer.
func (l Layer) String() string {
	if int(l) < NumLayers {
		return layerNames[l]
	}
	return fmt.Sprintf("layer(%d)", uint8(l))
}

// LayerByName resolves a spec-grammar layer name.
func LayerByName(name string) (Layer, bool) {
	for i, n := range layerNames {
		if n == name {
			return Layer(i), true
		}
	}
	return 0, false
}

// ErrGlitch marks an injected MSR failure. Consumers distinguish it from
// genuine errors with errors.Is and degrade (retry, then skip) instead of
// aborting the run.
var ErrGlitch = errors.New("faultinj: injected MSR glitch")

// DefaultRetries is the retry budget for panicking trials when the spec
// does not set one: a trial may be re-attempted this many times before it
// is recorded as degraded.
const DefaultRetries = 2

// Spec is a parsed fault specification: a per-layer injection rate plus the
// plan-derivation seed salt and the trial retry budget. The zero Spec is
// "off": no layer injects and plans are nil.
type Spec struct {
	// Rates holds the per-layer injection probability in [0, 1].
	Rates [NumLayers]float64
	// Seed salts every plan derivation, decorrelating fault streams from
	// the workload's trial seeds.
	Seed int64
	// Retries is the per-trial retry budget for panicking trials; 0 means
	// DefaultRetries. Parse clause: "retries=N", N >= 1.
	Retries int
}

// Enabled reports whether any layer has a positive rate.
func (s Spec) Enabled() bool {
	for _, r := range s.Rates {
		if r > 0 {
			return true
		}
	}
	return false
}

// RetryBudget returns the effective retry budget.
func (s Spec) RetryBudget() int {
	if s.Retries > 0 {
		return s.Retries
	}
	return DefaultRetries
}

// ParseSpec parses the -faults spec grammar:
//
//	spec    := "" | "off" | clause ("," clause)*
//	clause  := "rate=" FLOAT        base rate applied to every layer
//	         | LAYER "=" FLOAT      per-layer rate override
//	         | "seed=" INT          fault-plan seed salt
//	         | "retries=" INT       trial retry budget (>= 1)
//	LAYER   := lbr-drop | lbr-dup | lbr-corrupt | lcr-drop | lcr-dup
//	         | lcr-corrupt | ring-trunc | msr-read | msr-write
//	         | segv-loss | succ-loss | panic
//	         | artifact-torn-write | artifact-corrupt | journal-trunc
//
// Rates must be finite and in [0, 1]. Clauses apply left to right, so
// "rate=0.01,panic=0" turns everything on at 1% except trial panics.
// A bare float ("0.01") is shorthand for "rate=0.01".
func ParseSpec(in string) (Spec, error) {
	var s Spec
	src := strings.TrimSpace(in)
	if src == "" || src == "off" {
		return s, nil
	}
	for _, clause := range strings.Split(src, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			return Spec{}, fmt.Errorf("faultinj: empty clause in spec %q", in)
		}
		key, val, found := strings.Cut(clause, "=")
		if !found {
			// Bare float shorthand for the base rate.
			r, err := parseRate(clause)
			if err != nil {
				return Spec{}, fmt.Errorf("faultinj: clause %q is neither key=value nor a rate: %w", clause, err)
			}
			for i := range s.Rates {
				s.Rates[i] = r
			}
			continue
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "rate":
			r, err := parseRate(val)
			if err != nil {
				return Spec{}, fmt.Errorf("faultinj: rate clause %q: %w", clause, err)
			}
			for i := range s.Rates {
				s.Rates[i] = r
			}
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faultinj: seed clause %q: %v", clause, err)
			}
			s.Seed = n
		case "retries":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Spec{}, fmt.Errorf("faultinj: retries clause %q: want an integer >= 1", clause)
			}
			s.Retries = n
		default:
			l, ok := LayerByName(key)
			if !ok {
				return Spec{}, fmt.Errorf("faultinj: unknown clause key %q (layers: %s)",
					key, strings.Join(layerNames[:], ", "))
			}
			r, err := parseRate(val)
			if err != nil {
				return Spec{}, fmt.Errorf("faultinj: layer clause %q: %w", clause, err)
			}
			s.Rates[l] = r
		}
	}
	return s, nil
}

// parseRate parses a probability in [0, 1].
func parseRate(v string) (float64, error) {
	r, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if r != r || r < 0 || r > 1 {
		return 0, fmt.Errorf("rate %v outside [0, 1]", r)
	}
	return r, nil
}

// String renders the spec in canonical grammar form; ParseSpec(s.String())
// reproduces s exactly. The zero spec renders as "off".
func (s Spec) String() string {
	var clauses []string
	uniform := true
	for _, r := range s.Rates[1:] {
		if r != s.Rates[0] {
			uniform = false
			break
		}
	}
	switch {
	case uniform && s.Rates[0] != 0:
		clauses = append(clauses, "rate="+fmtRate(s.Rates[0]))
	case !uniform:
		for i, r := range s.Rates {
			if r != 0 {
				clauses = append(clauses, layerNames[i]+"="+fmtRate(r))
			}
		}
		sort.Strings(clauses)
	}
	if s.Seed != 0 {
		clauses = append(clauses, "seed="+strconv.FormatInt(s.Seed, 10))
	}
	if s.Retries != 0 {
		clauses = append(clauses, "retries="+strconv.Itoa(s.Retries))
	}
	if len(clauses) == 0 {
		return "off"
	}
	return strings.Join(clauses, ",")
}

// fmtRate renders a rate so that parsing it back yields the same float64.
func fmtRate(r float64) string { return strconv.FormatFloat(r, 'g', -1, 64) }
