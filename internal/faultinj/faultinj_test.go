package faultinj

import (
	"errors"
	"math"
	"strings"
	"testing"

	"stmdiag/internal/obs"
)

func TestLayerNamesRoundTrip(t *testing.T) {
	for i := 0; i < NumLayers; i++ {
		l := Layer(i)
		got, ok := LayerByName(l.String())
		if !ok || got != l {
			t.Errorf("LayerByName(%q) = %v, %v; want %v, true", l.String(), got, ok, l)
		}
	}
	if _, ok := LayerByName("no-such-layer"); ok {
		t.Error("LayerByName accepted an unknown name")
	}
}

func TestParseSpec(t *testing.T) {
	uniform := func(r float64) (rates [NumLayers]float64) {
		for i := range rates {
			rates[i] = r
		}
		return rates
	}
	cases := []struct {
		in      string
		want    Spec
		wantErr bool
	}{
		{in: "", want: Spec{}},
		{in: "off", want: Spec{}},
		{in: "  off  ", want: Spec{}},
		{in: "0.01", want: Spec{Rates: uniform(0.01)}},
		{in: "rate=0.01", want: Spec{Rates: uniform(0.01)}},
		{in: "rate=0", want: Spec{}},
		{in: "rate=1", want: Spec{Rates: uniform(1)}},
		{in: "seed=42", want: Spec{Seed: 42}},
		{in: "seed=-7", want: Spec{Seed: -7}},
		{in: "retries=5", want: Spec{Retries: 5}},
		{
			in: "lbr-drop=0.5",
			want: func() Spec {
				var s Spec
				s.Rates[LBRDrop] = 0.5
				return s
			}(),
		},
		{
			in: "rate=0.01,panic=0,seed=9,retries=3",
			want: func() Spec {
				s := Spec{Rates: uniform(0.01), Seed: 9, Retries: 3}
				s.Rates[TrialPanic] = 0
				return s
			}(),
		},
		{
			// Clauses apply left to right: later override wins.
			in: "msr-write=0.2,msr-write=0.4",
			want: func() Spec {
				var s Spec
				s.Rates[MSRWrite] = 0.4
				return s
			}(),
		},
		{
			// Whitespace around clauses and '=' is tolerated.
			in:   " rate = 0.1 , seed = 1 ",
			want: Spec{Rates: uniform(0.1), Seed: 1},
		},
		{in: "rate=1.5", wantErr: true},
		{in: "rate=-0.1", wantErr: true},
		{in: "rate=NaN", wantErr: true},
		{in: "rate=bogus", wantErr: true},
		{in: "bogus=0.1", wantErr: true},
		{in: "seed=1.5", wantErr: true},
		{in: "retries=0", wantErr: true},
		{in: "retries=-1", wantErr: true},
		{in: "retries=two", wantErr: true},
		{in: "rate=0.1,,seed=1", wantErr: true},
		{in: ",", wantErr: true},
		{in: "=0.1", wantErr: true},
		{in: "nonsense", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q) = %+v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	specs := []string{
		"off", "rate=0.01", "lbr-drop=0.5", "rate=0.01,panic=0",
		"seed=42", "retries=3", "rate=0.1,seed=-2,retries=1",
		"msr-read=1e-06,msr-write=0.25",
	}
	for _, in := range specs {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Errorf("ParseSpec(%q -> %q): %v", in, s.String(), err)
			continue
		}
		if back != s {
			t.Errorf("round trip %q -> %q -> %+v, want %+v", in, s.String(), back, s)
		}
	}
	if got := (Spec{}).String(); got != "off" {
		t.Errorf("zero spec String() = %q, want off", got)
	}
}

func TestSpecRetryBudget(t *testing.T) {
	if got := (Spec{}).RetryBudget(); got != DefaultRetries {
		t.Errorf("default retry budget = %d, want %d", got, DefaultRetries)
	}
	if got := (Spec{Retries: 7}).RetryBudget(); got != 7 {
		t.Errorf("explicit retry budget = %d, want 7", got)
	}
}

func TestNewPlanDisabled(t *testing.T) {
	if p := NewPlan(Spec{}, 0, "s", 0, 0, nil); p != nil {
		t.Error("disabled spec must yield a nil plan")
	}
	var nilPlan *Plan
	if nilPlan.Hit(LBRDrop) {
		t.Error("nil plan hit")
	}
	if got := nilPlan.Corrupt(LBRCorrupt, 42); got != 42 {
		t.Errorf("nil plan Corrupt = %d, want identity", got)
	}
	if got := nilPlan.TruncN(RingTrunc, 16); got != 16 {
		t.Errorf("nil plan TruncN = %d, want identity", got)
	}
	if got := nilPlan.Spec(); got != (Spec{}) {
		t.Errorf("nil plan Spec = %+v, want zero", got)
	}
}

// TestPlanDeterminism pins the derivation contract: identical tuples give
// identical fault streams; changing any component of the tuple decorrelates.
func TestPlanDeterminism(t *testing.T) {
	spec, err := ParseSpec("rate=0.3,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	draw := func(p *Plan) string {
		var b strings.Builder
		for i := 0; i < 64; i++ {
			for l := 0; l < NumLayers; l++ {
				if p.Hit(Layer(l)) {
					b.WriteByte('1')
				} else {
					b.WriteByte('0')
				}
			}
		}
		return b.String()
	}
	ref := draw(NewPlan(spec, 7, "sort/fail", 3, 0, nil))
	if again := draw(NewPlan(spec, 7, "sort/fail", 3, 0, nil)); again != ref {
		t.Fatal("same tuple produced different fault streams")
	}
	variants := map[string]*Plan{
		"base":    NewPlan(spec, 8, "sort/fail", 3, 0, nil),
		"stream":  NewPlan(spec, 7, "sort/succ", 3, 0, nil),
		"trial":   NewPlan(spec, 7, "sort/fail", 4, 0, nil),
		"attempt": NewPlan(spec, 7, "sort/fail", 3, 1, nil),
	}
	for name, p := range variants {
		if draw(p) == ref {
			t.Errorf("changing %s did not change the fault stream", name)
		}
	}
	other := spec
	other.Seed = 6
	if draw(NewPlan(other, 7, "sort/fail", 3, 0, nil)) == ref {
		t.Error("changing spec seed did not change the fault stream")
	}
}

// TestPlanRates checks the hit frequency tracks the configured rate and
// that rate-0 layers never fire even when others do.
func TestPlanRates(t *testing.T) {
	spec, err := ParseSpec("rate=0.25,panic=0")
	if err != nil {
		t.Fatal(err)
	}
	const draws = 4000
	hits := 0
	p := NewPlan(spec, 1, "rates", 0, 0, nil)
	for i := 0; i < draws; i++ {
		if p.Hit(LBRDrop) {
			hits++
		}
		if p.Hit(TrialPanic) {
			t.Fatal("rate-0 layer fired")
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.25) > 0.05 {
		t.Errorf("hit rate %.3f, want ~0.25", got)
	}
}

func TestPlanCounters(t *testing.T) {
	spec, err := ParseSpec("lbr-drop=1")
	if err != nil {
		t.Fatal(err)
	}
	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	p := NewPlan(spec, 0, "counters", 0, 0, sink)
	for i := 0; i < 3; i++ {
		if !p.Hit(LBRDrop) {
			t.Fatal("rate-1 layer missed")
		}
	}
	snap := sink.Metrics.Snapshot()
	if got := snap.Counter("faultinj.injected.lbr-drop"); got != 3 {
		t.Errorf("layer counter = %d, want 3", got)
	}
	if got := snap.Counter("faultinj.injected"); got != 3 {
		t.Errorf("total counter = %d, want 3", got)
	}
}

func TestCorruptAndTruncN(t *testing.T) {
	spec, _ := ParseSpec("rate=1")
	p := NewPlan(spec, 0, "corrupt", 0, 0, nil)
	changed := false
	for i := 0; i < 32; i++ {
		v := p.Corrupt(LBRCorrupt, 100)
		if v < 0 {
			t.Fatalf("Corrupt produced negative value %d", v)
		}
		if v != 100 {
			changed = true
		}
	}
	if !changed {
		t.Error("Corrupt never changed the value in 32 draws")
	}
	for i := 0; i < 64; i++ {
		if k := p.TruncN(RingTrunc, 16); k < 0 || k >= 16 {
			t.Fatalf("TruncN(16) = %d outside [0, 16)", k)
		}
	}
	if k := p.TruncN(RingTrunc, 0); k != 0 {
		t.Errorf("TruncN(0) = %d, want 0", k)
	}
}

func TestErrGlitchIdentity(t *testing.T) {
	wrapped := errorsJoin(ErrGlitch)
	if !errors.Is(wrapped, ErrGlitch) {
		t.Error("wrapped glitch not recognized by errors.Is")
	}
}

// errorsJoin wraps e the way layer code reports glitches.
func errorsJoin(e error) error { return &glitchAt{e} }

type glitchAt struct{ err error }

func (g *glitchAt) Error() string { return "msr 0x1d9: " + g.err.Error() }
func (g *glitchAt) Unwrap() error { return g.err }
