package faultinj

import "testing"

// FuzzParseSpec checks the grammar's core invariant on arbitrary input:
// whatever parses must render canonically and re-parse to the identical
// spec, and parsing never panics.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"", "off", "0.01", "rate=0.01", "rate=1,seed=42,retries=3",
		"lbr-drop=0.5,lcr-corrupt=0.125", "rate=0.01,panic=0",
		"msr-read=1e-06", "seed=-9223372036854775808", "rate=0.1,,",
		"bogus=1", "rate=NaN", "retries=0",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSpec(in)
		if err != nil {
			return
		}
		canon := s.String()
		back, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, in, err)
		}
		if back != s {
			t.Fatalf("round trip %q -> %q -> %+v, want %+v", in, canon, back, s)
		}
		if canon2 := back.String(); canon2 != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, canon2)
		}
	})
}
