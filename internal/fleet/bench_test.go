package fleet

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"stmdiag/internal/obs"
)

// BenchmarkFleetIngest measures end-to-end ingest throughput: pre-encoded
// gzip batches POSTed over loopback HTTP into the sharded store, parallel
// submitters. Reports profiles/sec (the acceptance floor is 10k/s) and
// shard-wait-ns/op, the lock-contention cost scripts/bench.sh records.
func BenchmarkFleetIngest(b *testing.B) {
	const perBatch = 64
	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	store := NewStore(StoreOptions{Sink: sink})
	srv := httptest.NewServer(NewService(store, nil, sink).Handler())
	defer srv.Close()

	subs := randomSubmissions(1, perBatch)
	data, err := EncodeBatchGzip(&Batch{Client: "bench", Subs: subs})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := srv.Client()
		for pb.Next() {
			req, err := http.NewRequest(http.MethodPost, srv.URL+"/fleet/ingest", bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			req.Header.Set("Content-Encoding", "gzip")
			resp, err := client.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("ingest: %s", resp.Status)
			}
		}
	})
	b.StopTimer()

	snap := sink.Metrics.Snapshot()
	var waitNS uint64
	for i := 0; i < store.Shards(); i++ {
		waitNS += snap.Counter(fmt.Sprintf("fleet.store.shard%d.wait_ns", i))
	}
	profiles := float64(snap.Counter("fleet.ingest.profiles"))
	b.ReportMetric(profiles/b.Elapsed().Seconds(), "profiles/sec")
	b.ReportMetric(float64(waitNS)/float64(b.N), "shard-wait-ns/op")
}
