package fleet

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"stmdiag/internal/artifact"
	"stmdiag/internal/core"
	"stmdiag/internal/obs"
	"stmdiag/internal/stats"
)

// DefaultShards is the per-app lock-stripe count. Sixteen stripes keep
// shard collisions rare at tens of concurrent ingest handlers while the
// per-stripe maps stay small enough to stay cache-resident.
const DefaultShards = 16

// StoreOptions sizes a Store.
type StoreOptions struct {
	// Shards is the per-app lock-stripe count (0 = DefaultShards).
	Shards int
	// Sink receives fleet.store.* metrics: per-shard commit counts and
	// lock-wait time (the contention signal), ranking rescore accounting.
	// Nil disables metrics.
	Sink *obs.Sink
}

// Store is the fleet's profile aggregate: per-(app, event) success/failure
// counters behind striped locks, plus per-app run totals and an
// incrementally maintained diagnosis ranking. Adds from many ingest
// handlers proceed concurrently — two submissions contend only when their
// events hash to the same stripe of the same app.
//
// The statistics are pure counter sums, so the aggregate is independent of
// arrival order (stats.ScoreCounts): a report taken after ingestion settles
// is byte-identical to the monolithic diagnosis over the same runs.
type Store struct {
	shards int
	sink   *obs.Sink

	mu   sync.RWMutex
	apps map[string]*appState

	// Per-stripe instruments, shared across apps so the stripe count —
	// not the app count — bounds the metric family.
	shardCommits []*obs.Counter // events committed through stripe i
	shardWaitNS  []*obs.Counter // ns spent waiting for stripe i's lock

	profiles     *obs.Counter // submissions committed
	fullRescore  *obs.Counter // reports that rescored every event
	deltaRescore *obs.Counter // reports that rescored only dirty events
	rescored     *obs.Counter // events rescored across all reports

	// Durability (persist.go): wal journals accepted submissions so a
	// restarted server replays to the identical aggregate; nil for a
	// plain in-memory store.
	wal        *artifact.Journal
	replayed   int
	walAppends *obs.Counter
	walErrors  *obs.Counter
	walRejects *obs.Counter
}

// NewStore builds an empty store.
func NewStore(o StoreOptions) *Store {
	if o.Shards <= 0 {
		o.Shards = DefaultShards
	}
	s := &Store{
		shards: o.Shards,
		sink:   o.Sink,
		apps:   make(map[string]*appState),
	}
	if o.Sink != nil {
		s.shardCommits = make([]*obs.Counter, o.Shards)
		s.shardWaitNS = make([]*obs.Counter, o.Shards)
		for i := 0; i < o.Shards; i++ {
			s.shardCommits[i] = o.Sink.Counter(fmt.Sprintf("fleet.store.shard%d.commits", i))
			s.shardWaitNS[i] = o.Sink.Counter(fmt.Sprintf("fleet.store.shard%d.wait_ns", i))
		}
		s.profiles = o.Sink.Counter("fleet.store.profiles")
		s.fullRescore = o.Sink.Counter("fleet.rank.full_rescores")
		s.deltaRescore = o.Sink.Counter("fleet.rank.delta_rescores")
		s.rescored = o.Sink.Counter("fleet.rank.events_rescored")
	}
	return s
}

// Shards returns the lock-stripe count.
func (s *Store) Shards() int { return s.shards }

// eventCount is one (app, event)'s merged occurrence counters.
type eventCount struct {
	inFail, inSucc int
}

// storeShard is one lock stripe of an app's event table. dirty carries the
// events touched since the last report; the ranker drains it to rescore
// only what changed.
type storeShard struct {
	mu     sync.Mutex
	counts map[core.Event]*eventCount
	dirty  map[core.Event]bool
}

// appState is one application's aggregate.
type appState struct {
	name   string
	shards []storeShard

	// Run totals. totalsMu also serializes the Failed/usable accounting;
	// the per-event counters live in the stripes.
	totalsMu   sync.Mutex
	mode       core.Mode
	failRuns   int
	succRuns   int
	usableFail int // failed runs with a non-empty profile

	// Incremental ranking state, maintained lazily at report time. ranked
	// is kept sorted under stats.Less; scored caches each event's current
	// Scored so a delta pass can locate and replace its ranked entry
	// without touching the stripes of unchanged events.
	rankMu        sync.Mutex
	ranked        []stats.Scored[core.Event]
	scored        map[core.Event]stats.Scored[core.Event]
	counts        map[core.Event]eventCount // counter cache behind ranked
	lastFailTotal int
}

func newAppState(name string, shards int) *appState {
	a := &appState{
		name:   name,
		shards: make([]storeShard, shards),
		scored: make(map[core.Event]stats.Scored[core.Event]),
		counts: make(map[core.Event]eventCount),
	}
	for i := range a.shards {
		a.shards[i].counts = make(map[core.Event]*eventCount)
		a.shards[i].dirty = make(map[core.Event]bool)
	}
	return a
}

// app returns the app's state, creating it on first submission.
func (s *Store) app(name string) *appState {
	s.mu.RLock()
	a := s.apps[name]
	s.mu.RUnlock()
	if a != nil {
		return a
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if a = s.apps[name]; a == nil {
		a = newAppState(name, s.shards)
		s.apps[name] = a
	}
	return a
}

// eventShard hashes an event to its lock stripe (FNV-1a over the event's
// identity fields; strings dominate the mix).
func eventShard(e core.Event, shards int) int {
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	h := uint64(fnvOffset)
	step := func(b byte) { h ^= uint64(b); h *= fnvPrime }
	step(byte(e.Kind))
	for i := 0; i < len(e.Branch); i++ {
		step(e.Branch[i])
	}
	step(byte(e.Edge))
	for i := 0; i < len(e.File); i++ {
		step(e.File[i])
	}
	step(byte(e.Line))
	step(byte(e.Line >> 8))
	step(byte(e.Line >> 16))
	step(byte(e.Access))
	step(byte(e.State))
	return int(h % uint64(shards))
}

// Add commits one submission: journals it when the store is persistent
// (durability before acknowledgment), then bumps the app's run totals and
// the per-event counters of the (deduped) profile. Events are grouped by
// stripe so each stripe lock is taken at most once per submission.
func (s *Store) Add(sub Submission) {
	s.logSubmission(sub)
	a := s.app(sub.App)
	events := DedupEvents(sub.Events)

	a.totalsMu.Lock()
	a.mode = sub.Mode
	if sub.Failed {
		a.failRuns++
		if len(events) > 0 {
			a.usableFail++
		}
	} else {
		a.succRuns++
	}
	a.totalsMu.Unlock()

	// Group by stripe first: one lock acquisition per touched stripe.
	perShard := make(map[int][]core.Event, len(events))
	for _, e := range events {
		i := eventShard(e, s.shards)
		perShard[i] = append(perShard[i], e)
	}
	for i, evs := range perShard {
		sh := &a.shards[i]
		var t0 time.Time
		if s.shardWaitNS != nil {
			t0 = time.Now()
		}
		sh.mu.Lock()
		if s.shardWaitNS != nil {
			s.shardWaitNS[i].Add(uint64(time.Since(t0)))
		}
		for _, e := range evs {
			c := sh.counts[e]
			if c == nil {
				c = &eventCount{}
				sh.counts[e] = c
			}
			if sub.Failed {
				c.inFail++
			} else {
				c.inSucc++
			}
			sh.dirty[e] = true
		}
		sh.mu.Unlock()
		if s.shardCommits != nil {
			s.shardCommits[i].Add(uint64(len(evs)))
		}
	}
	s.profiles.Inc()
}

// AddBatch commits every submission of a batch and returns the number
// accepted.
func (s *Store) AddBatch(b *Batch) int {
	for _, sub := range b.Subs {
		s.Add(sub)
	}
	return len(b.Subs)
}

// Apps lists the apps with data, sorted.
func (s *Store) Apps() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.apps))
	for name := range s.apps {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AppTotals summarizes one app's aggregate for /fleet/stats.
type AppTotals struct {
	App        string `json:"app"`
	Mode       string `json:"mode"`
	FailRuns   int    `json:"fail_runs"`
	SuccRuns   int    `json:"succ_runs"`
	UsableFail int    `json:"usable_fail"`
	Events     int    `json:"events"`
}

// Totals returns the app's aggregate counts (zero totals for an unknown
// app).
func (s *Store) Totals(app string) AppTotals {
	s.mu.RLock()
	a := s.apps[app]
	s.mu.RUnlock()
	if a == nil {
		return AppTotals{App: app}
	}
	a.totalsMu.Lock()
	t := AppTotals{
		App:        app,
		Mode:       a.mode.String(),
		FailRuns:   a.failRuns,
		SuccRuns:   a.succRuns,
		UsableFail: a.usableFail,
	}
	a.totalsMu.Unlock()
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		t.Events += len(sh.counts)
		sh.mu.Unlock()
	}
	return t
}

// Report builds the app's diagnosis report from the current aggregate —
// the same core.Report the monolithic core.Diagnose returns, so rendering
// is shared and convergence is byte-for-byte. Returns nil for an app with
// no failing runs (a diagnosis needs at least one failure profile, as in
// core.Diagnose).
func (s *Store) Report(app string) *core.Report {
	s.mu.RLock()
	a := s.apps[app]
	s.mu.RUnlock()
	if a == nil {
		return nil
	}
	return a.report(s)
}

// report refreshes the app's incremental ranking and snapshots it.
func (a *appState) report(s *Store) *core.Report {
	a.totalsMu.Lock()
	mode, failTotal, succTotal, usable := a.mode, a.failRuns, a.succRuns, a.usableFail
	a.totalsMu.Unlock()
	if failTotal == 0 {
		return nil
	}

	a.rankMu.Lock()
	defer a.rankMu.Unlock()

	// Drain the dirty sets: copy the touched events' counters out from
	// under the stripe locks.
	type update struct {
		ev core.Event
		c  eventCount
	}
	var updates []update
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		for e := range sh.dirty {
			updates = append(updates, update{e, *sh.counts[e]})
		}
		if len(sh.dirty) > 0 {
			sh.dirty = make(map[core.Event]bool)
		}
		sh.mu.Unlock()
	}
	for _, u := range updates {
		a.counts[u.ev] = u.c
	}

	if failTotal != a.lastFailTotal {
		// Every recall (and so every score) moved: rescore the whole
		// event table from the cached counters and resort. Still far
		// cheaper than the monolithic path, which re-walks every run's
		// full event list; here each event is one ScoreCounts call.
		a.ranked = a.ranked[:0]
		for e, c := range a.counts {
			sc := stats.ScoreCounts(e, c.inFail, c.inSucc, failTotal)
			a.scored[e] = sc
			a.ranked = append(a.ranked, sc)
		}
		stats.SortScored(a.ranked)
		a.lastFailTotal = failTotal
		s.fullRescore.Inc()
		s.rescored.Add(uint64(len(a.counts)))
	} else if len(updates) > 0 {
		// Only touched events moved: replace each one's entry in the
		// sorted ranking by binary search under the shared total order.
		for _, u := range updates {
			if old, ok := a.scored[u.ev]; ok {
				a.removeRanked(old)
			}
			sc := stats.ScoreCounts(u.ev, u.c.inFail, u.c.inSucc, failTotal)
			a.scored[u.ev] = sc
			a.insertRanked(sc)
		}
		s.deltaRescore.Inc()
		s.rescored.Add(uint64(len(updates)))
	}

	ranking := make([]stats.Scored[core.Event], len(a.ranked))
	copy(ranking, a.ranked)
	return &core.Report{
		Mode:        mode,
		Ranking:     ranking,
		FailureRuns: failTotal,
		SuccessRuns: succTotal,
		Verdict:     stats.AssessCounts(failTotal, usable),
	}
}

// rankedPos locates the first index not ordered strictly ahead of sc.
func (a *appState) rankedPos(sc stats.Scored[core.Event]) int {
	return sort.Search(len(a.ranked), func(i int) bool {
		return !stats.Less(a.ranked[i], sc)
	})
}

// removeRanked deletes sc's entry from the sorted ranking. stats.Less is a
// total order over distinct events, so the binary-search position is exact;
// the linear scan below it only absorbs events whose formatted identities
// collide (possible in principle, never in the event grammar).
func (a *appState) removeRanked(sc stats.Scored[core.Event]) {
	i := a.rankedPos(sc)
	for i < len(a.ranked) && a.ranked[i].Event != sc.Event {
		i++
	}
	if i < len(a.ranked) {
		a.ranked = append(a.ranked[:i], a.ranked[i+1:]...)
	}
}

// insertRanked places sc at its sorted position.
func (a *appState) insertRanked(sc stats.Scored[core.Event]) {
	i := a.rankedPos(sc)
	a.ranked = append(a.ranked, stats.Scored[core.Event]{})
	copy(a.ranked[i+1:], a.ranked[i:])
	a.ranked[i] = sc
}
