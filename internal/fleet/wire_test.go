package fleet

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"stmdiag/internal/cache"
	"stmdiag/internal/core"
	"stmdiag/internal/isa"
)

func branchEvent(name string, edge isa.BranchEdge) core.Event {
	return core.Event{Kind: core.EventBranch, Branch: name, Edge: edge}
}

func coherenceEvent(file string, line int, kind cache.AccessKind, st cache.State) core.Event {
	return core.Event{Kind: core.EventCoherence, File: file, Line: line, Access: kind, State: st}
}

func sampleBatch() *Batch {
	return &Batch{
		Client: "machine-7",
		Subs: []Submission{
			{
				App:    "sort",
				Mode:   core.ModeLBR,
				Failed: true,
				Events: []core.Event{
					branchEvent("cmp", isa.EdgeTrue),
					branchEvent("swap", isa.EdgeFalse),
					{Kind: core.EventJump, File: "sort.c", Line: 12},
				},
			},
			{
				App:    "fft",
				Mode:   core.ModeLCR,
				Failed: false,
				Events: []core.Event{
					coherenceEvent("fft.c", 33, cache.Load, cache.State(0)),
				},
			},
			{App: "sort", Mode: core.ModeLBR, Failed: true}, // lost capture
		},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	want := sampleBatch()
	data, err := EncodeBatch(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(bytes.NewReader(data), false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if got.Version != WireVersion {
		t.Errorf("decoded version = %d, want %d", got.Version, WireVersion)
	}
}

func TestBatchRoundTripGzip(t *testing.T) {
	want := sampleBatch()
	data, err := EncodeBatchGzip(want)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := EncodeBatch(want)
	if err != nil {
		t.Fatal(err)
	}
	// The compressed form must actually be gzip, not passthrough.
	if bytes.Equal(data, plain) {
		t.Fatal("EncodeBatchGzip returned the plain encoding")
	}
	got, err := DecodeBatch(bytes.NewReader(data), true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("gzip round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestDecodeBatchRejects(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{"bad json", `{`, "decode batch"},
		{"wrong version", `{"v": 99, "subs": []}`, "wire version 99"},
		{"missing version", `{"subs": []}`, "wire version 0"},
		{"unknown field", `{"v": 2, "subs": [], "extra": true}`, "decode batch"},
		{"empty app", `{"v": 2, "subs": [{"app": "", "mode": 0, "failed": true}]}`, "no app"},
		{"bad mode", `{"v": 2, "subs": [{"app": "x", "mode": 9, "failed": true}]}`, "unknown mode"},
	}
	for _, c := range cases {
		if _, err := DecodeBatch(strings.NewReader(c.body), false); err == nil {
			t.Errorf("%s: decode accepted %q", c.name, c.body)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	if _, err := DecodeBatch(strings.NewReader("not gzip"), true); err == nil {
		t.Error("decode accepted a non-gzip body marked gzipped")
	}
}

func TestDedupEvents(t *testing.T) {
	a := branchEvent("a", isa.EdgeTrue)
	b := branchEvent("b", isa.EdgeFalse)
	got := DedupEvents([]core.Event{a, b, a, a, b})
	if !reflect.DeepEqual(got, []core.Event{a, b}) {
		t.Errorf("DedupEvents = %v", got)
	}
	if DedupEvents(nil) != nil {
		t.Error("DedupEvents(nil) != nil")
	}
}
