package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"stmdiag/internal/obs"
)

// ClientOptions configures a submitting client. The zero value picks the
// defaults below.
type ClientOptions struct {
	// BatchSize is how many submissions one ingest POST carries
	// (default 64).
	BatchSize int
	// MaxRetries bounds re-sends of one batch after a 5xx or transport
	// error (default 5; 4xx responses are permanent and never retried).
	MaxRetries int
	// Backoff is the first retry delay; it doubles per retry
	// (default 50ms).
	Backoff time.Duration
	// BackoffCap bounds the doubled delay (default 2s) so a long outage
	// retries steadily instead of backing off into minutes.
	BackoffCap time.Duration
	// RequestTimeout bounds one ingest POST end to end (default 10s): a
	// hung server or black-holed connection costs one bounded attempt, not
	// a stuck client.
	RequestTimeout time.Duration
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// Name identifies this client in batches and diagnostics.
	Name string
	// RunID correlates this client's telemetry with the pipeline run that
	// produced the submissions (harness.RunID); zero means unstamped.
	RunID uint64
	// Sink receives fleet.client.* metrics; nil disables them.
	Sink *obs.Sink
	// NoGzip sends batches uncompressed (diagnostics; production clients
	// compress).
	NoGzip bool
	// sleep stubs the backoff wait in tests.
	sleep func(time.Duration)
	// jitterFrac stubs the backoff jitter draw in tests; the default draws
	// uniformly from [0, 1).
	jitterFrac func() float64
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 5
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 2 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	if o.sleep == nil {
		o.sleep = time.Sleep
	}
	if o.jitterFrac == nil {
		o.jitterFrac = rand.Float64
	}
	return o
}

// Client streams profile submissions to a fleet service, batching them
// into gzip POSTs with retry-with-backoff on server errors — the deployed
// machine's side of cooperative diagnosis. Not safe for concurrent use;
// give each simulated machine its own Client.
type Client struct {
	url string
	o   ClientOptions
	buf []Submission

	batches  *obs.Counter
	profiles *obs.Counter
	retries  *obs.Counter

	// pending is the telemetry delta accumulated since the last shipped
	// batch; it rides the *next* batch (a batch cannot carry its own
	// sealed cost). t0 anchors span timestamps; seq numbers flushes.
	pending TelemetrySummary
	t0      time.Time
	seq     uint64
}

// NewClient builds a client submitting to baseURL (the service root, e.g.
// "http://127.0.0.1:8344"; the /fleet/ingest path is appended here).
func NewClient(baseURL string, o ClientOptions) *Client {
	o = o.withDefaults()
	c := &Client{url: baseURL + "/fleet/ingest", o: o, t0: time.Now()}
	c.pending.Ctx = obs.Context{Client: o.Name, Worker: -1, RunID: o.RunID}
	if o.Sink != nil {
		c.batches = o.Sink.Counter("fleet.client.batches")
		c.profiles = o.Sink.Counter("fleet.client.profiles")
		c.retries = o.Sink.Counter("fleet.client.retries")
	}
	return c
}

// span records one client-side trace span into the pending telemetry,
// timestamped in wall-clock microseconds since the client was built.
func (c *Client) span(name string, start time.Time, dur time.Duration, args map[string]any) {
	c.pending.Spans = append(c.pending.Spans, obs.Event{
		Name: name, Cat: "fleet.client", Ph: obs.PhaseComplete,
		TS:  uint64(start.Sub(c.t0) / time.Microsecond),
		Dur: uint64(dur / time.Microsecond),
		PID: obs.FleetPID, Args: args,
	})
}

// Add buffers one submission, flushing when the batch fills.
func (c *Client) Add(sub Submission) error {
	c.buf = append(c.buf, sub)
	if len(c.buf) >= c.o.BatchSize {
		return c.Flush()
	}
	return nil
}

// Flush posts any buffered submissions as one batch. The batch carries the
// telemetry delta of the previous flush (counters, retry/backoff cost,
// span timings); this flush's own cost becomes the next batch's telemetry.
func (c *Client) Flush() error {
	if len(c.buf) == 0 {
		return nil
	}
	batch := &Batch{Client: c.o.Name, Subs: c.buf}
	if c.seq > 0 {
		t := c.pending
		batch.Telemetry = &t
	}
	c.seq++
	c.pending = TelemetrySummary{Ctx: c.pending.Ctx}
	var (
		data []byte
		err  error
	)
	encStart := time.Now()
	if c.o.NoGzip {
		data, err = EncodeBatch(batch)
	} else {
		data, err = EncodeBatchGzip(batch)
	}
	encDur := time.Since(encStart)
	if err != nil {
		return err
	}
	n := len(c.buf)
	c.buf = c.buf[:0]
	c.pending.EncodeNS = uint64(encDur)
	c.pending.WireBytes = uint64(len(data))
	c.span("encode", encStart, encDur, map[string]any{"batch": c.seq - 1, "bytes": len(data)})
	postStart := time.Now()
	if err := c.post(data); err != nil {
		return err
	}
	postDur := time.Since(postStart)
	c.pending.PostNS = uint64(postDur)
	c.pending.Batches++
	c.pending.Profiles += uint64(n)
	c.span("post", postStart, postDur, map[string]any{"batch": c.seq - 1, "profiles": n})
	c.batches.Inc()
	c.profiles.Add(uint64(n))
	return nil
}

// post sends one encoded batch, retrying 5xx responses and transport
// errors with capped, jittered exponential backoff. Each attempt carries
// its own deadline (RequestTimeout) so a hung server cannot wedge the
// client, and the retry waits spread over 50–100% of the capped delay so a
// fleet-wide outage ends in a smeared recovery instead of a thundering
// herd. A 4xx means the batch itself is bad (version skew, malformed
// payload): retrying cannot help, so it is a permanent error.
func (c *Client) post(data []byte) error {
	backoff := c.o.Backoff
	var lastErr error
	for attempt := 0; attempt <= c.o.MaxRetries; attempt++ {
		if attempt > 0 {
			c.retries.Inc()
			c.pending.Retries++
			wait := backoff/2 + time.Duration(c.o.jitterFrac()*float64(backoff/2))
			c.pending.BackoffNS += uint64(wait)
			c.o.sleep(wait)
			backoff *= 2
			if backoff > c.o.BackoffCap {
				backoff = c.o.BackoffCap
			}
		}
		err := func() error {
			ctx, cancel := context.WithTimeout(context.Background(), c.o.RequestTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url, bytes.NewReader(data))
			if err != nil {
				return fmt.Errorf("fleet: build ingest request: %w", err)
			}
			req.Header.Set("Content-Type", "application/json")
			if !c.o.NoGzip {
				req.Header.Set("Content-Encoding", "gzip")
			}
			resp, err := c.o.HTTPClient.Do(req)
			if err != nil {
				return retryableError{fmt.Errorf("fleet: post batch: %w", err)}
			}
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			switch {
			case resp.StatusCode >= 200 && resp.StatusCode < 300:
				return nil
			case resp.StatusCode >= 500:
				return retryableError{fmt.Errorf("fleet: ingest returned %s: %s", resp.Status, bytes.TrimSpace(body))}
			default:
				return fmt.Errorf("fleet: ingest rejected batch (%s): %s", resp.Status, bytes.TrimSpace(body))
			}
		}()
		if err == nil {
			return nil
		}
		var re retryableError
		if !errors.As(err, &re) {
			return err
		}
		lastErr = re.err
	}
	return fmt.Errorf("fleet: batch failed after %d attempts: %w", c.o.MaxRetries+1, lastErr)
}

// retryableError marks a transient ingest failure (transport error or 5xx).
type retryableError struct{ err error }

func (e retryableError) Error() string { return e.err.Error() }
func (e retryableError) Unwrap() error { return e.err }

// Simulate fans submissions out over n concurrent clients — the simulated
// production machines of cooperative sampling. Submissions partition
// round-robin (machine i takes subs[i], subs[i+n], ...), each machine
// batching and pushing its own share concurrently; per-machine submission
// order is preserved, cross-machine interleaving is whatever the network
// gives. Because the store's merge is order-independent, the final
// aggregate is identical for every n.
func Simulate(baseURL string, n int, subs []Submission, o ClientOptions) error {
	if n <= 0 {
		n = 1
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for m := 0; m < n; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			co := o
			if co.Name == "" {
				co.Name = fmt.Sprintf("machine-%d", m)
			} else {
				co.Name = fmt.Sprintf("%s-%d", co.Name, m)
			}
			c := NewClient(baseURL, co)
			for i := m; i < len(subs); i += n {
				if err := c.Add(subs[i]); err != nil {
					errs[m] = err
					return
				}
			}
			errs[m] = c.Flush()
		}(m)
	}
	wg.Wait()
	return errors.Join(errs...)
}
