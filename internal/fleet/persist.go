package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"stmdiag/internal/artifact"
)

// WALName is the write-ahead log file inside a persistent store directory.
const WALName = "fleet.wal"

// OpenPersistent opens (creating if needed) a store whose accepted
// submissions are journaled to dir/fleet.wal before they are applied, and
// replays any existing log so a restarted aggregator resumes with the exact
// aggregate it had committed. Because the store's merge is an
// order-independent counter sum, the replayed store serves /fleet/report
// bytes identical to the uninterrupted server's for the same submissions.
//
// The log rides on the artifact journal: each record is one JSON
// Submission inside a CRC-framed entry, so a fleetd killed mid-append loses
// at most the torn final record (salvaged and quarantined on the next
// open — the un-acked submission a client would retry anyway).
func OpenPersistent(dir string, o StoreOptions) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: create store dir: %w", err)
	}
	j, recs, rep, err := artifact.OpenJournal(filepath.Join(dir, WALName))
	if err != nil {
		return nil, err
	}
	s := NewStore(o)
	if o.Sink != nil {
		if rep.Salvaged() {
			o.Sink.Counter("fleet.store.wal_salvaged_opens").Inc()
			o.Sink.Counter("fleet.store.wal_salvage_dropped_bytes").Add(uint64(rep.DroppedBytes))
		}
		s.walAppends = o.Sink.Counter("fleet.store.wal_appends")
		s.walErrors = o.Sink.Counter("fleet.store.wal_errors")
		s.walRejects = o.Sink.Counter("fleet.store.wal_rejects")
	}
	for _, rec := range recs {
		var sub Submission
		if err := json.Unmarshal(rec, &sub); err != nil || sub.App == "" {
			// A record that framed correctly but does not decode is version
			// skew or tampering, not a torn write: count it and keep the
			// rest of the log.
			s.walRejects.Inc()
			continue
		}
		s.Add(sub)
		s.replayed++
	}
	// Arm the WAL only after replay so replaying does not re-append.
	s.wal = j
	return s, nil
}

// Replayed returns how many journaled submissions the open replayed (0 for
// a store built with NewStore).
func (s *Store) Replayed() int { return s.replayed }

// Persistent reports whether the store journals its submissions.
func (s *Store) Persistent() bool { return s.wal != nil }

// logSubmission appends one accepted submission to the WAL; a no-op for
// in-memory stores. Append failures (disk full, closed log) are counted
// rather than failing the ingest: the in-memory aggregate stays correct and
// durability degrades loudly instead of dropping live submissions.
func (s *Store) logSubmission(sub Submission) {
	if s.wal == nil {
		return
	}
	data, err := json.Marshal(sub)
	if err != nil {
		s.walErrors.Inc()
		return
	}
	if err := s.wal.Append(data); err != nil {
		s.walErrors.Inc()
		return
	}
	s.walAppends.Inc()
}

// Close flushes and closes the WAL (a no-op for in-memory stores).
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Close()
}
