package fleet_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"stmdiag/internal/apps"
	"stmdiag/internal/core"
	"stmdiag/internal/fleet"
	"stmdiag/internal/harness"
)

// TestFleetConvergesToMonolithicDiagnosis is the subsystem's golden test:
// the fleet path — capture on simulated machines, serialize, gzip-POST in
// batches, merge into the sharded store, rank incrementally — must produce
// a /fleet/report byte-identical to the monolithic core.Diagnose over the
// same profiles, for every worker count and every client-fleet size. This
// is the paper's cooperative-sampling claim made executable: aggregation
// is pure counter merging, so how the evidence was partitioned across
// machines cannot change the diagnosis.
func TestFleetConvergesToMonolithicDiagnosis(t *testing.T) {
	a := apps.ByName("sort")
	const k = 10
	var golden string

	for _, jobs := range []int{1, 4} {
		cfg := harness.Config{FailRuns: 4, SuccRuns: 4, Seed: 11, Jobs: jobs}
		mode, fail, succ, err := harness.DiagnosisProfiles(a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := core.Diagnose(mode, fail, succ)
		if err != nil {
			t.Fatal(err)
		}
		mono := rep.Render(k)
		if golden == "" {
			golden = mono
		} else if mono != golden {
			t.Fatalf("monolithic diagnosis differs at -jobs %d:\n%s\nvs\n%s", jobs, mono, golden)
		}

		subs := fleet.SubmissionsFromRuns(a.Name, mode, true, fail)
		subs = append(subs, fleet.SubmissionsFromRuns(a.Name, mode, false, succ)...)
		for _, clients := range []int{1, 3, 5} {
			for _, shards := range []int{1, 16} {
				store := fleet.NewStore(fleet.StoreOptions{Shards: shards})
				srv := httptest.NewServer(fleet.NewService(store, nil, nil).Handler())
				if err := fleet.Simulate(srv.URL, clients, subs, fleet.ClientOptions{BatchSize: 3}); err != nil {
					t.Fatalf("jobs=%d clients=%d shards=%d: %v", jobs, clients, shards, err)
				}
				resp, err := http.Get(srv.URL + "/fleet/report?app=" + a.Name + "&k=10")
				if err != nil {
					t.Fatal(err)
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				srv.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("jobs=%d clients=%d shards=%d: report %s", jobs, clients, shards, resp.Status)
				}
				if string(body) != golden {
					t.Errorf("jobs=%d clients=%d shards=%d: fleet report diverges from monolithic diagnosis\nfleet:\n%s\nmonolithic:\n%s",
						jobs, clients, shards, body, golden)
				}
			}
		}
	}
}
