package fleet

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"stmdiag/internal/core"
	"stmdiag/internal/isa"
	"stmdiag/internal/obs"
)

func TestClientBatching(t *testing.T) {
	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	store := NewStore(StoreOptions{})
	srv := httptest.NewServer(NewService(store, nil, nil).Handler())
	defer srv.Close()

	c := NewClient(srv.URL, ClientOptions{BatchSize: 3, Sink: sink, Name: "m0"})
	ev := branchEvent("b", isa.EdgeTrue)
	for i := 0; i < 7; i++ {
		if err := c.Add(Submission{App: "x", Mode: core.ModeLBR, Failed: true, Events: []core.Event{ev}}); err != nil {
			t.Fatal(err)
		}
	}
	snap := sink.Metrics.Snapshot()
	if got := snap.Counter("fleet.client.batches"); got != 2 {
		t.Errorf("batches before flush = %d, want 2 (7 adds / batch of 3)", got)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil { // empty flush is a no-op
		t.Fatal(err)
	}
	snap = sink.Metrics.Snapshot()
	if got := snap.Counter("fleet.client.batches"); got != 3 {
		t.Errorf("batches after flush = %d, want 3", got)
	}
	if got := snap.Counter("fleet.client.profiles"); got != 7 {
		t.Errorf("profiles = %d, want 7", got)
	}
	if got := store.Totals("x").FailRuns; got != 7 {
		t.Errorf("store received %d failing runs, want 7", got)
	}
}

func TestClientRetriesServerErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "shard catching fire", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"accepted": 1}`))
	}))
	defer srv.Close()

	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	var slept []time.Duration
	c := NewClient(srv.URL, ClientOptions{
		Backoff:    10 * time.Millisecond,
		Sink:       sink,
		sleep:      func(d time.Duration) { slept = append(slept, d) },
		jitterFrac: func() float64 { return 1 }, // full jitter: wait == capped backoff
	})
	if err := c.Add(Submission{App: "x", Mode: core.ModeLBR, Failed: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush after transient 503s: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d posts, want 3 (2 failures + success)", got)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if !reflect.DeepEqual(slept, want) {
		t.Errorf("backoff sleeps = %v, want %v (exponential)", slept, want)
	}
	if got := sink.Metrics.Snapshot().Counter("fleet.client.retries"); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
}

// TestClientBackoffCapAndJitter pins the retry-wait envelope: the doubled
// delay never exceeds BackoffCap, and the jitter draw scales the wait
// between 50% and 100% of the capped value.
func TestClientBackoffCapAndJitter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	var slept []time.Duration
	c := NewClient(srv.URL, ClientOptions{
		MaxRetries: 4,
		Backoff:    40 * time.Millisecond,
		BackoffCap: 100 * time.Millisecond,
		sleep:      func(d time.Duration) { slept = append(slept, d) },
		jitterFrac: func() float64 { return 0 }, // minimum jitter: wait == half the capped backoff
	})
	c.Add(Submission{App: "x", Mode: core.ModeLBR, Failed: true})
	if err := c.Flush(); err == nil {
		t.Fatal("flush succeeded against a permanently-500 server")
	}
	// Backoffs 40, 80, 100 (capped), 100 (capped); each slept at 50%.
	want := []time.Duration{20 * time.Millisecond, 40 * time.Millisecond,
		50 * time.Millisecond, 50 * time.Millisecond}
	if !reflect.DeepEqual(slept, want) {
		t.Errorf("capped jittered sleeps = %v, want %v", slept, want)
	}
}

// TestClientRequestTimeout pins that a hung server costs one bounded
// attempt per retry instead of wedging the client forever.
func TestClientRequestTimeout(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // black-hole the request until the test ends
	}))
	defer func() { close(release); srv.Close() }()

	c := NewClient(srv.URL, ClientOptions{
		MaxRetries:     1,
		RequestTimeout: 50 * time.Millisecond,
		sleep:          func(time.Duration) {},
	})
	c.Add(Submission{App: "x", Mode: core.ModeLBR, Failed: true})
	done := make(chan error, 1)
	go func() { done <- c.Flush() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("flush succeeded against a hung server")
		}
		if !strings.Contains(err.Error(), "context deadline exceeded") {
			t.Errorf("error %q does not report the per-request deadline", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flush still blocked after 5s; per-request timeout not applied")
	}
}

func TestClientGivesUpAfterMaxRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := NewClient(srv.URL, ClientOptions{MaxRetries: 2, sleep: func(time.Duration) {}})
	c.Add(Submission{App: "x", Mode: core.ModeLBR, Failed: true})
	err := c.Flush()
	if err == nil {
		t.Fatal("flush succeeded against a permanently-500 server")
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error %q does not report attempt count", err)
	}
}

func TestClient4xxIsPermanent(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "fleet: wire version 99", http.StatusBadRequest)
	}))
	defer srv.Close()

	c := NewClient(srv.URL, ClientOptions{sleep: func(time.Duration) {}})
	c.Add(Submission{App: "x", Mode: core.ModeLBR, Failed: true})
	err := c.Flush()
	if err == nil || !strings.Contains(err.Error(), "rejected batch") {
		t.Fatalf("flush error = %v, want permanent rejection", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d posts, want 1 (4xx must not retry)", got)
	}
}

// TestSimulateConvergesAcrossClientCounts is the heart of cooperative
// sampling: however many machines the population is split across, the
// aggregate report is identical.
func TestSimulateConvergesAcrossClientCounts(t *testing.T) {
	subs := randomSubmissions(9, 120)
	var want string
	for _, n := range []int{1, 3, 5} {
		store := NewStore(StoreOptions{})
		srv := httptest.NewServer(NewService(store, nil, nil).Handler())
		if err := Simulate(srv.URL, n, subs, ClientOptions{BatchSize: 8}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		srv.Close()
		got := store.Report("alpha").Render(10)
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("n=%d: report diverges from n=1:\n%s\nvs\n%s", n, got, want)
		}
	}
}
