package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"stmdiag/internal/obs"
)

// MaxBatchBytes bounds one ingest POST's (decoded) request body. Batches
// are per-trial event sets — kilobytes each — so anything near this limit
// is a malfunctioning client, not load.
const MaxBatchBytes = 8 << 20

// batchLatencyBounds buckets ingest handler latency (ns): 10µs .. ~164ms
// in powers of four, matching the obs histogram convention.
var batchLatencyBounds = []uint64{
	10_000, 40_000, 160_000, 640_000, 2_560_000, 10_240_000, 40_960_000, 163_840_000,
}

// Service is the fleet ingestion endpoint set, layered over a base handler
// (normally internal/obshttp's telemetry mux) so one listener serves both
// the fleet API and live telemetry:
//
//	POST /fleet/ingest   commit one profile batch (JSON, optionally gzip)
//	GET  /fleet/stats    JSON aggregate summary per app
//	GET  /fleet/report   text diagnosis ranking (same rendering as the
//	                     monolithic path), ?app=NAME&k=N
type Service struct {
	store *Store
	base  http.Handler
	sink  *obs.Sink
	t0    time.Time

	batches  *obs.Counter
	profiles *obs.Counter
	bytes    *obs.Counter
	rejected *obs.Counter
	batchNS  *obs.Histogram

	// lanes maps client names to federated-trace thread IDs under
	// obs.FleetPID (the service owns tid 0; clients take 1, 2, ... in
	// arrival order).
	mu    sync.Mutex
	lanes map[string]int
}

// NewService wires the fleet routes over the store. base handles every
// non-/fleet path (nil = 404s outside /fleet/). sink receives
// fleet.ingest.* throughput metrics plus per-client federated telemetry
// (labeled metric families and trace lanes); nil disables them.
func NewService(store *Store, base http.Handler, sink *obs.Sink) *Service {
	s := &Service{store: store, base: base, sink: sink, t0: time.Now()}
	if sink != nil {
		s.batches = sink.Counter("fleet.ingest.batches")
		s.profiles = sink.Counter("fleet.ingest.profiles")
		s.bytes = sink.Counter("fleet.ingest.bytes")
		s.rejected = sink.Counter("fleet.ingest.rejected")
		s.batchNS = sink.Histogram("fleet.ingest.batch_ns", batchLatencyBounds)
	}
	return s
}

// Handler returns the service mux.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/ingest", s.handleIngest)
	mux.HandleFunc("/fleet/stats", s.handleStats)
	mux.HandleFunc("/fleet/report", s.handleReport)
	if s.base != nil {
		mux.Handle("/", s.base)
	}
	return mux
}

// handleIngest commits one batch. Only POST mutates the store; anything
// else is 405 so proxies and probes cannot write by accident.
func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "ingest accepts POST only", http.StatusMethodNotAllowed)
		return
	}
	t0 := time.Now()
	body := http.MaxBytesReader(w, r.Body, MaxBatchBytes)
	gzipped := strings.Contains(r.Header.Get("Content-Encoding"), "gzip")
	batch, err := DecodeBatch(countingReader{body, s.bytes}, gzipped)
	if err != nil {
		s.rejected.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n := s.store.AddBatch(batch)
	s.batches.Inc()
	s.profiles.Add(uint64(n))
	s.batchNS.Observe(uint64(time.Since(t0)))
	s.ingestTelemetry(batch)
	if s.sink != nil && s.sink.Trace != nil {
		s.mu.Lock()
		s.laneInit()
		s.mu.Unlock()
		s.sink.Trace.Complete("ingest", "fleet.service",
			uint64(t0.Sub(s.t0)/time.Microsecond), uint64(time.Since(t0)/time.Microsecond),
			obs.FleetPID, 0, map[string]any{"client": batch.Client, "profiles": n})
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"accepted\": %d}\n", n)
}

// ingestTelemetry folds a batch's client-side telemetry into the service
// sink: per-client counter families (the client: name segment renders as a
// client="..." label on /metrics) and one federated trace lane per client
// under obs.FleetPID. The batches family is minted on every ingest — even
// a client that never ships a TelemetrySummary (it posted exactly one
// batch; telemetry trails by one) shows up labeled on /metrics.
func (s *Service) ingestTelemetry(b *Batch) {
	if s.sink == nil {
		return
	}
	client := b.Client
	if client == "" && b.Telemetry != nil {
		client = b.Telemetry.Ctx.Client
	}
	if client == "" {
		client = "unknown"
	}
	seg := "fleet.ingest.client:" + sanitizeClient(client) + "."
	s.sink.Counter(seg + "batches").Inc()
	t := b.Telemetry
	if t == nil {
		return
	}
	s.sink.Counter(seg + "profiles").Add(t.Profiles)
	s.sink.Counter(seg + "retries").Add(t.Retries)
	s.sink.Counter(seg + "backoff_ns").Add(t.BackoffNS)
	s.sink.Counter(seg + "wire_bytes").Add(t.WireBytes)
	s.sink.Counter(seg + "encode_ns").Add(t.EncodeNS)
	s.sink.Counter(seg + "post_ns").Add(t.PostNS)
	if s.sink.Trace == nil || len(t.Spans) == 0 {
		return
	}
	lane := s.lane(client)
	for _, ev := range t.Spans {
		ev.PID = obs.FleetPID
		ev.TID = lane
		s.sink.Trace.Emit(ev)
	}
}

// lane returns the client's federated-trace thread ID, assigning the next
// free one (1, 2, ...) on first sight.
func (s *Service) lane(client string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.laneInit()
	id, ok := s.lanes[client]
	if !ok {
		id = len(s.lanes) + 1
		s.lanes[client] = id
		s.sink.Trace.SetThreadName(obs.FleetPID, id, "client "+client)
	}
	return id
}

// laneInit names the fleet trace track group on first use. Caller holds
// s.mu.
func (s *Service) laneInit() {
	if s.lanes == nil {
		s.lanes = map[string]int{}
		s.sink.Trace.SetProcessName(obs.FleetPID, "fleet")
		s.sink.Trace.SetThreadName(obs.FleetPID, 0, "service")
	}
}

// sanitizeClient maps a client name into one metric-name segment: dots
// would split the segment, so they and whitespace become underscores.
func sanitizeClient(name string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '.', ' ', '\t', '\n', '\r':
			return '_'
		}
		return r
	}, name)
}

// countingReader feeds the ingest byte counter as the body streams through
// (compressed size: the wire cost, not the inflated one).
type countingReader struct {
	r io.Reader
	c *obs.Counter
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(uint64(n))
	return n, err
}

// StatsDump is the /fleet/stats response shape.
type StatsDump struct {
	Shards   int         `json:"shards"`
	Batches  uint64      `json:"batches"`
	Profiles uint64      `json:"profiles"`
	Bytes    uint64      `json:"bytes"`
	Rejected uint64      `json:"rejected"`
	Apps     []AppTotals `json:"apps"`
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if !readOnlyMethod(w, r) {
		return
	}
	dump := StatsDump{
		Shards:   s.store.Shards(),
		Batches:  s.batches.Value(),
		Profiles: s.profiles.Value(),
		Bytes:    s.bytes.Value(),
		Rejected: s.rejected.Value(),
		Apps:     []AppTotals{},
	}
	for _, app := range s.store.Apps() {
		dump.Apps = append(dump.Apps, s.store.Totals(app))
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(dump) //nolint:errcheck // best-effort over HTTP
}

// handleReport renders one app's diagnosis ranking — core.Report.Render,
// the exact text the monolithic pipeline prints, so fleet-vs-monolithic
// convergence can be compared byte for byte.
func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	if !readOnlyMethod(w, r) {
		return
	}
	app := r.URL.Query().Get("app")
	if app == "" {
		apps := s.store.Apps()
		if len(apps) != 1 {
			http.Error(w, fmt.Sprintf("?app= required (have %v)", apps), http.StatusBadRequest)
			return
		}
		app = apps[0]
	}
	k := 10
	if kq := r.URL.Query().Get("k"); kq != "" {
		n, err := strconv.Atoi(kq)
		if err != nil || n < 1 {
			http.Error(w, "?k= must be a positive integer", http.StatusBadRequest)
			return
		}
		k = n
	}
	rep := s.store.Report(app)
	if rep == nil {
		http.Error(w, fmt.Sprintf("no failure profiles for app %q", app), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	io.WriteString(w, rep.Render(k)) //nolint:errcheck // best-effort over HTTP
}

// readOnlyMethod admits GET/HEAD and rejects everything else with 405 +
// Allow, mirroring internal/obshttp's read-only endpoint policy.
func readOnlyMethod(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	w.Header().Set("Allow", "GET, HEAD")
	http.Error(w, "read-only endpoint", http.StatusMethodNotAllowed)
	return false
}
