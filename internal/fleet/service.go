package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"stmdiag/internal/obs"
)

// MaxBatchBytes bounds one ingest POST's (decoded) request body. Batches
// are per-trial event sets — kilobytes each — so anything near this limit
// is a malfunctioning client, not load.
const MaxBatchBytes = 8 << 20

// batchLatencyBounds buckets ingest handler latency (ns): 10µs .. ~164ms
// in powers of four, matching the obs histogram convention.
var batchLatencyBounds = []uint64{
	10_000, 40_000, 160_000, 640_000, 2_560_000, 10_240_000, 40_960_000, 163_840_000,
}

// Service is the fleet ingestion endpoint set, layered over a base handler
// (normally internal/obshttp's telemetry mux) so one listener serves both
// the fleet API and live telemetry:
//
//	POST /fleet/ingest   commit one profile batch (JSON, optionally gzip)
//	GET  /fleet/stats    JSON aggregate summary per app
//	GET  /fleet/report   text diagnosis ranking (same rendering as the
//	                     monolithic path), ?app=NAME&k=N
type Service struct {
	store *Store
	base  http.Handler

	batches  *obs.Counter
	profiles *obs.Counter
	bytes    *obs.Counter
	rejected *obs.Counter
	batchNS  *obs.Histogram
}

// NewService wires the fleet routes over the store. base handles every
// non-/fleet path (nil = 404s outside /fleet/). sink receives
// fleet.ingest.* throughput metrics; nil disables them.
func NewService(store *Store, base http.Handler, sink *obs.Sink) *Service {
	s := &Service{store: store, base: base}
	if sink != nil {
		s.batches = sink.Counter("fleet.ingest.batches")
		s.profiles = sink.Counter("fleet.ingest.profiles")
		s.bytes = sink.Counter("fleet.ingest.bytes")
		s.rejected = sink.Counter("fleet.ingest.rejected")
		s.batchNS = sink.Histogram("fleet.ingest.batch_ns", batchLatencyBounds)
	}
	return s
}

// Handler returns the service mux.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/ingest", s.handleIngest)
	mux.HandleFunc("/fleet/stats", s.handleStats)
	mux.HandleFunc("/fleet/report", s.handleReport)
	if s.base != nil {
		mux.Handle("/", s.base)
	}
	return mux
}

// handleIngest commits one batch. Only POST mutates the store; anything
// else is 405 so proxies and probes cannot write by accident.
func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "ingest accepts POST only", http.StatusMethodNotAllowed)
		return
	}
	t0 := time.Now()
	body := http.MaxBytesReader(w, r.Body, MaxBatchBytes)
	gzipped := strings.Contains(r.Header.Get("Content-Encoding"), "gzip")
	batch, err := DecodeBatch(countingReader{body, s.bytes}, gzipped)
	if err != nil {
		s.rejected.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n := s.store.AddBatch(batch)
	s.batches.Inc()
	s.profiles.Add(uint64(n))
	s.batchNS.Observe(uint64(time.Since(t0)))
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"accepted\": %d}\n", n)
}

// countingReader feeds the ingest byte counter as the body streams through
// (compressed size: the wire cost, not the inflated one).
type countingReader struct {
	r io.Reader
	c *obs.Counter
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(uint64(n))
	return n, err
}

// StatsDump is the /fleet/stats response shape.
type StatsDump struct {
	Shards   int         `json:"shards"`
	Batches  uint64      `json:"batches"`
	Profiles uint64      `json:"profiles"`
	Bytes    uint64      `json:"bytes"`
	Rejected uint64      `json:"rejected"`
	Apps     []AppTotals `json:"apps"`
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if !readOnlyMethod(w, r) {
		return
	}
	dump := StatsDump{
		Shards:   s.store.Shards(),
		Batches:  s.batches.Value(),
		Profiles: s.profiles.Value(),
		Bytes:    s.bytes.Value(),
		Rejected: s.rejected.Value(),
		Apps:     []AppTotals{},
	}
	for _, app := range s.store.Apps() {
		dump.Apps = append(dump.Apps, s.store.Totals(app))
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(dump) //nolint:errcheck // best-effort over HTTP
}

// handleReport renders one app's diagnosis ranking — core.Report.Render,
// the exact text the monolithic pipeline prints, so fleet-vs-monolithic
// convergence can be compared byte for byte.
func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	if !readOnlyMethod(w, r) {
		return
	}
	app := r.URL.Query().Get("app")
	if app == "" {
		apps := s.store.Apps()
		if len(apps) != 1 {
			http.Error(w, fmt.Sprintf("?app= required (have %v)", apps), http.StatusBadRequest)
			return
		}
		app = apps[0]
	}
	k := 10
	if kq := r.URL.Query().Get("k"); kq != "" {
		n, err := strconv.Atoi(kq)
		if err != nil || n < 1 {
			http.Error(w, "?k= must be a positive integer", http.StatusBadRequest)
			return
		}
		k = n
	}
	rep := s.store.Report(app)
	if rep == nil {
		http.Error(w, fmt.Sprintf("no failure profiles for app %q", app), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	io.WriteString(w, rep.Render(k)) //nolint:errcheck // best-effort over HTTP
}

// readOnlyMethod admits GET/HEAD and rejects everything else with 405 +
// Allow, mirroring internal/obshttp's read-only endpoint policy.
func readOnlyMethod(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	w.Header().Set("Allow", "GET, HEAD")
	http.Error(w, "read-only endpoint", http.StatusMethodNotAllowed)
	return false
}
