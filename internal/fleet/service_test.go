package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stmdiag/internal/core"
	"stmdiag/internal/obs"
	"stmdiag/internal/stats"
)

func newTestService(t *testing.T) (*Service, *httptest.Server, *obs.Sink) {
	t.Helper()
	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	svc := NewService(NewStore(StoreOptions{Sink: sink}), nil, sink)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return svc, srv, sink
}

func postBatch(t *testing.T, url string, b *Batch, gzipped bool) *http.Response {
	t.Helper()
	var (
		data []byte
		err  error
	)
	if gzipped {
		data, err = EncodeBatchGzip(b)
	} else {
		data, err = EncodeBatch(b)
	}
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/fleet/ingest", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if gzipped {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestServiceIngestPlainAndGzip(t *testing.T) {
	_, srv, sink := newTestService(t)
	for i, gzipped := range []bool{false, true} {
		resp := postBatch(t, srv.URL, sampleBatch(), gzipped)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("gzip=%v: status %s", gzipped, resp.Status)
		}
		body, _ := io.ReadAll(resp.Body)
		if got := strings.TrimSpace(string(body)); got != `{"accepted": 3}` {
			t.Errorf("gzip=%v: body %q", gzipped, got)
		}
		snap := sink.Metrics.Snapshot()
		if got := snap.Counter("fleet.ingest.batches"); got != uint64(i+1) {
			t.Errorf("batches = %d after %d posts", got, i+1)
		}
		if got := snap.Counter("fleet.ingest.profiles"); got != uint64(3*(i+1)) {
			t.Errorf("profiles = %d after %d posts", got, i+1)
		}
	}
	if got := sink.Metrics.Snapshot().Counter("fleet.ingest.bytes"); got == 0 {
		t.Error("ingest byte counter never advanced")
	}
}

func TestServiceIngestRejects(t *testing.T) {
	_, srv, sink := newTestService(t)

	// Non-POST: 405 with Allow.
	resp, err := http.Get(srv.URL + "/fleet/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "POST" {
		t.Errorf("GET ingest: status %s, Allow %q", resp.Status, resp.Header.Get("Allow"))
	}

	// Bad version: 400 and the rejected counter moves.
	resp, err = http.Post(srv.URL+"/fleet/ingest", "application/json",
		strings.NewReader(`{"v": 99, "subs": []}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad version: status %s", resp.Status)
	}
	if !strings.Contains(string(body), "wire version") {
		t.Errorf("bad version error body %q", body)
	}
	if got := sink.Metrics.Snapshot().Counter("fleet.ingest.rejected"); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}

	// Declared gzip but plain body: 400, not a hang or 500.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/fleet/ingest",
		strings.NewReader(`{"v": 1, "subs": []}`))
	req.Header.Set("Content-Encoding", "gzip")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("fake gzip: status %s", resp.Status)
	}
}

func TestServiceReportMatchesCoreRender(t *testing.T) {
	_, srv, _ := newTestService(t)
	subs := randomSubmissions(5, 40)
	var batchSubs []Submission
	for _, s := range subs {
		if s.App == "alpha" {
			batchSubs = append(batchSubs, s)
		}
	}
	if resp := postBatch(t, srv.URL, &Batch{Client: "t", Subs: batchSubs}, true); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s", resp.Status)
	}

	// Reference: the monolithic Report over the same runs, same Render.
	var failRuns, succRuns int
	for _, s := range batchSubs {
		if s.Failed {
			failRuns++
		} else {
			succRuns++
		}
	}
	want := (&core.Report{
		Mode:        core.ModeLBR,
		Ranking:     monolithicRank(batchSubs, "alpha"),
		FailureRuns: failRuns,
		SuccessRuns: succRuns,
		Verdict:     verdictOf(batchSubs),
	}).Render(5)

	resp, err := http.Get(srv.URL + "/fleet/report?app=alpha&k=5")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: %s (%s)", resp.Status, body)
	}
	if string(body) != want {
		t.Errorf("/fleet/report differs from core render\ngot:\n%s\nwant:\n%s", body, want)
	}

	// Single known app: ?app= may be omitted.
	resp, err = http.Get(srv.URL + "/fleet/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("default-app report: %s", resp.Status)
	}
}

func TestServiceReportValidation(t *testing.T) {
	_, srv, _ := newTestService(t)
	postBatch(t, srv.URL, sampleBatch(), false) // two apps: sort, fft

	cases := []struct {
		path string
		code int
	}{
		{"/fleet/report", http.StatusBadRequest}, // ambiguous app
		{"/fleet/report?app=sort&k=0", http.StatusBadRequest},
		{"/fleet/report?app=sort&k=x", http.StatusBadRequest},
		{"/fleet/report?app=nope", http.StatusNotFound},
		{"/fleet/report?app=fft", http.StatusNotFound}, // success-only app
		{"/fleet/report?app=sort&k=3", http.StatusOK},
	}
	for _, c := range cases {
		resp, err := http.Get(srv.URL + c.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("GET %s: status %d, want %d", c.path, resp.StatusCode, c.code)
		}
	}

	resp, err := http.Post(srv.URL+"/fleet/report?app=sort", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET, HEAD" {
		t.Errorf("POST report: status %s, Allow %q", resp.Status, resp.Header.Get("Allow"))
	}
}

func TestServiceStats(t *testing.T) {
	_, srv, _ := newTestService(t)
	postBatch(t, srv.URL, sampleBatch(), true)

	resp, err := http.Get(srv.URL + "/fleet/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump StatsDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.Shards != DefaultShards || dump.Batches != 1 || dump.Profiles != 3 || dump.Rejected != 0 {
		t.Errorf("stats dump %+v", dump)
	}
	if len(dump.Apps) != 2 || dump.Apps[0].App != "fft" || dump.Apps[1].App != "sort" {
		t.Errorf("apps %+v (want sorted fft, sort)", dump.Apps)
	}
	if got := dump.Apps[1]; got.FailRuns != 2 || got.UsableFail != 1 || got.Mode != "LBRA" {
		t.Errorf("sort totals %+v", got)
	}

	resp, err = http.Post(srv.URL+"/fleet/stats", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST stats: %s", resp.Status)
	}
}

// TestServiceBasePassthrough pins that non-/fleet paths fall through to the
// wrapped base handler (obshttp in production) and 404 without one.
func TestServiceBasePassthrough(t *testing.T) {
	base := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "base:"+r.URL.Path)
	})
	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	svc := NewService(NewStore(StoreOptions{}), base, sink)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "base:/metrics" {
		t.Errorf("passthrough body %q", body)
	}

	_, srvNoBase, _ := newTestService(t)
	resp, err = http.Get(srvNoBase.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("no base: /metrics status %s, want 404", resp.Status)
	}
}

// verdictOf mirrors the monolithic usable-failure verdict for a run set.
func verdictOf(subs []Submission) stats.Verdict {
	var failTotal, usable int
	for _, s := range subs {
		if s.Failed {
			failTotal++
			if len(s.Events) > 0 {
				usable++
			}
		}
	}
	return stats.AssessCounts(failTotal, usable)
}
