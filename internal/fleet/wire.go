// Package fleet is the cooperative, fleet-scale half of the diagnosis
// pipeline. The paper's deployment model (§2, §5) is CBI-style cooperative
// sampling: many production machines each capture the short-term memory of
// their own failures and successes, and a central service aggregates those
// per-run LBR/LCR profiles into one statistical diagnosis. This package
// provides that service end to end:
//
//   - a versioned wire format for per-run profile submissions (wire.go),
//   - a sharded, lock-striped profile store whose diagnosis ranking updates
//     incrementally per committed batch (store.go),
//   - an HTTP ingestion service — /fleet/ingest, /fleet/stats,
//     /fleet/report — layered over the internal/obshttp telemetry server
//     (service.go),
//   - a batching, gzip-compressing, retrying client plus an N-machine
//     fleet simulation (client.go).
//
// The whole design preserves the repo's core invariant: because profile
// statistics are order-independent counter merges (internal/stats
// ScoreCounts/SortScored), the fleet path converges to a ranking
// byte-identical to the monolithic core.Diagnose over the same runs — for
// any client count, batch size, arrival order, or -jobs value.
package fleet

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"

	"stmdiag/internal/core"
	"stmdiag/internal/obs"
)

// WireVersion is the submission wire-format version this build speaks.
// Ingest rejects other versions with HTTP 400 so a mixed-version fleet
// fails loudly instead of skewing counters. Version 2 added the per-batch
// TelemetrySummary.
const WireVersion = 2

// Submission is one run's diagnosis contribution: which app it ran, which
// record type it profiled, whether the run failed, and the profile reduced
// to its event set. It is self-sufficient — the server needs no access to
// the binary or the raw LBR/LCR rings — matching the paper's
// privacy-preserving failure-report bundle (§5.3): code positions and
// coherence states only.
type Submission struct {
	// App names the application the profile came from.
	App string `json:"app"`
	// Mode is the record type diagnosed (core.ModeLBR or core.ModeLCR).
	Mode core.Mode `json:"mode"`
	// Failed reports whether the run failed.
	Failed bool `json:"failed"`
	// Events is the run's profile as a presence set (duplicates collapsed,
	// first occurrence kept — the paper's §5.2 presence semantics).
	Events []core.Event `json:"events"`
}

// Batch is the unit one ingest POST carries.
type Batch struct {
	// Version must equal WireVersion.
	Version int `json:"v"`
	// Client identifies the submitting machine (diagnostics only; the
	// statistics are client-anonymous like CBI's).
	Client string `json:"client,omitempty"`
	// Subs are the batched submissions.
	Subs []Submission `json:"subs"`
	// Telemetry federates the client's own transport telemetry: the costs
	// it paid since its previous batch. The service folds it into
	// per-client-labeled metrics and the federated trace. Absent on a
	// client's first batch (telemetry trails its batch by one — a batch's
	// own encode/post cost is only known after it is sealed).
	Telemetry *TelemetrySummary `json:"telemetry,omitempty"`
}

// TelemetrySummary is the client-side telemetry delta one batch carries:
// counter deltas since the previous flush plus the client's span timings
// (wall-clock microseconds since the client was built — fleet transport
// telemetry is volatile by definition, unlike trial telemetry, which is
// cycle-clocked and deterministic).
type TelemetrySummary struct {
	// Ctx correlates the client's telemetry (Client name, RunID when the
	// pushing pipeline stamped one).
	Ctx obs.Context `json:"ctx"`
	// Batches/Profiles count what the previous flush shipped.
	Batches  uint64 `json:"batches,omitempty"`
	Profiles uint64 `json:"profiles,omitempty"`
	// Retries and BackoffNS are the re-send cost of the previous flush.
	Retries   uint64 `json:"retries,omitempty"`
	BackoffNS uint64 `json:"backoffNS,omitempty"`
	// WireBytes/EncodeNS/PostNS are the previous flush's encoded size and
	// encode/POST wall costs.
	WireBytes uint64 `json:"wireBytes,omitempty"`
	EncodeNS  uint64 `json:"encodeNS,omitempty"`
	PostNS    uint64 `json:"postNS,omitempty"`
	// Spans are the client's trace spans since the previous flush; the
	// service re-homes them onto its federated trace, one lane per client.
	Spans []obs.Event `json:"spans,omitempty"`
}

// DedupEvents collapses duplicate events preserving first-occurrence order,
// turning a raw profile event list into the presence set the statistical
// model counts. Safe on nil (returns nil).
func DedupEvents(events []core.Event) []core.Event {
	if len(events) == 0 {
		return nil
	}
	seen := make(map[core.Event]bool, len(events))
	out := make([]core.Event, 0, len(events))
	for _, e := range events {
		if seen[e] {
			continue
		}
		seen[e] = true
		out = append(out, e)
	}
	return out
}

// SubmissionsFromRuns converts captured diagnosis profiles into wire
// submissions for one app: the exact event extraction core.Diagnose applies
// (BranchEvents/CoherenceEvents via the run's own program build), deduped
// to presence sets client-side so the wire carries no redundancy.
func SubmissionsFromRuns(app string, mode core.Mode, failed bool, runs []core.ProfiledRun) []Submission {
	out := make([]Submission, 0, len(runs))
	for _, r := range runs {
		out = append(out, Submission{
			App:    app,
			Mode:   mode,
			Failed: failed,
			Events: DedupEvents(core.RunEvents(mode, r)),
		})
	}
	return out
}

// EncodeBatch serializes a batch (JSON, no compression). The version field
// is stamped here so callers cannot forget it.
func EncodeBatch(b *Batch) ([]byte, error) {
	b.Version = WireVersion
	data, err := json.Marshal(b)
	if err != nil {
		return nil, fmt.Errorf("fleet: encode batch: %w", err)
	}
	return data, nil
}

// EncodeBatchGzip serializes a batch and gzip-compresses it for transport
// (Content-Encoding: gzip).
func EncodeBatchGzip(b *Batch) ([]byte, error) {
	data, err := EncodeBatch(b)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		return nil, fmt.Errorf("fleet: gzip batch: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("fleet: gzip batch: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeBatch reads one batch off the wire, transparently inflating gzip
// when the transport said so, and validates the version and submission
// shape. Malformed input maps to an error the server reports as HTTP 400.
func DecodeBatch(r io.Reader, gzipped bool) (*Batch, error) {
	if gzipped {
		zr, err := gzip.NewReader(r)
		if err != nil {
			return nil, fmt.Errorf("fleet: bad gzip body: %w", err)
		}
		defer zr.Close()
		r = zr
	}
	var b Batch
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("fleet: decode batch: %w", err)
	}
	if b.Version != WireVersion {
		return nil, fmt.Errorf("fleet: wire version %d, want %d", b.Version, WireVersion)
	}
	for i := range b.Subs {
		if b.Subs[i].App == "" {
			return nil, fmt.Errorf("fleet: submission %d has no app", i)
		}
		if m := b.Subs[i].Mode; m != core.ModeLBR && m != core.ModeLCR {
			return nil, fmt.Errorf("fleet: submission %d has unknown mode %d", i, m)
		}
	}
	return &b, nil
}
