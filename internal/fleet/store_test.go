package fleet

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"stmdiag/internal/cache"
	"stmdiag/internal/core"
	"stmdiag/internal/isa"
	"stmdiag/internal/obs"
	"stmdiag/internal/stats"
)

// randomSubmissions builds a deterministic random population of LBR and LCR
// submissions for two apps, including empty (lost-capture) profiles.
func randomSubmissions(seed int64, n int) []Submission {
	rng := rand.New(rand.NewSource(seed))
	var subs []Submission
	for i := 0; i < n; i++ {
		app, mode := "alpha", core.ModeLBR
		if rng.Intn(2) == 1 {
			app, mode = "beta", core.ModeLCR
		}
		var events []core.Event
		for j := rng.Intn(6); j > 0; j-- {
			if mode == core.ModeLBR {
				events = append(events, branchEvent(fmt.Sprintf("b%d", rng.Intn(8)), isa.BranchEdge(rng.Intn(2))))
			} else {
				events = append(events, coherenceEvent("f.c", rng.Intn(8), cache.AccessKind(rng.Intn(2)), cache.State(rng.Intn(4))))
			}
		}
		subs = append(subs, Submission{
			App:    app,
			Mode:   mode,
			Failed: rng.Intn(2) == 0,
			Events: events,
		})
	}
	return subs
}

// monolithicRank is the reference: stats.Rank over the equivalent run set,
// exactly what core.Diagnose computes.
func monolithicRank(subs []Submission, app string) []stats.Scored[core.Event] {
	var runs []stats.Run[core.Event]
	for _, s := range subs {
		if s.App != app {
			continue
		}
		runs = append(runs, stats.Run[core.Event]{Failed: s.Failed, Events: s.Events})
	}
	return stats.Rank(runs)
}

func TestStoreConvergesToMonolithicRank(t *testing.T) {
	subs := randomSubmissions(42, 200)
	for _, shards := range []int{1, 4, 16, 31} {
		for _, orderSeed := range []int64{1, 2, 3} {
			store := NewStore(StoreOptions{Shards: shards})
			order := rand.New(rand.NewSource(orderSeed)).Perm(len(subs))
			for _, i := range order {
				store.Add(subs[i])
			}
			for _, app := range []string{"alpha", "beta"} {
				rep := store.Report(app)
				if rep == nil {
					t.Fatalf("shards=%d order=%d: no report for %s", shards, orderSeed, app)
				}
				want := monolithicRank(subs, app)
				if !reflect.DeepEqual(rep.Ranking, want) {
					t.Errorf("shards=%d order=%d app=%s: ranking diverges from monolithic\ngot  %v\nwant %v",
						shards, orderSeed, app, rep.Ranking, want)
				}
			}
		}
	}
}

// TestStoreIncrementalDeltaPath drives the ranker through its delta branch:
// a batch of success-only submissions leaves failTotal unchanged, so the
// next report must rescore only the touched events — and still match a
// from-scratch recompute.
func TestStoreIncrementalDeltaPath(t *testing.T) {
	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	store := NewStore(StoreOptions{Shards: 4, Sink: sink})
	subs := randomSubmissions(7, 60)
	var seen []Submission
	add := func(s Submission) {
		store.Add(s)
		seen = append(seen, s)
	}
	for _, s := range subs {
		if s.App == "alpha" && s.Failed {
			add(s)
		}
	}
	if rep := store.Report("alpha"); rep == nil {
		t.Fatal("no initial report")
	}
	snap := sink.Metrics.Snapshot()
	if got := snap.Counter("fleet.rank.full_rescores"); got == 0 {
		t.Error("first report did not full-rescore")
	}
	deltasBefore := snap.Counter("fleet.rank.delta_rescores")

	// Success-only arrivals: failTotal frozen, only touched events move.
	for _, s := range subs {
		if s.App == "alpha" && !s.Failed {
			add(s)
		}
	}
	rep := store.Report("alpha")
	snap = sink.Metrics.Snapshot()
	if got := snap.Counter("fleet.rank.delta_rescores"); got != deltasBefore+1 {
		t.Errorf("delta_rescores = %d, want %d (success-only batch must take the delta path)",
			got, deltasBefore+1)
	}
	want := monolithicRank(seen, "alpha")
	if !reflect.DeepEqual(rep.Ranking, want) {
		t.Errorf("delta-path ranking diverges from monolithic\ngot  %v\nwant %v", rep.Ranking, want)
	}

	// A later failing run flips back to a full rescore (recalls moved).
	fulls := snap.Counter("fleet.rank.full_rescores")
	add(Submission{App: "alpha", Mode: core.ModeLBR, Failed: true,
		Events: []core.Event{branchEvent("b0", isa.EdgeTrue)}})
	rep = store.Report("alpha")
	snap = sink.Metrics.Snapshot()
	if got := snap.Counter("fleet.rank.full_rescores"); got != fulls+1 {
		t.Errorf("full_rescores = %d, want %d (new failure must rescore all recalls)", got, fulls+1)
	}
	want = monolithicRank(seen, "alpha")
	if !reflect.DeepEqual(rep.Ranking, want) {
		t.Errorf("post-failure ranking diverges from monolithic\ngot  %v\nwant %v", rep.Ranking, want)
	}
}

// TestStoreInterleavedReports pins that reporting mid-stream never corrupts
// the incremental state: rankings after every prefix match a from-scratch
// monolithic ranking of that prefix.
func TestStoreInterleavedReports(t *testing.T) {
	subs := randomSubmissions(11, 80)
	store := NewStore(StoreOptions{Shards: 8})
	var seen []Submission
	for i, s := range subs {
		store.Add(s)
		seen = append(seen, s)
		if i%7 != 0 {
			continue
		}
		for _, app := range []string{"alpha", "beta"} {
			want := monolithicRank(seen, app)
			rep := store.Report(app)
			var got []stats.Scored[core.Event]
			if rep != nil {
				got = rep.Ranking
			}
			failed := false
			for _, s := range seen {
				if s.App == app && s.Failed {
					failed = true
				}
			}
			if !failed {
				if rep != nil {
					t.Fatalf("prefix %d: report for %s without failing runs", i, app)
				}
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("prefix %d app %s: incremental ranking diverged\ngot  %v\nwant %v", i, app, got, want)
			}
		}
	}
}

func TestStoreConcurrentAdds(t *testing.T) {
	subs := randomSubmissions(3, 400)
	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	store := NewStore(StoreOptions{Shards: 4, Sink: sink})
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(subs); i += workers {
				store.Add(subs[i])
				if i%31 == 0 {
					store.Report(subs[i].App) // reports race with ingest
				}
			}
		}(w)
	}
	wg.Wait()
	for _, app := range []string{"alpha", "beta"} {
		rep := store.Report(app)
		want := monolithicRank(subs, app)
		if rep == nil || !reflect.DeepEqual(rep.Ranking, want) {
			t.Errorf("app %s: concurrent ingest diverged from monolithic", app)
		}
	}
	if got := sink.Metrics.Snapshot().Counter("fleet.store.profiles"); got != uint64(len(subs)) {
		t.Errorf("fleet.store.profiles = %d, want %d", got, len(subs))
	}
}

func TestStoreTotalsAndVerdict(t *testing.T) {
	store := NewStore(StoreOptions{})
	ev := branchEvent("b", isa.EdgeTrue)
	store.Add(Submission{App: "x", Mode: core.ModeLBR, Failed: true, Events: []core.Event{ev}})
	store.Add(Submission{App: "x", Mode: core.ModeLBR, Failed: true}) // empty profile
	store.Add(Submission{App: "x", Mode: core.ModeLBR, Failed: false, Events: []core.Event{ev}})
	tot := store.Totals("x")
	want := AppTotals{App: "x", Mode: "LBRA", FailRuns: 2, SuccRuns: 1, UsableFail: 1, Events: 1}
	if tot != want {
		t.Errorf("Totals = %+v, want %+v", tot, want)
	}
	rep := store.Report("x")
	if rep.Verdict != stats.VerdictConclusive {
		t.Errorf("verdict = %v (2 fail, 1 usable is exactly half: conclusive)", rep.Verdict)
	}
	store.Add(Submission{App: "x", Mode: core.ModeLBR, Failed: true}) // now 1/3 usable
	if rep = store.Report("x"); rep.Verdict != stats.VerdictInsufficient {
		t.Errorf("verdict = %v, want insufficient once most failure profiles are empty", rep.Verdict)
	}
	if store.Report("unknown") != nil {
		t.Error("report for unknown app")
	}
	if got := store.Totals("unknown"); got != (AppTotals{App: "unknown"}) {
		t.Errorf("Totals(unknown) = %+v", got)
	}
	if got := store.Apps(); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("Apps = %v", got)
	}
	// Success-only app: totals exist, report does not (no failure evidence).
	store.Add(Submission{App: "y", Mode: core.ModeLBR, Failed: false, Events: []core.Event{ev}})
	if store.Report("y") != nil {
		t.Error("report for success-only app")
	}
}

func TestStoreShardContentionCounters(t *testing.T) {
	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	store := NewStore(StoreOptions{Shards: 2, Sink: sink})
	for i := 0; i < 16; i++ {
		store.Add(Submission{App: "x", Mode: core.ModeLBR, Failed: i%2 == 0,
			Events: []core.Event{branchEvent(fmt.Sprintf("b%d", i), isa.EdgeTrue)}})
	}
	snap := sink.Metrics.Snapshot()
	var commits uint64
	for i := 0; i < 2; i++ {
		commits += snap.Counter(fmt.Sprintf("fleet.store.shard%d.commits", i))
	}
	if commits != 16 {
		t.Errorf("shard commits sum = %d, want 16", commits)
	}
}
