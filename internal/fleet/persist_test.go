package fleet

import (
	"os"
	"path/filepath"
	"testing"

	"stmdiag/internal/artifact"
	"stmdiag/internal/obs"
)

// TestPersistentStoreRestartEquivalence is the fleetd durability
// acceptance: kill the server after N submissions, reopen the same
// directory, and the replayed store renders the identical report — and
// keeps accepting new submissions that land in the same aggregate a
// never-restarted store would hold.
func TestPersistentStoreRestartEquivalence(t *testing.T) {
	dir := t.TempDir()
	subs := randomSubmissions(3, 40)

	// Reference: one uninterrupted in-memory store over all submissions.
	ref := NewStore(StoreOptions{})
	for _, sub := range subs {
		ref.Add(sub)
	}
	want := ref.Report("alpha").Render(10)

	// Persistent store, "killed" (closed without ceremony) mid-population.
	s1, err := OpenPersistent(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Persistent() {
		t.Fatal("OpenPersistent returned a non-persistent store")
	}
	half := len(subs) / 2
	for _, sub := range subs[:half] {
		s1.Add(sub)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: replay, then finish the population.
	s2, err := OpenPersistent(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Replayed(); got != half {
		t.Fatalf("replayed %d submissions, want %d", got, half)
	}
	for _, sub := range subs[half:] {
		s2.Add(sub)
	}
	if got := s2.Report("alpha").Render(10); got != want {
		t.Errorf("restarted report diverges from uninterrupted store:\n%s\nvs\n%s", got, want)
	}

	// Third open replays everything (no new submissions).
	s3, err := OpenPersistent(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.Replayed(); got != len(subs) {
		t.Fatalf("full replay = %d submissions, want %d", got, len(subs))
	}
	if got := s3.Report("alpha").Render(10); got != want {
		t.Errorf("full-replay report diverges:\n%s\nvs\n%s", got, want)
	}
}

// TestPersistentStoreSalvagesTornWAL pins the kill-mid-append path: a WAL
// whose final record is torn loses exactly that record, and the open
// quarantines the tail instead of failing.
func TestPersistentStoreSalvagesTornWAL(t *testing.T) {
	dir := t.TempDir()
	subs := randomSubmissions(1, 10)
	s1, err := OpenPersistent(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range subs {
		s1.Add(sub)
	}
	s1.Close()

	// Tear the final frame: chop 3 bytes off the log.
	wal := filepath.Join(dir, WALName)
	fi, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	s2, err := OpenPersistent(dir, StoreOptions{Sink: sink})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer s2.Close()
	if got := s2.Replayed(); got != len(subs)-1 {
		t.Errorf("replayed %d submissions after torn tail, want %d", got, len(subs)-1)
	}
	snap := sink.Metrics.Snapshot()
	if got := snap.Counter("fleet.store.wal_salvaged_opens"); got != 1 {
		t.Errorf("wal_salvaged_opens = %d, want 1", got)
	}
	if _, err := os.Stat(wal + ".quarantine"); err != nil {
		t.Errorf("torn tail not quarantined: %v", err)
	}
}

// TestPersistentStoreTruncateBoundary drives the WAL through the same
// deterministic record-boundary truncation the harness kill-resume tests
// use, checking every prefix replays cleanly.
func TestPersistentStoreTruncateBoundary(t *testing.T) {
	dir := t.TempDir()
	subs := randomSubmissions(2, 12)
	s1, err := OpenPersistent(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range subs {
		s1.Add(sub)
	}
	s1.Close()
	wal := filepath.Join(dir, WALName)
	for _, keep := range []int{len(subs) - 1, 5, 0} {
		if err := artifact.TruncateJournal(wal, keep); err != nil {
			t.Fatal(err)
		}
		s, err := OpenPersistent(dir, StoreOptions{})
		if err != nil {
			t.Fatalf("keep=%d: %v", keep, err)
		}
		if got := s.Replayed(); got != keep {
			t.Errorf("keep=%d: replayed %d", keep, got)
		}
		s.Close()
	}
}
