package fleet

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stmdiag/internal/core"
	"stmdiag/internal/obs"
)

func telemetrySub(i int) Submission {
	return Submission{
		App: "sort", Mode: core.ModeLBR, Failed: i%2 == 0,
		Events: []core.Event{{Kind: core.EventJump, File: "a.c", Line: i}},
	}
}

// TestClientTelemetryTrailsByOne pins the federation protocol on the wire:
// a batch carries the telemetry of the *previous* flush (its own sealed
// cost is unknowable), so batch 1 has none and batch N describes flush N-1.
func TestClientTelemetryTrailsByOne(t *testing.T) {
	var got []*Batch
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, err := DecodeBatch(r.Body, r.Header.Get("Content-Encoding") == "gzip")
		if err != nil {
			t.Errorf("decode: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		got = append(got, b)
		w.Write([]byte(`{"accepted": 1}`)) //nolint:errcheck
	}))
	defer srv.Close()

	c := NewClient(srv.URL, ClientOptions{BatchSize: 1, Name: "m0", RunID: 42})
	for i := 0; i < 3; i++ {
		if err := c.Add(telemetrySub(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 3 {
		t.Fatalf("server saw %d batches, want 3", len(got))
	}
	if got[0].Telemetry != nil {
		t.Errorf("first batch carries telemetry %+v, want none (trails by one)", got[0].Telemetry)
	}
	for i, b := range got[1:] {
		tele := b.Telemetry
		if tele == nil {
			t.Errorf("batch %d carries no telemetry", i+1)
			continue
		}
		if tele.Batches != 1 || tele.Profiles != 1 {
			t.Errorf("batch %d telemetry = %+v, want previous flush's counts (1 batch, 1 profile)", i+1, tele)
		}
		if tele.WireBytes == 0 || tele.EncodeNS == 0 {
			t.Errorf("batch %d telemetry lacks the previous flush's wire cost: %+v", i+1, tele)
		}
		if tele.Ctx.Client != "m0" || tele.Ctx.RunID != 42 || tele.Ctx.Worker != -1 {
			t.Errorf("batch %d telemetry ctx = %+v, want client m0 run 42 worker -1", i+1, tele.Ctx)
		}
		if len(tele.Spans) == 0 {
			t.Errorf("batch %d telemetry carries no client spans", i+1)
		}
	}
	// The client still holds the last flush's costs, waiting for a 4th.
	if c.seq != 3 || c.pending.Batches != 1 {
		t.Errorf("client state seq=%d pending=%+v, want seq 3 holding the last flush", c.seq, c.pending)
	}
}

// TestClientTelemetryCountsRetries pins the retry accounting: a flush that
// retried reports its re-send count and backoff cost in the next batch.
func TestClientTelemetryCountsRetries(t *testing.T) {
	var got []*Batch
	fails := 2
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fails > 0 {
			fails--
			http.Error(w, "shard busy", http.StatusServiceUnavailable)
			return
		}
		b, err := DecodeBatch(r.Body, r.Header.Get("Content-Encoding") == "gzip")
		if err != nil {
			t.Errorf("decode: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		got = append(got, b)
		w.Write([]byte(`{"accepted": 1}`)) //nolint:errcheck
	}))
	defer srv.Close()

	c := NewClient(srv.URL, ClientOptions{
		BatchSize: 1, Name: "m0",
		Backoff: time.Millisecond, sleep: func(time.Duration) {},
	})
	for i := 0; i < 2; i++ {
		if err := c.Add(telemetrySub(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 2 {
		t.Fatalf("server accepted %d batches, want 2", len(got))
	}
	tele := got[1].Telemetry
	if tele == nil {
		t.Fatal("second batch carries no telemetry")
	}
	if tele.Retries != 2 {
		t.Errorf("federated retries = %d, want 2", tele.Retries)
	}
	if tele.BackoffNS == 0 {
		t.Error("federated backoff cost = 0 despite retries")
	}
}

// TestServiceFederatesClientTelemetry is the service-side acceptance: two
// pushing clients produce client-labeled metric families on the service
// sink and one federated trace lane each under the fleet PID.
func TestServiceFederatesClientTelemetry(t *testing.T) {
	sink := &obs.Sink{Metrics: obs.NewRegistry(), Trace: obs.NewTracer()}
	store := NewStore(StoreOptions{Sink: sink})
	srv := httptest.NewServer(NewService(store, nil, sink).Handler())
	defer srv.Close()

	for _, name := range []string{"machine-0", "machine-1"} {
		c := NewClient(srv.URL, ClientOptions{BatchSize: 1, Name: name})
		for i := 0; i < 3; i++ {
			if err := c.Add(telemetrySub(i)); err != nil {
				t.Fatal(err)
			}
		}
	}

	snap := sink.Metrics.Snapshot()
	for _, name := range []string{"machine-0", "machine-1"} {
		if got := snap.Counter("fleet.ingest.client:" + name + ".batches"); got != 3 {
			t.Errorf("client %s batches = %d, want 3", name, got)
		}
		// Telemetry trails by one: 3 batches federate flushes 1 and 2.
		if got := snap.Counter("fleet.ingest.client:" + name + ".profiles"); got != 2 {
			t.Errorf("client %s federated profiles = %d, want 2", name, got)
		}
		if got := snap.Counter("fleet.ingest.client:" + name + ".wire_bytes"); got == 0 {
			t.Errorf("client %s federated wire_bytes = 0", name)
		}
	}
	// The exposition renders them as one labeled family.
	om := snap.OpenMetrics()
	for _, want := range []string{
		`fleet_ingest_client_batches_total{client="machine-0"} 3`,
		`fleet_ingest_client_batches_total{client="machine-1"} 3`,
	} {
		if !strings.Contains(om, want) {
			t.Errorf("exposition lacks %q:\n%s", want, om)
		}
	}

	sum := sink.Trace.Summary()
	lanes := map[string]obs.LaneSummary{}
	for _, l := range sum.Lanes {
		if l.PID == obs.FleetPID {
			lanes[l.Thread] = l
		}
	}
	if _, ok := lanes["service"]; !ok {
		t.Errorf("federated trace has no service lane: %+v", sum.Lanes)
	}
	for _, name := range []string{"client machine-0", "client machine-1"} {
		l, ok := lanes[name]
		if !ok {
			t.Errorf("federated trace has no %q lane: %+v", name, sum.Lanes)
			continue
		}
		if l.Spans == 0 {
			t.Errorf("lane %q recorded no spans", name)
		}
	}
	if lanes["service"].Spans != 6 {
		t.Errorf("service lane spans = %d, want 6 ingests", lanes["service"].Spans)
	}
}

// TestSanitizeClient pins the name-segment mapping: dots would split the
// metric segment the client: convention rides in.
func TestSanitizeClient(t *testing.T) {
	for in, want := range map[string]string{
		"machine-0":  "machine-0",
		"host.a b":   "host_a_b",
		"x\ny\tz\rw": "x_y_z_w",
	} {
		if got := sanitizeClient(in); got != want {
			t.Errorf("sanitizeClient(%q) = %q, want %q", in, got, want)
		}
	}
}
