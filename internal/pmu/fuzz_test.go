package pmu

import (
	"testing"

	"stmdiag/internal/isa"
)

// FuzzLBRSelect drives the LBR MSR interface with arbitrary filter
// configurations and branch streams, checking the hardware contract the
// kernel driver relies on: configuration registers round-trip, the branch
// stack never exceeds its depth, suppressed classes and privilege levels
// are never recorded, and the stack MSR window never faults in range.
func FuzzLBRSelect(f *testing.F) {
	f.Add(uint64(PaperLBRSelect), uint64(DebugCtlEnableLBR), uint8(16), []byte{0x00, 0x13, 0x2a, 0x81})
	f.Add(uint64(0), uint64(DebugCtlEnableLBR), uint8(4), []byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06})
	f.Add(uint64(SelCPLNeq0), uint64(DebugCtlEnableLBR), uint8(8), []byte{0x90, 0x11, 0xf2})
	f.Add(uint64(SelJCC|SelNearRet), uint64(DebugCtlDisableLBR), uint8(1), []byte{0x01})
	f.Add(^uint64(0), uint64(DebugCtlEnableLBR), uint8(31), []byte{0xaa, 0x55})
	f.Fuzz(func(t *testing.T, sel, debugctl uint64, sizeRaw uint8, ops []byte) {
		size := int(sizeRaw%32) + 1
		l := NewLBR(size)
		if err := l.WriteMSR(MSRLBRSelect, sel); err != nil {
			t.Fatalf("wrmsr LBR_SELECT: %v", err)
		}
		if err := l.WriteMSR(MSRDebugCtl, debugctl); err != nil {
			t.Fatalf("wrmsr DEBUGCTL: %v", err)
		}
		if got, err := l.ReadMSR(MSRLBRSelect); err != nil || got != sel {
			t.Fatalf("LBR_SELECT round-trip: got %#x, %v; wrote %#x", got, err, sel)
		}
		enabled := debugctl == DebugCtlEnableLBR
		if l.Enabled() != enabled {
			t.Fatalf("Enabled() = %v after wrmsr DEBUGCTL %#x", l.Enabled(), debugctl)
		}
		if len(ops) > 256 {
			ops = ops[:256]
		}
		for i, op := range ops {
			rec := BranchRecord{
				From:   i,
				To:     int(op),
				Class:  isa.BranchClass(op % 7),
				Kernel: op&0x80 != 0,
			}
			recorded, evicted := l.Record(rec)
			wantDrop := !enabled ||
				(rec.Kernel && sel&SelCPLEq0 != 0) ||
				(!rec.Kernel && sel&SelCPLNeq0 != 0) ||
				sel&suppressBit(rec.Class) != 0
			if recorded == wantDrop {
				t.Fatalf("Record(%+v) recorded=%v with sel=%#x enabled=%v", rec, recorded, sel, enabled)
			}
			if evicted && !recorded {
				t.Fatalf("Record(%+v) evicted without recording", rec)
			}
			if recorded {
				latest := l.Latest()
				if len(latest) == 0 || latest[0] != rec {
					t.Fatalf("Latest()[0] != just-recorded branch: %v", latest)
				}
			}
			if l.Len() > l.Cap() {
				t.Fatalf("Len %d exceeds Cap %d", l.Len(), l.Cap())
			}
		}
		if l.Cap() != size {
			t.Fatalf("Cap changed: %d, want %d", l.Cap(), size)
		}
		// The whole branch-stack MSR window must be readable; one past it
		// must fault like a bad rdmsr.
		for i := 0; i < l.Cap(); i++ {
			if _, err := l.ReadMSR(MSRBranchFromBase + uint32(i)); err != nil {
				t.Fatalf("rdmsr FROM[%d]: %v", i, err)
			}
			if _, err := l.ReadMSR(MSRBranchToBase + uint32(i)); err != nil {
				t.Fatalf("rdmsr TO[%d]: %v", i, err)
			}
		}
		if _, err := l.ReadMSR(MSRBranchFromBase + uint32(l.Cap())); err == nil {
			t.Fatal("rdmsr past the branch stack must error")
		}
		if err := l.WriteMSR(0xdead, 1); err == nil {
			t.Fatal("wrmsr to an unknown MSR must error")
		}
	})
}
