package pmu

// BTS models the Branch Trace Store, the other Intel branch-tracing
// facility the paper contrasts with the LBR (§2.1): instead of a small
// ring of registers, BTS streams every retired taken branch into a
// memory-resident buffer. It can hold the whole execution's branch trace —
// the "whole-execution approach" of Figure 1 — but each record is a store
// into cacheable memory, which costs 20%–100% run time on real hardware
// and is why the paper rules it out for production runs.
//
// The VM charges vm.CostBTSRecord cycles per record, reproducing that
// overhead class, and the harness's BTS ablation shows the capability it
// buys: no root cause is ever evicted.
type BTS struct {
	buf     []BranchRecord
	limit   int
	dropped uint64
	enabled bool
}

// DefaultBTSLimit bounds the trace buffer (records); the OS-provided ring
// the real facility uses is similarly bounded.
const DefaultBTSLimit = 1 << 20

// NewBTS returns a trace store holding up to limit records (0 means
// DefaultBTSLimit).
func NewBTS(limit int) *BTS {
	if limit <= 0 {
		limit = DefaultBTSLimit
	}
	return &BTS{limit: limit}
}

// SetEnabled starts or stops tracing.
func (b *BTS) SetEnabled(on bool) { b.enabled = on }

// Enabled reports whether tracing is on.
func (b *BTS) Enabled() bool { return b.enabled }

// Record appends a retired taken branch. BTS has no class filters; when
// the buffer is full the oldest half is flushed (the OS would drain it),
// counted in Dropped.
func (b *BTS) Record(r BranchRecord) {
	if !b.enabled {
		return
	}
	if len(b.buf) >= b.limit {
		half := len(b.buf) / 2
		b.dropped += uint64(half)
		b.buf = append(b.buf[:0], b.buf[half:]...)
	}
	b.buf = append(b.buf, r)
}

// Trace returns the retained records, oldest first.
func (b *BTS) Trace() []BranchRecord { return b.buf }

// Len returns the retained record count.
func (b *BTS) Len() int { return len(b.buf) }

// Dropped returns how many records were flushed to make room.
func (b *BTS) Dropped() uint64 { return b.dropped }

// Clear empties the trace.
func (b *BTS) Clear() {
	b.buf = b.buf[:0]
	b.dropped = 0
}
