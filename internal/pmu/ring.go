// Package pmu models the hardware performance monitoring unit of the
// machine: the Last Branch Record (LBR) facility that exists on Intel
// processors (paper §2.1, Table 1), the Last Cache-coherence Record (LCR)
// extension the paper proposes (§4.2), and the L1D coherence-event
// performance counters the LCR generalizes (§2.2, Table 2).
package pmu

// Ring is a fixed-capacity circular record buffer: writing the (n+1)-th
// record evicts the oldest, exactly like the LBR register stack. The zero
// Ring is unusable; construct with NewRing.
type Ring[T any] struct {
	buf  []T
	next int // index the next record goes to
	full bool
}

// NewRing returns an empty ring holding up to capacity records.
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic("pmu: ring capacity must be positive")
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns how many records are currently held.
func (r *Ring[T]) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Push records v, evicting the oldest record if the ring is full. It
// reports whether an older record was evicted to make room — the telemetry
// layer counts evictions to show how fast the hardware's short-term memory
// forgets.
func (r *Ring[T]) Push(v T) (evicted bool) {
	evicted = r.full
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	return evicted
}

// Clear empties the ring (the driver's CLEAN operation).
func (r *Ring[T]) Clear() {
	r.next = 0
	r.full = false
	clear(r.buf)
}

// Latest returns the records newest-first: Latest()[0] is the most recent,
// matching the paper's "n-th latest entry" indexing (1-based n maps to
// index n-1). The slice is freshly allocated.
func (r *Ring[T]) Latest() []T {
	n := r.Len()
	out := make([]T, n)
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.buf)
		}
		out[i] = r.buf[idx]
	}
	return out
}

// Oldest returns the records oldest-first.
func (r *Ring[T]) Oldest() []T {
	latest := r.Latest()
	for i, j := 0, len(latest)-1; i < j; i, j = i+1, j-1 {
		latest[i], latest[j] = latest[j], latest[i]
	}
	return latest
}
