package pmu

import "stmdiag/internal/obs"

// ringTelemetry caches the telemetry counters of one recording facility.
// The zero value is fully detached: every counter is nil and its methods
// are no-ops, so an unattached LBR/LCR pays only nil checks.
type ringTelemetry struct {
	pushes    *obs.Counter // records accepted into the ring
	evictions *obs.Counter // oldest-entry evictions caused by pushes
	drops     *obs.Counter // records suppressed by filters while enabled
	toggles   *obs.Counter // enable/disable state changes

	// Snapshot-allocation accounting (internal/prof): each Latest call
	// materializes a fresh slice on the capture hot path — the segfault
	// handler's MSR reads and the driver's profile snapshots. Armed only
	// when the sink profiles, so default telemetry output is unchanged.
	snapAllocs  *obs.Counter // ring snapshots materialized
	snapRecords *obs.Counter // entries copied across those snapshots
}

// attach resolves the counters "<prefix>.pushes" etc. from the sink; a nil
// sink detaches.
func (t *ringTelemetry) attach(s *obs.Sink, prefix string) {
	if s == nil {
		*t = ringTelemetry{}
		return
	}
	t.pushes = s.Counter(prefix + ".pushes")
	t.evictions = s.Counter(prefix + ".evictions")
	t.drops = s.Counter(prefix + ".drops")
	t.toggles = s.Counter(prefix + ".toggles")
	if s.Profiled() {
		t.snapAllocs = s.Counter("prof.alloc." + prefix + ".allocs")
		t.snapRecords = s.Counter("prof.alloc." + prefix + ".records")
	}
}

// snapshot accounts one ring-snapshot materialization of n records.
func (t *ringTelemetry) snapshot(n int) {
	t.snapAllocs.Inc()
	t.snapRecords.Add(uint64(n))
}
