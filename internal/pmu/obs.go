package pmu

import "stmdiag/internal/obs"

// ringTelemetry caches the telemetry counters of one recording facility.
// The zero value is fully detached: every counter is nil and its methods
// are no-ops, so an unattached LBR/LCR pays only nil checks.
type ringTelemetry struct {
	pushes    *obs.Counter // records accepted into the ring
	evictions *obs.Counter // oldest-entry evictions caused by pushes
	drops     *obs.Counter // records suppressed by filters while enabled
	toggles   *obs.Counter // enable/disable state changes
}

// attach resolves the counters "<prefix>.pushes" etc. from the sink; a nil
// sink detaches.
func (t *ringTelemetry) attach(s *obs.Sink, prefix string) {
	if s == nil {
		*t = ringTelemetry{}
		return
	}
	t.pushes = s.Counter(prefix + ".pushes")
	t.evictions = s.Counter(prefix + ".evictions")
	t.drops = s.Counter(prefix + ".drops")
	t.toggles = s.Counter(prefix + ".toggles")
}
