package pmu

import (
	"fmt"

	"stmdiag/internal/faultinj"
	"stmdiag/internal/isa"
	"stmdiag/internal/obs"
)

// MSR identifiers and values, following paper Table 1 (Intel Nehalem).
const (
	// MSRDebugCtl is IA32_DEBUGCTL (0x1d9); writing DebugCtlEnableLBR
	// starts branch recording, writing DebugCtlDisableLBR stops it.
	MSRDebugCtl = 0x1d9
	// MSRLBRSelect is LBR_SELECT (0x1c8); its bits *filter out* (suppress)
	// branch classes from recording.
	MSRLBRSelect = 0x1c8
	// MSRBranchFromBase is BRANCH_0_FROM_IP; register i of the branch
	// stack is MSRBranchFromBase+i.
	MSRBranchFromBase = 0x680
	// MSRBranchToBase is BRANCH_0_TO_IP.
	MSRBranchToBase = 0x6c0

	// DebugCtlEnableLBR is the IA32_DEBUGCTL value that enables LBR
	// recording (paper Table 1).
	DebugCtlEnableLBR = 0x801
	// DebugCtlDisableLBR disables LBR recording.
	DebugCtlDisableLBR = 0x0
)

// LBR_SELECT filter masks (paper Table 1). A set bit SUPPRESSES that class
// of branches from being recorded.
const (
	// SelCPLEq0 filters branches occurring in ring 0 (kernel).
	SelCPLEq0 = 0x1
	// SelCPLNeq0 filters branches occurring in other (user) levels.
	SelCPLNeq0 = 0x2
	// SelJCC filters conditional branches.
	SelJCC = 0x4
	// SelNearRelCall filters near relative calls.
	SelNearRelCall = 0x8
	// SelNearIndCall filters near indirect calls.
	SelNearIndCall = 0x10
	// SelNearRet filters near returns.
	SelNearRet = 0x20
	// SelNearIndJmp filters near unconditional indirect jumps.
	SelNearIndJmp = 0x40
	// SelNearRelJmp filters near unconditional relative branches.
	SelNearRelJmp = 0x80
	// SelFarBranch filters far branches.
	SelFarBranch = 0x100
)

// PaperLBRSelect is the filter configuration the paper uses (the starred
// masks of Table 1): suppress kernel branches, calls, returns, indirect
// jumps and far branches, keeping conditional branches and unconditional
// relative jumps — the two classes that resolve source-branch outcomes via
// the Figure 2 lowering.
const PaperLBRSelect = SelCPLEq0 | SelNearRelCall | SelNearIndCall |
	SelNearRet | SelNearIndJmp | SelFarBranch

// DefaultLBRSize is the branch-stack depth of Nehalem processors, the
// microarchitecture all the paper's experiments run on.
const DefaultLBRSize = 16

// BranchRecord is one LBR entry: the source and target of a retired taken
// branch.
type BranchRecord struct {
	// From is the PC of the branch instruction.
	From int
	// To is the PC it transferred to.
	To int
	// Class is the branch class, used only for filtering.
	Class isa.BranchClass
	// Kernel reports whether the branch retired at ring 0.
	Kernel bool
}

// String formats the record like the driver's debug output.
func (b BranchRecord) String() string {
	return fmt.Sprintf("%d->%d (%s)", b.From, b.To, b.Class)
}

// LBR is one core's Last Branch Record facility.
type LBR struct {
	ring    *Ring[BranchRecord]
	sel     uint64
	enabled bool
	faults  *faultinj.Plan
	tel     ringTelemetry
}

// NewLBR returns an LBR with the given stack depth.
func NewLBR(size int) *LBR {
	return &LBR{ring: NewRing[BranchRecord](size)}
}

// AttachObs resolves this LBR's telemetry counters ("pmu.lbr.*") from the
// sink. Passing a nil sink detaches (counters become nil, no-op).
func (l *LBR) AttachObs(s *obs.Sink) { l.tel.attach(s, "pmu.lbr") }

// SetFaults installs the trial's fault plan. A nil plan (the default)
// injects nothing and costs one nil check per operation.
func (l *LBR) SetFaults(p *faultinj.Plan) { l.faults = p }

// WriteMSR implements the wrmsr side of the two configuration registers.
// Unknown MSR ids are rejected, mirroring the #GP a bad wrmsr raises.
// An injected msr-write fault makes the wrmsr fail with faultinj.ErrGlitch
// before it takes effect; callers retry or degrade.
func (l *LBR) WriteMSR(id uint32, val uint64) error {
	if l.faults.Hit(faultinj.MSRWrite) {
		return fmt.Errorf("pmu: wrmsr %#x: %w", id, faultinj.ErrGlitch)
	}
	switch id {
	case MSRDebugCtl:
		enable := val == DebugCtlEnableLBR
		if enable != l.enabled {
			l.tel.toggles.Inc()
		}
		l.enabled = enable
		return nil
	case MSRLBRSelect:
		l.sel = val
		return nil
	}
	return fmt.Errorf("pmu: wrmsr to unknown MSR %#x", id)
}

// ReadMSR implements rdmsr for the configuration and branch-stack MSRs.
// An injected msr-read fault corrupts the value read from a branch-stack
// MSR (configuration reads are unaffected: rereading them is how callers
// verify writes).
func (l *LBR) ReadMSR(id uint32) (uint64, error) {
	v, err := l.readMSR(id)
	if err == nil && id >= MSRBranchFromBase && l.faults.Hit(faultinj.MSRRead) {
		v = uint64(l.faults.Corrupt(faultinj.MSRRead, int(v)))
	}
	return v, err
}

func (l *LBR) readMSR(id uint32) (uint64, error) {
	switch {
	case id == MSRDebugCtl:
		if l.enabled {
			return DebugCtlEnableLBR, nil
		}
		return DebugCtlDisableLBR, nil
	case id == MSRLBRSelect:
		return l.sel, nil
	case id >= MSRBranchFromBase && id < MSRBranchFromBase+uint32(l.ring.Cap()):
		recs := l.Latest()
		i := int(id - MSRBranchFromBase)
		if i < len(recs) {
			return uint64(recs[i].From), nil
		}
		return 0, nil
	case id >= MSRBranchToBase && id < MSRBranchToBase+uint32(l.ring.Cap()):
		recs := l.Latest()
		i := int(id - MSRBranchToBase)
		if i < len(recs) {
			return uint64(recs[i].To), nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("pmu: rdmsr from unknown MSR %#x", id)
}

// Enabled reports whether recording is on.
func (l *LBR) Enabled() bool { return l.enabled }

// Select returns the current LBR_SELECT value.
func (l *LBR) Select() uint64 { return l.sel }

// suppressed maps a branch class to its LBR_SELECT suppress bit.
func suppressBit(c isa.BranchClass) uint64 {
	switch c {
	case isa.BranchCond:
		return SelJCC
	case isa.BranchUncondRel:
		return SelNearRelJmp
	case isa.BranchUncondInd:
		return SelNearIndJmp
	case isa.BranchRelCall:
		return SelNearRelCall
	case isa.BranchIndCall:
		return SelNearIndCall
	case isa.BranchReturn:
		return SelNearRet
	}
	return 0
}

// Record offers a retired taken branch to the LBR. It is recorded unless
// recording is disabled or an LBR_SELECT bit suppresses its class or
// privilege level. It reports whether the branch was recorded and whether
// recording it evicted the oldest stack entry. Injected faults act on
// branches that pass the filters: lbr-drop loses the record, lbr-corrupt
// scrambles its endpoints, lbr-dup records it twice.
func (l *LBR) Record(r BranchRecord) (recorded, evicted bool) {
	if !l.enabled {
		return false, false
	}
	if r.Kernel && l.sel&SelCPLEq0 != 0 {
		l.tel.drops.Inc()
		return false, false
	}
	if !r.Kernel && l.sel&SelCPLNeq0 != 0 {
		l.tel.drops.Inc()
		return false, false
	}
	if l.sel&suppressBit(r.Class) != 0 {
		l.tel.drops.Inc()
		return false, false
	}
	if l.faults.Hit(faultinj.LBRDrop) {
		l.tel.drops.Inc()
		return false, false
	}
	if l.faults.Hit(faultinj.LBRCorrupt) {
		r.From = l.faults.Corrupt(faultinj.LBRCorrupt, r.From)
		r.To = l.faults.Corrupt(faultinj.LBRCorrupt, r.To)
	}
	evicted = l.push(r)
	if l.faults.Hit(faultinj.LBRDup) {
		evicted = l.push(r) || evicted
	}
	return true, evicted
}

// push records one entry and maintains the ring telemetry.
func (l *LBR) push(r BranchRecord) bool {
	evicted := l.ring.Push(r)
	l.tel.pushes.Inc()
	if evicted {
		l.tel.evictions.Inc()
	}
	return evicted
}

// Clear empties the branch stack (the driver's DRIVER_CLEAN_LBR).
func (l *LBR) Clear() { l.ring.Clear() }

// Latest returns the stack newest-first. Each call materializes a fresh
// slice; the profiler's alloc accounting counts these snapshots.
func (l *LBR) Latest() []BranchRecord {
	recs := l.ring.Latest()
	l.tel.snapshot(len(recs))
	return recs
}

// Len returns the number of held records.
func (l *LBR) Len() int { return l.ring.Len() }

// Cap returns the stack depth.
func (l *LBR) Cap() int { return l.ring.Cap() }
