package pmu

import (
	"fmt"

	"stmdiag/internal/cache"
	"stmdiag/internal/faultinj"
	"stmdiag/internal/obs"
)

// Coherence-event encoding, following paper Table 2 (Intel Nehalem L1D
// cache-coherence events).
const (
	// EventCodeLoad is the event code for loads (0x40).
	EventCodeLoad = 0x40
	// EventCodeStore is the event code for stores (0x41).
	EventCodeStore = 0x41

	// UmaskInvalid observes the I state prior to a cache access.
	UmaskInvalid = 0x01
	// UmaskShared observes the S state prior to a cache access.
	UmaskShared = 0x02
	// UmaskExclusive observes the E state prior to a cache access.
	UmaskExclusive = 0x04
	// UmaskModified observes the M state prior to a cache access.
	UmaskModified = 0x08
)

// StateUmask maps a MESI state to its Table 2 unit-mask bit.
func StateUmask(s cache.State) uint8 {
	switch s {
	case cache.Invalid:
		return UmaskInvalid
	case cache.Shared:
		return UmaskShared
	case cache.Exclusive:
		return UmaskExclusive
	case cache.Modified:
		return UmaskModified
	}
	return 0
}

// DefaultLCRSize is the record depth the paper proposes (K=16, resembling
// the Nehalem LBR).
const DefaultLCRSize = 16

// CoherenceEvent is one LCR entry: the program counter of a retired L1D
// access and the coherence state it observed before the access. Memory
// addresses are deliberately NOT recorded (paper §4.2.1 footnote), which is
// what makes LCR privacy-preserving.
type CoherenceEvent struct {
	// PC is the instruction counter of the load or store.
	PC int
	// Kind says whether the access was a load or a store.
	Kind cache.AccessKind
	// State is the MESI state observed prior to the access.
	State cache.State
	// Kernel reports whether the access retired at ring 0.
	Kernel bool
}

// String formats the event compactly, e.g. "load@123:I".
func (e CoherenceEvent) String() string {
	return fmt.Sprintf("%s@%d:%s", e.Kind, e.PC, e.State)
}

// LCRConfig selects which coherence events the LCR records, mirroring the
// configuration register of paper §4.2.1 item 1. The masks use the Table 2
// unit-mask bits.
type LCRConfig struct {
	// LoadMask selects observed states recorded for loads.
	LoadMask uint8
	// StoreMask selects observed states recorded for stores.
	StoreMask uint8
	// FilterKernel drops ring-0 accesses.
	FilterKernel bool
	// FilterUser drops user-level accesses.
	FilterUser bool
}

// ConfSpaceSaving is the paper's first ("more space-saving") user-level LCR
// configuration: invalid loads, invalid stores, and shared loads. It is
// Conf1 in paper Table 7.
var ConfSpaceSaving = LCRConfig{
	LoadMask:     UmaskInvalid | UmaskShared,
	StoreMask:    UmaskInvalid,
	FilterKernel: true,
}

// ConfSpaceConsuming records invalid loads, invalid stores, and exclusive
// loads — the configuration that covers every failure-predicting event
// class of paper Table 3 directly. It is Conf2 in paper Table 7 and the
// configuration LCRA uses.
var ConfSpaceConsuming = LCRConfig{
	LoadMask:     UmaskInvalid | UmaskExclusive,
	StoreMask:    UmaskInvalid,
	FilterKernel: true,
}

// Matches reports whether the configuration records the event.
func (c LCRConfig) Matches(e CoherenceEvent) bool {
	if e.Kernel && c.FilterKernel {
		return false
	}
	if !e.Kernel && c.FilterUser {
		return false
	}
	mask := c.LoadMask
	if e.Kind == cache.Store {
		mask = c.StoreMask
	}
	return mask&StateUmask(e.State) != 0
}

// LCR is one hardware context's Last Cache-coherence Record. The paper's
// PIN-based simulator maintains one per thread (§4.3 "LCR simulation"); the
// VM follows that design.
type LCR struct {
	ring    *Ring[CoherenceEvent]
	cfg     LCRConfig
	enabled bool
	faults  *faultinj.Plan
	tel     ringTelemetry
}

// NewLCR returns an LCR with the given record depth.
func NewLCR(size int) *LCR {
	return &LCR{ring: NewRing[CoherenceEvent](size)}
}

// AttachObs resolves this LCR's telemetry counters ("pmu.lcr.*") from the
// sink. Passing a nil sink detaches.
func (l *LCR) AttachObs(s *obs.Sink) { l.tel.attach(s, "pmu.lcr") }

// SetFaults installs the trial's fault plan; nil injects nothing.
func (l *LCR) SetFaults(p *faultinj.Plan) { l.faults = p }

// Configure sets the event-selection register.
func (l *LCR) Configure(cfg LCRConfig) { l.cfg = cfg }

// Config returns the current configuration.
func (l *LCR) Config() LCRConfig { return l.cfg }

// SetEnabled starts or stops recording; a frozen (disabled) LCR retains its
// contents for profiling.
func (l *LCR) SetEnabled(on bool) {
	if on != l.enabled {
		l.tel.toggles.Inc()
	}
	l.enabled = on
}

// Enabled reports whether recording is on.
func (l *LCR) Enabled() bool { return l.enabled }

// Record offers a retired L1D access to the LCR; it is kept if recording
// is enabled and the configuration matches. It reports whether the event
// was recorded and whether recording it evicted the oldest entry. Injected
// faults act on matching events: lcr-drop loses the record, lcr-corrupt
// scrambles its PC, lcr-dup records it twice.
func (l *LCR) Record(e CoherenceEvent) (recorded, evicted bool) {
	if !l.enabled {
		return false, false
	}
	if !l.cfg.Matches(e) {
		l.tel.drops.Inc()
		return false, false
	}
	if l.faults.Hit(faultinj.LCRDrop) {
		l.tel.drops.Inc()
		return false, false
	}
	if l.faults.Hit(faultinj.LCRCorrupt) {
		e.PC = l.faults.Corrupt(faultinj.LCRCorrupt, e.PC)
	}
	evicted = l.push(e)
	if l.faults.Hit(faultinj.LCRDup) {
		evicted = l.push(e) || evicted
	}
	return true, evicted
}

// push records one entry and maintains the ring telemetry.
func (l *LCR) push(e CoherenceEvent) bool {
	evicted := l.ring.Push(e)
	l.tel.pushes.Inc()
	if evicted {
		l.tel.evictions.Inc()
	}
	return evicted
}

// Clear empties the record.
func (l *LCR) Clear() { l.ring.Clear() }

// Latest returns the record newest-first. Each call materializes a fresh
// slice; the profiler's alloc accounting counts these snapshots.
func (l *LCR) Latest() []CoherenceEvent {
	recs := l.ring.Latest()
	l.tel.snapshot(len(recs))
	return recs
}

// Len returns the number of held records.
func (l *LCR) Len() int { return l.ring.Len() }

// Cap returns the record depth.
func (l *LCR) Cap() int { return l.ring.Cap() }

// Counters is a bank of L1D coherence-event performance counters, the
// existing-hardware facility of paper §2.2 that LCR extends "from being
// able to count cache-coherence events to being able to record while
// counting". Counts are indexed by access kind and observed state.
type Counters struct {
	counts [2][4]uint64
}

// Observe counts one retired access.
func (c *Counters) Observe(kind cache.AccessKind, st cache.State) {
	c.counts[kind][st]++
}

// Count returns the number of accesses of the kind that observed the state.
func (c *Counters) Count(kind cache.AccessKind, st cache.State) uint64 {
	return c.counts[kind][st]
}

// Total returns all counted accesses of the kind.
func (c *Counters) Total(kind cache.AccessKind) uint64 {
	var n uint64
	for _, v := range c.counts[kind] {
		n += v
	}
	return n
}
