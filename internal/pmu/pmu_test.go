package pmu

import (
	"testing"
	"testing/quick"

	"stmdiag/internal/cache"
	"stmdiag/internal/isa"
)

func TestRingEvictsOldest(t *testing.T) {
	r := NewRing[int](4)
	for i := 1; i <= 6; i++ {
		r.Push(i)
	}
	got := r.Latest()
	want := []int{6, 5, 4, 3}
	if len(got) != len(want) {
		t.Fatalf("Latest() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Latest() = %v, want %v", got, want)
		}
	}
	old := r.Oldest()
	if old[0] != 3 || old[3] != 6 {
		t.Errorf("Oldest() = %v", old)
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing[string](8)
	if r.Len() != 0 || len(r.Latest()) != 0 {
		t.Error("empty ring not empty")
	}
	r.Push("a")
	r.Push("b")
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
	got := r.Latest()
	if got[0] != "b" || got[1] != "a" {
		t.Errorf("Latest = %v", got)
	}
	r.Clear()
	if r.Len() != 0 {
		t.Error("Clear did not empty ring")
	}
}

// Property: after pushing n values the ring holds min(n, cap) values, and
// Latest()[0] is always the last pushed value.
func TestRingQuick(t *testing.T) {
	f := func(vals []int64, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		r := NewRing[int64](capacity)
		for _, v := range vals {
			r.Push(v)
		}
		n := len(vals)
		wantLen := n
		if wantLen > capacity {
			wantLen = capacity
		}
		got := r.Latest()
		if len(got) != wantLen {
			return false
		}
		for i := 0; i < wantLen; i++ {
			if got[i] != vals[n-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func lbrWith(t *testing.T, sel uint64) *LBR {
	t.Helper()
	l := NewLBR(DefaultLBRSize)
	if err := l.WriteMSR(MSRLBRSelect, sel); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteMSR(MSRDebugCtl, DebugCtlEnableLBR); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLBRPaperFilterKeepsCondAndRelJmp(t *testing.T) {
	l := lbrWith(t, PaperLBRSelect)
	records := []BranchRecord{
		{From: 1, To: 10, Class: isa.BranchCond},
		{From: 2, To: 20, Class: isa.BranchUncondRel},
		{From: 3, To: 30, Class: isa.BranchRelCall},
		{From: 4, To: 40, Class: isa.BranchIndCall},
		{From: 5, To: 50, Class: isa.BranchReturn},
		{From: 6, To: 60, Class: isa.BranchUncondInd},
		{From: 7, To: 70, Class: isa.BranchCond, Kernel: true},
	}
	for _, r := range records {
		l.Record(r)
	}
	got := l.Latest()
	if len(got) != 2 {
		t.Fatalf("recorded %d entries (%v), want 2", len(got), got)
	}
	if got[0].From != 2 || got[1].From != 1 {
		t.Errorf("Latest = %v", got)
	}
}

func TestLBRDisabledRecordsNothing(t *testing.T) {
	l := NewLBR(4)
	l.Record(BranchRecord{From: 1, To: 2, Class: isa.BranchCond})
	if l.Len() != 0 {
		t.Error("disabled LBR recorded a branch")
	}
	if err := l.WriteMSR(MSRDebugCtl, DebugCtlEnableLBR); err != nil {
		t.Fatal(err)
	}
	l.Record(BranchRecord{From: 1, To: 2, Class: isa.BranchCond})
	if l.Len() != 1 {
		t.Error("enabled LBR did not record")
	}
	if err := l.WriteMSR(MSRDebugCtl, DebugCtlDisableLBR); err != nil {
		t.Fatal(err)
	}
	l.Record(BranchRecord{From: 3, To: 4, Class: isa.BranchCond})
	if l.Len() != 1 {
		t.Error("disabled LBR kept recording")
	}
}

func TestLBRUserFilter(t *testing.T) {
	l := lbrWith(t, SelCPLNeq0) // suppress user-level branches
	l.Record(BranchRecord{From: 1, To: 2, Class: isa.BranchCond})
	l.Record(BranchRecord{From: 3, To: 4, Class: isa.BranchCond, Kernel: true})
	got := l.Latest()
	if len(got) != 1 || !got[0].Kernel {
		t.Errorf("Latest = %v, want only the kernel branch", got)
	}
}

func TestLBRMSRInterface(t *testing.T) {
	l := lbrWith(t, PaperLBRSelect)
	if v, err := l.ReadMSR(MSRLBRSelect); err != nil || v != PaperLBRSelect {
		t.Errorf("ReadMSR(LBR_SELECT) = %#x, %v", v, err)
	}
	if v, err := l.ReadMSR(MSRDebugCtl); err != nil || v != DebugCtlEnableLBR {
		t.Errorf("ReadMSR(DEBUGCTL) = %#x, %v", v, err)
	}
	l.Record(BranchRecord{From: 11, To: 22, Class: isa.BranchCond})
	l.Record(BranchRecord{From: 33, To: 44, Class: isa.BranchCond})
	if v, _ := l.ReadMSR(MSRBranchFromBase); v != 33 {
		t.Errorf("BRANCH_0_FROM_IP = %d, want 33 (most recent)", v)
	}
	if v, _ := l.ReadMSR(MSRBranchToBase + 1); v != 22 {
		t.Errorf("BRANCH_1_TO_IP = %d, want 22", v)
	}
	if v, _ := l.ReadMSR(MSRBranchFromBase + 5); v != 0 {
		t.Errorf("unfilled stack MSR = %d, want 0", v)
	}
	if _, err := l.ReadMSR(0x9999); err == nil {
		t.Error("unknown rdmsr accepted")
	}
	if err := l.WriteMSR(0x9999, 1); err == nil {
		t.Error("unknown wrmsr accepted")
	}
}

func TestLCRConfigurations(t *testing.T) {
	cases := []struct {
		cfg  LCRConfig
		ev   CoherenceEvent
		want bool
	}{
		{ConfSpaceConsuming, CoherenceEvent{Kind: cache.Load, State: cache.Invalid}, true},
		{ConfSpaceConsuming, CoherenceEvent{Kind: cache.Store, State: cache.Invalid}, true},
		{ConfSpaceConsuming, CoherenceEvent{Kind: cache.Load, State: cache.Exclusive}, true},
		{ConfSpaceConsuming, CoherenceEvent{Kind: cache.Load, State: cache.Shared}, false},
		{ConfSpaceConsuming, CoherenceEvent{Kind: cache.Store, State: cache.Modified}, false},
		{ConfSpaceSaving, CoherenceEvent{Kind: cache.Load, State: cache.Shared}, true},
		{ConfSpaceSaving, CoherenceEvent{Kind: cache.Load, State: cache.Exclusive}, false},
		{ConfSpaceSaving, CoherenceEvent{Kind: cache.Store, State: cache.Invalid}, true},
		{ConfSpaceConsuming, CoherenceEvent{Kind: cache.Load, State: cache.Invalid, Kernel: true}, false},
	}
	for i, tc := range cases {
		if got := tc.cfg.Matches(tc.ev); got != tc.want {
			t.Errorf("case %d: Matches(%v) = %v, want %v", i, tc.ev, got, tc.want)
		}
	}
}

func TestLCRRecordAndFreeze(t *testing.T) {
	l := NewLCR(4)
	l.Configure(ConfSpaceConsuming)
	l.SetEnabled(true)
	l.Record(CoherenceEvent{PC: 1, Kind: cache.Load, State: cache.Invalid})
	l.Record(CoherenceEvent{PC: 2, Kind: cache.Load, State: cache.Shared}) // filtered
	l.Record(CoherenceEvent{PC: 3, Kind: cache.Store, State: cache.Invalid})
	l.SetEnabled(false)
	l.Record(CoherenceEvent{PC: 4, Kind: cache.Load, State: cache.Invalid}) // frozen
	got := l.Latest()
	if len(got) != 2 || got[0].PC != 3 || got[1].PC != 1 {
		t.Errorf("Latest = %v", got)
	}
}

func TestCounters(t *testing.T) {
	var c Counters
	c.Observe(cache.Load, cache.Invalid)
	c.Observe(cache.Load, cache.Invalid)
	c.Observe(cache.Store, cache.Modified)
	if c.Count(cache.Load, cache.Invalid) != 2 {
		t.Errorf("load-I count = %d", c.Count(cache.Load, cache.Invalid))
	}
	if c.Total(cache.Load) != 2 || c.Total(cache.Store) != 1 {
		t.Errorf("totals = %d/%d", c.Total(cache.Load), c.Total(cache.Store))
	}
}

func TestStateUmaskMatchesTable2(t *testing.T) {
	want := map[cache.State]uint8{
		cache.Invalid:   0x01,
		cache.Shared:    0x02,
		cache.Exclusive: 0x04,
		cache.Modified:  0x08,
	}
	for st, m := range want {
		if StateUmask(st) != m {
			t.Errorf("StateUmask(%v) = %#x, want %#x", st, StateUmask(st), m)
		}
	}
}

// Property: an LBR of capacity k holds exactly the last k matching records
// in reverse push order, regardless of interleaved filtered records.
func TestLBRQuick(t *testing.T) {
	f := func(classes []uint8) bool {
		l := NewLBR(8)
		if err := l.WriteMSR(MSRLBRSelect, PaperLBRSelect); err != nil {
			return false
		}
		if err := l.WriteMSR(MSRDebugCtl, DebugCtlEnableLBR); err != nil {
			return false
		}
		var kept []int
		for i, c := range classes {
			class := isa.BranchClass(c%6) + 1 // BranchCond..BranchReturn
			l.Record(BranchRecord{From: i, To: i + 1000, Class: class})
			if class == isa.BranchCond || class == isa.BranchUncondRel {
				kept = append(kept, i)
			}
		}
		got := l.Latest()
		wantLen := len(kept)
		if wantLen > 8 {
			wantLen = 8
		}
		if len(got) != wantLen {
			return false
		}
		for i := 0; i < wantLen; i++ {
			if got[i].From != kept[len(kept)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
