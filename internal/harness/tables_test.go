package harness

import (
	"strconv"
	"strings"
	"testing"

	"stmdiag/internal/apps"
)

func TestTable1RendersFilterSemantics(t *testing.T) {
	out := Table1()
	for _, want := range []string{
		"0x1d9", "0x1c8", "0x801",
		"filter ring-0 branches",
		"suppresses: ring-0 conditional",
		"filter near relative jumps",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
	// The paper's configuration must keep conditionals and relative jumps.
	if strings.Contains(out, "* 0x004") {
		t.Error("conditional-branch filter wrongly marked as used")
	}
}

func TestTable2CountsEveryState(t *testing.T) {
	out := Table2()
	for _, want := range []string{
		"code 0x40 umask 0x01 (observe I before load): 2",
		"code 0x40 umask 0x04 (observe E before load): 1",
		"code 0x41 umask 0x02 (observe S before store): 1",
		"code 0x41 umask 0x08 (observe M before store): 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3FPETaxonomy(t *testing.T) {
	out, err := Table3(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"A.V. (RWR)", "A.V. (RWW)", "A.V. (WWR)", "A.V. (WRW)",
		"O.V. (read-too-early)", "O.V. (read-too-late)",
		"E load at fft.c:20 (3/3 runs)",
		"I load at jsapi.c:14 (3/3 runs)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 missing %q:\n%s", want, out)
		}
	}
	// MySQL1's WRW row must show no FPE in the failure thread; the RWW
	// micro-benchmark must show one (the bank-balance example's invalid
	// write).
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "MySQL1") && !strings.HasSuffix(strings.TrimSpace(line), "no") {
			t.Errorf("MySQL1 row should say no: %q", line)
		}
		if strings.HasPrefix(line, "micro-RWW") {
			if !strings.Contains(line, "I store at bank.c:14") || !strings.HasSuffix(strings.TrimSpace(line), "yes") {
				t.Errorf("micro-RWW row wrong: %q", line)
			}
		}
	}
}

func TestTable4ListsAllBenchmarks(t *testing.T) {
	out := Table4()
	for _, a := range apps.All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("Table4 missing %s", a.Name)
		}
	}
}

func TestTable5RatiosInBand(t *testing.T) {
	out := Table5()
	if !strings.Contains(out, "synth-0") {
		t.Errorf("Table5 missing synthetic programs:\n%s", out)
	}
	if !strings.Contains(out, "total logging sites analyzed") {
		t.Error("Table5 missing total")
	}
	// Every reported ratio must be within (0,1].
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 3 && strings.Contains(fields[1], ".") {
			if ratio, err := strconv.ParseFloat(fields[1], 64); err == nil {
				if ratio <= 0 || ratio > 1 {
					t.Errorf("ratio out of band: %q", line)
				}
			}
		}
	}
}

func TestRenderTableDispatch(t *testing.T) {
	if _, err := RenderTable(0, quickCfg); err == nil {
		t.Error("table 0 accepted")
	}
	if _, err := RenderTable(NumTables+1, quickCfg); err == nil {
		t.Errorf("table %d accepted", NumTables+1)
	}
	for _, n := range []int{1, 2, 4, 5} {
		out, err := RenderTable(n, quickCfg)
		if err != nil || out == "" {
			t.Errorf("RenderTable(%d) = %q, %v", n, out, err)
		}
	}
}

func TestDiagnosisLatencyGap(t *testing.T) {
	a := apps.ByName("sort")
	cfg := quickCfg
	lbra, cbi, err := DiagnosisLatency(a, 200, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sort: LBRA needs %d failure runs, CBI needs %d (cap 200)", lbra, cbi)
	if lbra <= 0 || lbra > 10 {
		t.Errorf("LBRA latency = %d runs, want <= 10", lbra)
	}
	// CBI either needs far more runs or fails within the cap — the paper's
	// tens-to-hundreds-of-times latency gap.
	if cbi > 0 && cbi < 5*lbra {
		t.Errorf("CBI latency %d not clearly above LBRA %d", cbi, lbra)
	}
}
