// Package harness orchestrates the paper's experiments over the benchmark
// suite: it builds the instrumented program variants, drives failure and
// success runs, applies LBRA/LCRA and the CBI baseline, measures run-time
// overheads by cycle accounting, and renders every table of the evaluation:
// the paper's Tables 1–7 plus this reproduction's fault-robustness Table 8
// and the generated-bug-corpus ranking bake-off Table 9.
package harness

import (
	"fmt"
	"runtime"

	"stmdiag/internal/apps"
	"stmdiag/internal/artifact"
	"stmdiag/internal/cbi"
	"stmdiag/internal/core"
	"stmdiag/internal/faultinj"
	"stmdiag/internal/isa"
	"stmdiag/internal/kernel"
	"stmdiag/internal/obs"
	"stmdiag/internal/vm"
)

// Config sizes the experiments. The defaults follow paper §7.2: 10 failure
// and 10 success runs for LBRA/LCRA, 1000+1000 runs for CBI at its default
// 1/100 sampling rate.
type Config struct {
	// FailRuns and SuccRuns are the LBRA/LCRA profile counts.
	FailRuns, SuccRuns int
	// CBIRuns is the per-class (failing and successful) CBI run count.
	CBIRuns int
	// CBIRate is CBI's sampling rate.
	CBIRate float64
	// OverheadRuns is how many runs each overhead figure averages.
	OverheadRuns int
	// MaxAttempts bounds run attempts per collected profile (concurrency
	// benchmarks fail probabilistically).
	MaxAttempts int
	// Jobs is the trial-execution worker count: trials (independent app
	// runs) fan out across up to Jobs goroutines. 0 selects
	// runtime.NumCPU(); 1 is the strictly sequential path. Results are
	// byte-identical for every value — see pool.go.
	Jobs int
	// Seed is the base every trial seed is derived from (TrialSeed).
	Seed int64
	// Faults is the fault-injection spec (-faults). The zero spec is off;
	// an enabled spec derives a deterministic faultinj.Plan per trial
	// attempt, so results stay byte-identical for every Jobs value.
	Faults faultinj.Spec
	// LBRSize and LCRSize override record depths (0 = paper defaults).
	LBRSize, LCRSize int
	// Obs is the optional telemetry sink. It flows into every VM run the
	// harness drives; each table row is tagged on the trace and each
	// row result carries its metrics delta.
	Obs *obs.Sink
	// Ranker selects the scoring arithmetic for LBRA/LCRA diagnosis rows
	// (-ranker). The zero value is the paper's CBI-style harmonic mean, so
	// the golden tables are unchanged by the field's existence.
	Ranker core.Ranker
	// CorpusPerCell is Table 9's generated-program count per
	// (bug class × propagation distance) cell (-corpus-n); 0 selects
	// DefaultCorpusPerCell.
	CorpusPerCell int
	// Executor routes portable trials (-executor); nil selects the
	// in-process executor. Results are byte-identical for every executor —
	// see wire.go.
	Executor Executor
	// Artifacts is the durable trial-result store (-resume); nil disables
	// persistence. With a store attached, portable trials committed by an
	// earlier (possibly killed) run are loaded back instead of re-executed,
	// and fresh results are persisted in commit order.
	Artifacts *artifact.Store
}

// DefaultConfig is the paper's experiment configuration.
var DefaultConfig = Config{
	FailRuns:     10,
	SuccRuns:     10,
	CBIRuns:      1000,
	CBIRate:      cbi.DefaultRate,
	OverheadRuns: 10,
	MaxAttempts:  400,
}

func (c Config) withDefaults() Config {
	d := DefaultConfig
	if c.FailRuns == 0 {
		c.FailRuns = d.FailRuns
	}
	if c.SuccRuns == 0 {
		c.SuccRuns = d.SuccRuns
	}
	if c.CBIRuns == 0 {
		c.CBIRuns = d.CBIRuns
	}
	if c.CBIRate == 0 {
		c.CBIRate = d.CBIRate
	}
	if c.OverheadRuns == 0 {
		c.OverheadRuns = d.OverheadRuns
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = d.MaxAttempts
	}
	if c.Jobs <= 0 {
		c.Jobs = runtime.NumCPU()
	}
	return c
}

// pool builds the trial-execution pool for one experiment entry point.
func (c Config) pool() *Pool {
	return NewPool(c.Jobs, c.Obs).WithFaults(c.Faults, c.Seed).
		WithRunID(RunID(c.Seed, "config")).
		WithExecutor(c.Executor).WithArtifacts(c.Artifacts)
}

// SeqResult is one sequential benchmark's Table 6 row.
type SeqResult struct {
	// App is the benchmark.
	App *apps.App
	// RankTog and RankNoTog are the LBR entry positions (1 = latest) of
	// the root-cause branch in the failure-run profile with and without
	// toggling; 0 means missed.
	RankTog, RankNoTog int
	// RelatedTog/RelatedNoTog mark ranks that refer to the related branch
	// because the root-cause branch itself was evicted (the * cases).
	RelatedTog, RelatedNoTog bool
	// LBRARank is the root-cause branch's position in LBRA's predictor
	// ranking; CBIRank is the same for CBI (0 = missed).
	LBRARank, CBIRank int
	// DistFailureSite and DistLBR are the patch distances of Table 6.
	DistFailureSite, DistLBR int
	// Overheads, as fractions (0.01 = 1%).
	OvLogTog, OvLogNoTog, OvReactive, OvProactive, OvCBI float64
	// Metrics is this row's telemetry delta, nil without a metrics sink.
	Metrics *obs.Snapshot
}

// runApp executes one instrumented run in the context of one trial
// attempt, wiring the trial's telemetry sink and fault plan into the VM.
// A nil trial runs outside the pool: no telemetry, no fault plan.
func runApp(inst *core.Instrumented, w apps.Workload, seed int64, cfg Config, tc *Trial) (*vm.Result, error) {
	opts := w.VMOptions(seed)
	opts.Driver = kernel.Driver{}
	opts.SegvIoctls = inst.SegvIoctls
	opts.LBRSize = cfg.LBRSize
	if tc != nil {
		opts.Obs = tc.Sink
		opts.Faults = tc.Faults
	}
	return vm.Run(inst.Prog, opts)
}

// branchRank returns the 1-based position of the first LBR record naming
// the branch, newest-first; 0 if absent.
func branchRank(p *isa.Program, prof vm.Profile, branch string) int {
	if branch == "" {
		return 0
	}
	for i, r := range prof.Branches {
		if r.From >= 0 && r.From < len(p.Instrs) {
			if id := p.Instrs[r.From].BranchID; id != isa.NoBranch && p.BranchName(id) == branch {
				return i + 1
			}
		}
	}
	return 0
}

// rankWithFallback resolves the root-cause rank, falling back to the
// related branch (the * cases of Table 6).
func rankWithFallback(a *apps.App, p *isa.Program, prof vm.Profile) (rank int, related bool) {
	if r := branchRank(p, prof, a.RootBranch); r > 0 {
		return r, false
	}
	if r := branchRank(p, prof, a.RelatedBranch); r > 0 {
		return r, true
	}
	return 0, false
}

// failureProfileOf runs the failure workload once and extracts the
// failure-run profile.
func failureProfileOf(a *apps.App, inst *core.Instrumented, seed int64, cfg Config, tc *Trial) (vm.Profile, error) {
	res, err := runApp(inst, a.Fail, seed, cfg, tc)
	if err != nil {
		return vm.Profile{}, err
	}
	if !a.Fail.FailedRun(res) {
		return vm.Profile{}, fmt.Errorf("harness: %s failure workload did not fail (seed %d)", a.Name, seed)
	}
	prof, ok := core.FailureRunProfile(res)
	if !ok {
		return vm.Profile{}, fmt.Errorf("harness: %s failure run produced no profile", a.Name)
	}
	return prof, nil
}

// origFailurePC maps a failure back to original-program coordinates for
// the reactive scheme: the faulting instruction for crash benchmarks, or
// the failing log-call site otherwise.
func origFailurePC(a *apps.App, inst *core.Instrumented, prof vm.Profile) (int, error) {
	if pc := a.FaultPC(); pc >= 0 {
		return pc, nil
	}
	// The profile site is the ioctl inserted right before the log call;
	// scan forward to the call, then invert the PC map.
	p := inst.Prog
	for pc := prof.Site; pc < len(p.Instrs) && pc < prof.Site+16; pc++ {
		if p.Instrs[pc].Op == isa.OpCall {
			for orig, now := range inst.PCMap {
				if now == pc {
					return orig, nil
				}
			}
		}
	}
	return 0, fmt.Errorf("harness: cannot locate original failure site for %s (profile site %d)", a.Name, prof.Site)
}

// successProfiles collects success-run profiles on the given build through
// the trial pool. The trials are portable ("succ-profile" kind, strict
// mode: a run error aborts the collection), so they execute identically on
// any executor and resume from the artifact store.
func successProfiles(a *apps.App, build core.Options, cfg Config, pool *Pool) ([]core.ProfiledRun, error) {
	inst, err := cachedBuild(a, build)
	if err != nil {
		return nil, err
	}
	stream := a.Name + "/succ"
	profs, _, err := CollectKind[vm.Profile](pool, cfg.MaxAttempts, cfg.SuccRuns, stream, "succ-profile",
		succProfileParams{App: a.Name, Build: build, Seed: cfg.Seed, LBRSize: cfg.LBRSize, Strict: true})
	if err != nil {
		return nil, err
	}
	if len(profs) < cfg.SuccRuns {
		return nil, fmt.Errorf("harness: %s: only %d/%d success profiles", a.Name, len(profs), cfg.SuccRuns)
	}
	out := make([]core.ProfiledRun, len(profs))
	for i, prof := range profs {
		out[i] = core.ProfiledRun{Prog: inst.Prog, Profile: prof}
	}
	return out, nil
}

// RunSequential reproduces one Table 6 row.
func RunSequential(a *apps.App, cfg Config) (*SeqResult, error) {
	cfg = cfg.withDefaults()
	pool := cfg.pool()
	res := &SeqResult{App: a}
	rowStart := beginRow(cfg, a.Name, "sequential")

	optsLogTog := core.Options{LBR: true, Toggling: true}
	optsLogNoTog := core.Options{LBR: true}
	logTog, err := cachedBuild(a, optsLogTog)
	if err != nil {
		return nil, err
	}
	logNoTog, err := cachedBuild(a, optsLogNoTog)
	if err != nil {
		return nil, err
	}

	// LBRA failure profiles from the deployed (toggling) build; the first
	// doubles as Table 6's LBRLOG toggling profile. The trials are portable
	// ("fail-profile" kind): a run that happened not to fail is rejected,
	// not fatal — concurrency benchmarks fail probabilistically.
	endCapture := beginPhase(cfg, a.Name, phaseCapture)
	failStream := a.Name + "/fail"
	failProfs, _, err := CollectKind[vm.Profile](pool, cfg.MaxAttempts, cfg.FailRuns, failStream, "fail-profile",
		failProfileParams{App: a.Name, Build: optsLogTog, Seed: cfg.Seed, LBRSize: cfg.LBRSize})
	if err != nil {
		return nil, err
	}
	if len(failProfs) < cfg.FailRuns {
		return nil, fmt.Errorf("harness: %s: only %d/%d failure profiles", a.Name, len(failProfs), cfg.FailRuns)
	}
	failProfiles := make([]core.ProfiledRun, len(failProfs))
	for i, prof := range failProfs {
		failProfiles[i] = core.ProfiledRun{Prog: logTog.Prog, Profile: prof}
	}
	profTog := failProfiles[0].Profile
	res.RankTog, res.RelatedTog = rankWithFallback(a, logTog.Prog, profTog)

	noTogStream := a.Name + "/fail-notog"
	profNoTog, noTogIdx, err := FirstKind[vm.Profile](pool, cfg.MaxAttempts, noTogStream, "fail-profile",
		failProfileParams{App: a.Name, Build: optsLogNoTog, Seed: cfg.Seed, LBRSize: cfg.LBRSize})
	if err != nil {
		return nil, err
	}
	if noTogIdx < 0 {
		return nil, fmt.Errorf("harness: %s: no non-toggling failure profile", a.Name)
	}
	res.RankNoTog, res.RelatedNoTog = rankWithFallback(a, logNoTog.Prog, profNoTog)

	siteLoc := isa.SourceLoc{}
	if profTog.Site >= 0 && profTog.Site < len(logTog.Prog.Instrs) {
		siteLoc = logTog.Prog.Instrs[profTog.Site].Loc
	}
	res.DistFailureSite = a.Patch.Distance(siteLoc)
	res.DistLBR = a.Patch.MinDistance(core.BranchLocs(logTog.Prog, profTog))

	failPC, err := origFailurePC(a, logTog, failProfiles[0].Profile)
	if err != nil {
		return nil, err
	}
	optsReactive := core.Options{LBR: true, Toggling: true,
		Scheme: core.SchemeReactive, FailurePCs: []int{failPC}}
	succProfiles, err := successProfiles(a, optsReactive, cfg, pool)
	if err != nil {
		return nil, err
	}
	endCapture()
	endRank := beginPhase(cfg, a.Name, phaseRank)
	report, err := core.DiagnoseWith(core.ModeLBR, cfg.Ranker, failProfiles, succProfiles)
	if err != nil {
		return nil, err
	}
	if d := pool.FirstDegraded(); d != nil {
		report.AttachFlight(d.Events)
	}
	res.LBRARank = report.RankOfBranchEdge(a.RootBranch, a.BuggyEdge)
	if res.LBRARank == 0 && a.RelatedBranch != "" {
		res.LBRARank = report.RankOfBranch(a.RelatedBranch)
	}
	endRank()

	// CBI baseline and the overhead columns re-execute the workloads: the
	// replay phase of the cost attribution.
	endReplay := beginPhase(cfg, a.Name, phaseReplay)
	res.CBIRank, err = runCBI(a, cfg, pool)
	if err != nil {
		return nil, err
	}

	// Overheads on the success workload.
	optsProactive := core.Options{LBR: true, Toggling: true, Scheme: core.SchemeProactive}
	base, err := meanCycles(a, nil, false, cfg, pool, a.Name+"/ov-base")
	if err != nil {
		return nil, err
	}
	for _, v := range []struct {
		build  core.Options
		stream string
		out    *float64
	}{
		{optsLogTog, a.Name + "/ov-log-tog", &res.OvLogTog},
		{optsLogNoTog, a.Name + "/ov-log-notog", &res.OvLogNoTog},
		{optsReactive, a.Name + "/ov-reactive", &res.OvReactive},
		{optsProactive, a.Name + "/ov-proactive", &res.OvProactive},
	} {
		build := v.build
		cycles, err := meanCycles(a, &build, false, cfg, pool, v.stream)
		if err != nil {
			return nil, err
		}
		*v.out = overhead(base, cycles)
	}
	cbiCycles, err := meanCycles(a, nil, true, cfg, pool, a.Name+"/ov-cbi")
	if err != nil {
		return nil, err
	}
	res.OvCBI = overhead(base, cbiCycles)
	endReplay()
	res.Metrics = endRow(cfg, rowStart)
	return res, nil
}

// runCBI collects sampled predicate observations over many runs and ranks.
// It returns -1 for benchmarks CBI does not support (the paper's CBI
// framework handles C programs only; Cppcheck and PBZIP are C++).
func runCBI(a *apps.App, cfg Config, pool *Pool) (int, error) {
	if a.Paper.CBIRank < 0 {
		return -1, nil
	}
	if a.RootBranch == "" {
		return 0, nil
	}
	collect := func(wantFail bool, n int, label string) ([]cbi.RunObs, error) {
		stream := a.Name + "/" + label
		out, _, err := CollectKind[cbi.RunObs](pool, n*4, n, stream, "cbi-run",
			cbiRunParams{App: a.Name, WantFail: wantFail, Rate: cfg.CBIRate, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		if len(out) < n {
			return nil, fmt.Errorf("harness: %s: only %d/%d CBI %v runs", a.Name, len(out), n, wantFail)
		}
		return out, nil
	}
	failRuns, err := collect(true, cfg.CBIRuns, "cbi-fail")
	if err != nil {
		return 0, err
	}
	succRuns, err := collect(false, cfg.CBIRuns, "cbi-succ")
	if err != nil {
		return 0, err
	}
	scores := cbi.Rank(append(failRuns, succRuns...))
	rank := cbi.RankOf(scores, func(pr cbi.Pred) bool {
		return pr.Branch == a.RootBranch && pr.Edge == a.BuggyEdge
	})
	if rank == 0 && a.RelatedBranch != "" {
		rank = cbi.RankOf(scores, func(pr cbi.Pred) bool { return pr.Branch == a.RelatedBranch })
	}
	return rank, nil
}

// meanCycles averages run cycles on the success workload through the
// portable "mean-cycles" kind: build == nil runs the plain program (the
// baseline, and — with cbiHook — the CBI column); otherwise the selected
// instrumented variant.
func meanCycles(a *apps.App, build *core.Options, cbiHook bool, cfg Config, pool *Pool, stream string) (float64, error) {
	cycles, err := MapKind[uint64](pool, cfg.OverheadRuns, stream, "mean-cycles",
		meanCyclesParams{App: a.Name, Build: build, CBIHook: cbiHook,
			Rate: cfg.CBIRate, Seed: cfg.Seed, LBRSize: cfg.LBRSize})
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, c := range cycles {
		total += c
	}
	return float64(total) / float64(cfg.OverheadRuns), nil
}

// overhead computes (v-base)/base, clamped at 0.
func overhead(base, v float64) float64 {
	if base <= 0 || v <= base {
		return 0
	}
	return (v - base) / base
}
