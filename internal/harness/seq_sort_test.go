package harness

import (
	"testing"

	"stmdiag/internal/apps"
)

// quickCfg keeps unit tests fast; the bench harness uses DefaultConfig.
var quickCfg = Config{
	FailRuns:     10,
	SuccRuns:     10,
	CBIRuns:      120,
	OverheadRuns: 3,
}

func TestSortRow(t *testing.T) {
	a := apps.ByName("sort")
	if a == nil {
		t.Fatal("sort not registered")
	}
	row, err := RunSequential(a, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sort row: %+v", row)
	if row.RankTog != a.Paper.LBRRankTog {
		t.Errorf("RankTog = %d, want %d", row.RankTog, a.Paper.LBRRankTog)
	}
	if row.RankNoTog != a.Paper.LBRRankNoTog {
		t.Errorf("RankNoTog = %d, want %d", row.RankNoTog, a.Paper.LBRRankNoTog)
	}
	if row.LBRARank < 1 || row.LBRARank > 2 {
		t.Errorf("LBRARank = %d, want 1..2", row.LBRARank)
	}
	if row.DistFailureSite != a.Paper.PatchDistFailure {
		t.Errorf("DistFailureSite = %d, want %d", row.DistFailureSite, a.Paper.PatchDistFailure)
	}
	if row.DistLBR != a.Paper.PatchDistLBR {
		t.Errorf("DistLBR = %d, want %d", row.DistLBR, a.Paper.PatchDistLBR)
	}
	if row.OvLogTog <= 0 || row.OvLogTog > 0.10 {
		t.Errorf("OvLogTog = %v, want small positive", row.OvLogTog)
	}
	if row.OvLogNoTog >= row.OvLogTog {
		t.Errorf("no-toggling overhead %v !< toggling %v", row.OvLogNoTog, row.OvLogTog)
	}
}
