package harness

import (
	"fmt"
	"sort"

	"stmdiag/internal/apps"
	"stmdiag/internal/cbi"
	"stmdiag/internal/cfg"
	"stmdiag/internal/isa"
	"stmdiag/internal/vm"
)

// AdaptiveResult summarizes one CBI-adaptive diagnosis (the iterative
// variant discussed in paper §8): instead of sampling every predicate from
// the start, instrumentation begins near the failure site and expands
// backward through the CFG between iterations until a failure predictor
// emerges.
type AdaptiveResult struct {
	// App is the benchmark.
	App *apps.App
	// Found reports whether the root-cause predicate was identified.
	Found bool
	// Iterations is how many instrument-run-analyze rounds ran.
	Iterations int
	// RunsUsed counts all runs across iterations.
	RunsUsed int
	// EvaluatedFraction is the share of the program's branch predicates
	// that ended up instrumented (the paper quotes ~40% for
	// CBI-adaptive without control-flow knowledge).
	EvaluatedFraction float64
}

// branchLayers orders the program's source branches by backward CFG
// distance (in branch hops) from the failure location, the expansion order
// the adaptive strategy uses.
func branchLayers(p *isa.Program, failPC int) [][]string {
	g := cfg.Build(p)
	dist := map[int]int{failPC: 0}
	frontier := []int{failPC}
	for len(frontier) > 0 {
		var next []int
		for _, pc := range frontier {
			for _, pr := range g.PredsOf(pc) {
				if _, seen := dist[pr]; seen {
					continue
				}
				d := dist[pc]
				if p.Instrs[pr].Op.IsCond() {
					d++
				}
				dist[pr] = d
				next = append(next, pr)
			}
		}
		frontier = next
	}
	layerOf := map[string]int{}
	for pc, d := range dist {
		in := &p.Instrs[pc]
		if !in.Op.IsCond() || in.BranchID == isa.NoBranch {
			continue
		}
		name := p.BranchName(in.BranchID)
		if cur, ok := layerOf[name]; !ok || d < cur {
			layerOf[name] = d
		}
	}
	maxLayer := 0
	for _, d := range layerOf {
		if d > maxLayer {
			maxLayer = d
		}
	}
	layers := make([][]string, maxLayer+2)
	for name, d := range layerOf {
		layers[d] = append(layers[d], name)
	}
	// Branches unreachable backward from the failure site go last.
	for _, b := range p.Branches {
		if _, ok := layerOf[b.Name]; !ok {
			layers[maxLayer+1] = append(layers[maxLayer+1], b.Name)
		}
	}
	for _, l := range layers {
		sort.Strings(l)
	}
	return layers
}

// RunAdaptive drives the CBI-adaptive loop on a sequential benchmark:
// each iteration instruments the branches discovered so far (at full
// per-site cost but the given sampling rate), collects runsPerIter failing
// and succeeding runs, and stops when the root-cause predicate carries
// positive Increase — or when every layer is instrumented and maxIters is
// exhausted.
func RunAdaptive(a *apps.App, rate float64, runsPerIter, maxIters int, conf Config) (*AdaptiveResult, error) {
	conf = conf.withDefaults()
	pool := conf.pool()
	p := a.Program()
	failPC := a.FaultPC()
	if failPC < 0 {
		sites := cfg.LogSites(p)
		if len(sites) == 0 {
			return nil, fmt.Errorf("harness: %s has no failure location for adaptive CBI", a.Name)
		}
		failPC = sites[len(sites)-1]
	}
	layers := branchLayers(p, failPC)
	active := map[string]bool{}
	res := &AdaptiveResult{App: a}
	var runs []cbi.RunObs
	nextLayer := 0

	// collect fans one iteration's runs of one class out through the pool.
	// active is only mutated between iterations, so trials may read it
	// concurrently. A shortfall is tolerated: the ranking just sees fewer
	// observations, as in the paper's budgeted setting.
	collect := func(w apps.Workload, wantFail bool, label string) ([]cbi.RunObs, error) {
		stream := a.Name + "/" + label
		out, _, err := Collect(pool, runsPerIter*6, runsPerIter, stream,
			func(tc *Trial) (cbi.RunObs, bool, error) {
				seed := TrialSeed(conf.Seed, stream, tc.Index)
				opts := w.VMOptions(seed)
				opts.Obs = tc.Sink
				opts.Faults = tc.Faults
				m, err := vm.New(p, opts)
				if err != nil {
					return cbi.RunObs{}, false, err
				}
				o := cbi.NewObserver(rate, seed+4242)
				o.Restrict(active)
				o.Attach(m)
				r, err := m.Run()
				if err != nil {
					return cbi.RunObs{}, false, err
				}
				if w.FailedRun(r) != wantFail {
					return cbi.RunObs{}, false, nil
				}
				return o.Finish(wantFail), true, nil
			})
		return out, err
	}

	for res.Iterations < maxIters {
		res.Iterations++
		// Expand by one layer per iteration (all layers consumed -> keep
		// sampling with the full set).
		if nextLayer < len(layers) {
			for _, name := range layers[nextLayer] {
				active[name] = true
			}
			nextLayer++
		}
		failObs, err := collect(a.Fail, true, fmt.Sprintf("adaptive-fail-iter%d", res.Iterations))
		if err != nil {
			return nil, err
		}
		succObs, err := collect(a.Succeed, false, fmt.Sprintf("adaptive-succ-iter%d", res.Iterations))
		if err != nil {
			return nil, err
		}
		runs = append(runs, failObs...)
		runs = append(runs, succObs...)
		res.RunsUsed += 2 * runsPerIter
		scores := cbi.Rank(runs)
		rank := cbi.RankOf(scores, func(pr cbi.Pred) bool {
			return pr.Branch == a.RootBranch || (a.RelatedBranch != "" && pr.Branch == a.RelatedBranch)
		})
		if rank >= 1 && rank <= 3 {
			res.Found = true
			break
		}
	}
	if len(p.Branches) > 0 {
		res.EvaluatedFraction = float64(len(active)) / float64(len(p.Branches))
	}
	return res, nil
}
