package harness

import (
	"testing"

	"stmdiag/internal/apps"
)

// TestBTSVersusLBR verifies the paper's §2.1 contrast on the five
// benchmarks that lose their root cause without toggling: the
// whole-execution BTS always holds the root cause, but its recording
// overhead is an order of magnitude above LBRLOG's.
func TestBTSVersusLBR(t *testing.T) {
	for _, name := range []string{"cp", "ln", "PBZIP1", "tar2", "sort"} {
		a := apps.ByName(name)
		res, err := RunBTS(a, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Logf("%s: root-in-trace=%v records=%d overhead=%.1f%%",
			name, res.RootInTrace, res.TraceRecords, 100*res.Overhead)
		if !res.RootInTrace {
			t.Errorf("%s: BTS lost the root cause (it never should)", name)
		}
		if res.TraceRecords <= 16 {
			t.Errorf("%s: trace of %d records is no bigger than an LBR", name, res.TraceRecords)
		}
		if res.Overhead < 0.10 {
			t.Errorf("%s: BTS overhead %.3f implausibly low", name, res.Overhead)
		}
	}
}
