package harness

import (
	"testing"

	"stmdiag/internal/apps"
	"stmdiag/internal/source"
)

// TestSequentialRows checks every registered sequential benchmark against
// its engineered Table 6 expectations: the LBRLOG entry ranks with and
// without toggling, the * (related-branch) flag, the LBRA predictor rank,
// patch distances, and the overhead ordering.
func TestSequentialRows(t *testing.T) {
	for _, a := range apps.Sequential() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			cfg := quickCfg
			cfg.CBIRuns = 0 // CBI is asserted separately; it needs 1000 runs
			cfg.CBIRuns = 60
			row, err := RunSequential(a, cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %+v", a.Name, row)
			if row.RankTog != a.Paper.LBRRankTog {
				t.Errorf("RankTog = %d, want %d", row.RankTog, a.Paper.LBRRankTog)
			}
			if row.RankNoTog != a.Paper.LBRRankNoTog {
				t.Errorf("RankNoTog = %d, want %d", row.RankNoTog, a.Paper.LBRRankNoTog)
			}
			if row.RelatedTog != a.Paper.Related {
				t.Errorf("RelatedTog = %v, want %v", row.RelatedTog, a.Paper.Related)
			}
			if a.Diagnosable && (row.LBRARank < 1 || row.LBRARank > 2) {
				t.Errorf("LBRARank = %d, want 1..2", row.LBRARank)
			}
			if row.DistFailureSite != a.Paper.PatchDistFailure {
				t.Errorf("DistFailureSite = %s, want %s",
					source.FormatDistance(row.DistFailureSite), source.FormatDistance(a.Paper.PatchDistFailure))
			}
			if row.DistLBR != a.Paper.PatchDistLBR {
				t.Errorf("DistLBR = %s, want %s",
					source.FormatDistance(row.DistLBR), source.FormatDistance(a.Paper.PatchDistLBR))
			}
			// Overhead shape (paper §7.1.3, §7.2): log-enhancement stays in
			// the low single-digit percents, toggling costs more than not
			// toggling, and CBI costs several times more than LBRLOG.
			if row.OvLogTog <= 0 || row.OvLogTog > 0.06 {
				t.Errorf("OvLogTog = %.4f, want (0, 0.06]", row.OvLogTog)
			}
			if row.OvLogNoTog >= row.OvLogTog {
				t.Errorf("OvLogNoTog %.4f !< OvLogTog %.4f", row.OvLogNoTog, row.OvLogTog)
			}
			if row.OvLogNoTog > 0.01 {
				t.Errorf("OvLogNoTog = %.4f, want <= 0.01", row.OvLogNoTog)
			}
			if row.OvProactive < row.OvLogTog {
				t.Errorf("OvProactive %.4f < OvLogTog %.4f", row.OvProactive, row.OvLogTog)
			}
			if row.OvCBI < 2*row.OvLogTog {
				t.Errorf("OvCBI %.4f not clearly above LBRLOG %.4f", row.OvCBI, row.OvLogTog)
			}
		})
	}
}
