package harness

import (
	"testing"

	"stmdiag/internal/apps"
)

// TestConcurrentRows checks every concurrency benchmark against its
// engineered Table 7 expectations: the LCRLOG entry ranks under the two
// configurations and LCRA's verdict.
func TestConcurrentRows(t *testing.T) {
	for _, a := range apps.Concurrent() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			row, err := RunConcurrent(a, quickCfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: conf1=%d conf2=%d lcra=%d failrate=%.2f",
				a.Name, row.RankConf1, row.RankConf2, row.LCRARank, row.FailRate)
			if row.RankConf1 != a.Paper.LCRConf1 {
				t.Errorf("RankConf1 = %d, want %d", row.RankConf1, a.Paper.LCRConf1)
			}
			if row.RankConf2 != a.Paper.LCRConf2 {
				t.Errorf("RankConf2 = %d, want %d", row.RankConf2, a.Paper.LCRConf2)
			}
			if a.Diagnosable {
				if row.LCRARank != 1 {
					t.Errorf("LCRARank = %d, want 1", row.LCRARank)
				}
			} else if row.LCRARank != 0 {
				t.Errorf("LCRARank = %d, want 0 (undiagnosed)", row.LCRARank)
			}
			if row.FailRate <= 0.02 || row.FailRate >= 0.98 {
				t.Errorf("FailRate = %.3f; the interleaving must make both outcomes reachable", row.FailRate)
			}
		})
	}
}
