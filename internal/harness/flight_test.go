package harness

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"stmdiag/internal/faultinj"
	"stmdiag/internal/obs"
)

// TestFlightJobsInvariance: the pipeline flight-recorder ring is filled at
// commit time in trial order, so its contents — and the first degraded
// trial's attached tail — must be identical for every -jobs value (ISSUE 5
// satellite f). A high panic rate with a single retry guarantees some
// trials panic twice in a row and degrade.
func TestFlightJobsInvariance(t *testing.T) {
	spec, err := faultinj.ParseSpec("panic=0.6,retries=1,seed=99")
	if err != nil {
		t.Fatal(err)
	}
	var wantRing, wantTail []obs.FlightEvent
	for _, jobs := range testPoolJobs() {
		sink := &obs.Sink{
			Metrics: obs.NewRegistry(),
			Flight:  obs.NewFlightRecorder(obs.DefaultFlightCap),
		}
		p := NewPool(jobs, sink).WithFaults(spec, 7)
		if _, _, err := Collect(p, 40, 40, "flighttest", func(tc *Trial) (int, bool, error) {
			return tc.Index, true, nil
		}); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		ring := sink.Flight.Snapshot()
		deg := p.FirstDegraded()
		if deg == nil {
			t.Fatalf("jobs=%d: no degraded trial despite retries=0 at rate 0.3", jobs)
		}
		if len(deg.Events) == 0 {
			t.Fatalf("jobs=%d: degraded trial carries no flight events", jobs)
		}
		if wantRing == nil {
			wantRing, wantTail = ring, deg.Events
			kinds := map[string]bool{}
			for _, ev := range ring {
				kinds[ev.Kind] = true
			}
			for _, k := range []string{obs.FlightTrialStart, obs.FlightTrialCommit, obs.FlightFault, obs.FlightTrialDegraded} {
				if !kinds[k] {
					t.Errorf("pipeline ring has no %q event: %v", k, kinds)
				}
			}
			continue
		}
		if !reflect.DeepEqual(ring, wantRing) {
			t.Errorf("jobs=%d: pipeline flight ring diverged from jobs=%d\n got %d events, want %d",
				jobs, testPoolJobs()[0], len(ring), len(wantRing))
		}
		if !reflect.DeepEqual(deg.Events, wantTail) {
			t.Errorf("jobs=%d: degraded-trial flight tail diverged:\n got: %v\nwant: %v",
				jobs, deg.Events, wantTail)
		}
	}
}

// TestFlightTrialErrorTail: a degraded Map trial surfaces as a *TrialError
// whose Events hold the per-trial ring read at the moment of degradation —
// the software mirror of reading the LBR inside the segfault handler.
func TestFlightTrialErrorTail(t *testing.T) {
	var want []obs.FlightEvent
	for _, jobs := range testPoolJobs() {
		sink := &obs.Sink{
			Metrics: obs.NewRegistry(),
			Flight:  obs.NewFlightRecorder(obs.DefaultFlightCap),
		}
		p := NewPool(jobs, sink)
		_, err := Map(p, 6, "tailtest", func(tc *Trial) (int, error) {
			if tc.Index == 3 {
				panic("boom")
			}
			return tc.Index, nil
		})
		var te *TrialError
		if !errors.As(err, &te) {
			t.Fatalf("jobs=%d: Map error = %v, want *TrialError", jobs, err)
		}
		if len(te.Events) == 0 {
			t.Fatalf("jobs=%d: TrialError.Events empty", jobs)
		}
		for _, ev := range te.Events {
			if ev.Trial != 3 {
				t.Errorf("jobs=%d: foreign trial %d in tail: %+v", jobs, ev.Trial, ev)
			}
		}
		if !strings.Contains(te.Error(), "flight recorder") {
			t.Errorf("jobs=%d: Error() does not mention the flight tail: %q", jobs, te.Error())
		}
		if tail := te.FlightTail(); !strings.Contains(tail, "trial 3") {
			t.Errorf("jobs=%d: FlightTail missing trial 3:\n%s", jobs, tail)
		}
		if want == nil {
			want = te.Events
			last := te.Events[len(te.Events)-1]
			if last.Kind != obs.FlightTrialDegraded {
				t.Errorf("tail does not end in degradation: %+v", last)
			}
		} else if !reflect.DeepEqual(te.Events, want) {
			t.Errorf("jobs=%d: TrialError tail diverged:\n got: %v\nwant: %v", jobs, te.Events, want)
		}
	}
	if p := NewPool(2, nil); p != nil {
		// Recorder-less pools must keep Events empty rather than panic.
		_, err := Map(p, 2, "norec", func(tc *Trial) (int, error) { panic("x") })
		var te *TrialError
		if !errors.As(err, &te) || len(te.Events) != 0 {
			t.Errorf("nil-sink pool: err=%v events=%v, want empty tail", err, te.Events)
		}
	}
}
