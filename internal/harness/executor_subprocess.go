package harness

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"

	"stmdiag/internal/obs"
)

// SubprocExecutor runs portable trials in a fleet of worker subprocesses —
// the multi-process executor of the durable-trial pipeline. Process
// isolation means a trial that takes its worker down (a real segfault, an
// OOM kill, a hung loop) costs one worker, not the coordinating run: the
// executor kills and respawns the worker and retries the trial with capped
// exponential backoff, and only a trial that keeps killing workers is
// surfaced as an execution failure (which the pool degrades onto the
// insufficient-evidence path).
//
// Protocol: JSON lines over stdin/stdout, strictly one request then one
// response per worker at a time. There are no message IDs — any protocol
// error (bad JSON, EOF, timeout) is grounds for killing the worker, so a
// stream can never desynchronize. Trial results are byte-identical to the
// in-process executor's by construction: both funnel through executeWire.
type SubprocExecutor struct {
	opts SubprocOptions

	mu      sync.Mutex
	idle    []*subprocWorker
	closed  bool
	spawned int // total workers ever spawned; the next worker's ordinal

	spawns, respawns, timeouts, retries, failures, trials *obs.Counter
	// live tracks currently running worker processes; /healthz reads it to
	// tell a healthy pool from one whose workers keep dying.
	live *obs.Gauge
}

// WorkerStderrTail is how much of a worker's most recent stderr the
// executor retains — the crash-debugging analogue of the paper's bounded
// short-term records: small, always-on, read only after the failure.
const WorkerStderrTail = 2 << 10

// SubprocOptions configures the subprocess executor.
type SubprocOptions struct {
	// Bin is the worker binary; "" uses the current executable (every
	// harness binary doubles as a worker via cliobs.MaybeTrialWorker).
	Bin string
	// Args are extra arguments passed to the worker binary.
	Args []string
	// Workers caps concurrently live worker processes; <= 0 means no cap
	// beyond the pool's own parallelism (one worker per concurrent trial).
	Workers int
	// Timeout bounds one trial round trip; 0 means DefaultTrialTimeout.
	Timeout time.Duration
	// Retries is how many times a failed round trip (worker crash,
	// timeout, protocol error) is retried on a fresh worker before the
	// trial is reported failed; 0 means DefaultSubprocRetries.
	Retries int
	// Backoff is the initial delay between retries, doubling per attempt
	// and capped at BackoffCap; 0 means DefaultSubprocBackoff.
	Backoff time.Duration
	// BackoffCap caps the doubled backoff; 0 means DefaultSubprocBackoffCap.
	BackoffCap time.Duration
	// Env is extra environment for workers (beyond the inherited one and
	// the WorkerEnv marker).
	Env []string
	// Sink receives executor counters ("harness.executor.*"); may be nil.
	Sink *obs.Sink
}

// Subprocess executor defaults.
const (
	DefaultTrialTimeout      = 2 * time.Minute
	DefaultSubprocRetries    = 2
	DefaultSubprocBackoff    = 50 * time.Millisecond
	DefaultSubprocBackoffCap = 2 * time.Second
)

// NewSubprocExecutor builds the executor; workers spawn lazily, one per
// concurrent Run call (bounded by the pool's worker count and Workers).
func NewSubprocExecutor(opts SubprocOptions) (*SubprocExecutor, error) {
	if opts.Bin == "" {
		bin, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("harness: locate worker binary: %w", err)
		}
		opts.Bin = bin
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTrialTimeout
	}
	if opts.Retries <= 0 {
		opts.Retries = DefaultSubprocRetries
	}
	if opts.Backoff <= 0 {
		opts.Backoff = DefaultSubprocBackoff
	}
	if opts.BackoffCap <= 0 {
		opts.BackoffCap = DefaultSubprocBackoffCap
	}
	e := &SubprocExecutor{opts: opts}
	s := opts.Sink
	e.spawns = s.Counter("harness.executor.spawns")
	e.respawns = s.Counter("harness.executor.respawns")
	e.timeouts = s.Counter("harness.executor.timeouts")
	e.retries = s.Counter("harness.executor.retries")
	e.failures = s.Counter("harness.executor.failures")
	e.trials = s.Counter("harness.executor.trials")
	e.live = s.Gauge("harness.executor.workers.live")
	return e, nil
}

// tailWriter retains the last max bytes written through it (and tees every
// write to out, preserving the worker's live stderr passthrough).
type tailWriter struct {
	out io.Writer
	mu  sync.Mutex
	buf []byte
	max int
}

func (t *tailWriter) Write(p []byte) (int, error) {
	if t.out != nil {
		_, _ = t.out.Write(p)
	}
	t.mu.Lock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > t.max {
		t.buf = t.buf[len(t.buf)-t.max:]
	}
	t.mu.Unlock()
	return len(p), nil
}

// Tail returns the retained window.
func (t *tailWriter) Tail() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.buf)
}

// subprocWorker is one live worker process and its pipes.
type subprocWorker struct {
	id     int // spawn ordinal; labels per-worker counters and trace lanes
	cmd    *exec.Cmd
	in     io.WriteCloser
	out    *bufio.Reader
	enc    *json.Encoder
	stderr *tailWriter
	dead   sync.Once
	live   *obs.Gauge
}

// spawn starts one worker process, stamping its ordinal into the
// environment so the worker's telemetry context knows which lane it is.
func (e *SubprocExecutor) spawn() (*subprocWorker, error) {
	e.mu.Lock()
	id := e.spawned
	e.spawned++
	e.mu.Unlock()
	cmd := exec.Command(e.opts.Bin, e.opts.Args...)
	cmd.Env = append(append(os.Environ(),
		WorkerEnv+"=1",
		fmt.Sprintf("%s=%d", WorkerIDEnv, id)), e.opts.Env...)
	stderr := &tailWriter{out: os.Stderr, max: WorkerStderrTail}
	cmd.Stderr = stderr
	in, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		in.Close()
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		in.Close()
		return nil, fmt.Errorf("harness: start worker %s: %w", e.opts.Bin, err)
	}
	e.spawns.Inc()
	e.live.Add(1)
	return &subprocWorker{
		id: id, cmd: cmd, in: in,
		out: bufio.NewReader(outPipe), enc: json.NewEncoder(in),
		stderr: stderr, live: e.live,
	}, nil
}

// kill terminates a worker and reaps it; idempotent.
func (w *subprocWorker) kill() {
	w.dead.Do(func() {
		w.in.Close()
		if w.cmd.Process != nil {
			_ = w.cmd.Process.Kill()
		}
		_ = w.cmd.Wait()
		w.live.Add(-1)
	})
}

// checkout hands the caller an idle worker, spawning when none is free.
func (e *SubprocExecutor) checkout() (*subprocWorker, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, errors.New("harness: executor is closed")
	}
	if n := len(e.idle); n > 0 {
		w := e.idle[n-1]
		e.idle = e.idle[:n-1]
		e.mu.Unlock()
		return w, nil
	}
	e.mu.Unlock()
	return e.spawn()
}

// checkin returns a healthy worker to the freelist (or kills it if the
// executor closed, or the freelist is already at the worker cap).
func (e *SubprocExecutor) checkin(w *subprocWorker) {
	e.mu.Lock()
	if !e.closed && (e.opts.Workers <= 0 || len(e.idle) < e.opts.Workers) {
		e.idle = append(e.idle, w)
		e.mu.Unlock()
		return
	}
	e.mu.Unlock()
	w.kill()
}

// roundTrip sends one request to w and reads its response, bounded by the
// per-trial timeout. On any failure the worker is killed (the response
// stream cannot be trusted after an error) and the error returned.
func (e *SubprocExecutor) roundTrip(w *subprocWorker, req *TrialRequest) (*TrialResponse, error) {
	type result struct {
		resp *TrialResponse
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		if err := w.enc.Encode(req); err != nil {
			ch <- result{nil, fmt.Errorf("send trial: %w", err)}
			return
		}
		line, err := w.out.ReadBytes('\n')
		if err != nil {
			ch <- result{nil, fmt.Errorf("read response: %w", err)}
			return
		}
		var resp TrialResponse
		if err := json.Unmarshal(line, &resp); err != nil {
			ch <- result{nil, fmt.Errorf("decode response: %w", err)}
			return
		}
		ch <- result{&resp, nil}
	}()
	timer := time.NewTimer(e.opts.Timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		if r.err != nil {
			w.kill()
			return nil, r.err
		}
		return r.resp, nil
	case <-timer.C:
		e.timeouts.Inc()
		// Killing the worker unblocks the reader goroutine via pipe EOF.
		w.kill()
		return nil, fmt.Errorf("trial %q/%d timed out after %v", req.Stream, req.Index, e.opts.Timeout)
	}
}

// ExecutorError is a trial the execution infrastructure could not complete:
// every worker attempt crashed, hung or broke protocol. It carries the
// last crashed worker's stderr tail and the crash flight events, so the
// TrialError the pool degrades it into is debuggable instead of silent.
type ExecutorError struct {
	Stream     string
	Trial      int
	Attempts   int
	StderrTail string
	Events     []obs.FlightEvent
	Err        error // last underlying round-trip error
}

func (e *ExecutorError) Error() string {
	msg := fmt.Sprintf("harness: trial %q/%d failed after %d worker attempts: %v",
		e.Stream, e.Trial, e.Attempts, e.Err)
	if e.StderrTail != "" {
		msg += fmt.Sprintf("\nworker stderr tail (%d bytes):\n%s", len(e.StderrTail), e.StderrTail)
	}
	return msg
}

func (e *ExecutorError) Unwrap() error { return e.Err }

// noteCrash records one worker death: a flight event on the executor's
// sink (kind executor-crash, stderr tail in the detail) that /healthz and
// the flight-recorder endpoint surface as the last-crash reason. Crash
// events exist only when infrastructure actually fails, so they are exempt
// from the ring's cross-jobs identity rule.
func (e *SubprocExecutor) noteCrash(w *subprocWorker, req *TrialRequest, attempt int, err error) obs.FlightEvent {
	detail := fmt.Sprintf("worker %d: %v", w.id, err)
	if tail := w.stderr.Tail(); tail != "" {
		detail += "; stderr: " + tail
	}
	ev := obs.FlightEvent{
		Cycle: e.opts.Sink.Cycles(), Trial: req.Index, Attempt: attempt,
		Kind: obs.FlightExecutorCrash, Detail: detail,
	}
	e.opts.Sink.RecordFlight(ev)
	return ev
}

// Run executes one trial on a worker, retrying on a fresh worker with
// capped exponential backoff when the worker crashes, hangs or breaks
// protocol. Trial-level failures (rejects, degradations) are not executor
// failures — they ride inside the TrialResponse. An infrastructure failure
// comes back as an *ExecutorError carrying the last worker's stderr tail.
func (e *SubprocExecutor) Run(req *TrialRequest) (*TrialResponse, error) {
	e.trials.Inc()
	var (
		lastErr  error
		lastTail string
		crashes  []obs.FlightEvent
	)
	backoff := e.opts.Backoff
	for attempt := 0; attempt <= e.opts.Retries; attempt++ {
		if attempt > 0 {
			e.retries.Inc()
			e.respawns.Inc()
			time.Sleep(backoff)
			backoff *= 2
			if backoff > e.opts.BackoffCap {
				backoff = e.opts.BackoffCap
			}
		}
		w, err := e.checkout()
		if err != nil {
			lastErr = err
			continue
		}
		e.opts.Sink.Counter(fmt.Sprintf("harness.executor.worker%d.trials", w.id)).Inc()
		resp, err := e.roundTrip(w, req)
		if err != nil {
			lastErr = err
			lastTail = w.stderr.Tail()
			crashes = append(crashes, e.noteCrash(w, req, attempt, err))
			continue
		}
		e.checkin(w)
		return resp, nil
	}
	e.failures.Inc()
	return nil, &ExecutorError{
		Stream: req.Stream, Trial: req.Index, Attempts: e.opts.Retries + 1,
		StderrTail: lastTail, Events: crashes, Err: lastErr,
	}
}

// Close kills every idle worker. Workers checked out by in-flight Run
// calls are killed or reaped by their own round trips.
func (e *SubprocExecutor) Close() error {
	e.mu.Lock()
	workers := e.idle
	e.idle = nil
	e.closed = true
	e.mu.Unlock()
	for _, w := range workers {
		w.kill()
	}
	return nil
}

var _ Executor = (*SubprocExecutor)(nil)
