package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"stmdiag/internal/obs"
)

// federatedRun drives one MapKind sweep with full telemetry armed and
// returns the three federated artifacts the tentpole promises are
// jobs- and executor-invariant: the deterministic metrics snapshot, the
// merged Chrome trace bytes, and the flight-ring dump.
func federatedRun(t *testing.T, jobs int, subprocess bool) (metrics, trace []byte, flight string) {
	t.Helper()
	sink := &obs.Sink{
		Metrics: obs.NewRegistry(),
		Trace:   obs.NewTracer(),
		Flight:  obs.NewFlightRecorder(obs.DefaultFlightCap),
	}
	p := NewPool(jobs, sink).WithRunID(RunID(7, "federation-test"))
	if subprocess {
		e, err := NewSubprocExecutor(SubprocOptions{Sink: sink})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		p = p.WithExecutor(e)
	}
	if _, err := MapKind[uint64](p, 6, "fed/ov", "mean-cycles", ovParams()); err != nil {
		t.Fatal(err)
	}
	det, err := sink.Metrics.Snapshot().Deterministic().JSON()
	if err != nil {
		t.Fatal(err)
	}
	tj, err := sink.Trace.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var fb strings.Builder
	for _, ev := range sink.Flight.Snapshot() {
		fb.WriteString(ev.String())
		fb.WriteByte('\n')
	}
	return det, tj, fb.String()
}

// TestFederatedTelemetryJobsInvariance is the tentpole acceptance: the
// coordinator's merged telemetry — deterministic metric families, trace
// bytes, flight ring — is byte-identical for every -jobs value and for
// in-process vs subprocess execution, because worker deltas fold in at
// commit time in trial order.
func TestFederatedTelemetryJobsInvariance(t *testing.T) {
	var wantMetrics, wantTrace []byte
	var wantFlight, ref string
	for _, subprocess := range []bool{false, true} {
		for _, jobs := range []int{1, 2, 4, 9} {
			name := fmt.Sprintf("executor=%v jobs=%d", map[bool]string{false: "inproc", true: "subprocess"}[subprocess], jobs)
			metrics, trace, flight := federatedRun(t, jobs, subprocess)
			if wantMetrics == nil {
				wantMetrics, wantTrace, wantFlight, ref = metrics, trace, flight, name
				continue
			}
			if !bytes.Equal(metrics, wantMetrics) {
				t.Errorf("%s: deterministic metrics diverge from %s:\n%s\nvs\n%s", name, ref, metrics, wantMetrics)
			}
			if !bytes.Equal(trace, wantTrace) {
				t.Errorf("%s: trace bytes diverge from %s (%d vs %d bytes)", name, ref, len(trace), len(wantTrace))
			}
			if flight != wantFlight {
				t.Errorf("%s: flight ring diverges from %s:\n%s\nvs\n%s", name, ref, flight, wantFlight)
			}
		}
	}
}

// TestWireCompactorMergeNeutral pins the wire-delta compaction: a worker
// session suppresses zero-valued families and repeated track names after
// first ship, and the merged registry is identical to merging the full
// deltas — compaction changes bytes on the wire, never the folded sink.
func TestWireCompactorMergeNeutral(t *testing.T) {
	params, err := json.Marshal(ovParams())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(i int) *TrialRequest {
		return &TrialRequest{
			Stream: "comp/ov", Index: i, Kind: "mean-cycles", Params: params,
			Metrics: true, Flight: true, Trace: true, Profiling: true,
		}
	}
	full := obs.NewRegistry()
	full.Merge(*executeWire(mk(0)).Metrics)
	full.Merge(*executeWire(mk(1)).Metrics)

	comp := newWireCompactor()
	c0, c1 := executeWire(mk(0)), executeWire(mk(1))
	nfull := len(c1.Metrics.Counters)
	comp.compact(c0)
	comp.compact(c1)
	if len(c1.Metrics.Counters) >= nfull {
		t.Errorf("second response still carries %d counters, want < %d (zeros suppressed)", len(c1.Metrics.Counters), nfull)
	}
	for name, v := range c1.Metrics.Counters {
		if v == 0 {
			t.Errorf("second response still ships zero counter %q", name)
		}
	}
	for name, h := range c1.Metrics.Histograms {
		if h.Bounds != nil {
			t.Errorf("second response reships bounds for histogram %q", name)
		}
	}
	compacted := obs.NewRegistry()
	compacted.Merge(*c0.Metrics)
	compacted.Merge(*c1.Metrics)

	want, err := full.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := compacted.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("compacted merge diverges from full merge:\n%s\nvs\n%s", got, want)
	}
}

// TestTrialResponseCarriesContext pins the correlation stamp: a wire
// response names the run, stream, trial and the worker that executed it.
func TestTrialResponseCarriesContext(t *testing.T) {
	sink := &obs.Sink{Metrics: obs.NewRegistry()}
	e, err := NewSubprocExecutor(SubprocOptions{Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	params, err := json.Marshal(ovParams())
	if err != nil {
		t.Fatal(err)
	}
	req := &TrialRequest{Stream: "ctx/ov", Index: 3, Kind: "mean-cycles", RunID: RunID(7, "ctx-test"), Params: params}
	resp, err := e.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Ctx == nil {
		t.Fatal("response carries no correlation context")
	}
	if resp.Ctx.RunID != req.RunID || resp.Ctx.Stream != "ctx/ov" || resp.Ctx.Trial != 3 {
		t.Errorf("context = %+v, want run %x stream ctx/ov trial 3", resp.Ctx, req.RunID)
	}
	if resp.Ctx.Worker < 0 {
		t.Errorf("subprocess response reports worker %d, want >= 0", resp.Ctx.Worker)
	}
	if got := sink.Metrics.Snapshot().Counter(fmt.Sprintf("harness.executor.worker%d.trials", resp.Ctx.Worker)); got == 0 {
		t.Errorf("no per-worker trial counter for worker %d", resp.Ctx.Worker)
	}
}

// TestWorkerStderrTailAttached pins the crash-forensics satellite: when a
// worker dies, the executor error carries the tail of the worker's stderr
// and the flight ring records the crash with the same detail.
func TestWorkerStderrTailAttached(t *testing.T) {
	sink := &obs.Sink{
		Metrics: obs.NewRegistry(),
		Flight:  obs.NewFlightRecorder(obs.DefaultFlightCap),
	}
	e, err := NewSubprocExecutor(SubprocOptions{
		Bin: "/bin/sh", Args: []string{"-c", "echo boom-forensic-tail >&2; exit 1"},
		Retries: 1, Backoff: time.Millisecond, Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	_, err = e.Run(&TrialRequest{Stream: "s", Kind: "mean-cycles"})
	var ee *ExecutorError
	if err == nil || !errors.As(err, &ee) {
		t.Fatalf("Run = %v, want *ExecutorError", err)
	}
	if !strings.Contains(ee.StderrTail, "boom-forensic-tail") {
		t.Errorf("StderrTail = %q, want the worker's stderr", ee.StderrTail)
	}
	if !strings.Contains(ee.Error(), "boom-forensic-tail") {
		t.Errorf("Error() = %q does not render the stderr tail", ee.Error())
	}
	crashes := 0
	for _, ev := range ee.Events {
		if ev.Kind != obs.FlightExecutorCrash {
			t.Errorf("executor error carries non-crash flight event %q", ev.Kind)
		}
		if !strings.Contains(ev.Detail, "boom-forensic-tail") {
			t.Errorf("crash event detail %q lacks the stderr tail", ev.Detail)
		}
		crashes++
	}
	if crashes != 2 {
		t.Errorf("crash events = %d, want 2 (initial + one retry)", crashes)
	}
	found := false
	for _, ev := range sink.Flight.Snapshot() {
		if ev.Kind == obs.FlightExecutorCrash && strings.Contains(ev.Detail, "boom-forensic-tail") {
			found = true
		}
	}
	if !found {
		t.Error("sink flight ring has no executor-crash event with the stderr tail")
	}
}
