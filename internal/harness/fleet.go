package harness

import (
	"fmt"

	"stmdiag/internal/apps"
	"stmdiag/internal/core"
	"stmdiag/internal/pmu"
	"stmdiag/internal/vm"
)

// DiagnosisProfiles captures one benchmark's LBRA/LCRA diagnosis inputs —
// the failure- and success-run profiles — without computing any table
// columns. It is the fleet client's capture path: a simulated production
// machine runs exactly the deployed builds of RunSequential/RunConcurrent
// (same instrumented variants, same seed streams, same trial counts), so
// the returned profiles are byte-identical to what the monolithic path
// feeds core.Diagnose, for every Jobs value. The fleet golden test pins
// that equivalence.
func DiagnosisProfiles(a *apps.App, cfg Config) (core.Mode, []core.ProfiledRun, []core.ProfiledRun, error) {
	cfg = cfg.withDefaults()
	if a.Class.Concurrent() {
		fail, succ, err := concurrentProfiles(a, cfg)
		return core.ModeLCR, fail, succ, err
	}
	fail, succ, err := sequentialProfiles(a, cfg)
	return core.ModeLBR, fail, succ, err
}

// sequentialProfiles is RunSequential's capture phase: failure profiles on
// the deployed toggling LBR build, success profiles on the reactive build
// derived from the first failure.
func sequentialProfiles(a *apps.App, cfg Config) ([]core.ProfiledRun, []core.ProfiledRun, error) {
	pool := cfg.pool()
	optsLogTog := core.Options{LBR: true, Toggling: true}
	logTog, err := cachedBuild(a, optsLogTog)
	if err != nil {
		return nil, nil, err
	}
	failStream := a.Name + "/fail"
	failProfs, _, err := CollectKind[vm.Profile](pool, cfg.MaxAttempts, cfg.FailRuns, failStream, "fail-profile",
		failProfileParams{App: a.Name, Build: optsLogTog, Seed: cfg.Seed, LBRSize: cfg.LBRSize})
	if err != nil {
		return nil, nil, err
	}
	if len(failProfs) < cfg.FailRuns {
		return nil, nil, fmt.Errorf("harness: %s: only %d/%d failure profiles", a.Name, len(failProfs), cfg.FailRuns)
	}
	failProfiles := make([]core.ProfiledRun, len(failProfs))
	for i, prof := range failProfs {
		failProfiles[i] = core.ProfiledRun{Prog: logTog.Prog, Profile: prof}
	}
	failPC, err := origFailurePC(a, logTog, failProfiles[0].Profile)
	if err != nil {
		return nil, nil, err
	}
	succProfiles, err := successProfiles(a, core.Options{LBR: true, Toggling: true,
		Scheme: core.SchemeReactive, FailurePCs: []int{failPC}}, cfg, pool)
	if err != nil {
		return nil, nil, err
	}
	return failProfiles, succProfiles, nil
}

// concurrentProfiles is RunConcurrent's Conf2 capture phase: failing LCR
// profiles under the space-consuming configuration, successes on the
// reactive build.
func concurrentProfiles(a *apps.App, cfg Config) ([]core.ProfiledRun, []core.ProfiledRun, error) {
	pool := cfg.pool()
	optsLCR := core.Options{LCR: true, Toggling: true}
	inst, err := cachedBuild(a, optsLCR)
	if err != nil {
		return nil, nil, err
	}
	profs2, _, err := collectConc(a, optsLCR, pmu.ConfSpaceConsuming, true, cfg.FailRuns, cfg, pool, "conf2-fail")
	if err != nil {
		return nil, nil, err
	}
	failPC, err := origFailurePC(a, inst, profs2[0])
	if err != nil {
		return nil, nil, err
	}
	optsReactive := core.Options{LCR: true, Toggling: true,
		Scheme: core.SchemeReactive, FailurePCs: []int{failPC}}
	reactive, err := cachedBuild(a, optsReactive)
	if err != nil {
		return nil, nil, err
	}
	succProfs, _, err := collectConc(a, optsReactive, pmu.ConfSpaceConsuming, false, cfg.SuccRuns, cfg, pool, "conf2-succ")
	if err != nil {
		return nil, nil, err
	}
	var fail, succ []core.ProfiledRun
	for _, pr := range profs2 {
		fail = append(fail, core.ProfiledRun{Prog: inst.Prog, Profile: pr})
	}
	for _, pr := range succProfs {
		succ = append(succ, core.ProfiledRun{Prog: reactive.Prog, Profile: pr})
	}
	return fail, succ, nil
}
