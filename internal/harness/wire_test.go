package harness

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"stmdiag/internal/apps"
	"stmdiag/internal/artifact"
	"stmdiag/internal/obs"
)

// TestMain lets the test binary double as a subprocess-executor worker:
// the executor spawns os.Executable() with the WorkerEnv marker set, and
// the marked process runs the protocol loop instead of the test suite —
// exactly how the real binaries behave via cliobs.MaybeTrialWorker.
func TestMain(m *testing.M) {
	if os.Getenv(WorkerEnv) != "" {
		if err := WorkerMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "trial worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// ovParams is the cheap portable trial the executor tests fan out: one
// uninstrumented run of the Table 3 micro-benchmark per trial.
func ovParams() meanCyclesParams {
	return meanCyclesParams{App: apps.RWWMicro.Name, Seed: 7}
}

func testWireSink() *obs.Sink { return &obs.Sink{Metrics: obs.NewRegistry()} }

// TestExecutorEquivalence is the tentpole acceptance at the API level:
// portable trial results are identical across executor {inproc,subprocess}
// × jobs {1,4} × {fresh, store-backed, resumed-from-store}.
func TestExecutorEquivalence(t *testing.T) {
	const n = 6
	dir := t.TempDir()
	variants := []struct {
		name string
		run  func(t *testing.T) []uint64
	}{
		{"inproc-jobs1", func(t *testing.T) []uint64 {
			out, err := MapKind[uint64](NewPool(1, nil), n, "eq/ov", "mean-cycles", ovParams())
			if err != nil {
				t.Fatal(err)
			}
			return out
		}},
		{"inproc-jobs4", func(t *testing.T) []uint64 {
			out, err := MapKind[uint64](NewPool(4, nil), n, "eq/ov", "mean-cycles", ovParams())
			if err != nil {
				t.Fatal(err)
			}
			return out
		}},
		{"subprocess-jobs1", func(t *testing.T) []uint64 { return subprocMap(t, 1, n) }},
		{"subprocess-jobs4", func(t *testing.T) []uint64 { return subprocMap(t, 4, n) }},
		{"store-fresh", func(t *testing.T) []uint64 {
			// Populates dir for the resumed variant below.
			store, err := artifact.Open(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			out, err := MapKind[uint64](NewPool(4, nil).WithArtifacts(store), n, "eq/ov", "mean-cycles", ovParams())
			if err != nil {
				t.Fatal(err)
			}
			return out
		}},
		{"store-resumed", func(t *testing.T) []uint64 {
			sink := testWireSink()
			store, err := artifact.Open(dir, sink)
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			out, err := MapKind[uint64](NewPool(2, sink).WithArtifacts(store), n, "eq/ov", "mean-cycles", ovParams())
			if err != nil {
				t.Fatal(err)
			}
			if hits := sink.Metrics.Snapshot().Counter("artifact.hits"); hits != n {
				t.Errorf("resumed run hit the store %d times, want %d (no re-execution)", hits, n)
			}
			return out
		}},
	}
	var want []uint64
	for _, v := range variants {
		got := v.run(t)
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: results diverge: %v vs %v", v.name, got, want)
		}
	}
}

func subprocMap(t *testing.T, jobs, n int) []uint64 {
	t.Helper()
	sink := testWireSink()
	e, err := NewSubprocExecutor(SubprocOptions{Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	out, err := MapKind[uint64](NewPool(jobs, sink).WithExecutor(e), n, "eq/ov", "mean-cycles", ovParams())
	if err != nil {
		t.Fatal(err)
	}
	if spawns := sink.Metrics.Snapshot().Counter("harness.executor.spawns"); spawns == 0 {
		t.Error("subprocess run spawned no workers")
	}
	return out
}

// TestKillResumeEquivalence is the durability acceptance: populate a store,
// truncate its manifest at several record boundaries (the deterministic
// stand-in for SIGKILL), and re-run — the results are identical and only
// the missing trials re-execute. Each resumed run fully repairs the
// manifest, so the next, shorter truncation starts from a complete store.
func TestKillResumeEquivalence(t *testing.T) {
	const n = 8
	dir := t.TempDir()
	open := func(sink *obs.Sink) *artifact.Store {
		s, err := artifact.Open(dir, sink)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	store := open(nil)
	manifest := store.ManifestPath()
	want, err := MapKind[uint64](NewPool(3, nil).WithArtifacts(store), n, "kr/ov", "mean-cycles", ovParams())
	if err != nil {
		t.Fatal(err)
	}
	store.Close()

	for _, keep := range []int{5, 2, 0} {
		if err := artifact.TruncateJournal(manifest, keep); err != nil {
			t.Fatal(err)
		}
		sink := testWireSink()
		store := open(sink)
		got, err := MapKind[uint64](NewPool(3, sink).WithArtifacts(store), n, "kr/ov", "mean-cycles", ovParams())
		if err != nil {
			t.Fatalf("keep=%d: %v", keep, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("keep=%d: resumed results diverge: %v vs %v", keep, got, want)
		}
		snap := sink.Metrics.Snapshot()
		if hits := snap.Counter("artifact.hits"); hits != uint64(keep) {
			t.Errorf("keep=%d: store hits = %d, want %d", keep, hits, keep)
		}
		if puts := snap.Counter("artifact.puts"); puts != uint64(n-keep) {
			t.Errorf("keep=%d: fresh puts = %d, want %d", keep, puts, n-keep)
		}
		store.Close()
	}
}

// TestCorruptArtifactReexecuted damages every stored blob: resume must
// detect the mismatches, quarantine, re-execute, and still produce the
// identical results — and the fresh puts repair the store, so a final run
// is all verified hits.
func TestCorruptArtifactReexecuted(t *testing.T) {
	const n = 4
	dir := t.TempDir()
	store, err := artifact.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MapKind[uint64](NewPool(2, nil).WithArtifacts(store), n, "ca/ov", "mean-cycles", ovParams())
	if err != nil {
		t.Fatal(err)
	}
	store.Close()

	// Flip a byte in every blob. Identical trial results share one
	// content-addressed blob, so there may be fewer blobs than trials.
	blobs := 0
	err = filepath.Walk(filepath.Join(dir, "blobs"), func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		data[len(data)/2] ^= 0xff
		blobs++
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if blobs == 0 {
		t.Fatal("no blobs written by the primer run")
	}

	sink := testWireSink()
	store2, err := artifact.Open(dir, sink)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MapKind[uint64](NewPool(2, sink).WithArtifacts(store2), n, "ca/ov", "mean-cycles", ovParams())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("re-executed results diverge: %v vs %v", got, want)
	}
	snap := sink.Metrics.Snapshot()
	if re := snap.Counter("artifact.reexecuted"); re == 0 {
		t.Error("no trial re-executed after blob corruption")
	}
	if q := snap.Counter("artifact.quarantined"); q == 0 {
		t.Error("no blobs quarantined")
	}
	store2.Close()

	// The fresh puts repaired the store: a third run is all hits.
	sink3 := testWireSink()
	store3, err := artifact.Open(dir, sink3)
	if err != nil {
		t.Fatal(err)
	}
	defer store3.Close()
	if _, err := MapKind[uint64](NewPool(1, sink3).WithArtifacts(store3), n, "ca/ov", "mean-cycles", ovParams()); err != nil {
		t.Fatal(err)
	}
	if hits := sink3.Metrics.Snapshot().Counter("artifact.hits"); hits != n {
		t.Errorf("post-repair hits = %d, want %d", hits, n)
	}
}

// TestSubprocWorkerCrashRecovery spawns a worker that dies on its first
// checkout (a sentinel-guarded shell wrapper) and becomes the real worker
// on respawn: the executor must retry on a fresh worker and the trial must
// succeed without surfacing a failure.
func TestSubprocWorkerCrashRecovery(t *testing.T) {
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	sentinel := filepath.Join(t.TempDir(), "crashed-once")
	script := fmt.Sprintf("if [ ! -e %q ]; then : > %q; exit 1; fi; exec %q", sentinel, sentinel, self)
	sink := testWireSink()
	e, err := NewSubprocExecutor(SubprocOptions{
		Bin: "/bin/sh", Args: []string{"-c", script},
		Backoff: time.Millisecond, Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	out, err := MapKind[uint64](NewPool(1, sink).WithExecutor(e), 1, "crash/ov", "mean-cycles", ovParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	snap := sink.Metrics.Snapshot()
	if r := snap.Counter("harness.executor.respawns"); r == 0 {
		t.Error("no respawn recorded after worker crash")
	}
	if f := snap.Counter("harness.executor.failures"); f != 0 {
		t.Errorf("executor reported %d failures for a recoverable crash", f)
	}
}

// TestSubprocExecutorFailureDegrades pins the give-up path: a worker binary
// that always dies exhausts the retry budget, Run errors, and the pool maps
// the trial onto the degraded/insufficient-evidence path instead of
// crashing the run.
func TestSubprocExecutorFailureDegrades(t *testing.T) {
	sink := testWireSink()
	e, err := NewSubprocExecutor(SubprocOptions{
		Bin: "/bin/false", Retries: 1, Backoff: time.Millisecond, Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Direct executor contract.
	if _, err := e.Run(&TrialRequest{Stream: "s", Kind: "mean-cycles"}); err == nil {
		t.Fatal("Run succeeded against a worker that always dies")
	}
	if f := sink.Metrics.Snapshot().Counter("harness.executor.failures"); f != 1 {
		t.Errorf("failures = %d, want 1", f)
	}

	// Pool-level: MapKind surfaces a *TrialError (degraded), not a panic.
	_, err = MapKind[uint64](NewPool(1, sink).WithExecutor(e), 1, "dead/ov", "mean-cycles", ovParams())
	var te *TrialError
	if err == nil || !errors.As(err, &te) {
		t.Fatalf("MapKind error = %v, want *TrialError", err)
	}
	if ft := sink.Metrics.Snapshot().Counter("harness.executor.failed_trials"); ft == 0 {
		t.Error("failed_trials not counted")
	}
}

// TestSubprocTimeoutKillsWorker pins the hang path: a worker that never
// answers costs one bounded attempt per retry, and the hung process is
// killed rather than awaited.
func TestSubprocTimeoutKillsWorker(t *testing.T) {
	sink := testWireSink()
	e, err := NewSubprocExecutor(SubprocOptions{
		// exec: the kill must land on sleep itself, not a sh parent that
		// would orphan it holding the inherited pipes.
		Bin: "/bin/sh", Args: []string{"-c", "exec sleep 600"},
		Timeout: 100 * time.Millisecond, Retries: 1, Backoff: time.Millisecond,
		Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	start := time.Now()
	_, err = e.Run(&TrialRequest{Stream: "s", Kind: "mean-cycles"})
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("Run = %v, want timeout error", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("timeout path took %v; worker not killed promptly", elapsed)
	}
	if got := sink.Metrics.Snapshot().Counter("harness.executor.timeouts"); got != 2 {
		t.Errorf("timeouts = %d, want 2 (initial + one retry)", got)
	}
}

// TestUnknownKindIsError pins the version-skew guard: a request naming a
// kind this binary does not register must come back as a trial error, not
// a panic or a silent zero.
func TestUnknownKindIsError(t *testing.T) {
	resp := executeWire(&TrialRequest{Stream: "s", Kind: "no-such-kind"})
	if resp.Err == "" || !strings.Contains(resp.Err, "unknown trial kind") {
		t.Fatalf("response = %+v, want unknown-kind error", resp)
	}
}

// TestRequestKeyIdentity pins what is — and is not — part of a trial's
// durable identity: telemetry arming must not change the key (a -v resume
// still hits), while the fault spec and seed must (Table 8 reuses stream
// labels across four injection specs).
func TestRequestKeyIdentity(t *testing.T) {
	base := func() *TrialRequest {
		return &TrialRequest{Stream: "s", Index: 3, Kind: "mean-cycles"}
	}
	k := requestKey(base())
	armed := base()
	armed.Metrics, armed.Flight, armed.Verbosity = true, true, 2
	if requestKey(armed) != k {
		t.Error("telemetry arming changed the trial key; resumes would miss")
	}
	seeded := base()
	seeded.FaultSeed = 99
	if requestKey(seeded) == k {
		t.Error("fault seed did not change the trial key")
	}
	other := base()
	other.Index = 4
	if requestKey(other) == k {
		t.Error("trial index did not change the trial key")
	}
}
