package harness

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"

	"stmdiag/internal/artifact"
	"stmdiag/internal/faultinj"
	"stmdiag/internal/obs"
)

// This file is the portable-trial layer: trial bodies expressed as data
// (a kind name plus JSON params) instead of closures, so one trial can be
// executed by the in-process worker, shipped to a subprocess worker, or
// loaded back from the durable artifact store — and produce byte-identical
// results in all three cases.
//
// The identity argument: every execution path funnels through executeWire,
// which replicates the pool's attempt loop (fault plans, retry budget,
// flight events, degradation) exactly; and every result value crosses a
// JSON round trip even in-process, so "fresh in-process", "fresh
// subprocess" and "resumed from the store" are literally the same bytes by
// construction, not by careful equivalence.
//
// Streams whose bodies are closures over in-memory state (the generated
// bug corpus, coverage sweeps, adaptive search) remain "pinned": they run
// through the same pool via Collect/Map/First, always in-process, and are
// simply re-executed on resume. Resumable is exactly portable.

// TrialRequest is one trial, as data. Its identity — what the artifact key
// hashes — is (Stream, Index, Kind, Params, Faults, FaultSeed). The
// telemetry arming flags ride along so a worker builds the same trial sink
// the in-process path would, but they are not part of the identity.
type TrialRequest struct {
	Stream string          `json:"stream"`
	Index  int             `json:"index"`
	Kind   string          `json:"kind"`
	Params json.RawMessage `json:"params,omitempty"`

	Faults    faultinj.Spec `json:"faults"`
	FaultSeed int64         `json:"faultSeed,omitempty"`

	Metrics   bool `json:"metrics,omitempty"`
	Flight    bool `json:"flight,omitempty"`
	Trace     bool `json:"trace,omitempty"`
	Profiling bool `json:"profiling,omitempty"`
	Verbosity int  `json:"verbosity,omitempty"`

	// RunID correlates every telemetry delta of one pipeline run; it is
	// propagated into the response's obs.Context and, like the arming
	// flags, is not part of the trial's identity.
	RunID uint64 `json:"runID,omitempty"`
}

// TrialDegraded is the wire form of a trial that exhausted its retry
// budget: every attempt panicked.
type TrialDegraded struct {
	Attempts int               `json:"attempts"`
	Panic    string            `json:"panic"`
	Events   []obs.FlightEvent `json:"events,omitempty"`

	// pan carries the in-process panic value so local callers keep the
	// original (an *artifact.Error, a faultinj.InjectedPanic, ...). Its %v
	// rendering equals Panic, so errors print identically either way.
	pan any
}

// TrialResponse is one executed trial's complete observable outcome: the
// JSON-encoded result value, the accept/reject/error verdict, the degraded
// record if every attempt panicked, and the trial sink's telemetry, merged
// by the pool at commit time in trial order.
type TrialResponse struct {
	Value json.RawMessage `json:"value,omitempty"`
	OK    bool            `json:"ok,omitempty"`
	Err   string          `json:"err,omitempty"`

	Degraded *TrialDegraded `json:"degraded,omitempty"`

	Metrics   *obs.Snapshot     `json:"metrics,omitempty"`
	Flight    []obs.FlightEvent `json:"flight,omitempty"`
	HasFlight bool              `json:"hasFlight,omitempty"`

	// Trace is the trial's private-tracer delta: its spans and track
	// names, plus the cycles its clock advanced. The pool merges it into
	// the run tracer at commit time, in trial order, so the merged trace
	// is byte-identical for every -jobs value and executor choice.
	Trace *obs.TraceDelta `json:"trace,omitempty"`

	// Ctx stamps which run/stream/trial/attempt/worker produced this
	// response's telemetry. It labels volatile live telemetry only and is
	// stripped before artifact storage (worker assignment is a scheduling
	// fact, and stored records stay executor-invariant).
	Ctx *obs.Context `json:"ctx,omitempty"`

	// errVal preserves the in-process error identity (errors.Is works on
	// the local path); remote and resumed paths reconstruct from Err.
	errVal error
}

// respErr returns the response's error, preferring the preserved local
// value over the wire string.
func (r *TrialResponse) respErr() error {
	if r.errVal != nil {
		return r.errVal
	}
	if r.Err != "" {
		return errors.New(r.Err)
	}
	return nil
}

// kindFunc executes one portable trial body: decode params, run the trial
// in tc's context, return (value, accepted, error). The returned value must
// JSON-round-trip losslessly — it is the trial's wire representation.
type kindFunc func(params json.RawMessage, stream string, tc *Trial) (any, bool, error)

// trialKinds is the portable-trial registry, populated by kinds.go at init.
// Both executors and worker processes resolve bodies here, so the mapping
// must be identical in every process of a run (it is: it's compiled in).
var trialKinds = map[string]kindFunc{}

// registerKind installs one portable trial body.
func registerKind(name string, fn kindFunc) {
	if _, dup := trialKinds[name]; dup {
		panic("harness: duplicate trial kind " + name)
	}
	trialKinds[name] = fn
}

// wireSink builds the sink one wire trial runs against, mirroring
// Pool.trialSink: private registry, private flight ring, private tracer.
// Arming is purely request-driven, so the in-process executor and a
// subprocess worker build bit-for-bit the same sink for the same request —
// the federation identity starts here.
func wireSink(req *TrialRequest) *obs.Sink {
	if !req.Metrics && !req.Flight && !req.Trace && !req.Profiling {
		return nil
	}
	s := &obs.Sink{Profiling: req.Profiling, Verbosity: req.Verbosity}
	if req.Metrics {
		s.Metrics = obs.NewRegistry()
	}
	if req.Flight {
		s.Flight = obs.NewFlightRecorder(obs.DefaultTrialFlightCap)
	}
	if req.Trace {
		s.Trace = obs.NewTracer()
	}
	return s
}

// executeWire runs one portable trial to completion: the same attempt loop
// as runTrial — per-attempt fault plans, panic recovery, deterministic
// retry budget, flight events, degradation — expressed over wire types.
func executeWire(req *TrialRequest) *TrialResponse {
	kf, known := trialKinds[req.Kind]
	if !known {
		err := fmt.Errorf("harness: unknown trial kind %q (version skew between coordinator and worker?)", req.Kind)
		return &TrialResponse{Err: err.Error(), errVal: err}
	}
	s := wireSink(req)
	resp := &TrialResponse{HasFlight: s != nil && s.Flight != nil}
	body := func(tc *Trial) (any, bool, error) { return kf(req.Params, req.Stream, tc) }
	budget := req.Faults.RetryBudget()
	lastAttempt := 0
	for attempt := 0; ; attempt++ {
		lastAttempt = attempt
		s.RecordFlight(obs.FlightEvent{
			Cycle: s.Cycles(), Trial: req.Index, Attempt: attempt,
			Kind: obs.FlightTrialStart, Detail: req.Stream,
		})
		tc := &Trial{
			Index:   req.Index,
			Attempt: attempt,
			Sink:    s,
			Faults:  faultinj.NewPlan(req.Faults, req.FaultSeed, req.Stream, req.Index, attempt, s),
		}
		v, ok, err, pan := guardedCall(body, tc)
		if pan == nil {
			switch {
			case err != nil:
				resp.Err, resp.errVal = err.Error(), err
			case ok:
				data, merr := json.Marshal(v)
				if merr != nil {
					merr = fmt.Errorf("harness: encode %q trial %d result: %w", req.Stream, req.Index, merr)
					resp.Err, resp.errVal = merr.Error(), merr
				} else {
					resp.Value, resp.OK = data, true
				}
			}
			break
		}
		s.Counter("harness.pool.panics").Inc()
		if attempt >= budget {
			s.Counter("harness.pool.degraded").Inc()
			s.RecordFlight(obs.FlightEvent{
				Cycle: s.Cycles(), Trial: req.Index, Attempt: attempt,
				Kind: obs.FlightTrialDegraded, Detail: fmt.Sprintf("panic: %v", pan),
			})
			resp.Degraded = &TrialDegraded{
				Attempts: attempt + 1,
				Panic:    fmt.Sprint(pan),
				// The segfault-handler moment, same as runTrial: read the
				// worker's ring while the failure is in short-term memory.
				Events: s.FlightRecorder().Snapshot(),
				pan:    pan,
			}
			break
		}
		s.Counter("harness.pool.retries").Inc()
		s.RecordFlight(obs.FlightEvent{
			Cycle: s.Cycles(), Trial: req.Index, Attempt: attempt,
			Kind: obs.FlightTrialRetry, Detail: fmt.Sprintf("panic: %v", pan),
		})
	}
	// Drain the trial sink into the response — the disable-before-read
	// moment: the trial body has returned, nothing records into s anymore,
	// and only now is the telemetry serialized for the coordinator.
	if s != nil && s.Metrics != nil {
		snap := s.Metrics.Snapshot()
		resp.Metrics = &snap
	}
	if s != nil && s.Flight != nil {
		resp.Flight = s.Flight.Snapshot()
	}
	if s != nil && s.Trace != nil {
		d := s.Trace.Delta()
		resp.Trace = &d
	}
	resp.Ctx = &obs.Context{
		RunID: req.RunID, Stream: req.Stream, Trial: req.Index,
		Attempt: lastAttempt, Worker: selfWorkerID(),
	}
	return resp
}

// selfWorkerID reports which executor worker this process is (from the
// environment the subprocess executor spawns workers with), or -1 for the
// coordinator process itself.
func selfWorkerID() int {
	if v := os.Getenv(WorkerIDEnv); v != "" {
		if id, err := strconv.Atoi(v); err == nil {
			return id
		}
	}
	return -1
}

// requestKey hashes a trial's identity into its artifact-store key. The
// fault spec and seed are part of the identity — the same stream and index
// under different injection specs are different trials (Table 8 reuses
// stream labels across four specs). Worker count, executor choice and
// telemetry arming are deliberately absent.
func requestKey(req *TrialRequest) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	// Encode of this closed struct cannot fail.
	_ = enc.Encode(struct {
		Stream    string          `json:"stream"`
		Index     int             `json:"index"`
		Kind      string          `json:"kind"`
		Params    json.RawMessage `json:"params"`
		Faults    faultinj.Spec   `json:"faults"`
		FaultSeed int64           `json:"faultSeed"`
	}{req.Stream, req.Index, req.Kind, req.Params, req.Faults, req.FaultSeed})
	return hex.EncodeToString(h.Sum(nil))
}

// wireOutcome converts an executed (or resumed) TrialResponse into the
// pool's trialOutcome, decoding the value and reconstructing degradation.
func wireOutcome[T any](label string, i int, resp *TrialResponse, persist func()) trialOutcome[T] {
	o := trialOutcome[T]{telemetry: trialTelemetry{
		metrics: resp.Metrics,
		flight:  resp.Flight,
		hasRing: resp.HasFlight,
		trace:   resp.Trace,
		persist: persist,
	}}
	if d := resp.Degraded; d != nil {
		var pan any = d.Panic
		if d.pan != nil {
			pan = d.pan
		}
		o.degraded = &TrialError{Label: label, Trial: i, Attempts: d.Attempts, Panic: pan, Events: d.Events}
		return o
	}
	if err := resp.respErr(); err != nil {
		o.err = err
		return o
	}
	if !resp.OK {
		return o
	}
	var v T
	if err := json.Unmarshal(resp.Value, &v); err != nil {
		o.err = fmt.Errorf("harness: decode %q trial %d result: %w", label, i, err)
		return o
	}
	o.val, o.ok = v, true
	return o
}

// encodeStored renders the response's durable form. Local-only fields
// (errVal, Degraded.pan) are unexported and fall away, which is the point:
// the stored record equals what a subprocess worker would have sent — minus
// the correlation context, which names a scheduling fact (which worker ran
// the trial) and would otherwise make store contents executor-variant.
func encodeStored(resp *TrialResponse) ([]byte, error) {
	stored := *resp
	stored.Ctx = nil
	return json.Marshal(&stored)
}

// decodeStored parses a stored trial record.
func decodeStored(data []byte) (*TrialResponse, error) {
	var resp TrialResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// wireRunner dispatches portable trials through the pool's executor, with
// the artifact store as a read-through/write-behind cache: a verified
// stored result skips execution entirely; a fresh result is persisted at
// commit time, in trial order.
type wireRunner[T any] struct {
	kind   string
	params json.RawMessage
}

func (r wireRunner[T]) runOne(p *Pool, w int, label string, i int) trialOutcome[T] {
	req := p.wireRequest(label, i, r.kind, r.params)
	var key string
	if p.store != nil {
		key = requestKey(req)
		data, hit, aerr := p.store.Load(key)
		if aerr != nil {
			// Corrupt or torn artifact: the store already quarantined it
			// (typed *artifact.Error); fall through and re-execute, and the
			// fresh Put below repairs the store. Only if re-execution also
			// degrades does the failure surface, as a TrialError on the
			// insufficient-evidence path.
			p.sink.Counter("artifact.reexecuted").Inc()
		} else if hit {
			if resp, derr := decodeStored(data); derr == nil {
				return wireOutcome[T](label, i, resp, nil)
			}
		}
	}
	return timedRun(p, w, func() trialOutcome[T] {
		resp, err := p.executor().Run(req)
		if err != nil {
			// Executor infrastructure failure (worker crashed repeatedly,
			// timed out past the retry budget): degrade the trial rather
			// than kill the run — identical handling to a trial whose every
			// attempt panicked. An *ExecutorError carries the crash flight
			// events (worker id, stderr tail) into the TrialError's tail.
			p.sink.Counter("harness.executor.failed_trials").Inc()
			te := &TrialError{Label: label, Trial: i, Attempts: 1, Panic: err}
			var ee *ExecutorError
			if errors.As(err, &ee) {
				te.Attempts = ee.Attempts
				te.Events = ee.Events
			}
			return trialOutcome[T]{degraded: te}
		}
		var persist func()
		if p.store != nil {
			store, stream, trial := p.store, label, i
			persist = func() {
				if data, err := encodeStored(resp); err == nil {
					// Put failures are counted by the store, never fatal:
					// losing durability must not fail a healthy trial.
					_ = store.Put(stream, trial, key, data)
				}
			}
		}
		return wireOutcome[T](label, i, resp, persist)
	})
}

// CollectKind is Collect for portable trials: the body is named by kind and
// parameterized by params (JSON-marshaled) instead of captured in a
// closure, so trials can run on any executor and resume from the artifact
// store. Selection, ordering and telemetry semantics are exactly Collect's.
func CollectKind[T any](p *Pool, max, need int, stream, kind string, params any) ([]T, int, error) {
	rn, err := newWireRunner[T](stream, kind, params)
	if err != nil {
		return nil, 0, err
	}
	out, attempts, _, err := run[T](p, max, need, stream, rn)
	return out, attempts, err
}

// FirstKind is First for portable trials.
func FirstKind[T any](p *Pool, max int, stream, kind string, params any) (T, int, error) {
	out, attempts, err := CollectKind[T](p, max, 1, stream, kind, params)
	if err != nil || len(out) == 0 {
		var zero T
		return zero, -1, err
	}
	return out[0], attempts - 1, nil
}

// MapKind is Map for portable trials: all n results in index order, and a
// degraded trial is a hard error (positional callers cannot skip).
func MapKind[T any](p *Pool, n int, stream, kind string, params any) ([]T, error) {
	rn, err := newWireRunner[T](stream, kind, params)
	if err != nil {
		return nil, err
	}
	out, _, degraded, err := run[T](p, n, n, stream, rn)
	if err != nil {
		return out, err
	}
	if degraded != nil {
		return out, degraded
	}
	return out, nil
}

// newWireRunner marshals params once per fan-out.
func newWireRunner[T any](stream, kind string, params any) (wireRunner[T], error) {
	raw, err := json.Marshal(params)
	if err != nil {
		return wireRunner[T]{}, fmt.Errorf("harness: encode %q params for %q: %w", kind, stream, err)
	}
	return wireRunner[T]{kind: kind, params: raw}, nil
}

// Executor runs portable trials. Implementations must be safe for
// concurrent Run calls (the pool's workers share one executor) and must
// return byte-identical TrialResponses for identical TrialRequests — the
// golden-table invariant rests on it. Run errors mean the execution
// infrastructure failed (not the trial body); the pool degrades such
// trials onto the insufficient-evidence path.
type Executor interface {
	Run(req *TrialRequest) (*TrialResponse, error)
	Close() error
}

// InprocExecutor runs trials in this process — the default. Trial sinks
// are built purely from the request (private registry, ring and tracer,
// merged by the pool at commit), identically to a subprocess worker.
type InprocExecutor struct{}

// Run executes the trial on the calling goroutine.
func (e *InprocExecutor) Run(req *TrialRequest) (*TrialResponse, error) {
	return executeWire(req), nil
}

// Close is a no-op.
func (e *InprocExecutor) Close() error { return nil }

// WorkerEnv marks a process as a trial worker: when set, binaries that call
// cliobs.MaybeTrialWorker() run WorkerMain on stdin/stdout instead of their
// normal command. This lets any harness binary double as its own worker
// (-worker-bin defaults to the current executable).
const WorkerEnv = "STMDIAG_TRIAL_WORKER"

// WorkerIDEnv carries a subprocess worker's ordinal (its lane in the
// executor's freelist). Responses stamp it into their correlation context
// and the executor labels per-worker counters with it.
const WorkerIDEnv = "STMDIAG_TRIAL_WORKER_ID"

// wireCompactor strips merge-neutral telemetry repeats from one worker's
// response stream. A profiled trial registers every instrument family its
// code path touches, so most of a per-trial metrics delta is zero-valued
// counters and unobserved histograms — entries that exist on the wire only
// to mint the family in the coordinator's registry. Minting is idempotent
// and order-independent (a zero adds nothing whenever it merges), so each
// wire session ships every family once and suppresses the repeats; the
// same goes for trace track names, which re-register identically on every
// trial. This roughly halves the serialized delta for fully-armed runs
// without touching the merged result: byte-identity of the final sink is
// what the federation gate checks, and it is preserved by construction.
type wireCompactor struct {
	counters map[string]bool   // zero-valued counter families already shipped
	hists    map[string]bool   // unobserved histogram families already shipped
	tracks   map[string]string // trace track names already shipped, by "pid/tid"
}

func newWireCompactor() *wireCompactor {
	return &wireCompactor{
		counters: map[string]bool{},
		hists:    map[string]bool{},
		tracks:   map[string]string{},
	}
}

// compact rewrites resp in place. Nonzero values always ship (and mark the
// family as minted); zero-valued repeats drop. A histogram's bounds ship
// only on the session's first response for that family: a worker executes
// its trials in increasing index order and the coordinator folds deltas in
// that same order (live commits and artifact replay alike), so the minting
// delta always merges before any stripped one and Registry.Merge folds the
// bounds-less counts positionally into the already-minted family.
func (c *wireCompactor) compact(resp *TrialResponse) {
	if resp == nil {
		return
	}
	if resp.Metrics != nil {
		for name, v := range resp.Metrics.Counters {
			if v == 0 && c.counters[name] {
				delete(resp.Metrics.Counters, name)
				continue
			}
			c.counters[name] = true
		}
		for name, h := range resp.Metrics.Histograms {
			if c.hists[name] {
				if h.Count == 0 && h.Sum == 0 {
					delete(resp.Metrics.Histograms, name)
					continue
				}
				h.Bounds = nil
				resp.Metrics.Histograms[name] = h
			}
			c.hists[name] = true
		}
	}
	if resp.Trace != nil {
		resp.Trace.Procs = c.compactTracks(resp.Trace.Procs)
		resp.Trace.Threads = c.compactTracks(resp.Trace.Threads)
	}
}

func (c *wireCompactor) compactTracks(tracks []obs.TrackName) []obs.TrackName {
	kept := tracks[:0]
	for _, tr := range tracks {
		key := strconv.Itoa(tr.PID) + "/" + strconv.Itoa(tr.TID)
		if name, ok := c.tracks[key]; ok && name == tr.Name {
			continue
		}
		c.tracks[key] = tr.Name
		kept = append(kept, tr)
	}
	return kept
}

// WorkerMain is the trial-worker protocol loop: JSON TrialRequests in,
// JSON TrialResponses out, one per line, strictly in lockstep. Any
// protocol error terminates the worker — the coordinating executor kills
// and respawns workers rather than attempting to resynchronize a stream.
// Responses are compacted per session: merge-neutral repeats (zero-valued
// families, unchanged track names) ship only once per worker lifetime.
func WorkerMain(r io.Reader, w io.Writer) error {
	dec := json.NewDecoder(bufio.NewReader(r))
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	comp := newWireCompactor()
	for {
		var req TrialRequest
		if err := dec.Decode(&req); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("harness: worker decode request: %w", err)
		}
		resp := executeWire(&req)
		comp.compact(resp)
		if err := enc.Encode(resp); err != nil {
			return fmt.Errorf("harness: worker encode response: %w", err)
		}
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("harness: worker flush response: %w", err)
		}
	}
}

// compile-time interface checks
var (
	_ Executor = (*InprocExecutor)(nil)
	_ error    = (*artifact.Error)(nil)
)
