package harness

import (
	"testing"

	"stmdiag/internal/apps"
	"stmdiag/internal/synth"
	"stmdiag/internal/vm"
)

func TestCoverageTHeMEStyle(t *testing.T) {
	// A synthetic program spreads one-shot branches across the whole run,
	// so sampling density genuinely trades coverage against overhead.
	p := synth.MustGenerate("cov", synth.Config{Seed: 5, Funcs: 12, StmtsPerFunc: 40})
	dense, err := RunCoverage(p, vm.Options{Seed: 1}, 50)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := RunCoverage(p, vm.Options{Seed: 1}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("dense:  coverage=%.2f samples=%d overhead=%.1f%%", dense.Coverage, dense.Samples, 100*dense.Overhead)
	t.Logf("sparse: coverage=%.2f samples=%d overhead=%.1f%%", sparse.Coverage, sparse.Samples, 100*sparse.Overhead)

	if dense.ExecutedEdges == 0 {
		t.Fatal("no ground-truth edges")
	}
	if dense.Coverage < 0.9 {
		t.Errorf("dense sampling coverage = %.2f, want >= 0.9", dense.Coverage)
	}
	if sparse.Coverage >= dense.Coverage {
		t.Errorf("sparse coverage %.2f not below dense %.2f", sparse.Coverage, dense.Coverage)
	}
	if sparse.Overhead >= dense.Overhead {
		t.Errorf("sparse overhead %.3f not below dense %.3f", sparse.Overhead, dense.Overhead)
	}
	// The paper's §8 point: periodic profiling throughout the run costs
	// far more than LBRLOG's fraction-of-a-percent profile-at-failure.
	if dense.Overhead < 0.05 {
		t.Errorf("dense THeME overhead = %.3f, implausibly low", dense.Overhead)
	}
}

func TestCoverageConcurrentProgram(t *testing.T) {
	// Multi-core runs drain every core's LBR; coverage still works.
	a := apps.ByName("Mozilla-JS3")
	res, err := RunCoverage(a.Program(), a.Fail.VMOptions(2), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecutedEdges == 0 || res.CoveredEdges == 0 {
		t.Errorf("no edges covered on a concurrent program: %+v", res)
	}
}
