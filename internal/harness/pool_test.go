package harness

import (
	"errors"
	"fmt"
	"testing"

	"stmdiag/internal/faultinj"
	"stmdiag/internal/obs"
)

func testPoolJobs() []int { return []int{1, 2, 4, 9} }

func TestTrialSeedProperties(t *testing.T) {
	if TrialSeed(0, "sort/fail", 3) != TrialSeed(0, "sort/fail", 3) {
		t.Error("TrialSeed not deterministic")
	}
	seen := make(map[int64]string)
	for _, base := range []int64{0, 1, 12345} {
		for _, stream := range []string{"sort/fail", "sort/succ", "FFT/conf2-fail"} {
			for trial := 0; trial < 64; trial++ {
				s := TrialSeed(base, stream, trial)
				if s < 0 {
					t.Fatalf("TrialSeed(%d, %q, %d) = %d < 0", base, stream, trial, s)
				}
				key := fmt.Sprintf("%d/%s/%d", base, stream, trial)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: %s and %s both map to %d", prev, key, s)
				}
				seen[s] = key
			}
		}
	}
}

// TestCollectJobsInvariance pins Collect's contract: accepted values,
// attempt counts and merged telemetry are identical for every worker count,
// and exactly the sequential prefix of trials is committed.
func TestCollectJobsInvariance(t *testing.T) {
	const (
		max  = 30
		need = 4
	)
	var wantVals []int
	wantAttempts := 0
	for i := 0; i < max && len(wantVals) < need; i++ {
		if i%3 == 0 {
			wantVals = append(wantVals, i*10)
		}
		wantAttempts = i + 1
	}
	for _, jobs := range testPoolJobs() {
		sink := &obs.Sink{Metrics: obs.NewRegistry()}
		p := NewPool(jobs, sink)
		out, attempts, err := Collect(p, max, need, "test", func(tc *Trial) (int, bool, error) {
			tc.Sink.Counter("test.trials").Inc()
			return tc.Index * 10, tc.Index%3 == 0, nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if attempts != wantAttempts {
			t.Errorf("jobs=%d: attempts = %d, want %d", jobs, attempts, wantAttempts)
		}
		if len(out) != len(wantVals) {
			t.Fatalf("jobs=%d: out = %v, want %v", jobs, out, wantVals)
		}
		for i := range out {
			if out[i] != wantVals[i] {
				t.Errorf("jobs=%d: out[%d] = %d, want %d", jobs, i, out[i], wantVals[i])
			}
		}
		snap := sink.Metrics.Snapshot()
		if got := snap.Counter("test.trials"); got != uint64(wantAttempts) {
			t.Errorf("jobs=%d: committed trial telemetry = %d, want exactly the sequential prefix %d",
				jobs, got, wantAttempts)
		}
		if got := snap.Counter("harness.pool.committed"); got != uint64(wantAttempts) {
			t.Errorf("jobs=%d: pool.committed = %d, want %d", jobs, got, wantAttempts)
		}
		executed := snap.Counter("harness.pool.trials")
		discarded := snap.Counter("harness.pool.discarded")
		if executed < uint64(wantAttempts) {
			t.Errorf("jobs=%d: pool.trials = %d < attempts %d", jobs, executed, wantAttempts)
		}
		if executed != uint64(wantAttempts)+discarded {
			t.Errorf("jobs=%d: trials(%d) != committed(%d) + discarded(%d)",
				jobs, executed, wantAttempts, discarded)
		}
		if jobs == 1 && discarded != 0 {
			t.Errorf("sequential path did speculative work: discarded = %d", discarded)
		}
	}
}

func TestCollectExhaustsBudget(t *testing.T) {
	for _, jobs := range testPoolJobs() {
		p := NewPool(jobs, nil)
		out, attempts, err := Collect(p, 6, 5, "test", func(tc *Trial) (int, bool, error) {
			return tc.Index, tc.Index%4 == 0, nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if attempts != 6 {
			t.Errorf("jobs=%d: attempts = %d, want the full budget 6", jobs, attempts)
		}
		if len(out) != 2 || out[0] != 0 || out[1] != 4 {
			t.Errorf("jobs=%d: out = %v, want [0 4]", jobs, out)
		}
	}
}

func TestCollectErrorAborts(t *testing.T) {
	boom := errors.New("trial 5 exploded")
	for _, jobs := range testPoolJobs() {
		p := NewPool(jobs, nil)
		out, attempts, err := Collect(p, 20, 3, "test", func(tc *Trial) (int, bool, error) {
			if tc.Index == 5 {
				return 0, false, boom
			}
			return tc.Index, tc.Index == 8, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("jobs=%d: err = %v, want %v", jobs, err, boom)
		}
		if attempts != 6 {
			t.Errorf("jobs=%d: attempts = %d, want 6 (abort at trial 5)", jobs, attempts)
		}
		if len(out) != 0 {
			t.Errorf("jobs=%d: out = %v, want empty", jobs, out)
		}
	}
}

func TestCollectDegenerate(t *testing.T) {
	p := NewPool(4, nil)
	called := false
	fn := func(tc *Trial) (int, bool, error) { called = true; return 0, true, nil }
	if out, n, err := Collect(p, 0, 3, "test", fn); out != nil || n != 0 || err != nil || called {
		t.Errorf("Collect(max=0) = %v, %d, %v (called=%v)", out, n, err, called)
	}
	if out, n, err := Collect(p, 3, 0, "test", fn); out != nil || n != 0 || err != nil || called {
		t.Errorf("Collect(need=0) = %v, %d, %v (called=%v)", out, n, err, called)
	}
}

func TestMapOrderAndAbort(t *testing.T) {
	for _, jobs := range testPoolJobs() {
		p := NewPool(jobs, nil)
		out, err := Map(p, 7, "test", func(tc *Trial) (int, error) {
			return tc.Index * tc.Index, nil
		})
		if err != nil || len(out) != 7 {
			t.Fatalf("jobs=%d: Map = %v, %v", jobs, out, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Errorf("jobs=%d: out[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
		boom := errors.New("map failure")
		_, err = Map(p, 7, "test", func(tc *Trial) (int, error) {
			if tc.Index == 3 {
				return 0, boom
			}
			return tc.Index, nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("jobs=%d: Map error = %v, want %v", jobs, err, boom)
		}
	}
}

func TestFirstIndexSemantics(t *testing.T) {
	for _, jobs := range testPoolJobs() {
		p := NewPool(jobs, nil)
		v, idx, err := First(p, 20, "test", func(tc *Trial) (string, bool, error) {
			return fmt.Sprintf("trial-%d", tc.Index), tc.Index == 7, nil
		})
		if err != nil || idx != 7 || v != "trial-7" {
			t.Errorf("jobs=%d: First = %q, %d, %v; want trial-7, 7", jobs, v, idx, err)
		}
		_, idx, err = First(p, 5, "test", func(tc *Trial) (string, bool, error) {
			return "", false, nil
		})
		if err != nil || idx != -1 {
			t.Errorf("jobs=%d: First(no match) idx = %d, err = %v; want -1, nil", jobs, idx, err)
		}
	}
}

// TestCollectSurvivesPanickingTrial is the graceful-degradation regression
// test: a trial whose every attempt panics must not abort the run or
// swallow any other trial's result — it is simply rejected, and the
// degradation is visible in the merged telemetry, identically for every
// worker count.
func TestCollectSurvivesPanickingTrial(t *testing.T) {
	const (
		max    = 12
		need   = 11
		victim = 4
	)
	for _, jobs := range testPoolJobs() {
		sink := &obs.Sink{Metrics: obs.NewRegistry()}
		p := NewPool(jobs, sink)
		out, attempts, err := Collect(p, max, need, "test", func(tc *Trial) (int, bool, error) {
			if tc.Index == victim {
				panic(fmt.Sprintf("trial %d attempt %d exploded", tc.Index, tc.Attempt))
			}
			return tc.Index, true, nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: err = %v, want nil (degraded trial is not fatal)", jobs, err)
		}
		if attempts != max {
			t.Errorf("jobs=%d: attempts = %d, want %d", jobs, attempts, max)
		}
		want := make([]int, 0, max-1)
		for i := 0; i < max; i++ {
			if i != victim {
				want = append(want, i)
			}
		}
		if len(out) != len(want) {
			t.Fatalf("jobs=%d: out = %v, want every trial but %d: %v", jobs, out, victim, want)
		}
		for i := range out {
			if out[i] != want[i] {
				t.Errorf("jobs=%d: out[%d] = %d, want %d", jobs, i, out[i], want[i])
			}
		}
		snap := sink.Metrics.Snapshot()
		wantAttempts := uint64(faultinj.DefaultRetries + 1)
		if got := snap.Counter("harness.pool.panics"); got != wantAttempts {
			t.Errorf("jobs=%d: pool.panics = %d, want %d", jobs, got, wantAttempts)
		}
		if got := snap.Counter("harness.pool.retries"); got != wantAttempts-1 {
			t.Errorf("jobs=%d: pool.retries = %d, want %d", jobs, got, wantAttempts-1)
		}
		if got := snap.Counter("harness.pool.degraded"); got != 1 {
			t.Errorf("jobs=%d: pool.degraded = %d, want 1", jobs, got)
		}
	}
}

// TestRetryRecoversTransientPanic pins the retry contract: an attempt-0
// panic that clears on the retry yields the trial's value as if nothing
// happened, costing one retry and zero degradations.
func TestRetryRecoversTransientPanic(t *testing.T) {
	for _, jobs := range testPoolJobs() {
		sink := &obs.Sink{Metrics: obs.NewRegistry()}
		p := NewPool(jobs, sink)
		out, _, err := Collect(p, 5, 5, "test", func(tc *Trial) (int, bool, error) {
			if tc.Index == 2 && tc.Attempt == 0 {
				panic("transient")
			}
			return tc.Index, true, nil
		})
		if err != nil || len(out) != 5 {
			t.Fatalf("jobs=%d: Collect = %v, %v; want all 5 trials", jobs, out, err)
		}
		for i, v := range out {
			if v != i {
				t.Errorf("jobs=%d: out[%d] = %d, want %d", jobs, i, v, i)
			}
		}
		snap := sink.Metrics.Snapshot()
		if got := snap.Counter("harness.pool.retries"); got != 1 {
			t.Errorf("jobs=%d: pool.retries = %d, want 1", jobs, got)
		}
		if got := snap.Counter("harness.pool.degraded"); got != 0 {
			t.Errorf("jobs=%d: pool.degraded = %d, want 0", jobs, got)
		}
	}
}

// TestMapDegradedIsHardError: Map callers index results positionally, so a
// degraded trial must surface as a *TrialError, not silently go missing.
func TestMapDegradedIsHardError(t *testing.T) {
	for _, jobs := range testPoolJobs() {
		p := NewPool(jobs, nil)
		_, err := Map(p, 6, "maptest", func(tc *Trial) (int, error) {
			if tc.Index == 3 {
				panic("positional trial down")
			}
			return tc.Index, nil
		})
		var te *TrialError
		if !errors.As(err, &te) {
			t.Fatalf("jobs=%d: Map error = %v, want *TrialError", jobs, err)
		}
		if te.Trial != 3 || te.Label != "maptest" || te.Attempts != faultinj.DefaultRetries+1 {
			t.Errorf("jobs=%d: TrialError = %+v, want trial 3 of maptest after %d attempts",
				jobs, te, faultinj.DefaultRetries+1)
		}
	}
}

// TestWithFaultsInjectedPanicDeterminism: armed with a panic layer, the
// pool schedules crashes from the derived plan — which trials degrade, the
// surviving values, and every faultinj/pool counter must be identical for
// all worker counts and across repeated runs.
func TestWithFaultsInjectedPanicDeterminism(t *testing.T) {
	spec, err := faultinj.ParseSpec("panic=0.3,retries=1,seed=99")
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		vals     []int
		attempts int
		metrics  string
	}
	var want *outcome
	for _, jobs := range testPoolJobs() {
		for rep := 0; rep < 2; rep++ {
			sink := &obs.Sink{Metrics: obs.NewRegistry()}
			p := NewPool(jobs, sink).WithFaults(spec, 7)
			out, attempts, err := Collect(p, 40, 40, "faulttest", func(tc *Trial) (int, bool, error) {
				return tc.Index, true, nil
			})
			if err != nil {
				t.Fatalf("jobs=%d rep=%d: %v", jobs, rep, err)
			}
			snap := sink.Metrics.Snapshot()
			got := &outcome{vals: out, attempts: attempts}
			for _, c := range []string{
				"harness.pool.panics", "harness.pool.retries", "harness.pool.degraded",
				"faultinj.injected.panic", "faultinj.injected",
			} {
				got.metrics += fmt.Sprintf("%s=%d ", c, snap.Counter(c))
			}
			if want == nil {
				want = got
				if snap.Counter("harness.pool.panics") == 0 {
					t.Fatal("panic layer at rate 0.3 never fired over 40 trials")
				}
				if len(out) == 40 {
					t.Log("no trial degraded (retry budget absorbed every panic)")
				}
				continue
			}
			if got.attempts != want.attempts || got.metrics != want.metrics ||
				fmt.Sprint(got.vals) != fmt.Sprint(want.vals) {
				t.Errorf("jobs=%d rep=%d: outcome diverged\n got: %v %d %s\nwant: %v %d %s",
					jobs, rep, got.vals, got.attempts, got.metrics,
					want.vals, want.attempts, want.metrics)
			}
		}
	}
}
