package harness

import (
	"errors"
	"fmt"
	"testing"

	"stmdiag/internal/obs"
)

func testPoolJobs() []int { return []int{1, 2, 4, 9} }

func TestTrialSeedProperties(t *testing.T) {
	if TrialSeed(0, "sort/fail", 3) != TrialSeed(0, "sort/fail", 3) {
		t.Error("TrialSeed not deterministic")
	}
	seen := make(map[int64]string)
	for _, base := range []int64{0, 1, 12345} {
		for _, stream := range []string{"sort/fail", "sort/succ", "FFT/conf2-fail"} {
			for trial := 0; trial < 64; trial++ {
				s := TrialSeed(base, stream, trial)
				if s < 0 {
					t.Fatalf("TrialSeed(%d, %q, %d) = %d < 0", base, stream, trial, s)
				}
				key := fmt.Sprintf("%d/%s/%d", base, stream, trial)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: %s and %s both map to %d", prev, key, s)
				}
				seen[s] = key
			}
		}
	}
}

// TestCollectJobsInvariance pins Collect's contract: accepted values,
// attempt counts and merged telemetry are identical for every worker count,
// and exactly the sequential prefix of trials is committed.
func TestCollectJobsInvariance(t *testing.T) {
	const (
		max  = 30
		need = 4
	)
	var wantVals []int
	wantAttempts := 0
	for i := 0; i < max && len(wantVals) < need; i++ {
		if i%3 == 0 {
			wantVals = append(wantVals, i*10)
		}
		wantAttempts = i + 1
	}
	for _, jobs := range testPoolJobs() {
		sink := &obs.Sink{Metrics: obs.NewRegistry()}
		p := NewPool(jobs, sink)
		out, attempts, err := Collect(p, max, need, "test", func(i int, s *obs.Sink) (int, bool, error) {
			s.Counter("test.trials").Inc()
			return i * 10, i%3 == 0, nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if attempts != wantAttempts {
			t.Errorf("jobs=%d: attempts = %d, want %d", jobs, attempts, wantAttempts)
		}
		if len(out) != len(wantVals) {
			t.Fatalf("jobs=%d: out = %v, want %v", jobs, out, wantVals)
		}
		for i := range out {
			if out[i] != wantVals[i] {
				t.Errorf("jobs=%d: out[%d] = %d, want %d", jobs, i, out[i], wantVals[i])
			}
		}
		snap := sink.Metrics.Snapshot()
		if got := snap.Counter("test.trials"); got != uint64(wantAttempts) {
			t.Errorf("jobs=%d: committed trial telemetry = %d, want exactly the sequential prefix %d",
				jobs, got, wantAttempts)
		}
		if got := snap.Counter("harness.pool.committed"); got != uint64(wantAttempts) {
			t.Errorf("jobs=%d: pool.committed = %d, want %d", jobs, got, wantAttempts)
		}
		executed := snap.Counter("harness.pool.trials")
		discarded := snap.Counter("harness.pool.discarded")
		if executed < uint64(wantAttempts) {
			t.Errorf("jobs=%d: pool.trials = %d < attempts %d", jobs, executed, wantAttempts)
		}
		if executed != uint64(wantAttempts)+discarded {
			t.Errorf("jobs=%d: trials(%d) != committed(%d) + discarded(%d)",
				jobs, executed, wantAttempts, discarded)
		}
		if jobs == 1 && discarded != 0 {
			t.Errorf("sequential path did speculative work: discarded = %d", discarded)
		}
	}
}

func TestCollectExhaustsBudget(t *testing.T) {
	for _, jobs := range testPoolJobs() {
		p := NewPool(jobs, nil)
		out, attempts, err := Collect(p, 6, 5, "test", func(i int, _ *obs.Sink) (int, bool, error) {
			return i, i%4 == 0, nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if attempts != 6 {
			t.Errorf("jobs=%d: attempts = %d, want the full budget 6", jobs, attempts)
		}
		if len(out) != 2 || out[0] != 0 || out[1] != 4 {
			t.Errorf("jobs=%d: out = %v, want [0 4]", jobs, out)
		}
	}
}

func TestCollectErrorAborts(t *testing.T) {
	boom := errors.New("trial 5 exploded")
	for _, jobs := range testPoolJobs() {
		p := NewPool(jobs, nil)
		out, attempts, err := Collect(p, 20, 3, "test", func(i int, _ *obs.Sink) (int, bool, error) {
			if i == 5 {
				return 0, false, boom
			}
			return i, i == 8, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("jobs=%d: err = %v, want %v", jobs, err, boom)
		}
		if attempts != 6 {
			t.Errorf("jobs=%d: attempts = %d, want 6 (abort at trial 5)", jobs, attempts)
		}
		if len(out) != 0 {
			t.Errorf("jobs=%d: out = %v, want empty", jobs, out)
		}
	}
}

func TestCollectDegenerate(t *testing.T) {
	p := NewPool(4, nil)
	called := false
	fn := func(i int, _ *obs.Sink) (int, bool, error) { called = true; return 0, true, nil }
	if out, n, err := Collect(p, 0, 3, "test", fn); out != nil || n != 0 || err != nil || called {
		t.Errorf("Collect(max=0) = %v, %d, %v (called=%v)", out, n, err, called)
	}
	if out, n, err := Collect(p, 3, 0, "test", fn); out != nil || n != 0 || err != nil || called {
		t.Errorf("Collect(need=0) = %v, %d, %v (called=%v)", out, n, err, called)
	}
}

func TestMapOrderAndAbort(t *testing.T) {
	for _, jobs := range testPoolJobs() {
		p := NewPool(jobs, nil)
		out, err := Map(p, 7, "test", func(i int, _ *obs.Sink) (int, error) {
			return i * i, nil
		})
		if err != nil || len(out) != 7 {
			t.Fatalf("jobs=%d: Map = %v, %v", jobs, out, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Errorf("jobs=%d: out[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
		boom := errors.New("map failure")
		_, err = Map(p, 7, "test", func(i int, _ *obs.Sink) (int, error) {
			if i == 3 {
				return 0, boom
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("jobs=%d: Map error = %v, want %v", jobs, err, boom)
		}
	}
}

func TestFirstIndexSemantics(t *testing.T) {
	for _, jobs := range testPoolJobs() {
		p := NewPool(jobs, nil)
		v, idx, err := First(p, 20, "test", func(i int, _ *obs.Sink) (string, bool, error) {
			return fmt.Sprintf("trial-%d", i), i == 7, nil
		})
		if err != nil || idx != 7 || v != "trial-7" {
			t.Errorf("jobs=%d: First = %q, %d, %v; want trial-7, 7", jobs, v, idx, err)
		}
		_, idx, err = First(p, 5, "test", func(i int, _ *obs.Sink) (string, bool, error) {
			return "", false, nil
		})
		if err != nil || idx != -1 {
			t.Errorf("jobs=%d: First(no match) idx = %d, err = %v; want -1, nil", jobs, idx, err)
		}
	}
}
