package harness

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden table outputs under testdata/golden")

// goldenConfig is a reduced but fully deterministic experiment
// configuration: small run counts keep the suite fast, and a fixed Jobs
// value exercises the parallel pool path (the output is identical for any
// Jobs value — TestTablesJobsInvariance locks that separately).
func goldenConfig() Config {
	return Config{
		FailRuns:     4,
		SuccRuns:     4,
		CBIRuns:      40,
		OverheadRuns: 2,
		MaxAttempts:  200,
		Seed:         0,
		Jobs:         2,
	}
}

// TestGoldenTables locks the byte-exact output of every paper table against
// checked-in golden files. Regenerate after an intended output change with
//
//	go test ./internal/harness -run TestGoldenTables -update
func TestGoldenTables(t *testing.T) {
	for n := 1; n <= NumTables; n++ {
		t.Run(fmt.Sprintf("table%d", n), func(t *testing.T) {
			out, err := RenderTable(n, goldenConfig())
			if err != nil {
				t.Fatalf("RenderTable(%d): %v", n, err)
			}
			path := filepath.Join("testdata", "golden", fmt.Sprintf("table%d.txt", n))
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with `go test ./internal/harness -update`): %v", err)
			}
			if string(want) != out {
				t.Errorf("table %d drifted from golden output.\n%s\nregenerate with -update if the change is intended",
					n, firstDiff(string(want), out))
			}
		})
	}
}

// firstDiff locates the first differing line for a readable failure report.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("first difference at line %d:\n  golden: %q\n  got:    %q", i+1, w, g)
		}
	}
	return "outputs differ only in length"
}
