package harness

import (
	"strings"
	"testing"

	"stmdiag/internal/synth"
)

func corpusTestConfig() Config {
	return Config{
		FailRuns:     4,
		SuccRuns:     4,
		CBIRuns:      10,
		OverheadRuns: 1,
		MaxAttempts:  200,
		Seed:         0,
		Jobs:         1,
	}
}

// TestCorpusProgramShortDistance: at propagation distance 2 the root cause
// sits well inside the 16-entry record, so every bug class must be
// diagnosed with the ground-truth root cause ranked by every ranker — the
// anchor the Table 9 distance sweep degrades from.
func TestCorpusProgramShortDistance(t *testing.T) {
	cfg := corpusTestConfig().withDefaults()
	for _, class := range synth.BugClasses() {
		out, err := corpusProgram(class, 2, 0, cfg, nil)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if !out.diagnosed {
			t.Fatalf("%s: profile collection starved at distance 2", class)
		}
		for r, rank := range out.ranks {
			if rank < 1 || rank > 5 {
				t.Errorf("%s: ranker %d ranked the root cause %d, want top-5", class, r, rank)
			}
		}
	}
}

// TestCorpusProgramLongDistanceEvicts: at distance 20 the root cause has
// been pushed out of the 16-entry record before the failure site fires, so
// no ranker can place it — rank 0 (absent) is the only honest answer.
func TestCorpusProgramLongDistanceEvicts(t *testing.T) {
	cfg := corpusTestConfig().withDefaults()
	for _, class := range synth.BugClasses() {
		out, err := corpusProgram(class, 20, 0, cfg, nil)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if !out.diagnosed {
			t.Fatalf("%s: profile collection starved at distance 20", class)
		}
		for r, rank := range out.ranks {
			if rank != 0 {
				t.Errorf("%s: ranker %d ranked the evicted root cause %d, want 0", class, r, rank)
			}
		}
	}
}

// TestTable9RespectsPerCell: the -corpus-n knob scales the corpus and the
// header reports the real program count.
func TestTable9RespectsPerCell(t *testing.T) {
	cfg := corpusTestConfig()
	cfg.CorpusPerCell = 1
	out, err := Table9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := len(synth.BugClasses()) * len(corpusDistances)
	if !strings.Contains(out, "bug corpus (16 programs)") {
		t.Errorf("header does not report %d programs:\n%s", want, out)
	}
	if got := strings.Count(out, "/ 1 |"); got != want {
		t.Errorf("rendered %d single-program cells, want %d", got, want)
	}
}
