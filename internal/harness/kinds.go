package harness

import (
	"encoding/json"
	"fmt"
	"sync"

	"stmdiag/internal/apps"
	"stmdiag/internal/cbi"
	"stmdiag/internal/core"
	"stmdiag/internal/isa"
	"stmdiag/internal/kernel"
	"stmdiag/internal/pmu"
	"stmdiag/internal/vm"
)

// This file registers the portable trial kinds: the closure bodies of
// seq.go, conc.go and tables.go re-expressed as (name, JSON params) pairs
// so they can execute in any process and resume from the artifact store.
// Each kind must reproduce its closure's behavior exactly — same VM
// options, same seed derivation, same accept/reject/error decisions — or
// the cross-executor golden-table identity breaks.

func init() {
	registerKind("fail-profile", failProfileKind)
	registerKind("succ-profile", succProfileKind)
	registerKind("cbi-run", cbiRunKind)
	registerKind("mean-cycles", meanCyclesKind)
	registerKind("conc-profile", concProfileKind)
}

// kindApp resolves a benchmark by name. The Table 3 micro-benchmark lives
// outside the main registry, so it gets an explicit fallback.
func kindApp(name string) (*apps.App, error) {
	if a := apps.ByName(name); a != nil {
		return a, nil
	}
	if name == apps.RWWMicro.Name {
		return apps.RWWMicro, nil
	}
	return nil, fmt.Errorf("harness: unknown app %q", name)
}

// progCache memoizes uninstrumented program builds per app; programs are
// immutable once built and already shared across concurrent trials.
var progCache sync.Map // app name -> *isa.Program

func cachedProgram(a *apps.App) *isa.Program {
	if v, ok := progCache.Load(a.Name); ok {
		return v.(*isa.Program)
	}
	v, _ := progCache.LoadOrStore(a.Name, a.Program())
	return v.(*isa.Program)
}

// buildCache memoizes instrumented builds keyed by (app, options). Builds
// are deterministic, so a cached instance is interchangeable with a fresh
// one; caching keeps per-trial instrumentation off the worker hot path.
var buildCache sync.Map // app name + "\x00" + options JSON -> *core.Instrumented

func cachedBuild(a *apps.App, opts core.Options) (*core.Instrumented, error) {
	kb, err := json.Marshal(opts)
	if err != nil {
		return nil, fmt.Errorf("harness: encode build options: %w", err)
	}
	key := a.Name + "\x00" + string(kb)
	if v, ok := buildCache.Load(key); ok {
		return v.(*core.Instrumented), nil
	}
	inst, err := core.EnhanceLogging(cachedProgram(a), opts)
	if err != nil {
		return nil, err
	}
	v, _ := buildCache.LoadOrStore(key, inst)
	return v.(*core.Instrumented), nil
}

// failProfileParams parameterizes one failure-run capture trial.
type failProfileParams struct {
	App     string       `json:"app"`
	Build   core.Options `json:"build"`
	Seed    int64        `json:"seed"`
	LBRSize int          `json:"lbrSize,omitempty"`
}

// failProfileKind runs the failure workload on an instrumented build and
// extracts the failure-run profile. A run that did not fail (or errored)
// is rejected, not fatal — concurrency benchmarks fail probabilistically.
func failProfileKind(raw json.RawMessage, stream string, tc *Trial) (any, bool, error) {
	var P failProfileParams
	if err := json.Unmarshal(raw, &P); err != nil {
		return nil, false, err
	}
	a, err := kindApp(P.App)
	if err != nil {
		return nil, false, err
	}
	inst, err := cachedBuild(a, P.Build)
	if err != nil {
		return nil, false, err
	}
	prof, err := failureProfileOf(a, inst, TrialSeed(P.Seed, stream, tc.Index), Config{LBRSize: P.LBRSize}, tc)
	if err != nil {
		return vm.Profile{}, false, nil
	}
	return prof, true, nil
}

// succProfileParams parameterizes one success-run capture trial.
type succProfileParams struct {
	App     string       `json:"app"`
	Build   core.Options `json:"build"`
	Seed    int64        `json:"seed"`
	LBRSize int          `json:"lbrSize,omitempty"`
	// Strict makes a run error abort the collection (the Table 6 success
	// path); tolerant mode rejects instead (the Table 8 robustness path).
	Strict bool `json:"strict,omitempty"`
}

// succProfileKind runs the success workload and extracts the comparable
// success profile, falling back to the same-site failure snapshot for
// unconditional sites.
func succProfileKind(raw json.RawMessage, stream string, tc *Trial) (any, bool, error) {
	var P succProfileParams
	if err := json.Unmarshal(raw, &P); err != nil {
		return nil, false, err
	}
	a, err := kindApp(P.App)
	if err != nil {
		return nil, false, err
	}
	inst, err := cachedBuild(a, P.Build)
	if err != nil {
		return nil, false, err
	}
	res, err := runApp(inst, a.Succeed, TrialSeed(P.Seed, stream, tc.Index), Config{LBRSize: P.LBRSize}, tc)
	if err != nil {
		if P.Strict {
			return vm.Profile{}, false, err
		}
		return vm.Profile{}, false, nil
	}
	if a.Succeed.FailedRun(res) {
		return vm.Profile{}, false, nil
	}
	prof, ok := core.SuccessRunProfile(res)
	if !ok {
		// Unconditional site: the same-site snapshot from a successful run
		// is the comparable success profile.
		if prof, ok = core.FailureRunProfile(res); !ok {
			return vm.Profile{}, false, nil
		}
	}
	return prof, true, nil
}

// cbiRunParams parameterizes one sampled CBI run.
type cbiRunParams struct {
	App      string  `json:"app"`
	WantFail bool    `json:"wantFail"`
	Rate     float64 `json:"rate"`
	Seed     int64   `json:"seed"`
}

// cbiRunKind executes one CBI-instrumented run on the uninstrumented
// program and returns its sampled predicate observations.
func cbiRunKind(raw json.RawMessage, stream string, tc *Trial) (any, bool, error) {
	var P cbiRunParams
	if err := json.Unmarshal(raw, &P); err != nil {
		return nil, false, err
	}
	a, err := kindApp(P.App)
	if err != nil {
		return nil, false, err
	}
	w := a.Fail
	if !P.WantFail {
		w = a.Succeed
	}
	seed := TrialSeed(P.Seed, stream, tc.Index)
	opts := w.VMOptions(seed)
	opts.Obs = tc.Sink
	opts.Faults = tc.Faults
	m, err := vm.New(cachedProgram(a), opts)
	if err != nil {
		return cbi.RunObs{}, false, err
	}
	o := cbi.NewObserver(P.Rate, seed+31337)
	o.Attach(m)
	res, err := m.Run()
	if err != nil {
		return cbi.RunObs{}, false, err
	}
	if w.FailedRun(res) != P.WantFail {
		return cbi.RunObs{}, false, nil
	}
	return o.Finish(P.WantFail), true, nil
}

// meanCyclesParams parameterizes one overhead-measurement run.
type meanCyclesParams struct {
	App string `json:"app"`
	// Build selects the instrumented variant; nil runs the plain program
	// (the overhead baseline and the CBI column).
	Build   *core.Options `json:"build,omitempty"`
	CBIHook bool          `json:"cbiHook,omitempty"`
	Rate    float64       `json:"rate,omitempty"`
	Seed    int64         `json:"seed"`
	LBRSize int           `json:"lbrSize,omitempty"`
}

// meanCyclesKind runs the success workload once and returns its cycle
// count. Errors are hard (Map semantics: overhead averages index results
// positionally).
func meanCyclesKind(raw json.RawMessage, stream string, tc *Trial) (any, bool, error) {
	var P meanCyclesParams
	if err := json.Unmarshal(raw, &P); err != nil {
		return nil, false, err
	}
	a, err := kindApp(P.App)
	if err != nil {
		return nil, false, err
	}
	seed := TrialSeed(P.Seed, stream, tc.Index)
	p := cachedProgram(a)
	var segv []int64
	if P.Build != nil {
		inst, err := cachedBuild(a, *P.Build)
		if err != nil {
			return nil, false, err
		}
		p, segv = inst.Prog, inst.SegvIoctls
	}
	opts := a.Succeed.VMOptions(seed)
	opts.LBRSize = P.LBRSize
	opts.Obs = tc.Sink
	opts.Faults = tc.Faults
	if segv != nil {
		opts.SegvIoctls = segv
	}
	opts.Driver = kernel.Driver{}
	m, err := vm.New(p, opts)
	if err != nil {
		return uint64(0), false, err
	}
	if P.CBIHook {
		cbi.NewObserver(P.Rate, seed+777).Attach(m)
	}
	res, err := m.Run()
	if err != nil {
		return uint64(0), false, err
	}
	return res.Cycles, true, nil
}

// concProfileParams parameterizes one LCR-instrumented concurrency trial.
type concProfileParams struct {
	App      string        `json:"app"`
	Build    core.Options  `json:"build"`
	Conf     pmu.LCRConfig `json:"conf"`
	WantFail bool          `json:"wantFail"`
	Seed     int64         `json:"seed"`
	LCRSize  int           `json:"lcrSize,omitempty"`
}

// concProfileKind runs one interleaving trial under an LCR configuration
// and extracts the requested profile. A run with the wrong outcome is
// rejected; a VM error is fatal.
func concProfileKind(raw json.RawMessage, stream string, tc *Trial) (any, bool, error) {
	var P concProfileParams
	if err := json.Unmarshal(raw, &P); err != nil {
		return nil, false, err
	}
	a, err := kindApp(P.App)
	if err != nil {
		return nil, false, err
	}
	inst, err := cachedBuild(a, P.Build)
	if err != nil {
		return nil, false, err
	}
	w := a.Fail
	if !P.WantFail {
		w = a.Succeed
	}
	res, err := runConc(a, inst, w, TrialSeed(P.Seed, stream, tc.Index), P.Conf, Config{LCRSize: P.LCRSize}, tc)
	if err != nil {
		return vm.Profile{}, false, err
	}
	if w.FailedRun(res) != P.WantFail {
		return vm.Profile{}, false, nil
	}
	var prof vm.Profile
	var ok bool
	if P.WantFail {
		prof, ok = core.FailureRunProfile(res)
	} else {
		if prof, ok = core.SuccessRunProfile(res); !ok {
			// Unconditional site: use the same-site snapshot.
			prof, ok = core.FailureRunProfile(res)
		}
	}
	return prof, ok, nil
}
