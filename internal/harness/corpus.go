package harness

import (
	"fmt"
	"strings"

	"stmdiag/internal/core"
	"stmdiag/internal/kernel"
	"stmdiag/internal/pmu"
	"stmdiag/internal/synth"
	"stmdiag/internal/vm"
)

// Corpus geometry. Distances sweep the propagation knob across the
// 16-entry record depth: 2 and 8 sit comfortably inside the window, 14
// probes its edge (sequential roots still rank; concurrent roots are
// already evicted by the extra coherence traffic), and 20 pushes the root
// cause out of the ring for every class — the regime where any
// short-record ranker must degrade. 13 programs per (class × distance)
// cell puts the default corpus at 4×4×13 = 208 generated programs.
var corpusDistances = []int{2, 8, 14, 20}

// DefaultCorpusPerCell is the Table 9 per-cell program count.
const DefaultCorpusPerCell = 13

// corpusOutcome is one generated program's bake-off result: the manifest
// root cause's rank under each ranker (core.Rankers() order; 0 = missed).
type corpusOutcome struct {
	diagnosed bool
	ranks     []int
}

// corpusProgram runs the full diagnosis loop over one generated buggy
// program: instrument, collect failure-run profiles, redeploy reactively,
// collect success-run profiles, then rank once per ranker. Every seed
// derives from the (class, distance, program) coordinates, never from
// worker identity, so Table 9 is byte-identical for any Jobs value. A
// program whose collection starves (the race never landing within
// MaxAttempts) counts as undiagnosed for every ranker — an honest,
// deterministic miss.
func corpusProgram(class synth.BugClass, dist, idx int, cfg Config, tc *Trial) (corpusOutcome, error) {
	stream := fmt.Sprintf("corpus/%s/d%d/p%d", class, dist, idx)
	miss := corpusOutcome{ranks: make([]int, len(core.Rankers()))}

	bp, err := synth.GenerateBug(fmt.Sprintf("%s-d%d-p%d", class, dist, idx), synth.BugConfig{
		Seed:     TrialSeed(cfg.Seed, stream+"/gen", 0),
		Class:    class,
		Distance: dist,
	})
	if err != nil {
		return miss, err
	}
	mode := core.ModeLBR
	opts := core.Options{LBR: true, Toggling: true}
	if bp.Concurrent {
		mode = core.ModeLCR
		opts = core.Options{LCR: true, Toggling: true}
	}
	inst, err := core.EnhanceLogging(bp.Prog, opts)
	if err != nil {
		return miss, err
	}

	run := func(b *core.Instrumented, variant map[string]int64, seed int64) (*vm.Result, error) {
		globals := make(map[string]int64, len(variant)+1)
		for k, v := range variant {
			globals[k] = v
		}
		// The noise global steers the pad branches; deriving it from the
		// run seed varies control flow across runs of the same workload.
		globals[bp.NoiseGlobal] = int64(uint16(uint64(seed) >> 8))
		vopts := vm.Options{
			Seed:       seed,
			Globals:    globals,
			Driver:     kernel.Driver{},
			SegvIoctls: b.SegvIoctls,
		}
		if bp.Concurrent {
			vopts.LCRConfig = pmu.ConfSpaceConsuming
			vopts.LCRSize = cfg.LCRSize
		} else {
			vopts.LBRSize = cfg.LBRSize
		}
		if tc != nil {
			vopts.Obs = tc.Sink
			vopts.Faults = tc.Faults
		}
		return vm.Run(b.Prog, vopts)
	}

	var fail []core.ProfiledRun
	for att := 0; att < cfg.MaxAttempts && len(fail) < cfg.FailRuns; att++ {
		seed := TrialSeed(cfg.Seed, stream+"/fail", att)
		res, err := run(inst, bp.Fail[att%len(bp.Fail)], seed)
		if err != nil {
			return miss, err
		}
		if !res.Failed() {
			continue
		}
		if p, ok := core.FailureRunProfile(res); ok {
			fail = append(fail, core.ProfiledRun{Prog: inst.Prog, Profile: p})
		}
	}
	if len(fail) < cfg.FailRuns {
		return miss, nil
	}

	// Reactive redeployment: pair the failure site with a success site so
	// success runs carry a comparable profile (paper §5.2).
	ropts := opts
	ropts.Scheme = core.SchemeReactive
	ropts.FailurePCs = []int{bp.Manifest.FailPC}
	react, err := core.EnhanceLogging(bp.Prog, ropts)
	if err != nil {
		return miss, err
	}
	var succ []core.ProfiledRun
	for att := 0; att < cfg.MaxAttempts && len(succ) < cfg.SuccRuns; att++ {
		seed := TrialSeed(cfg.Seed, stream+"/succ", att)
		res, err := run(react, bp.Succeed[att%len(bp.Succeed)], seed)
		if err != nil {
			return miss, err
		}
		if res.Failed() {
			continue
		}
		p, ok := core.SuccessRunProfile(res)
		if !ok {
			p, ok = core.FailureRunProfile(res)
		}
		if ok {
			succ = append(succ, core.ProfiledRun{Prog: react.Prog, Profile: p})
		}
	}
	if len(succ) < cfg.SuccRuns {
		return miss, nil
	}

	out := corpusOutcome{diagnosed: true, ranks: make([]int, len(core.Rankers()))}
	man := bp.Manifest
	for i, ranker := range core.Rankers() {
		rep, err := core.DiagnoseWith(mode, ranker, fail, succ)
		if err != nil {
			return miss, err
		}
		if bp.Concurrent {
			out.ranks[i] = rep.RankOfCoherence(func(e core.Event) bool {
				return e.Kind == core.EventCoherence &&
					e.Access == man.FPEKind && e.State == man.FPEState &&
					e.File == man.RootLoc.File && e.Line == man.RootLoc.Line
			})
		} else {
			out.ranks[i] = rep.RankOfBranchEdge(man.RootBranch, man.BuggyEdge)
		}
	}
	return out, nil
}

// corpusCell aggregates one (class × distance) cell.
type corpusCell struct {
	class      synth.BugClass
	dist       int
	programs   int
	diagnosed  int
	top1, top5 []int
}

// Table9 generates the bug corpus and runs the ranking bake-off: for every
// (class × distance) cell it drives PerCell generated programs through
// each ranker and reports how often the manifest root cause lands at rank
// 1 and within the top 5.
func Table9(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	perCell := cfg.CorpusPerCell
	if perCell <= 0 {
		perCell = DefaultCorpusPerCell
	}
	classes := synth.BugClasses()
	rankers := core.Rankers()
	cells := make([]corpusCell, 0, len(classes)*len(corpusDistances))
	for _, class := range classes {
		for _, d := range corpusDistances {
			cells = append(cells, corpusCell{
				class: class, dist: d, programs: perCell,
				top1: make([]int, len(rankers)),
				top5: make([]int, len(rankers)),
			})
		}
	}

	pool := cfg.pool()
	total := len(cells) * perCell
	outcomes, err := Map(pool, total, "corpus/table9", func(tc *Trial) (corpusOutcome, error) {
		cell := &cells[tc.Index/perCell]
		return corpusProgram(cell.class, cell.dist, tc.Index%perCell, cfg, tc)
	})
	if err != nil {
		return "", err
	}
	for i, o := range outcomes {
		cell := &cells[i/perCell]
		if o.diagnosed {
			cell.diagnosed++
		}
		for r, rank := range o.ranks {
			if rank == 1 {
				cell.top1[r]++
			}
			if rank >= 1 && rank <= 5 {
				cell.top5[r]++
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Table 9: root-cause ranking over the generated bug corpus (%d programs)\n", total)
	fmt.Fprintf(&b, "%d programs per (class x distance) cell, %d+%d runs per program, record depth 16\n",
		perCell, cfg.FailRuns, cfg.SuccRuns)
	fmt.Fprintf(&b, "distance = basic blocks between root cause and failure site; top1/top5 count\n")
	fmt.Fprintf(&b, "programs whose ground-truth root cause ranked first / in the top five\n\n")
	fmt.Fprintf(&b, "%-10s %4s | %5s |", "class", "dist", "diag")
	for _, r := range rankers {
		fmt.Fprintf(&b, " %9s top1 top5 |", r)
	}
	b.WriteString("\n")
	for _, cell := range cells {
		fmt.Fprintf(&b, "%-10s %4d | %2d/%2d |", cell.class, cell.dist, cell.diagnosed, cell.programs)
		for r := range rankers {
			fmt.Fprintf(&b, " %9s %4d %4d |", "", cell.top1[r], cell.top5[r])
		}
		b.WriteString("\n")
	}
	b.WriteString("\n")
	for r, ranker := range rankers {
		t1, t5, diag := 0, 0, 0
		for _, cell := range cells {
			t1 += cell.top1[r]
			t5 += cell.top5[r]
			diag += cell.diagnosed
		}
		fmt.Fprintf(&b, "%-9s: top-1 %d/%d, top-5 %d/%d (%d diagnosed)\n",
			ranker, t1, total, t5, total, diag)
	}
	return b.String(), nil
}
