package harness

import (
	"fmt"
	"runtime"
	"testing"

	"stmdiag/internal/apps"
)

// jobsValues returns the worker counts the invariance tests sweep: the
// strict sequential path, a fixed parallel width, and whatever this
// machine's NumCPU resolves to.
func jobsValues() []int {
	vals := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		vals = append(vals, n)
	}
	return vals
}

// TestTablesJobsInvariance is the pool's core contract: the run-driving
// tables (3, 6, 7) render byte-identically whatever the worker count, and
// repeated renders at the same seed are byte-identical too. Table 8 joins
// the sweep to extend the property to fault-injected trials: its non-zero
// rates exercise every injector plus the retry/degradation machinery, and
// its output too must not depend on the worker count. Table 9 joins it to
// cover the generated-bug corpus: its per-program seeds derive from cell
// coordinates, never worker identity, so the bake-off is jobs-invariant
// too (a reduced per-cell count keeps the sweep fast).
func TestTablesJobsInvariance(t *testing.T) {
	base := Config{
		FailRuns:      3,
		SuccRuns:      3,
		CBIRuns:       20,
		OverheadRuns:  1,
		MaxAttempts:   200,
		Seed:          0,
		CorpusPerCell: 2,
	}
	for _, n := range []int{3, 6, 7, 8, 9} {
		t.Run(fmt.Sprintf("table%d", n), func(t *testing.T) {
			var ref string
			for _, jobs := range jobsValues() {
				cfg := base
				cfg.Jobs = jobs
				out, err := RenderTable(n, cfg)
				if err != nil {
					t.Fatalf("RenderTable(%d) jobs=%d: %v", n, jobs, err)
				}
				if ref == "" {
					ref = out
					// Same seed, same jobs, fresh pool: must reproduce.
					again, err := RenderTable(n, cfg)
					if err != nil {
						t.Fatalf("re-render: %v", err)
					}
					if again != ref {
						t.Fatalf("table %d not reproducible at jobs=%d", n, jobs)
					}
					continue
				}
				if out != ref {
					t.Errorf("table %d differs between jobs=%d and jobs=%d:\n%s",
						n, jobsValues()[0], jobs, firstDiff(ref, out))
				}
			}
		})
	}
}

// TestDiagnosisLatencyJobsInvariance locks the §7.2 latency measurement to
// the same worker-count independence.
func TestDiagnosisLatencyJobsInvariance(t *testing.T) {
	a := apps.ByName("sort")
	if a == nil {
		t.Fatal("benchmark sort missing")
	}
	type result struct{ lbra, cbi int }
	var ref result
	for i, jobs := range jobsValues() {
		cfg := Config{FailRuns: 3, SuccRuns: 3, OverheadRuns: 1, MaxAttempts: 200, Jobs: jobs}
		lbra, cbi, err := DiagnosisLatency(a, 50, cfg)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		got := result{lbra, cbi}
		if i == 0 {
			ref = got
			continue
		}
		if got != ref {
			t.Errorf("jobs=%d: latency %+v, want %+v (jobs=%d)", jobs, got, ref, jobsValues()[0])
		}
	}
}
