package harness

import (
	"reflect"
	"testing"

	"stmdiag/internal/apps"
	"stmdiag/internal/core"
)

// TestDiagnosisProfilesMatchMonolithicCapture pins the fleet capture path
// to the monolithic one: same seed streams, same builds, so the same
// diagnosis — and invariant under the worker count.
func TestDiagnosisProfilesMatchMonolithicCapture(t *testing.T) {
	a := apps.ByName("sort")
	cfg := Config{FailRuns: 3, SuccRuns: 3, Seed: 5, Jobs: 1}
	mode, fail, succ, err := DiagnosisProfiles(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mode != core.ModeLBR {
		t.Errorf("mode = %v, want LBR for a sequential benchmark", mode)
	}
	if len(fail) != 3 || len(succ) != 3 {
		t.Fatalf("profiles: %d fail, %d succ", len(fail), len(succ))
	}
	rep, err := core.Diagnose(mode, fail, succ)
	if err != nil {
		t.Fatal(err)
	}
	want := rep.Render(10)

	cfg.Jobs = 4
	mode4, fail4, succ4, err := DiagnosisProfiles(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mode4 != mode || !reflect.DeepEqual(profilesOf(fail4), profilesOf(fail)) ||
		!reflect.DeepEqual(profilesOf(succ4), profilesOf(succ)) {
		t.Error("profiles differ between -jobs 1 and -jobs 4")
	}
	rep4, err := core.Diagnose(mode4, fail4, succ4)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep4.Render(10); got != want {
		t.Errorf("diagnosis differs across -jobs:\n%s\nvs\n%s", got, want)
	}
}

func profilesOf(runs []core.ProfiledRun) (out []interface{}) {
	for _, r := range runs {
		out = append(out, r.Profile)
	}
	return
}

func TestDiagnosisProfilesConcurrentMode(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent capture is attempt-heavy")
	}
	a := apps.Concurrent()[0]
	mode, fail, succ, err := DiagnosisProfiles(a, Config{FailRuns: 2, SuccRuns: 2, Seed: 1, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mode != core.ModeLCR {
		t.Errorf("mode = %v, want LCR for a concurrency benchmark", mode)
	}
	if len(fail) != 2 || len(succ) != 2 {
		t.Errorf("profiles: %d fail, %d succ", len(fail), len(succ))
	}
}
