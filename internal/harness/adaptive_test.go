package harness

import (
	"testing"

	"stmdiag/internal/apps"
)

func TestAdaptiveFindsRootCause(t *testing.T) {
	// sort's root-cause branch executes (with contrasting outcomes) in both
	// run classes, so the adaptive expansion converges once the layer
	// containing it is instrumented; dense per-layer sampling means far
	// fewer runs than vanilla CBI's 1000+1000.
	a := apps.ByName("sort")
	res, err := RunAdaptive(a, 1.0, 10, 40, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sort adaptive: %+v", res)
	if !res.Found {
		t.Fatal("adaptive CBI did not converge on sort")
	}
	if res.RunsUsed >= 2000 {
		t.Errorf("adaptive used %d runs, should undercut vanilla CBI's 2000", res.RunsUsed)
	}
	if res.EvaluatedFraction <= 0 || res.EvaluatedFraction > 1 {
		t.Errorf("EvaluatedFraction = %v", res.EvaluatedFraction)
	}
}

func TestAdaptiveIterationGrowth(t *testing.T) {
	// ln's root cause sits many branch layers before the failure site, so
	// adaptive needs more expansion iterations than sort — the
	// iteration-count pathology paper §8 describes.
	sortRes, err := RunAdaptive(apps.ByName("sort"), 1.0, 10, 40, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lnRes, err := RunAdaptive(apps.ByName("ln"), 1.0, 10, 40, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sort: %d iters (%.0f%% predicates); ln: %d iters (%.0f%% predicates)",
		sortRes.Iterations, 100*sortRes.EvaluatedFraction,
		lnRes.Iterations, 100*lnRes.EvaluatedFraction)
	if !lnRes.Found {
		t.Fatal("adaptive CBI did not converge on ln")
	}
	if lnRes.Iterations <= sortRes.Iterations {
		t.Errorf("ln (deep root cause) took %d iters, sort took %d; want ln > sort",
			lnRes.Iterations, sortRes.Iterations)
	}
}

func TestAdaptiveCannotFixContextOnePredicates(t *testing.T) {
	// Apache2's failing region executes only in failing runs; no amount of
	// adaptive expansion gives its predicates Increase > 0.
	res, err := RunAdaptive(apps.ByName("Apache2"), 1.0, 6, 12, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("adaptive CBI claimed the Apache2 root cause; Context=1 predicates cannot be ranked")
	}
	if res.Iterations != 12 {
		t.Errorf("iterations = %d, want the full budget", res.Iterations)
	}
}
