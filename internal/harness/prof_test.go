package harness

import (
	"reflect"
	"strings"
	"testing"

	"stmdiag/internal/apps"
	"stmdiag/internal/obs"
	"stmdiag/internal/prof"
)

// profConfig is a small sequential-pipeline configuration for profiler
// tests; per-test fields (Jobs, Obs) are filled in by the caller.
func profConfig() Config {
	return Config{
		FailRuns:     3,
		SuccRuns:     3,
		CBIRuns:      20,
		OverheadRuns: 2,
		MaxAttempts:  200,
	}
}

// profCounters filters a snapshot down to the deterministic profiler
// families (prof.*), dropping the wall-clock pool/worker instruments that
// are jobs-variant by design.
func profCounters(s obs.Snapshot) map[string]uint64 {
	out := map[string]uint64{}
	for name, v := range s.Counters {
		if strings.HasPrefix(name, "prof.") {
			out[name] = v
		}
	}
	return out
}

// TestProfJobsInvariance is the profiler's core determinism contract: every
// deterministic counter family (per-opcode, per-phase, per-app, alloc
// sites) and the rendered report derived from them must be byte-identical
// for every -jobs value, because opcode/alloc counters ride per-trial sinks
// merged at commit in trial order and phase rollups are cycle-clock deltas
// between fan-out barriers.
func TestProfJobsInvariance(t *testing.T) {
	app := apps.ByName("sort")
	var wantCounters map[string]uint64
	var wantJSON []byte
	for _, jobs := range testPoolJobs() {
		cfg := profConfig()
		cfg.Jobs = jobs
		cfg.Obs = &obs.Sink{Metrics: obs.NewRegistry(), Profiling: true}
		if _, err := RunSequential(app, cfg); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		snap := cfg.Obs.Metrics.Snapshot()
		got := profCounters(snap)

		// The deterministic report view: same parse the -profile-report flag
		// and /profilez use, with the wall-clock sections stripped.
		rep := prof.FromSnapshot(snap)
		rep.Workers = nil
		rep.Pool = prof.PoolStats{}
		js, err := rep.JSON()
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}

		if wantCounters == nil {
			wantCounters, wantJSON = got, js
			// Every family the pipeline should touch must be populated.
			if n := len(got); n == 0 {
				t.Fatal("profiling run recorded no prof.* counters")
			}
			sawOp := false
			for name := range got {
				if strings.HasPrefix(name, "prof.op.") {
					sawOp = true
					break
				}
			}
			if !sawOp {
				t.Error("no per-opcode counters recorded")
			}
			for _, name := range []string{
				"prof.phase.capture.cycles",
				"prof.phase.capture.runs",
				"prof.phase.replay.cycles",
				"prof.app.sort.capture.cycles",
				"prof.alloc.pmu.lbr.allocs",
			} {
				if got[name] == 0 {
					t.Errorf("%s = 0, want > 0 (counters: %d families)", name, len(got))
				}
			}
			continue
		}
		if !reflect.DeepEqual(got, wantCounters) {
			t.Errorf("jobs=%d: prof.* counters diverged from jobs=%d", jobs, testPoolJobs()[0])
			for name, v := range got {
				if wantCounters[name] != v {
					t.Errorf("  %s: got %d, want %d", name, v, wantCounters[name])
				}
			}
			for name, v := range wantCounters {
				if _, ok := got[name]; !ok {
					t.Errorf("  %s: missing (want %d)", name, v)
				}
			}
		}
		if string(js) != string(wantJSON) {
			t.Errorf("jobs=%d: deterministic report JSON diverged (%d vs %d bytes)",
				jobs, len(js), len(wantJSON))
		}
	}
}

// TestProfTableNeutrality: arming the profiler must not change a rendered
// table by a single byte — attribution only ever reads machine state, and
// the report rides stderr, never stdout.
func TestProfTableNeutrality(t *testing.T) {
	render := func(profiling bool) string {
		cfg := profConfig()
		cfg.Jobs = 2
		cfg.Obs = &obs.Sink{Metrics: obs.NewRegistry(), Profiling: profiling}
		out, err := RenderTable(3, cfg)
		if err != nil {
			t.Fatalf("profiling=%v: %v", profiling, err)
		}
		return out
	}
	off, on := render(false), render(true)
	if off != on {
		t.Errorf("profiling changed table 3 output:\n--- off ---\n%s\n--- on ---\n%s", off, on)
	}
}

// TestProfWorkerInstrumentsGated: the wall-clock pool instruments only
// materialize when profiling is armed, keeping the default telemetry
// snapshot byte-compatible with earlier releases.
func TestProfWorkerInstrumentsGated(t *testing.T) {
	run := func(profiling bool) obs.Snapshot {
		sink := &obs.Sink{Metrics: obs.NewRegistry(), Profiling: profiling}
		p := NewPool(3, sink)
		if _, _, err := Collect(p, 12, 12, "gate", func(tc *Trial) (int, bool, error) {
			return tc.Index, true, nil
		}); err != nil {
			t.Fatal(err)
		}
		return sink.Metrics.Snapshot()
	}
	plain := run(false)
	for name := range plain.Counters {
		if strings.HasSuffix(name, ".busy_ns") || strings.HasSuffix(name, ".idle_ns") ||
			strings.HasSuffix(name, ".stall_ns") {
			t.Errorf("unprofiled run leaked wall-clock counter %s", name)
		}
	}
	if _, ok := plain.Gauges["harness.pool.queue.depth"]; ok {
		t.Error("unprofiled run leaked the queue-depth gauge")
	}
	armed := run(true)
	// Which worker runs how many trials is scheduler-dependent, so assert
	// on the pool-wide total, not any one worker.
	var busy uint64
	for name, v := range armed.Counters {
		if strings.HasSuffix(name, ".busy_ns") {
			busy += v
		}
	}
	if busy == 0 {
		t.Error("profiled run recorded no busy_ns across any worker")
	}
	if _, ok := armed.Gauges["harness.pool.queue.depth"]; !ok {
		t.Error("profiled run missing the queue-depth gauge")
	}
}
