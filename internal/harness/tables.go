package harness

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"stmdiag/internal/apps"
	"stmdiag/internal/cache"
	"stmdiag/internal/cfg"
	"stmdiag/internal/core"
	"stmdiag/internal/faultinj"
	"stmdiag/internal/isa"
	"stmdiag/internal/obs"
	"stmdiag/internal/pmu"
	"stmdiag/internal/source"
	"stmdiag/internal/stats"
	"stmdiag/internal/synth"
	"stmdiag/internal/vm"
)

// NumTables is the highest table RenderTable knows: the paper's Tables 1–7
// plus this reproduction's own Table 8 (diagnosis robustness under
// injected capture faults) and Table 9 (root-cause ranking over the
// generated bug corpus).
const NumTables = 9

// tableOrder fixes the row order of Tables 4–7 to match the paper.
var tableOrder = []string{
	"Apache1", "Apache2", "Apache3", "cp", "Cppcheck1", "Cppcheck2",
	"Cppcheck3", "Lighttpd", "ln", "mv", "paste", "PBZIP1", "PBZIP2",
	"rm", "sort", "Squid1", "Squid2", "tac", "tar1", "tar2",
	"Apache4", "Apache5", "Cherokee", "FFT", "LU",
	"Mozilla-JS1", "Mozilla-JS2", "Mozilla-JS3", "MySQL1", "MySQL2", "PBZIP3",
}

// orderedApps returns registered apps in paper order, filtered by kind.
func orderedApps(concurrent bool) []*apps.App {
	var out []*apps.App
	for _, name := range tableOrder {
		if a := apps.ByName(name); a != nil && a.Class.Concurrent() == concurrent {
			out = append(out, a)
		}
	}
	return out
}

// Table1 demonstrates the LBR filter semantics of paper Table 1: for each
// LBR_SELECT mask it feeds one branch of every class through an LBR and
// reports which classes survive the filter.
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: LBR_SELECT filter masks (IA32_DEBUGCTL id %#x, LBR_SELECT id %#x)\n",
		pmu.MSRDebugCtl, pmu.MSRLBRSelect)
	fmt.Fprintf(&b, "enable value %#x, disable value %#x; * marks masks the system uses (value %#x)\n\n",
		pmu.DebugCtlEnableLBR, pmu.DebugCtlDisableLBR, uint64(pmu.PaperLBRSelect))

	classes := []struct {
		class  isa.BranchClass
		kernel bool
		label  string
	}{
		{isa.BranchCond, true, "ring-0 conditional"},
		{isa.BranchCond, false, "conditional"},
		{isa.BranchRelCall, false, "near relative call"},
		{isa.BranchIndCall, false, "near indirect call"},
		{isa.BranchReturn, false, "near return"},
		{isa.BranchUncondInd, false, "near indirect jump"},
		{isa.BranchUncondRel, false, "near relative jump"},
	}
	masks := []struct {
		mask uint64
		used bool
		name string
	}{
		{pmu.SelCPLEq0, true, "0x001 filter ring-0 branches"},
		{pmu.SelCPLNeq0, false, "0x002 filter other-level branches"},
		{pmu.SelJCC, false, "0x004 filter conditional branches"},
		{pmu.SelNearRelCall, true, "0x008 filter near relative calls"},
		{pmu.SelNearIndCall, true, "0x010 filter near indirect calls"},
		{pmu.SelNearRet, true, "0x020 filter near returns"},
		{pmu.SelNearIndJmp, true, "0x040 filter near indirect jumps"},
		{pmu.SelNearRelJmp, false, "0x080 filter near relative jumps"},
		{pmu.SelFarBranch, true, "0x100 filter far branches"},
	}
	for _, m := range masks {
		l := pmu.NewLBR(pmu.DefaultLBRSize)
		_ = l.WriteMSR(pmu.MSRLBRSelect, m.mask)
		_ = l.WriteMSR(pmu.MSRDebugCtl, pmu.DebugCtlEnableLBR)
		var dropped []string
		for i, c := range classes {
			l.Clear()
			l.Record(pmu.BranchRecord{From: i, To: i + 100, Class: c.class, Kernel: c.kernel})
			if l.Len() == 0 {
				dropped = append(dropped, c.label)
			}
		}
		star := " "
		if m.used {
			star = "*"
		}
		fmt.Fprintf(&b, "%s %-42s suppresses: %s\n", star, m.name, strings.Join(dropped, ", "))
	}
	return b.String()
}

// Table2 demonstrates the L1D coherence events of paper Table 2 by driving
// a two-core scenario through the cache and counting what each core's
// performance counters observe per (event code, unit mask).
func Table2() string {
	var b strings.Builder
	b.WriteString("Table 2: L1D cache-coherence events (LOAD code 0x40, STORE code 0x41)\n\n")
	sys := cache.MustNewSystem(2, cache.DefaultConfig)
	var counters [2]pmu.Counters
	access := func(core int, addr int64, kind cache.AccessKind) {
		counters[core].Observe(kind, sys.Access(core, addr, kind))
	}
	// A little cross-core traffic exercising every observable state.
	access(0, 64, cache.Load)  // I -> E
	access(0, 64, cache.Load)  // E
	access(1, 64, cache.Load)  // I (remote M/E downgrade), both S
	access(0, 64, cache.Load)  // S
	access(0, 64, cache.Store) // S upgrade -> M
	access(0, 64, cache.Store) // M
	access(1, 64, cache.Load)  // I (remote M), both S
	access(1, 64, cache.Store) // S upgrade
	access(0, 64, cache.Load)  // I (invalidated by remote store)

	states := []cache.State{cache.Invalid, cache.Shared, cache.Exclusive, cache.Modified}
	for coreID := range counters {
		fmt.Fprintf(&b, "core %d:\n", coreID)
		for _, kind := range []cache.AccessKind{cache.Load, cache.Store} {
			code := pmu.EventCodeLoad
			if kind == cache.Store {
				code = pmu.EventCodeStore
			}
			for _, st := range states {
				fmt.Fprintf(&b, "  code %#x umask %#02x (observe %s before %s): %d\n",
					code, pmu.StateUmask(st), st, kind, counters[coreID].Count(kind, st))
			}
		}
	}
	return b.String()
}

// Table3 reproduces the failure-predicting-event taxonomy of paper Table 3:
// for one benchmark of each concurrency-bug class it compares the racy
// access's observed coherence state between failing and successful runs and
// reports whether the FPE occurs in the failure thread.
func Table3(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	pool := cfg.pool()
	var b strings.Builder
	b.WriteString("Table 3: failure predicting events (FPE) per concurrency-bug class\n\n")
	fmt.Fprintf(&b, "%-12s %-24s %-22s %-18s %s\n", "benchmark", "bug class", "FPE (paper)", "FPE observed", "in failure thread")

	rows := []struct {
		app      string
		paperFPE string
	}{
		{"Mozilla-JS1", "invalid read"}, // RWR: almost always
		{"micro-RWW", "invalid write"},  // RWW: often (Table 3's example)
		{"Mozilla-JS3", "invalid read"}, // WWR: almost always
		{"MySQL1", "invalid read (a3)"}, // WRW: sometimes; not here
		{"FFT", "exclusive read"},       // read-too-early: often
		{"PBZIP3", "invalid read"},      // read-too-late: often
	}
	for _, row := range rows {
		a := apps.ByName(row.app)
		if a == nil && row.app == "micro-RWW" {
			a = apps.RWWMicro
		}
		want := a.FPE
		observed := "none in failure thread"
		inThread := "no"
		if want != nil {
			optsLCR := core.Options{LCR: true, Toggling: true}
			inst, err := cachedBuild(a, optsLCR)
			if err != nil {
				return "", err
			}
			profs, _, err := collectConc(a, optsLCR, pmu.ConfSpaceConsuming, true, 3, cfg, pool, "table3")
			if err != nil {
				return "", err
			}
			hits := 0
			for _, pr := range profs {
				if coherenceRank(inst, pr, want) > 0 {
					hits++
				}
			}
			observed = fmt.Sprintf("%s %s at %s:%d (%d/%d runs)",
				want.State, want.Kind, want.File, want.Line, hits, len(profs))
			if hits > 0 {
				inThread = "yes"
			}
		}
		fmt.Fprintf(&b, "%-12s %-24s %-22s %-18s %s\n", a.Name, a.Class, row.paperFPE, observed, inThread)
	}
	return b.String(), nil
}

// Table4 renders the benchmark inventory of paper Table 4, paper metadata
// alongside the re-authored programs' own statistics.
func Table4() string {
	var b strings.Builder
	b.WriteString("Table 4: benchmarks (paper metadata | this reproduction)\n\n")
	fmt.Fprintf(&b, "%-12s %-9s %7s %-22s %-14s %9s | %7s %9s %8s\n",
		"program", "version", "KLOC", "root cause", "symptom", "log pts", "instrs", "branches", "log pts")
	for _, concurrent := range []bool{false, true} {
		for _, a := range orderedApps(concurrent) {
			st := a.Program().Stats()
			fmt.Fprintf(&b, "%-12s %-9s %7.1f %-22s %-14s %9d | %7d %9d %8d\n",
				a.Name, a.Paper.Version, a.Paper.KLOC, a.Class, a.Symptom,
				a.Paper.LogPoints, st.Instructions, st.Branches, st.LogSites)
		}
	}
	return b.String()
}

// Table5 reproduces the useful-branch-ratio analysis of paper Table 5 over
// every benchmark with logging sites, plus synthetic programs restoring the
// paper's thousands-of-sites scale.
func Table5() string {
	var b strings.Builder
	b.WriteString("Table 5: resolution of control-flow uncertainties by LBRLOG\n\n")
	fmt.Fprintf(&b, "%-14s %12s %10s\n", "application", "useful ratio", "#log sites")
	total := 0
	// The paper's Table 5 covers the sequential applications' logging
	// sites (its concurrency benchmarks are evaluated through Table 7).
	for _, a := range orderedApps(false) {
		an := cfg.NewAnalyzer(a.Program())
		rep := an.Analyze()
		if rep.LogSites == 0 {
			continue
		}
		total += rep.LogSites
		fmt.Fprintf(&b, "%-14s %12.2f %10d\n", a.Name, rep.Ratio, rep.LogSites)
	}
	for i := 0; i < 4; i++ {
		p := synth.MustGenerate(fmt.Sprintf("synth-%d", i), synth.Config{
			Seed: int64(i + 1), Funcs: 14, StmtsPerFunc: 40, LogEvery: 5,
		})
		an := cfg.NewAnalyzer(p)
		an.MaxPaths = 64
		rep := an.Analyze()
		total += rep.LogSites
		fmt.Fprintf(&b, "%-14s %12.2f %10d\n", p.Name, rep.Ratio, rep.LogSites)
	}
	fmt.Fprintf(&b, "\ntotal logging sites analyzed: %d (paper: 6945)\n", total)
	return b.String()
}

// fmtRank renders a Table 6/7 rank cell: "-" for missed, "n" or "n*" for
// related-branch hits.
func fmtRank(rank int, related bool) string {
	if rank <= 0 {
		return "-"
	}
	if related {
		return fmt.Sprintf("%d*", rank)
	}
	return fmt.Sprintf("%d", rank)
}

// fmtCBI renders a CBI cell, with N/A for unsupported (C++) benchmarks.
func fmtCBI(rank int) string {
	if rank < 0 {
		return "N/A"
	}
	return fmtRank(rank, false)
}

// Table6 runs the full sequential-bug evaluation (paper Table 6): LBRLOG
// ranks with and without toggling, LBRA and CBI predictor ranks, patch
// distances, and the five overhead columns.
func Table6(cfg Config) (string, error) {
	var b strings.Builder
	b.WriteString("Table 6: results of LBRLOG and LBRA (measured | paper in parens)\n\n")
	fmt.Fprintf(&b, "%-10s | %7s %7s %5s %5s | %8s %8s | %7s %7s %7s %7s %7s\n",
		"app", "w/tog", "no-tog", "LBRA", "CBI", "d(fail)", "d(LBR)",
		"log-t%", "log-n%", "react%", "proact%", "CBI%")
	for _, a := range orderedApps(false) {
		row, err := RunSequential(a, cfg)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-10s | %4s(%s) %4s(%s) %5s %5s | %8s %8s | %7.2f %7.2f %7.2f %7.2f %7.2f\n",
			a.Name,
			fmtRank(row.RankTog, row.RelatedTog), fmtRank(a.Paper.LBRRankTog, a.Paper.Related),
			fmtRank(row.RankNoTog, row.RelatedNoTog), fmtRank(a.Paper.LBRRankNoTog, a.Paper.Related && a.Paper.LBRRankNoTog > 0),
			fmtRank(row.LBRARank, false), fmtCBI(row.CBIRank),
			source.FormatDistance(row.DistFailureSite), source.FormatDistance(row.DistLBR),
			100*row.OvLogTog, 100*row.OvLogNoTog, 100*row.OvReactive, 100*row.OvProactive, 100*row.OvCBI)
	}
	return b.String(), nil
}

// Table7 runs the concurrency-bug evaluation (paper Table 7): LCRLOG entry
// ranks under both configurations and LCRA's verdict.
func Table7(cfg Config) (string, error) {
	var b strings.Builder
	b.WriteString("Table 7: failure diagnosis capability of LCR (measured | paper in parens)\n\n")
	fmt.Fprintf(&b, "%-12s | %10s %10s %8s | %s\n", "app", "Conf1", "Conf2", "LCRA", "fail rate")
	for _, a := range orderedApps(true) {
		row, err := RunConcurrent(a, cfg)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-12s | %5s(%s) %5s(%s) %8s | %.2f\n",
			a.Name,
			fmtRank(row.RankConf1, false), fmtRank(a.Paper.LCRConf1, false),
			fmtRank(row.RankConf2, false), fmtRank(a.Paper.LCRConf2, false),
			fmtRank(row.LCRARank, false), row.FailRate)
	}
	return b.String(), nil
}

// robustnessRates are the uniform per-layer injection rates Table 8 sweeps.
// Rate 0 is the fault-free baseline (the nil-plan fast path), locked
// byte-identical to the other tables' inputs.
var robustnessRates = []float64{0, 1e-3, 1e-2, 1e-1}

// robustnessApps is the sequential-benchmark subset Table 8 diagnoses at
// each rate: deterministic failures, so every rejected trial is the
// injector's doing, and small programs, so the 4-rate sweep stays cheap.
var robustnessApps = []string{"sort", "cp", "paste", "tac"}

// robustRow is one (rate, app) cell of Table 8.
type robustRow struct {
	app                  *apps.App
	failProfs, succProfs int
	rank                 int
	topHit               bool
	verdict              stats.Verdict
}

// table8Row runs the LBRA diagnosis for one app under the configured fault
// spec, tolerating profile attrition: a shortfall of failure or success
// profiles degrades the verdict instead of failing the table.
func table8Row(a *apps.App, cfg Config) (*robustRow, error) {
	cfg = cfg.withDefaults()
	pool := cfg.pool()
	optsLogTog := core.Options{LBR: true, Toggling: true}
	logTog, err := cachedBuild(a, optsLogTog)
	if err != nil {
		return nil, err
	}
	endCapture := beginPhase(cfg, a.Name, phaseCapture)
	// Portable "fail-profile" trials: injected faults can swallow the crash
	// profile or flip the run's outcome; such a trial is lost evidence
	// (rejected by the kind), not an abort.
	failStream := a.Name + "/robust-fail"
	failProfs, _, err := CollectKind[vm.Profile](pool, cfg.MaxAttempts, cfg.FailRuns, failStream, "fail-profile",
		failProfileParams{App: a.Name, Build: optsLogTog, Seed: cfg.Seed, LBRSize: cfg.LBRSize})
	if err != nil {
		return nil, err
	}
	failProfiles := make([]core.ProfiledRun, len(failProfs))
	for i, prof := range failProfs {
		failProfiles[i] = core.ProfiledRun{Prog: logTog.Prog, Profile: prof}
	}
	row := &robustRow{app: a, failProfs: len(failProfiles)}
	if len(failProfiles) == 0 {
		endCapture()
		row.verdict = stats.VerdictInsufficient
		return row, nil
	}
	// Success profiles need the reactive build, which needs the failure
	// site mapped back from the (possibly corrupted) first failure
	// profile. An unlocatable site degrades to a fail-only diagnosis
	// rather than failing the row.
	var succProfiles []core.ProfiledRun
	if failPC, err := origFailurePC(a, logTog, failProfiles[0].Profile); err == nil {
		optsReactive := core.Options{LBR: true, Toggling: true,
			Scheme: core.SchemeReactive, FailurePCs: []int{failPC}}
		reactive, err := cachedBuild(a, optsReactive)
		if err != nil {
			return nil, err
		}
		// Tolerant "succ-profile" trials: a run error is lost evidence here,
		// not an abort (Strict is false).
		succStream := a.Name + "/robust-succ"
		succProfs, _, err := CollectKind[vm.Profile](pool, cfg.MaxAttempts, cfg.SuccRuns, succStream, "succ-profile",
			succProfileParams{App: a.Name, Build: optsReactive, Seed: cfg.Seed, LBRSize: cfg.LBRSize})
		if err != nil {
			return nil, err
		}
		succProfiles = make([]core.ProfiledRun, len(succProfs))
		for i, prof := range succProfs {
			succProfiles[i] = core.ProfiledRun{Prog: reactive.Prog, Profile: prof}
		}
	}
	endCapture()
	row.succProfs = len(succProfiles)
	endRank := beginPhase(cfg, a.Name, phaseRank)
	defer endRank()
	report, err := core.Diagnose(core.ModeLBR, failProfiles, succProfiles)
	if err != nil {
		return nil, err
	}
	// A trial that exhausted its retry budget ships its flight-recorder
	// tail with the diagnosis instead of just an error message.
	if d := pool.FirstDegraded(); d != nil {
		report.AttachFlight(d.Events)
	}
	row.verdict = report.Verdict
	row.rank = report.RankOfBranchEdge(a.RootBranch, a.BuggyEdge)
	if row.rank == 0 && a.RelatedBranch != "" {
		row.rank = report.RankOfBranch(a.RelatedBranch)
	}
	if top, ok := report.Top(); ok && top.Event.Kind == core.EventBranch &&
		(top.Event.Branch == a.RootBranch ||
			(a.RelatedBranch != "" && top.Event.Branch == a.RelatedBranch)) {
		row.topHit = true
	}
	return row, nil
}

// sumPrefix totals every counter in the snapshot under a dotted prefix.
func sumPrefix(s obs.Snapshot, prefix string) uint64 {
	var names []string
	for name := range s.Counters {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var total uint64
	for _, name := range names {
		total += s.Counters[name]
	}
	return total
}

// Table8 is this reproduction's robustness table: it reruns the LBRA
// diagnosis of Table 6's pipeline over a benchmark subset while injecting
// capture faults (record drops and corruptions, truncated and glitched
// profile reads, lost snapshots, crashing trials — the engineered analogs
// of paper §4.2's pollution sources) at uniform per-layer rates, and
// reports how diagnosis quality degrades. Every number printed is derived
// from committed per-trial state, so the table is byte-identical for any
// -jobs value and across repeated runs.
func Table8(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	var b strings.Builder
	b.WriteString("Table 8: diagnosis robustness under injected capture faults\n\n")
	fmt.Fprintf(&b, "%-6s %-8s | %5s %5s | %4s %s\n",
		"rate", "app", "fprof", "sprof", "LBRA", "verdict")
	for _, rate := range robustnessRates {
		var spec faultinj.Spec
		if rate > 0 {
			for l := range spec.Rates {
				spec.Rates[l] = rate
			}
		}
		// A private registry isolates this rate's committed-trial counters:
		// the fault totals below must not depend on whatever else the
		// caller's sink has accumulated. The caller's tracer still sees the
		// runs, and the counters merge back into its registry at the end.
		priv := &obs.Sink{Metrics: obs.NewRegistry()}
		if cfg.Obs != nil {
			priv.Trace = cfg.Obs.Trace
			priv.Verbosity = cfg.Obs.Verbosity
			priv.Profiling = cfg.Obs.Profiling
		}
		rcfg := cfg
		rcfg.Faults = spec
		rcfg.Obs = priv

		topHits, top3, ranked := 0, 0, 0
		rankSum := 0
		for _, name := range robustnessApps {
			a := apps.ByName(name)
			if a == nil {
				return "", fmt.Errorf("harness: Table 8 benchmark %q not registered", name)
			}
			row, err := table8Row(a, rcfg)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%-6s %-8s | %2d/%-2d %2d/%-2d | %4s %s\n",
				fmtRate(rate), a.Name, row.failProfs, rcfg.FailRuns, row.succProfs, rcfg.SuccRuns,
				fmtRank(row.rank, false), row.verdict)
			if row.topHit {
				topHits++
			}
			if row.rank >= 1 && row.rank <= 3 {
				top3++
			}
			if row.rank > 0 {
				ranked++
				rankSum += row.rank
			}
		}
		snap := priv.Metrics.Snapshot()
		meanRank := "-"
		if ranked > 0 {
			meanRank = fmt.Sprintf("%.2f", float64(rankSum)/float64(ranked))
		}
		fmt.Fprintf(&b, "rate %-6s top-1 precision %d/%d, top-3 recall %d/%d, mean rank %s | injected %d, recovered %d, degraded %d, retried %d\n\n",
			fmtRate(rate)+":", topHits, len(robustnessApps), top3, len(robustnessApps), meanRank,
			snap.Counter("faultinj.injected"),
			sumPrefix(snap, "faultinj.recovered."),
			sumPrefix(snap, "faultinj.degraded.")+snap.Counter("harness.pool.degraded"),
			snap.Counter("harness.pool.retries"))
		if cfg.Obs != nil && cfg.Obs.Metrics != nil {
			cfg.Obs.Metrics.Merge(snap)
		}
	}
	return strings.TrimRight(b.String(), "\n") + "\n", nil
}

// fmtRate renders an injection rate the way -faults specs write it.
func fmtRate(r float64) string {
	return strconv.FormatFloat(r, 'g', -1, 64)
}

// RenderTable regenerates one of the paper's tables by number. With a
// profiling sink it also attributes the table's cycle-clock and run-count
// deltas to "prof.table.<n>.*" and records the report phase (table
// rendering consumes no simulated cycles, so the report phase counts spans
// and rendered bytes rather than cycles).
func RenderTable(n int, cfg Config) (string, error) {
	s := cfg.Obs
	profiled := s.Profiled() && s.Metrics != nil
	var c0, r0 uint64
	if profiled {
		c0 = s.Cycles()
		r0 = s.Counter("vm.runs").Value()
	}
	out, err := renderTableBody(n, cfg)
	if err == nil && profiled {
		pre := fmt.Sprintf("prof.table.%d.", n)
		s.Counter(pre + "spans").Inc()
		s.Counter(pre + "cycles").Add(s.Cycles() - c0)
		s.Counter(pre + "runs").Add(s.Counter("vm.runs").Value() - r0)
		s.Counter("prof.phase.report.spans").Inc()
		s.Counter("prof.phase.report.bytes").Add(uint64(len(out)))
	}
	return out, err
}

// renderTableBody dispatches to the table implementations.
func renderTableBody(n int, cfg Config) (string, error) {
	switch n {
	case 1:
		return Table1(), nil
	case 2:
		return Table2(), nil
	case 3:
		return Table3(cfg)
	case 4:
		return Table4(), nil
	case 5:
		return Table5(), nil
	case 6:
		return Table6(cfg)
	case 7:
		return Table7(cfg)
	case 8:
		return Table8(cfg)
	case 9:
		return Table9(cfg)
	}
	return "", fmt.Errorf("harness: no table %d (tables 1-%d)", n, NumTables)
}

// DiagnosisLatency compares how many failure runs LBRA and CBI need before
// the root-cause branch tops their rankings — the diagnosis-latency
// argument of paper §7.2 (LBRA: ~10 runs; CBI: hundreds). It returns the
// measured minimum failure-run counts, capped at maxRuns.
func DiagnosisLatency(a *apps.App, maxRuns int, cfg Config) (lbraRuns, cbiRuns int, err error) {
	cfg = cfg.withDefaults()
	lbraRuns, cbiRuns = -1, -1
	for _, n := range []int{2, 5, 10} {
		c := cfg
		c.FailRuns, c.SuccRuns = n, n
		c.CBIRuns = 1 // CBI is measured separately below
		c.OverheadRuns = 1
		row, e := RunSequential(a, c)
		if e != nil {
			return 0, 0, e
		}
		if row.LBRARank == 1 {
			lbraRuns = n
			break
		}
	}
	pool := cfg.pool()
	for _, n := range []int{50, 200, 500, 1000} {
		if n > maxRuns {
			break
		}
		c := cfg
		c.CBIRuns = n
		rank, e := runCBI(a, c, pool)
		if e != nil {
			return 0, 0, e
		}
		if rank == 1 {
			cbiRuns = n
			break
		}
	}
	return lbraRuns, cbiRuns, nil
}
