package harness

import (
	"stmdiag/internal/isa"
	"stmdiag/internal/pmu"
	"stmdiag/internal/vm"
)

// CoverageResult is a THeME-style coverage measurement (Walcott-Justice et
// al., ISSTA '12 — paper §8): branch coverage recovered by periodically
// draining the LBR during a run. The paper's point is that this usage
// *requires* profiling throughout the execution, which is why THeME costs
// far more than LBRLOG's profile-only-at-failure design.
type CoverageResult struct {
	// CoveredEdges is how many distinct source-branch edges the periodic
	// samples recovered; ExecutedEdges is the ground truth.
	CoveredEdges, ExecutedEdges int
	// Coverage is CoveredEdges/ExecutedEdges.
	Coverage float64
	// Samples is how many LBR drains ran.
	Samples int
	// Overhead is the sampling cost relative to the unprofiled run.
	Overhead float64
}

type branchEdge struct {
	branch int
	edge   isa.BranchEdge
}

// edgesOf extracts the source-branch edges from a batch of LBR records.
func edgesOf(p *isa.Program, recs []pmu.BranchRecord, into map[branchEdge]bool) {
	for _, r := range recs {
		if r.From < 0 || r.From >= len(p.Instrs) {
			continue
		}
		in := &p.Instrs[r.From]
		if in.BranchID != isa.NoBranch {
			into[branchEdge{in.BranchID, in.Edge}] = true
		}
	}
}

// armLBRs enables recording with the paper's filter on every core.
func armLBRs(m *vm.Machine) error {
	for _, c := range m.Cores() {
		if err := c.LBR.WriteMSR(pmu.MSRLBRSelect, pmu.PaperLBRSelect); err != nil {
			return err
		}
		if err := c.LBR.WriteMSR(pmu.MSRDebugCtl, pmu.DebugCtlEnableLBR); err != nil {
			return err
		}
	}
	return nil
}

// RunCoverage measures branch coverage by draining the LBR every
// periodSteps retired instructions, THeME-style, and compares against the
// ground truth (every edge actually executed) and the unprofiled cost.
func RunCoverage(p *isa.Program, opts vm.Options, periodSteps int) (*CoverageResult, error) {
	// Ground truth and baseline cost.
	truth := map[branchEdge]bool{}
	mTruth, err := vm.New(p, opts)
	if err != nil {
		return nil, err
	}
	mTruth.SetStepHook(func(m *vm.Machine, t *vm.Thread, in *isa.Instr) {
		if in.BranchID == isa.NoBranch {
			return
		}
		if in.Op.IsCond() {
			edge := in.Edge
			if !vm.CondTaken(in.Op, t.Flags) {
				edge = edge.Opposite()
			}
			truth[branchEdge{in.BranchID, edge}] = true
		} else if in.Op == isa.OpJmp {
			truth[branchEdge{in.BranchID, in.Edge}] = true
		}
	})
	baseRes, err := mTruth.Run()
	if err != nil {
		return nil, err
	}

	// The sampled run: drain every core's LBR each period, paying the
	// profile cost each time.
	covered := map[branchEdge]bool{}
	res := &CoverageResult{}
	m, err := vm.New(p, opts)
	if err != nil {
		return nil, err
	}
	if err := armLBRs(m); err != nil {
		return nil, err
	}
	steps := 0
	m.SetStepHook(func(mm *vm.Machine, t *vm.Thread, in *isa.Instr) {
		steps++
		if steps%periodSteps != 0 {
			return
		}
		res.Samples++
		mm.AddCycles(vm.CostProfile)
		for _, c := range mm.Cores() {
			edgesOf(p, c.LBR.Latest(), covered)
		}
	})
	sampledRes, err := m.Run()
	if err != nil {
		return nil, err
	}
	// Final drain at exit, as THeME does.
	for _, c := range m.Cores() {
		edgesOf(p, c.LBR.Latest(), covered)
	}

	res.ExecutedEdges = len(truth)
	for e := range covered {
		if truth[e] {
			res.CoveredEdges++
		}
	}
	if res.ExecutedEdges > 0 {
		res.Coverage = float64(res.CoveredEdges) / float64(res.ExecutedEdges)
	}
	res.Overhead = overhead(float64(baseRes.Cycles), float64(sampledRes.Cycles))
	return res, nil
}

// CoverageSweep measures coverage at each sampling period, fanning the
// independent measurements out through the trial pool. Results come back in
// period order regardless of the worker count.
func CoverageSweep(p *isa.Program, opts vm.Options, periods []int, pool *Pool) ([]*CoverageResult, error) {
	return Map(pool, len(periods), p.Name+"/coverage",
		func(tc *Trial) (*CoverageResult, error) {
			o := opts
			o.Obs = tc.Sink
			o.Faults = tc.Faults
			return RunCoverage(p, o, periods[tc.Index])
		})
}
