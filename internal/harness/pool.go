package harness

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"stmdiag/internal/artifact"
	"stmdiag/internal/faultinj"
	"stmdiag/internal/obs"
)

// This file is the harness's trial-execution engine. The paper's evaluation
// reruns every benchmark hundreds of times (10+10 runs per LBRA/LCRA
// diagnosis, 1000+1000 per CBI baseline, §7.2), and every one of those
// trials is independent: it owns its VM, its RNG seed and its profile. The
// Pool fans trials out across workers while keeping every observable result
// — selected profiles, attempt counts, merged telemetry — byte-identical to
// the sequential order, whatever the worker count or goroutine scheduling.
//
// Three properties make that determinism hold:
//
//  1. Seeds are derived, not streamed. TrialSeed hashes (base seed, stream
//     label, trial index), so trial i's seed never depends on how many
//     earlier trials were retried or on which worker runs it.
//
//  2. Selection is by trial index. Collect accepts the first `need`
//     accepted trials in index order; workers past the decisive index only
//     ever do speculative work that is discarded.
//
//  3. Telemetry commits in trial order. Each trial runs against a private
//     metrics registry; the pool merges registries into the parent sink for
//     exactly the trials the sequential path would have executed (index <=
//     decisive), so `-metrics` totals and the per-table run/cycle summaries
//     do not depend on -jobs.
//
// The pool is also the harness's failure boundary. A trial that panics —
// whether from an injected fault (-faults panic=...) or a real bug — never
// takes down the run: the panic is recovered, the trial retried up to a
// deterministic budget, and a still-failing trial recorded as a degraded
// TrialError. Because fault plans and retry outcomes are derived purely
// from (spec, base seed, stream, trial, attempt), degradation decisions are
// identical for every worker count too.

// TrialSeed derives one trial's RNG seed from the experiment's base seed, a
// stream label (by convention "app-name/purpose") and the trial index. The
// mix is splitmix64 over an FNV-1a hash of the label, so distinct streams
// and distinct trials decorrelate fully while staying reproducible across
// processes and worker counts.
func TrialSeed(base int64, stream string, trial int) int64 {
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(stream); i++ {
		h ^= uint64(stream[i])
		h *= fnvPrime
	}
	x := h ^ uint64(base)*0x9e3779b97f4a7c15 ^ uint64(trial)*0xbf58476d1ce4e5b9
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	// Keep seeds non-negative: workload seeds double as attempt labels in
	// error messages and some call sites reserve negative values.
	return int64(x >> 1)
}

// Trial is the context one trial attempt runs with: its index in the
// stream, which retry attempt this is (0 = first), the private telemetry
// sink its run reports into, and the fault plan scheduled for this attempt
// (nil when fault injection is off).
type Trial struct {
	Index   int
	Attempt int
	Sink    *obs.Sink
	Faults  *faultinj.Plan
}

// TrialError records a trial that exhausted its retry budget: every attempt
// panicked. The pool treats such a trial as degraded — rejected in Collect
// and First, a hard error in Map (whose callers need all results).
type TrialError struct {
	// Label is the trial stream, Trial the index within it.
	Label string
	Trial int
	// Attempts is how many times the trial ran (1 + retries).
	Attempts int
	// Panic is the value the final attempt panicked with.
	Panic any
	// Events is the trial's flight-recorder tail: the last events its
	// worker recorded across all attempts (starts, injected faults,
	// retries), read at the moment of degradation the way the paper's
	// segfault handler reads the LBR (§3.2). Empty when the run carried
	// no flight recorder. Contents are identical for every -jobs value.
	Events []obs.FlightEvent
}

func (e *TrialError) Error() string {
	msg := fmt.Sprintf("harness: trial %d of %q degraded after %d attempts: panic: %v",
		e.Trial, e.Label, e.Attempts, e.Panic)
	if n := len(e.Events); n > 0 {
		msg += fmt.Sprintf(" (flight recorder: %d events)", n)
	}
	return msg
}

// FlightTail renders the trial's recorded flight events, one per line.
func (e *TrialError) FlightTail() string {
	var b strings.Builder
	for _, ev := range e.Events {
		fmt.Fprintf(&b, "%s\n", ev)
	}
	return b.String()
}

// Pool executes independent trials across a fixed number of workers.
// A Pool is cheap (no long-lived goroutines); build one per experiment via
// Config.pool or NewPool and share it across that experiment's fan-outs.
type Pool struct {
	jobs int
	sink *obs.Sink

	faults    faultinj.Spec // fault-injection spec; zero = off
	faultSeed int64         // base seed fault plans derive from

	// runID correlates every telemetry delta this pool's trials produce
	// (obs.Context). Derived from the experiment seed, so two processes
	// running the same configuration agree on it.
	runID uint64

	// exec runs portable trials (CollectKind/MapKind/FirstKind). Always
	// non-nil: NewPool installs the in-process executor; WithExecutor swaps
	// in an alternative (the subprocess fleet). Closure-based trials
	// (Collect/Map/First) never touch it.
	exec Executor
	// store, when non-nil, is the durable artifact store: portable trials
	// check it before executing and persist into it at commit time.
	store *artifact.Store

	workerTrials []*obs.Counter // per-worker executed-trial counters
	trials       *obs.Counter   // trials executed (incl. speculation)
	committed    *obs.Counter   // trials whose telemetry was committed
	discarded    *obs.Counter   // speculative trials thrown away
	spans        *obs.Counter   // Collect/Map fan-outs traced

	// Worker-utilization instruments (internal/prof), armed only when the
	// sink profiles. These measure real wall clock and real scheduling, so
	// — unlike every committed counter — they are jobs-variant by design
	// and live on the parent sink directly, never on trial sinks.
	workerBusy  []*obs.Counter // per-worker ns spent executing trials
	workerIdle  []*obs.Counter // per-worker ns spent waiting for work
	queueDepth  *obs.Gauge     // trials dispatched but not yet returned
	commitStall *obs.Counter   // ns completed trials waited for in-order commit

	mu       sync.Mutex
	degraded *TrialError // first degraded trial, in trial order
}

// NewPool returns a pool running up to jobs trials concurrently. jobs <= 0
// selects runtime.NumCPU(); jobs == 1 is the strictly sequential path (no
// goroutines, no speculation). The sink, when non-nil, receives pool
// counters ("harness.pool.*") and — if it carries a tracer — fan-out spans
// on the obs.PoolPID track group.
func NewPool(jobs int, sink *obs.Sink) *Pool {
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	p := &Pool{jobs: jobs, sink: sink, exec: &InprocExecutor{}}
	if sink != nil && sink.Metrics != nil {
		p.trials = sink.Counter("harness.pool.trials")
		p.committed = sink.Counter("harness.pool.committed")
		p.discarded = sink.Counter("harness.pool.discarded")
		p.spans = sink.Counter("harness.pool.fanouts")
		p.workerTrials = make([]*obs.Counter, jobs)
		for w := 0; w < jobs; w++ {
			p.workerTrials[w] = sink.Counter(fmt.Sprintf("harness.pool.worker%d.trials", w))
		}
		if sink.Profiled() {
			p.workerBusy = make([]*obs.Counter, jobs)
			p.workerIdle = make([]*obs.Counter, jobs)
			for w := 0; w < jobs; w++ {
				p.workerBusy[w] = sink.Counter(fmt.Sprintf("harness.pool.worker%d.busy_ns", w))
				p.workerIdle[w] = sink.Counter(fmt.Sprintf("harness.pool.worker%d.idle_ns", w))
			}
			p.queueDepth = sink.Gauge("harness.pool.queue.depth")
			p.commitStall = sink.Counter("harness.pool.commit.stall_ns")
		}
	}
	if tr := sink.Tracer(); tr != nil {
		tr.SetProcessName(obs.PoolPID, "pool")
		// Only the fan-out lane is always named: per-worker lanes are a
		// scheduling fact, so registering them would make trace bytes vary
		// with -jobs. They come back under -profile-report, whose
		// wall-clock utilization view is jobs-variant by design.
		tr.SetThreadName(obs.PoolPID, 0, "worker 0")
		if sink.Profiled() {
			for w := 1; w < jobs; w++ {
				tr.SetThreadName(obs.PoolPID, w, fmt.Sprintf("worker %d", w))
			}
		}
	}
	return p
}

// WithFaults arms the pool's fault-injection engine: every trial attempt
// derives a faultinj.Plan from (spec, seed, stream label, trial, attempt)
// and carries it in its Trial context. A disabled spec leaves plans nil.
// Returns p for chaining.
func (p *Pool) WithFaults(spec faultinj.Spec, seed int64) *Pool {
	p.faults = spec
	p.faultSeed = seed
	return p
}

// WithRunID stamps the correlation run ID every trial response's
// obs.Context carries. Callers derive it from the experiment seed (see
// RunID), so it is identical across processes, worker counts and resumes.
// Returns p for chaining.
func (p *Pool) WithRunID(id uint64) *Pool {
	p.runID = id
	return p
}

// RunID derives a pool's correlation run ID from an experiment's base seed
// and label: the same splitmix64 mix as TrialSeed, so any process running
// the same configuration stamps its telemetry identically.
func RunID(seed int64, label string) uint64 {
	return uint64(TrialSeed(seed, "runid/"+label, 0))
}

// WithExecutor routes portable trials (CollectKind and friends) through e.
// The default is the in-process executor; the subprocess executor isolates
// trial crashes in worker processes. Returns p for chaining.
func (p *Pool) WithExecutor(e Executor) *Pool {
	if e != nil {
		p.exec = e
	}
	return p
}

// WithArtifacts attaches a durable artifact store: portable trials resume
// from verified stored results and persist fresh results as they commit,
// in trial order. Returns p for chaining.
func (p *Pool) WithArtifacts(s *artifact.Store) *Pool {
	p.store = s
	return p
}

// executor returns the pool's trial executor (never nil).
func (p *Pool) executor() Executor { return p.exec }

// wireRequest assembles the portable form of one trial, arming the worker-
// side telemetry to mirror what trialSink would build locally.
func (p *Pool) wireRequest(stream string, i int, kind string, params json.RawMessage) *TrialRequest {
	req := &TrialRequest{
		Stream: stream, Index: i, Kind: kind, Params: params,
		Faults: p.faults, FaultSeed: p.faultSeed,
	}
	if p.sink != nil {
		req.Metrics = p.sink.Metrics != nil
		req.Flight = p.sink.Flight != nil
		req.Trace = p.sink.Trace != nil
		req.Profiling = p.sink.Profiling
		req.Verbosity = p.sink.Verbosity
	}
	req.RunID = p.runID
	return req
}

// Jobs returns the worker count.
func (p *Pool) Jobs() int { return p.jobs }

// trialSink builds the private sink one trial runs against: its own metrics
// registry, its own flight-recorder ring when the parent carries one (the
// per-worker short-term memory of the trial it is running), and its own
// tracer when the parent traces — all merged into the parent at commit
// time, in trial order, so every half of the telemetry is independent of
// worker scheduling. Nil parent sink means nil trial sinks.
func (p *Pool) trialSink() *obs.Sink {
	if p.sink == nil {
		return nil
	}
	s := &obs.Sink{Verbosity: p.sink.Verbosity, Profiling: p.sink.Profiling}
	if p.sink.Metrics != nil {
		s.Metrics = obs.NewRegistry()
	}
	if p.sink.Flight != nil {
		s.Flight = obs.NewFlightRecorder(obs.DefaultTrialFlightCap)
	}
	if p.sink.Trace != nil {
		s.Trace = obs.NewTracer()
	}
	return s
}

// trialTelemetry is one executed trial's observable side effects, parked
// with its outcome until the commit scan reaches its index. It is already
// detached from any sink (snapshots, not live registries), so it carries
// identically whether the trial ran on this goroutine, in a subprocess
// worker, or was loaded back from the artifact store.
type trialTelemetry struct {
	metrics *obs.Snapshot     // private-registry snapshot; nil when unarmed
	flight  []obs.FlightEvent // trial ring contents
	hasRing bool              // the trial carried a flight ring (even if empty)
	trace   *obs.TraceDelta   // private-tracer delta; nil when untraced
	// persist, when non-nil, is invoked after the telemetry merge — the
	// artifact store's write-behind hook, so results land durably in commit
	// order and a resumed run replays the exact committed prefix.
	persist func()
}

// telemetryOf snapshots a trial sink into its portable telemetry.
func telemetryOf(s *obs.Sink) trialTelemetry {
	var t trialTelemetry
	if s == nil {
		return t
	}
	if s.Metrics != nil {
		snap := s.Metrics.Snapshot()
		t.metrics = &snap
	}
	if s.Flight != nil {
		t.flight = s.Flight.Snapshot()
		t.hasRing = true
	}
	if s.Trace != nil {
		d := s.Trace.Delta()
		t.trace = &d
	}
	return t
}

// commit folds one executed trial's telemetry into the parent sink. The
// trial's flight-recorder ring appends to the pipeline ring here — in
// trial order, never arrival order — so pipeline ring contents are
// byte-identical for every worker count.
func (p *Pool) commit(i int, t trialTelemetry) {
	p.committed.Inc()
	if p.sink != nil {
		if t.metrics != nil && p.sink.Metrics != nil {
			p.sink.Metrics.Merge(*t.metrics)
		}
		if t.trace != nil && p.sink.Trace != nil {
			// The trial's spans shift onto the run clock and the clock
			// advances by the trial's cycles — end-to-end layout, exactly
			// as if the trial had recorded into the run tracer directly.
			p.sink.Trace.MergeDelta(*t.trace)
		}
		if p.sink.Flight != nil && t.hasRing {
			p.sink.Flight.Append(t.flight)
			p.sink.RecordFlight(obs.FlightEvent{
				Cycle: p.sink.Cycles(), Trial: i, Kind: obs.FlightTrialCommit,
			})
		}
	}
	if t.persist != nil {
		t.persist()
	}
}

// noteDegraded keeps the first degraded trial of the pool's lifetime (the
// callers hand it the first in trial order per fan-out, so the stored
// value is jobs-invariant).
func (p *Pool) noteDegraded(e *TrialError) {
	if e == nil {
		return
	}
	p.mu.Lock()
	if p.degraded == nil {
		p.degraded = e
	}
	p.mu.Unlock()
}

// FirstDegraded returns the first degraded trial this pool has seen (in
// trial order within the first fan-out that had one), or nil. The harness
// attaches its flight-recorder tail to the diagnosis report.
func (p *Pool) FirstDegraded() *TrialError {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.degraded
}

// trialOutcome is one executed trial, parked until the commit scan reaches
// its index.
type trialOutcome[T any] struct {
	val       T
	ok        bool
	err       error
	degraded  *TrialError
	telemetry trialTelemetry
}

// trialRunner produces one trial's outcome for the pool's dispatch loop.
// fnRunner executes closure trials on the calling goroutine; wireRunner
// (wire.go) routes portable trials through the executor and artifact store.
type trialRunner[T any] interface {
	runOne(p *Pool, w int, label string, i int) trialOutcome[T]
}

// fnRunner wraps a closure trial body.
type fnRunner[T any] struct {
	fn func(*Trial) (T, bool, error)
}

func (r fnRunner[T]) runOne(p *Pool, w int, label string, i int) trialOutcome[T] {
	return timedRun(p, w, func() trialOutcome[T] { return runTrial(p, label, i, r.fn) })
}

// runTrial executes one trial through the retry loop: recover every panic,
// re-attempt up to the deterministic budget, then mark the trial degraded.
// One sink spans all attempts of the trial, so a panicked attempt's partial
// telemetry commits with it (deterministically — the attempt sequence is a
// pure function of the derivation tuple). Counters are recorded on the
// trial sink, not the pool, so their merged totals stay jobs-invariant.
func runTrial[T any](p *Pool, label string, i int, fn func(*Trial) (T, bool, error)) trialOutcome[T] {
	s := p.trialSink()
	budget := p.faults.RetryBudget()
	for attempt := 0; ; attempt++ {
		s.RecordFlight(obs.FlightEvent{
			Cycle: s.Cycles(), Trial: i, Attempt: attempt,
			Kind: obs.FlightTrialStart, Detail: label,
		})
		tc := &Trial{
			Index:   i,
			Attempt: attempt,
			Sink:    s,
			Faults:  faultinj.NewPlan(p.faults, p.faultSeed, label, i, attempt, s),
		}
		v, ok, err, pan := guardedCall(fn, tc)
		if pan == nil {
			return trialOutcome[T]{val: v, ok: ok, err: err, telemetry: telemetryOf(s)}
		}
		s.Counter("harness.pool.panics").Inc()
		if attempt >= budget {
			s.Counter("harness.pool.degraded").Inc()
			s.RecordFlight(obs.FlightEvent{
				Cycle: s.Cycles(), Trial: i, Attempt: attempt,
				Kind: obs.FlightTrialDegraded, Detail: fmt.Sprintf("panic: %v", pan),
			})
			return trialOutcome[T]{
				degraded: &TrialError{
					Label: label, Trial: i, Attempts: attempt + 1, Panic: pan,
					// The segfault-handler moment: read the worker's ring
					// while the failure is still in its short-term memory.
					Events: s.FlightRecorder().Snapshot(),
				},
				telemetry: telemetryOf(s),
			}
		}
		s.Counter("harness.pool.retries").Inc()
		s.RecordFlight(obs.FlightEvent{
			Cycle: s.Cycles(), Trial: i, Attempt: attempt,
			Kind: obs.FlightTrialRetry, Detail: fmt.Sprintf("panic: %v", pan),
		})
	}
}

// guardedCall invokes fn under recover, converting a panic into a non-nil
// pan result. The injected trial-panic layer fires here, inside the guard,
// so scheduled crashes exercise exactly the recovery path real ones take.
func guardedCall[T any](fn func(*Trial) (T, bool, error), tc *Trial) (v T, ok bool, err error, pan any) {
	defer func() {
		if r := recover(); r != nil {
			var zero T
			v, ok, err, pan = zero, false, nil, r
		}
	}()
	if tc.Faults.Hit(faultinj.TrialPanic) {
		panic(faultinj.InjectedPanic{Trial: tc.Index, Attempt: tc.Attempt})
	}
	v, ok, err = fn(tc)
	return
}

// Collect runs fn(0), fn(1), ... until `need` trials have been accepted or
// `max` trials are exhausted, fanning trials across the pool's workers. It
// returns the accepted values in trial-index order and the attempt count:
// the number of leading trials the sequential path would have executed
// (decisive index + 1). fn reports ok=false to reject a trial (its run
// still counts toward attempts and telemetry, like a success run that
// happened to fail); a non-nil error aborts the collection at that trial.
// A degraded trial (every attempt panicked) is rejected, not fatal.
//
// The returned values, attempts and merged telemetry are byte-identical
// for every jobs setting: acceptance is decided purely by trial index, and
// speculative trials past the decisive index are discarded unmerged.
func Collect[T any](p *Pool, max, need int, label string, fn func(tc *Trial) (T, bool, error)) ([]T, int, error) {
	out, attempts, _, err := run[T](p, max, need, label, fnRunner[T]{fn})
	return out, attempts, err
}

// run is the traced entry point shared by Collect, Map, First and their
// portable Kind variants; it also surfaces the first degraded trial for
// callers (Map) that must not skip.
func run[T any](p *Pool, max, need int, label string, rn trialRunner[T]) ([]T, int, *TrialError, error) {
	if need <= 0 || max <= 0 {
		return nil, 0, nil, nil
	}
	p.spans.Inc()
	var traceStart uint64
	tr := p.sink.Tracer()
	if tr != nil {
		traceStart = tr.Base()
	}
	out, attempts, degraded, err := collect(p, max, need, label, rn)
	p.noteDegraded(degraded)
	if tr != nil {
		end := tr.Base()
		// Span args carry only jobs-invariant facts; the worker count is a
		// scheduling detail and would break cross-jobs trace identity.
		tr.Complete("pool:"+label, "pool", traceStart, end-traceStart, obs.PoolPID, 0,
			map[string]any{"attempts": attempts, "accepted": len(out), "max": max})
	}
	return out, attempts, degraded, err
}

// collect is run without the tracing shell.
func collect[T any](p *Pool, max, need int, label string, rn trialRunner[T]) ([]T, int, *TrialError, error) {
	var firstDegraded *TrialError
	if p.jobs == 1 {
		// Sequential path: run trials in order, stop exactly at the
		// decisive one. This is byte-identical to the parallel path below
		// and does zero speculative work.
		var out []T
		for i := 0; i < max; i++ {
			p.trials.Inc()
			p.workerTrial(0)
			r := rn.runOne(p, 0, label, i)
			p.commit(i, r.telemetry)
			if r.err != nil {
				return out, i + 1, firstDegraded, r.err
			}
			if r.degraded != nil && firstDegraded == nil {
				firstDegraded = r.degraded
			}
			if r.ok {
				out = append(out, r.val)
				if len(out) == need {
					return out, i + 1, firstDegraded, nil
				}
			}
		}
		return out, max, firstDegraded, nil
	}

	// Parallel path: jobs worker goroutines pull trial indexes from idxCh;
	// the coordinator commits decided trials in index order and stops
	// dispatching once the decisive trial is known. At most `jobs` trials
	// are ever in flight, so the speculation window (work that may be
	// discarded) is bounded by the worker count.
	type done struct {
		i int
		trialOutcome[T]
	}
	var (
		idxCh = make(chan int)
		resCh = make(chan done, p.jobs)
		wg    sync.WaitGroup
	)
	for w := 0; w < p.jobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			last := time.Now()
			for i := range idxCh {
				p.trials.Inc()
				p.workerTrial(w)
				if p.workerIdle != nil {
					now := time.Now()
					p.workerIdle[w].Add(uint64(now.Sub(last)))
				}
				r := rn.runOne(p, w, label, i)
				if p.workerIdle != nil {
					last = time.Now()
				}
				resCh <- done{i, r}
			}
		}(w)
	}

	var (
		results = make(map[int]trialOutcome[T])
		out     []T

		next        int  // next trial index to dispatch
		outstanding int  // dispatched, not yet returned
		commitNext  int  // next trial index to commit
		finished    bool // need met or error hit: stop dispatching
		abortErr    error
		attempts    int

		// arrivals timestamps completed trials parked for in-order commit;
		// only maintained when the commit-stall instrument is armed.
		arrivals map[int]time.Time
	)
	if p.commitStall != nil {
		arrivals = make(map[int]time.Time)
	}
	for {
		var send chan int
		if !finished && next < max {
			send = idxCh
		}
		if send == nil && outstanding == 0 {
			break
		}
		select {
		case send <- next:
			next++
			outstanding++
			p.queueDepth.Set(int64(outstanding))
		case d := <-resCh:
			outstanding--
			p.queueDepth.Set(int64(outstanding))
			results[d.i] = d.trialOutcome
			if arrivals != nil {
				arrivals[d.i] = time.Now()
			}
			// Commit every contiguous decided trial in index order.
			for !finished {
				r, ready := results[commitNext]
				if !ready {
					break
				}
				delete(results, commitNext)
				if arrivals != nil {
					if t0, ok := arrivals[commitNext]; ok {
						p.commitStall.Add(uint64(time.Since(t0)))
						delete(arrivals, commitNext)
					}
				}
				p.commit(commitNext, r.telemetry)
				commitNext++
				if r.err != nil {
					abortErr = r.err
					attempts = commitNext
					finished = true
					break
				}
				if r.degraded != nil && firstDegraded == nil {
					firstDegraded = r.degraded
				}
				if r.ok {
					out = append(out, r.val)
					if len(out) == need {
						attempts = commitNext
						finished = true
					}
				}
			}
		}
	}
	close(idxCh)
	wg.Wait()
	p.discarded.Add(uint64(len(results)))
	if !finished {
		attempts = max // exhausted the attempt budget
	}
	return out, attempts, firstDegraded, abortErr
}

// workerTrial bumps one worker's executed-trial counter.
func (p *Pool) workerTrial(w int) {
	if p.workerTrials == nil {
		return
	}
	p.workerTrials[w].Inc()
}

// timedRun runs one trial attempt sequence, charging its wall time to the
// worker's busy counter when utilization tracking is armed. The timestamps
// never feed anything committed: trial outcomes and merged telemetry stay
// pure functions of (seed, stream, index).
func timedRun[T any](p *Pool, w int, f func() trialOutcome[T]) trialOutcome[T] {
	if p.workerBusy == nil {
		return f()
	}
	start := time.Now()
	r := f()
	p.workerBusy[w].Add(uint64(time.Since(start)))
	return r
}

// Map runs fn(0..n-1) across the pool and returns all n results in index
// order. The first error (in trial-index order) aborts and is returned.
// Unlike Collect, a degraded trial is a hard error: Map callers index
// results positionally (e.g. CoverageSweep's period sweep, the overhead
// averages), so a silently missing element would misalign or skew them.
func Map[T any](p *Pool, n int, label string, fn func(tc *Trial) (T, error)) ([]T, error) {
	out, _, degraded, err := run[T](p, n, n, label, fnRunner[T]{func(tc *Trial) (T, bool, error) {
		v, err := fn(tc)
		return v, err == nil, err
	}})
	if err != nil {
		return out, err
	}
	if degraded != nil {
		return out, degraded
	}
	return out, nil
}

// First runs fn over trials 0..max-1 and returns the first accepted result
// in trial order along with its trial index, or index -1 if no trial was
// accepted. Like Collect, the result is independent of the worker count.
func First[T any](p *Pool, max int, label string, fn func(tc *Trial) (T, bool, error)) (T, int, error) {
	out, attempts, err := Collect(p, max, 1, label, fn)
	if err != nil || len(out) == 0 {
		var zero T
		return zero, -1, err
	}
	return out[0], attempts - 1, nil
}
