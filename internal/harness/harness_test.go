package harness

import (
	"testing"

	"stmdiag/internal/apps"
	"stmdiag/internal/core"
	"stmdiag/internal/isa"
	"stmdiag/internal/source"
)

func TestModalRank(t *testing.T) {
	cases := []struct {
		in   []int
		want int
	}{
		{[]int{3, 3, 3, 4, 5}, 3},
		{[]int{3, 4, 4, 3}, 3}, // tie breaks low
		{[]int{0, 0, 7}, 0},
		{[]int{9}, 9},
		{nil, 0},
	}
	for _, tc := range cases {
		if got := modalRank(tc.in); got != tc.want {
			t.Errorf("modalRank(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRankFormatting(t *testing.T) {
	if fmtRank(0, false) != "-" || fmtRank(3, false) != "3" || fmtRank(5, true) != "5*" {
		t.Error("fmtRank wrong")
	}
	if fmtCBI(-1) != "N/A" || fmtCBI(0) != "-" || fmtCBI(2) != "2" {
		t.Error("fmtCBI wrong")
	}
}

func TestOrderedAppsCoverRegistry(t *testing.T) {
	seq := orderedApps(false)
	conc := orderedApps(true)
	if len(seq) != 20 || len(conc) != 11 {
		t.Fatalf("ordered apps = %d/%d", len(seq), len(conc))
	}
	// Paper order: Apache1 first sequential, Apache4 first concurrent.
	if seq[0].Name != "Apache1" || conc[0].Name != "Apache4" {
		t.Errorf("order heads: %s / %s", seq[0].Name, conc[0].Name)
	}
}

func TestBranchLayersOrdering(t *testing.T) {
	a := apps.ByName("ln")
	p := a.Program()
	var failPC int
	for _, pc := range logSitesOf(p) {
		failPC = pc
	}
	layers := branchLayers(p, failPC)
	if len(layers) < 3 {
		t.Fatalf("only %d layers", len(layers))
	}
	// The guard branch must be in an earlier layer than the root-cause
	// branch (which is 13+ records upstream).
	guardLayer, rootLayer := -1, -1
	for i, layer := range layers {
		for _, name := range layer {
			if name == "ln_zcheck" {
				guardLayer = i
			}
			if name == a.RootBranch {
				rootLayer = i
			}
		}
	}
	if guardLayer < 0 || rootLayer < 0 {
		t.Fatalf("guard/root not found in layers (%d/%d)", guardLayer, rootLayer)
	}
	if guardLayer >= rootLayer {
		t.Errorf("guard layer %d not before root layer %d", guardLayer, rootLayer)
	}
}

// logSitesOf avoids importing cfg here just for the helper.
func logSitesOf(p *isa.Program) []int {
	var sites []int
	for pc := range p.Instrs {
		in := &p.Instrs[pc]
		if in.Op != isa.OpCall {
			continue
		}
		if f := p.FuncAt(in.Target); f != nil && f.Attr.Has(isa.AttrFailureLog) {
			sites = append(sites, pc)
		}
	}
	return sites
}

func TestOrigFailurePCForCrashApp(t *testing.T) {
	a := apps.ByName("sort")
	inst, err := core.EnhanceLogging(a.Program(), core.Options{LBR: true})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := failureProfileOf(a, inst, 0, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := origFailurePC(a, inst, prof)
	if err != nil {
		t.Fatal(err)
	}
	if pc != a.FaultPC() {
		t.Errorf("origFailurePC = %d, want FaultPC %d", pc, a.FaultPC())
	}
}

func TestOrigFailurePCForLogApp(t *testing.T) {
	a := apps.ByName("cp")
	inst, err := core.EnhanceLogging(a.Program(), core.Options{LBR: true})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := failureProfileOf(a, inst, 0, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := origFailurePC(a, inst, prof)
	if err != nil {
		t.Fatal(err)
	}
	p := a.Program()
	if p.Instrs[pc].Op != isa.OpCall {
		t.Fatalf("origFailurePC %d is %v, want the log call", pc, p.Instrs[pc].Op)
	}
	f := p.FuncAt(p.Instrs[pc].Target)
	if f == nil || !f.Attr.Has(isa.AttrFailureLog) {
		t.Errorf("call at %d does not target the logging function", pc)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.FailRuns != 10 || c.SuccRuns != 10 || c.CBIRuns != 1000 {
		t.Errorf("defaults = %+v", c)
	}
	if c.CBIRate != 0.01 || c.OverheadRuns != 10 || c.MaxAttempts != 400 {
		t.Errorf("defaults = %+v", c)
	}
	// Explicit values survive.
	c2 := Config{FailRuns: 3, CBIRuns: 7}.withDefaults()
	if c2.FailRuns != 3 || c2.CBIRuns != 7 || c2.SuccRuns != 10 {
		t.Errorf("merge = %+v", c2)
	}
}

func TestFormatDistanceInTables(t *testing.T) {
	if source.FormatDistance(source.Infinite) != "inf" {
		t.Error("Infinite not rendered as inf")
	}
}
