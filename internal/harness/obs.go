package harness

import "stmdiag/internal/obs"

// beginRow tags the start of one table row in the sink and freezes the
// registry so endRow can attach a per-row metrics delta. Safe with a nil
// or metrics-less sink (returns an empty snapshot).
func beginRow(cfg Config, app, mode string) obs.Snapshot {
	if cfg.Obs == nil {
		return obs.Snapshot{}
	}
	cfg.Obs.Counter("harness.rows").Inc()
	cfg.Obs.Counter("harness.rows." + mode).Inc()
	// Phase transition in the pipeline flight recorder: rows begin in a
	// deterministic order, so the ring stays jobs-invariant.
	cfg.Obs.RecordFlight(obs.FlightEvent{
		Cycle: cfg.Obs.Cycles(), Trial: -1,
		Kind: obs.FlightPhase, Detail: mode + ":" + app,
	})
	if tr := cfg.Obs.Tracer(); tr != nil {
		tr.SetProcessName(obs.PipelinePID, "pipeline")
		tr.Instant("row:"+app, "harness", 0, obs.PipelinePID, 0,
			map[string]any{"mode": mode})
	}
	if cfg.Obs.Metrics == nil {
		return obs.Snapshot{}
	}
	return cfg.Obs.Metrics.Snapshot()
}

// endRow returns this row's metrics delta, or nil without a registry.
func endRow(cfg Config, before obs.Snapshot) *obs.Snapshot {
	if cfg.Obs == nil || cfg.Obs.Metrics == nil {
		return nil
	}
	d := cfg.Obs.Metrics.Snapshot().Delta(before)
	return &d
}
