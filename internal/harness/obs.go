package harness

import "stmdiag/internal/obs"

// beginRow tags the start of one table row in the sink and freezes the
// registry so endRow can attach a per-row metrics delta. Safe with a nil
// or metrics-less sink (returns an empty snapshot).
func beginRow(cfg Config, app, mode string) obs.Snapshot {
	if cfg.Obs == nil {
		return obs.Snapshot{}
	}
	cfg.Obs.Counter("harness.rows").Inc()
	cfg.Obs.Counter("harness.rows." + mode).Inc()
	// Phase transition in the pipeline flight recorder: rows begin in a
	// deterministic order, so the ring stays jobs-invariant.
	cfg.Obs.RecordFlight(obs.FlightEvent{
		Cycle: cfg.Obs.Cycles(), Trial: -1,
		Kind: obs.FlightPhase, Detail: mode + ":" + app,
	})
	if tr := cfg.Obs.Tracer(); tr != nil {
		tr.SetProcessName(obs.PipelinePID, "pipeline")
		tr.Instant("row:"+app, "harness", 0, obs.PipelinePID, 0,
			map[string]any{"mode": mode})
	}
	if cfg.Obs.Metrics == nil {
		return obs.Snapshot{}
	}
	return cfg.Obs.Metrics.Snapshot()
}

// endRow returns this row's metrics delta, or nil without a registry.
func endRow(cfg Config, before obs.Snapshot) *obs.Snapshot {
	if cfg.Obs == nil || cfg.Obs.Metrics == nil {
		return nil
	}
	d := cfg.Obs.Metrics.Snapshot().Delta(before)
	return &d
}

// Pipeline phase names recorded by beginPhase. String literals rather than
// the internal/prof constants: harness code binds `prof` locally for VM
// profiles, so the package is only imported by this package's tests.
const (
	phaseCapture = "capture" // instrumented production runs (profile collection)
	phaseReplay  = "replay"  // CBI baseline and overhead re-execution
	phaseRank    = "rank"    // statistical diagnosis
)

// beginPhase opens one pipeline-phase span and returns its closer. The
// closer attributes the parent sink's cycle-clock and run-count deltas to
// "prof.phase.<phase>.*" and, with an app, "prof.app.<app>.<phase>.*".
// Reading the parent registry is race-free and jobs-invariant here: phases
// begin and end between pool fan-outs (Collect/Map are barriers), where the
// registry holds exactly the trials committed in trial order. No-op unless
// the sink arms profiling.
func beginPhase(cfg Config, app, phase string) func() {
	s := cfg.Obs
	if !s.Profiled() || s.Metrics == nil {
		return func() {}
	}
	c0 := s.Cycles()
	r0 := s.Counter("vm.runs").Value()
	return func() {
		dc := s.Cycles() - c0
		dr := s.Counter("vm.runs").Value() - r0
		s.Counter("prof.phase." + phase + ".spans").Inc()
		s.Counter("prof.phase." + phase + ".cycles").Add(dc)
		s.Counter("prof.phase." + phase + ".runs").Add(dr)
		if app != "" {
			s.Counter("prof.app." + app + "." + phase + ".cycles").Add(dc)
			s.Counter("prof.app." + app + "." + phase + ".runs").Add(dr)
		}
	}
}
