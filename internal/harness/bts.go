package harness

import (
	"fmt"

	"stmdiag/internal/apps"
	"stmdiag/internal/isa"
	"stmdiag/internal/vm"
)

// BTSResult is one benchmark under the whole-execution Branch Trace Store
// (paper §2.1's alternative to the LBR): the root cause is always in the
// trace — nothing is ever evicted — but the recording overhead is in the
// tens of percent, which is why the paper rules BTS out for production.
type BTSResult struct {
	// App is the benchmark.
	App *apps.App
	// RootInTrace reports whether the root-cause (or related) branch
	// appears anywhere in the failure run's trace.
	RootInTrace bool
	// TraceRecords is the failure-run trace length (vs the LBR's 16).
	TraceRecords int
	// Overhead is the BTS recording cost on the success workload.
	Overhead float64
}

// RunBTS traces one benchmark's failure run with a Branch Trace Store and
// measures the recording overhead on its success workload.
func RunBTS(a *apps.App, seed int64) (*BTSResult, error) {
	p := a.Program()
	res := &BTSResult{App: a}

	// Failure run under tracing.
	failOpts := a.Fail.VMOptions(seed)
	failOpts.BTS = true
	m, err := vm.New(p, failOpts)
	if err != nil {
		return nil, err
	}
	r, err := m.Run()
	if err != nil {
		return nil, err
	}
	if !a.Fail.FailedRun(r) {
		return nil, fmt.Errorf("harness: %s BTS failure run did not fail", a.Name)
	}
	for _, core := range m.Cores() {
		if core.BTS == nil {
			continue
		}
		res.TraceRecords += core.BTS.Len()
		for _, rec := range core.BTS.Trace() {
			if rec.From < 0 || rec.From >= len(p.Instrs) {
				continue
			}
			id := p.Instrs[rec.From].BranchID
			if id == isa.NoBranch {
				continue
			}
			name := p.BranchName(id)
			if name == a.RootBranch || (a.RelatedBranch != "" && name == a.RelatedBranch) {
				res.RootInTrace = true
			}
		}
	}

	// Overhead on the success workload.
	base, err := vm.Run(p, a.Succeed.VMOptions(seed))
	if err != nil {
		return nil, err
	}
	succOpts := a.Succeed.VMOptions(seed)
	succOpts.BTS = true
	traced, err := vm.Run(p, succOpts)
	if err != nil {
		return nil, err
	}
	res.Overhead = overhead(float64(base.Cycles), float64(traced.Cycles))
	return res, nil
}
