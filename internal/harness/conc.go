package harness

import (
	"fmt"
	"sort"

	"stmdiag/internal/apps"
	"stmdiag/internal/core"
	"stmdiag/internal/kernel"
	"stmdiag/internal/obs"
	"stmdiag/internal/pmu"
	"stmdiag/internal/vm"
)

// ConcResult is one concurrency benchmark's Table 7 row.
type ConcResult struct {
	// App is the benchmark.
	App *apps.App
	// RankConf1 and RankConf2 are the LCR entry positions (1 = latest) of
	// the failure-predicting event in the failure-run profile under the
	// space-saving and space-consuming configurations; 0 means the event
	// was missed (or does not exist).
	RankConf1, RankConf2 int
	// LCRARank is the FPE's position in LCRA's predictor ranking (Conf2);
	// 0 means missed.
	LCRARank int
	// FailRate is the observed failure probability of the failure
	// workload, a sanity signal for the interleaving engineering.
	FailRate float64
	// Metrics is this row's telemetry delta, nil without a metrics sink.
	Metrics *obs.Snapshot
}

// fpeMatch builds an event predicate from an FPE description.
func fpeMatch(want *apps.FPEWant) func(core.Event) bool {
	return func(e core.Event) bool {
		return e.Kind == core.EventCoherence &&
			e.Access == want.Kind && e.State == want.State &&
			e.File == want.File && e.Line == want.Line
	}
}

// coherenceRank returns the 1-based depth of the first event matching want
// in the profile, or 0.
func coherenceRank(p *core.Instrumented, prof vm.Profile, want *apps.FPEWant) int {
	if want == nil {
		return 0
	}
	match := fpeMatch(want)
	for i, e := range core.CoherenceEvents(p.Prog, prof) {
		if match(e) {
			return i + 1
		}
	}
	return 0
}

// runConc executes one LCR-instrumented run in one trial attempt's context.
func runConc(a *apps.App, inst *core.Instrumented, w apps.Workload, seed int64, conf pmu.LCRConfig, cfg Config, tc *Trial) (*vm.Result, error) {
	opts := w.VMOptions(seed)
	opts.Driver = kernel.Driver{}
	opts.SegvIoctls = inst.SegvIoctls
	opts.LCRConfig = conf
	opts.LCRSize = cfg.LCRSize
	opts.Obs = tc.Sink
	opts.Faults = tc.Faults
	return vm.Run(inst.Prog, opts)
}

// collectConc gathers n failing (or succeeding) profiles under a config,
// fanning the runs out through the trial pool as portable "conc-profile"
// trials. label names the seed stream (scoped by the app name) so every
// call site draws decorrelated seeds.
func collectConc(a *apps.App, build core.Options, conf pmu.LCRConfig, wantFail bool, n int, cfg Config, pool *Pool, label string) ([]vm.Profile, int, error) {
	stream := a.Name + "/" + label
	out, attempts, err := CollectKind[vm.Profile](pool, cfg.MaxAttempts, n, stream, "conc-profile",
		concProfileParams{App: a.Name, Build: build, Conf: conf, WantFail: wantFail,
			Seed: cfg.Seed, LCRSize: cfg.LCRSize})
	if err != nil {
		return nil, attempts, err
	}
	if len(out) < n {
		return nil, attempts, fmt.Errorf("harness: %s: only %d/%d %v-profiles in %d attempts",
			a.Name, len(out), n, wantFail, attempts)
	}
	return out, attempts, nil
}

// modalRank returns the most common non-negative value; ties break low.
func modalRank(ranks []int) int {
	counts := map[int]int{}
	for _, r := range ranks {
		counts[r]++
	}
	best, bestN := 0, -1
	var keys []int
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		if counts[k] > bestN {
			best, bestN = k, counts[k]
		}
	}
	return best
}

// RunConcurrent reproduces one Table 7 row.
func RunConcurrent(a *apps.App, cfg Config) (*ConcResult, error) {
	cfg = cfg.withDefaults()
	pool := cfg.pool()
	res := &ConcResult{App: a}
	rowStart := beginRow(cfg, a.Name, "concurrent")

	optsLCR := core.Options{LCR: true, Toggling: true}
	inst, err := cachedBuild(a, optsLCR)
	if err != nil {
		return nil, err
	}

	// LCRLOG ranks: modal FPE depth across a handful of failing runs.
	endCapture := beginPhase(cfg, a.Name, phaseCapture)
	want1 := a.FPEConf1
	if want1 == nil {
		want1 = a.FPE
	}
	if a.FPE != nil || want1 != nil {
		// For read-too-early order violations the Conf1 signal is the
		// shared load that success runs record and failure runs miss;
		// measure its position where it exists (paper §4.2.2).
		profs1, _, err := collectConc(a, optsLCR, pmu.ConfSpaceSaving, !a.Conf1InSuccess, 5, cfg, pool, "conf1")
		if err != nil {
			return nil, err
		}
		var ranks []int
		for _, pr := range profs1 {
			ranks = append(ranks, coherenceRank(inst, pr, want1))
		}
		res.RankConf1 = modalRank(ranks)
	}
	profs2, attempts, err := collectConc(a, optsLCR, pmu.ConfSpaceConsuming, true, cfg.FailRuns, cfg, pool, "conf2-fail")
	if err != nil {
		return nil, err
	}
	res.FailRate = float64(cfg.FailRuns) / float64(attempts)
	if a.FPE != nil {
		var ranks []int
		for _, pr := range profs2 {
			ranks = append(ranks, coherenceRank(inst, pr, a.FPE))
		}
		res.RankConf2 = modalRank(ranks)
	}

	// LCRA (Conf2): reactive success sites paired with the failure site.
	failPC, err := origFailurePC(a, inst, profs2[0])
	if err != nil {
		return nil, err
	}
	optsReactive := core.Options{LCR: true, Toggling: true,
		Scheme: core.SchemeReactive, FailurePCs: []int{failPC}}
	reactive, err := cachedBuild(a, optsReactive)
	if err != nil {
		return nil, err
	}
	succProfs, _, err := collectConc(a, optsReactive, pmu.ConfSpaceConsuming, false, cfg.SuccRuns, cfg, pool, "conf2-succ")
	if err != nil {
		return nil, err
	}
	endCapture()
	endRank := beginPhase(cfg, a.Name, phaseRank)
	var fail, succ []core.ProfiledRun
	for _, pr := range profs2 {
		fail = append(fail, core.ProfiledRun{Prog: inst.Prog, Profile: pr})
	}
	for _, pr := range succProfs {
		succ = append(succ, core.ProfiledRun{Prog: reactive.Prog, Profile: pr})
	}
	report, err := core.DiagnoseWith(core.ModeLCR, cfg.Ranker, fail, succ)
	if err != nil {
		return nil, err
	}
	if a.FPE != nil {
		res.LCRARank = report.RankOfCoherence(fpeMatch(a.FPE))
		// Only a high-confidence predictor counts, mirroring the paper's
		// "best failure predictor" requirement.
		if res.LCRARank > 0 {
			s := report.Ranking[res.LCRARank-1]
			if s.Score < 0.75 {
				res.LCRARank = 0
			}
		}
	}
	endRank()
	res.Metrics = endRow(cfg, rowStart)
	return res, nil
}
