package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPerfectPredictorRanksFirst(t *testing.T) {
	runs := []Run[string]{
		{Failed: true, Events: []string{"root", "noise1"}},
		{Failed: true, Events: []string{"root", "noise2"}},
		{Failed: true, Events: []string{"root"}},
		{Failed: false, Events: []string{"noise1", "noise2"}},
		{Failed: false, Events: []string{"noise2"}},
	}
	ranking := Rank(runs)
	if ranking[0].Event != "root" {
		t.Fatalf("top event = %v", ranking[0])
	}
	top := ranking[0]
	if top.Precision != 1 || top.Recall != 1 || top.Score != 1 {
		t.Errorf("top scores = %+v", top)
	}
	if got := RankOf(ranking, func(e string) bool { return e == "root" }); got != 1 {
		t.Errorf("RankOf(root) = %d", got)
	}
}

func TestNoisyEventScoresLower(t *testing.T) {
	runs := []Run[string]{
		{Failed: true, Events: []string{"both", "failonly"}},
		{Failed: true, Events: []string{"both"}},
		{Failed: false, Events: []string{"both"}},
		{Failed: false, Events: []string{"both"}},
	}
	ranking := Rank(runs)
	if ranking[0].Event != "failonly" {
		t.Fatalf("ranking = %v", ranking)
	}
	// "both": precision 0.5, recall 1.0 -> harmonic mean 2/3.
	var both Scored[string]
	for _, s := range ranking {
		if s.Event == "both" {
			both = s
		}
	}
	if math.Abs(both.Score-2.0/3.0) > 1e-9 {
		t.Errorf("both score = %v, want 2/3", both.Score)
	}
}

func TestDuplicateEventsCollapse(t *testing.T) {
	runs := []Run[string]{
		{Failed: true, Events: []string{"e", "e", "e"}},
		{Failed: false, Events: []string{"e"}},
	}
	r := Rank(runs)
	if r[0].InFail != 1 || r[0].InSucc != 1 {
		t.Errorf("duplicates not collapsed: %+v", r[0])
	}
}

func TestMultipleRootCausesStillRanked(t *testing.T) {
	// Paper §5.3 "Multiple failures": two root causes behind the same
	// failure site; neither appears in every failure run, but both must
	// outrank noise.
	runs := []Run[string]{
		{Failed: true, Events: []string{"rootA", "noise"}},
		{Failed: true, Events: []string{"rootA"}},
		{Failed: true, Events: []string{"rootB", "noise"}},
		{Failed: false, Events: []string{"noise"}},
		{Failed: false, Events: []string{"noise"}},
	}
	ranking := Rank(runs)
	posA := RankOf(ranking, func(e string) bool { return e == "rootA" })
	posB := RankOf(ranking, func(e string) bool { return e == "rootB" })
	posN := RankOf(ranking, func(e string) bool { return e == "noise" })
	// The dominant root cause must outrank the noise; the rarer root cause
	// still appears with non-zero score (the paper only promises ranking is
	// "rarely affected" by multiple root causes, not never).
	if posA >= posN {
		t.Errorf("dominant root cause below noise: A=%d noise=%d", posA, posN)
	}
	if posB == 0 {
		t.Error("secondary root cause missing from ranking")
	}
}

func TestRankDeterministicTies(t *testing.T) {
	runs := []Run[string]{
		{Failed: true, Events: []string{"b", "a"}},
		{Failed: false, Events: []string{}},
	}
	r1 := Rank(runs)
	r2 := Rank(runs)
	if r1[0].Event != r2[0].Event || r1[0].Event != "a" {
		t.Errorf("tie-break not deterministic/lexicographic: %v vs %v", r1[0], r2[0])
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if got := Rank[string](nil); len(got) != 0 {
		t.Errorf("Rank(nil) = %v", got)
	}
	// Only success runs: every event scores 0.
	r := Rank([]Run[string]{{Failed: false, Events: []string{"x"}}})
	if len(r) != 1 || r[0].Score != 0 {
		t.Errorf("success-only ranking = %v", r)
	}
	if got := RankOf(r, func(string) bool { return false }); got != 0 {
		t.Errorf("RankOf(no match) = %d", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	if HarmonicMean(0, 1) != 0 || HarmonicMean(1, 0) != 0 {
		t.Error("harmonic mean with a zero operand must be 0")
	}
	if got := HarmonicMean(1, 1); got != 1 {
		t.Errorf("HarmonicMean(1,1) = %v", got)
	}
	if got := HarmonicMean(0.5, 1); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("HarmonicMean(0.5,1) = %v", got)
	}
}

func TestHarmonicMeanEdgeCases(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name string
		a, b float64
		want float64
	}{
		{"nan-left", nan, 1, 0},
		{"nan-right", 1, nan, 0},
		{"nan-both", nan, nan, 0},
		{"negative-left", -3, 2, 0},
		{"negative-both", -3, -2, 0},
		{"neg-inf", math.Inf(-1), 5, 0},
		{"inf-both", inf, inf, inf},
		{"inf-left", inf, 2, 4},
		{"inf-right", 2, inf, 4},
		{"huge-finite", 1.5e308, 1.5e308, 1.5e308},
		{"huge-asymmetric", math.MaxFloat64, 2, 4},
	}
	for _, c := range cases {
		got := HarmonicMean(c.a, c.b)
		if math.IsNaN(got) {
			t.Errorf("%s: HarmonicMean(%v, %v) = NaN", c.name, c.a, c.b)
			continue
		}
		// Huge-but-finite operands go through the overflow-safe reciprocal
		// form, which is only accurate to rounding.
		if diff := math.Abs(got - c.want); diff > 1e-9*math.Abs(c.want) && diff > 1e-12 {
			t.Errorf("%s: HarmonicMean(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestMeanSkipsNaN(t *testing.T) {
	nan := math.NaN()
	if got := Mean([]float64{nan, 2, 4}); got != 3 {
		t.Errorf("Mean([NaN,2,4]) = %v, want 3", got)
	}
	if got := Mean([]float64{nan, nan}); got != 0 {
		t.Errorf("Mean(all NaN) = %v, want 0", got)
	}
	if got := Mean([]float64{nan}); got != 0 {
		t.Errorf("Mean([NaN]) = %v, want 0", got)
	}
}

// Property: scores are always within [0,1], the ranking is sorted
// descending, and an event present in every failure run and no success run
// is ranked first with score 1.
func TestRankQuick(t *testing.T) {
	f := func(seedEvents [][2]uint8, nFail, nSucc uint8) bool {
		nf := int(nFail%5) + 1
		ns := int(nSucc % 5)
		var runs []Run[int]
		for i := 0; i < nf; i++ {
			evs := []int{999} // the perfect predictor
			for _, se := range seedEvents {
				evs = append(evs, int(se[0]%16))
			}
			runs = append(runs, Run[int]{Failed: true, Events: evs})
		}
		for i := 0; i < ns; i++ {
			var evs []int
			for _, se := range seedEvents {
				evs = append(evs, int(se[1]%16))
			}
			runs = append(runs, Run[int]{Failed: false, Events: evs})
		}
		ranking := Rank(runs)
		prev := math.Inf(1)
		for _, s := range ranking {
			if s.Score < 0 || s.Score > 1 || s.Precision < 0 || s.Precision > 1 || s.Recall < 0 || s.Recall > 1 {
				return false
			}
			if s.Score > prev {
				return false
			}
			prev = s.Score
		}
		// 999 appears in every failure run; unless a collision gives some
		// other event the same perfect profile, it must rank 1 with score 1.
		return ranking[0].Score == 1 && RankOf(ranking, func(e int) bool { return e == 999 }) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// buildCountRanking accumulates per-event counters over the runs in the
// given visit order and ranks from the counters alone — the cooperative
// (fleet) aggregation path. Rank over the same runs is the monolithic path.
func buildCountRanking(runs []Run[string], order []int) []Scored[string] {
	inFail := map[string]int{}
	inSucc := map[string]int{}
	failTotal := 0
	for _, i := range order {
		r := runs[i]
		if r.Failed {
			failTotal++
		}
		seen := map[string]bool{}
		for _, e := range r.Events {
			if seen[e] {
				continue
			}
			seen[e] = true
			if r.Failed {
				inFail[e]++
			} else {
				inSucc[e]++
			}
		}
	}
	events := map[string]bool{}
	for e := range inFail {
		events[e] = true
	}
	for e := range inSucc {
		events[e] = true
	}
	out := make([]Scored[string], 0, len(events))
	for e := range events {
		out = append(out, ScoreCounts(e, inFail[e], inSucc[e], failTotal))
	}
	SortScored(out)
	return out
}

// TestRankOrderIndependentMerge pins the property the incremental fleet
// ranker depends on: counters accumulated in any arrival order (out-of-order
// batches from many machines) rank byte-identically to the monolithic Rank
// over the full run set.
func TestRankOrderIndependentMerge(t *testing.T) {
	runs := []Run[string]{
		{Failed: true, Events: []string{"root", "noise1", "shared"}},
		{Failed: true, Events: []string{"root", "shared"}},
		{Failed: true, Events: []string{"root", "noise2"}},
		{Failed: true, Events: []string{}}, // lost capture
		{Failed: false, Events: []string{"shared", "noise1"}},
		{Failed: false, Events: []string{"noise2"}},
		{Failed: false, Events: []string{"shared"}},
	}
	want := Rank(runs)
	orders := [][]int{
		{0, 1, 2, 3, 4, 5, 6},
		{6, 5, 4, 3, 2, 1, 0},
		{3, 0, 6, 2, 4, 1, 5},
		{5, 6, 4, 1, 0, 3, 2},
	}
	for _, order := range orders {
		got := buildCountRanking(runs, order)
		if len(got) != len(want) {
			t.Fatalf("order %v: %d events, want %d", order, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("order %v: rank %d = %+v, want %+v", order, i+1, got[i], want[i])
			}
		}
	}
}

// TestSortScoredTieBreakTotalOrder checks the exported Less/SortScored pair
// breaks every tie deterministically regardless of input permutation: equal
// score falls back to precision, then InFail, then the formatted event.
func TestSortScoredTieBreakTotalOrder(t *testing.T) {
	// Four events engineered to tie pairwise at successive tie-break levels.
	base := []Scored[string]{
		ScoreCounts("zeta", 2, 2, 4),  // score .5*... ties with "alpha" everywhere
		ScoreCounts("alpha", 2, 2, 4), // ...so formatted name decides
		ScoreCounts("mid", 2, 6, 4),   // lower precision, same InFail
		ScoreCounts("few", 1, 0, 4),   // precision 1, fewer failing occurrences
	}
	perms := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}}
	var want []Scored[string]
	for _, p := range perms {
		in := make([]Scored[string], len(base))
		for i, j := range p {
			in[i] = base[j]
		}
		SortScored(in)
		for i := 1; i < len(in); i++ {
			if Less(in[i], in[i-1]) {
				t.Fatalf("perm %v: out of order at %d: %v before %v", p, i, in[i-1], in[i])
			}
			if in[i] == in[i-1] {
				t.Fatalf("perm %v: duplicate entry %v", p, in[i])
			}
		}
		if want == nil {
			want = in
			if want[0].Event != "alpha" || want[1].Event != "zeta" {
				t.Fatalf("full tie must fall back to event name: %v", want)
			}
			continue
		}
		for i := range want {
			if in[i] != want[i] {
				t.Errorf("perm %v: rank %d = %+v, want %+v", p, i+1, in[i], want[i])
			}
		}
	}
}

// TestScoreCountsMatchesRank cross-checks ScoreCounts against Rank's
// arithmetic on a randomized run population.
func TestScoreCountsMatchesRank(t *testing.T) {
	f := func(fails, succs uint8) bool {
		nf, ns := int(fails%8), int(succs%8)
		var runs []Run[string]
		for i := 0; i < nf; i++ {
			runs = append(runs, Run[string]{Failed: true, Events: []string{"e"}})
		}
		for i := 0; i < ns; i++ {
			runs = append(runs, Run[string]{Failed: false, Events: []string{"e"}})
		}
		if nf+ns == 0 {
			return true
		}
		want := Rank(runs)[0]
		got := ScoreCounts("e", nf, ns, nf)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAssessCountsMatchesAssess(t *testing.T) {
	cases := []struct {
		failTotal, usable int
		want              Verdict
	}{
		{0, 0, VerdictInsufficient},
		{4, 0, VerdictInsufficient},
		{4, 1, VerdictInsufficient},
		{4, 2, VerdictConclusive},
		{5, 2, VerdictInsufficient},
		{5, 3, VerdictConclusive},
	}
	for _, c := range cases {
		if got := AssessCounts(c.failTotal, c.usable); got != c.want {
			t.Errorf("AssessCounts(%d, %d) = %v, want %v", c.failTotal, c.usable, got, c.want)
		}
		var runs []Run[string]
		for i := 0; i < c.usable; i++ {
			runs = append(runs, Run[string]{Failed: true, Events: []string{"e"}})
		}
		for i := c.usable; i < c.failTotal; i++ {
			runs = append(runs, Run[string]{Failed: true})
		}
		if got := Assess(runs); got != c.want {
			t.Errorf("Assess(fail=%d usable=%d) = %v, want %v", c.failTotal, c.usable, got, c.want)
		}
	}
}
