package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPerfectPredictorRanksFirst(t *testing.T) {
	runs := []Run[string]{
		{Failed: true, Events: []string{"root", "noise1"}},
		{Failed: true, Events: []string{"root", "noise2"}},
		{Failed: true, Events: []string{"root"}},
		{Failed: false, Events: []string{"noise1", "noise2"}},
		{Failed: false, Events: []string{"noise2"}},
	}
	ranking := Rank(runs)
	if ranking[0].Event != "root" {
		t.Fatalf("top event = %v", ranking[0])
	}
	top := ranking[0]
	if top.Precision != 1 || top.Recall != 1 || top.Score != 1 {
		t.Errorf("top scores = %+v", top)
	}
	if got := RankOf(ranking, func(e string) bool { return e == "root" }); got != 1 {
		t.Errorf("RankOf(root) = %d", got)
	}
}

func TestNoisyEventScoresLower(t *testing.T) {
	runs := []Run[string]{
		{Failed: true, Events: []string{"both", "failonly"}},
		{Failed: true, Events: []string{"both"}},
		{Failed: false, Events: []string{"both"}},
		{Failed: false, Events: []string{"both"}},
	}
	ranking := Rank(runs)
	if ranking[0].Event != "failonly" {
		t.Fatalf("ranking = %v", ranking)
	}
	// "both": precision 0.5, recall 1.0 -> harmonic mean 2/3.
	var both Scored[string]
	for _, s := range ranking {
		if s.Event == "both" {
			both = s
		}
	}
	if math.Abs(both.Score-2.0/3.0) > 1e-9 {
		t.Errorf("both score = %v, want 2/3", both.Score)
	}
}

func TestDuplicateEventsCollapse(t *testing.T) {
	runs := []Run[string]{
		{Failed: true, Events: []string{"e", "e", "e"}},
		{Failed: false, Events: []string{"e"}},
	}
	r := Rank(runs)
	if r[0].InFail != 1 || r[0].InSucc != 1 {
		t.Errorf("duplicates not collapsed: %+v", r[0])
	}
}

func TestMultipleRootCausesStillRanked(t *testing.T) {
	// Paper §5.3 "Multiple failures": two root causes behind the same
	// failure site; neither appears in every failure run, but both must
	// outrank noise.
	runs := []Run[string]{
		{Failed: true, Events: []string{"rootA", "noise"}},
		{Failed: true, Events: []string{"rootA"}},
		{Failed: true, Events: []string{"rootB", "noise"}},
		{Failed: false, Events: []string{"noise"}},
		{Failed: false, Events: []string{"noise"}},
	}
	ranking := Rank(runs)
	posA := RankOf(ranking, func(e string) bool { return e == "rootA" })
	posB := RankOf(ranking, func(e string) bool { return e == "rootB" })
	posN := RankOf(ranking, func(e string) bool { return e == "noise" })
	// The dominant root cause must outrank the noise; the rarer root cause
	// still appears with non-zero score (the paper only promises ranking is
	// "rarely affected" by multiple root causes, not never).
	if posA >= posN {
		t.Errorf("dominant root cause below noise: A=%d noise=%d", posA, posN)
	}
	if posB == 0 {
		t.Error("secondary root cause missing from ranking")
	}
}

func TestRankDeterministicTies(t *testing.T) {
	runs := []Run[string]{
		{Failed: true, Events: []string{"b", "a"}},
		{Failed: false, Events: []string{}},
	}
	r1 := Rank(runs)
	r2 := Rank(runs)
	if r1[0].Event != r2[0].Event || r1[0].Event != "a" {
		t.Errorf("tie-break not deterministic/lexicographic: %v vs %v", r1[0], r2[0])
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if got := Rank[string](nil); len(got) != 0 {
		t.Errorf("Rank(nil) = %v", got)
	}
	// Only success runs: every event scores 0.
	r := Rank([]Run[string]{{Failed: false, Events: []string{"x"}}})
	if len(r) != 1 || r[0].Score != 0 {
		t.Errorf("success-only ranking = %v", r)
	}
	if got := RankOf(r, func(string) bool { return false }); got != 0 {
		t.Errorf("RankOf(no match) = %d", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	if HarmonicMean(0, 1) != 0 || HarmonicMean(1, 0) != 0 {
		t.Error("harmonic mean with a zero operand must be 0")
	}
	if got := HarmonicMean(1, 1); got != 1 {
		t.Errorf("HarmonicMean(1,1) = %v", got)
	}
	if got := HarmonicMean(0.5, 1); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("HarmonicMean(0.5,1) = %v", got)
	}
}

func TestHarmonicMeanEdgeCases(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name string
		a, b float64
		want float64
	}{
		{"nan-left", nan, 1, 0},
		{"nan-right", 1, nan, 0},
		{"nan-both", nan, nan, 0},
		{"negative-left", -3, 2, 0},
		{"negative-both", -3, -2, 0},
		{"neg-inf", math.Inf(-1), 5, 0},
		{"inf-both", inf, inf, inf},
		{"inf-left", inf, 2, 4},
		{"inf-right", 2, inf, 4},
		{"huge-finite", 1.5e308, 1.5e308, 1.5e308},
		{"huge-asymmetric", math.MaxFloat64, 2, 4},
	}
	for _, c := range cases {
		got := HarmonicMean(c.a, c.b)
		if math.IsNaN(got) {
			t.Errorf("%s: HarmonicMean(%v, %v) = NaN", c.name, c.a, c.b)
			continue
		}
		// Huge-but-finite operands go through the overflow-safe reciprocal
		// form, which is only accurate to rounding.
		if diff := math.Abs(got - c.want); diff > 1e-9*math.Abs(c.want) && diff > 1e-12 {
			t.Errorf("%s: HarmonicMean(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestMeanSkipsNaN(t *testing.T) {
	nan := math.NaN()
	if got := Mean([]float64{nan, 2, 4}); got != 3 {
		t.Errorf("Mean([NaN,2,4]) = %v, want 3", got)
	}
	if got := Mean([]float64{nan, nan}); got != 0 {
		t.Errorf("Mean(all NaN) = %v, want 0", got)
	}
	if got := Mean([]float64{nan}); got != 0 {
		t.Errorf("Mean([NaN]) = %v, want 0", got)
	}
}

// Property: scores are always within [0,1], the ranking is sorted
// descending, and an event present in every failure run and no success run
// is ranked first with score 1.
func TestRankQuick(t *testing.T) {
	f := func(seedEvents [][2]uint8, nFail, nSucc uint8) bool {
		nf := int(nFail%5) + 1
		ns := int(nSucc % 5)
		var runs []Run[int]
		for i := 0; i < nf; i++ {
			evs := []int{999} // the perfect predictor
			for _, se := range seedEvents {
				evs = append(evs, int(se[0]%16))
			}
			runs = append(runs, Run[int]{Failed: true, Events: evs})
		}
		for i := 0; i < ns; i++ {
			var evs []int
			for _, se := range seedEvents {
				evs = append(evs, int(se[1]%16))
			}
			runs = append(runs, Run[int]{Failed: false, Events: evs})
		}
		ranking := Rank(runs)
		prev := math.Inf(1)
		for _, s := range ranking {
			if s.Score < 0 || s.Score > 1 || s.Precision < 0 || s.Precision > 1 || s.Recall < 0 || s.Recall > 1 {
				return false
			}
			if s.Score > prev {
				return false
			}
			prev = s.Score
		}
		// 999 appears in every failure run; unless a collision gives some
		// other event the same perfect profile, it must rank 1 with score 1.
		return ranking[0].Score == 1 && RankOf(ranking, func(e int) bool { return e == 999 }) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
