package stats

import (
	"math"
	"testing"
)

// decodeRuns turns raw fuzz bytes into a bounded run set: each run is a
// header byte (bit 0 = failed, upper bits = event count) followed by that
// many event bytes, truncated to the 0..15 event universe so collisions —
// the interesting case for ranking — actually happen.
func decodeRuns(data []byte) []Run[int] {
	var runs []Run[int]
	for len(data) > 0 && len(runs) < 12 {
		hdr := data[0]
		data = data[1:]
		n := int(hdr>>1) % 8
		if n > len(data) {
			n = len(data)
		}
		evs := make([]int, 0, n)
		for _, b := range data[:n] {
			evs = append(evs, int(b%16))
		}
		data = data[n:]
		runs = append(runs, Run[int]{Failed: hdr&1 == 1, Events: evs})
	}
	return runs
}

// FuzzRank checks the ranking invariants on arbitrary run sets: no panics,
// every statistic stays within [0,1] and is never NaN, the ranking is
// sorted best-first, and — because the model only counts set membership —
// the ranking is identical whatever order the runs arrive in.
func FuzzRank(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0x03, 0x05, 0x02, 0x05, 0x09})
	f.Add([]byte{0x07, 0x01, 0x02, 0x03, 0x06, 0x01, 0x02, 0x04, 0x05, 0xff})
	f.Add([]byte{0x0f, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x0e, 0x11})
	f.Fuzz(func(t *testing.T, data []byte) {
		runs := decodeRuns(data)
		ranking := Rank(runs)
		prev := math.Inf(1)
		for _, s := range ranking {
			for name, v := range map[string]float64{
				"score": s.Score, "precision": s.Precision, "recall": s.Recall,
			} {
				if math.IsNaN(v) || v < 0 || v > 1 {
					t.Fatalf("%s out of range for %+v", name, s)
				}
			}
			if s.Score > prev {
				t.Fatalf("ranking not sorted: %v after %v", s.Score, prev)
			}
			prev = s.Score
			if s.InFail < 0 || s.InSucc < 0 || s.InFail+s.InSucc == 0 {
				t.Fatalf("impossible occurrence counts: %+v", s)
			}
		}
		if got := RankOf(ranking, func(int) bool { return true }); len(ranking) > 0 && got != 1 {
			t.Fatalf("RankOf(match-all) = %d", got)
		}
		// Permutation stability: reversing the run order must not change a
		// single entry — ties break on the events themselves, never on
		// arrival order.
		rev := make([]Run[int], len(runs))
		for i, r := range runs {
			rev[len(runs)-1-i] = r
		}
		reranked := Rank(rev)
		if len(reranked) != len(ranking) {
			t.Fatalf("permuted ranking has %d entries, want %d", len(reranked), len(ranking))
		}
		for i := range ranking {
			if ranking[i] != reranked[i] {
				t.Fatalf("entry %d differs under permutation: %+v vs %+v", i, ranking[i], reranked[i])
			}
		}
	})
}

// FuzzHarmonicMean checks the score combiner over the full float64 domain:
// the result is never NaN, never negative, symmetric in its arguments, and
// never exceeds twice the larger operand (the a→∞ limit is 2b).
func FuzzHarmonicMean(f *testing.F) {
	f.Add(1.0, 1.0)
	f.Add(0.5, 1.0)
	f.Add(0.0, 0.25)
	f.Add(math.NaN(), 1.0)
	f.Add(math.Inf(1), math.Inf(1))
	f.Add(math.Inf(1), 0.25)
	f.Add(-3.0, 2.0)
	f.Add(1.5e308, 1.5e308)
	f.Add(math.MaxFloat64, 2.0)
	f.Add(5e-324, 5e-324)
	f.Fuzz(func(t *testing.T, a, b float64) {
		h := HarmonicMean(a, b)
		if math.IsNaN(h) {
			t.Fatalf("HarmonicMean(%v, %v) = NaN", a, b)
		}
		if h < 0 {
			t.Fatalf("HarmonicMean(%v, %v) = %v < 0", a, b, h)
		}
		if sym := HarmonicMean(b, a); sym != h {
			t.Fatalf("not symmetric: HM(%v,%v)=%v but HM(%v,%v)=%v", a, b, h, b, a, sym)
		}
		if hi := math.Max(a, b); h > 0 && !math.IsInf(hi, 1) && h > 2*hi*(1+1e-9) {
			t.Fatalf("HarmonicMean(%v, %v) = %v exceeds 2*max", a, b, h)
		}
	})
}
