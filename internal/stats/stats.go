// Package stats implements the statistical model LBRA and LCRA use to
// locate failure root causes (paper §5.2 "How to compare?").
//
// Each success or failure run contributes a profile — the set of events
// recorded in its LBR/LCR snapshot. An event's expected prediction
// precision is |F&e|/|e| (of the runs whose profile contains e, how many
// failed) and its expected prediction recall is |F&e|/|F| (of the failing
// runs, how many contain e). Events are ranked by the harmonic mean of the
// two, and the top-ranked event is reported as the best failure predictor.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Run is one run's profile reduced to an event set.
type Run[E comparable] struct {
	// Failed reports whether the run failed.
	Failed bool
	// Events are the events present in the run's profile; duplicates are
	// collapsed (presence semantics, as in the paper's model).
	Events []E
}

// Scored is one event with its prediction statistics.
type Scored[E comparable] struct {
	// Event is the event.
	Event E
	// InFail and InSucc count the failing/successful runs whose profiles
	// contain the event.
	InFail, InSucc int
	// Precision is |F&e| / |e|.
	Precision float64
	// Recall is |F&e| / |F|.
	Recall float64
	// Score is the harmonic mean of Precision and Recall.
	Score float64
}

// String formats the scored event for reports.
func (s Scored[E]) String() string {
	return fmt.Sprintf("%v score=%.3f (precision=%.3f recall=%.3f fail=%d succ=%d)",
		s.Event, s.Score, s.Precision, s.Recall, s.InFail, s.InSucc)
}

// HarmonicMean returns the harmonic mean of two non-negative quantities,
// zero when either is zero, non-positive, or NaN. Infinite inputs take the
// limit: HarmonicMean(+Inf, b) = 2b, and HarmonicMean(+Inf, +Inf) = +Inf —
// never the NaN that 2*a*b/(a+b) would produce from Inf/Inf.
func HarmonicMean(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) || a <= 0 || b <= 0 {
		return 0
	}
	switch {
	case math.IsInf(a, 1) && math.IsInf(b, 1):
		return math.Inf(1)
	case math.IsInf(a, 1):
		return 2 * b
	case math.IsInf(b, 1):
		return 2 * a
	}
	// 2*(a*b), not (2*a)*b: the grouping keeps the expression symmetric in
	// a and b even when one doubling would overflow. Doubling is exact, so
	// the value is unchanged wherever neither form overflows.
	h := 2 * (a * b) / (a + b)
	if math.IsNaN(h) || math.IsInf(h, 1) {
		// 2*a*b overflowed for huge finite operands. Both operands must be
		// enormous for that to happen, so the reciprocal form cannot itself
		// overflow or divide by zero here.
		h = 2 / (1/a + 1/b)
	}
	return h
}

// ScoreCounts builds one event's Scored from merged occurrence counters:
// inFail/inSucc count the failing/successful runs whose profiles contain
// the event, failTotal the failing runs overall. Because counters are plain
// sums, they can be accumulated in any order — per run, per batch, per
// machine — and ScoreCounts yields exactly the statistics Rank computes
// from the full run set. This is what makes cooperative (fleet) aggregation
// equivalent to monolithic diagnosis.
func ScoreCounts[E comparable](e E, inFail, inSucc, failTotal int) Scored[E] {
	var prec, rec float64
	if inFail+inSucc > 0 {
		prec = float64(inFail) / float64(inFail+inSucc)
	}
	if failTotal > 0 {
		rec = float64(inFail) / float64(failTotal)
	}
	return Scored[E]{
		Event:     e,
		InFail:    inFail,
		InSucc:    inSucc,
		Precision: prec,
		Recall:    rec,
		Score:     HarmonicMean(prec, rec),
	}
}

// Less is the ranking's strict total order: higher score first, ties broken
// by higher precision, then more failing occurrences, then the event's
// formatted representation. Exposed so incremental rankers can maintain a
// sorted ranking (binary-search insertion) that matches a full SortScored
// byte for byte.
func Less[E comparable](a, b Scored[E]) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Precision != b.Precision {
		return a.Precision > b.Precision
	}
	if a.InFail != b.InFail {
		return a.InFail > b.InFail
	}
	return fmt.Sprint(a.Event) < fmt.Sprint(b.Event)
}

// SortScored orders a ranking best-first under Less.
func SortScored[E comparable](out []Scored[E]) {
	sort.Slice(out, func(i, j int) bool { return Less(out[i], out[j]) })
}

// Counts reduces a run set to the per-event spectrum counters every ranker
// consumes: how many failing and successful runs contain each event
// (presence semantics — duplicates within a run collapse), plus the
// failing/successful run totals. Rank scores these with the harmonic-mean
// model; internal/spectrum scores the same counters with Ochiai and
// Tarantula, so the rankers differ only in arithmetic, never in counting.
func Counts[E comparable](runs []Run[E]) (inFail, inSucc map[E]int, failTotal, succTotal int) {
	inFail = make(map[E]int)
	inSucc = make(map[E]int)
	for _, r := range runs {
		if r.Failed {
			failTotal++
		} else {
			succTotal++
		}
		seen := make(map[E]bool, len(r.Events))
		for _, e := range r.Events {
			if seen[e] {
				continue
			}
			seen[e] = true
			if r.Failed {
				inFail[e]++
			} else {
				inSucc[e]++
			}
		}
	}
	return inFail, inSucc, failTotal, succTotal
}

// Rank scores every event appearing in any run and returns them best-first.
// Ties break deterministically: higher precision first, then more failing
// occurrences, then the event's formatted representation.
func Rank[E comparable](runs []Run[E]) []Scored[E] {
	inFail, inSucc, failTotal, _ := Counts(runs)
	events := make(map[E]bool, len(inFail)+len(inSucc))
	for e := range inFail {
		events[e] = true
	}
	for e := range inSucc {
		events[e] = true
	}
	out := make([]Scored[E], 0, len(events))
	for e := range events {
		out = append(out, ScoreCounts(e, inFail[e], inSucc[e], failTotal))
	}
	SortScored(out)
	return out
}

// RankOf returns the 1-based position of the first event satisfying match
// in the ranking, or 0 if absent.
func RankOf[E comparable](ranking []Scored[E], match func(E) bool) int {
	for i, s := range ranking {
		if match(s.Event) {
			return i + 1
		}
	}
	return 0
}

// Mean returns the arithmetic mean of xs, 0 for empty input. NaN elements
// are skipped (a poisoned sample must not erase the whole aggregate); if
// every element is NaN the mean is 0.
func Mean(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		sum += x
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
