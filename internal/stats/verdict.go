package stats

// Verdict grades how much usable evidence a ranking rests on. Fault
// injection (and, on real hardware, the pollution sources of paper §4.2)
// can strip profiles down to nothing: a drained LBR read, a lost
// success-site snapshot, a run whose every record was corrupted out of
// program range. A diagnosis computed from such inputs still ranks
// *something*, so consumers need an explicit signal that the ranking
// should not be trusted rather than a silently empty or skewed table.
type Verdict uint8

const (
	// VerdictConclusive means the ranking rests on enough well-formed
	// profiles to take its ordering at face value.
	VerdictConclusive Verdict = iota
	// VerdictInsufficient means too little usable evidence survived
	// capture: no failing run carried events, or most failure profiles
	// came back empty. The ranking is advisory at best.
	VerdictInsufficient
)

// String names the verdict the way reports print it.
func (v Verdict) String() string {
	if v == VerdictInsufficient {
		return "insufficient evidence"
	}
	return "conclusive"
}

// Assess grades the evidence in runs. The diagnosis needs failing runs
// whose profiles still carry events — an empty failure profile contributes
// nothing to any predictor's recall. The verdict is insufficient when no
// failing run has events, or when over half of the failure profiles came
// back empty (the majority of the evidence was lost in capture).
func Assess[E comparable](runs []Run[E]) Verdict {
	failTotal, usableFail := 0, 0
	for _, r := range runs {
		if !r.Failed {
			continue
		}
		failTotal++
		if len(r.Events) > 0 {
			usableFail++
		}
	}
	return AssessCounts(failTotal, usableFail)
}

// AssessCounts grades the evidence from merged counters: failTotal failing
// runs overall, usableFail of them with a non-empty profile. The counter
// form lets cooperative aggregators (which never hold the full run set)
// reach exactly Assess's verdict.
func AssessCounts(failTotal, usableFail int) Verdict {
	if usableFail == 0 || 2*usableFail < failTotal {
		return VerdictInsufficient
	}
	return VerdictConclusive
}
