package stats

import "testing"

func TestVerdictString(t *testing.T) {
	if got := VerdictConclusive.String(); got != "conclusive" {
		t.Errorf("VerdictConclusive = %q", got)
	}
	if got := VerdictInsufficient.String(); got != "insufficient evidence" {
		t.Errorf("VerdictInsufficient = %q", got)
	}
}

func TestAssess(t *testing.T) {
	fail := func(events ...int) Run[int] { return Run[int]{Failed: true, Events: events} }
	succ := func(events ...int) Run[int] { return Run[int]{Failed: false, Events: events} }
	cases := []struct {
		name string
		runs []Run[int]
		want Verdict
	}{
		{"no runs at all", nil, VerdictInsufficient},
		{"only success runs", []Run[int]{succ(1), succ(2)}, VerdictInsufficient},
		{"one usable failure", []Run[int]{fail(1)}, VerdictConclusive},
		{"all failure profiles empty", []Run[int]{fail(), fail(), succ(1)}, VerdictInsufficient},
		{"majority of failures empty", []Run[int]{fail(1), fail(), fail(), fail()}, VerdictInsufficient},
		{"exactly half empty", []Run[int]{fail(1), fail(1), fail(), fail()}, VerdictConclusive},
		{"full evidence", []Run[int]{fail(1), fail(1), succ(), succ(2)}, VerdictConclusive},
	}
	for _, c := range cases {
		if got := Assess(c.runs); got != c.want {
			t.Errorf("%s: Assess = %v, want %v", c.name, got, c.want)
		}
	}
}
