package prof

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"stmdiag/internal/obs"
)

// This file turns a metrics snapshot back into a structured cost-attribution
// report: FromSnapshot parses the prof.* and harness.pool.* counter families
// and Render lays the result out as the deterministic top-K hot-spot table
// behind -profile-report (the /profilez endpoint serves the same struct as
// JSON). Every section except "workers"/"pool" is derived purely from the
// deterministic cycle clock, so its bytes are identical for any -jobs value.

// OpcodeRow is one opcode's dispatch attribution.
type OpcodeRow struct {
	Name   string `json:"name"`
	Class  string `json:"class"`
	Count  uint64 `json:"count"`
	Cycles uint64 `json:"cycles"`
}

// ClassRow aggregates opcode rows by class.
type ClassRow struct {
	Name   string `json:"name"`
	Count  uint64 `json:"count"`
	Cycles uint64 `json:"cycles"`
}

// PhaseRow is one pipeline phase's rollup. Bytes is only populated for the
// report phase (rendered table output; rendering consumes no VM cycles).
type PhaseRow struct {
	Name   string `json:"name"`
	Spans  uint64 `json:"spans"`
	Runs   uint64 `json:"runs"`
	Cycles uint64 `json:"cycles"`
	Bytes  uint64 `json:"bytes,omitempty"`
}

// AppRow is one (app, phase) attribution cell.
type AppRow struct {
	App    string `json:"app"`
	Phase  string `json:"phase"`
	Runs   uint64 `json:"runs"`
	Cycles uint64 `json:"cycles"`
}

// TableRow is one rendered table's attribution.
type TableRow struct {
	Table  int    `json:"table"`
	Spans  uint64 `json:"spans"`
	Runs   uint64 `json:"runs"`
	Cycles uint64 `json:"cycles"`
}

// AllocRow is one PMU snapshot site's allocation accounting: Allocs counts
// ring-snapshot materializations (each one a fresh slice on the capture hot
// path), Records the entries they copied.
type AllocRow struct {
	Site    string `json:"site"`
	Allocs  uint64 `json:"allocs"`
	Records uint64 `json:"records"`
}

// WorkerRow is one pool worker's wall-clock utilization. Unlike every other
// section these numbers are jobs-variant by design.
type WorkerRow struct {
	Worker int    `json:"worker"`
	Trials uint64 `json:"trials"`
	BusyNS uint64 `json:"busy_ns"`
	IdleNS uint64 `json:"idle_ns"`
}

// PoolStats is the pool-wide wall-clock rollup.
type PoolStats struct {
	Trials        uint64 `json:"trials"`
	Committed     uint64 `json:"committed"`
	Discarded     uint64 `json:"discarded"`
	Fanouts       uint64 `json:"fanouts"`
	CommitStallNS uint64 `json:"commit_stall_ns"`
	QueueDepth    int64  `json:"queue_depth"`
}

// Report is the parsed cost-attribution state of one registry snapshot.
type Report struct {
	TotalCycles uint64 `json:"total_cycles"`
	TotalSteps  uint64 `json:"total_steps"`
	TotalRuns   uint64 `json:"total_runs"`

	Opcodes []OpcodeRow `json:"opcodes"`
	Classes []ClassRow  `json:"classes"`
	Phases  []PhaseRow  `json:"phases"`
	Apps    []AppRow    `json:"apps"`
	Tables  []TableRow  `json:"tables"`
	Allocs  []AllocRow  `json:"allocs"`

	// Workers and Pool are wall-clock (jobs-variant) — see WorkerRow.
	Workers []WorkerRow `json:"workers"`
	Pool    PoolStats   `json:"pool"`
}

// FromSnapshot parses the profiler counter families out of a snapshot. A
// snapshot without profiler counters yields an empty (but non-nil) report.
func FromSnapshot(s obs.Snapshot) *Report {
	r := &Report{
		TotalCycles: s.Counters["vm.cycles"],
		TotalSteps:  s.Counters["vm.steps"],
		TotalRuns:   s.Counters["vm.runs"],
	}
	ops := map[string]*OpcodeRow{}
	phases := map[string]*PhaseRow{}
	apps := map[string]*AppRow{}
	tables := map[int]*TableRow{}
	allocs := map[string]*AllocRow{}
	workers := map[int]*WorkerRow{}

	for name, v := range s.Counters {
		switch {
		case strings.HasPrefix(name, "prof.op."):
			rest := strings.TrimPrefix(name, "prof.op.")
			if mn, ok := strings.CutSuffix(rest, ".count"); ok {
				opRow(ops, mn).Count = v
			} else if mn, ok := strings.CutSuffix(rest, ".cycles"); ok {
				opRow(ops, mn).Cycles = v
			}
		case strings.HasPrefix(name, "prof.phase."):
			rest := strings.TrimPrefix(name, "prof.phase.")
			if ph, ok := strings.CutSuffix(rest, ".spans"); ok {
				phaseRow(phases, ph).Spans = v
			} else if ph, ok := strings.CutSuffix(rest, ".cycles"); ok {
				phaseRow(phases, ph).Cycles = v
			} else if ph, ok := strings.CutSuffix(rest, ".runs"); ok {
				phaseRow(phases, ph).Runs = v
			} else if ph, ok := strings.CutSuffix(rest, ".bytes"); ok {
				phaseRow(phases, ph).Bytes = v
			}
		case strings.HasPrefix(name, "prof.app."):
			rest := strings.TrimPrefix(name, "prof.app.")
			suffix := ""
			if c, ok := strings.CutSuffix(rest, ".cycles"); ok {
				rest, suffix = c, "cycles"
			} else if c, ok := strings.CutSuffix(rest, ".runs"); ok {
				rest, suffix = c, "runs"
			} else {
				continue
			}
			// The phase is the last dot-segment; app names carry no dots.
			i := strings.LastIndex(rest, ".")
			if i < 0 {
				continue
			}
			row := appRow(apps, rest[:i], rest[i+1:])
			if suffix == "cycles" {
				row.Cycles = v
			} else {
				row.Runs = v
			}
		case strings.HasPrefix(name, "prof.table."):
			rest := strings.TrimPrefix(name, "prof.table.")
			suffix := ""
			if c, ok := strings.CutSuffix(rest, ".spans"); ok {
				rest, suffix = c, "spans"
			} else if c, ok := strings.CutSuffix(rest, ".cycles"); ok {
				rest, suffix = c, "cycles"
			} else if c, ok := strings.CutSuffix(rest, ".runs"); ok {
				rest, suffix = c, "runs"
			} else {
				continue
			}
			n, err := strconv.Atoi(rest)
			if err != nil {
				continue
			}
			row := tableRow(tables, n)
			switch suffix {
			case "spans":
				row.Spans = v
			case "cycles":
				row.Cycles = v
			case "runs":
				row.Runs = v
			}
		case strings.HasPrefix(name, "prof.alloc."):
			rest := strings.TrimPrefix(name, "prof.alloc.")
			if site, ok := strings.CutSuffix(rest, ".allocs"); ok {
				allocRow(allocs, site).Allocs = v
			} else if site, ok := strings.CutSuffix(rest, ".records"); ok {
				allocRow(allocs, site).Records = v
			}
		case strings.HasPrefix(name, "harness.pool.worker"):
			rest := strings.TrimPrefix(name, "harness.pool.worker")
			i := strings.Index(rest, ".")
			if i < 0 {
				continue
			}
			w, err := strconv.Atoi(rest[:i])
			if err != nil {
				continue
			}
			row := workerRow(workers, w)
			switch rest[i+1:] {
			case "trials":
				row.Trials = v
			case "busy_ns":
				row.BusyNS = v
			case "idle_ns":
				row.IdleNS = v
			}
		}
	}
	r.Pool = PoolStats{
		Trials:        s.Counters["harness.pool.trials"],
		Committed:     s.Counters["harness.pool.committed"],
		Discarded:     s.Counters["harness.pool.discarded"],
		Fanouts:       s.Counters["harness.pool.fanouts"],
		CommitStallNS: s.Counters["harness.pool.commit.stall_ns"],
		QueueDepth:    s.Gauges["harness.pool.queue.depth"],
	}

	classes := map[string]*ClassRow{}
	for _, row := range ops {
		r.Opcodes = append(r.Opcodes, *row)
		c := classes[row.Class]
		if c == nil {
			c = &ClassRow{Name: row.Class}
			classes[row.Class] = c
		}
		c.Count += row.Count
		c.Cycles += row.Cycles
	}
	for _, row := range classes {
		r.Classes = append(r.Classes, *row)
	}
	for _, row := range phases {
		r.Phases = append(r.Phases, *row)
	}
	for _, row := range apps {
		r.Apps = append(r.Apps, *row)
	}
	for _, row := range tables {
		r.Tables = append(r.Tables, *row)
	}
	for _, row := range allocs {
		r.Allocs = append(r.Allocs, *row)
	}
	for _, row := range workers {
		r.Workers = append(r.Workers, *row)
	}

	// Deterministic order: hottest first, names breaking ties; tables and
	// workers numerically; phases in pipeline order.
	sort.Slice(r.Opcodes, func(i, j int) bool {
		return hotter(r.Opcodes[i].Cycles, r.Opcodes[j].Cycles, r.Opcodes[i].Name, r.Opcodes[j].Name)
	})
	sort.Slice(r.Classes, func(i, j int) bool {
		return hotter(r.Classes[i].Cycles, r.Classes[j].Cycles, r.Classes[i].Name, r.Classes[j].Name)
	})
	sort.Slice(r.Apps, func(i, j int) bool {
		a, b := r.Apps[i], r.Apps[j]
		return hotter(a.Cycles, b.Cycles, a.App+"/"+a.Phase, b.App+"/"+b.Phase)
	})
	sort.Slice(r.Allocs, func(i, j int) bool {
		return hotter(r.Allocs[i].Allocs, r.Allocs[j].Allocs, r.Allocs[i].Site, r.Allocs[j].Site)
	})
	sort.Slice(r.Tables, func(i, j int) bool { return r.Tables[i].Table < r.Tables[j].Table })
	sort.Slice(r.Workers, func(i, j int) bool { return r.Workers[i].Worker < r.Workers[j].Worker })
	sort.Slice(r.Phases, func(i, j int) bool {
		return phaseOrd(r.Phases[i].Name) < phaseOrd(r.Phases[j].Name)
	})
	return r
}

func hotter(ci, cj uint64, ni, nj string) bool {
	if ci != cj {
		return ci > cj
	}
	return ni < nj
}

// phaseOrd keys the pipeline-order phase sort, unknown phases last by name.
func phaseOrd(name string) string {
	for i, ph := range Phases {
		if ph == name {
			return fmt.Sprintf("0%d", i)
		}
	}
	return "1" + name
}

func opRow(m map[string]*OpcodeRow, name string) *OpcodeRow {
	r := m[name]
	if r == nil {
		r = &OpcodeRow{Name: name, Class: ClassOf(name)}
		m[name] = r
	}
	return r
}

func phaseRow(m map[string]*PhaseRow, name string) *PhaseRow {
	r := m[name]
	if r == nil {
		r = &PhaseRow{Name: name}
		m[name] = r
	}
	return r
}

func appRow(m map[string]*AppRow, app, phase string) *AppRow {
	key := app + "\x00" + phase
	r := m[key]
	if r == nil {
		r = &AppRow{App: app, Phase: phase}
		m[key] = r
	}
	return r
}

func tableRow(m map[int]*TableRow, n int) *TableRow {
	r := m[n]
	if r == nil {
		r = &TableRow{Table: n}
		m[n] = r
	}
	return r
}

func allocRow(m map[string]*AllocRow, site string) *AllocRow {
	r := m[site]
	if r == nil {
		r = &AllocRow{Site: site}
		m[site] = r
	}
	return r
}

func workerRow(m map[int]*WorkerRow, w int) *WorkerRow {
	r := m[w]
	if r == nil {
		r = &WorkerRow{Worker: w}
		m[w] = r
	}
	return r
}

// JSON renders the report as indented JSON (the /profilez body).
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// pct formats v as a percentage of total, "-" when total is zero.
func pct(v, total uint64) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(v)/float64(total))
}

// Render lays the report out as the -profile-report hot-spot table,
// truncating the opcode, app and alloc sections to their topK hottest rows.
// Every section above "workers" is a pure function of the deterministic
// cycle clock; the wall-clock sections are labeled jobs-variant.
func (r *Report) Render(topK int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cost attribution: hot-spot report (top %d)\n", topK)
	fmt.Fprintf(&b, "totals: %d cycles, %d steps, %d runs\n", r.TotalCycles, r.TotalSteps, r.TotalRuns)

	if len(r.Opcodes) > 0 {
		b.WriteString("\nopcodes by cycles:\n")
		for i, row := range r.Opcodes {
			if i >= topK {
				fmt.Fprintf(&b, "  ... %d more\n", len(r.Opcodes)-topK)
				break
			}
			fmt.Fprintf(&b, "  %-8s %-6s count=%-10d cycles=%-12d %s\n",
				row.Name, row.Class, row.Count, row.Cycles, pct(row.Cycles, r.TotalCycles))
		}
		b.WriteString("\nopcode classes by cycles:\n")
		for _, row := range r.Classes {
			fmt.Fprintf(&b, "  %-8s count=%-10d cycles=%-12d %s\n",
				row.Name, row.Count, row.Cycles, pct(row.Cycles, r.TotalCycles))
		}
	}
	if len(r.Phases) > 0 {
		b.WriteString("\nphases:\n")
		for _, row := range r.Phases {
			fmt.Fprintf(&b, "  %-8s spans=%-6d runs=%-8d cycles=%-12d %s",
				row.Name, row.Spans, row.Runs, row.Cycles, pct(row.Cycles, r.TotalCycles))
			if row.Bytes > 0 {
				fmt.Fprintf(&b, " bytes=%d", row.Bytes)
			}
			b.WriteString("\n")
		}
	}
	if len(r.Apps) > 0 {
		b.WriteString("\napps by cycles:\n")
		for i, row := range r.Apps {
			if i >= topK {
				fmt.Fprintf(&b, "  ... %d more\n", len(r.Apps)-topK)
				break
			}
			fmt.Fprintf(&b, "  %-20s runs=%-8d cycles=%-12d %s\n",
				row.App+"/"+row.Phase, row.Runs, row.Cycles, pct(row.Cycles, r.TotalCycles))
		}
	}
	if len(r.Tables) > 0 {
		b.WriteString("\ntables:\n")
		for _, row := range r.Tables {
			fmt.Fprintf(&b, "  table %-2d spans=%-6d runs=%-8d cycles=%-12d %s\n",
				row.Table, row.Spans, row.Runs, row.Cycles, pct(row.Cycles, r.TotalCycles))
		}
	}
	if len(r.Allocs) > 0 {
		b.WriteString("\nalloc sites (ring snapshots):\n")
		for i, row := range r.Allocs {
			if i >= topK {
				fmt.Fprintf(&b, "  ... %d more\n", len(r.Allocs)-topK)
				break
			}
			fmt.Fprintf(&b, "  %-12s allocs=%-10d records=%d\n", row.Site, row.Allocs, row.Records)
		}
	}
	if len(r.Workers) > 0 {
		b.WriteString("\nworkers (wall clock; varies with -jobs):\n")
		for _, row := range r.Workers {
			fmt.Fprintf(&b, "  worker %-3d trials=%-8d busy=%-12s idle=%s\n",
				row.Worker, row.Trials, fmtNS(row.BusyNS), fmtNS(row.IdleNS))
		}
		fmt.Fprintf(&b, "  pool: fanouts=%d trials=%d committed=%d discarded=%d commit-stall=%s\n",
			r.Pool.Fanouts, r.Pool.Trials, r.Pool.Committed, r.Pool.Discarded, fmtNS(r.Pool.CommitStallNS))
	}
	return b.String()
}

// fmtNS renders a nanosecond total human-readably.
func fmtNS(ns uint64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fus", float64(ns)/1e3)
	}
	return fmt.Sprintf("%dns", ns)
}
