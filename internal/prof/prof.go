// Package prof is the cost-attribution layer of the observability stack
// (DESIGN §6): a PMU for the PMU simulator. It attributes the deterministic
// VM cycle clock to opcodes, opcode classes, pipeline phases, apps, tables
// and PMU snapshot sites, and rolls the attribution up into a hot-spot
// report — the measured counterpart to the paper's §6 overhead evaluation
// (the <1.5% claim), and the baseline data ROADMAP item 2's VM speed work
// optimizes against.
//
// Everything deterministic rides the obs trial-sink machinery: per-opcode
// and per-alloc-site counters are recorded on each trial's private registry
// and merged at commit in trial order, and phase/table rollups are computed
// from parent-sink cycle deltas between fan-out barriers, so the profile is
// byte-identical for every -jobs value. Worker-utilization numbers
// ("harness.pool.worker*.busy_ns" etc.) are the one deliberate exception:
// they measure real wall clock and real scheduling, so they vary run to run
// and are labeled as such in the report.
//
// Counter name families:
//
//	prof.op.<mnemonic>.count / .cycles     per-opcode dispatch attribution
//	prof.alloc.<site>.allocs / .records    PMU ring snapshot materializations
//	prof.phase.<phase>.spans/.cycles/.runs pipeline phases (capture/replay/rank/report)
//	prof.phase.report.bytes                rendered table bytes (report phase)
//	prof.app.<app>.<phase>.cycles / .runs  per-app phase attribution
//	prof.table.<n>.spans/.cycles/.runs     per-table attribution
//	harness.pool.worker<N>.busy_ns/.idle_ns, harness.pool.queue.depth,
//	harness.pool.commit.stall_ns           wall-clock pool utilization
package prof

import (
	"stmdiag/internal/isa"
	"stmdiag/internal/obs"
)

// InvalidSlot is the VMProf accumulator slot for steps whose PC did not
// name a decodable instruction (the crash path of an invalid PC).
const InvalidSlot = isa.NumOps

// OpSlots is the VMProf accumulator size: every opcode plus InvalidSlot.
const OpSlots = isa.NumOps + 1

// InvalidName is the mnemonic the invalid slot reports under.
const InvalidName = "invalid"

// Phase names of the diagnosis pipeline, in execution order. Capture runs
// the instrumented production workloads (the paper's deployed-site runs),
// replay re-executes for the CBI baseline and the overhead columns, rank is
// the statistical diagnosis, and report renders tables.
const (
	PhaseCapture = "capture"
	PhaseReplay  = "replay"
	PhaseRank    = "rank"
	PhaseReport  = "report"
)

// Phases lists the pipeline phases in canonical order.
var Phases = []string{PhaseCapture, PhaseReplay, PhaseRank, PhaseReport}

// VMProf accumulates one machine's per-opcode dispatch costs. It is plain
// (non-atomic) state: a Machine steps on a single goroutine, and the
// accumulator is folded into the machine's (per-trial) sink once, at run
// end, so the cross-goroutine hand-off happens through the registry's
// atomics like every other counter.
type VMProf struct {
	counts [OpSlots]uint64
	cycles [OpSlots]uint64
}

// NewVMProf returns an empty accumulator.
func NewVMProf() *VMProf { return &VMProf{} }

// Slot maps an opcode to its accumulator slot, clamping undefined encodings
// onto InvalidSlot.
func Slot(op isa.Op) int {
	if int(op) >= isa.NumOps {
		return InvalidSlot
	}
	return int(op)
}

// Observe attributes one dispatched step's cycle delta to a slot.
func (p *VMProf) Observe(slot int, cycles uint64) {
	if slot < 0 || slot >= OpSlots {
		slot = InvalidSlot
	}
	p.counts[slot]++
	p.cycles[slot] += cycles
}

// Count returns the accumulated dispatch count of a slot.
func (p *VMProf) Count(slot int) uint64 {
	if slot < 0 || slot >= OpSlots {
		return 0
	}
	return p.counts[slot]
}

// SlotName returns the mnemonic a slot reports under.
func SlotName(slot int) string {
	if slot == InvalidSlot {
		return InvalidName
	}
	return isa.Op(slot).String()
}

// Flush folds the accumulator into the sink's "prof.op.*" counters and
// resets it. Only touched slots materialize counters, so the registry holds
// exactly the program's instruction mix.
func (p *VMProf) Flush(s *obs.Sink) {
	if s == nil {
		return
	}
	for slot := 0; slot < OpSlots; slot++ {
		if p.counts[slot] == 0 {
			continue
		}
		name := SlotName(slot)
		s.Counter("prof.op." + name + ".count").Add(p.counts[slot])
		s.Counter("prof.op." + name + ".cycles").Add(p.cycles[slot])
	}
	*p = VMProf{}
}

// ClassOf buckets a mnemonic into the coarse opcode classes the hot-spot
// report aggregates by.
func ClassOf(mnemonic string) string {
	op, ok := isa.OpByName(mnemonic)
	if !ok {
		return "misc"
	}
	if op.IsControl() {
		return "branch"
	}
	switch op {
	case isa.OpLd, isa.OpSt, isa.OpPush, isa.OpPop, isa.OpLea:
		return "mem"
	case isa.OpLock, isa.OpUnlock, isa.OpSpawn, isa.OpJoin, isa.OpYield:
		return "sync"
	case isa.OpPrint, isa.OpOut, isa.OpFail, isa.OpIoctl:
		return "io"
	case isa.OpNop, isa.OpExit, isa.OpHalt, isa.OpDelay:
		return "misc"
	}
	return "alu"
}
