package prof

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"stmdiag/internal/isa"
	"stmdiag/internal/obs"
)

func TestSlotClamping(t *testing.T) {
	if got := Slot(isa.OpNop); got != 0 {
		t.Errorf("Slot(OpNop) = %d, want 0", got)
	}
	if got := Slot(isa.Op(200)); got != InvalidSlot {
		t.Errorf("Slot(op 200) = %d, want InvalidSlot %d", got, InvalidSlot)
	}
	if got := SlotName(InvalidSlot); got != InvalidName {
		t.Errorf("SlotName(InvalidSlot) = %q, want %q", got, InvalidName)
	}
	if got := SlotName(Slot(isa.OpAdd)); got != "add" {
		t.Errorf("SlotName(add slot) = %q", got)
	}
}

func TestVMProfObserveFlush(t *testing.T) {
	p := NewVMProf()
	p.Observe(Slot(isa.OpAdd), 3)
	p.Observe(Slot(isa.OpAdd), 5)
	p.Observe(Slot(isa.OpJmp), 7)
	p.Observe(-1, 11)         // clamps onto the invalid slot
	p.Observe(OpSlots+10, 13) // ditto from above
	if got := p.Count(Slot(isa.OpAdd)); got != 2 {
		t.Errorf("add count = %d, want 2", got)
	}
	if got := p.Count(InvalidSlot); got != 2 {
		t.Errorf("invalid count = %d, want 2", got)
	}
	if got := p.Count(-5); got != 0 {
		t.Errorf("Count(-5) = %d, want 0", got)
	}

	// A nil sink is a no-op: nothing to fold into, state kept.
	p.Flush(nil)
	if got := p.Count(Slot(isa.OpAdd)); got != 2 {
		t.Errorf("add count after Flush(nil) = %d, want 2", got)
	}

	p = NewVMProf()
	p.Observe(Slot(isa.OpAdd), 3)
	p.Observe(Slot(isa.OpAdd), 5)
	p.Observe(Slot(isa.OpJmp), 7)
	s := &obs.Sink{Metrics: obs.NewRegistry()}
	p.Flush(s)
	snap := s.Metrics.Snapshot()
	for name, want := range map[string]uint64{
		"prof.op.add.count":  2,
		"prof.op.add.cycles": 8,
		"prof.op.jmp.count":  1,
		"prof.op.jmp.cycles": 7,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	// Untouched slots must not materialize counters.
	if _, ok := snap.Counters["prof.op.nop.count"]; ok {
		t.Error("untouched opcode nop leaked a counter")
	}
	// Flush resets the accumulator.
	if got := p.Count(Slot(isa.OpAdd)); got != 0 {
		t.Errorf("post-flush add count = %d, want 0", got)
	}
}

func TestClassOf(t *testing.T) {
	for mnemonic, want := range map[string]string{
		"jmp":     "branch",
		"call":    "branch",
		"ret":     "branch",
		"ld":      "mem",
		"push":    "mem",
		"lock":    "sync",
		"spawn":   "sync",
		"print":   "io",
		"ioctl":   "io",
		"nop":     "misc",
		"invalid": "misc",
		"add":     "alu",
		"cmpi":    "alu",
	} {
		if got := ClassOf(mnemonic); got != want {
			t.Errorf("ClassOf(%q) = %q, want %q", mnemonic, got, want)
		}
	}
}

// profSink builds a registry holding one representative counter of every
// family FromSnapshot parses.
func profSink() *obs.Sink {
	s := &obs.Sink{Metrics: obs.NewRegistry(), Profiling: true}
	add := func(name string, v uint64) { s.Counter(name).Add(v) }
	add("vm.cycles", 1000)
	add("vm.steps", 400)
	add("vm.runs", 4)
	add("prof.op.add.count", 100)
	add("prof.op.add.cycles", 600)
	add("prof.op.jmp.count", 50)
	add("prof.op.jmp.cycles", 300)
	add("prof.op.nop.count", 10)
	add("prof.op.nop.cycles", 10)
	add("prof.phase.capture.spans", 2)
	add("prof.phase.capture.cycles", 700)
	add("prof.phase.capture.runs", 3)
	add("prof.phase.rank.spans", 1)
	add("prof.phase.report.spans", 1)
	add("prof.phase.report.bytes", 512)
	add("prof.app.sort.capture.cycles", 700)
	add("prof.app.sort.capture.runs", 3)
	add("prof.table.3.spans", 1)
	add("prof.table.3.cycles", 900)
	add("prof.table.3.runs", 4)
	add("prof.alloc.pmu.lbr.allocs", 40)
	add("prof.alloc.pmu.lbr.records", 640)
	add("harness.pool.trials", 8)
	add("harness.pool.committed", 7)
	add("harness.pool.fanouts", 2)
	add("harness.pool.worker0.trials", 5)
	add("harness.pool.worker0.busy_ns", 12345)
	add("harness.pool.worker0.idle_ns", 678)
	add("harness.pool.worker1.trials", 3)
	add("harness.pool.commit.stall_ns", 99)
	return s
}

func TestFromSnapshotParsesFamilies(t *testing.T) {
	r := FromSnapshot(profSink().Metrics.Snapshot())
	if r.TotalCycles != 1000 || r.TotalSteps != 400 || r.TotalRuns != 4 {
		t.Fatalf("totals = %d/%d/%d", r.TotalCycles, r.TotalSteps, r.TotalRuns)
	}
	// Opcodes sort hottest first.
	wantOps := []string{"add", "jmp", "nop"}
	if len(r.Opcodes) != len(wantOps) {
		t.Fatalf("got %d opcode rows, want %d", len(r.Opcodes), len(wantOps))
	}
	for i, name := range wantOps {
		if r.Opcodes[i].Name != name {
			t.Errorf("opcode[%d] = %s, want %s", i, r.Opcodes[i].Name, name)
		}
	}
	if r.Opcodes[0].Class != "alu" || r.Opcodes[0].Count != 100 || r.Opcodes[0].Cycles != 600 {
		t.Errorf("add row = %+v", r.Opcodes[0])
	}
	// Classes aggregate opcodes.
	classes := map[string]ClassRow{}
	for _, c := range r.Classes {
		classes[c.Name] = c
	}
	if c := classes["branch"]; c.Count != 50 || c.Cycles != 300 {
		t.Errorf("branch class = %+v", c)
	}
	// Phases come back in pipeline order.
	var phases []string
	for _, p := range r.Phases {
		phases = append(phases, p.Name)
	}
	if want := []string{"capture", "rank", "report"}; strings.Join(phases, ",") != strings.Join(want, ",") {
		t.Errorf("phase order = %v, want %v", phases, want)
	}
	if r.Phases[len(r.Phases)-1].Bytes != 512 {
		t.Errorf("report bytes = %d, want 512", r.Phases[len(r.Phases)-1].Bytes)
	}
	if len(r.Apps) != 1 || r.Apps[0].App != "sort" || r.Apps[0].Phase != "capture" || r.Apps[0].Cycles != 700 {
		t.Errorf("apps = %+v", r.Apps)
	}
	if len(r.Tables) != 1 || r.Tables[0].Table != 3 || r.Tables[0].Cycles != 900 {
		t.Errorf("tables = %+v", r.Tables)
	}
	if len(r.Allocs) != 1 || r.Allocs[0].Site != "pmu.lbr" || r.Allocs[0].Records != 640 {
		t.Errorf("allocs = %+v", r.Allocs)
	}
	if len(r.Workers) != 2 || r.Workers[0].Worker != 0 || r.Workers[0].BusyNS != 12345 || r.Workers[1].Trials != 3 {
		t.Errorf("workers = %+v", r.Workers)
	}
	if r.Pool.Trials != 8 || r.Pool.CommitStallNS != 99 {
		t.Errorf("pool = %+v", r.Pool)
	}
}

func TestFromSnapshotEmpty(t *testing.T) {
	r := FromSnapshot(obs.NewRegistry().Snapshot())
	if r == nil {
		t.Fatal("nil report for empty snapshot")
	}
	if len(r.Opcodes)+len(r.Phases)+len(r.Apps)+len(r.Tables)+len(r.Allocs)+len(r.Workers) != 0 {
		t.Errorf("empty snapshot produced rows: %+v", r)
	}
	out := r.Render(10)
	if !strings.Contains(out, "cost attribution") {
		t.Errorf("empty render missing header:\n%s", out)
	}
}

func TestRenderDeterministicAndTruncated(t *testing.T) {
	snap := profSink().Metrics.Snapshot()
	a := FromSnapshot(snap).Render(10)
	b := FromSnapshot(snap).Render(10)
	if a != b {
		t.Error("Render is not deterministic for the same snapshot")
	}
	ja, err := FromSnapshot(snap).JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := FromSnapshot(snap).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Error("JSON is not deterministic for the same snapshot")
	}
	for _, want := range []string{
		"opcodes by cycles:", "phases:", "apps by cycles:", "tables:",
		"alloc sites (ring snapshots):", "workers (wall clock; varies with -jobs):",
		"add", "60.0%",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("render missing %q:\n%s", want, a)
		}
	}
	// topK truncation: 3 opcodes, top 1 keeps add and folds the rest.
	top1 := FromSnapshot(snap).Render(1)
	if !strings.Contains(top1, "... 2 more") {
		t.Errorf("top-1 render missing truncation marker:\n%s", top1)
	}
	if strings.Contains(top1, "jmp ") {
		t.Errorf("top-1 render still lists jmp:\n%s", top1)
	}
}

// TestProfConcurrentFlush locks the concurrency contract down under -race:
// many VMProf accumulators flushing into one shared registry while readers
// take snapshots and build reports, the way parallel trial sinks merge into
// the parent while /profilez scrapes it.
func TestProfConcurrentFlush(t *testing.T) {
	s := &obs.Sink{Metrics: obs.NewRegistry(), Profiling: true}
	const writers, rounds = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := NewVMProf()
			for i := 0; i < rounds; i++ {
				p.Observe(Slot(isa.OpAdd), 2)
				p.Observe(Slot(isa.OpJmp), 3)
				p.Flush(s)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < rounds; i++ {
			_ = FromSnapshot(s.Metrics.Snapshot()).Render(5)
		}
	}()
	wg.Wait()
	<-done
	snap := s.Metrics.Snapshot()
	if got := snap.Counters["prof.op.add.count"]; got != writers*rounds {
		t.Errorf("add count = %d, want %d", got, writers*rounds)
	}
	if got := snap.Counters["prof.op.jmp.cycles"]; got != writers*rounds*3 {
		t.Errorf("jmp cycles = %d, want %d", got, writers*rounds*3)
	}
}
