package cliobs

import (
	"strings"
	"testing"

	"stmdiag/internal/faultinj"
)

func TestCheckJobs(t *testing.T) {
	for _, jobs := range []int{0, 1, 4, 128} {
		if err := CheckJobs(jobs); err != nil {
			t.Errorf("CheckJobs(%d) = %v, want nil", jobs, err)
		}
	}
	for _, jobs := range []int{-1, -17} {
		err := CheckJobs(jobs)
		if err == nil {
			t.Fatalf("CheckJobs(%d) accepted a negative worker count", jobs)
		}
		if !strings.Contains(err.Error(), "-jobs") {
			t.Errorf("CheckJobs(%d) error %q does not name the flag", jobs, err)
		}
	}
}

func TestFaultSpec(t *testing.T) {
	tests := []struct {
		raw     string
		wantErr bool
		enabled bool
	}{
		{"", false, false},
		{"off", false, false},
		{"rate=0.01", false, true},
		{"lbr-drop=0.1,seed=7", false, true},
		{"rate=2", true, false},
		{"bogus-layer=0.5", true, false},
	}
	for _, tc := range tests {
		f := &Flags{Faults: tc.raw}
		spec, err := f.FaultSpec()
		if tc.wantErr {
			if err == nil {
				t.Errorf("FaultSpec(%q) accepted a malformed spec", tc.raw)
			} else if !strings.Contains(err.Error(), "-faults") {
				t.Errorf("FaultSpec(%q) error %q does not name the flag", tc.raw, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("FaultSpec(%q): %v", tc.raw, err)
			continue
		}
		if spec.Enabled() != tc.enabled {
			t.Errorf("FaultSpec(%q).Enabled() = %v, want %v", tc.raw, spec.Enabled(), tc.enabled)
		}
	}
	// A parsed spec must survive the flag round trip: rendering it back
	// into -faults form and re-parsing yields the same spec.
	f := &Flags{Faults: "rate=0.25,msr-write=0.5,seed=11,retries=3"}
	spec, err := f.FaultSpec()
	if err != nil {
		t.Fatal(err)
	}
	again, err := faultinj.ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", spec.String(), err)
	}
	if again.String() != spec.String() {
		t.Errorf("flag round trip drifted: %q -> %q", spec.String(), again.String())
	}
}
