package cliobs

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"stmdiag/internal/core"
	"stmdiag/internal/faultinj"
	"stmdiag/internal/obs"
)

func TestCheckJobs(t *testing.T) {
	for _, jobs := range []int{0, 1, 4, 128} {
		if err := CheckJobs(jobs); err != nil {
			t.Errorf("CheckJobs(%d) = %v, want nil", jobs, err)
		}
	}
	for _, jobs := range []int{-1, -17} {
		err := CheckJobs(jobs)
		if err == nil {
			t.Fatalf("CheckJobs(%d) accepted a negative worker count", jobs)
		}
		if !strings.Contains(err.Error(), "-jobs") {
			t.Errorf("CheckJobs(%d) error %q does not name the flag", jobs, err)
		}
	}
}

func TestFaultSpec(t *testing.T) {
	tests := []struct {
		raw     string
		wantErr bool
		enabled bool
	}{
		{"", false, false},
		{"off", false, false},
		{"rate=0.01", false, true},
		{"lbr-drop=0.1,seed=7", false, true},
		{"rate=2", true, false},
		{"bogus-layer=0.5", true, false},
	}
	for _, tc := range tests {
		f := &Flags{Faults: tc.raw}
		spec, err := f.FaultSpec()
		if tc.wantErr {
			if err == nil {
				t.Errorf("FaultSpec(%q) accepted a malformed spec", tc.raw)
			} else if !strings.Contains(err.Error(), "-faults") {
				t.Errorf("FaultSpec(%q) error %q does not name the flag", tc.raw, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("FaultSpec(%q): %v", tc.raw, err)
			continue
		}
		if spec.Enabled() != tc.enabled {
			t.Errorf("FaultSpec(%q).Enabled() = %v, want %v", tc.raw, spec.Enabled(), tc.enabled)
		}
	}
	// A parsed spec must survive the flag round trip: rendering it back
	// into -faults form and re-parsing yields the same spec.
	f := &Flags{Faults: "rate=0.25,msr-write=0.5,seed=11,retries=3"}
	spec, err := f.FaultSpec()
	if err != nil {
		t.Fatal(err)
	}
	again, err := faultinj.ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", spec.String(), err)
	}
	if again.String() != spec.String() {
		t.Errorf("flag round trip drifted: %q -> %q", spec.String(), again.String())
	}
}

func TestValidateMetricsFormat(t *testing.T) {
	for _, format := range []string{FormatText, FormatJSON, FormatProm} {
		f := &Flags{MetricsFormat: format}
		if err := f.Validate(); err != nil {
			t.Errorf("Validate rejected -metrics-format=%s: %v", format, err)
		}
	}
	for _, format := range []string{"yaml", "TEXT", "openmetrics", ""} {
		f := &Flags{MetricsFormat: format}
		err := f.Validate()
		if err == nil {
			t.Errorf("Validate accepted -metrics-format=%q", format)
			continue
		}
		if !strings.Contains(err.Error(), "-metrics-format") {
			t.Errorf("Validate(%q) error %q does not name the flag", format, err)
		}
	}
}

func TestSinkConstruction(t *testing.T) {
	if s := (&Flags{}).Sink(); s != nil {
		t.Errorf("all-off flags built a sink: %+v", s)
	}
	// -serve alone needs a sink for the server to expose, with a tracer so
	// /trace has content and a flight recorder by default. It must NOT
	// force-arm the profiler: attribution counters are the largest
	// per-trial payload on the executor wire, so /profilez data is opt-in
	// via -profile-report.
	s := (&Flags{ServeAddr: ":0", FlightRec: true}).Sink()
	if s == nil || s.Metrics == nil || s.Trace == nil || s.Flight == nil {
		t.Fatalf("-serve sink incomplete: %+v", s)
	}
	if s.Profiled() {
		t.Error("-serve sink force-arms the profiler; federation pays for attribution counters nobody asked for")
	}
	// -flightrec=false strips the recorder but keeps the rest.
	s = (&Flags{Metrics: true}).Sink()
	if s == nil || s.Flight != nil {
		t.Errorf("-flightrec=false sink still carries a recorder: %+v", s)
	}
	// -metrics alone must not pay for attribution counters.
	if s.Profiled() {
		t.Error("-metrics sink profiles without -profile-report or -serve")
	}
	// -profile-report alone is enough to get a (profiling) sink.
	s = (&Flags{ProfileReport: 10}).Sink()
	if s == nil || s.Metrics == nil || !s.Profiled() {
		t.Errorf("-profile-report sink incomplete or unprofiled: %+v", s)
	}
}

func TestValidateProfileReport(t *testing.T) {
	for _, k := range []int{0, 1, 25} {
		f := &Flags{MetricsFormat: FormatText, ProfileReport: k}
		if err := f.Validate(); err != nil {
			t.Errorf("Validate rejected -profile-report=%d: %v", k, err)
		}
	}
	for _, k := range []int{-1, -20} {
		f := &Flags{MetricsFormat: FormatText, ProfileReport: k}
		err := f.Validate()
		if err == nil {
			t.Errorf("Validate accepted -profile-report=%d", k)
			continue
		}
		if !strings.Contains(err.Error(), "-profile-report") {
			t.Errorf("Validate(%d) error %q does not name the flag", k, err)
		}
	}
}

// TestFinishProfileReport: Finish renders the hot-spot report from the
// run's registry, truncated to the requested top-K.
func TestFinishProfileReport(t *testing.T) {
	f := &Flags{MetricsFormat: FormatText, ProfileReport: 1}
	s := &obs.Sink{Metrics: obs.NewRegistry(), Profiling: true}
	s.Counter("vm.cycles").Add(100)
	s.Counter("prof.op.add.count").Add(5)
	s.Counter("prof.op.add.cycles").Add(70)
	s.Counter("prof.op.jmp.count").Add(2)
	s.Counter("prof.op.jmp.cycles").Add(30)
	var out strings.Builder
	if err := f.Finish(s, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "cost attribution: hot-spot report (top 1)") {
		t.Errorf("Finish did not render the report: %q", got)
	}
	if !strings.Contains(got, "add") || !strings.Contains(got, "... 1 more") {
		t.Errorf("report not truncated to top 1: %q", got)
	}
	// Without -profile-report the report never renders, even on a
	// profiling sink (e.g. -serve).
	var quiet strings.Builder
	if err := (&Flags{MetricsFormat: FormatText}).Finish(s, &quiet); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(quiet.String(), "cost attribution") {
		t.Errorf("report rendered without -profile-report: %q", quiet.String())
	}
}

func TestStartAndFinishServe(t *testing.T) {
	f := &Flags{ServeAddr: "127.0.0.1:0", FlightRec: true, MetricsFormat: FormatText}
	s := f.Sink()
	var announce strings.Builder
	if err := f.Start(s, &announce); err != nil {
		t.Fatal(err)
	}
	addr := f.ServerAddr()
	if addr == "" || !strings.Contains(announce.String(), addr) {
		t.Fatalf("Start announced %q, ServerAddr=%q", announce.String(), addr)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.HasSuffix(string(body), "# EOF\n") {
		t.Errorf("GET /metrics = %d %q", resp.StatusCode, body)
	}
	var out strings.Builder
	if err := f.Finish(s, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still answering after Finish")
	}
}

func TestFinishMetricsFormats(t *testing.T) {
	render := func(format string) string {
		f := &Flags{Metrics: true, MetricsFormat: format}
		s := &obs.Sink{Metrics: obs.NewRegistry()}
		s.Counter("vm.runs").Add(2)
		var out strings.Builder
		if err := f.Finish(s, &out); err != nil {
			t.Fatalf("Finish(%s): %v", format, err)
		}
		return out.String()
	}
	if got := render(FormatJSON); !strings.HasPrefix(got, "{") || !strings.Contains(got, "vm.runs") {
		t.Errorf("json format rendered %q", got)
	}
	if got := render(FormatProm); !strings.Contains(got, "vm_runs_total 2") || !strings.HasSuffix(got, "# EOF\n") {
		t.Errorf("prom format rendered %q", got)
	}
	if got := render(FormatText); !strings.Contains(got, "vm.runs") {
		t.Errorf("text format rendered %q", got)
	}
}

func TestFleetFlagsValidate(t *testing.T) {
	good := []FleetFlags{
		{Shards: 1, Clients: 1, Batch: 1, Retries: 0},
		{Shards: 16, Clients: 4, Batch: 64, Retries: 5},
		{Shards: 4096, Clients: 100, Batch: 1000, Retries: 20},
	}
	for _, f := range good {
		if err := f.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", f, err)
		}
	}
	bad := []struct {
		f    FleetFlags
		flag string
	}{
		{FleetFlags{Shards: 0, Clients: 1, Batch: 1}, "-fleet-shards"},
		{FleetFlags{Shards: 4097, Clients: 1, Batch: 1}, "-fleet-shards"},
		{FleetFlags{Shards: 1, Clients: 0, Batch: 1}, "-fleet-clients"},
		{FleetFlags{Shards: 1, Clients: 1, Batch: 0}, "-fleet-batch"},
		{FleetFlags{Shards: 1, Clients: 1, Batch: -3}, "-fleet-batch"},
		{FleetFlags{Shards: 1, Clients: 1, Batch: 1, Retries: -1}, "-fleet-retries"},
	}
	for _, c := range bad {
		err := c.f.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) accepted a malformed value", c.f)
			continue
		}
		if !strings.Contains(err.Error(), c.flag) {
			t.Errorf("Validate(%+v) error %q does not name %s", c.f, err, c.flag)
		}
	}
}

func TestRankerFlagValidate(t *testing.T) {
	for _, r := range core.Rankers() {
		f := RankerFlag{Name: r.String()}
		if err := f.Validate(); err != nil {
			t.Errorf("Validate(%q) = %v, want nil", f.Name, err)
		}
		if got := f.Ranker(); got != r {
			t.Errorf("Ranker(%q) = %v, want %v", f.Name, got, r)
		}
	}
	for _, bad := range []string{"", "CBI", "ochiai ", "jaccard"} {
		f := RankerFlag{Name: bad}
		if err := f.Validate(); err == nil {
			t.Errorf("Validate(%q) accepted an unknown ranker", bad)
		}
	}
}
