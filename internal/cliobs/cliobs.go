// Package cliobs wires the -trace / -metrics / -v telemetry flags and the
// -faults fault-injection flag shared by the command-line binaries onto
// the internal/obs and internal/faultinj layers.
package cliobs

import (
	"flag"
	"fmt"
	"io"
	"os"

	"stmdiag/internal/faultinj"
	"stmdiag/internal/obs"
)

// Flags holds the parsed telemetry flags.
type Flags struct {
	// TracePath is the -trace destination ("" = tracing off).
	TracePath string
	// Metrics prints a metrics snapshot after the run (-metrics).
	Metrics bool
	// Verbose raises trace detail to per-branch/per-coherence events (-v).
	Verbose bool
	// Faults is the raw -faults fault-injection spec ("" = off); parse it
	// with FaultSpec after flag.Parse.
	Faults string
}

// Register installs -trace, -metrics, -v and -faults on the default flag
// set. Call before flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.TracePath, "trace", "", "write a Chrome trace_event JSON trace (chrome://tracing, Perfetto) to this `file`")
	flag.BoolVar(&f.Metrics, "metrics", false, "print the telemetry counters after the run")
	flag.BoolVar(&f.Verbose, "v", false, "record fine-grained (per-branch, per-coherence-event) trace events")
	flag.StringVar(&f.Faults, "faults", "", "deterministic fault-injection `spec`, e.g. \"rate=0.01\" or \"lbr-drop=0.1,seed=7\" (\"off\" = none)")
	return f
}

// FaultSpec parses the -faults value. The zero spec (injection off) comes
// back for "" and "off".
func (f *Flags) FaultSpec() (faultinj.Spec, error) {
	spec, err := faultinj.ParseSpec(f.Faults)
	if err != nil {
		return faultinj.Spec{}, fmt.Errorf("-faults: %w", err)
	}
	return spec, nil
}

// CheckJobs validates a -jobs value: 0 means NumCPU and positive counts
// are worker counts, but negative values are malformed rather than a
// silent fallback.
func CheckJobs(jobs int) error {
	if jobs < 0 {
		return fmt.Errorf("-jobs must be >= 0 (0 = NumCPU), got %d", jobs)
	}
	return nil
}

// Sink builds the sink the flags ask for. It returns nil when every flag
// is off, keeping the disabled-telemetry path free. Metrics land in the
// process-wide registry so instrumentation-time counters (sites
// instrumented, bundles audited) appear in the same snapshot.
func (f *Flags) Sink() *obs.Sink {
	if f.TracePath == "" && !f.Metrics && !f.Verbose {
		return nil
	}
	s := obs.NewSink()
	if f.TracePath != "" {
		s.Trace = obs.NewTracer()
	}
	if f.Verbose {
		s.Verbosity = 1
	}
	return s
}

// Finish writes the trace file and prints the metrics snapshot to w as the
// flags request.
func (f *Flags) Finish(s *obs.Sink, w io.Writer) error {
	if s == nil {
		return nil
	}
	if f.TracePath != "" && s.Trace != nil {
		data, err := s.Trace.ChromeJSON()
		if err != nil {
			return fmt.Errorf("cliobs: encode trace: %w", err)
		}
		if err := os.WriteFile(f.TracePath, data, 0o644); err != nil {
			return fmt.Errorf("cliobs: write trace: %w", err)
		}
		fmt.Fprintf(w, "trace: %d events -> %s", s.Trace.Len(), f.TracePath)
		if d := s.Trace.Dropped(); d > 0 {
			fmt.Fprintf(w, " (%d dropped at limit)", d)
		}
		fmt.Fprintln(w)
	}
	if f.Metrics && s.Metrics != nil {
		fmt.Fprint(w, s.Metrics.Snapshot().Text())
	}
	return nil
}
