// Package cliobs wires the -trace / -metrics / -v telemetry flags shared
// by the command-line binaries onto the internal/obs layer.
package cliobs

import (
	"flag"
	"fmt"
	"io"
	"os"

	"stmdiag/internal/obs"
)

// Flags holds the parsed telemetry flags.
type Flags struct {
	// TracePath is the -trace destination ("" = tracing off).
	TracePath string
	// Metrics prints a metrics snapshot after the run (-metrics).
	Metrics bool
	// Verbose raises trace detail to per-branch/per-coherence events (-v).
	Verbose bool
}

// Register installs -trace, -metrics and -v on the default flag set. Call
// before flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.TracePath, "trace", "", "write a Chrome trace_event JSON trace (chrome://tracing, Perfetto) to this `file`")
	flag.BoolVar(&f.Metrics, "metrics", false, "print the telemetry counters after the run")
	flag.BoolVar(&f.Verbose, "v", false, "record fine-grained (per-branch, per-coherence-event) trace events")
	return f
}

// Sink builds the sink the flags ask for. It returns nil when every flag
// is off, keeping the disabled-telemetry path free. Metrics land in the
// process-wide registry so instrumentation-time counters (sites
// instrumented, bundles audited) appear in the same snapshot.
func (f *Flags) Sink() *obs.Sink {
	if f.TracePath == "" && !f.Metrics && !f.Verbose {
		return nil
	}
	s := obs.NewSink()
	if f.TracePath != "" {
		s.Trace = obs.NewTracer()
	}
	if f.Verbose {
		s.Verbosity = 1
	}
	return s
}

// Finish writes the trace file and prints the metrics snapshot to w as the
// flags request.
func (f *Flags) Finish(s *obs.Sink, w io.Writer) error {
	if s == nil {
		return nil
	}
	if f.TracePath != "" && s.Trace != nil {
		data, err := s.Trace.ChromeJSON()
		if err != nil {
			return fmt.Errorf("cliobs: encode trace: %w", err)
		}
		if err := os.WriteFile(f.TracePath, data, 0o644); err != nil {
			return fmt.Errorf("cliobs: write trace: %w", err)
		}
		fmt.Fprintf(w, "trace: %d events -> %s", s.Trace.Len(), f.TracePath)
		if d := s.Trace.Dropped(); d > 0 {
			fmt.Fprintf(w, " (%d dropped at limit)", d)
		}
		fmt.Fprintln(w)
	}
	if f.Metrics && s.Metrics != nil {
		fmt.Fprint(w, s.Metrics.Snapshot().Text())
	}
	return nil
}
