// Package cliobs wires the -trace / -metrics / -metrics-format / -v
// telemetry flags, the -serve live-telemetry flag, the -faults
// fault-injection flag, the -profile-report cost-attribution flag, the
// -ranker diagnosis-formula flag and the -executor / -resume / -worker-bin
// durable-execution flags shared by the command-line binaries onto the
// internal/obs, internal/obshttp, internal/faultinj, internal/prof,
// internal/core, internal/harness and internal/artifact layers.
package cliobs

import (
	"flag"
	"fmt"
	"io"
	"os"

	"stmdiag/internal/artifact"
	"stmdiag/internal/core"
	"stmdiag/internal/faultinj"
	"stmdiag/internal/harness"
	"stmdiag/internal/obs"
	"stmdiag/internal/obshttp"
	"stmdiag/internal/prof"
)

// MaybeTrialWorker turns this process into a trial worker when the
// STMDIAG_TRIAL_WORKER environment marker is set: it runs the worker
// protocol loop on stdin/stdout and exits. Every binary that can drive a
// trial pool calls this first in main, so any of them doubles as the
// subprocess executor's worker (-worker-bin defaults to the current
// executable). A no-op in normal runs.
func MaybeTrialWorker() {
	if os.Getenv(harness.WorkerEnv) == "" {
		return
	}
	if err := harness.WorkerMain(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trial worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// Metrics output formats accepted by -metrics-format.
const (
	FormatText = "text"
	FormatJSON = "json"
	FormatProm = "prom"
	// FormatDetJSON is the deterministic subset: the JSON snapshot with
	// every wall-clock/scheduling-variant family (obs.IsVolatile) filtered
	// out, so output is byte-identical across -jobs values and executors.
	FormatDetJSON = "detjson"
)

// Flags holds the parsed telemetry flags.
type Flags struct {
	// TracePath is the -trace destination ("" = tracing off).
	TracePath string
	// Metrics prints a metrics snapshot after the run (-metrics).
	Metrics bool
	// MetricsFormat selects the -metrics rendering: text (default), json,
	// or prom (OpenMetrics exposition).
	MetricsFormat string
	// Verbose raises trace detail to per-branch/per-coherence events (-v).
	Verbose bool
	// Faults is the raw -faults fault-injection spec ("" = off); parse it
	// with FaultSpec after flag.Parse.
	Faults string
	// ServeAddr is the -serve listen address ("" = no telemetry server).
	ServeAddr string
	// ServeAddrFile is the -serve-addr-file destination: the bound listen
	// address is written there once the server is up ("" = don't), so
	// scripts using -serve :0 can find the port without parsing logs.
	ServeAddrFile string
	// FlightRec arms the in-memory flight recorder on the run's sink
	// (-flightrec; on by default whenever telemetry is on).
	FlightRec bool
	// ProfileReport is the -profile-report top-K: >0 arms the
	// cost-attribution profiler and renders a K-row hot-spot report on
	// stderr after the run; 0 (the default) leaves profiling off.
	ProfileReport int

	server *obshttp.Server
}

// Register installs -trace, -metrics, -metrics-format, -v, -faults, -serve
// and -flightrec on the default flag set. Call before flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.TracePath, "trace", "", "write a Chrome trace_event JSON trace (chrome://tracing, Perfetto) to this `file`")
	flag.BoolVar(&f.Metrics, "metrics", false, "print the telemetry counters after the run")
	flag.StringVar(&f.MetricsFormat, "metrics-format", FormatText, "render -metrics as `text`, json, detjson (deterministic families only) or prom (OpenMetrics)")
	flag.BoolVar(&f.Verbose, "v", false, "record fine-grained (per-branch, per-coherence-event) trace events")
	flag.StringVar(&f.Faults, "faults", "", "deterministic fault-injection `spec`, e.g. \"rate=0.01\" or \"lbr-drop=0.1,seed=7\" (\"off\" = none)")
	flag.StringVar(&f.ServeAddr, "serve", "", "serve live telemetry (/metrics, /trace, /tracez, /flightrecorder, /debug/pprof) on this `addr` during the run, e.g. :9090")
	flag.StringVar(&f.ServeAddrFile, "serve-addr-file", "", "write the -serve bound address to this `file` (scripts poll it instead of parsing logs)")
	flag.BoolVar(&f.FlightRec, "flightrec", true, "keep a flight recorder of recent harness events on the telemetry sink")
	flag.IntVar(&f.ProfileReport, "profile-report", 0, "render a top-`K` cost-attribution hot-spot report (opcodes, phases, alloc sites) on stderr after the run (0 = off)")
	return f
}

// Validate rejects malformed flag combinations; call right after
// flag.Parse and exit 2 on error.
func (f *Flags) Validate() error {
	if f.ProfileReport < 0 {
		return fmt.Errorf("-profile-report must be >= 0 (0 = off), got %d", f.ProfileReport)
	}
	if f.ServeAddrFile != "" && f.ServeAddr == "" {
		return fmt.Errorf("-serve-addr-file requires -serve")
	}
	switch f.MetricsFormat {
	case FormatText, FormatJSON, FormatDetJSON, FormatProm:
		return nil
	}
	return fmt.Errorf("-metrics-format must be %s, %s, %s or %s, got %q",
		FormatText, FormatJSON, FormatDetJSON, FormatProm, f.MetricsFormat)
}

// FaultSpec parses the -faults value. The zero spec (injection off) comes
// back for "" and "off".
func (f *Flags) FaultSpec() (faultinj.Spec, error) {
	spec, err := faultinj.ParseSpec(f.Faults)
	if err != nil {
		return faultinj.Spec{}, fmt.Errorf("-faults: %w", err)
	}
	return spec, nil
}

// CheckJobs validates a -jobs value: 0 means NumCPU and positive counts
// are worker counts, but negative values are malformed rather than a
// silent fallback.
func CheckJobs(jobs int) error {
	if jobs < 0 {
		return fmt.Errorf("-jobs must be >= 0 (0 = NumCPU), got %d", jobs)
	}
	return nil
}

// RankerFlag holds the raw -ranker value shared by the diagnosis-driving
// binaries; Validate resolves it against core.Rankers.
type RankerFlag struct {
	// Name is the -ranker value (cbi, ochiai or tarantula).
	Name string
}

// RegisterRanker installs -ranker on the default flag set. Call before
// flag.Parse.
func RegisterRanker() *RankerFlag {
	f := &RankerFlag{}
	flag.StringVar(&f.Name, "ranker", core.RankerCBI.String(),
		"diagnosis scoring `formula`: cbi (the paper's harmonic mean), ochiai or tarantula")
	return f
}

// Validate rejects unknown ranker names; call right after flag.Parse and
// exit 2 on error.
func (f *RankerFlag) Validate() error {
	_, err := core.ParseRanker(f.Name)
	return err
}

// Ranker resolves the flag; call after Validate (unknown names fall back
// to the paper's CBI ranker).
func (f *RankerFlag) Ranker() core.Ranker {
	r, _ := core.ParseRanker(f.Name)
	return r
}

// Executor names accepted by -executor.
const (
	ExecInproc     = "inproc"
	ExecSubprocess = "subprocess"
)

// ExecFlags holds the parsed durable-execution flags: which executor runs
// portable trials, where the durable artifact store lives, and which
// binary serves as the subprocess worker.
type ExecFlags struct {
	// Executor is the -executor choice: inproc (default) or subprocess.
	Executor string
	// Resume is the -resume artifact-store directory ("" = no persistence).
	// The directory is created if missing; an existing store resumes the
	// run, skipping trials whose results are already committed.
	Resume string
	// WorkerBin is the -worker-bin subprocess worker binary ("" = the
	// current executable).
	WorkerBin string
}

// RegisterExec installs -executor, -resume and -worker-bin on the default
// flag set. Call before flag.Parse.
func RegisterExec() *ExecFlags {
	f := &ExecFlags{}
	flag.StringVar(&f.Executor, "executor", ExecInproc,
		"trial execution `engine`: inproc (in this process) or subprocess (isolated worker processes)")
	flag.StringVar(&f.Resume, "resume", "",
		"durable artifact-store `dir`: persist trial results as they commit and resume a killed run from it")
	flag.StringVar(&f.WorkerBin, "worker-bin", "",
		"worker `binary` for -executor subprocess (default: this executable)")
	return f
}

// Validate rejects malformed execution flags; call right after flag.Parse
// and exit 2 on error.
func (f *ExecFlags) Validate() error {
	switch f.Executor {
	case ExecInproc, ExecSubprocess:
	default:
		return fmt.Errorf("-executor must be %s or %s, got %q", ExecInproc, ExecSubprocess, f.Executor)
	}
	if f.Resume != "" {
		if fi, err := os.Stat(f.Resume); err == nil && !fi.IsDir() {
			return fmt.Errorf("-resume %q is not a directory", f.Resume)
		}
	}
	if f.WorkerBin != "" && f.Executor != ExecSubprocess {
		return fmt.Errorf("-worker-bin requires -executor %s", ExecSubprocess)
	}
	return nil
}

// Build assembles the executor and artifact store the flags ask for; both
// are nil on the all-default path (in-process, no persistence). The store
// is armed with the run's fault spec so the artifact-layer injectors
// (artifact-torn-write, artifact-corrupt, journal-trunc) fire on it.
// Callers own Close on both.
func (f *ExecFlags) Build(sink *obs.Sink, faults faultinj.Spec, seed int64) (harness.Executor, *artifact.Store, error) {
	var exec harness.Executor
	if f.Executor == ExecSubprocess {
		e, err := harness.NewSubprocExecutor(harness.SubprocOptions{Bin: f.WorkerBin, Sink: sink})
		if err != nil {
			return nil, nil, err
		}
		exec = e
	}
	var store *artifact.Store
	if f.Resume != "" {
		s, err := artifact.Open(f.Resume, sink)
		if err != nil {
			if exec != nil {
				exec.Close()
			}
			return nil, nil, err
		}
		store = s.WithFaults(faults, seed)
	}
	return exec, store, nil
}

// FleetFlags holds the parsed -fleet-* flags shared by fleet-aware
// binaries (fleetd's store sizing and client-simulation shape).
type FleetFlags struct {
	// Shards is the profile store's lock-stripe count (-fleet-shards).
	Shards int
	// Clients is how many simulated machines a push fans out over
	// (-fleet-clients).
	Clients int
	// Batch is the per-client submissions-per-POST batch size
	// (-fleet-batch).
	Batch int
	// Retries bounds per-batch re-sends on 5xx (-fleet-retries).
	Retries int
}

// RegisterFleet installs the -fleet-* flags on the default flag set. Call
// before flag.Parse.
func RegisterFleet() *FleetFlags {
	f := &FleetFlags{}
	flag.IntVar(&f.Shards, "fleet-shards", 16, "profile-store lock stripes per app (1..4096)")
	flag.IntVar(&f.Clients, "fleet-clients", 4, "simulated machines a -push fans profiles over")
	flag.IntVar(&f.Batch, "fleet-batch", 64, "profile submissions per ingest POST")
	flag.IntVar(&f.Retries, "fleet-retries", 5, "max re-sends of one batch after a 5xx")
	return f
}

// Validate rejects malformed -fleet-* values; call right after flag.Parse
// and exit 2 on error.
func (f *FleetFlags) Validate() error {
	if f.Shards < 1 || f.Shards > 4096 {
		return fmt.Errorf("-fleet-shards must be in 1..4096, got %d", f.Shards)
	}
	if f.Clients < 1 {
		return fmt.Errorf("-fleet-clients must be >= 1, got %d", f.Clients)
	}
	if f.Batch < 1 {
		return fmt.Errorf("-fleet-batch must be >= 1, got %d", f.Batch)
	}
	if f.Retries < 0 {
		return fmt.Errorf("-fleet-retries must be >= 0, got %d", f.Retries)
	}
	return nil
}

// Sink builds the sink the flags ask for. It returns nil when every flag
// is off, keeping the disabled-telemetry path free. Metrics land in the
// process-wide registry so instrumentation-time counters (sites
// instrumented, bundles audited) appear in the same snapshot. A -serve
// run always gets a sink (the server needs something to expose), and any
// sink carries a pipeline flight recorder unless -flightrec=false.
func (f *Flags) Sink() *obs.Sink {
	if f.TracePath == "" && !f.Metrics && !f.Verbose && f.ServeAddr == "" && f.ProfileReport == 0 {
		return nil
	}
	s := obs.NewSink()
	if f.TracePath != "" || f.ServeAddr != "" {
		s.Trace = obs.NewTracer()
	}
	if f.Verbose {
		s.Verbosity = 1
	}
	if f.FlightRec {
		s.Flight = obs.NewFlightRecorder(obs.DefaultFlightCap)
	}
	// -profile-report needs the attribution counters. A -serve run serves
	// whatever else is armed but does not force-arm the profiler: per-opcode
	// attribution is by far the largest per-trial delta on the executor
	// wire (it alone nearly doubles the federated payload), so live runs
	// that want /profilez data add -profile-report explicitly.
	s.Profiling = f.ProfileReport > 0
	return s
}

// Start launches the -serve telemetry server over the run's sink; no-op
// without -serve. The bound address (useful with ":0") is announced on w.
func (f *Flags) Start(s *obs.Sink, w io.Writer) error {
	if f.ServeAddr == "" {
		return nil
	}
	srv := obshttp.New(s)
	if err := srv.Start(f.ServeAddr); err != nil {
		return err
	}
	f.server = srv
	if f.ServeAddrFile != "" {
		if err := os.WriteFile(f.ServeAddrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			return fmt.Errorf("cliobs: write -serve-addr-file: %w", err)
		}
	}
	fmt.Fprintf(w, "telemetry: serving /metrics /trace /tracez /flightrecorder /profilez /debug/pprof on http://%s\n", srv.Addr())
	return nil
}

// ServerAddr returns the live telemetry server's bound address ("" when
// -serve is off or Start has not run).
func (f *Flags) ServerAddr() string {
	if f.server == nil {
		return ""
	}
	return f.server.Addr()
}

// Finish writes the trace file, prints the metrics snapshot to w in the
// format -metrics-format asks for, and stops the -serve server.
func (f *Flags) Finish(s *obs.Sink, w io.Writer) error {
	if f.server != nil {
		f.server.SetReady(false)
		defer f.server.Close()
	}
	if s == nil {
		return nil
	}
	if f.TracePath != "" && s.Trace != nil {
		data, err := s.Trace.ChromeJSON()
		if err != nil {
			return fmt.Errorf("cliobs: encode trace: %w", err)
		}
		if err := os.WriteFile(f.TracePath, data, 0o644); err != nil {
			return fmt.Errorf("cliobs: write trace: %w", err)
		}
		fmt.Fprintf(w, "trace: %d events -> %s", s.Trace.Len(), f.TracePath)
		if d := s.Trace.Dropped(); d > 0 {
			fmt.Fprintf(w, " (%d dropped at limit)", d)
		}
		fmt.Fprintln(w)
	}
	if f.Metrics && s.Metrics != nil {
		snap := s.Metrics.Snapshot()
		switch f.MetricsFormat {
		case FormatJSON, FormatDetJSON:
			if f.MetricsFormat == FormatDetJSON {
				snap = snap.Deterministic()
			}
			data, err := snap.JSON()
			if err != nil {
				return fmt.Errorf("cliobs: encode metrics: %w", err)
			}
			w.Write(data) //nolint:errcheck // best-effort diagnostics
			fmt.Fprintln(w)
		case FormatProm:
			io.WriteString(w, snap.OpenMetrics()) //nolint:errcheck
		default:
			fmt.Fprint(w, snap.Text())
		}
	}
	if f.ProfileReport > 0 && s.Metrics != nil {
		io.WriteString(w, prof.FromSnapshot(s.Metrics.Snapshot()).Render(f.ProfileReport)) //nolint:errcheck
	}
	return nil
}
