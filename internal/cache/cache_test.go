package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func sys(t *testing.T, cores int) *System {
	t.Helper()
	s, err := NewSystem(cores, DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{SizeBytes: 64 << 10, Ways: 2, BlockBytes: 12},
		{SizeBytes: -1, Ways: 2, BlockBytes: 64},
		{SizeBytes: 64, Ways: 2, BlockBytes: 64}, // zero sets
	}
	for _, cfg := range bad {
		if _, err := NewSystem(2, cfg); err == nil {
			t.Errorf("NewSystem(%+v) accepted bad geometry", cfg)
		}
	}
	if _, err := NewSystem(0, DefaultConfig); err == nil {
		t.Error("zero cores accepted")
	}
	if DefaultConfig.sets() != 512 {
		t.Errorf("paper geometry should have 512 sets, got %d", DefaultConfig.sets())
	}
}

func TestColdLoadObservesInvalidThenExclusive(t *testing.T) {
	s := sys(t, 2)
	if st := s.Access(0, 100, Load); st != Invalid {
		t.Errorf("first load observed %v, want I", st)
	}
	if st := s.Peek(0, 100); st != Exclusive {
		t.Errorf("after sole load state = %v, want E", st)
	}
	if st := s.Access(0, 100, Load); st != Exclusive {
		t.Errorf("re-load observed %v, want E", st)
	}
}

func TestSharedOnSecondReader(t *testing.T) {
	s := sys(t, 2)
	s.Access(0, 100, Load)
	if st := s.Access(1, 100, Load); st != Invalid {
		t.Errorf("remote first load observed %v, want I", st)
	}
	if st := s.Peek(0, 100); st != Shared {
		t.Errorf("first reader degraded to %v, want S", st)
	}
	if st := s.Peek(1, 100); st != Shared {
		t.Errorf("second reader got %v, want S", st)
	}
}

func TestStoreInvalidatesRemote(t *testing.T) {
	s := sys(t, 2)
	s.Access(0, 100, Load)  // core0: E
	s.Access(1, 100, Store) // core1 takes ownership
	if st := s.Peek(0, 100); st != Invalid {
		t.Errorf("remote write left core0 in %v, want I", st)
	}
	if st := s.Peek(1, 100); st != Modified {
		t.Errorf("writer in %v, want M", st)
	}
	// The WWR/RWR pattern of paper Table 3: the failure thread's next read
	// observes Invalid.
	if st := s.Access(0, 100, Load); st != Invalid {
		t.Errorf("victim read observed %v, want I (the failure-predicting event)", st)
	}
}

func TestStoreUpgradeFromShared(t *testing.T) {
	s := sys(t, 3)
	s.Access(0, 100, Load)
	s.Access(1, 100, Load)
	s.Access(2, 100, Load)
	if st := s.Access(1, 100, Store); st != Shared {
		t.Errorf("upgrade store observed %v, want S", st)
	}
	if st := s.Peek(1, 100); st != Modified {
		t.Errorf("writer in %v, want M", st)
	}
	for _, core := range []int{0, 2} {
		if st := s.Peek(core, 100); st != Invalid {
			t.Errorf("core %d in %v after upgrade, want I", core, st)
		}
	}
}

func TestExclusiveToModifiedSilent(t *testing.T) {
	s := sys(t, 2)
	s.Access(0, 100, Load)
	if st := s.Access(0, 100, Store); st != Exclusive {
		t.Errorf("store observed %v, want E", st)
	}
	if st := s.Peek(0, 100); st != Modified {
		t.Errorf("state %v, want M", st)
	}
}

func TestReadOfModifiedRemoteDowngrades(t *testing.T) {
	s := sys(t, 2)
	s.Access(0, 100, Store) // core0: M
	if st := s.Access(1, 100, Load); st != Invalid {
		t.Errorf("reader observed %v, want I", st)
	}
	if st := s.Peek(0, 100); st != Shared {
		t.Errorf("former owner in %v, want S", st)
	}
	if st := s.Peek(1, 100); st != Shared {
		t.Errorf("reader in %v, want S", st)
	}
}

// TestReadTooEarlyExclusivePattern reproduces the FFT order-violation event
// of paper Figure 5: when the consumer reads a value its own thread wrote
// (uninitialized use), it observes E/M rather than the S it would observe
// after the producer wrote it.
func TestReadTooEarlyExclusivePattern(t *testing.T) {
	// Failure run: thread 1 (core 1) reads Gend before thread 2 (core 0)
	// initializes it. Because core 1 itself allocated/zeroed the block, it
	// observes a non-Shared state.
	s := sys(t, 2)
	s.Access(1, 200, Load) // B1 reads uninitialized: observes I, installs E
	if st := s.Access(1, 200, Load); st != Exclusive {
		t.Errorf("failure-run re-read observed %v, want E", st)
	}

	// Success run: producer stores first, consumer then reads and observes
	// I on first touch, then S — never E.
	s2 := sys(t, 2)
	s2.Access(0, 200, Store) // A: Gend=time()
	s2.Access(1, 200, Load)  // B1
	if st := s2.Access(1, 200, Load); st != Shared {
		t.Errorf("success-run re-read observed %v, want S", st)
	}
}

func TestEvictionLRU(t *testing.T) {
	cfg := Config{SizeBytes: 2 * 64, Ways: 2, BlockBytes: 64} // 1 set, 2 ways
	s, err := NewSystem(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Access(0, 0, Load)  // block 0
	s.Access(0, 8, Load)  // block 1
	s.Access(0, 0, Load)  // touch block 0 so block 1 is LRU
	s.Access(0, 16, Load) // block 2 evicts block 1
	if st := s.Peek(0, 8); st != Invalid {
		t.Errorf("LRU block still %v, want I (evicted)", st)
	}
	if st := s.Peek(0, 0); st != Exclusive {
		t.Errorf("MRU block got %v, want E", st)
	}
	if got := s.Stats(0).Evictions; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
}

func TestStatsObservedStates(t *testing.T) {
	s := sys(t, 2)
	s.Access(0, 100, Load)  // observes I
	s.Access(0, 100, Load)  // observes E
	s.Access(0, 100, Store) // observes E
	s.Access(0, 100, Store) // observes M
	st := s.Stats(0)
	if st.ObservedByState[Invalid] != 1 || st.ObservedByState[Exclusive] != 2 || st.ObservedByState[Modified] != 1 {
		t.Errorf("observed counts = %v", st.ObservedByState)
	}
	if st.Loads != 2 || st.Stores != 2 {
		t.Errorf("loads/stores = %d/%d", st.Loads, st.Stores)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d", st.Hits, st.Misses)
	}
}

// Property: after any random access sequence the MESI single-writer
// invariant holds, and the observed state is always a valid MESI state.
func TestMESIInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Small cache to force evictions and conflicts.
		cfg := Config{SizeBytes: 4 * 64, Ways: 2, BlockBytes: 64}
		s, err := NewSystem(4, cfg)
		if err != nil {
			return false
		}
		for i := 0; i < 400; i++ {
			core := rng.Intn(4)
			addr := int64(rng.Intn(64)) * 4 // overlapping block set
			kind := Load
			if rng.Intn(2) == 1 {
				kind = Store
			}
			if st := s.Access(core, addr, kind); !st.Valid() {
				return false
			}
			if err := s.CheckInvariants(); err != nil {
				t.Logf("seed %d step %d: %v", seed, i, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: single-core operation never produces Shared states (nothing to
// share with) and never invalidates.
func TestSingleCoreNeverShares(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := NewSystem(1, DefaultConfig)
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			addr := int64(rng.Intn(1 << 12))
			kind := AccessKind(rng.Intn(2))
			if st := s.Access(0, addr, kind); st == Shared {
				return false
			}
		}
		return s.Stats(0).Invalidations == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"}
	for st, w := range want {
		if st.String() != w {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), w)
		}
	}
	if Load.String() != "load" || Store.String() != "store" {
		t.Error("AccessKind strings wrong")
	}
}
