// Package cache simulates the per-core L1 data caches of the machine with a
// MESI coherence protocol over a snooping bus.
//
// It mirrors the paper's LCR simulator (§4.3): each core's L1 is 2-way set
// associative with 64-byte blocks and 64KB total, and every load or store
// reports the coherence state the block was in *before* the access — the
// exact event that Intel's L1D cache-coherence performance events count
// (paper Table 2) and that the proposed LCR records.
package cache

import "fmt"

// State is a MESI coherence state.
type State uint8

// The MESI states. The zero value is Invalid, matching an empty cache.
const (
	// Invalid: the block is not present (or was invalidated by a remote
	// write or an eviction).
	Invalid State = iota
	// Shared: present, clean, possibly cached elsewhere.
	Shared
	// Exclusive: present, clean, cached nowhere else.
	Exclusive
	// Modified: present, dirty, cached nowhere else.
	Modified
)

// String returns the one-letter MESI name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Valid reports whether s is one of the four MESI states.
func (s State) Valid() bool { return s <= Modified }

// AccessKind distinguishes loads from stores.
type AccessKind uint8

// Access kinds; the paper's event codes are 0x40 for loads and 0x41 for
// stores (Table 2).
const (
	Load AccessKind = iota
	Store
)

// String returns "load" or "store".
func (k AccessKind) String() string {
	if k == Store {
		return "store"
	}
	return "load"
}

// Config fixes the cache geometry.
type Config struct {
	// SizeBytes is the total capacity of one core's L1D.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
	// BlockBytes is the cache-block (line) size.
	BlockBytes int
}

// DefaultConfig is the geometry the paper's simulator uses: a 2-way
// associative cache with 64-byte blocks and 64KB total size (§6).
var DefaultConfig = Config{SizeBytes: 64 << 10, Ways: 2, BlockBytes: 64}

// sets returns the number of sets the geometry implies.
func (c Config) sets() int { return c.SizeBytes / (c.Ways * c.BlockBytes) }

// wordsPerBlock returns how many 64-bit words fit one block.
func (c Config) wordsPerBlock() int64 { return int64(c.BlockBytes / 8) }

// validate reports whether the geometry is usable.
func (c Config) validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.BlockBytes < 8 {
		return fmt.Errorf("cache: bad geometry %+v", c)
	}
	if c.BlockBytes%8 != 0 {
		return fmt.Errorf("cache: block size %d not a whole number of words", c.BlockBytes)
	}
	if c.sets() <= 0 {
		return fmt.Errorf("cache: geometry %+v yields no sets", c)
	}
	return nil
}

// line is one cache line's bookkeeping.
type line struct {
	tag     int64
	state   State
	lastUse uint64
}

// Cache is one core's L1D.
type Cache struct {
	cfg   Config
	sets  [][]line
	stats Stats
}

// Stats counts cache events per core.
type Stats struct {
	Loads, Stores   uint64
	Hits, Misses    uint64
	Evictions       uint64
	Invalidations   uint64 // lines killed by remote writes
	ObservedByState [4]uint64
}

// System is a coherent domain: one cache per core connected by a snooping
// bus. All methods are single-threaded by design; the VM serializes
// accesses, which models the sequentially consistent interleaving the
// paper's PIN-based simulator observes.
type System struct {
	cfg    Config
	caches []*Cache
	tick   uint64
	tel    telemetry
}

// NewSystem builds a coherent domain of ncores caches.
func NewSystem(ncores int, cfg Config) (*System, error) {
	if ncores <= 0 {
		return nil, fmt.Errorf("cache: ncores must be positive, got %d", ncores)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, caches: make([]*Cache, ncores)}
	for i := range s.caches {
		sets := make([][]line, cfg.sets())
		for j := range sets {
			sets[j] = make([]line, cfg.Ways)
		}
		s.caches[i] = &Cache{cfg: cfg, sets: sets}
	}
	return s, nil
}

// MustNewSystem is NewSystem with a panic on configuration error; for use
// with the package defaults.
func MustNewSystem(ncores int, cfg Config) *System {
	s, err := NewSystem(ncores, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NumCores returns the number of caches in the domain.
func (s *System) NumCores() int { return len(s.caches) }

// Stats returns a copy of one core's counters.
func (s *System) Stats(core int) Stats { return s.caches[core].stats }

// blockOf maps a word address to its block address.
func (s *System) blockOf(wordAddr int64) int64 {
	return wordAddr / s.cfg.wordsPerBlock()
}

// Access performs a load or store by the given core at the given word
// address and returns the MESI state the core's cache held for the block
// *before* the access — the "observed" state of paper Table 2. The cache
// contents are updated per the MESI protocol, including invalidating remote
// copies on stores.
func (s *System) Access(core int, wordAddr int64, kind AccessKind) State {
	s.tick++
	c := s.caches[core]
	block := s.blockOf(wordAddr)
	set := int(block % int64(len(c.sets)))
	tag := block / int64(len(c.sets))

	if kind == Load {
		c.stats.Loads++
	} else {
		c.stats.Stores++
	}

	ln := c.find(set, tag)
	observed := Invalid
	if ln != nil {
		observed = ln.state
	}
	c.stats.ObservedByState[observed]++

	if ln != nil && ln.state != Invalid {
		c.stats.Hits++
		s.tel.hits.Inc()
		ln.lastUse = s.tick
		if kind == Store {
			switch ln.state {
			case Shared:
				// Upgrade: invalidate every remote copy.
				s.tel.busUpgr.Inc()
				s.invalidateOthers(core, set, tag)
				ln.state = Modified
			case Exclusive:
				ln.state = Modified
			}
			s.tel.transition(observed, ln.state)
		}
		return observed
	}

	// Miss (absent or Invalid): fetch over the bus.
	c.stats.Misses++
	s.tel.misses.Inc()
	if kind == Store {
		s.tel.busRdX.Inc()
	} else {
		s.tel.busRd.Inc()
	}
	remote := s.snoop(core, set, tag, kind)
	if ln == nil {
		evBefore := c.stats.Evictions
		ln = c.victim(set)
		if c.stats.Evictions != evBefore {
			s.tel.evictions.Inc()
		}
	}
	ln.tag = tag
	ln.lastUse = s.tick
	switch {
	case kind == Store:
		ln.state = Modified
	case remote:
		ln.state = Shared
	default:
		ln.state = Exclusive
	}
	s.tel.transition(observed, ln.state)
	return observed
}

// Peek returns the state core currently holds for the block containing
// wordAddr, without touching LRU or statistics.
func (s *System) Peek(core int, wordAddr int64) State {
	c := s.caches[core]
	block := s.blockOf(wordAddr)
	set := int(block % int64(len(c.sets)))
	tag := block / int64(len(c.sets))
	if ln := c.find(set, tag); ln != nil {
		return ln.state
	}
	return Invalid
}

// find returns the line holding tag in the set, whatever its state, or nil.
func (c *Cache) find(set int, tag int64) *line {
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.tag == tag && ln.state != Invalid {
			return ln
		}
	}
	return nil
}

// victim picks the line to replace in the set: an Invalid line if any,
// otherwise the least recently used. A valid victim counts as an eviction.
func (c *Cache) victim(set int) *line {
	lines := c.sets[set]
	var v *line
	for i := range lines {
		ln := &lines[i]
		if ln.state == Invalid {
			return ln
		}
		if v == nil || ln.lastUse < v.lastUse {
			v = ln
		}
	}
	c.stats.Evictions++
	v.state = Invalid
	return v
}

// snoop services a bus transaction from the requester: for a load (BusRd)
// remote M/E copies degrade to S; for a store (BusRdX) every remote copy is
// invalidated. It reports whether any remote cache held the block.
func (s *System) snoop(requester, set int, tag int64, kind AccessKind) bool {
	shared := false
	for id, c := range s.caches {
		if id == requester {
			continue
		}
		ln := c.find(set, tag)
		if ln == nil {
			continue
		}
		shared = true
		if kind == Store {
			s.tel.transition(ln.state, Invalid)
			ln.state = Invalid
			c.stats.Invalidations++
			s.tel.invalidations.Inc()
		} else if ln.state == Modified || ln.state == Exclusive {
			// Writeback (for M) is implicit; both ends hold S after.
			s.tel.transition(ln.state, Shared)
			ln.state = Shared
		}
	}
	return shared
}

// invalidateOthers kills remote copies on a store upgrade.
func (s *System) invalidateOthers(requester, set int, tag int64) {
	for id, c := range s.caches {
		if id == requester {
			continue
		}
		if ln := c.find(set, tag); ln != nil {
			s.tel.transition(ln.state, Invalid)
			ln.state = Invalid
			c.stats.Invalidations++
			s.tel.invalidations.Inc()
		}
	}
}

// CheckInvariants verifies the MESI single-writer/multiple-reader property
// over the whole domain: for every block, at most one cache holds it in M
// or E, and if one does, no other cache holds it in any valid state. It is
// used by the property-based tests and may be called after any access.
func (s *System) CheckInvariants() error {
	type holder struct {
		core  int
		state State
	}
	holders := make(map[[2]int64][]holder)
	for id, c := range s.caches {
		for setIdx, set := range c.sets {
			for i := range set {
				ln := &set[i]
				if ln.state == Invalid {
					continue
				}
				key := [2]int64{int64(setIdx), ln.tag}
				holders[key] = append(holders[key], holder{id, ln.state})
			}
		}
	}
	for key, hs := range holders {
		exclusiveOwners := 0
		for _, h := range hs {
			if h.state == Modified || h.state == Exclusive {
				exclusiveOwners++
			}
		}
		if exclusiveOwners > 1 {
			return fmt.Errorf("cache: block set=%d tag=%d has %d M/E owners: %v", key[0], key[1], exclusiveOwners, hs)
		}
		if exclusiveOwners == 1 && len(hs) > 1 {
			return fmt.Errorf("cache: block set=%d tag=%d owned M/E but also cached elsewhere: %v", key[0], key[1], hs)
		}
	}
	return nil
}
