package cache

import "stmdiag/internal/obs"

// telemetry caches the coherent domain's counters. The zero value is
// detached (all counters nil, methods no-ops), so an unattached System
// pays only nil checks on the access path.
type telemetry struct {
	hits          *obs.Counter
	misses        *obs.Counter
	evictions     *obs.Counter
	invalidations *obs.Counter
	busRd         *obs.Counter // read transactions (load misses)
	busRdX        *obs.Counter // read-for-ownership transactions (store misses)
	busUpgr       *obs.Counter // upgrade transactions (S->M without refill)
	mesi          [4][4]*obs.Counter
}

// AttachObs resolves the domain's telemetry counters ("cache.*") from the
// sink, including the full from->to MESI transition matrix
// ("cache.mesi.I>E", ...). A nil sink detaches.
func (s *System) AttachObs(sink *obs.Sink) {
	if sink == nil {
		s.tel = telemetry{}
		return
	}
	s.tel = telemetry{
		hits:          sink.Counter("cache.hits"),
		misses:        sink.Counter("cache.misses"),
		evictions:     sink.Counter("cache.evictions"),
		invalidations: sink.Counter("cache.invalidations"),
		busRd:         sink.Counter("cache.bus.rd"),
		busRdX:        sink.Counter("cache.bus.rdx"),
		busUpgr:       sink.Counter("cache.bus.upgrade"),
	}
	for from := Invalid; from <= Modified; from++ {
		for to := Invalid; to <= Modified; to++ {
			s.tel.mesi[from][to] = sink.Counter(
				"cache.mesi." + from.String() + ">" + to.String())
		}
	}
}

// transition counts one line's state change; no-op when detached or when
// the state did not change.
func (t *telemetry) transition(from, to State) {
	if c := t.mesi[from][to]; c != nil && from != to {
		c.Inc()
	}
}
