package apps

import (
	"stmdiag/internal/isa"
	"stmdiag/internal/source"
)

// cppcheck1App models the Cppcheck-1.58 crash (a *-case): the template
// tokenizer's simplification loop corrupts the token list long before the
// crash; the root-cause branch is far outside the LBR window in every
// configuration, but a related token-kind check is captured at entry 5.
// The patch touches templatesimplifier.cpp while every captured branch
// lives in tokenize.cpp — both distances infinite. CBI does not support
// C++ programs (N/A).
var cppcheck1App = register(&App{
	Name: "Cppcheck1",
	Paper: PaperInfo{
		Version: "1.58", KLOC: 138, LogPoints: 304,
		LBRRankTog: 5, LBRRankNoTog: 5, Related: true, CBIRank: -1,
		PatchDistFailure: source.Infinite, PatchDistLBR: source.Infinite,
	},
	Class:         BugMemory,
	Symptom:       SymptomCrash,
	RootBranch:    "cc1_tmpl",
	BuggyEdge:     isa.EdgeTrue,
	RelatedBranch: "cc1_tokkind",
	Diagnosable:   true,
	FaultLoc:      isa.SourceLoc{File: "lib/tokenize.cpp", Line: 220},
	Patch:         source.Patch{App: "Cppcheck1", Lines: []isa.SourceLoc{{File: "lib/templatesimplifier.cpp", Line: 88}}},
	Fail:          Workload{Globals: map[string]int64{"tmpl_depth": 3, "worksize": 2500}},
	Succeed:       Workload{Globals: map[string]int64{"tmpl_depth": 1, "worksize": 2500}},
	Source: `
.file lib/tokenize.cpp
.global tmpl_depth
.global tokptr
.global tokens 8

.func main
main:
    lea  r1, tokens
    lea  r2, tokptr
    st   [r2+0], r1        ; token cursor starts valid
    call work
.line 120
    lea  r3, tmpl_depth
    ld   r4, [r3+0]
.line 124
.branch cc1_tmpl
    cmpi r4, 2
    jle  cc1_flat          ; shallow templates simplify fine
    movi r5, 0
    lea  r2, tokptr
    st   [r2+0], r5        ; instantiation drops the cursor (the bug, latent)
cc1_flat:
.line 150
` + padJumps("cc1p", 16) + `
.line 200
    lea  r6, tokptr
    ld   r7, [r6+0]
.line 205
.branch cc1_tokkind
    cmpi r4, 2
    jle  cc1_plain
cc1_plain:
.line 210
` + padJumps("cc1q", 4) + `
.line 220
    ld   r8, [r7+0]        ; Token::next() on the dropped cursor
    exit
` + workKernel(WorkCfg{Branches: 2, Pad: 20, LibEvery: 128}),
})

// cppcheck2App models the Cppcheck-1.56 crash: a preprocessor guard takes
// the wrong edge for an unmatched #if and the null define list is
// dereferenced two recorded branches later (entry 3). The patch fixes the
// guard's file 2 lines from the root branch; the crash is in another file.
var cppcheck2App = register(&App{
	Name: "Cppcheck2",
	Paper: PaperInfo{
		Version: "1.56", KLOC: 131, LogPoints: 284,
		LBRRankTog: 3, LBRRankNoTog: 3, CBIRank: -1,
		PatchDistFailure: source.Infinite, PatchDistLBR: 2,
	},
	Class:       BugMemory,
	Symptom:     SymptomCrash,
	RootBranch:  "cc2_ifdef",
	BuggyEdge:   isa.EdgeTrue,
	Diagnosable: true,
	FaultLoc:    isa.SourceLoc{File: "lib/tokenize.cpp", Line: 90},
	Patch:       source.Patch{App: "Cppcheck2", Lines: []isa.SourceLoc{{File: "lib/preprocessor.cpp", Line: 62}}},
	Fail:        Workload{Globals: map[string]int64{"unmatched_if": 1, "worksize": 2500}},
	Succeed:     Workload{Globals: map[string]int64{"unmatched_if": 0, "worksize": 2500}},
	Source: `
.file lib/preprocessor.cpp
.global unmatched_if
.global defptr
.global defs 8

.func main
main:
    lea  r1, defs
    lea  r2, defptr
    st   [r2+0], r1
    call work
.line 58
    lea  r3, unmatched_if
    ld   r4, [r3+0]
.line 60
.branch cc2_ifdef
    cmpi r4, 1
    jne  cc2_matched       ; balanced #if/#endif
    movi r5, 0
    lea  r2, defptr
    st   [r2+0], r5        ; forgets the active define list (the bug)
cc2_matched:
.line 75
` + padJumps("cc2p", 2) + `
.file lib/tokenize.cpp
.line 88
    lea  r6, defptr
    ld   r7, [r6+0]
.line 90
    ld   r8, [r7+0]        ; dereference the define list
    exit
` + workKernel(WorkCfg{Branches: 2, Pad: 20, LibEvery: 1024}),
})

// cppcheck3App models the Cppcheck-1.52 crash: the scope analysis pops one
// scope too many for an anonymous namespace; the crash comes five recorded
// branches later (entry 6), ten lines from the patch.
var cppcheck3App = register(&App{
	Name: "Cppcheck3",
	Paper: PaperInfo{
		Version: "1.52", KLOC: 118, LogPoints: 225,
		LBRRankTog: 6, LBRRankNoTog: 6, CBIRank: -1,
		PatchDistFailure: source.Infinite, PatchDistLBR: 10,
	},
	Class:       BugMemory,
	Symptom:     SymptomCrash,
	RootBranch:  "cc3_scope",
	BuggyEdge:   isa.EdgeTrue,
	Diagnosable: true,
	FaultLoc:    isa.SourceLoc{File: "lib/checkclass.cpp", Line: 140},
	Patch:       source.Patch{App: "Cppcheck3", Lines: []isa.SourceLoc{{File: "lib/symboldatabase.cpp", Line: 40}}},
	Fail:        Workload{Globals: map[string]int64{"anon_ns": 1, "worksize": 2500}},
	Succeed:     Workload{Globals: map[string]int64{"anon_ns": 0, "worksize": 2500}},
	Source: `
.file lib/symboldatabase.cpp
.global anon_ns
.global scopeptr
.global scopes 8

.func main
main:
    lea  r1, scopes
    lea  r2, scopeptr
    st   [r2+0], r1
    call work
.line 28
    lea  r3, anon_ns
    ld   r4, [r3+0]
.line 30
.branch cc3_scope
    cmpi r4, 1
    jne  cc3_named         ; named scopes pop correctly
    movi r5, 0
    lea  r2, scopeptr
    st   [r2+0], r5        ; pops past the global scope (the bug)
cc3_named:
.line 50
` + padJumps("cc3p", 5) + `
.file lib/checkclass.cpp
.line 138
    lea  r6, scopeptr
    ld   r7, [r6+0]
.line 140
    ld   r8, [r7+0]        ; scope->className on the popped scope
    exit
` + workKernel(WorkCfg{Branches: 2, Pad: 20, LibEvery: 256}),
})

// pbzip1App models the PBZIP2-1.1.5 semantic bug: the queue sizing logic
// takes the wrong edge for single-block archives and fprintf reports it;
// without toggling, the formatting library between root cause and failure
// site floods the LBR.
var pbzip1App = register(&App{
	Name: "PBZIP1",
	Paper: PaperInfo{
		Version: "1.1.5", KLOC: 5.7, LogPoints: 305,
		LBRRankTog: 4, LBRRankNoTog: 0, CBIRank: -1,
		PatchDistFailure: 41, PatchDistLBR: 1,
	},
	Class:       BugSemantic,
	Symptom:     SymptomErrorMessage,
	RootBranch:  "pb1_queue",
	BuggyEdge:   isa.EdgeTrue,
	Diagnosable: true,
	Patch:       source.Patch{App: "PBZIP1", Lines: []isa.SourceLoc{{File: "pbzip2.cpp", Line: 800}}},
	Fail:        Workload{Globals: map[string]int64{"nblocks": 1, "worksize": 2500}},
	Succeed:     Workload{Globals: map[string]int64{"nblocks": 4, "worksize": 2500}},
	Source: `
.file pbzip2.cpp
.global nblocks
.global qstate
.str pb1msg "pbzip2: *ERROR: when writing file"

.func main
main:
    call work
.line 798
    lea  r1, nblocks
    ld   r2, [r1+0]
.line 801
.branch pb1_queue
    cmpi r2, 1
    jne  pb1_multi         ; multi-block archives size the queue right
    lea  r3, qstate
    movi r4, 1
    st   [r3+0], r4        ; queue sized zero for one block (the bug)
pb1_multi:
.line 820
    call fmtsize           ; human-readable size formatting (library)
` + padJumps("pb1p", 2) + `
    lea  r5, qstate
    ld   r6, [r5+0]
.line 841
.branch pb1_zwrite
    cmpi r6, 0
    je   pb1_ok
    call fprintf
pb1_ok:
    exit

.func fmtsize lib
fmtsize:
` + padJumps("pb1f", 16) + `
    ret

.func fprintf log
fprintf:
.line 860
    print pb1msg
    fail 1
    ret
` + workKernel(WorkCfg{Branches: 2, Pad: 24}),
})

// pbzip2App models the PBZIP2-1.1.0 crash: the decompress path frees the
// output buffer on the truncated-archive edge and faults immediately — the
// root-cause branch is the very latest LBR entry.
var pbzip2App = register(&App{
	Name: "PBZIP2",
	Paper: PaperInfo{
		Version: "1.1.0", KLOC: 4.6, LogPoints: 269,
		LBRRankTog: 1, LBRRankNoTog: 1, CBIRank: -1,
		PatchDistFailure: 12, PatchDistLBR: 1,
	},
	Class:       BugMemory,
	Symptom:     SymptomCrash,
	RootBranch:  "pb2_trunc",
	BuggyEdge:   isa.EdgeTrue,
	Diagnosable: true,
	FaultLoc:    isa.SourceLoc{File: "pbzip2.cpp", Line: 412},
	Patch:       source.Patch{App: "PBZIP2", Lines: []isa.SourceLoc{{File: "pbzip2.cpp", Line: 400}}},
	Fail:        Workload{Globals: map[string]int64{"truncated": 1, "worksize": 2500}},
	Succeed:     Workload{Globals: map[string]int64{"truncated": 0, "worksize": 2500}},
	Source: `
.file pbzip2.cpp
.global truncated
.global outbuf_ptr
.global outbuf 8

.func main
main:
    lea  r1, outbuf
    lea  r2, outbuf_ptr
    st   [r2+0], r1
    call work
.line 398
    lea  r3, truncated
    ld   r4, [r3+0]
.line 401
.branch pb2_trunc
    cmpi r4, 1
    jne  pb2_whole         ; complete archive: buffer stays live
    movi r5, 0
    lea  r2, outbuf_ptr
    st   [r2+0], r5        ; frees the buffer on the error edge (the bug)
pb2_whole:
    lea  r6, outbuf_ptr
    ld   r7, [r6+0]
.line 412
    ld   r8, [r7+0]        ; flush the output buffer
    exit
` + workKernel(WorkCfg{Branches: 2, Pad: 24, LibEvery: 512}),
})

// tar1App models the tar-1.22 semantic bug: the sparse-file heuristic takes
// the wrong edge and open_fatal reports from a different file than the
// patch; the root cause is the 4th latest entry.
var tar1App = register(&App{
	Name: "tar1",
	Paper: PaperInfo{
		Version: "1.22", KLOC: 82, LogPoints: 243,
		LBRRankTog: 4, LBRRankNoTog: 4, CBIRank: 1,
		PatchDistFailure: source.Infinite, PatchDistLBR: 2,
	},
	Class:       BugSemantic,
	Symptom:     SymptomErrorMessage,
	RootBranch:  "tar1_sparse",
	BuggyEdge:   isa.EdgeTrue,
	Diagnosable: true,
	Patch:       source.Patch{App: "tar1", Lines: []isa.SourceLoc{{File: "src/sparse.c", Line: 150}}},
	Fail:        Workload{Globals: map[string]int64{"sparse_hint": 1, "worksize": 2500}},
	Succeed:     Workload{Globals: map[string]int64{"sparse_hint": 0, "worksize": 2500}},
	Source: `
.file src/sparse.c
.global sparse_hint
.global hole_state
.str tar1msg "tar: Cannot open: No such file or directory"

.func main
main:
    call work
.line 148
    lea  r1, sparse_hint
    ld   r2, [r1+0]
.line 152
.branch tar1_sparse
    cmpi r2, 1
    jne  tar1_dense        ; dense files skip the hole scanner
    lea  r3, hole_state
    movi r4, 1
    st   [r3+0], r4        ; trusts st_blocks for the hole map (the bug)
tar1_dense:
.line 170
` + padJumps("tar1p", 2) + `
    lea  r5, hole_state
    ld   r6, [r5+0]
.file src/extract.c
.line 94
.branch tar1_zopen
    cmpi r6, 0
    je   tar1_ok
    call open_fatal
tar1_ok:
    exit

.func open_fatal log
open_fatal:
.line 110
    print tar1msg
    fail 1
    ret
` + workKernel(WorkCfg{Branches: 2, Pad: 24, LibEvery: 512}),
})

// tar2App models the tar-1.19 semantic bug: the incremental-listing check
// is itself the patched line (LBR distance 0) and the failure is logged 24
// lines away; the quoting library between them floods the LBR when
// toggling is off.
var tar2App = register(&App{
	Name: "tar2",
	Paper: PaperInfo{
		Version: "1.19", KLOC: 76, LogPoints: 188,
		LBRRankTog: 2, LBRRankNoTog: 0, CBIRank: 2,
		PatchDistFailure: 24, PatchDistLBR: 0,
	},
	Class:       BugSemantic,
	Symptom:     SymptomErrorMessage,
	RootBranch:  "tar2_incr",
	BuggyEdge:   isa.EdgeTrue,
	Diagnosable: true,
	Patch:       source.Patch{App: "tar2", Lines: []isa.SourceLoc{{File: "src/incremen.c", Line: 300}}},
	Fail:        Workload{Globals: map[string]int64{"listed_incr": 1, "worksize": 2500}},
	Succeed:     Workload{Globals: map[string]int64{"listed_incr": 0, "worksize": 2500}},
	Source: `
.file src/incremen.c
.global listed_incr
.global dir_state
.str tar2msg "tar: Unexpected EOF in archive"

.func main
main:
    call work
.line 298
    lea  r1, listed_incr
    ld   r2, [r1+0]
.line 300
.branch tar2_incr
    cmpi r2, 1
    jne  tar2_full         ; full dumps list directories correctly
    lea  r3, dir_state
    movi r4, 1
    st   [r3+0], r4        ; drops the directory from the snapshot (the bug)
tar2_full:
.line 320
    call quotename         ; name quoting (library)
    lea  r5, dir_state
    ld   r6, [r5+0]
.line 324
.branch tar2_zeof
    cmpi r6, 0
    je   tar2_ok
    call error
tar2_ok:
    exit

.func quotename lib
quotename:
` + padJumps("tar2q", 16) + `
    ret

.func error log
error:
.line 340
    print tar2msg
    fail 1
    ret
` + workKernel(WorkCfg{Branches: 2, Pad: 30, LibEvery: 512}),
})
